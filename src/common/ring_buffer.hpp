// Fixed-capacity single-producer ring used for hardware descriptor rings
// (SDMA engines) and IKC channels. Capacity is fixed at construction, which
// mirrors how real descriptor rings behave: when full, the producer must
// back off (EAGAIN / ring-full), it never grows on its own. Software rings
// may be resized explicitly via grow() — modelling a kernel reallocating a
// shared-memory ring region — which preserves FIFO order.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace pd {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) { assert(capacity > 0); }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == slots_.size(); }
  std::size_t free_slots() const { return slots_.size() - count_; }

  /// Returns false (and leaves the ring untouched) when full.
  [[nodiscard]] bool push(T item) {
    if (full()) return false;
    slots_[tail_] = std::move(item);
    tail_ = advance(tail_);
    ++count_;
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T item = std::move(slots_[head_]);
    head_ = advance(head_);
    --count_;
    return item;
  }

  /// Peek without consuming; undefined when empty (asserted).
  const T& front() const {
    assert(!empty());
    return slots_[head_];
  }

  void clear() {
    head_ = tail_ = 0;
    count_ = 0;
  }

  /// Reallocate to `new_capacity` (>= size, asserted), keeping queued items
  /// in FIFO order. No-op when not actually growing.
  void grow(std::size_t new_capacity) {
    if (new_capacity <= slots_.size()) return;
    std::vector<T> bigger(new_capacity);
    for (std::size_t i = 0; i < count_; ++i)
      bigger[i] = std::move(slots_[(head_ + i) % slots_.size()]);
    slots_ = std::move(bigger);
    head_ = 0;
    tail_ = count_;
  }

 private:
  std::size_t advance(std::size_t i) const { return (i + 1) % slots_.size(); }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace pd
