# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mem_layout_kheap_test.
