// Shared harness for running one application proxy on one cluster
// configuration and collecting everything the paper's evaluation reports.
#pragma once

#include <functional>

#include "src/mpirt/world.hpp"

namespace pd::apps {

struct RunOutcome {
  double runtime_sec = 0;          // max rank solve-region time (FOM⁻¹)
  double total_sec = 0;            // max rank runtime incl. Init/Finalize
  mpirt::MpiStatsTable mpi;        // Table-1 style per-call stats
  os::SyscallProfiler kernel;      // Figure-8/9 style kernel profile
  std::uint64_t sdma_descriptors = 0;
  std::uint64_t sdma_bytes = 0;
  std::uint64_t offloads = 0;
  /// Offload queueing distribution pooled across every node's Ihk.
  ikc::QueueingSummary offload_queue;
};

/// Build a cluster + world, run `body` on every rank, aggregate results.
RunOutcome run_app(const mpirt::ClusterOptions& copts, const mpirt::WorldOptions& wopts,
                   const std::function<sim::Task<>(mpirt::Rank&)>& body);

}  // namespace pd::apps
