// Tests for the physical memory map and buddy allocator.
#include <gtest/gtest.h>

#include <set>

#include "src/common/units.hpp"
#include "src/mem/phys.hpp"

namespace pd::mem {
namespace {

TEST(Buddy, OrderForBytes) {
  EXPECT_EQ(BuddyAllocator::order_for(1), 12);
  EXPECT_EQ(BuddyAllocator::order_for(4096), 12);
  EXPECT_EQ(BuddyAllocator::order_for(4097), 13);
  EXPECT_EQ(BuddyAllocator::order_for(2_MiB), 21);
}

TEST(Buddy, AllocFreeRoundtrip) {
  BuddyAllocator buddy(0x1000000, 16_MiB);
  EXPECT_EQ(buddy.free_bytes_total(), 16_MiB);
  auto a = buddy.alloc(4096);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(buddy.free_bytes_total(), 16_MiB - 4096);
  buddy.free_bytes(*a, 4096);
  EXPECT_EQ(buddy.free_bytes_total(), 16_MiB);
}

TEST(Buddy, BlocksAreNaturallyAligned) {
  BuddyAllocator buddy(0x1000000, 64_MiB);
  for (int order = 12; order <= 22; ++order) {
    auto a = buddy.alloc_order(order);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a & ((1ull << order) - 1), 0u) << "order " << order;
  }
}

TEST(Buddy, NoOverlapAcrossAllocations) {
  BuddyAllocator buddy(0, 1_MiB);
  std::set<PhysAddr> seen;
  for (int i = 0; i < 256; ++i) {
    auto a = buddy.alloc(4096);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(seen.insert(*a).second) << "duplicate block";
  }
  EXPECT_FALSE(buddy.alloc(4096).ok()) << "pool should be exhausted";
}

TEST(Buddy, CoalescingRestoresLargeBlocks) {
  BuddyAllocator buddy(0, 2_MiB);
  // Fragment completely, then free everything; a 2 MiB block must be
  // allocatable again (proves buddies merged back up).
  std::vector<PhysAddr> pages;
  while (true) {
    auto a = buddy.alloc(4096);
    if (!a.ok()) break;
    pages.push_back(*a);
  }
  EXPECT_EQ(pages.size(), 512u);
  for (PhysAddr p : pages) buddy.free_bytes(p, 4096);
  auto big = buddy.alloc(2_MiB);
  EXPECT_TRUE(big.ok());
}

TEST(Buddy, NonPowerOfTwoCapacityUsable) {
  BuddyAllocator buddy(0, 12_KiB);  // 3 pages
  EXPECT_EQ(buddy.free_bytes_total(), 12_KiB);
  auto a = buddy.alloc(4096);
  auto b = buddy.alloc(4096);
  auto c = buddy.alloc(4096);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(c.ok());
  EXPECT_FALSE(buddy.alloc(4096).ok());
}

TEST(Buddy, RejectsBadOrders) {
  BuddyAllocator buddy(0, 1_MiB);
  EXPECT_FALSE(buddy.alloc_order(5).ok());
  EXPECT_FALSE(buddy.alloc_order(40).ok());
}

TEST(PhysMap, KnlShape) {
  PhysMap map = PhysMap::knl(16_GiB, 96_GiB, 4);
  EXPECT_EQ(map.domain_count(), 8u);
  EXPECT_EQ(map.free_bytes(MemKind::mcdram), 16_GiB);
  EXPECT_EQ(map.free_bytes(MemKind::ddr), 96_GiB);
}

TEST(PhysMap, PrefersRequestedKind) {
  PhysMap map = PhysMap::knl(16_MiB, 64_MiB, 2);
  auto a = map.alloc(1_MiB, MemKind::mcdram);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(map.free_bytes(MemKind::mcdram), 15_MiB);
  EXPECT_EQ(map.free_bytes(MemKind::ddr), 64_MiB);
}

TEST(PhysMap, FallsBackToOtherKindWhenExhausted) {
  PhysMap map = PhysMap::knl(4_MiB, 64_MiB, 1);
  auto a = map.alloc(4_MiB, MemKind::mcdram);
  ASSERT_TRUE(a.ok());
  // MCDRAM is now empty; the next MCDRAM-preferring request must succeed
  // from DDR (the paper's UMT2013 configuration).
  auto b = map.alloc(1_MiB, MemKind::mcdram);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(map.free_bytes(MemKind::ddr), 63_MiB);
}

TEST(PhysMap, FreeReturnsToOwningDomain) {
  PhysMap map = PhysMap::knl(8_MiB, 8_MiB, 1);
  auto a = map.alloc(2_MiB, MemKind::ddr);
  ASSERT_TRUE(a.ok());
  map.free(*a, 2_MiB);
  EXPECT_EQ(map.free_bytes(MemKind::ddr), 8_MiB);
}

// NUMA-aware kheap refill: the home domain serves first, then same-kind
// siblings (stay in the fast tier), then any domain, then ENOMEM.
TEST(PhysMap, AllocNearPrefersHomeThenKindThenAny) {
  // Domains: mcdram0, mcdram1 (4 MiB each), ddr0, ddr1 (4 MiB each).
  PhysMap map = PhysMap::knl(8_MiB, 8_MiB, 2);
  auto in_domain = [&](const Result<PhysAddr>& a, std::size_t i) {
    return a.ok() && map.domain(i).allocator.contains(*a);
  };

  auto a = map.alloc_near(2_MiB, 0);
  EXPECT_TRUE(in_domain(a, 0));
  auto b = map.alloc_near(2_MiB, 0);
  EXPECT_TRUE(in_domain(b, 0));  // home still has room
  // Home exhausted: the same-kind sibling mcdram1 beats the DDR domains.
  auto c = map.alloc_near(2_MiB, 0);
  EXPECT_TRUE(in_domain(c, 1));
  auto d = map.alloc_near(2_MiB, 0);
  EXPECT_TRUE(in_domain(d, 1));
  // All MCDRAM gone: graceful fall-through to DDR keeps the alloc served.
  auto e = map.alloc_near(2_MiB, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(in_domain(e, 2) || in_domain(e, 3));
  // Exhaust everything: the final answer is ENOMEM, not a crash.
  while (map.alloc_near(2_MiB, 0).ok()) {
  }
  EXPECT_EQ(map.alloc_near(2_MiB, 0).error(), Errno::enomem);
  EXPECT_EQ(map.alloc_near(4_KiB, 99).error(), Errno::einval);

  // Frees land back in the owning domain regardless of who asked.
  map.free(*c, 2_MiB);
  EXPECT_TRUE(in_domain(map.alloc_near(2_MiB, 0), 1));
}

}  // namespace
}  // namespace pd::mem
