// Discrete-event simulation engine — the paper-scale core (DESIGN.md §8.5).
//
// Events are (time, sequence, callback) triples; ties break in insertion
// order so the simulation is deterministic. Simulated entities are written
// as C++20 coroutines (`Task<T>`, see task.hpp) that `co_await` delays and
// synchronization primitives; the engine resumes them from the event loop.
//
// Three mechanisms keep 256-node sweeps tractable:
//
//   * Calendar queue. Each shard keeps one "year" of buckets — sorted
//     intrusive lists covering [base, base + nbuckets*width) — plus a
//     min-heap for far-future overflow events. Enqueue/dequeue are O(1)
//     amortized; the queue rebuilds (resizing buckets and re-deriving the
//     bucket width from observed event spacing) as the population drifts.
//
//   * Pooled event frames. Events are fixed-size nodes from a per-shard
//     slab (the kheap slab idiom applied host-side); callbacks up to
//     kInlineBytes are stored inline, and `schedule_resume` of a coroutine
//     handle stores only the handle address — the steady-state event path
//     never touches the host heap. Oversized callbacks fall back to a
//     counted heap box. Coroutine frames themselves recycle through a
//     size-class pool (detail::frame_alloc below).
//
//   * Per-node shards. `enable_sharding(n, workers, lookahead)` gives every
//     simulated node its own clock and calendar; shards advance in
//     conservative rounds of width `lookahead` (the minimum cross-node wire
//     latency), so events inside a round cannot affect other shards and the
//     shards can drain on parallel host threads. Cross-shard events are
//     staged in per-(src,dst) outboxes and merged at the round barrier in
//     (dst, src, emission) order — the parallel schedule is bit-identical
//     to the sequential one. The default (no sharding) remains a single
//     queue with exactly the pre-sharding semantics.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/time.hpp"

namespace pd::sim {

namespace detail {

/// Size-class recycling pool for coroutine frames (process-global with
/// thread-local caches, so a Task may outlive the Engine that ran it).
/// Frames up to 4 KiB recycle through free lists in 64-byte classes;
/// larger frames go straight to the host heap.
void* frame_alloc(std::size_t bytes);
void frame_free(void* p) noexcept;
/// Donate this thread's cached frames to the shared pool (worker threads
/// call this before exiting so their frames are not stranded).
void frame_cache_flush() noexcept;

struct FramePoolCounters {
  std::uint64_t host_allocs;  ///< frames that had to touch ::operator new
  std::uint64_t pool_hits;    ///< frames served from a free list
};
FramePoolCounters frame_pool_counters() noexcept;

}  // namespace detail

class Engine {
 public:
  /// Scheduler-internal accounting, aggregated over shards. `pool_chunks` +
  /// `boxed_callbacks` + `calendar_rebuilds` are the only event-path host
  /// allocations; bench_sim_scale gates their sum per event.
  struct Stats {
    std::uint64_t pool_chunks = 0;        ///< event-node slab growths
    std::uint64_t boxed_callbacks = 0;    ///< callbacks too big for the SBO
    std::uint64_t calendar_rebuilds = 0;  ///< bucket-array resizes
    std::uint64_t overflow_parked = 0;    ///< events parked past the horizon
    std::uint64_t cross_shard_events = 0;
    std::uint64_t rounds = 0;  ///< conservative rounds (sharded mode)
  };

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  // --- Sharding ------------------------------------------------------------

  /// Split the engine into `shards` per-node queues drained by `workers`
  /// host threads (1 = deterministic sequential rounds; both schedules are
  /// bit-identical). Must be called before anything is scheduled.
  /// `lookahead` is the conservative round width: the minimum simulated
  /// delay of any cross-shard interaction (the fabric wire latency).
  void enable_sharding(int shards, int workers, Dur lookahead);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool sharded() const { return shards_.size() > 1; }
  Dur lookahead() const { return lookahead_; }
  /// Shard that schedule_* calls currently target (see ShardScope).
  int active_shard() const { return ctx_shard().id; }

  /// Pins the calling context to a shard: schedule_at/schedule_resume from
  /// inside the scope target that shard's queue. Event handlers themselves
  /// run with their shard as context, so a coroutine stays on the shard it
  /// was spawned on; scopes matter only for top-level setup code (cluster
  /// construction, rank spawning). No-op clamp to shard 0 when unsharded.
  class ShardScope {
   public:
    ShardScope(Engine& engine, int shard) : engine_(engine), prev_(engine.ambient_shard_) {
      assert(shard >= 0);
      engine_.ambient_shard_ = engine_.sharded() ? shard : 0;
      assert(engine_.ambient_shard_ < engine_.num_shards());
    }
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;
    ~ShardScope() { engine_.ambient_shard_ = prev_; }

   private:
    Engine& engine_;
    int prev_;
  };

  // --- Scheduling ----------------------------------------------------------

  /// Current simulated time (of the context shard; identical across shards
  /// at round boundaries).
  Time now() const { return ctx_shard().now; }

  /// Run `fn` at absolute simulated time `t` (>= now, asserted) on the
  /// context shard. Accepts any callable, including move-only ones.
  template <typename F>
  void schedule_at(Time t, F&& fn) {
    Shard& sh = ctx_shard();
    assert(t >= sh.now && "cannot schedule into the simulated past");
    EventNode* n = acquire(sh);
    set_payload(sh, *n, std::forward<F>(fn));
    push(sh, n, t);
  }

  /// Run `fn` after `d` picoseconds of simulated time.
  template <typename F>
  void schedule_after(Dur d, F&& fn) {
    schedule_at(ctx_shard().now + d, std::forward<F>(fn));
  }

  /// Run `fn` at time `t` on `shard`'s queue. Same-shard calls are plain
  /// schedules; cross-shard calls stage the event in an outbox merged at
  /// the next round barrier, and must respect the lookahead contract:
  /// t >= source now + lookahead.
  template <typename F>
  void schedule_on(int shard, Time t, F&& fn) {
    Shard& src = ctx_shard();
    Shard& dst = *shards_[static_cast<std::size_t>(shard)];
    if (&dst == &src || !running_) {
      assert(t >= dst.now && "cannot schedule into the simulated past");
      EventNode* n = acquire(dst);
      set_payload(dst, *n, std::forward<F>(fn));
      push(dst, n, t);
      return;
    }
    assert(t >= src.now + lookahead_ && "cross-shard event inside the lookahead window");
    EventNode* n = acquire(src);
    set_payload(src, *n, std::forward<F>(fn));
    n->t = t;  // seq assigned by the destination shard at merge time
    src.outbox[static_cast<std::size_t>(shard)].push_back(n);
    ++src.stats.cross_shard_events;
  }

  /// Resume a suspended coroutine after `d` (used by awaitables). Stores
  /// only the handle address in a pooled node — no host allocation.
  void schedule_resume(Dur d, std::coroutine_handle<> h);

  /// Awaitable: `co_await engine.delay(10_us);`
  struct DelayAwaiter {
    Engine& engine;
    Dur d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { engine.schedule_resume(d, h); }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Dur d) { return DelayAwaiter{*this, d}; }

  /// Awaitable that reschedules the coroutine at the current time, behind
  /// everything already queued for `now()` — a cooperative yield.
  DelayAwaiter yield() { return DelayAwaiter{*this, 0}; }

  // --- Execution -----------------------------------------------------------

  /// Process events until every queue drains. Returns the number processed.
  std::uint64_t run();

  /// Process events until the queues drain or `deadline` is passed (events
  /// at exactly `deadline` still run; the clock lands on `deadline` if the
  /// queue drained early).
  std::uint64_t run_until(Time deadline);

  /// Pop and execute a single event. False when the queue is empty.
  /// Single-queue mode only.
  bool step();

  bool idle() const;
  std::uint64_t events_processed() const;
  Stats stats() const;

  // --- Detached-task bookkeeping (see spawn in task.hpp) -------------------
  // The engine records each detached frame so immortal service loops
  // (device engines that `while (true)` forever) are destroyed with the
  // engine rather than leaked when the simulation ends.

  void note_task_spawned(std::coroutine_handle<> h) { ctx_shard().detached.insert(h.address()); }
  void note_task_done(std::coroutine_handle<> h);
  std::int64_t live_tasks() const;

 private:
  struct EventNode {
    /// Sized so a fabric delivery closure (WireChunk plus a port pointer,
    /// ~120 bytes) stays inline; whole node = 3 cache lines.
    static constexpr std::size_t kInlineBytes = 144;

    Time t = 0;
    std::uint64_t seq = 0;
    EventNode* next = nullptr;                       // bucket / free-list link
    void (*invoke)(EventNode&) = nullptr;            // run payload, then destroy it
    void (*drop)(EventNode&) = nullptr;              // destroy payload without running
    void (*relocate)(EventNode&, EventNode&) = nullptr;  // move payload (outbox merge)
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };

  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  struct Shard {
    int id = 0;
    Time now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;

    // One calendar year: [base, base + buckets.size() * width).
    std::vector<Bucket> buckets;
    Dur width = 100'000;  // 100 ns to start; rebuilds adapt it to the workload
    Time base = 0;
    std::size_t cur = 0;       // min-scan cursor: buckets below are empty
    std::size_t cal_size = 0;  // events currently in buckets
    std::uint64_t pops_since_resize = 0;

    // Far-future fallback: min-heap on (t, seq) of events past the horizon.
    std::vector<EventNode*> overflow;

    // Event-node slab pool.
    EventNode* free_list = nullptr;
    std::vector<std::unique_ptr<EventNode[]>> chunks;

    // Cross-shard staging: one emission-ordered box per destination shard.
    std::vector<std::vector<EventNode*>> outbox;

    std::unordered_set<void*> detached;  // frames of live detached tasks
    Stats stats;
  };

  /// Total event order: (t, seq) ascending.
  static bool later(const EventNode& a, const EventNode& b) {
    return a.t != b.t ? a.t > b.t : a.seq > b.seq;
  }
  /// `later` on pointers doubles as the std::*_heap comparator: make_heap
  /// with a "greater" comparator keeps the minimum on top.
  static bool heap_later(const EventNode* a, const EventNode* b) { return later(*a, *b); }

  /// The shard schedule_* calls act on: the shard whose event is currently
  /// executing (thread-local, set by the drain loops), else the ambient
  /// scope (ShardScope), else shard 0.
  Shard& ctx_shard() const {
    if (tls_ctx_.engine == this) return *tls_ctx_.shard;
    return *shards_[static_cast<std::size_t>(ambient_shard_)];
  }

  EventNode* acquire(Shard& sh) {
    if (sh.free_list == nullptr) grow_pool(sh);
    EventNode* n = sh.free_list;
    sh.free_list = n->next;
    n->next = nullptr;
    return n;
  }

  static void release(Shard& sh, EventNode* n) {
    n->invoke = nullptr;
    n->drop = nullptr;
    n->relocate = nullptr;
    n->next = sh.free_list;
    sh.free_list = n;
  }

  void push(Shard& sh, EventNode* n, Time t) {
    n->t = t;
    n->seq = sh.next_seq++;
    insert(sh, n);
  }

  /// Install a callable into a node: inline when it fits the SBO buffer,
  /// boxed on the heap (and counted) otherwise.
  template <typename F>
  static void set_payload(Shard& sh, EventNode& n, F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_v<D&>, "event callback must be invocable with no arguments");
    if constexpr (sizeof(D) <= EventNode::kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(n.buf)) D(std::forward<F>(fn));
      n.invoke = [](EventNode& e) {
        D* f = std::launder(reinterpret_cast<D*>(e.buf));
        (*f)();
        f->~D();
      };
      if constexpr (!std::is_trivially_destructible_v<D>) {
        n.drop = [](EventNode& e) { std::launder(reinterpret_cast<D*>(e.buf))->~D(); };
      }
      if constexpr (!std::is_trivially_copyable_v<D>) {
        n.relocate = [](EventNode& from, EventNode& to) {
          D* f = std::launder(reinterpret_cast<D*>(from.buf));
          ::new (static_cast<void*>(to.buf)) D(std::move(*f));
          f->~D();
        };
      }
    } else {
      auto* boxed = new D(std::forward<F>(fn));
      ++sh.stats.boxed_callbacks;
      std::memcpy(n.buf, &boxed, sizeof(boxed));
      n.invoke = [](EventNode& e) {
        D* p;
        std::memcpy(&p, e.buf, sizeof(p));
        (*p)();
        delete p;
      };
      n.drop = [](EventNode& e) {
        D* p;
        std::memcpy(&p, e.buf, sizeof(p));
        delete p;
      };
      // relocate stays null: the box pointer memcpys between nodes.
    }
  }

  // Calendar-queue mechanics (engine.cpp).
  void grow_pool(Shard& sh);
  static void bucket_insert(Bucket& b, EventNode* n);
  static EventNode* bucket_pop(Bucket& b);
  void insert(Shard& sh, EventNode* n);
  Time next_time(Shard& sh);           // kNever when the shard is empty
  EventNode* pop_min(Shard& sh);
  void rebase(Shard& sh);              // re-anchor the year at the overflow min
  void rebuild(Shard& sh, std::size_t nbuckets);
  void dispatch(Shard& sh, EventNode* n);

  // Round runners (engine.cpp).
  std::uint64_t run_single(Time deadline);
  std::uint64_t drain_shard(Shard& sh, Time bound);  // events with t < bound
  void merge_outboxes();
  Time global_next_time();
  std::uint64_t run_rounds(Time deadline);
  void run_rounds_parallel(Time deadline);

  static constexpr Time kNever = std::numeric_limits<Time>::max();

  std::vector<std::unique_ptr<Shard>> shards_;
  int workers_ = 1;
  Dur lookahead_ = 0;
  int ambient_shard_ = 0;
  bool running_ = false;

  struct ExecCtx {
    const Engine* engine = nullptr;
    Shard* shard = nullptr;
  };
  static thread_local ExecCtx tls_ctx_;
};

}  // namespace pd::sim
