// Translation/extent cache for the LWK fast path (registration cache).
//
// The PicoDriver fast paths walk page tables instead of get_user_pages()
// (§3.4) — cheap, but still O(pages) per call. HPC middleware (PSM2's TID
// cache, libfabric memory-registration caches) amortizes exactly this:
// repeated sends/TID registrations of the same pinned buffer should pay the
// walk once. ExtentCache memoizes `physical_extents` results per
// (va, len, max_extent) key.
//
// Invalidation is range-precise: a stale generation alone does not kill an
// entry. The address space keeps a bounded log of recently unmapped
// intervals, and an entry is re-walked only when its range actually
// overlaps a logged unmap (`Outcome::range_invalidated`) or when the log
// has overflowed past the entry's generation and nothing can be proven
// (`Outcome::generation_overflow` — the conservative whole-space fallback).
// Either way a stale entry can never hand out frames that were returned to
// the allocator.
//
// Eviction is size-aware by default: entries are scored by
// hit_count × resident bytes, decayed by LRU age, so the large persistent
// windows PSM registers survive bursts of small transient sends (the
// thrash problem pure LRU has with mixed-lifetime workloads). Entries can
// additionally be pinned (pin/unpin) for the duration of an in-flight
// send: a pinned entry is never an eviction victim, whatever its score.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/address_space.hpp"

namespace pd::mem {

class ExtentCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;                // key never seen (cold)
    std::uint64_t range_invalidations = 0;   // a logged unmap overlapped the entry
    std::uint64_t generation_overflows = 0;  // log overflowed; assumed stale
    std::uint64_t evictions = 0;             // entries pushed out at capacity

    /// All re-walks of a known key, whatever proved it stale.
    std::uint64_t invalidations() const {
      return range_invalidations + generation_overflows;
    }
  };

  /// What one lookup() did. `evicted_small` is a cold miss that had to push
  /// out the lowest-retention-value entry (under the size-aware policy: the
  /// small/transient one) to make room.
  enum class Outcome { hit, miss, range_invalidated, generation_overflow, evicted_small };

  enum class EvictionPolicy {
    lru,         // evict the least-recently-used entry (the PR-1 policy)
    size_aware,  // evict min of (1 + hits) × resident bytes, decayed by age
  };

  explicit ExtentCache(std::size_t capacity = 64,
                       EvictionPolicy policy = EvictionPolicy::size_aware)
      : capacity_(capacity), policy_(policy) {}

  /// Resolve [va, va+len) against `as`. On a hit the cached runs are
  /// returned without touching the page table; on a miss (or when the
  /// range was — or may have been — unmapped since the entry was filled)
  /// the walk re-runs into the entry's storage, reusing its capacity. With
  /// `capacity == 0` the cache degrades to pass-through: every lookup is a
  /// fresh walk into scratch storage and nothing is retained. The returned
  /// span is valid until the next lookup() on this cache.
  Result<std::span<const PhysExtent>> lookup(const AddressSpace& as, VirtAddr va,
                                             std::uint64_t len, std::uint64_t max_extent,
                                             Outcome* outcome = nullptr);

  /// Pin the entry for this key so eviction never selects it — for
  /// in-flight rendezvous windows that must stay resident for the duration
  /// of a send. Returns false when the key is not cached (capacity 0, or
  /// never looked up): nothing to protect, nothing to unpin. Pins nest;
  /// when every entry is pinned a cold miss temporarily overflows capacity
  /// instead of killing a window, and unpin() shrinks back.
  bool pin(VirtAddr va, std::uint64_t len, std::uint64_t max_extent);
  void unpin(VirtAddr va, std::uint64_t len, std::uint64_t max_extent);
  std::size_t pinned_entries() const;

  const Stats& stats() const { return stats_; }
  std::size_t entries() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  EvictionPolicy policy() const { return policy_; }

 private:
  struct Entry {
    VirtAddr va = 0;
    std::uint64_t len = 0;
    std::uint64_t max_extent = 0;
    std::uint64_t generation = 0;
    std::uint64_t last_used = 0;
    std::uint64_t hit_count = 0;
    std::uint32_t pin_count = 0;  // > 0: never an eviction victim
    std::vector<PhysExtent> extents;
  };

  /// Lowest-retention-value unpinned entry, or nullptr when all are pinned.
  Entry* select_victim();
  Entry* find_entry(VirtAddr va, std::uint64_t len, std::uint64_t max_extent);
  /// Drop low-value unpinned entries until back within capacity (after a
  /// pin-forced overflow ends).
  void shrink_to_capacity();

  std::size_t capacity_;
  EvictionPolicy policy_;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;  // few entries; linear scan beats hashing
  Entry scratch_;               // pass-through storage when capacity_ == 0
  Stats stats_;
};

}  // namespace pd::mem
