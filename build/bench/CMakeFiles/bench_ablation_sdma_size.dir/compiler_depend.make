# Empty compiler generated dependencies file for bench_ablation_sdma_size.
# This may be replaced when dependencies are built.
