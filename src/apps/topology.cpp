#include "src/apps/topology.hpp"

namespace pd::apps {

std::array<int, 3> cart_dims(int p) {
  // Greedy: repeatedly take the largest factor <= cube root of what's left.
  std::array<int, 3> dims = {1, 1, 1};
  int remaining = p;
  for (int d = 0; d < 3; ++d) {
    const int slots = 3 - d;
    int best = 1;
    for (int f = 1; f <= remaining; ++f) {
      if (remaining % f != 0) continue;
      // Want f close to remaining^(1/slots) from below.
      int power = 1;
      bool fits = true;
      for (int s = 0; s < slots; ++s) {
        if (power > remaining / f) {
          fits = false;
          break;
        }
        power *= f;
      }
      if (fits && power <= remaining) best = f;
    }
    dims[static_cast<std::size_t>(d)] = best;
    remaining /= best;
  }
  // Whatever is left multiplies into the last dimension.
  dims[2] *= remaining;
  return dims;
}

std::array<int, 3> cart_coords(const std::array<int, 3>& dims, int rank) {
  return {rank % dims[0], (rank / dims[0]) % dims[1], rank / (dims[0] * dims[1])};
}

int cart_neighbor(const std::array<int, 3>& dims, int rank, int dim, int dir) {
  auto c = cart_coords(dims, rank);
  const int d = dim;
  const int moved = c[static_cast<std::size_t>(d)] + dir;
  if (moved < 0 || moved >= dims[static_cast<std::size_t>(d)]) return -1;
  c[static_cast<std::size_t>(d)] = moved;
  return c[0] + dims[0] * (c[1] + dims[1] * c[2]);
}

}  // namespace pd::apps
