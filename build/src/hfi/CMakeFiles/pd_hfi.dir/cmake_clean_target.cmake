file(REMOVE_RECURSE
  "libpd_hfi.a"
)
