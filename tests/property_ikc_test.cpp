// IKC transport equivalence property (ISSUE 4).
//
// The ring transport changes *when* offloaded services run (batching,
// priorities, doorbells) but must not change *what* they do: the same
// seeded syscall stream driven through the legacy direct path and through
// the ring transport must produce identical per-request return values and
// identical side effects (every service executed exactly once, with its
// submitter-visible payload intact), and within one (channel, priority)
// pair the ring must execute requests in submission order — the FIFO
// contract real IKC rings give the LWK.
//
// Timing is explicitly NOT compared: faster completion is the transport's
// entire purpose. Timeout-free operation is asserted so the equivalence run
// exercises the happy path; the timeout/degradation ladder has its own
// regressions in ikc_transport_test.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L ikc` (also `property`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ikc/transport.hpp"
#include "src/os/kernel.hpp"

namespace pd::ikc {
namespace {

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0x1CC0FFEEull;
}

constexpr int kRanks = 24;
constexpr int kOpsPerRank = 40;

/// One scripted offload: every field derived from the seeded Rng before the
/// run, so both transports see the *same* stream.
struct Op {
  Priority prio = Priority::bulk;
  Dur work = 0;       // simulated Linux-side service time
  Dur gap = 0;        // submitter think time before the next op
  long payload = 0;   // the value the service must return
  bool fail = false;  // service returns EIO instead (errors must propagate)
};

struct ExecutionRecord {
  long rank;
  int op_index;
  int channel;
  Priority prio;
};

struct RunResult {
  // results[rank][op] — what the submitter got back.
  std::vector<std::vector<long>> results;
  std::vector<std::vector<Errno>> errors;
  // Service-side execution log, in execution order (the side effects).
  std::vector<ExecutionRecord> executed;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded = 0;
  std::uint64_t reply_wakeups = 0;
};

sim::Task<> drive_rank(sim::Engine& engine, IkcTransport& transport,
                       const std::vector<Op>& script, int rank, RunResult& out) {
  for (int k = 0; k < static_cast<int>(script.size()); ++k) {
    const Op& op = script[static_cast<std::size_t>(k)];
    auto r = co_await transport.offload(
        [&engine, &op, &out, rank, k]() -> sim::Task<Result<long>> {
          co_await engine.delay(op.work);
          out.executed.push_back({rank, k, rank % 0x7FFF'FFFF, op.prio});
          if (op.fail) co_return Errno::eio;
          co_return op.payload;
        },
        op.prio, rank);
    out.results[static_cast<std::size_t>(rank)].push_back(r.ok() ? *r : -1);
    out.errors[static_cast<std::size_t>(rank)].push_back(r.error());
    co_await engine.delay(op.gap);
  }
}

RunResult run_stream(os::IkcMode mode, const std::vector<std::vector<Op>>& scripts,
                     os::ReplyMode reply = os::ReplyMode::ring) {
  os::Config cfg;
  cfg.ikc_mode = mode;
  cfg.ikc_reply_mode = reply;
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  Samples queueing;
  IkcTransport transport(engine, cfg, linux_kernel.service_cpus(), linux_kernel.profiler(),
                         queueing, linux_kernel.spinlock_abi());

  RunResult out;
  out.results.resize(kRanks);
  out.errors.resize(kRanks);
  for (int r = 0; r < kRanks; ++r)
    sim::spawn(engine, drive_rank(engine, transport, scripts[static_cast<std::size_t>(r)],
                                  r, out));
  engine.run();
  out.timeouts = linux_kernel.profiler().counter("ikc.ring.timeout");
  out.degraded = linux_kernel.profiler().counter("ikc.ring.degraded");
  out.reply_wakeups = linux_kernel.profiler().counter("ikc.reply.wakeup");
  return out;
}

std::vector<std::vector<Op>> make_scripts(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Op>> scripts(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    Rng stream = rng.fork();
    for (int k = 0; k < kOpsPerRank; ++k) {
      Op op;
      op.prio = stream.next_below(4) == 0 ? Priority::control : Priority::bulk;
      op.work = from_us(stream.uniform(0.5, 6.0));
      op.gap = from_us(stream.uniform(1.0, 40.0));
      op.payload = static_cast<long>(r) * 1000 + k;
      op.fail = stream.next_below(16) == 0;
      scripts[static_cast<std::size_t>(r)].push_back(op);
    }
  }
  return scripts;
}

TEST(IkcProperty, RingTransportEquivalentToDirectPath) {
  const std::uint64_t seed = harness_seed();
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  const RunResult direct = run_stream(os::IkcMode::direct, scripts);
  const RunResult ring = run_stream(os::IkcMode::ring, scripts);

  // The equivalence run must stay on the happy path: a timeout would mean
  // the ring re-executed nothing (services are claimed exactly once) but
  // would route through the direct fallback and muddy the FIFO check.
  EXPECT_EQ(ring.timeouts, 0u);
  EXPECT_EQ(ring.degraded, 0u);

  // Identical return values, op by op — including propagated errors.
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(direct.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    ASSERT_EQ(ring.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    for (int k = 0; k < kOpsPerRank; ++k) {
      EXPECT_EQ(direct.results[r][k], ring.results[r][k])
          << "rank " << r << " op " << k << " diverged";
      EXPECT_EQ(direct.errors[r][k], ring.errors[r][k])
          << "rank " << r << " op " << k << " errno diverged";
    }
  }

  // Identical side effects: every scripted service ran exactly once in
  // both runs (no loss, no duplication under batching/doorbells).
  ASSERT_EQ(direct.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  ASSERT_EQ(ring.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  std::vector<std::vector<int>> seen(kRanks, std::vector<int>(kOpsPerRank, 0));
  for (const auto& e : ring.executed) ++seen[e.rank][e.op_index];
  for (int r = 0; r < kRanks; ++r)
    for (int k = 0; k < kOpsPerRank; ++k)
      EXPECT_EQ(seen[r][k], 1) << "rank " << r << " op " << k << " executed "
                               << seen[r][k] << " times";

  // Ring FIFO contract: within one (channel, priority) pair, execution
  // order equals submission order. Each rank submits on its own channel in
  // increasing op order, so per (rank, priority) the executed op indices
  // must be increasing.
  std::vector<int> last_control(kRanks, -1), last_bulk(kRanks, -1);
  for (const auto& e : ring.executed) {
    auto& last = e.prio == Priority::control ? last_control : last_bulk;
    EXPECT_LT(last[e.rank], e.op_index)
        << "FIFO violated on channel " << e.rank << " ("
        << (e.prio == Priority::control ? "control" : "bulk") << ")";
    last[e.rank] = e.op_index;
  }
}

TEST(IkcProperty, ReplyRingEquivalentToLatch) {
  // §8.4 extension of the transport-equivalence property: the reply ring
  // changes how a completion travels back (shared-memory poll + batched
  // doorbells instead of one latch wakeup per request), but the same
  // scripted stream through ring+latch and ring+reply-ring must produce
  // identical results, identical errno streams, identical once-each side
  // effects, and the same per-(channel, priority) FIFO execution order.
  const std::uint64_t seed = harness_seed() ^ 0x8E;
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  const RunResult latch = run_stream(os::IkcMode::ring, scripts, os::ReplyMode::latch);
  const RunResult reply = run_stream(os::IkcMode::ring, scripts, os::ReplyMode::ring);

  EXPECT_EQ(latch.timeouts, 0u);
  EXPECT_EQ(reply.timeouts, 0u);
  EXPECT_EQ(latch.degraded, 0u);
  EXPECT_EQ(reply.degraded, 0u);

  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(latch.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    ASSERT_EQ(reply.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    for (int k = 0; k < kOpsPerRank; ++k) {
      EXPECT_EQ(latch.results[r][k], reply.results[r][k])
          << "rank " << r << " op " << k << " diverged";
      EXPECT_EQ(latch.errors[r][k], reply.errors[r][k])
          << "rank " << r << " op " << k << " errno diverged";
    }
  }

  ASSERT_EQ(latch.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  ASSERT_EQ(reply.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  std::vector<std::vector<int>> seen(kRanks, std::vector<int>(kOpsPerRank, 0));
  for (const auto& e : reply.executed) ++seen[e.rank][e.op_index];
  for (int r = 0; r < kRanks; ++r)
    for (int k = 0; k < kOpsPerRank; ++k)
      EXPECT_EQ(seen[r][k], 1) << "rank " << r << " op " << k << " executed "
                               << seen[r][k] << " times under reply rings";

  for (const RunResult* run : {&latch, &reply}) {
    std::vector<int> last_control(kRanks, -1), last_bulk(kRanks, -1);
    for (const auto& e : run->executed) {
      auto& last = e.prio == Priority::control ? last_control : last_bulk;
      EXPECT_LT(last[e.rank], e.op_index)
          << "FIFO violated on channel " << e.rank << " ("
          << (e.prio == Priority::control ? "control" : "bulk") << ")";
      last[e.rank] = e.op_index;
    }
  }

  // The mechanism under test, visible in the counters: latch mode pays one
  // completion wakeup per request; the reply ring run must pay strictly
  // fewer (polling consumers cost none, parked channels amortize).
  EXPECT_EQ(latch.reply_wakeups, static_cast<std::uint64_t>(kRanks * kOpsPerRank));
  EXPECT_LT(reply.reply_wakeups, latch.reply_wakeups);
}

TEST(IkcProperty, RingModeIsDeterministic) {
  // Two identical ring runs must agree event for event — the transport
  // introduces no hidden nondeterminism (no wall clock, no unseeded state).
  const std::uint64_t seed = harness_seed() ^ 0xD5;
  const auto scripts = make_scripts(seed);
  const RunResult a = run_stream(os::IkcMode::ring, scripts);
  const RunResult b = run_stream(os::IkcMode::ring, scripts);
  ASSERT_EQ(a.executed.size(), b.executed.size());
  for (std::size_t i = 0; i < a.executed.size(); ++i) {
    EXPECT_EQ(a.executed[i].rank, b.executed[i].rank) << "at " << i;
    EXPECT_EQ(a.executed[i].op_index, b.executed[i].op_index) << "at " << i;
  }
  EXPECT_EQ(a.results, b.results);
}

}  // namespace
}  // namespace pd::ikc
