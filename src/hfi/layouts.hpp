// Driver structure layouts, versioned like vendor releases.
//
// The driver's internal structures (`hfi1_filedata`, `hfi1_ctxtdata`,
// `sdma_engine`, `sdma_state`) live as raw byte images in the Linux kernel
// heap. The *driver* accesses them through the compiled-in layout table
// below. The *PicoDriver* never sees this header: it learns the same
// offsets by running dwarf-extract-struct over the module binary that
// `ship_module()` produces — which is how the paper survives vendor
// updates that shuffle fields (§3.2). Each version here deliberately moves
// fields around to exercise exactly that.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/dwarf/layout_table.hpp"
#include "src/dwarf/module_binary.hpp"

namespace pd::hfi {

/// Enum the driver stores in sdma_state::current_state.
enum class SdmaStates : std::uint32_t {
  s00_hw_down = 0,
  s10_hw_start_up_halt_wait = 1,
  s15_hw_start_up_clean_wait = 2,
  s20_idle = 3,
  s30_sw_clean_up_wait = 4,
  s40_hw_clean_up_wait = 5,
  s50_hw_halt_wait = 6,
  s60_idle_halt_wait = 7,
  s80_hw_freeze = 8,
  s99_running = 9,
};

// The layout-table primitives are driver-agnostic (shared with src/doom/);
// keep the historical hfi:: spellings as aliases.
using FieldDef = dwarf::FieldDef;
using StructDef = dwarf::StructDef;

/// The layout table for one driver release.
class DriverLayouts {
 public:
  /// Known versions: "10.8-0", "10.9-5", "11.0-2". Unknown versions fail.
  static Result<DriverLayouts> for_version(const std::string& version);

  const std::string& version() const { return version_; }
  const StructDef* structure(const std::string& name) const;

  /// Produce the shipped module binary: .text stub, .modinfo version, and
  /// real DWARF debug info describing every structure above.
  dwarf::ModuleBinary ship_module() const;

 private:
  std::string version_;
  std::vector<StructDef> structs_;
};

using StructImage = dwarf::StructImage;

}  // namespace pd::hfi
