// Communication-skeleton proxies for the five CORAL mini-applications the
// paper evaluates (§4.2). Each reproduces the app's *communication
// pattern* — message sizes, collective mix, dependency structure, ranks
// per node — which is what determines its sensitivity to the three OS
// configurations. Physics is replaced by calibrated compute delays.
//
// Per-app characters (matching §4.2/§4.3 and Table 1):
//   LAMMPS   — 64 rpn; 3-D halo exchange, medium eager messages, light
//              collectives → insensitive to offloading (Fig. 5a).
//   Nekbone  — 32 rpn; CG: tiny allreduces + small halos → noise-latency
//              bound; the LWK's quiet cores win slightly (Fig. 5b).
//   UMT2013  — 32 rpn; directional sweeps: wavefront chains of *large*
//              expected-protocol messages + barriers → every hop pays the
//              offload tax, chains multiply it (Fig. 6a, Table 1).
//   HACC     — 32 rpn; Cart_create-heavy setup + large neighbour
//              exchanges per step (Fig. 6b, Table 1).
//   QBOX     — 32 rpn; Bcast/Alltoallv on column communicators, scratch
//              mmap/munmap churn per iteration (Fig. 7, Fig. 9, Table 1).
#pragma once

#include <cstdint>

#include "src/apps/runner.hpp"
#include "src/common/time.hpp"
#include "src/common/units.hpp"

namespace pd::apps {

struct LammpsParams {
  int steps = 4;
  std::uint64_t halo_bytes = 8_KiB;   // ghost atoms ride the PIO path
  Dur compute_per_step = from_us(900);
  int thermo_every = 2;  // allreduce cadence
};

struct NekboneParams {
  int cg_iterations = 10;
  std::uint64_t halo_bytes = 6_KiB;   // spectral faces: PIO, OS-bypass
  Dur compute_per_iter = from_us(420);
};

struct UmtParams {
  int steps = 2;
  int sweeps_per_step = 2;   // octant bundles
  int angle_groups = 24;      // pipelined angle blocks per sweep — this is
                             // what makes UMT a syscall firehose
  std::uint64_t angle_bytes = 160_KiB;  // per-group face payload (2 windows)
  Dur compute_per_group = from_us(10);
};

struct HaccParams {
  int steps = 3;
  std::uint64_t exchange_bytes = 256_KiB;
  Dur compute_per_step = from_ms(4.5);
  int cart_creates = 3;  // domain-decomposition setup calls
};

struct QboxParams {
  int scf_iterations = 3;
  std::uint64_t bcast_bytes = 2_MiB;     // wavefunction block (expected path)
  std::uint64_t alltoallv_bytes = 8_KiB; // per-pair payload (PIO path)
  std::uint64_t pair_bytes = 512_KiB;
  std::uint64_t scratch_bytes = 8_MiB;   // FFT work arrays churned per iter
  Dur compute_per_iter = from_ms(1.1);
};

sim::Task<> lammps_rank(mpirt::Rank& rank, LammpsParams params);
sim::Task<> nekbone_rank(mpirt::Rank& rank, NekboneParams params);
sim::Task<> umt_rank(mpirt::Rank& rank, UmtParams params);
sim::Task<> hacc_rank(mpirt::Rank& rank, HaccParams params);
sim::Task<> qbox_rank(mpirt::Rank& rank, QboxParams params);

/// Ranks-per-node used in the paper for each app (§4.2).
constexpr int kLammpsRpn = 64;
constexpr int kNekboneRpn = 32;
constexpr int kUmtRpn = 32;
constexpr int kHaccRpn = 32;
constexpr int kQboxRpn = 32;

}  // namespace pd::apps
