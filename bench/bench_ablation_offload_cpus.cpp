// Ablation: sensitivity of the plain-McKernel collapse to the number of
// Linux service CPUs. The paper attributes the UMT/HACC degradation to
// "high contention on a few Linux CPUs" (4 on OFP, vs 32–64 ranks); this
// sweep shows the collapse easing as CPUs are added.
#include "bench/bench_common.hpp"
#include "src/apps/proxies.hpp"

int main() {
  using namespace pd;
  using namespace pd::apps;
  bench::print_banner("Ablation — Linux service CPUs vs offload collapse (UMT2013, 8 nodes)",
                      "4 CPUs for 32 ranks is the paper's squeeze; more CPUs relieve it");

  UmtParams umt;
  auto body = [umt](mpirt::Rank& r) { return umt_rank(r, umt); };

  // Linux baseline (service CPU count is irrelevant for native syscalls).
  mpirt::ClusterOptions base;
  base.nodes = 8;
  base.mode = os::OsMode::linux;
  base.mcdram_bytes = 1ull << 30;
  base.ddr_bytes = 2ull << 30;
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = kUmtRpn;
  wopts.buf_bytes = 1ull << 20;
  const double linux_sec = run_app(base, wopts, body).runtime_sec;

  TextTable table({"Service CPUs", "McKernel s", "vs Linux", "Queue p95 us"});
  for (int cpus : {1, 2, 4, 8, 16}) {
    mpirt::ClusterOptions copts = base;
    copts.mode = os::OsMode::mckernel;
    copts.cfg.linux_service_cpus = cpus;
    auto out = run_app(copts, wopts, body);
    table.add_row({std::to_string(cpus), format_double(out.runtime_sec, 4),
                   format_double(100.0 * linux_sec / out.runtime_sec, 1) + "%",
                   format_double(out.offload_queue.p95_us, 1)});
  }
  std::printf("Linux baseline: %.4f s\n%s\n", linux_sec, table.to_string().c_str());

  // The same squeeze through the isolated storm harness, legacy vs ring:
  // batching relieves the few-service-CPU collapse without adding CPUs.
  using namespace pd::time_literals;
  TextTable ikc_table({"Service CPUs", "Legacy p95 us", "Ring p95 us"});
  const int per_rank = bench::quick_mode() ? 16 : 64;
  for (int cpus : {1, 2, 4, 8}) {
    os::Config cfg;
    cfg.linux_service_cpus = cpus;
    cfg.ikc_mode = os::IkcMode::direct;
    const auto legacy = bench::run_offload_storm(cfg, 32, per_rank, from_us(3), from_us(20));
    cfg.ikc_mode = os::IkcMode::ring;
    const auto ring = bench::run_offload_storm(cfg, 32, per_rank, from_us(3), from_us(20));
    ikc_table.add_row({std::to_string(cpus), format_double(legacy.queue.p95_us, 1),
                       format_double(ring.queue.p95_us, 1)});
  }
  std::printf("Offload storm (32 ranks), legacy direct vs ring-batched transport:\n%s\n",
              ikc_table.to_string().c_str());
  return 0;
}
