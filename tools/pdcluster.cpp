// pdcluster — scenario runner: run one mini-app proxy on a simulated
// cluster and print the figure-of-merit plus MPI / kernel profiles.
//
// Usage:
//   pdcluster --app umt --nodes 8 --mode mckernel_hfi [--rpn 32]
//
// Apps: lammps nekbone umt hacc qbox   Modes: linux mckernel mckernel_hfi
#include <cstdio>
#include <cstring>
#include <string>

#include "src/apps/proxies.hpp"

namespace {

using namespace pd;

int usage() {
  std::fprintf(stderr,
               "usage: pdcluster --app <lammps|nekbone|umt|hacc|qbox> "
               "[--nodes N] [--rpn N] [--mode linux|mckernel|mckernel_hfi]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app = "umt";
  int nodes = 8;
  int rpn = -1;
  os::OsMode mode = os::OsMode::mckernel_hfi;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--app") {
      const char* v = next();
      if (v == nullptr) return usage();
      app = v;
    } else if (arg == "--nodes") {
      const char* v = next();
      if (v == nullptr) return usage();
      nodes = std::atoi(v);
    } else if (arg == "--rpn") {
      const char* v = next();
      if (v == nullptr) return usage();
      rpn = std::atoi(v);
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return usage();
      if (std::strcmp(v, "linux") == 0)
        mode = os::OsMode::linux;
      else if (std::strcmp(v, "mckernel") == 0)
        mode = os::OsMode::mckernel;
      else if (std::strcmp(v, "mckernel_hfi") == 0)
        mode = os::OsMode::mckernel_hfi;
      else
        return usage();
    } else {
      return usage();
    }
  }

  mpirt::ClusterOptions copts;
  copts.nodes = nodes;
  copts.mode = mode;
  copts.mcdram_bytes = 1ull << 30;
  copts.ddr_bytes = 2ull << 30;
  mpirt::WorldOptions wopts;
  wopts.buf_bytes = 4ull << 20;

  std::function<sim::Task<>(mpirt::Rank&)> body;
  if (app == "lammps") {
    wopts.ranks_per_node = rpn > 0 ? rpn : apps::kLammpsRpn;
    apps::LammpsParams p;
    body = [p](mpirt::Rank& r) { return apps::lammps_rank(r, p); };
  } else if (app == "nekbone") {
    wopts.ranks_per_node = rpn > 0 ? rpn : apps::kNekboneRpn;
    apps::NekboneParams p;
    body = [p](mpirt::Rank& r) { return apps::nekbone_rank(r, p); };
  } else if (app == "umt") {
    wopts.ranks_per_node = rpn > 0 ? rpn : apps::kUmtRpn;
    apps::UmtParams p;
    body = [p](mpirt::Rank& r) { return apps::umt_rank(r, p); };
  } else if (app == "hacc") {
    wopts.ranks_per_node = rpn > 0 ? rpn : apps::kHaccRpn;
    apps::HaccParams p;
    body = [p](mpirt::Rank& r) { return apps::hacc_rank(r, p); };
  } else if (app == "qbox") {
    wopts.ranks_per_node = rpn > 0 ? rpn : apps::kQboxRpn;
    apps::QboxParams p;
    body = [p](mpirt::Rank& r) { return apps::qbox_rank(r, p); };
  } else {
    return usage();
  }

  const auto out = apps::run_app(copts, wopts, body);

  std::printf("app=%s nodes=%d ranks=%d mode=%s\n", app.c_str(), nodes,
              nodes * wopts.ranks_per_node, to_string(mode));
  std::printf("solve time      : %.6f s (simulated)\n", out.runtime_sec);
  std::printf("total time      : %.6f s (incl. Init/Finalize)\n", out.total_sec);
  std::printf("SDMA descriptors: %llu (mean %.0f bytes)\n",
              static_cast<unsigned long long>(out.sdma_descriptors),
              out.sdma_descriptors
                  ? static_cast<double>(out.sdma_bytes) / out.sdma_descriptors
                  : 0.0);
  if (out.offloads > 0)
    std::printf("offloads        : %llu (queue p50 %.1f / p95 %.1f / max %.1f us)\n",
                static_cast<unsigned long long>(out.offloads), out.offload_queue.p50_us,
                out.offload_queue.p95_us, out.offload_queue.max_us);

  std::printf("\nTop MPI calls (cumulative over ranks):\n");
  for (const auto& row : out.mpi.rows(5))
    std::printf("  MPI_%-12s %10.2f ms  %5.1f%% MPI  %5.1f%% Rt\n", row.call.c_str(),
                row.time_ms, row.pct_mpi, row.pct_runtime);

  std::printf("\nKernel time by syscall (solve region):\n");
  for (const auto& row : out.kernel.rows(7))
    std::printf("  %-10s %10.2f ms  %5.1f%%\n", row.name.c_str(), row.total_us / 1000.0,
                100.0 * row.share);
  return 0;
}
