file(REMOVE_RECURSE
  "libpd_apps.a"
)
