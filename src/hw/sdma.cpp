#include "src/hw/sdma.hpp"

#include <algorithm>
#include <cassert>

namespace pd::hw {

SdmaEngine::SdmaEngine(sim::Engine& engine, Fabric& fabric, SdmaConfig config, int engine_id)
    : engine_(engine),
      fabric_(fabric),
      config_(config),
      id_(engine_id),
      work_signal_(engine),
      ring_slots_free_(config.ring_slots) {
  sim::spawn(engine_, run());
}

Status SdmaEngine::submit(SdmaRequest request) {
  if (request.descriptors.empty()) return Errno::einval;
  for (const auto& d : request.descriptors)
    if (d.len == 0 || d.len > config_.max_descriptor_bytes) return Errno::einval;
  if (request.descriptors.size() > ring_slots_free_) return Errno::eagain;
  ring_slots_free_ -= request.descriptors.size();
  queue_.push_back(std::move(request));
  work_signal_.send(1);
  return Status::success();
}

sim::Task<> SdmaEngine::run() {
  while (true) {
    (void)co_await work_signal_.recv();
    while (!queue_.empty()) {
      SdmaRequest req = std::move(queue_.front());
      queue_.pop_front();

      // Engine-side processing (descriptor fetch + DMA read) is pipelined
      // with wire serialization on real hardware: while descriptor k is on
      // the wire, k+1 is being fetched and DMA'd. One request is one
      // simulation transfer unit, so the pipeline is folded in exactly:
      // the engine stalls only for the first descriptor (pipeline fill),
      // and the wire time is the maximum of total wire serialization and
      // the remaining engine work (whichever resource is the bottleneck).
      const std::size_t n = req.descriptors.size();
      Dur engine_time = 0;
      Dur wire_time = 0;
      std::uint64_t total_bytes = 0;
      for (const SdmaDescriptor& d : req.descriptors) {
        engine_time += config_.per_descriptor_overhead +
                       transfer_time(d.len, config_.dma_read_bytes_per_sec);
        wire_time += fabric_.serialize_time(d.len);
        total_bytes += d.len;
      }
      const Dur fill = config_.per_descriptor_overhead +
                       transfer_time(req.descriptors.front().len,
                                     config_.dma_read_bytes_per_sec);
      co_await engine_.delay(fill);
      descriptors_issued_ += n;
      descriptor_bytes_total_ += total_bytes;
      ring_slots_free_ += n;
      if (req.recycle_descriptors) req.recycle_descriptors(std::move(req.descriptors));

      WireChunk chunk;
      chunk.msg = req.header;
      chunk.chunk_bytes = total_bytes;
      chunk.serialize_cost = std::max(wire_time, engine_time - fill);
      chunk.last = true;

      // Completion fires when the last byte has left the egress port; the
      // engine itself moves on as soon as the transfer is queued.
      SdmaCompletion done = std::move(req.on_complete);
      ++requests_completed_;
      fabric_.send(std::move(chunk), [done = std::move(done)] {
        if (done) done();
      });
    }
  }
}

}  // namespace pd::hw
