# Empty compiler generated dependencies file for ib_regmr_extension.
# This may be replaced when dependencies are built.
