#include "src/sim/engine.hpp"

#include <cassert>

namespace pd::sim {

Engine::~Engine() {
  // Detached service coroutines (device engines etc.) loop forever and are
  // still suspended when the simulation ends; reclaim their frames. Nothing
  // resumes during teardown, so destroying in set order is safe — detached
  // frames are top-level and never own one another.
  for (void* addr : detached_) std::coroutine_handle<>::from_address(addr).destroy();
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_resume(Dur d, std::coroutine_handle<> h) {
  assert(d >= 0);
  schedule_at(now_ + d, [h] { h.resume(); });
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the function object must be moved out
  // before pop, hence the const_cast-free copy of the two scalars plus a
  // move of the callable via a local.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++events_processed_;
  ev.fn();
  return true;
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return n;
}

}  // namespace pd::sim
