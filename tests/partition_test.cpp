// Tests for IHK resource partitioning: dynamic reserve/boot/release with
// no "reboot", CPU offlining semantics, exclusivity, reconfiguration.
#include <gtest/gtest.h>

#include "src/os/partition.hpp"

namespace pd::os {
namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

TEST(HostInventory, ReservesHighestCpusFirst) {
  HostInventory host(68, 112 * kGiB);
  auto cpus = host.reserve_cpus(64);
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(cpus->size(), 64u);
  EXPECT_EQ(cpus->front(), 4) << "low CPUs stay with Linux";
  EXPECT_EQ(cpus->back(), 67);
  EXPECT_EQ(host.online_cpus(), 4);
  for (int c = 0; c < 4; ++c) EXPECT_TRUE(host.cpu_online(c));
  for (int c = 4; c < 68; ++c) EXPECT_FALSE(host.cpu_online(c));
}

TEST(HostInventory, OverReservationFails) {
  HostInventory host(8, kGiB);
  EXPECT_TRUE(host.reserve_cpus(6).ok());
  EXPECT_EQ(host.reserve_cpus(3).error(), Errno::ebusy);
  EXPECT_EQ(host.reserve_cpus(0).error(), Errno::einval);
  EXPECT_EQ(host.reserve_memory(2 * kGiB).error(), Errno::enomem);
}

TEST(HostInventory, ExactReservationConflicts) {
  HostInventory host(8, kGiB);
  EXPECT_TRUE(host.reserve_cpus_exact({5, 6}).ok());
  EXPECT_EQ(host.reserve_cpus_exact({6, 7}).error(), Errno::ebusy);
  EXPECT_EQ(host.reserve_cpus_exact({9}).error(), Errno::einval);
  host.release_cpus({5, 6});
  EXPECT_TRUE(host.reserve_cpus_exact({6, 7}).ok());
}

TEST(HostInventory, MemoryAccounting) {
  HostInventory host(4, 10 * kGiB);
  ASSERT_TRUE(host.reserve_memory(6 * kGiB).ok());
  EXPECT_EQ(host.free_memory(), 4 * kGiB);
  host.release_memory(2 * kGiB);
  EXPECT_EQ(host.free_memory(), 6 * kGiB);
}

TEST(IhkPartitionTest, CreateBootShutdownReleaseCycle) {
  HostInventory host(68, 112 * kGiB);
  {
    auto part = IhkPartition::create(host, 64, 96 * kGiB);
    ASSERT_TRUE(part.ok());
    EXPECT_EQ(host.online_cpus(), 4);
    EXPECT_EQ(host.free_memory(), 16 * kGiB);
    EXPECT_TRUE(part->boot().ok());
    EXPECT_TRUE(part->booted());
    EXPECT_EQ(part->boot().error(), Errno::ebusy) << "double boot";
    EXPECT_TRUE(part->shutdown().ok());
    EXPECT_EQ(part->shutdown().error(), Errno::einval) << "double shutdown";
  }
  // Destruction returns everything — the "no reboot required" property.
  EXPECT_EQ(host.online_cpus(), 68);
  EXPECT_EQ(host.free_memory(), 112 * kGiB);
}

TEST(IhkPartitionTest, FailedCreateLeavesInventoryUntouched) {
  HostInventory host(8, kGiB);
  // CPU reservation would succeed, memory cannot: must roll back the CPUs.
  auto part = IhkPartition::create(host, 4, 2 * kGiB);
  EXPECT_FALSE(part.ok());
  EXPECT_EQ(host.online_cpus(), 8);
  EXPECT_EQ(host.free_memory(), kGiB);
}

TEST(IhkPartitionTest, TwoPartitionsAreDisjoint) {
  // The paper's synchronization section notes a single NIC can be shared
  // by multiple LWKs; partitions must never share CPUs.
  HostInventory host(16, 8 * kGiB);
  auto a = IhkPartition::create(host, 6, 2 * kGiB);
  auto b = IhkPartition::create(host, 6, 2 * kGiB);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int cpu : a->cpus())
    EXPECT_EQ(std::count(b->cpus().begin(), b->cpus().end(), cpu), 0);
  EXPECT_EQ(host.online_cpus(), 4);
}

TEST(IhkPartitionTest, GrowAndShrink) {
  HostInventory host(16, 8 * kGiB);
  auto part = IhkPartition::create(host, 4, kGiB);
  ASSERT_TRUE(part.ok());
  EXPECT_TRUE(part->grow_cpus(4).ok());
  EXPECT_EQ(part->cpus().size(), 8u);
  EXPECT_EQ(host.online_cpus(), 8);

  ASSERT_TRUE(part->boot().ok());
  EXPECT_EQ(part->shrink_cpus(2).error(), Errno::ebusy) << "booted LWK owns its CPUs";
  ASSERT_TRUE(part->shutdown().ok());
  EXPECT_TRUE(part->shrink_cpus(2).ok());
  EXPECT_EQ(part->cpus().size(), 6u);
  EXPECT_EQ(host.online_cpus(), 10);
  EXPECT_EQ(part->shrink_cpus(6).error(), Errno::einval) << "cannot shrink to zero";
}

TEST(IhkPartitionTest, MoveTransfersOwnership) {
  HostInventory host(8, kGiB);
  auto part = IhkPartition::create(host, 4, kGiB / 2);
  ASSERT_TRUE(part.ok());
  {
    IhkPartition moved = std::move(*part);
    EXPECT_EQ(moved.cpus().size(), 4u);
    EXPECT_EQ(host.online_cpus(), 4);
  }
  // Released exactly once, by the moved-to object.
  EXPECT_EQ(host.online_cpus(), 8);
  EXPECT_EQ(host.free_memory(), kGiB);
}

}  // namespace
}  // namespace pd::os
