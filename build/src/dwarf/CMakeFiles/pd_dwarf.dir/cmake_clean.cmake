file(REMOVE_RECURSE
  "CMakeFiles/pd_dwarf.dir/extract.cpp.o"
  "CMakeFiles/pd_dwarf.dir/extract.cpp.o.d"
  "CMakeFiles/pd_dwarf.dir/module_binary.cpp.o"
  "CMakeFiles/pd_dwarf.dir/module_binary.cpp.o.d"
  "CMakeFiles/pd_dwarf.dir/reader.cpp.o"
  "CMakeFiles/pd_dwarf.dir/reader.cpp.o.d"
  "CMakeFiles/pd_dwarf.dir/writer.cpp.o"
  "CMakeFiles/pd_dwarf.dir/writer.cpp.o.d"
  "libpd_dwarf.a"
  "libpd_dwarf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_dwarf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
