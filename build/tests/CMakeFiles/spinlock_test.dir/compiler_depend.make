# Empty compiler generated dependencies file for spinlock_test.
# This may be replaced when dependencies are built.
