# Empty dependencies file for pd_hw.
# This may be replaced when dependencies are built.
