// The PicoDriver framework (the paper's §3, generically).
//
// Binding a PicoDriver to a Linux driver requires, in order:
//   1. the kernel VA layouts to be unified (§3.1) — checked, and the LWK
//      image mapped into Linux via a vmap_area reservation so Linux can
//      invoke LWK callbacks;
//   2. compatible spin-lock implementations (§3.3) — checked by ABI id;
//   3. the driver structure layouts — extracted from the *shipped module
//      binary's* DWARF info (§3.2), never from driver headers.
//
// The result is a `PicoBinding`: validated structure layouts plus helpers
// to build LWK-resident kernel callbacks. Driver-specific fast paths (e.g.
// hfi_picodriver.hpp) are built on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/dwarf/extract.hpp"
#include "src/dwarf/module_binary.hpp"
#include "src/os/mckernel.hpp"

namespace pd::pico {

/// One structure the fast path needs, with the fields it touches.
struct StructRequest {
  std::string name;
  std::vector<std::string> fields;
};

/// Everything a bound PicoDriver knows.
class PicoBinding {
 public:
  /// Perform the full §3 binding procedure. Fails with:
  ///   EPERM  — VA layouts not unified (boot McKernel with the new layout);
  ///   EEXIST — vmap_area reservation collision on the Linux side;
  ///   ENOSYS — spin-lock ABI mismatch;
  ///   ENOENT/EINVAL — requested structure/field missing from debug info.
  static Result<PicoBinding> bind(os::McKernel& mck, os::LinuxKernel& linux_kernel,
                                  const dwarf::ModuleBinary& module,
                                  const std::vector<StructRequest>& requests);

  const mem::UnificationReport& unification() const { return unification_; }
  const std::string& driver_version() const { return driver_version_; }

  /// Extracted layout for a bound structure (nullptr if not requested).
  const dwarf::StructLayout* layout(const std::string& struct_name) const;

  /// Generated Listing-1 style header for a bound structure.
  Result<std::string> generated_header(const std::string& struct_name) const;

  /// A callback whose text lives in the LWK image — invocable from Linux
  /// only because bind() reserved the vmap_area (§3.1 requirement 3).
  os::KernelCallback lwk_callback(std::function<void()> fn) const;

  os::McKernel& mckernel() const { return *mck_; }
  os::LinuxKernel& linux_kernel() const { return *linux_; }

 private:
  PicoBinding() = default;

  os::McKernel* mck_ = nullptr;
  os::LinuxKernel* linux_ = nullptr;
  mem::UnificationReport unification_;
  std::string driver_version_;
  std::map<std::string, dwarf::StructLayout> layouts_;
  // Keep the parsed view alive for generated_header().
  std::shared_ptr<dwarf::DebugInfoView> view_;
};

}  // namespace pd::pico
