#include "src/pico/fast_path_port.hpp"

#include <algorithm>
#include <cassert>

#include "src/os/process.hpp"

namespace pd::pico {

FastPathPort::FastPathPort(PicoBinding binding, os::McKernel& mck)
    : binding_(std::move(binding)), mck_(mck) {}

FastPathPort::~FastPathPort() = default;

Result<PicoBinding> FastPathPort::bind_checked(os::McKernel& mck,
                                               os::LinuxKernel& linux_kernel,
                                               const dwarf::ModuleBinary& module,
                                               const std::vector<StructRequest>& requests,
                                               const os::SharedSpinlock* submission_lock) {
  auto binding = PicoBinding::bind(mck, linux_kernel, module, requests);
  if (!binding.ok()) return binding.error();
  // §3.3: the LWK will take the driver's own submission spin-lock; the
  // implementations must be ABI-compatible or the shared lock word would
  // be corrupted.
  if (submission_lock != nullptr && submission_lock->abi() != mck.spinlock_abi())
    return Errno::enosys;
  return binding;
}

void FastPathPort::install(os::CharDevice& dev, os::FastPathOps ops) {
  mck_.register_fastpath(dev, std::move(ops));
}

sim::Task<> FastPathPort::rank_init() {
  // McKernel-side establishment of kernel mappings of driver internals —
  // the added MPI_Init cost the paper reports (Table 1, italic rows).
  co_await mck_.engine().delay(mck_.config().pico_bind_cost);
}

int FastPathPort::lwk_cpu_for(const os::Process& proc) const {
  const auto& cpus = mck_.cpus();
  return cpus[static_cast<std::size_t>(proc.ctxt()) % cpus.size()];
}

mem::ExtentCache& FastPathPort::extent_cache_for(const os::OpenFile& f) {
  const FileKey key{static_cast<const void*>(f.proc), f.fd};
  auto it = file_caches_.find(key);
  if (it == file_caches_.end()) {
    // `pico_extent_quota_files` caps how many per-file caches one process
    // may hold; at the cap its *own* coldest file cache is dropped. Other
    // processes' caches are never candidates, so a cache-hungry tenant
    // cannot flush a neighbour's translations. A cache with pinned entries
    // is never the victim either: a suspended fast path still holds a
    // reference to it and reads its extents when it resumes — eviction
    // falls to the next-coldest owned cache, and when every candidate is
    // pinned the quota temporarily overflows until a pin drops.
    const int cap = mck_.config().pico_extent_quota_files;
    if (cap > 0) {
      auto owned = [&](const FileKey& k) { return k.first == key.first; };
      auto count =
          std::count_if(file_cache_order_.begin(), file_cache_order_.end(), owned);
      while (count >= cap) {
        auto victim = file_cache_order_.end();
        for (auto pos = file_cache_order_.begin(); pos != file_cache_order_.end(); ++pos) {
          if (!owned(*pos)) continue;
          if (file_caches_.at(*pos).cache.pinned_entries() > 0) {
            ++cache_quota_skip_pinned_;
            mck_.profiler().bump("pico.extent_cache.quota_skip_pinned");
            continue;
          }
          victim = pos;
          break;
        }
        if (victim == file_cache_order_.end()) break;  // all pinned: overflow
        file_caches_.erase(*victim);
        file_cache_order_.erase(victim);
        ++cache_file_quota_evictions_;
        mck_.profiler().bump("pico.extent_cache.quota_file_evicted");
        --count;
      }
    }
    it = file_caches_.emplace(key, FileCacheNode{}).first;
    file_cache_order_.push_back(key);
    it->second.order_pos = std::prev(file_cache_order_.end());
  } else {
    // Refresh recency: O(1) splice of the touched key to the hot end (the
    // stored iterator stays valid — splice never invalidates them).
    file_cache_order_.splice(file_cache_order_.end(), file_cache_order_,
                             it->second.order_pos);
  }
  return it->second.cache;
}

void FastPathPort::note_cache_outcome(mem::ExtentCache::Outcome outcome) {
  switch (outcome) {
    case mem::ExtentCache::Outcome::hit:
      ++cache_hits_;
      mck_.profiler().bump("pico.extent_cache.hit");
      break;
    case mem::ExtentCache::Outcome::miss:
      ++cache_misses_;
      mck_.profiler().bump("pico.extent_cache.miss");
      break;
    case mem::ExtentCache::Outcome::evicted_small:
      // A cold miss that pushed out the lowest-value (small/transient)
      // entry; counted as a miss plus an eviction event.
      ++cache_misses_;
      ++cache_small_evictions_;
      mck_.profiler().bump("pico.extent_cache.miss");
      mck_.profiler().bump("pico.extent_cache.evicted_small");
      break;
    case mem::ExtentCache::Outcome::range_invalidated:
      ++cache_range_invalidations_;
      mck_.profiler().bump("pico.extent_cache.range_invalidated");
      break;
    case mem::ExtentCache::Outcome::generation_overflow:
      ++cache_generation_overflows_;
      mck_.profiler().bump("pico.extent_cache.generation_overflow");
      break;
  }
}

void FastPathPort::count_ring_full_fallback() {
  ++fallbacks_;
  ++ring_full_fallbacks_;
  mck_.profiler().bump("pico.ring_full_fallback");
}

Result<mem::PhysAddr> FastPathPort::kmalloc_meta(std::size_t bytes, int cpu) {
  // Steady state this is an O(1) pop off the core's slab magazine; a cold
  // refill carves from the core's near partition (placement outcomes land
  // on the profiler as lwk.kheap.{near_alloc,far_alloc,partition_exhausted}).
  const mem::KernelHeap::Stats stats_before = mck_.kheap().stats();
  auto meta = mck_.kheap().kmalloc(bytes, cpu);
  if (!meta.ok()) return meta.error();
  if (mck_.kheap().stats().slab_reuses != stats_before.slab_reuses)
    mck_.profiler().bump("lwk.kheap.slab_reuse");
  mck_.note_kheap_placement(stats_before);
  return meta;
}

os::KernelCallback FastPathPort::remote_free_cleanup(mem::PhysAddr meta_addr) {
  os::McKernel* mck = &mck_;
  os::LinuxKernel* lnx = &binding_.linux_kernel();
  return binding_.lwk_callback([mck, lnx, meta_addr] {
    // Runs on whichever Linux service CPU fields the IRQ: the foreign free
    // carries that CPU's socket into the remote queue, so the owner's
    // drain can batch reclaims per source socket.
    Status s = mck->kheap().kfree(meta_addr, lnx->current_irq_cpu());
    assert(s.ok());
    (void)s;
  });
}

}  // namespace pd::pico
