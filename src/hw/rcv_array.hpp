// RcvArray: the HFI's expected-receive table (paper §2.2.2).
//
// Each entry (TID) describes a physically contiguous receive buffer run.
// User space registers buffers via ioctl(); the driver translates them to
// entries and programs the hardware; incoming expected packets consult the
// TID and place data directly into application memory (no eager copy).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/types.hpp"

namespace pd::hw {

struct TidEntry {
  mem::PhysAddr pa = 0;
  std::uint64_t len = 0;
  bool valid = false;
  int owner_ctxt = -1;  // receive context that programmed the entry
};

class RcvArray {
 public:
  explicit RcvArray(std::uint32_t entries) : entries_(entries) {}

  /// Program a free entry; returns the TID index.
  Result<std::uint32_t> program(int ctxt, mem::PhysAddr pa, std::uint64_t len);

  /// Unprogram (free) an entry. EINVAL when not owned/valid.
  Status unprogram(int ctxt, std::uint32_t tid);

  /// Release every entry owned by a context (driver does this on close()).
  std::size_t unprogram_all(int ctxt);

  const TidEntry* entry(std::uint32_t tid) const;
  std::uint32_t capacity() const { return static_cast<std::uint32_t>(entries_.size()); }
  std::uint32_t in_use() const { return in_use_; }

 private:
  std::vector<TidEntry> entries_;
  std::map<int, std::uint32_t> per_ctxt_;  // live entries per context
  std::uint32_t in_use_ = 0;
  std::uint32_t next_hint_ = 0;
};

}  // namespace pd::hw
