# Empty compiler generated dependencies file for bench_ablation_offload_cpus.
# This may be replaced when dependencies are built.
