# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("dwarf")
subdirs("mem")
subdirs("hw")
subdirs("os")
subdirs("hfi")
subdirs("pico")
subdirs("psm")
subdirs("mpirt")
subdirs("apps")
