# Empty dependencies file for pd_mpirt.
# This may be replaced when dependencies are built.
