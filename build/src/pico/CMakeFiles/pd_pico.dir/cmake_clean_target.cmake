file(REMOVE_RECURSE
  "libpd_pico.a"
)
