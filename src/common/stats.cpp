#include "src/common/stats.hpp"

#include <algorithm>

#include "src/common/rng.hpp"
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pd {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (mean_ * na + other.mean_ * nb) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  ++seen_;
  sum_ += x;
  if (seen_ == 1 || x > max_) max_ = x;
  if (cap_ == 0 || xs_.size() < cap_) {
    xs_.push_back(x);
    return;
  }
  // Algorithm R: the i-th sample replaces a uniformly random reservoir slot
  // with probability cap/i, leaving every sample seen so far equally likely
  // to be retained.
  const std::uint64_t j = splitmix64(rng_) % static_cast<std::uint64_t>(seen_);
  if (j < static_cast<std::uint64_t>(cap_)) xs_[static_cast<std::size_t>(j)] = x;
}

void Samples::merge(const Samples& other) {
  if (other.seen_ == 0) return;
  if (seen_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  for (const double x : other.xs_) {
    ++seen_;
    if (cap_ == 0 || xs_.size() < cap_) {
      xs_.push_back(x);
      continue;
    }
    const std::uint64_t j = splitmix64(rng_) % static_cast<std::uint64_t>(seen_);
    if (j < static_cast<std::uint64_t>(cap_)) xs_[static_cast<std::size_t>(j)] = x;
  }
  // Samples the other side itself evicted still count toward the total.
  seen_ += other.seen_ - other.xs_.size();
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  return out.str();
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace pd
