// Figure 5: LAMMPS (a, 64 ranks/node) and Nekbone (b, 32 ranks/node) weak
// scaling, relative to Linux.
//
// Paper result: these two are NOT bottlenecked by driver syscalls —
// LAMMPS runs at par with Linux on McKernel, Nekbone shows a small LWK
// win from noise-free cores; the HFI PicoDriver must not regress either
// (it performs like, or slightly above, plain McKernel).
#include "bench/app_figure.hpp"

int main() {
  using namespace pd;
  using namespace pd::apps;

  bench::print_banner("Figure 5a — LAMMPS weak scaling (64 ranks/node)",
                      "McKernel ≈ Linux; McKernel+HFI1 similar or slightly ahead");
  LammpsParams lammps;
  bench::AppFigureSpec lammps_spec{
      "LAMMPS", kLammpsRpn, 512ull << 10,
      [lammps](mpirt::Rank& r) { return lammps_rank(r, lammps); }};
  bench::print_app_figure(lammps_spec, bench::node_axis(256));

  bench::print_banner("Figure 5b — Nekbone weak scaling (32 ranks/node)",
                      "small McKernel win (noise-free cores); HFI1 does not regress");
  NekboneParams nekbone;
  bench::AppFigureSpec nekbone_spec{
      "Nekbone", kNekboneRpn, 512ull << 10,
      [nekbone](mpirt::Rank& r) { return nekbone_rank(r, nekbone); }};
  bench::print_app_figure(nekbone_spec, bench::node_axis(256));
  return 0;
}
