// Collective-structured mini-apps for the OS-noise sensitivity study.
//
// The five CORAL proxies (proxies.hpp) reproduce the paper's Table-1 apps;
// these two diversify the set toward the *collective* patterns that
// amplify OS noise at scale — the study the ROADMAP's noise item asks for:
//
//   Stencil27  — 3D 27-point stencil with CG pressure solves: per-iteration
//                halo exchange plus two tiny dot-product allreduces
//                (latency-bound, every rank waits on the slowest core) and
//                one large residual allreduce per solve that crosses into
//                the ring algorithm at scale.
//   FftStep    — HACC-like spectral step: forward/backward pencil↔slab
//                transposes, each a full personalized alltoall (P-1 peers
//                per rank), the densest communicator-wide dependency — one
//                straggler delays every rank's transpose.
//
// Physics is replaced by calibrated compute delays, exactly as in
// proxies.cpp; what matters is the dependency structure each collective
// imposes between noisy cores.
#pragma once

#include <cstdint>

#include "src/apps/runner.hpp"
#include "src/common/time.hpp"
#include "src/common/units.hpp"

namespace pd::apps {

struct StencilParams {
  int timesteps = 2;
  int cg_iterations = 8;                  // CG iterations per timestep
  std::uint64_t halo_bytes = 32_KiB;      // 27-point ghost shells, eager path
  std::uint64_t dot_bytes = 8;            // CG dot products (2 per iteration)
  std::uint64_t residual_bytes = 512_KiB; // residual-vector allreduce per solve
  Dur compute_per_iter = from_us(250);    // smoother + SpMV per iteration
};

struct FftParams {
  int steps = 2;
  std::uint64_t grid_bytes_per_rank = 2_MiB;  // local pencil volume
  Dur compute_per_stage = from_us(400);       // 1-D FFT batch between transposes
  std::uint64_t norm_bytes = 16;              // power-spectrum normalization
};

sim::Task<> stencil_rank(mpirt::Rank& rank, StencilParams params);
sim::Task<> fft_rank(mpirt::Rank& rank, FftParams params);

constexpr int kStencilRpn = 32;
constexpr int kFftRpn = 32;

}  // namespace pd::apps
