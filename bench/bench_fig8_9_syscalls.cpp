// Figures 8 and 9: kernel-level system-call breakdown for UMT2013 and
// QBOX, comparing McKernel against McKernel+HFI1 (the paper's in-house
// kernel profiler; pie charts rendered here as percentage tables).
//
// Paper results reproduced:
//   * McKernel+HFI1 kernel time is a small fraction of plain McKernel's
//     (7 % for UMT2013, 25 % for QBOX in the paper);
//   * ioctl()+writev() dominate plain McKernel (> 70 % for UMT2013) and
//     collapse below ~30 % with the PicoDriver;
//   * for QBOX with the PicoDriver, munmap() dominates what remains — the
//     McKernel memory-management shortcoming the paper flags as future
//     work.
#include <map>

#include "bench/bench_common.hpp"
#include "src/apps/proxies.hpp"

namespace {

using namespace pd;
using namespace pd::apps;

struct KernelBreakdown {
  os::SyscallProfiler profiler;
  std::uint64_t offloads = 0;
  ikc::QueueingSummary queue;
};

KernelBreakdown run_mode(os::OsMode mode, const std::function<sim::Task<>(mpirt::Rank&)>& body,
                         int rpn, std::uint64_t buf_bytes) {
  mpirt::ClusterOptions copts;
  copts.nodes = 8;
  copts.mode = mode;
  copts.mcdram_bytes = 1ull << 30;
  copts.ddr_bytes = 2ull << 30;
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = rpn;
  wopts.buf_bytes = buf_bytes;
  auto out = run_app(copts, wopts, body);
  return KernelBreakdown{std::move(out.kernel), out.offloads, out.offload_queue};
}

void print_figure(const char* figure, const char* app,
                  const std::function<sim::Task<>(mpirt::Rank&)>& body, int rpn,
                  std::uint64_t buf_bytes) {
  const auto mck = run_mode(os::OsMode::mckernel, body, rpn, buf_bytes);
  const auto hfi = run_mode(os::OsMode::mckernel_hfi, body, rpn, buf_bytes);

  std::printf("--- %s: %s syscall breakdown (8 nodes) ---\n", figure, app);
  const char* calls[] = {"read", "open", "mmap", "munmap", "ioctl", "writev", "nanosleep"};
  TextTable table({"Syscall", "McKernel %", "McKernel+HFI1 %"});
  for (const char* call : calls) {
    table.add_row({call, format_double(100.0 * mck.profiler.share_of(call), 1),
                   format_double(100.0 * hfi.profiler.share_of(call), 1)});
  }
  std::printf("%s", table.to_string().c_str());

  const double mck_total = to_ms(mck.profiler.total_kernel_time());
  const double hfi_total = to_ms(hfi.profiler.total_kernel_time());
  std::printf("Total kernel time: McKernel %.2f ms, McKernel+HFI1 %.2f ms (%.0f%% of McKernel)\n",
              mck_total, hfi_total, 100.0 * hfi_total / mck_total);
  const double mck_datapath =
      100.0 * (mck.profiler.share_of("ioctl") + mck.profiler.share_of("writev"));
  const double hfi_datapath =
      100.0 * (hfi.profiler.share_of("ioctl") + hfi.profiler.share_of("writev"));
  std::printf("ioctl+writev share: McKernel %.1f%% -> McKernel+HFI1 %.1f%%\n", mck_datapath,
              hfi_datapath);
  std::printf("offload queueing (McKernel): %llu offloads, p50 %.1f / p95 %.1f / max %.1f us\n\n",
              static_cast<unsigned long long>(mck.offloads), mck.queue.p50_us,
              mck.queue.p95_us, mck.queue.max_us);
}

/// The ISSUE-4 acceptance check: 64 ranks on 4 service CPUs, identical
/// offload stream through the legacy direct transport and the batched ring
/// transport. Ring batching amortizes the proxy schedule-in across a whole
/// batch and never pays the cold-wakeup/thrash scaling, so its p95 queueing
/// must come out lower. Non-zero exit if it does not.
int compare_transports() {
  using namespace pd::time_literals;
  std::printf("--- IKC transport: offload queueing, 64 ranks / 4 service CPUs ---\n");
  os::Config cfg;
  const int per_rank = bench::quick_mode() ? 24 : 96;

  cfg.ikc_mode = os::IkcMode::direct;
  const auto legacy = bench::run_offload_storm(cfg, 64, per_rank, from_us(3), from_us(20));
  cfg.ikc_mode = os::IkcMode::ring;
  const auto ring = bench::run_offload_storm(cfg, 64, per_rank, from_us(3), from_us(20));

  TextTable table({"Transport", "Offloads", "Offl/ms", "p50 us", "p95 us", "Max us", "Wake/offl"});
  for (const auto* row : {&legacy, &ring}) {
    table.add_row({row == &legacy ? "legacy direct" : "ring batched",
                   std::to_string(row->offloads), format_double(row->offloads_per_ms, 1),
                   format_double(row->queue.p50_us, 1), format_double(row->queue.p95_us, 1),
                   format_double(row->queue.max_us, 1),
                   format_double(row->wakeups_per_offload, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  // The wakeup split: direct pays proxy+reply wakeups per offload; ring
  // batches submits behind doorbells and completions behind reply rings.
  std::printf("wakeups  direct: proxy=%llu reply=%llu   ring: doorbell=%llu reply=%llu\n",
              static_cast<unsigned long long>(legacy.direct_proxy_wakeups),
              static_cast<unsigned long long>(legacy.direct_reply_wakeups),
              static_cast<unsigned long long>(ring.doorbells),
              static_cast<unsigned long long>(ring.reply_wakeups));
  std::printf("ring degraded=%llu timeouts=%llu\n\n",
              static_cast<unsigned long long>(ring.degraded),
              static_cast<unsigned long long>(ring.timeouts));
  if (legacy.wakeups_per_offload < 1.9) {
    std::printf("FAIL: direct transport should pay ~2 wakeups/offload, got %.2f\n",
                legacy.wakeups_per_offload);
    return 1;
  }
  if (ring.wakeups_per_offload >= legacy.wakeups_per_offload) {
    std::printf("FAIL: ring wakeups/offload %.2f >= direct %.2f\n", ring.wakeups_per_offload,
                legacy.wakeups_per_offload);
    return 1;
  }
  if (ring.queue.p95_us >= legacy.queue.p95_us) {
    std::printf("FAIL: ring p95 %.1f us >= legacy p95 %.1f us\n", ring.queue.p95_us,
                legacy.queue.p95_us);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  bench::print_banner("Figures 8 & 9 — kernel-profiler syscall breakdowns",
                      "HFI1 kernel time 7%/25% of McKernel's; ioctl+writev >70% -> <30%; "
                      "munmap dominates QBOX+HFI1");
  UmtParams umt;
  print_figure("Figure 8", "UMT2013", [umt](mpirt::Rank& r) { return umt_rank(r, umt); },
               kUmtRpn, 1ull << 20);
  QboxParams qbox;
  print_figure("Figure 9", "QBOX", [qbox](mpirt::Rank& r) { return qbox_rank(r, qbox); },
               kQboxRpn, 4ull << 20);
  return compare_transports();
}
