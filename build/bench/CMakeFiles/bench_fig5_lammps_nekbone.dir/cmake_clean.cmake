file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lammps_nekbone.dir/bench_fig5_lammps_nekbone.cpp.o"
  "CMakeFiles/bench_fig5_lammps_nekbone.dir/bench_fig5_lammps_nekbone.cpp.o.d"
  "bench_fig5_lammps_nekbone"
  "bench_fig5_lammps_nekbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lammps_nekbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
