
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwarf/extract.cpp" "src/dwarf/CMakeFiles/pd_dwarf.dir/extract.cpp.o" "gcc" "src/dwarf/CMakeFiles/pd_dwarf.dir/extract.cpp.o.d"
  "/root/repo/src/dwarf/module_binary.cpp" "src/dwarf/CMakeFiles/pd_dwarf.dir/module_binary.cpp.o" "gcc" "src/dwarf/CMakeFiles/pd_dwarf.dir/module_binary.cpp.o.d"
  "/root/repo/src/dwarf/reader.cpp" "src/dwarf/CMakeFiles/pd_dwarf.dir/reader.cpp.o" "gcc" "src/dwarf/CMakeFiles/pd_dwarf.dir/reader.cpp.o.d"
  "/root/repo/src/dwarf/writer.cpp" "src/dwarf/CMakeFiles/pd_dwarf.dir/writer.cpp.o" "gcc" "src/dwarf/CMakeFiles/pd_dwarf.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
