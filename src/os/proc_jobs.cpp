#include "src/os/proc_jobs.hpp"

#include <algorithm>
#include <cstdio>

namespace pd::os {

using namespace pd::time_literals;

ProcJobsFile::ProcJobsFile(LinuxKernel& linux_kernel, ikc::IkcTransport& transport)
    : linux_(linux_kernel), transport_(transport) {
  linux_.register_device(*this);
}

std::string ProcJobsFile::render() const {
  std::string out = "job weight submitted completed eagain credit_waits inflight"
                    " q_p50_us q_p95_us\n";
  char line[192];
  for (const ikc::JobId job : transport_.jobs_seen()) {
    const ikc::IkcTransport::JobStats* st = transport_.job_stats(job);
    if (st == nullptr) continue;
    const ikc::QueueingSummary q = ikc::summarize_queueing(st->queueing_us);
    std::snprintf(line, sizeof line, "%u %.2f %llu %llu %llu %llu %d %.2f %.2f\n",
                  static_cast<unsigned>(job), transport_.job_weight(job),
                  static_cast<unsigned long long>(st->submitted),
                  static_cast<unsigned long long>(st->completed),
                  static_cast<unsigned long long>(st->eagain),
                  static_cast<unsigned long long>(st->credit_waits), st->inflight,
                  q.p50_us, q.p95_us);
    out += line;
  }
  return out;
}

const std::string* ProcJobsFile::snapshot(const OpenFile& f) {
  const auto* ctx = static_cast<const FileCtx*>(f.driver_ctx);
  return ctx == nullptr ? nullptr : &ctx->text;
}

sim::Task<Result<long>> ProcJobsFile::open(OpenFile& f) {
  // seq_file show(): render the whole table into the open file's buffer.
  co_await linux_.engine().delay(from_us(2.0));
  auto* ctx = new FileCtx;
  ctx->text = render();
  f.driver_ctx = ctx;
  f.driver_ctx_dtor = [](void* p) { delete static_cast<FileCtx*>(p); };
  co_return 0L;
}

sim::Task<Result<long>> ProcJobsFile::read(OpenFile& f, std::uint64_t len) {
  auto* ctx = static_cast<FileCtx*>(f.driver_ctx);
  if (ctx == nullptr) co_return Errno::ebadf;
  co_await linux_.engine().delay(from_ns(600));
  const std::uint64_t remaining = ctx->text.size() - ctx->off;
  const std::uint64_t take = std::min(len, remaining);
  ctx->off += take;
  co_return static_cast<long>(take);  // 0 at EOF
}

sim::Task<Result<long>> ProcJobsFile::lseek(OpenFile& f, long offset, int whence) {
  // Only rewind-to-start (the procfs re-read idiom); re-snapshot the table.
  auto* ctx = static_cast<FileCtx*>(f.driver_ctx);
  if (ctx == nullptr) co_return Errno::ebadf;
  if (whence != 0 || offset != 0) co_return Errno::espipe;
  co_await linux_.engine().delay(from_us(2.0));
  ctx->text = render();
  ctx->off = 0;
  co_return 0L;
}

sim::Task<Result<long>> ProcJobsFile::close(OpenFile& f) {
  auto* ctx = static_cast<FileCtx*>(f.driver_ctx);
  if (ctx == nullptr) co_return Errno::ebadf;
  co_await linux_.engine().delay(from_ns(500));
  delete ctx;
  f.driver_ctx = nullptr;
  co_return 0L;
}

sim::Task<Result<long>> ProcJobsFile::writev(OpenFile& f, std::span<const IoVec> iov) {
  (void)f;
  (void)iov;
  co_return Errno::einval;  // read-only
}

sim::Task<Result<long>> ProcJobsFile::ioctl(OpenFile& f, unsigned long cmd, void* arg) {
  (void)f;
  (void)cmd;
  (void)arg;
  co_return Errno::einval;
}

sim::Task<Result<long>> ProcJobsFile::poll(OpenFile& f) {
  (void)f;
  co_await linux_.engine().delay(from_ns(300));
  co_return 1L;  // always readable
}

sim::Task<Result<mem::PhysAddr>> ProcJobsFile::mmap(OpenFile& f, std::uint64_t len,
                                                    std::uint64_t offset) {
  (void)f;
  (void)len;
  (void)offset;
  co_return Errno::einval;
}

}  // namespace pd::os
