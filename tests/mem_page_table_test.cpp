// Tests for the 4-level page table: mapping, translation, large pages,
// unmapping, rollback.
#include <gtest/gtest.h>

#include "src/mem/page_table.hpp"

namespace pd::mem {
namespace {

TEST(PageTable, Map4kTranslates) {
  PageTable pt;
  ASSERT_TRUE(pt.map(0x1000, 0xA000, kPage4K, kProtRead | kProtWrite).ok());
  auto t = pt.translate(0x1234);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, 0xA234u);
  EXPECT_EQ(t->page, kPage4K);
  EXPECT_EQ(t->prot, kProtRead | kProtWrite);
}

TEST(PageTable, UnmappedReturnsNullopt) {
  PageTable pt;
  EXPECT_FALSE(pt.translate(0x5000).has_value());
}

TEST(PageTable, Map2mTranslatesInterior) {
  PageTable pt;
  const VirtAddr va = 0x4000'0000;  // 2 MiB aligned
  const PhysAddr pa = 0x2000'0000;
  ASSERT_TRUE(pt.map(va, pa, kPage2M, kProtRead).ok());
  auto t = pt.translate(va + 0x12345);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, pa + 0x12345);
  EXPECT_EQ(t->page, kPage2M);
}

TEST(PageTable, RejectsMisalignment) {
  PageTable pt;
  EXPECT_FALSE(pt.map(0x1001, 0xA000, kPage4K, 0).ok());
  EXPECT_FALSE(pt.map(0x1000, 0xA001, kPage4K, 0).ok());
  EXPECT_FALSE(pt.map(kPage4K, 0, kPage2M, 0).ok());  // 4K-aligned only
  EXPECT_FALSE(pt.map(0, 0, 12345, 0).ok());          // bogus page size
}

TEST(PageTable, RejectsDoubleMap) {
  PageTable pt;
  ASSERT_TRUE(pt.map(0x1000, 0xA000, kPage4K, 0).ok());
  EXPECT_EQ(pt.map(0x1000, 0xB000, kPage4K, 0).error(), Errno::eexist);
}

TEST(PageTable, RejectsMappingUnderLargePage) {
  PageTable pt;
  ASSERT_TRUE(pt.map(0x4000'0000, 0x2000'0000, kPage2M, 0).ok());
  EXPECT_EQ(pt.map(0x4000'1000, 0xC000, kPage4K, 0).error(), Errno::eexist);
}

TEST(PageTable, UnmapRemoves) {
  PageTable pt;
  ASSERT_TRUE(pt.map(0x1000, 0xA000, kPage4K, 0).ok());
  EXPECT_EQ(pt.mapped_pages(), 1u);
  ASSERT_TRUE(pt.unmap(0x1000).ok());
  EXPECT_EQ(pt.mapped_pages(), 0u);
  EXPECT_FALSE(pt.translate(0x1000).has_value());
  EXPECT_EQ(pt.unmap(0x1000).error(), Errno::enoent);
}

TEST(PageTable, MapRangeCoversAllPages) {
  PageTable pt;
  ASSERT_TRUE(pt.map_range(0x10000, 0xA0000, 16 * kPage4K, kPage4K, kProtRead).ok());
  for (std::uint64_t off = 0; off < 16 * kPage4K; off += kPage4K) {
    auto t = pt.translate(0x10000 + off);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, 0xA0000 + off);
  }
}

TEST(PageTable, MapRangeRollsBackOnConflict) {
  PageTable pt;
  // Pre-existing page in the middle of the range.
  ASSERT_TRUE(pt.map(0x13000, 0xF000, kPage4K, 0).ok());
  EXPECT_FALSE(pt.map_range(0x10000, 0xA0000, 8 * kPage4K, kPage4K, 0).ok());
  // Pages before the conflict must have been unwound.
  EXPECT_FALSE(pt.translate(0x10000).has_value());
  EXPECT_FALSE(pt.translate(0x12000).has_value());
  EXPECT_TRUE(pt.translate(0x13000).has_value());
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, UnmapRangeMixedPageSizes) {
  PageTable pt;
  ASSERT_TRUE(pt.map(0x4000'0000, 0x2000'0000, kPage2M, 0).ok());
  ASSERT_TRUE(pt.map(0x4020'0000, 0x3000'0000, kPage4K, 0).ok());
  pt.unmap_range(0x4000'0000, kPage2M + kPage4K);
  EXPECT_EQ(pt.mapped_pages(), 0u);
}

TEST(PageTable, HighCanonicalAddresses) {
  // Kernel-space addresses (top of the 48-bit hole) must work: the direct
  // map and kernel images live there.
  PageTable pt;
  const VirtAddr va = 0xFFFF'8800'0000'0000ull & ((1ull << 48) - 1);
  ASSERT_TRUE(pt.map(va, 0x1000, kPage4K, kProtRead).ok());
  auto t = pt.translate(va + 4);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, 0x1004u);
}

TEST(PageTable, ManyMappingsStressAndTranslate) {
  PageTable pt;
  constexpr int kPages = 4096;
  for (int i = 0; i < kPages; ++i)
    ASSERT_TRUE(pt.map(0x100000 + static_cast<VirtAddr>(i) * kPage4K,
                       0x10'0000'0000ull + static_cast<PhysAddr>(i) * kPage4K, kPage4K, 0)
                    .ok());
  EXPECT_EQ(pt.mapped_pages(), static_cast<std::uint64_t>(kPages));
  for (int i = 0; i < kPages; i += 97) {
    auto t = pt.translate(0x100000 + static_cast<VirtAddr>(i) * kPage4K + 7);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, 0x10'0000'0000ull + static_cast<PhysAddr>(i) * kPage4K + 7);
  }
}

}  // namespace
}  // namespace pd::mem
