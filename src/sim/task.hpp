// Coroutine task type for simulated processes.
//
// `Task<T>` is a lazy coroutine: creating it does not run anything. It is
// consumed in exactly one of two ways:
//
//   1. `co_await` it from another coroutine — the child starts via symmetric
//      transfer and the parent resumes when the child finishes (normal
//      structured call).
//   2. `spawn(engine, std::move(task))` — detach it as a top-level simulated
//      process; the engine counts it and the frame self-destroys at
//      completion.
//
// Tasks always run to completion; there is no cancellation (simulated OS
// work is never abandoned half-way in this model), which keeps waiter lists
// in the synchronization primitives free of dangling handles.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "src/sim/engine.hpp"

namespace pd::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  Engine* detached_owner = nullptr;  // non-null once detached via spawn()
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }

  // Coroutine frames recycle through the size-class pool instead of the
  // host heap: per-message tasks (PSM sends, IKC offloads) churn frames at
  // event rate, and frame_alloc keeps that off the allocator.
  static void* operator new(std::size_t size) { return frame_alloc(size); }
  static void operator delete(void* p, std::size_t) noexcept { frame_free(p); }
  static void operator delete(void* p) noexcept { frame_free(p); }
};

/// At the final suspend point either resume whoever co_awaited us, or — for
/// detached tasks — destroy the frame and notify the engine.
template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    PromiseBase& p = h.promise();
    if (p.detached_owner != nullptr) {
      // A detached simulated process has nobody to rethrow into.
      assert(!p.exception && "unhandled exception escaped a detached Task");
      p.detached_owner->note_task_done(h);
      h.destroy();
      return std::noop_coroutine();
    }
    if (p.continuation) return p.continuation;
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  // Awaitable interface: starting the child lazily on first await.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

 private:
  template <typename U>
  friend void spawn(Engine& engine, Task<U> task);

  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::FinalAwaiter<promise_type> final_suspend() noexcept { return {}; }
    void return_void() {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  template <typename U>
  friend void spawn(Engine& engine, Task<U> task);

  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  std::coroutine_handle<promise_type> h_;
};

/// Detach a task as a top-level simulated process. Ownership of the frame
/// transfers to the coroutine itself; it starts running immediately (up to
/// its first suspension) in the caller's context.
template <typename U>
void spawn(Engine& engine, Task<U> task) {
  assert(task.valid());
  auto h = std::exchange(task.h_, {});
  h.promise().detached_owner = &engine;
  engine.note_task_spawned(h);
  h.resume();
}

}  // namespace pd::sim
