#include "src/mem/va_layout.hpp"

namespace pd::mem {

namespace {
constexpr std::uint64_t kTiB = 1ull << 40;
constexpr std::uint64_t kGiB = 1ull << 30;
}  // namespace

KernelLayout linux_layout() {
  KernelLayout l;
  l.kernel_name = "linux";
  l.user = {"user", 0x0000'0000'0000'0000ull, 0x0000'7FFF'FFFF'F000ull};
  l.direct_map = {"direct map of all phys (64TB)", 0xFFFF'8800'0000'0000ull,
                  0xFFFF'8800'0000'0000ull + 64 * kTiB};
  l.valloc = {"vmalloc()/ioremap()", 0xFFFF'C900'0000'0000ull, 0xFFFF'E8FF'FFFF'FFFFull};
  l.image = {"Linux TEXT/DATA/BSS", 0xFFFF'FFFF'8000'0000ull, 0xFFFF'FFFF'A000'0000ull};
  l.module_space = {"kernel module space", 0xFFFF'FFFF'A000'0000ull, 0xFFFF'FFFF'FF5F'FFFFull};
  return l;
}

KernelLayout mckernel_original_layout() {
  KernelLayout l;
  l.kernel_name = "mckernel-original";
  l.user = {"user", 0x0000'0000'0000'0000ull, 0x0000'7FFF'FFFF'F000ull};
  // Original McKernel: own small direct map at its own base, image linked
  // at the same VA as the Linux image (they are separate address spaces,
  // so this overlap was harmless — until PicoDriver needed mutual access).
  l.direct_map = {"direct map of all phys (256GB)", 0xFFFF'8000'0000'0000ull,
                  0xFFFF'8000'0000'0000ull + 256 * kGiB};
  l.valloc = {"virtual alloc() area", 0xFFFF'9000'0000'0000ull, 0xFFFF'90FF'FFFF'FFFFull};
  l.image = {"McKernel TEXT/DATA/BSS", 0xFFFF'FFFF'8000'0000ull, 0xFFFF'FFFF'8100'0000ull};
  l.module_space = {"", 0, 0};
  return l;
}

KernelLayout mckernel_unified_layout() {
  const KernelLayout linux_side = linux_layout();
  KernelLayout l;
  l.kernel_name = "mckernel-picodriver";
  l.user = {"user", 0x0000'0000'0000'0000ull, 0x0000'7FFF'FFFF'F000ull};
  // Requirement 2: alias the Linux direct map exactly.
  l.direct_map = linux_side.direct_map;
  l.direct_map.name = "direct map of all phys (64TB, shared with Linux)";
  // The dynamic range may stay private; device mappings are established on
  // demand in both kernels.
  l.valloc = {"virtual alloc() area", 0xFFFF'C980'0000'0000ull, 0xFFFF'C9FF'FFFF'FFFFull};
  // Requirements 1 & 3: the image moves to the top of the Linux module
  // space (16 MiB reserved there via vmap_area at LWK boot).
  const std::uint64_t image_size = 16ull * 1024 * 1024;
  const VirtAddr image_top = page_floor(linux_side.module_space.end, kPage2M);
  l.image = {"McKernel TEXT/DATA/BSS", image_top - image_size, image_top};
  l.module_space = {"", 0, 0};
  return l;
}

UnificationReport check_unification(const KernelLayout& linux_side, const KernelLayout& lwk) {
  UnificationReport r;

  r.images_disjoint = !linux_side.image.overlaps(lwk.image);
  if (!r.images_disjoint)
    r.violations.push_back("kernel images overlap: " + linux_side.kernel_name + " [" +
                           linux_side.image.name + "] vs " + lwk.kernel_name);

  r.direct_maps_coincide = linux_side.direct_map.start == lwk.direct_map.start &&
                           linux_side.direct_map.end == lwk.direct_map.end;
  if (!r.direct_maps_coincide)
    r.violations.push_back(
        "direct maps differ: dynamically allocated data structures would "
        "dereference to different physical memory across kernels");

  r.lwk_image_mappable = linux_side.module_space.contains_range(lwk.image);
  if (!r.lwk_image_mappable)
    r.violations.push_back(
        "LWK image is outside the Linux module space: Linux cannot reserve "
        "a vmap_area for it, so LWK callback TEXT would be invisible");

  return r;
}

}  // namespace pd::mem
