#include "src/hw/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace pd::hw {

Fabric::Fabric(sim::Engine& engine, int num_nodes, FabricConfig config)
    : engine_(engine), config_(config) {
  ports_.resize(static_cast<std::size_t>(num_nodes));
}

void Fabric::attach(int node, ChunkSink sink) {
  ports_.at(static_cast<std::size_t>(node)).sink = std::move(sink);
}

Dur Fabric::serialize_time(std::uint64_t bytes) const {
  return config_.per_chunk_overhead + transfer_time(bytes, config_.link_bytes_per_sec);
}

void Fabric::send(WireChunk chunk, std::function<void()> on_egress) {
  ++chunks_sent_;
  bytes_sent_ += chunk.chunk_bytes;

  Port& src = ports_.at(static_cast<std::size_t>(chunk.msg.src_node));
  Port& dst = ports_.at(static_cast<std::size_t>(chunk.msg.dst_node));
  const Dur ser = chunk.serialize_cost > 0 ? chunk.serialize_cost
                                           : serialize_time(chunk.chunk_bytes);

  // Source port: FIFO serialization at link rate.
  const Time now = engine_.now();
  const Time egress_start = std::max(now, src.egress_free_at);
  const Time egress_done = egress_start + ser;
  src.egress_free_at = egress_done;
  if (on_egress)
    engine_.schedule_at(egress_done, std::move(on_egress));

  // Cut-through switch: the head of the transfer reaches the destination
  // port wire_latency after it left the source, and the destination drains
  // at the same rate — so an uncontended transfer is delivered at
  // egress_done + wire_latency, while incast still serializes on the
  // ingress busy window.
  const Time head_arrival = egress_start + config_.wire_latency;
  const Time ingress_start = std::max(head_arrival, dst.ingress_free_at);
  const Time ingress_done = ingress_start + ser;
  dst.ingress_free_at = ingress_done;

  Port* dst_port = &dst;
  engine_.schedule_at(ingress_done,
                      [dst_port, chunk = std::move(chunk)] {
                        assert(dst_port->sink && "destination NIC not attached");
                        dst_port->sink(chunk);
                      });
}

}  // namespace pd::hw
