// Integration tests for the second device class: pd-doom Linux driver +
// DoomPicoDriver fast path on the shared pico::FastPathPort.
//
// Covers the §3.2 DWARF round trip against the doom module binary (three
// shipped versions plus negative binds), the slow path's per-4K-page PTE
// programming vs the fast path's per-extent programming, the shared
// fence-sequence/dva-cursor image fields both kernels advance, and the
// failure-injection rungs: ring stall → bounded backoff → Linux fallback,
// lost completion IRQ → wait-fence recovery, poisoned PTE → device parked →
// EIO protocol → reset.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/units.hpp"
#include "src/doom/driver.hpp"
#include "src/hfi/driver.hpp"
#include "src/pico/doom_picodriver.hpp"
#include "src/pico/hfi_picodriver.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd {
namespace {

using namespace pd::time_literals;

enum class Mode { linux_native, offload, fastpath };

struct DoomRig {
  sim::Engine engine;
  os::Config cfg;
  mem::PhysMap phys = mem::PhysMap::knl(1_GiB, 4_GiB, 2);
  std::unique_ptr<hw::DoomDevice> device;
  std::unique_ptr<os::LinuxKernel> linux_kernel;
  std::unique_ptr<os::Ihk> ihk;
  std::unique_ptr<os::McKernel> mck;
  std::unique_ptr<doom::DoomDriver> driver;
  std::unique_ptr<pico::DoomPicoDriver> pico;

  explicit DoomRig(Mode mode, const std::string& version = "0.9-d6",
                   hw::DoomConfig dc = {}) {
    device = std::make_unique<hw::DoomDevice>(engine, 0, dc);
    linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
    driver = std::make_unique<doom::DoomDriver>(*linux_kernel, *device, version);
    if (mode != Mode::linux_native) {
      ihk = std::make_unique<os::Ihk>(engine, cfg, *linux_kernel);
      mck = std::make_unique<os::McKernel>(engine, cfg, *ihk, /*unified_layout=*/true);
      if (mode == Mode::fastpath) {
        auto p = pico::DoomPicoDriver::create(*mck, *driver);
        EXPECT_TRUE(p.ok());
        if (p.ok()) pico = std::move(*p);
      }
    }
  }

  std::unique_ptr<os::Process> make_process(int ctxt, Mode mode) {
    if (mode == Mode::linux_native)
      return std::make_unique<os::Process>(*linux_kernel, phys, 0, ctxt,
                                           1000u + static_cast<unsigned>(ctxt));
    return std::make_unique<os::Process>(*mck, phys, 0, ctxt,
                                         1000u + static_cast<unsigned>(ctxt));
  }
};

/// open("/dev/pd_doom0") + kDoomCreateCtx; returns the fd.
sim::Task<Result<int>> open_ctx(os::Process& p) {
  auto fd = co_await p.open(doom::kDeviceName);
  if (!fd.ok()) co_return fd.error();
  auto r = co_await p.ioctl(*fd, doom::kDoomCreateCtx, nullptr);
  if (!r.ok()) co_return r.error();
  co_return *fd;
}

sim::Task<Result<long>> wait_fence(os::Process& p, int fd, std::uint64_t seq) {
  doom::DoomWaitFenceArgs w;
  w.seq = seq;
  co_return co_await p.ioctl(fd, doom::kDoomWaitFence, &w);
}

// --- §3.2 round trip against the doom module binary -----------------------

TEST(DoomLayouts, ExtractedOffsetsMatchDriverForEveryVersion) {
  for (const char* version : {"0.9-d6", "1.1-d2", "2.0-d1"}) {
    DoomRig r(Mode::fastpath, version);
    ASSERT_NE(r.pico, nullptr) << version;
    const auto& layouts = r.driver->layouts();
    for (const char* sname : {"doom_devdata", "doom_ringstate", "doom_ctx"}) {
      const doom::StructDef* truth = layouts.structure(sname);
      const dwarf::StructLayout* bound = r.pico->binding().layout(sname);
      ASSERT_NE(truth, nullptr);
      ASSERT_NE(bound, nullptr) << sname << " " << version;
      EXPECT_EQ(bound->byte_size, truth->byte_size) << sname << " " << version;
      for (const auto& f : bound->fields) {
        const doom::FieldDef* tf = truth->field(f.name);
        ASSERT_NE(tf, nullptr) << sname << "." << f.name;
        EXPECT_EQ(f.offset, tf->offset) << sname << "." << f.name << " @ " << version;
        EXPECT_EQ(f.size, tf->size) << sname << "." << f.name << " @ " << version;
      }
    }
    EXPECT_EQ(r.pico->binding().driver_version(), std::string("pd_doom ") + version);
  }
}

TEST(DoomLayouts, OffsetsActuallyDifferAcrossVersions) {
  auto l1 = doom::DoomLayouts::for_version("0.9-d6");
  auto l2 = doom::DoomLayouts::for_version("2.0-d1");
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_NE(l1->structure("doom_ctx")->field("pt_used")->offset,
            l2->structure("doom_ctx")->field("pt_used")->offset);
  EXPECT_NE(l1->structure("doom_devdata")->field("fence_seq")->offset,
            l2->structure("doom_devdata")->field("fence_seq")->offset);
  EXPECT_FALSE(doom::DoomLayouts::for_version("3.0-x9").ok());
}

TEST(DoomBind, MissingStructureOrFieldFailsBind) {
  DoomRig r(Mode::fastpath);
  ASSERT_NE(r.mck, nullptr);
  auto missing_field = pico::PicoBinding::bind(
      *r.mck, *r.linux_kernel, r.driver->module_binary(),
      {{"doom_devdata", {"fence_seq", "does_not_exist"}}});
  ASSERT_FALSE(missing_field.ok());
  EXPECT_TRUE(missing_field.error() == Errno::enoent ||
              missing_field.error() == Errno::einval)
      << to_string(missing_field.error());
  auto missing_struct = pico::PicoBinding::bind(
      *r.mck, *r.linux_kernel, r.driver->module_binary(), {{"doom_shadow", {"x"}}});
  ASSERT_FALSE(missing_struct.ok());
  EXPECT_TRUE(missing_struct.error() == Errno::enoent ||
              missing_struct.error() == Errno::einval)
      << to_string(missing_struct.error());
}

// --- slow path (Linux driver) ---------------------------------------------

TEST(DoomSlowPath, SubmitProgramsOnePtePer4KPage) {
  DoomRig r(Mode::linux_native);
  auto proc = r.make_process(0, Mode::linux_native);
  int fenced = 0;
  sim::spawn(r.engine, [](DoomRig& rig, os::Process& p, int& done) -> sim::Task<> {
    auto fd = co_await open_ctx(p);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(64_KiB);
    CO_ASSERT_TRUE(buf.ok());
    doom::DoomSubmitArgs args;
    args.cmds.push_back({static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 64_KiB});
    // Unaligned source: starts 128 bytes into a page, so the driver pins and
    // maps 2 whole frames for 8000 bytes and issues the command at off 128.
    args.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf + 128, 0, 8000});
    args.on_fence = [&done] { ++done; };
    auto n = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args);
    CO_ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 2L);
    EXPECT_EQ(args.fence_seq, 1u);
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, args.fence_seq)).ok());
    // The completion chain tore down the batch's transient PTEs and pins.
    EXPECT_EQ(rig.device->pt_entries_used(0), 0u);
    EXPECT_EQ(p.as().pinned_frame_count(), 0u);
  }(r, *proc, fenced));
  r.engine.run();
  EXPECT_EQ(fenced, 1);
  EXPECT_EQ(r.driver->submit_batches(), 1u);
  // 16 pages for the 64 KiB buffer + 2 for the straddling 8000-byte window.
  EXPECT_EQ(r.driver->pte_programs(), 18u);
  EXPECT_EQ(r.device->commands_retired(), 3u);  // 2 work + 1 fence
  EXPECT_EQ(r.device->fences_retired(), 1u);
  EXPECT_EQ(r.device->dma_bytes(), 64_KiB + 8000u);
  EXPECT_EQ(r.driver->fences_dispatched(), 1u);
}

TEST(DoomSlowPath, MapBufferWindowIsPersistentUntilClose) {
  DoomRig r(Mode::linux_native);
  auto proc = r.make_process(0, Mode::linux_native);
  sim::spawn(r.engine, [](DoomRig& rig, os::Process& p) -> sim::Task<> {
    auto fd = co_await open_ctx(p);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(128_KiB);
    CO_ASSERT_TRUE(buf.ok());
    doom::DoomMapBufferArgs map;
    map.va = *buf;
    map.len = 128_KiB;
    auto pages = co_await p.ioctl(*fd, doom::kDoomMapBuffer, &map);
    CO_ASSERT_TRUE(pages.ok());
    EXPECT_EQ(*pages, 32L);
    EXPECT_NE(map.dva, 0u);
    EXPECT_EQ(rig.device->pt_entries_used(0), 32u);
    EXPECT_EQ(rig.driver->pte_programs(), 32u);

    // Submitting against the pre-mapped window adds no transient PTEs.
    doom::DoomSubmitArgs args;
    args.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), 0, map.dva, 128_KiB});
    auto n = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args);
    CO_ASSERT_TRUE(n.ok());
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, args.fence_seq)).ok());
    EXPECT_EQ(rig.driver->pte_programs(), 32u) << "no new PTEs for a mapped window";
    EXPECT_EQ(rig.device->pt_entries_used(0), 32u) << "persistent mapping survives fences";
    EXPECT_EQ(rig.device->dma_bytes(), 128_KiB);

    CO_ASSERT_TRUE((co_await p.close_fd(*fd)).ok());
    EXPECT_FALSE(rig.device->context_open(0)) << "close tears the hw context down";
    EXPECT_EQ(p.as().pinned_frame_count(), 0u) << "persistent pins released at close";
  }(r, *proc));
  r.engine.run();
}

// --- fast path (DoomPicoDriver on FastPathPort) ---------------------------

TEST(DoomFastPath, SubmitProgramsPerExtentAndSharesFenceCounter) {
  DoomRig r(Mode::fastpath);
  auto proc = r.make_process(0, Mode::fastpath);
  auto lnx_proc = r.make_process(1, Mode::linux_native);
  int fenced = 0;
  sim::spawn(r.engine,
             [](DoomRig& rig, os::Process& p, os::Process& lp, int& done) -> sim::Task<> {
    auto fd = co_await open_ctx(p);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(256_KiB);
    CO_ASSERT_TRUE(buf.ok());

    doom::DoomSubmitArgs args;
    args.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 256_KiB});
    args.on_fence = [&done] { ++done; };
    auto n = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args);
    CO_ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1L);
    EXPECT_EQ(args.fence_seq, 1u);
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, args.fence_seq)).ok());
    co_await p.nanosleep(50_us);  // let the completion bottom half run
    EXPECT_EQ(rig.device->pt_entries_used(0), 0u) << "transient extents unmapped at fence";

    // Resubmit of the same window: the per-file extent cache must hit.
    doom::DoomSubmitArgs again;
    again.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 256_KiB});
    again.on_fence = [&done] { ++done; };
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &again)).ok());
    EXPECT_EQ(again.fence_seq, 2u);
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, again.fence_seq)).ok());

    // A Linux-native submitter continues the *same* fence sequence — both
    // kernels advance the one doom_devdata.fence_seq image field.
    auto lfd = co_await open_ctx(lp);
    CO_ASSERT_TRUE(lfd.ok());
    auto lbuf = co_await lp.mmap_anon(16_KiB);
    CO_ASSERT_TRUE(lbuf.ok());
    doom::DoomSubmitArgs slow;
    slow.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *lbuf, 0, 16_KiB});
    CO_ASSERT_TRUE((co_await lp.ioctl(*lfd, doom::kDoomSubmitBatch, &slow)).ok());
    EXPECT_EQ(slow.fence_seq, 3u) << "fence counter must be shared across kernels";
    CO_ASSERT_TRUE((co_await wait_fence(lp, *lfd, slow.fence_seq)).ok());
  }(r, *proc, *lnx_proc, fenced));
  r.engine.run();

  EXPECT_EQ(fenced, 2);
  EXPECT_EQ(r.pico->fast_submits(), 2u);
  EXPECT_EQ(r.pico->fallbacks(), 0u);
  EXPECT_EQ(r.driver->submit_batches(), 1u) << "only the Linux-native batch";
  // 256 KiB of contiguous LWK backing: an extent-sized PTE or two per
  // submit, versus the slow path's 64-per-submit page blindness.
  EXPECT_GE(r.pico->extents_programmed(), 2u);
  EXPECT_LE(r.pico->extents_programmed(), 8u);
  EXPECT_GE(r.pico->extent_cache_hits(), 1u);
  EXPECT_EQ(r.mck->profiler().counter("pico.extent_cache.hit"),
            r.pico->extent_cache_hits());
  EXPECT_EQ(r.device->dma_bytes(), 512_KiB + 16_KiB);
  EXPECT_EQ(r.device->fences_retired(), 3u);
}

TEST(DoomFastPath, GuardsRejectBadBatches) {
  DoomRig r(Mode::fastpath);
  auto proc = r.make_process(0, Mode::fastpath);
  sim::spawn(r.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(doom::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    doom::DoomSubmitArgs args;
    args.cmds.push_back({static_cast<std::uint32_t>(hw::DoomOp::fill_rect), 0x9000, 0, 4_KiB});
    // No hw context yet (kDoomCreateCtx never issued).
    auto r1 = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args);
    EXPECT_EQ(r1.error(), Errno::enodev);
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomCreateCtx, nullptr)).ok());
    doom::DoomSubmitArgs empty;
    auto r2 = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &empty);
    EXPECT_EQ(r2.error(), Errno::einval);
    doom::DoomSubmitArgs unmapped;  // src_va == 0 && dva == 0
    unmapped.cmds.push_back({static_cast<std::uint32_t>(hw::DoomOp::copy_rect), 0, 0, 4_KiB});
    auto r3 = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &unmapped);
    EXPECT_EQ(r3.error(), Errno::einval);
  }(*proc));
  r.engine.run();
}

// --- failure-injection rung 1: ring stall → bounded backoff → fallback ----

TEST(DoomFailure, RingStallFallsBackToLinuxAndDrainsAfterClear) {
  hw::DoomConfig dc;
  dc.ring_slots = 8;
  DoomRig r(Mode::fastpath, "0.9-d6", dc);
  r.cfg.pico_ring_backoff_attempts = 2;
  r.cfg.pico_ring_backoff_base = 100_ns;
  auto proc = r.make_process(0, Mode::fastpath);
  int fenced = 0;
  sim::spawn(r.engine, [](DoomRig& rig, os::Process& p, int& done) -> sim::Task<> {
    auto fd = co_await open_ctx(p);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(32_KiB);
    CO_ASSERT_TRUE(buf.ok());
    auto cmd = [&](int i) {
      return doom::DoomUserCmd{static_cast<std::uint32_t>(hw::DoomOp::fill_rect),
                               *buf + static_cast<std::uint64_t>(i) * 4_KiB, 0, 4_KiB};
    };

    rig.device->inject_ring_stall(true);
    // Batch 1 (2 cmds + fence = 3 of 8 slots): reserves fine, nothing drains.
    doom::DoomSubmitArgs first;
    first.cmds = {cmd(0), cmd(1)};
    first.on_fence = [&done] { ++done; };
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &first)).ok());
    EXPECT_EQ(rig.pico->fast_submits(), 1u);
    EXPECT_EQ(rig.pico->ring_full_fallbacks(), 0u);

    // Batch 2 needs 6 slots but only 5 remain in the wedged ring: the fast
    // path's bounded backoff cannot outwait a stall, so it must hand the
    // batch to the Linux path (whose waiter is unbounded).
    rig.engine.schedule_after(from_us(200),
                              [&rig] { rig.device->inject_ring_stall(false); });
    doom::DoomSubmitArgs second;
    second.cmds = {cmd(0), cmd(1), cmd(2), cmd(3), cmd(4)};
    second.on_fence = [&done] { ++done; };
    auto n = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &second);
    CO_ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 5L);
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, second.fence_seq)).ok());
    co_await p.nanosleep(50_us);  // let the completion bottom halves run
    EXPECT_EQ(rig.device->pt_entries_used(0), 0u) << "both batches fully cleaned up";
    // (LWK mmap_anon backing stays pinned by design, so no pin-count check.)
  }(r, *proc, fenced));
  r.engine.run();

  EXPECT_EQ(fenced, 2) << "both batches must complete after the stall clears";
  EXPECT_EQ(r.pico->fast_submits(), 2u);
  EXPECT_EQ(r.pico->ring_full_fallbacks(), 1u);
  EXPECT_EQ(r.pico->fallbacks(), 1u);
  EXPECT_EQ(r.mck->profiler().counter("pico.ring_full_fallback"), 1u);
  EXPECT_EQ(r.driver->submit_batches(), 1u) << "fallback must reuse the Linux path";
  EXPECT_EQ(r.device->commands_retired(), 9u);  // 2 + 5 work, 2 fences
  EXPECT_EQ(r.device->fences_retired(), 2u);
}

// --- failure-injection rung 2: lost completion IRQ → recovery --------------

TEST(DoomFailure, LostFenceIrqRecoveredByWaitFence) {
  DoomRig r(Mode::fastpath);
  auto proc = r.make_process(0, Mode::fastpath);
  int fenced = 0;
  sim::spawn(r.engine, [](DoomRig& rig, os::Process& p, int& done) -> sim::Task<> {
    auto fd = co_await open_ctx(p);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(16_KiB);
    CO_ASSERT_TRUE(buf.ok());
    rig.device->inject_lost_irq(1);
    doom::DoomSubmitArgs args;
    args.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 16_KiB});
    args.on_fence = [&done] { ++done; };
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args)).ok());
    // The fence retired in hardware but its IRQ was swallowed; only the
    // wait-fence poll's retire-register check can dispatch the chain.
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, args.fence_seq)).ok());
    co_await p.nanosleep(50_us);  // let the recovered bottom half run
    EXPECT_EQ(rig.device->pt_entries_used(0), 0u)
        << "recovery must run the same cleanup chain";
  }(r, *proc, fenced));
  r.engine.run();

  EXPECT_EQ(fenced, 1) << "the user notification must not be lost with the IRQ";
  EXPECT_EQ(r.device->irqs_lost(), 1u);
  EXPECT_EQ(r.driver->irqs_recovered(), 1u);
  EXPECT_EQ(r.linux_kernel->profiler().counter("doom.irq.recovered"), 1u);
  EXPECT_EQ(r.driver->fences_dispatched(), 1u);
}

// --- failure-injection rung 3: poisoned PTE → EIO protocol → reset ---------

TEST(DoomFailure, PoisonedPteParksDeviceUntilReset) {
  DoomRig r(Mode::fastpath);
  auto proc = r.make_process(0, Mode::fastpath);
  auto lnx_proc = r.make_process(1, Mode::linux_native);
  sim::spawn(r.engine,
             [](DoomRig& rig, os::Process& p, os::Process& lp) -> sim::Task<> {
    auto fd = co_await open_ctx(p);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(32_KiB);
    CO_ASSERT_TRUE(buf.ok());
    doom::DoomMapBufferArgs map;
    map.va = *buf;
    map.len = 32_KiB;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomMapBuffer, &map)).ok());
    CO_ASSERT_TRUE(rig.device->poison_pte(0, map.dva).ok());

    // The submit itself succeeds — the fault fires when the device fetches
    // through the poisoned mapping. The fence still retires (the device
    // drops the faulting command and parks its sticky error flag).
    doom::DoomSubmitArgs args;
    args.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), 0, map.dva, 32_KiB});
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args)).ok());
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, args.fence_seq)).ok());
    EXPECT_EQ(rig.device->pte_faults(), 1u);
    EXPECT_TRUE(rig.device->faulted());
    EXPECT_EQ(rig.device->dma_bytes(), 0u) << "the poisoned fetch must not transfer";

    // A Linux-side submit notices the parked device, mirrors the fault into
    // the doom_ringstate image, and returns EIO.
    auto lfd = co_await open_ctx(lp);
    CO_ASSERT_TRUE(lfd.ok());
    auto lbuf = co_await lp.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(lbuf.ok());
    doom::DoomSubmitArgs slow;
    slow.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *lbuf, 0, 4_KiB});
    auto lr = co_await lp.ioctl(*lfd, doom::kDoomSubmitBatch, &slow);
    EXPECT_EQ(lr.error(), Errno::eio);
    EXPECT_EQ(rig.linux_kernel->profiler().counter("doom.device.fault"), 1u);

    // The fast path reads run_state == error through the extracted offsets
    // and defers to the Linux error protocol: fallback, then EIO.
    const auto fallbacks_before = rig.pico->fallbacks();
    doom::DoomSubmitArgs fast;
    fast.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 4_KiB});
    auto fr = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &fast);
    EXPECT_EQ(fr.error(), Errno::eio);
    EXPECT_EQ(rig.pico->fallbacks(), fallbacks_before + 1);

    // Reset clears the device and the image; submission works again.
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomResetError, nullptr)).ok());
    EXPECT_FALSE(rig.device->faulted());
    doom::DoomSubmitArgs healthy;
    healthy.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 4_KiB});
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &healthy)).ok());
    CO_ASSERT_TRUE((co_await wait_fence(p, *fd, healthy.fence_seq)).ok());
    EXPECT_EQ(rig.device->dma_bytes(), 4_KiB);
  }(r, *proc, *lnx_proc));
  r.engine.run();
}

// --- the FastPathPort refactor: two device classes, one LWK ----------------

TEST(FastPathPort, HfiAndDoomPortsCoexistOnOneLwk) {
  sim::Engine engine;
  os::Config cfg;
  mem::PhysMap phys = mem::PhysMap::knl(1_GiB, 4_GiB, 2);
  hw::Fabric fabric(engine, 1);
  hw::HfiDevice hfi_device(engine, fabric, 0);
  hw::DoomDevice doom_device(engine, 0);
  os::LinuxKernel linux_kernel(engine, cfg);
  hfi::HfiDriver hfi_driver(linux_kernel, hfi_device, "10.8-0");
  doom::DoomDriver doom_driver(linux_kernel, doom_device, "0.9-d6");
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, /*unified_layout=*/true);
  auto hfi_pico = pico::HfiPicoDriver::create(mck, hfi_driver);
  auto doom_pico = pico::DoomPicoDriver::create(mck, doom_driver);
  ASSERT_TRUE(hfi_pico.ok());
  ASSERT_TRUE(doom_pico.ok()) << "a second binding must reuse the vmap reservation";
  EXPECT_EQ((*hfi_pico)->binding().driver_version(), "hfi1 10.8-0");
  EXPECT_EQ((*doom_pico)->binding().driver_version(), "pd_doom 0.9-d6");

  os::Process proc(mck, phys, 0, 0, 7);
  sim::spawn(engine, [](os::Process& p, hw::HfiDevice& hdev) -> sim::Task<> {
    // One process drives both device classes through their fast paths.
    auto hfd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(hfd.ok());
    auto buf = co_await p.mmap_anon(2_MiB);
    CO_ASSERT_TRUE(buf.ok());
    hfi::TidUpdateArgs tid;
    tid.vaddr = *buf;
    tid.length = 2_MiB;
    CO_ASSERT_TRUE((co_await p.ioctl(*hfd, hfi::kTidUpdate, &tid)).ok());
    hfi::TidFreeArgs tf;
    tf.tids = tid.tids;
    CO_ASSERT_TRUE((co_await p.ioctl(*hfd, hfi::kTidFree, &tf)).ok());
    EXPECT_EQ(hdev.rcv_array().in_use(), 0u);

    auto dfd = co_await open_ctx(p);
    CO_ASSERT_TRUE(dfd.ok());
    doom::DoomSubmitArgs args;
    args.cmds.push_back(
        {static_cast<std::uint32_t>(hw::DoomOp::copy_rect), *buf, 0, 64_KiB});
    CO_ASSERT_TRUE((co_await p.ioctl(*dfd, doom::kDoomSubmitBatch, &args)).ok());
    CO_ASSERT_TRUE((co_await wait_fence(p, *dfd, args.fence_seq)).ok());
  }(proc, hfi_device));
  engine.run();

  EXPECT_EQ((*hfi_pico)->fast_tid_updates(), 1u);
  EXPECT_EQ((*doom_pico)->fast_submits(), 1u);
  EXPECT_EQ((*hfi_pico)->fallbacks(), 0u);
  EXPECT_EQ((*doom_pico)->fallbacks(), 0u);
  // Each port keeps its own per-file extent caches but shares the profiler
  // namespace: both classes' lookups land in pico.extent_cache.*.
  EXPECT_GE((*hfi_pico)->extent_cache_misses(), 1u);
  EXPECT_GE((*doom_pico)->extent_cache_misses(), 1u);
  EXPECT_EQ(mck.profiler().sum_counters("pico.extent_cache."),
            (*hfi_pico)->extent_cache_misses() + (*hfi_pico)->extent_cache_hits() +
                (*doom_pico)->extent_cache_misses() + (*doom_pico)->extent_cache_hits());
}

}  // namespace
}  // namespace pd
