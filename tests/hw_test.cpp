// Tests for the hardware model: fabric timing/contention, SDMA engine
// descriptor processing and completion order, RcvArray, device reassembly.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.hpp"
#include "src/hw/fabric.hpp"
#include "src/hw/hfi_device.hpp"
#include "src/hw/rcv_array.hpp"
#include "src/hw/sdma.hpp"
#include "src/sim/task.hpp"

namespace pd::hw {
namespace {

using namespace pd::time_literals;

WireChunk make_chunk(int src, int dst, std::uint64_t bytes, std::uint64_t seq, bool last = true) {
  WireChunk c;
  c.msg.src_node = src;
  c.msg.dst_node = dst;
  c.msg.dst_ctxt = 0;
  c.msg.kind = WireKind::eager;
  c.msg.payload_bytes = bytes;
  c.msg.seq = seq;
  c.chunk_bytes = bytes;
  c.last = last;
  return c;
}

TEST(Fabric, SingleChunkLatency) {
  sim::Engine e;
  FabricConfig cfg;
  Fabric fabric(e, 2, cfg);
  Time delivered = -1;
  fabric.attach(1, [&](const WireChunk&) { delivered = e.now(); });
  fabric.attach(0, [](const WireChunk&) {});
  fabric.send(make_chunk(0, 1, 4096, 1));
  e.run();
  // Cut-through: head leaves at t=0, arrives after the switch latency and
  // drains at link rate → delivery = serialize + latency.
  const Dur ser = cfg.per_chunk_overhead + transfer_time(4096, cfg.link_bytes_per_sec);
  EXPECT_EQ(delivered, ser + cfg.wire_latency);
}

TEST(Fabric, EgressCallbackBeforeDelivery) {
  sim::Engine e;
  Fabric fabric(e, 2);
  Time egress = -1, delivery = -1;
  fabric.attach(1, [&](const WireChunk&) { delivery = e.now(); });
  fabric.send(make_chunk(0, 1, 65536, 1), [&] { egress = e.now(); });
  e.run();
  EXPECT_GT(egress, 0);
  EXPECT_GT(delivery, egress);
}

TEST(Fabric, PipelinedChunksSustainLinkRate) {
  sim::Engine e;
  FabricConfig cfg;
  cfg.per_chunk_overhead = 0;
  Fabric fabric(e, 2, cfg);
  Time last_delivery = 0;
  int delivered = 0;
  fabric.attach(1, [&](const WireChunk&) {
    ++delivered;
    last_delivery = e.now();
  });
  constexpr int kChunks = 64;
  constexpr std::uint64_t kBytes = 10240;
  for (int i = 0; i < kChunks; ++i) fabric.send(make_chunk(0, 1, kBytes, i));
  e.run();
  EXPECT_EQ(delivered, kChunks);
  // Steady state: one serialize per chunk + the switch latency.
  const Dur ser = transfer_time(kBytes, cfg.link_bytes_per_sec);
  const Dur expected = kChunks * ser + cfg.wire_latency;
  EXPECT_NEAR(static_cast<double>(last_delivery), static_cast<double>(expected),
              static_cast<double>(ser));
}

TEST(Fabric, IncastContendsAtDestinationPort) {
  sim::Engine e;
  FabricConfig cfg;
  cfg.per_chunk_overhead = 0;
  Fabric fabric(e, 3, cfg);
  Time last = 0;
  fabric.attach(2, [&](const WireChunk&) { last = e.now(); });
  // Two sources each send one 1 MiB chunk... (chunk caps don't apply at
  // fabric level) to the same destination; ingress must serialize them.
  fabric.send(make_chunk(0, 2, 1_MiB, 1));
  fabric.send(make_chunk(1, 2, 1_MiB, 2));
  e.run();
  const Dur ser = transfer_time(1_MiB, cfg.link_bytes_per_sec);
  // Both egress in parallel (cut-through heads arrive together), but the
  // destination port drains them serially: total ≈ 2 serial ingress.
  EXPECT_GE(last, 2 * ser);
  EXPECT_LT(last, 3 * ser + 2 * cfg.wire_latency);
}

TEST(Fabric, CountsTraffic) {
  sim::Engine e;
  Fabric fabric(e, 2);
  fabric.attach(1, [](const WireChunk&) {});
  fabric.send(make_chunk(0, 1, 1000, 1));
  fabric.send(make_chunk(0, 1, 2000, 2));
  e.run();
  EXPECT_EQ(fabric.chunks_sent(), 2u);
  EXPECT_EQ(fabric.bytes_sent(), 3000u);
}

TEST(Sdma, RejectsOversizedDescriptor) {
  sim::Engine e;
  Fabric fabric(e, 2);
  SdmaConfig cfg;
  SdmaEngine eng(e, fabric, cfg, 0);
  SdmaRequest req;
  req.descriptors = {{0x1000, 16384}};  // > 10240 cap
  EXPECT_EQ(eng.submit(std::move(req)).error(), Errno::einval);
  SdmaRequest empty;
  EXPECT_EQ(eng.submit(std::move(empty)).error(), Errno::einval);
}

TEST(Sdma, RingBackpressure) {
  sim::Engine e;
  Fabric fabric(e, 2);
  fabric.attach(1, [](const WireChunk&) {});
  SdmaConfig cfg;
  cfg.ring_slots = 4;
  SdmaEngine eng(e, fabric, cfg, 0);
  SdmaRequest req;
  for (int i = 0; i < 5; ++i) req.descriptors.push_back({0x1000, 4096});
  req.header = make_chunk(0, 1, 5 * 4096, 1).msg;
  EXPECT_EQ(eng.submit(std::move(req)).error(), Errno::eagain);
  EXPECT_EQ(eng.ring_free(), 4u);
}

TEST(Sdma, ProcessesRequestAndCompletes) {
  sim::Engine e;
  Fabric fabric(e, 2);
  fabric.attach(1, [](const WireChunk&) {});
  SdmaEngine eng(e, fabric, {}, 0);
  bool completed = false;
  SdmaRequest req;
  req.descriptors = {{0x1000, 4096}, {0x2000, 4096}, {0x3000, 2048}};
  req.header = make_chunk(0, 1, 10240, 7).msg;
  req.on_complete = [&] { completed = true; };
  ASSERT_TRUE(eng.submit(std::move(req)).ok());
  e.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(eng.requests_completed(), 1u);
  EXPECT_EQ(eng.descriptors_issued(), 3u);
  EXPECT_EQ(eng.descriptor_bytes(), 10240u);
  EXPECT_EQ(eng.ring_free(), SdmaConfig{}.ring_slots);
}

TEST(Sdma, FewerDescriptorsFinishSooner) {
  // The §3.4 effect in isolation: same bytes, 4 KiB vs 10 KiB descriptors.
  auto run_with = [](std::uint32_t desc_bytes) {
    sim::Engine e;
    Fabric fabric(e, 2);
    fabric.attach(1, [](const WireChunk&) {});
    SdmaConfig cfg;
    cfg.ring_slots = 512;  // room for 1 MiB of 4 KiB descriptors
    SdmaEngine eng(e, fabric, cfg, 0);
    constexpr std::uint64_t kTotal = 1_MiB;
    Time done = 0;
    std::uint64_t left = kTotal;
    SdmaRequest req;
    while (left > 0) {
      const std::uint32_t piece = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(left, desc_bytes));
      req.descriptors.push_back({0x1000, piece});
      left -= piece;
    }
    req.header = make_chunk(0, 1, kTotal, 1).msg;
    req.on_complete = [&] { done = e.now(); };
    // Large request: ring is 128 slots; split into submissions if needed.
    EXPECT_TRUE(eng.submit(std::move(req)).ok());
    e.run();
    return done;
  };
  const Time t4k = run_with(4096);
  const Time t10k = run_with(10240);
  EXPECT_LT(t10k, t4k);
  EXPECT_GT(static_cast<double>(t4k) / static_cast<double>(t10k), 1.05);
}

TEST(RcvArrayTest, ProgramUnprogram) {
  RcvArray arr(4);
  auto tid = arr.program(0, 0x1000, 4096);
  ASSERT_TRUE(tid.ok());
  EXPECT_EQ(arr.in_use(), 1u);
  const TidEntry* e = arr.entry(*tid);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pa, 0x1000u);
  EXPECT_TRUE(arr.unprogram(0, *tid).ok());
  EXPECT_EQ(arr.entry(*tid), nullptr);
  EXPECT_EQ(arr.in_use(), 0u);
}

TEST(RcvArrayTest, ExhaustionAndOwnership) {
  RcvArray arr(2);
  auto a = arr.program(0, 0x1000, 4096);
  auto b = arr.program(1, 0x2000, 4096);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(arr.program(0, 0x3000, 4096).error(), Errno::enospc);
  // Wrong owner cannot unprogram.
  EXPECT_EQ(arr.unprogram(0, *b).error(), Errno::einval);
  EXPECT_EQ(arr.unprogram_all(1), 1u);
  EXPECT_TRUE(arr.program(0, 0x3000, 4096).ok());
}

TEST(RcvArrayTest, RejectsZeroLength) {
  RcvArray arr(2);
  EXPECT_EQ(arr.program(0, 0x1000, 0).error(), Errno::einval);
}

TEST(HfiDeviceTest, PioDeliversToContext) {
  sim::Engine e;
  Fabric fabric(e, 2);
  HfiDevice a(e, fabric, 0), b(e, fabric, 1);
  auto& rx = b.open_context(3);
  std::vector<RxEvent> events;
  sim::spawn(e, [](sim::Channel<RxEvent>& ch, std::vector<RxEvent>& out) -> sim::Task<> {
    out.push_back(co_await ch.recv());
  }(rx, events));

  WireMessage msg;
  msg.src_node = 0;
  msg.dst_node = 1;
  msg.dst_ctxt = 3;
  msg.kind = WireKind::eager;
  msg.match_bits = 0xBEEF;
  msg.payload_bytes = 1024;
  msg.seq = 1;
  ASSERT_TRUE(a.pio_send(msg).ok());
  e.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].match_bits, 0xBEEFu);
  EXPECT_EQ(events[0].bytes, 1024u);
  EXPECT_EQ(events[0].kind, WireKind::eager);
}

TEST(HfiDeviceTest, PioRejectsOversize) {
  sim::Engine e;
  Fabric fabric(e, 1);
  HfiDevice dev(e, fabric, 0);
  WireMessage msg;
  msg.payload_bytes = dev.config().pio_max_bytes + 1;
  EXPECT_EQ(dev.pio_send(msg).error(), Errno::einval);
}

TEST(HfiDeviceTest, SdmaMultiChunkReassembly) {
  sim::Engine e;
  Fabric fabric(e, 2);
  HfiDevice a(e, fabric, 0), b(e, fabric, 1);
  auto& rx = b.open_context(0);
  std::vector<RxEvent> events;
  sim::spawn(e, [](sim::Channel<RxEvent>& ch, std::vector<RxEvent>& out) -> sim::Task<> {
    out.push_back(co_await ch.recv());
  }(rx, events));

  SdmaRequest req;
  for (int i = 0; i < 13; ++i) req.descriptors.push_back({0x1000, 10240});
  req.header.src_node = 0;
  req.header.dst_node = 1;
  req.header.dst_ctxt = 0;
  req.header.kind = WireKind::expected;
  req.header.payload_bytes = 13 * 10240;
  req.header.seq = 42;
  req.header.tid = 5;
  ASSERT_TRUE(a.engine(a.pick_engine()).submit(std::move(req)).ok());
  e.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].bytes, 13u * 10240u);
  EXPECT_EQ(events[0].tid, 5u);
  EXPECT_EQ(b.rx_messages(), 1u);
}

TEST(HfiDeviceTest, ClosedContextDrops) {
  sim::Engine e;
  Fabric fabric(e, 2);
  HfiDevice a(e, fabric, 0), b(e, fabric, 1);
  WireMessage msg;
  msg.src_node = 0;
  msg.dst_node = 1;
  msg.dst_ctxt = 9;  // never opened
  msg.payload_bytes = 64;
  msg.seq = 1;
  ASSERT_TRUE(a.pio_send(msg).ok());
  e.run();
  EXPECT_EQ(b.rx_messages(), 0u);
  EXPECT_EQ(b.dropped_messages(), 1u);
}

TEST(HfiDeviceTest, PickEngineRoundRobin) {
  sim::Engine e;
  Fabric fabric(e, 1);
  HfiDevice dev(e, fabric, 0);
  const int n = dev.num_engines();
  EXPECT_EQ(n, 16);
  for (int i = 0; i < 2 * n; ++i) EXPECT_EQ(dev.pick_engine(), i % n);
}

TEST(HfiDeviceTest, InterleavedMessagesFromTwoSources) {
  sim::Engine e;
  Fabric fabric(e, 3);
  HfiDevice a(e, fabric, 0), b(e, fabric, 1), c(e, fabric, 2);
  auto& rx = c.open_context(0);
  std::vector<RxEvent> events;
  sim::spawn(e, [](sim::Channel<RxEvent>& ch, std::vector<RxEvent>& out) -> sim::Task<> {
    for (int i = 0; i < 2; ++i) out.push_back(co_await ch.recv());
  }(rx, events));

  for (HfiDevice* src : {&a, &b}) {
    SdmaRequest req;
    for (int i = 0; i < 4; ++i) req.descriptors.push_back({0x1000, 4096});
    req.header.src_node = src->node_id();
    req.header.dst_node = 2;
    req.header.dst_ctxt = 0;
    req.header.kind = WireKind::eager;
    req.header.payload_bytes = 4 * 4096;
    req.header.seq = 100 + static_cast<std::uint64_t>(src->node_id());
    ASSERT_TRUE(src->engine(0).submit(std::move(req)).ok());
  }
  e.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].bytes, 4u * 4096u);
  EXPECT_EQ(events[1].bytes, 4u * 4096u);
  EXPECT_NE(events[0].src_node, events[1].src_node);
}

}  // namespace
}  // namespace pd::hw
