// The HFI PicoDriver: LWK fast paths for SDMA send (writev) and expected-
// receive registration (the three TID ioctls) — the < 3 K SLOC the paper
// ports, everything else stays on the offload path.
//
// The fast paths differ from the Linux driver's in exactly the §3.4 ways:
//   * no get_user_pages: LWK anonymous memory is pinned at mmap time, so
//     the driver walks page tables directly (cheaper per page);
//   * descriptors up to the hardware's 10 KiB, built from physically
//     contiguous extents (large pages make those common on the LWK);
//   * completion metadata lives in the *McKernel* heap; the completion
//     callback is a duplicated copy in LWK TEXT whose deallocation routine
//     is McKernel's (§3.3) — it runs on a Linux CPU and routes the free
//     through the remote-free queue.
//
// The device-independent machinery — extent caches and their quota, the
// remote-free drain piggyback, slab-magazine metadata, fallback accounting,
// the "pico.*" profiler namespace — lives in the FastPathPort base this
// driver shares with the pd-doom port. What stays here is HFI-specific:
// the extracted sdma/filedata accessors, descriptor building, the SDMA
// submit flow, and the TID registration paths.
//
// All driver state it touches (sdma_engine/sdma_state images, filedata,
// ctxtdata) is read and written through DWARF-extracted offsets only.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hfi/driver.hpp"
#include "src/pico/fast_path_port.hpp"

namespace pd::pico {

class HfiPicoDriver final : public FastPathPort {
 public:
  /// Bind against the driver's shipped module and install the fast paths
  /// into the LWK. Fails (forwarding PicoBinding::bind errors) when the
  /// LWK booted with the original VA layout, on lock-ABI mismatch, or when
  /// the module's debug info lacks a required structure.
  static Result<std::unique_ptr<HfiPicoDriver>> create(os::McKernel& mck,
                                                       hfi::HfiDriver& driver);

  hfi::HfiDriver& driver() { return driver_; }

  /// --- fast paths (installed via McKernel::register_fastpath) ------------
  sim::Task<Result<long>> fast_writev(os::OpenFile& f, std::span<const os::IoVec> iov);
  sim::Task<Result<long>> fast_ioctl(os::OpenFile& f, unsigned long cmd, void* arg);

  /// --- HFI-specific instrumentation (shared counters live in the base) ---
  std::uint64_t fast_writevs() const { return fast_writevs_; }
  std::uint64_t fast_tid_updates() const { return fast_tid_updates_; }
  std::uint64_t fast_tid_frees() const { return fast_tid_frees_; }

 private:
  HfiPicoDriver(PicoBinding binding, os::McKernel& mck, hfi::HfiDriver& driver);

  /// Read the engine's current sdma_state through extracted offsets.
  hfi::SdmaStates engine_state(int engine_id) const;

  hfi::HfiDriver& driver_;

  dwarf::FieldAccessor<std::uint32_t> eng_this_idx_;
  dwarf::FieldAccessor<std::uint64_t> eng_descq_submitted_;
  std::uint64_t state_offset_in_engine_ = 0;   // sdma_engine.state
  dwarf::FieldAccessor<std::uint32_t> state_current_;
  dwarf::FieldAccessor<std::uint32_t> fd_engine_idx_;
  dwarf::FieldAccessor<std::uint64_t> fd_tid_used_;
  dwarf::FieldAccessor<std::uint32_t> cd_expected_count_;

  BufferArena<hw::SdmaDescriptor> desc_arena_;

  std::uint64_t fast_writevs_ = 0;
  std::uint64_t fast_tid_updates_ = 0;
  std::uint64_t fast_tid_frees_ = 0;
};

}  // namespace pd::pico
