file(REMOVE_RECURSE
  "CMakeFiles/dwarf-extract-struct.dir/dwarf_extract_struct.cpp.o"
  "CMakeFiles/dwarf-extract-struct.dir/dwarf_extract_struct.cpp.o.d"
  "dwarf-extract-struct"
  "dwarf-extract-struct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf-extract-struct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
