// Wire-level message vocabulary shared by the NIC model and the fabric.
#pragma once

#include <cstdint>

#include "src/common/time.hpp"

namespace pd::hw {

/// How the receiving NIC places the payload.
enum class WireKind : std::uint8_t {
  ctrl,      // tiny control packet (RTS/CTS handshake)
  eager,     // into the receive context's eager ring (CPU copies later)
  expected,  // direct data placement via a programmed RcvArray TID
};

/// One message as seen by the fabric; large sends are carried as several
/// chunks that the destination NIC reassembles by (src_node, src_seq).
struct WireMessage {
  int src_node = 0;
  int dst_node = 0;
  int src_ctxt = 0;   // sending receive-context id (≈ rank slot on node)
  int dst_ctxt = 0;   // destination receive context
  WireKind kind = WireKind::ctrl;
  std::uint64_t match_bits = 0;  // PSM tag/metadata, opaque to hw
  std::uint64_t payload_bytes = 0;
  std::uint64_t seq = 0;  // per-source sequence for reassembly

  std::uint32_t tid = 0;  // expected: RcvArray entry index

  // Rendezvous-protocol fields (opaque to the fabric/NIC, interpreted by
  // the PSM layer): message id and window bookkeeping for RTS/CTS and
  // expected-data traffic.
  std::uint64_t msg_id = 0;
  std::uint32_t window = 0;
  std::uint32_t total_windows = 0;
  std::uint8_t ctrl = 0;  // CtrlKind for WireKind::ctrl packets
};

/// Control-packet subtypes carried in WireMessage::ctrl.
enum CtrlKind : std::uint8_t {
  kCtrlNone = 0,
  kCtrlRts = 1,  // sender → receiver: expected-protocol request to send
  kCtrlCts = 2,  // receiver → sender: window granted (TIDs programmed)
};

/// A transfer unit in flight: one PIO packet or one SDMA request's worth
/// of descriptors. `serialize_cost`, when non-zero, carries the
/// descriptor-granularity wire time (per-packet overheads + payload time)
/// pre-computed by the sender, so descriptor size still shapes bandwidth
/// even though the fabric moves whole requests.
struct WireChunk {
  WireMessage msg;            // header replicated on each chunk
  std::uint64_t chunk_bytes = 0;
  bool last = false;          // completes the message at the destination
  Dur serialize_cost = 0;     // 0 → fabric derives from chunk_bytes
};

}  // namespace pd::hw
