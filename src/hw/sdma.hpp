// SDMA engine model (16 per HFI, paper §2.2.1).
//
// A driver submits an SDMA *request* as a list of descriptors, each
// covering one physically contiguous run of at most `max_descriptor_bytes`
// (10 KiB on the real HFI — the cap the Linux driver never reaches because
// it stops at PAGE_SIZE; see paper §3.4). The engine processes its ring in
// order: per descriptor it pays a fetch/processing overhead plus the DMA
// read, hands the chunk to the fabric, and when the last descriptor of a
// request has left the egress port it raises the completion callback (the
// model of the hardware IRQ; which CPU runs it is the OS's business).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/time.hpp"
#include "src/mem/types.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"
#include "src/hw/fabric.hpp"
#include "src/hw/wire.hpp"

namespace pd::hw {

struct SdmaDescriptor {
  mem::PhysAddr pa = 0;
  std::uint32_t len = 0;
};

/// Completion notification — fires in "IRQ context" (see HfiDevice).
using SdmaCompletion = std::function<void()>;

struct SdmaRequest {
  std::vector<SdmaDescriptor> descriptors;
  WireMessage header;          // routing/matching info for the payload
  SdmaCompletion on_complete;  // raised after the last descriptor egresses
  // Optional arena hook: once the engine has consumed the descriptors it
  // hands the vector (capacity intact) back to the submitter for reuse, so
  // steady-state submissions never reallocate descriptor storage.
  std::function<void(std::vector<SdmaDescriptor>&&)> recycle_descriptors;
};

struct SdmaConfig {
  std::uint32_t ring_slots = 128;             // descriptor ring capacity
  std::uint64_t max_descriptor_bytes = 10240; // hardware cap per descriptor
  Dur per_descriptor_overhead = 180'000;      // 180 ns fetch + process
  double dma_read_bytes_per_sec = 35e9;       // MCDRAM/DDR read for DMA
};

class SdmaEngine {
 public:
  SdmaEngine(sim::Engine& engine, Fabric& fabric, SdmaConfig config, int engine_id);

  /// Queue a request. Fails with EAGAIN when the ring lacks room for all
  /// of the request's descriptors (caller retries, as the driver does).
  Status submit(SdmaRequest request);

  std::size_t ring_free() const { return ring_slots_free_; }
  std::uint64_t requests_completed() const { return requests_completed_; }
  int id() const { return id_; }

  /// Histogram bucket counters for descriptor sizes — the instrumentation
  /// used to verify the 4 KiB vs 10 KiB claim (paper §4.3).
  std::uint64_t descriptors_issued() const { return descriptors_issued_; }
  std::uint64_t descriptor_bytes() const { return descriptor_bytes_total_; }

 private:
  sim::Task<> run();

  sim::Engine& engine_;
  Fabric& fabric_;
  SdmaConfig config_;
  int id_;

  std::deque<SdmaRequest> queue_;
  sim::Channel<int> work_signal_;
  std::size_t ring_slots_free_;
  std::uint64_t requests_completed_ = 0;
  std::uint64_t descriptors_issued_ = 0;
  std::uint64_t descriptor_bytes_total_ = 0;
};

}  // namespace pd::hw
