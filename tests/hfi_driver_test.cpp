// Driver-level unit tests: file-operation edge cases, context lifecycle,
// and the version-independence property (the §3.2 payoff: behaviour and
// performance are identical across vendor releases with shuffled layouts,
// because the fast path binds offsets from debug info).
#include <gtest/gtest.h>

#include "src/apps/proxies.hpp"
#include "src/common/units.hpp"
#include "src/hfi/driver.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd::hfi {
namespace {

using namespace pd::time_literals;

struct DriverFixture {
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric{engine, 1};
  mem::PhysMap phys = mem::PhysMap::knl(256_MiB, 1ull << 30, 2);
  hw::HfiDevice device{engine, fabric, 0};
  os::LinuxKernel linux_kernel{engine, cfg};
  HfiDriver driver{linux_kernel, device, "10.8-0"};
};

TEST(HfiDriverOps, DuplicateContextOpenIsBusy) {
  DriverFixture f;
  os::Process a(f.linux_kernel, f.phys, 0, /*ctxt=*/5, 1);
  os::Process b(f.linux_kernel, f.phys, 0, /*ctxt=*/5, 2);  // same context
  sim::spawn(f.engine, [](os::Process& p1, os::Process& p2) -> sim::Task<> {
    auto fd1 = co_await p1.open(kDeviceName);
    CO_ASSERT_TRUE(fd1.ok());
    auto fd2 = co_await p2.open(kDeviceName);
    EXPECT_EQ(fd2.error(), Errno::ebusy);
  }(a, b));
  f.engine.run();
}

TEST(HfiDriverOps, CloseReleasesContextAndTids) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 3);
  sim::spawn(f.engine, [](DriverFixture& fx, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(64_KiB);
    CO_ASSERT_TRUE(buf.ok());
    TidUpdateArgs args;
    args.vaddr = *buf;
    args.length = 64_KiB;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, kTidUpdate, &args)).ok());
    EXPECT_GT(fx.device.rcv_array().in_use(), 0u);
    EXPECT_GT(p.as().pinned_frame_count(), 0u);
    // Close without TID_FREE: the driver must clean up (unprogram, unpin).
    CO_ASSERT_TRUE((co_await p.close_fd(*fd)).ok());
    EXPECT_EQ(fx.device.rcv_array().in_use(), 0u);
    EXPECT_EQ(p.as().pinned_frame_count(), 0u);
    EXPECT_FALSE(fx.device.context_open(0));
    // The context is reusable after close.
    auto fd2 = co_await p.open(kDeviceName);
    EXPECT_TRUE(fd2.ok());
  }(f, proc));
  f.engine.run();
}

TEST(HfiDriverOps, MmapBoundsChecked) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 4);
  sim::spawn(f.engine, [](DriverFixture& fx, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto ok = co_await p.mmap_dev(*fd, 64 * 1024, 0);
    EXPECT_TRUE(ok.ok());
    auto beyond = co_await p.mmap_dev(*fd, 64 * 1024, fx.device.config().csr_size);
    EXPECT_EQ(beyond.error(), Errno::einval);
  }(f, proc));
  f.engine.run();
}

TEST(HfiDriverOps, LseekValidatesArguments) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 5);
  sim::spawn(f.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto ok = co_await p.lseek(*fd, 4096, 0);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(*ok, 4096L);
    EXPECT_EQ((co_await p.lseek(*fd, -1, 0)).error(), Errno::einval);
    EXPECT_EQ((co_await p.lseek(*fd, 0, 7)).error(), Errno::einval);
  }(proc));
  f.engine.run();
}

TEST(HfiDriverOps, WritevNeedsHeaderAndData) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 6);
  sim::spawn(f.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    SdmaReqHeader hdr;
    std::vector<os::IoVec> only_header{
        os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr}};
    EXPECT_EQ((co_await p.writev(*fd, std::move(only_header))).error(), Errno::einval);
  }(proc));
  f.engine.run();
}

TEST(HfiDriverOps, UnknownIoctlRejected) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 7);
  sim::spawn(f.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    EXPECT_EQ((co_await p.ioctl(*fd, 0x9999, nullptr)).error(), Errno::einval);
  }(proc));
  f.engine.run();
}

// --- the §3.2 payoff ---------------------------------------------------------

TEST(VersionIndependence, PerformanceIdenticalAcrossDriverReleases) {
  // Run the same workload against all three shipped driver releases. The
  // layouts shift (verified elsewhere) — but because the PicoDriver binds
  // offsets from debug info, the simulation must be bit-identical.
  auto run_version = [](const char* version) {
    mpirt::ClusterOptions copts;
    copts.nodes = 2;
    copts.mode = os::OsMode::mckernel_hfi;
    copts.driver_version = version;
    copts.mcdram_bytes = 256ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 4;
    mpirt::MpiWorld world(cluster, wopts);
    apps::UmtParams umt;
    umt.steps = 1;
    world.run([umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });
    return std::pair<Dur, std::uint64_t>(world.max_solve(),
                                         cluster.engine().events_processed());
  };
  const auto v108 = run_version("10.8-0");
  const auto v109 = run_version("10.9-5");
  const auto v110 = run_version("11.0-2");
  EXPECT_EQ(v108, v109) << "porting effort across releases must be zero";
  EXPECT_EQ(v109, v110);
  EXPECT_GT(v108.first, 0);
}

}  // namespace
}  // namespace pd::hfi
