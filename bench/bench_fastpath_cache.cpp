// Micro-bench: the allocation-free fast path's host-side memory pipeline.
//
// Steady-state SDMA sends of the *same* pinned buffer pay, per call:
//   baseline   — a full page-table walk into a freshly allocated extent
//                vector, a freshly grown descriptor vector, and a
//                map-per-block kmalloc/kfree of the 192-byte completion
//                metadata (the pre-slab heap);
//   optimized  — an ExtentCache hit (no walk), descriptor build into an
//                arena-recycled vector, and a slab-magazine kmalloc/kfree.
//
// The bench measures both pipelines on a repeated-buffer workload and
// counts real heap allocations per call via a replaced operator new, then
// emits BENCH_fastpath.json. It fails (non-zero exit) if the optimized
// pipeline is less than 2x faster or still allocates in steady state —
// the acceptance bar for the fast-path cache work.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/extent_cache.hpp"
#include "src/mem/kheap.hpp"
#include "src/mem/phys.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Count every host heap allocation the pipelines make. Replacing the
// global allocation functions in the binary is the only way to see the
// vector/map/unique_ptr traffic without instrumenting each container.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pd;
using namespace pd::mem;

constexpr std::uint64_t kBufBytes = 256_KiB;
constexpr std::uint64_t kDescCap = 10240;  // HFI SDMA descriptor limit
constexpr int kLwkCpu = 60;
constexpr int kLinuxCpu = 0;

struct PipelineResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;   // steady state, after warmup
  std::uint64_t ops = 0;
};

struct Descriptor {  // stand-in for hw::SdmaDescriptor (pa, len)
  PhysAddr pa;
  std::uint32_t len;
};

/// One send's host-side work, baseline flavour: allocating walk, fresh
/// descriptor vector, map-per-block completion metadata.
std::uint64_t baseline_op(const AddressSpace& as, VirtAddr va, KernelHeap& heap) {
  auto extents = as.physical_extents(va, kBufBytes, kDescCap);
  if (!extents.ok()) std::abort();
  std::vector<Descriptor> descs;
  for (const auto& e : *extents)
    descs.push_back({e.pa, static_cast<std::uint32_t>(e.len)});
  auto meta = heap.kmalloc(192, kLwkCpu);
  if (!meta.ok()) std::abort();
  if (!heap.kfree(*meta, kLinuxCpu).ok()) std::abort();  // completion IRQ side
  (void)heap.drain_remote_frees(kLwkCpu);                // next scheduler tick
  return descs.size();
}

/// Same work, optimized flavour: extent-cache lookup, arena-recycled
/// descriptor vector, slab-magazine metadata.
std::uint64_t cached_op(const AddressSpace& as, VirtAddr va, ExtentCache& cache,
                        std::vector<Descriptor>& descs, KernelHeap& heap) {
  auto extents = cache.lookup(as, va, kBufBytes, kDescCap);
  if (!extents.ok()) std::abort();
  descs.clear();
  for (const auto& e : *extents)
    descs.push_back({e.pa, static_cast<std::uint32_t>(e.len)});
  auto meta = heap.kmalloc(192, kLwkCpu);
  if (!meta.ok()) std::abort();
  if (!heap.kfree(*meta, kLinuxCpu).ok()) std::abort();
  (void)heap.drain_remote_frees(kLwkCpu);
  return descs.size();
}

template <typename Op>
PipelineResult run_pipeline(std::uint64_t warmup, std::uint64_t iters, Op&& op) {
  PipelineResult r;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < warmup; ++i) sink += op();
  const std::uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) sink += op();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.ops = iters;
  r.ops_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(iters);
  if (sink == 0) std::abort();  // keep the work observable
  return r;
}

}  // namespace

int main() {
  using pd::bench::quick_mode;
  pd::bench::print_banner(
      "Fast-path memory pipeline — extent cache + slab heap + descriptor arena",
      "repeated sends of a pinned buffer should pay the page-table walk once");

  const std::uint64_t iters = quick_mode() ? 20'000 : 200'000;
  const std::uint64_t warmup = 1'000;

  PhysMap phys = PhysMap::knl(512ull << 20, 1ull << 30, 2);
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, 0x2000'0000ull, 42);
  auto va = as.mmap_anonymous(kBufBytes, kProtRead | kProtWrite);
  if (!va.ok()) return 1;

  // Baseline: the pre-slab map-per-block heap (slab magazines disabled).
  KernelHeap old_heap({kLwkCpu}, ForeignFreePolicy::remote_queue,
                      0x0000'00F0'0000'0000ull, /*slab_enabled=*/false);
  PipelineResult base = run_pipeline(
      warmup, iters, [&] { return baseline_op(as, *va, old_heap); });

  // Optimized: extent cache + arena descriptor buffer + slab heap.
  KernelHeap slab_heap({kLwkCpu}, ForeignFreePolicy::remote_queue);
  ExtentCache cache;
  std::vector<Descriptor> arena;
  PipelineResult fast = run_pipeline(
      warmup, iters, [&] { return cached_op(as, *va, cache, arena, slab_heap); });

  // Sanity: the cached extents must match a fresh walk bit for bit.
  auto truth = as.physical_extents(*va, kBufBytes, kDescCap);
  auto cached = cache.lookup(as, *va, kBufBytes, kDescCap);
  if (!truth.ok() || !cached.ok() || truth->size() != cached->size()) return 1;
  for (std::size_t i = 0; i < truth->size(); ++i)
    if ((*truth)[i].pa != (*cached)[i].pa || (*truth)[i].len != (*cached)[i].len) return 1;

  const double speedup = fast.ops_per_sec / base.ops_per_sec;
  std::printf("  workload: %llu sends of the same pinned %llu KiB buffer\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(kBufBytes >> 10));
  std::printf("  baseline : %12.0f ops/s, %5.2f heap allocs/op\n", base.ops_per_sec,
              base.allocs_per_op);
  std::printf("  optimized: %12.0f ops/s, %5.2f heap allocs/op\n", fast.ops_per_sec,
              fast.allocs_per_op);
  std::printf("  speedup  : %.1fx  (cache: %llu hits / %llu misses; heap: %llu slab "
              "reuses, %llu host allocs)\n",
              speedup, static_cast<unsigned long long>(cache.stats().hits),
              static_cast<unsigned long long>(cache.stats().misses),
              static_cast<unsigned long long>(slab_heap.stats().slab_reuses),
              static_cast<unsigned long long>(slab_heap.stats().host_allocs));

  std::FILE* json = std::fopen("BENCH_fastpath.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "{\n"
               "  \"workload\": {\"buffer_bytes\": %llu, \"max_extent_bytes\": %llu, "
               "\"iterations\": %llu, \"quick_mode\": %s},\n"
               "  \"baseline\": {\"ops_per_sec\": %.0f, \"heap_allocs_per_op\": %.3f},\n"
               "  \"optimized\": {\"ops_per_sec\": %.0f, \"heap_allocs_per_op\": %.3f},\n"
               "  \"speedup\": %.2f,\n"
               "  \"extent_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"invalidations\": %llu},\n"
               "  \"slab_heap\": {\"slab_reuses\": %llu, \"slab_recycles\": %llu, "
               "\"host_allocs\": %llu}\n"
               "}\n",
               static_cast<unsigned long long>(kBufBytes),
               static_cast<unsigned long long>(kDescCap),
               static_cast<unsigned long long>(iters), quick_mode() ? "true" : "false",
               base.ops_per_sec, base.allocs_per_op, fast.ops_per_sec, fast.allocs_per_op,
               speedup, static_cast<unsigned long long>(cache.stats().hits),
               static_cast<unsigned long long>(cache.stats().misses),
               static_cast<unsigned long long>(cache.stats().invalidations),
               static_cast<unsigned long long>(slab_heap.stats().slab_reuses),
               static_cast<unsigned long long>(slab_heap.stats().slab_recycles),
               static_cast<unsigned long long>(slab_heap.stats().host_allocs));
  std::fclose(json);
  std::printf("  wrote BENCH_fastpath.json\n");

  // Acceptance: >= 2x on the repeated-buffer workload, allocation-free in
  // steady state (every container reuses capacity, every block a magazine).
  if (speedup < 2.0) {
    std::printf("  FAIL: expected >= 2x speedup\n");
    return 1;
  }
  if (fast.allocs_per_op > 0.001) {
    std::printf("  FAIL: optimized pipeline still allocates\n");
    return 1;
  }
  return 0;
}
