// Tests for the DWARF subsystem: LEB128 coding, writer→reader roundtrip,
// structure extraction, Listing-1 header generation, module container.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/dwarf/constants.hpp"
#include "src/dwarf/extract.hpp"
#include "src/dwarf/leb128.hpp"
#include "src/dwarf/module_binary.hpp"
#include "src/dwarf/reader.hpp"
#include "src/dwarf/writer.hpp"

namespace pd::dwarf {
namespace {

TEST(Leb128, UnsignedRoundtrip) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16384ull,
                          0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::vector<std::uint8_t> buf;
    write_uleb128(buf, v);
    ByteCursor cur(buf.data(), buf.size());
    auto r = cur.read_uleb128();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, v);
    EXPECT_EQ(cur.offset(), buf.size());
  }
}

TEST(Leb128, SignedRoundtrip) {
  for (std::int64_t v : std::initializer_list<std::int64_t>{
           0, 1, -1, 63, 64, -64, -65, 8191, -1234567, INT64_MAX, INT64_MIN}) {
    std::vector<std::uint8_t> buf;
    write_sleb128(buf, v);
    ByteCursor cur(buf.data(), buf.size());
    auto r = cur.read_sleb128();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, v);
  }
}

TEST(Leb128, KnownEncodings) {
  // Classic DWARF spec examples.
  std::vector<std::uint8_t> buf;
  write_uleb128(buf, 624485);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0xE5, 0x8E, 0x26}));
  buf.clear();
  write_sleb128(buf, -123456);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0xC0, 0xBB, 0x78}));
}

TEST(ByteCursor, RejectsOutOfBounds) {
  std::uint8_t data[2] = {0x80, 0x80};  // unterminated LEB128
  ByteCursor cur(data, 2);
  EXPECT_FALSE(cur.read_uleb128().ok());
  ByteCursor cur2(data, 1);
  EXPECT_FALSE(cur2.read_u32().ok());
  ByteCursor cur3(data, 2);
  EXPECT_FALSE(cur3.read_cstring().ok());  // no NUL
}

// Build a small type graph resembling driver structures.
InfoBuilder small_builder() {
  InfoBuilder b;
  const TypeRef u32 = b.add_base_type("unsigned int", 4, DW_ATE_unsigned);
  const TypeRef u64 = b.add_base_type("long unsigned int", 8, DW_ATE_unsigned);
  const TypeRef states = b.add_enum("sdma_states", 4,
                                    {{"sdma_state_s00_hw_down", 0},
                                     {"sdma_state_s10_hw_start_up_halt_wait", 1},
                                     {"sdma_state_s99_running", 9}});
  b.add_struct("sdma_state", 64,
               {{"goto_count", u64, 0},
                {"current_state", states, 40},
                {"go_s99_running", u32, 48},
                {"previous_state", states, 52}});
  return b;
}

TEST(WriterReader, RoundtripFindsStruct) {
  const DebugInfo dbg = small_builder().build("pd-test", "hfi1.ko");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  const Die* s = view->find_named(DW_TAG_structure_type, "sdma_state");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->unsigned_attr(DW_AT_byte_size), 64u);
  EXPECT_EQ(s->children.size(), 4u);
}

TEST(WriterReader, CompileUnitAttributes) {
  const DebugInfo dbg = small_builder().build("pd-producer", "module.ko");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  const Die& cu = view->compile_unit();
  EXPECT_EQ(cu.tag, DW_TAG_compile_unit);
  const AttrValue* prod = cu.find_attr(DW_AT_producer);
  ASSERT_NE(prod, nullptr);
  EXPECT_EQ(std::get<std::string>(*prod), "pd-producer");
  EXPECT_EQ(cu.name(), "module.ko");
}

TEST(WriterReader, MemberOffsetsSurvive) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  const Die* s = view->find_named(DW_TAG_structure_type, "sdma_state");
  ASSERT_NE(s, nullptr);
  std::map<std::string, std::uint64_t> offsets;
  for (const auto& child : s->children) {
    if (child->tag == DW_TAG_member)
      offsets[*child->name()] = *child->unsigned_attr(DW_AT_data_member_location);
  }
  EXPECT_EQ(offsets["goto_count"], 0u);
  EXPECT_EQ(offsets["current_state"], 40u);
  EXPECT_EQ(offsets["go_s99_running"], 48u);
  EXPECT_EQ(offsets["previous_state"], 52u);
}

TEST(WriterReader, TypeReferencesResolve) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  const Die* s = view->find_named(DW_TAG_structure_type, "sdma_state");
  const Die* member = s->children[1].get();  // current_state
  const Die* type = view->type_of(*member);
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->tag, DW_TAG_enumeration_type);
  EXPECT_EQ(type->name(), "sdma_states");
  EXPECT_EQ(type->children.size(), 3u);
}

TEST(WriterReader, SelfReferentialStructViaForwardRef) {
  InfoBuilder b;
  const TypeRef node_fwd = b.forward_struct("list_node");
  const TypeRef node_ptr = b.add_pointer(node_fwd);
  b.define_struct(node_fwd, 16, {{"next", node_ptr, 0}, {"prev", node_ptr, 8}});
  const DebugInfo dbg = b.build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  const Die* s = view->find_named(DW_TAG_structure_type, "list_node");
  ASSERT_NE(s, nullptr);
  const Die* next_type = view->type_of(*s->children[0]);
  ASSERT_NE(next_type, nullptr);
  EXPECT_EQ(next_type->tag, DW_TAG_pointer_type);
  const Die* pointee = view->type_of(*next_type);
  ASSERT_NE(pointee, nullptr);
  EXPECT_EQ(pointee->name(), "list_node");
}

TEST(WriterReader, ArraysCarryCounts) {
  InfoBuilder b;
  const TypeRef u16 = b.add_base_type("short unsigned int", 2, DW_ATE_unsigned);
  const TypeRef arr = b.add_array(u16, 16);
  b.add_struct("with_array", 32, {{"tids", arr, 0}});
  const DebugInfo dbg = b.build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "with_array", {"tids"});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->fields[0].size, 32u);
  EXPECT_EQ(layout->fields[0].type_decl, "short unsigned int tids[16]");
}

TEST(WriterReader, MalformedInputRejected) {
  const DebugInfo dbg = small_builder().build("p", "m");
  // Truncated info.
  std::vector<std::uint8_t> cut(dbg.info.begin(), dbg.info.begin() + dbg.info.size() / 2);
  EXPECT_FALSE(DebugInfoView::parse(dbg.abbrev, cut).ok());
  // Garbage abbrev.
  std::vector<std::uint8_t> junk = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(DebugInfoView::parse(junk, dbg.info).ok());
}

TEST(Extract, LayoutOffsetsAndSizes) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "sdma_state",
                               {"current_state", "go_s99_running", "previous_state"});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->byte_size, 64u);
  ASSERT_EQ(layout->fields.size(), 3u);
  EXPECT_EQ(layout->fields[0].offset, 40u);
  EXPECT_EQ(layout->fields[0].size, 4u);
  EXPECT_EQ(layout->fields[1].offset, 48u);
  EXPECT_EQ(layout->fields[2].offset, 52u);
  EXPECT_EQ(layout->field("go_s99_running")->type_decl, "unsigned int go_s99_running");
}

TEST(Extract, MissingStructOrFieldFails) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(extract_struct(*view, "nonexistent", {"x"}).error(), Errno::enoent);
  EXPECT_EQ(extract_struct(*view, "sdma_state", {"no_such_field"}).error(), Errno::enoent);
}

// The paper's Listing 1, byte for byte in structure (modulo the paper's
// truncated 3-field selection and its whole_struct convention).
TEST(Extract, Listing1GoldenHeader) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "sdma_state",
                               {"current_state", "go_s99_running", "previous_state"});
  ASSERT_TRUE(layout.ok());
  const std::string header = generate_header(*view, *layout);

  const char* expected_struct =
      "struct sdma_state {\n"
      "\tunion {\n"
      "\t\tchar whole_struct[64];\n"
      "\t\tstruct {\n"
      "\t\t\tchar padding0[40];\n"
      "\t\t\tenum sdma_states current_state;\n"
      "\t\t};\n"
      "\t\tstruct {\n"
      "\t\t\tchar padding1[48];\n"
      "\t\t\tunsigned int go_s99_running;\n"
      "\t\t};\n"
      "\t\tstruct {\n"
      "\t\t\tchar padding2[52];\n"
      "\t\t\tenum sdma_states previous_state;\n"
      "\t\t};\n"
      "\t};\n"
      "};\n";
  EXPECT_NE(header.find(expected_struct), std::string::npos) << header;
  // The enum definition must precede so the header is standalone.
  EXPECT_NE(header.find("enum sdma_states {"), std::string::npos);
  EXPECT_LT(header.find("enum sdma_states {"), header.find("struct sdma_state {"));
}

TEST(Extract, FieldAtOffsetZeroHasNoPadding) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto header = extract_struct_header(*view, "sdma_state", {"goto_count"});
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->find("padding"), std::string::npos);
  EXPECT_NE(header->find("long unsigned int goto_count;"), std::string::npos);
}

TEST(Extract, PointerFieldsRenderForwardDecls) {
  InfoBuilder b;
  const TypeRef page = b.forward_struct("page");
  const TypeRef page_ptr = b.add_pointer(page);
  const TypeRef page_ptr_ptr = b.add_pointer(page_ptr);
  b.add_struct("user_sdma_iovec", 48, {{"pages", page_ptr_ptr, 16}});
  const DebugInfo dbg = b.build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto header = extract_struct_header(*view, "user_sdma_iovec", {"pages"});
  ASSERT_TRUE(header.ok());
  EXPECT_NE(header->find("struct page;"), std::string::npos);
  EXPECT_NE(header->find("struct page **pages;"), std::string::npos);
}

TEST(Extract, FieldAccessorReadsAtExtractedOffset) {
  const DebugInfo dbg = small_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "sdma_state", {"go_s99_running"});
  ASSERT_TRUE(layout.ok());

  // Simulate the Linux-side structure as a raw image.
  alignas(8) std::uint8_t image[64] = {};
  image[48] = 0x2A;
  FieldAccessor<std::uint32_t> acc(*layout->field("go_s99_running"));
  EXPECT_EQ(acc.read(image), 42u);
  acc.write(image, 7);
  EXPECT_EQ(image[48], 7);
  EXPECT_EQ(acc.read(image), 7u);
}

TEST(ModuleBinary, SectionRoundtrip) {
  ModuleBinary mod;
  mod.set_section(".debug_info", {1, 2, 3});
  mod.set_section(".text", {});
  mod.set_version("hfi1 10.8.0.0");
  const auto bytes = mod.serialize();
  auto back = ModuleBinary::deserialize(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_NE(back->section(".debug_info"), nullptr);
  EXPECT_EQ(*back->section(".debug_info"), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(back->version(), "hfi1 10.8.0.0");
  EXPECT_EQ(back->section(".bss"), nullptr);
}

TEST(ModuleBinary, RejectsBadMagic) {
  std::vector<std::uint8_t> junk = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X', 0};
  EXPECT_FALSE(ModuleBinary::deserialize(junk).ok());
}

TEST(ModuleBinary, FileRoundtrip) {
  ModuleBinary mod;
  mod.set_section(".debug_abbrev", {9, 8, 7});
  const std::string path = testing::TempDir() + "/pd_mod_test.ko";
  ASSERT_TRUE(mod.save(path).ok());
  auto back = ModuleBinary::load(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->section(".debug_abbrev"), (std::vector<std::uint8_t>{9, 8, 7}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pd::dwarf
