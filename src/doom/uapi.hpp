// pd-doom user API: the ioctl surface PSM-free userspace drives directly.
//
// Mirrors the harddoom driver's shape: a context is created per open file,
// long-lived surfaces are mapped into the context's DMA page table, and
// work arrives as *batches* — N commands plus an implicit fence whose
// completion the submitter can wait on. Only kDoomSubmitBatch has an LWK
// fast path; everything else rides the normal offload machinery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mem/types.hpp"

namespace pd::doom {

inline constexpr const char* kDeviceName = "/dev/pd_doom0";

// Command numbers (distinct from the hfi 0xB1xx block).
enum : unsigned long {
  kDoomCreateCtx = 0xD001,
  kDoomMapBuffer = 0xD002,
  kDoomSubmitBatch = 0xD003,
  kDoomWaitFence = 0xD004,
  kDoomResetError = 0xD005,
  kDoomInfo = 0xD006,
};

/// Does the LWK fast path handle this command? Batched submit only — the
/// control surface (context/buffer management, waits, resets) stays on the
/// offload path like the HFI's administrative ioctls.
inline bool is_submit_cmd(unsigned long cmd) { return cmd == kDoomSubmitBatch; }

/// One user command in a batch. Either `src_va` names user memory the
/// driver maps transiently for this batch, or `dva` names a window already
/// mapped with kDoomMapBuffer (src_va == 0).
struct DoomUserCmd {
  std::uint32_t op = 0;  // hw::DoomOp numeric value
  mem::VirtAddr src_va = 0;
  std::uint64_t dva = 0;
  std::uint64_t bytes = 0;
};

struct DoomSubmitArgs {
  std::vector<DoomUserCmd> cmds;
  std::function<void()> on_fence;  // raised when the batch's fence retires
  std::uint64_t fence_seq = 0;     // out: the fence this batch retires at
};

struct DoomMapBufferArgs {
  mem::VirtAddr va = 0;
  std::uint64_t len = 0;
  std::uint64_t dva = 0;  // out: device VA of the persistent mapping
};

struct DoomWaitFenceArgs {
  std::uint64_t seq = 0;
};

}  // namespace pd::doom
