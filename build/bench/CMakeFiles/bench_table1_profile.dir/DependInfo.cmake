
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_profile.cpp" "bench/CMakeFiles/bench_table1_profile.dir/bench_table1_profile.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_profile.dir/bench_table1_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/pd_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mpirt/CMakeFiles/pd_mpirt.dir/DependInfo.cmake"
  "/root/repo/build/src/psm/CMakeFiles/pd_psm.dir/DependInfo.cmake"
  "/root/repo/build/src/pico/CMakeFiles/pd_pico.dir/DependInfo.cmake"
  "/root/repo/build/src/hfi/CMakeFiles/pd_hfi.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pd_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pd_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarf/CMakeFiles/pd_dwarf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
