file(REMOVE_RECURSE
  "CMakeFiles/pd_mpirt.dir/cluster.cpp.o"
  "CMakeFiles/pd_mpirt.dir/cluster.cpp.o.d"
  "CMakeFiles/pd_mpirt.dir/stats.cpp.o"
  "CMakeFiles/pd_mpirt.dir/stats.cpp.o.d"
  "CMakeFiles/pd_mpirt.dir/world.cpp.o"
  "CMakeFiles/pd_mpirt.dir/world.cpp.o.d"
  "libpd_mpirt.a"
  "libpd_mpirt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_mpirt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
