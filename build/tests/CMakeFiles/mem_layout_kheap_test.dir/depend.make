# Empty dependencies file for mem_layout_kheap_test.
# This may be replaced when dependencies are built.
