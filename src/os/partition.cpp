#include "src/os/partition.hpp"

#include <algorithm>

namespace pd::os {

HostInventory::HostInventory(int total_cpus, std::uint64_t total_memory)
    : total_cpus_(total_cpus), total_memory_(total_memory) {}

int HostInventory::online_cpus() const {
  return total_cpus_ - static_cast<int>(reserved_cpus_.size());
}

bool HostInventory::cpu_online(int cpu) const {
  return cpu >= 0 && cpu < total_cpus_ && reserved_cpus_.count(cpu) == 0;
}

Result<std::vector<int>> HostInventory::reserve_cpus(int count) {
  if (count <= 0) return Errno::einval;
  if (count > online_cpus()) return Errno::ebusy;
  std::vector<int> taken;
  taken.reserve(static_cast<std::size_t>(count));
  for (int cpu = total_cpus_ - 1; cpu >= 0 && static_cast<int>(taken.size()) < count; --cpu) {
    if (reserved_cpus_.count(cpu) == 0) taken.push_back(cpu);
  }
  for (int cpu : taken) reserved_cpus_.insert(cpu);
  std::sort(taken.begin(), taken.end());
  return taken;
}

Status HostInventory::reserve_cpus_exact(const std::vector<int>& cpus) {
  for (int cpu : cpus) {
    if (cpu < 0 || cpu >= total_cpus_) return Errno::einval;
    if (reserved_cpus_.count(cpu) != 0) return Errno::ebusy;
  }
  for (int cpu : cpus) reserved_cpus_.insert(cpu);
  return Status::success();
}

void HostInventory::release_cpus(const std::vector<int>& cpus) {
  for (int cpu : cpus) reserved_cpus_.erase(cpu);
}

Result<std::uint64_t> HostInventory::reserve_memory(std::uint64_t bytes) {
  if (bytes == 0) return Errno::einval;
  if (bytes > free_memory()) return Errno::enomem;
  reserved_memory_ += bytes;
  return bytes;
}

void HostInventory::release_memory(std::uint64_t bytes) {
  reserved_memory_ -= std::min(bytes, reserved_memory_);
}

IhkPartition::IhkPartition(HostInventory& host, std::vector<int> cpus, std::uint64_t memory)
    : host_(&host), cpus_(std::move(cpus)), memory_(memory) {}

IhkPartition::IhkPartition(IhkPartition&& other) noexcept
    : host_(other.host_),
      cpus_(std::move(other.cpus_)),
      memory_(other.memory_),
      booted_(other.booted_) {
  other.host_ = nullptr;
  other.memory_ = 0;
  other.booted_ = false;
}

Result<IhkPartition> IhkPartition::create(HostInventory& host, int cpus, std::uint64_t memory) {
  auto cpu_set = host.reserve_cpus(cpus);
  if (!cpu_set.ok()) return cpu_set.error();
  auto mem = host.reserve_memory(memory);
  if (!mem.ok()) {
    host.release_cpus(*cpu_set);
    return mem.error();
  }
  return IhkPartition(host, std::move(*cpu_set), memory);
}

IhkPartition::~IhkPartition() {
  if (host_ == nullptr) return;
  host_->release_cpus(cpus_);
  host_->release_memory(memory_);
}

Status IhkPartition::boot() {
  if (booted_) return Errno::ebusy;
  if (cpus_.empty()) return Errno::einval;
  booted_ = true;
  return Status::success();
}

Status IhkPartition::shutdown() {
  if (!booted_) return Errno::einval;
  booted_ = false;
  return Status::success();
}

Status IhkPartition::grow_cpus(int extra) {
  auto more = host_->reserve_cpus(extra);
  if (!more.ok()) return more.error();
  cpus_.insert(cpus_.end(), more->begin(), more->end());
  std::sort(cpus_.begin(), cpus_.end());
  return Status::success();
}

Status IhkPartition::adopt_cpu(int cpu) {
  if (const Status s = host_->reserve_cpus_exact({cpu}); !s.ok()) return s;
  cpus_.push_back(cpu);
  std::sort(cpus_.begin(), cpus_.end());
  return Status::success();
}

Status IhkPartition::yield_cpu(int cpu) {
  auto it = std::find(cpus_.begin(), cpus_.end(), cpu);
  if (it == cpus_.end()) return Errno::einval;
  if (cpus_.size() <= 1) return Errno::einval;
  cpus_.erase(it);
  host_->release_cpus({cpu});
  return Status::success();
}

Status IhkPartition::shrink_cpus(int count) {
  if (booted_) return Errno::ebusy;
  if (count <= 0 || count >= static_cast<int>(cpus_.size())) return Errno::einval;
  std::vector<int> give_back(cpus_.end() - count, cpus_.end());
  cpus_.resize(cpus_.size() - static_cast<std::size_t>(count));
  host_->release_cpus(give_back);
  return Status::success();
}

}  // namespace pd::os
