// IHK resource partitioning (paper §2.1).
//
// "IHK is capable of allocating and releasing host resources dynamically
// and no reboot of the host machine is required when altering
// configuration." This module models that contract per node: a
// HostInventory tracks which CPUs are online under Linux and which memory
// is owned by whom; an IhkPartition is one LWK instance's reservation,
// created and torn down at runtime. Reserved CPUs are offlined from Linux
// (they become invisible there, §3.1), reserved memory leaves the Linux
// allocator.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.hpp"

namespace pd::os {

/// Per-node inventory of CPUs and physical memory available to IHK.
class HostInventory {
 public:
  HostInventory(int total_cpus, std::uint64_t total_memory);

  int total_cpus() const { return total_cpus_; }
  std::uint64_t total_memory() const { return total_memory_; }
  int online_cpus() const;  // CPUs currently visible to Linux
  std::uint64_t free_memory() const { return total_memory_ - reserved_memory_; }
  bool cpu_online(int cpu) const;

  /// Reserve `count` CPUs (highest-numbered first, like IHK's default
  /// policy of leaving low CPUs — where IRQs and daemons live — to Linux).
  Result<std::vector<int>> reserve_cpus(int count);
  /// Reserve a specific CPU set; EBUSY if any is already reserved.
  Status reserve_cpus_exact(const std::vector<int>& cpus);
  void release_cpus(const std::vector<int>& cpus);

  Result<std::uint64_t> reserve_memory(std::uint64_t bytes);
  void release_memory(std::uint64_t bytes);

 private:
  int total_cpus_;
  std::uint64_t total_memory_;
  std::uint64_t reserved_memory_ = 0;
  std::set<int> reserved_cpus_;
};

/// One LWK instance's reservation: RAII over the inventory. Models the
/// `ihk_reserve/ihk_create/ihk_destroy` lifecycle: resources return to
/// Linux at destruction — no reboot anywhere.
class IhkPartition {
 public:
  /// Reserve `cpus` CPUs and `memory` bytes. Fails without touching the
  /// inventory when either reservation cannot be satisfied.
  static Result<IhkPartition> create(HostInventory& host, int cpus, std::uint64_t memory);

  IhkPartition(IhkPartition&& other) noexcept;
  IhkPartition& operator=(IhkPartition&&) = delete;
  IhkPartition(const IhkPartition&) = delete;
  IhkPartition& operator=(const IhkPartition&) = delete;
  ~IhkPartition();

  const std::vector<int>& cpus() const { return cpus_; }
  std::uint64_t memory() const { return memory_; }
  bool booted() const { return booted_; }

  /// Boot/shutdown bookkeeping for the LWK image in this partition.
  Status boot();
  Status shutdown();

  /// Grow the partition by `extra` CPUs at runtime (the dynamic
  /// reconfiguration IHK advertises).
  Status grow_cpus(int extra);
  /// Shrink: return `count` CPUs to Linux. EBUSY while booted (the LWK
  /// scheduler owns them), EINVAL when fewer are held.
  Status shrink_cpus(int count);

  /// --- elastic repartitioning (§8.7) --------------------------------------
  /// Unlike grow/shrink_cpus — offline reconfiguration of an unbooted
  /// partition — these move one *named* core while the LWK runs. The
  /// PartitionController quiesces the core on its old side first, so the
  /// usual EBUSY-while-booted guard does not apply.
  /// Take `cpu` from Linux into this partition; EBUSY if already reserved.
  Status adopt_cpu(int cpu);
  /// Return `cpu` to Linux; EINVAL when the partition does not hold it or
  /// it is the last CPU held.
  Status yield_cpu(int cpu);

 private:
  IhkPartition(HostInventory& host, std::vector<int> cpus, std::uint64_t memory);

  HostInventory* host_;
  std::vector<int> cpus_;
  std::uint64_t memory_ = 0;
  bool booted_ = false;
};

}  // namespace pd::os
