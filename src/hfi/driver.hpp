// The simulated Intel HFI1 Linux driver.
//
// This is the "unmodified driver" of the paper: the same object serves
// native Linux syscalls, offloaded McKernel syscalls, and coexists with the
// PicoDriver fast path — it is never specialized per OS mode. Its SDMA
// submission path deliberately reproduces the Linux driver's behaviour from
// §3.4: buffers are pinned with get_user_pages() and descriptors never
// exceed PAGE_SIZE (4 KiB), even though the hardware takes 10 KiB.
//
// Driver state lives as raw structure images in the Linux kernel heap,
// accessed through the version-dependent layout table (layouts.hpp); the
// shipped module binary (with DWARF debug info) is what the PicoDriver
// binds against.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/hfi/layouts.hpp"
#include "src/hfi/uapi.hpp"
#include "src/hw/hfi_device.hpp"
#include "src/mem/address_space.hpp"
#include "src/os/kernel.hpp"
#include "src/os/process.hpp"
#include "src/os/spinlock.hpp"

namespace pd::hfi {

class HfiDriver final : public os::CharDevice {
 public:
  /// Constructs, initializes per-engine state images, and registers the
  /// device with the Linux kernel's VFS.
  HfiDriver(os::LinuxKernel& linux_kernel, hw::HfiDevice& device, const std::string& version);
  ~HfiDriver() override;

  std::string dev_name() const override { return kDeviceName; }

  sim::Task<Result<long>> open(os::OpenFile& f) override;
  sim::Task<Result<long>> writev(os::OpenFile& f, std::span<const os::IoVec> iov) override;
  sim::Task<Result<long>> ioctl(os::OpenFile& f, unsigned long cmd, void* arg) override;
  sim::Task<Result<long>> poll(os::OpenFile& f) override;
  sim::Task<Result<mem::PhysAddr>> mmap(os::OpenFile& f, std::uint64_t len,
                                        std::uint64_t offset) override;
  sim::Task<Result<long>> read(os::OpenFile& f, std::uint64_t len) override;
  sim::Task<Result<long>> lseek(os::OpenFile& f, long offset, int whence) override;
  sim::Task<Result<long>> close(os::OpenFile& f) override;

  /// --- what the PicoDriver needs ----------------------------------------
  os::LinuxKernel& linux_kernel() { return linux_; }
  hw::HfiDevice& device() { return device_; }
  const DriverLayouts& layouts() const { return layouts_; }
  /// The vendor-shipped module binary (DWARF inside).
  const dwarf::ModuleBinary& module_binary() const { return module_; }

  /// Per-engine submission spin-lock — the lock both kernels take (§3.3).
  os::SharedSpinlock& engine_lock(int engine_id) {
    return *engine_locks_.at(static_cast<std::size_t>(engine_id));
  }

  /// Kernel-heap addresses of internal structure images. The PicoDriver
  /// obtains these "pointers" by following driver state — here, via
  /// accessors standing in for pointer chases through unified memory.
  mem::PhysAddr sdma_engine_image(int engine_id) const;
  mem::PhysAddr filedata_image(const os::OpenFile& f) const;
  mem::PhysAddr ctxtdata_image(const os::OpenFile& f) const;

  /// Per-context TID accounting shared with the fast path.
  Status account_tid_pin(os::OpenFile& f, std::uint32_t tid, mem::PinnedPages pins);
  Result<mem::PinnedPages> release_tid_pin(os::OpenFile& f, std::uint32_t tid);

  /// Quota reclamation (`Config::hfi_tid_quota_evict`): unprogram and unpin
  /// this context's least-recently-registered TID entry. Strictly per-tenant
  /// — only entries the context itself owns are eligible, so a neighbour at
  /// quota can never push out this context's registrations. Returns the
  /// number of RcvArray accounting units freed (pages on the Linux path,
  /// extents on the pico path), or ENOENT when the context owns nothing.
  Result<std::uint64_t> evict_lru_tid(os::OpenFile& f);

  /// --- instrumentation (drives the §4.3 descriptor-size verification) ----
  std::uint64_t writev_calls() const { return writev_calls_; }
  std::uint64_t sdma_requests() const { return sdma_requests_; }
  std::uint64_t tid_entries_programmed() const { return tid_programs_; }

  /// Simulated text address of the driver's completion callback (inside
  /// the Linux image — always visible to Linux).
  mem::VirtAddr completion_callback_text() const;

 private:
  struct FileCtx {
    mem::PhysAddr filedata = 0;
    mem::PhysAddr ctxtdata = 0;
    int hw_ctxt = -1;
    std::map<std::uint32_t, mem::PinnedPages> tid_pins;
    // Registration order (front = oldest) driving per-tenant LRU eviction.
    std::vector<std::uint32_t> tid_order;
  };

  FileCtx* fctx(const os::OpenFile& f) const { return static_cast<FileCtx*>(f.driver_ctx); }
  StructImage image(mem::PhysAddr addr, const char* struct_name) const;
  int alloc_cpu() const;  // representative Linux CPU for kheap ownership

  os::LinuxKernel& linux_;
  hw::HfiDevice& device_;
  DriverLayouts layouts_;
  dwarf::ModuleBinary module_;

  std::vector<mem::PhysAddr> engine_images_;
  std::vector<std::unique_ptr<os::SharedSpinlock>> engine_locks_;
  std::uint32_t expected_entries_per_ctxt_;

  std::uint64_t writev_calls_ = 0;
  std::uint64_t sdma_requests_ = 0;
  std::uint64_t tid_programs_ = 0;
};

}  // namespace pd::hfi
