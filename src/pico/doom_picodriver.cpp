#include "src/pico/doom_picodriver.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/log.hpp"

namespace pd::pico {

using namespace pd::time_literals;

Result<std::unique_ptr<DoomPicoDriver>> DoomPicoDriver::create(os::McKernel& mck,
                                                               doom::DoomDriver& driver) {
  // The structures and fields the fast path touches — nothing more.
  const std::vector<StructRequest> requests = {
      {"doom_devdata", {"fence_seq", "cmds_submitted", "ring"}},
      {"doom_ringstate", {"run_state", "error_flags"}},
      {"doom_ctx", {"ctx_id", "pt_used", "dva_next", "batches_submitted"}},
  };
  auto binding = bind_checked(mck, driver.linux_kernel(), driver.module_binary(),
                              requests, &driver.ring_lock());
  if (!binding.ok()) return binding.error();

  auto pico = std::unique_ptr<DoomPicoDriver>(
      new DoomPicoDriver(std::move(*binding), mck, driver));

  os::FastPathOps ops;
  DoomPicoDriver* raw = pico.get();
  ops.ioctl = [raw](os::OpenFile& f, unsigned long cmd, void* arg) {
    return raw->fast_ioctl(f, cmd, arg);
  };
  ops.ioctl_handles = [](unsigned long cmd) { return doom::is_submit_cmd(cmd); };
  raw->install(driver, std::move(ops));
  return pico;
}

DoomPicoDriver::DoomPicoDriver(PicoBinding binding, os::McKernel& mck,
                               doom::DoomDriver& driver)
    : FastPathPort(std::move(binding), mck), driver_(driver) {
  const dwarf::StructLayout* dev = binding_.layout("doom_devdata");
  const dwarf::StructLayout* ring = binding_.layout("doom_ringstate");
  const dwarf::StructLayout* ctx = binding_.layout("doom_ctx");
  assert(dev && ring && ctx);
  ring_offset_in_devdata_ = dev->field("ring")->offset;
  dev_fence_seq_ = dwarf::FieldAccessor<std::uint64_t>(*dev->field("fence_seq"));
  dev_cmds_submitted_ = dwarf::FieldAccessor<std::uint64_t>(*dev->field("cmds_submitted"));
  ring_run_state_ = dwarf::FieldAccessor<std::uint32_t>(*ring->field("run_state"));
  ctx_pt_used_ = dwarf::FieldAccessor<std::uint64_t>(*ctx->field("pt_used"));
  ctx_dva_next_ = dwarf::FieldAccessor<std::uint64_t>(*ctx->field("dva_next"));
  ctx_batches_submitted_ =
      dwarf::FieldAccessor<std::uint64_t>(*ctx->field("batches_submitted"));
}

doom::DoomRunState DoomPicoDriver::run_state() const {
  // Unified direct map: the LWK dereferences the Linux kmalloc'd image.
  auto bytes = driver_.linux_kernel().kheap().data(driver_.devdata_image());
  assert(!bytes.empty());
  return static_cast<doom::DoomRunState>(
      ring_run_state_.read(bytes.data() + ring_offset_in_devdata_));
}

sim::Task<Result<long>> DoomPicoDriver::fast_ioctl(os::OpenFile& f, unsigned long cmd,
                                                   void* arg) {
  if (!doom::is_submit_cmd(cmd)) {
    // Not a fast-path command; McKernel should not have routed it here.
    count_fallback();
    co_return Errno::einval;
  }
  auto* args = static_cast<doom::DoomSubmitArgs*>(arg);
  if (args == nullptr) co_return Errno::einval;
  co_return co_await fast_submit(f, *args);
}

sim::Task<Result<long>> DoomPicoDriver::fast_submit(os::OpenFile& f,
                                                    doom::DoomSubmitArgs& args) {
  ++fast_submits_;
  const os::Config& cfg = mck_.config();
  if (f.driver_ctx == nullptr || args.cmds.empty()) co_return Errno::einval;
  if (!driver_.device().context_open(f.ctxt)) co_return Errno::enodev;

  // Scheduler-tick housekeeping piggybacked on fast-path entry.
  piggyback_drain();

  if (run_state() != doom::DoomRunState::running) {
    // Device parked (fault or reset in progress): the Linux path owns the
    // error protocol — fall back and let it return EIO / recover.
    count_fallback();
    co_return co_await driver_.ioctl(f, doom::kDoomSubmitBatch, &args);
  }

  os::Process& proc = *f.proc;
  mem::AddressSpace& as = proc.as();
  hw::DoomDevice& device = driver_.device();
  const std::uint64_t max_pte = device.config().max_pte_bytes;

  auto ctx_bytes = driver_.linux_kernel().kheap().data(driver_.ctx_image(f));
  if (ctx_bytes.empty()) co_return Errno::einval;

  // Translate each source buffer through the per-file extent cache and
  // program one PTE per physically contiguous extent — the §3.4 win over
  // the slow path's one-PTE-per-4K-page blindness. Transient windows come
  // from the same dva_next cursor the Linux driver uses (an image field,
  // so the allocators can never collide).
  mem::ExtentCache& cache = extent_cache_for(f);
  std::vector<hw::DoomCommand> cmds = cmd_arena_.take();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> transient;  // dva window, len
  std::uint64_t transient_entries = 0;
  std::size_t pinned_upto = 0;
  auto unpin_all = [&] {
    for (std::size_t i = 0; i < pinned_upto; ++i) {
      const doom::DoomUserCmd& c = args.cmds[i];
      if (c.src_va != 0) cache.unpin(c.src_va, c.bytes, max_pte);
    }
    pinned_upto = 0;
  };
  auto unwind_ptes = [&] {
    for (const auto& [dva, len] : transient)
      (void)device.unmap_range(f.ctxt, dva, len);
    transient.clear();
    transient_entries = 0;
  };
  auto bail = [&](Errno err) {
    unpin_all();
    unwind_ptes();
    cmd_arena_.recycle(std::move(cmds));
    return err;
  };

  std::uint64_t walked_pages = 0;
  std::uint64_t cached_ranges = 0;
  for (std::size_t i = 0; i < args.cmds.size(); ++i) {
    const doom::DoomUserCmd& c = args.cmds[i];
    if (c.bytes == 0) co_return bail(Errno::einval);
    if (c.src_va == 0) {
      if (c.dva == 0) co_return bail(Errno::einval);
      // Pre-mapped window (kDoomMapBuffer): reference it directly.
      cmds.push_back(hw::DoomCommand{static_cast<hw::DoomOp>(c.op), f.ctxt,
                                     c.dva, c.bytes, 0});
      pinned_upto = i + 1;
      continue;
    }
    const mem::Vma* vma = as.find_vma(c.src_va);
    if (vma == nullptr || !vma->pinned) co_return bail(Errno::efault);
    mem::ExtentCache::Outcome outcome;
    auto extents = cache.lookup(as, c.src_va, c.bytes, max_pte, &outcome);
    if (!extents.ok()) co_return bail(extents.error());
    (void)cache.pin(c.src_va, c.bytes, max_pte);
    pinned_upto = i + 1;
    note_cache_outcome(outcome);
    if (outcome == mem::ExtentCache::Outcome::hit)
      ++cached_ranges;
    else
      walked_pages += mem::page_ceil(c.bytes, mem::kPage4K) / mem::kPage4K;

    std::uint64_t span = 0;
    for (const auto& e : *extents) span += e.len;
    const std::uint64_t window = ctx_dva_next_.read(ctx_bytes.data());
    ctx_dva_next_.write(ctx_bytes.data(),
                        window + mem::page_ceil(span, mem::kPage4K));
    std::uint64_t cursor = window;
    bool pte_failed = false;
    Errno pte_err = Errno::efault;
    // The span is only valid until the next lookup — consume it right away.
    for (const auto& e : *extents) {
      Status s = device.map_pte(f.ctxt, cursor, e.pa, e.len);
      if (!s.ok()) {
        pte_failed = true;
        pte_err = s.error();
        break;
      }
      cursor += e.len;
      ++extents_programmed_;
      ++transient_entries;
    }
    transient.emplace_back(window, cursor - window);
    if (pte_failed) co_return bail(pte_err);
    // The extents are byte-exact for [src_va, src_va+bytes), so the window
    // base is the command's dva — no intra-page offset to carry.
    cmds.push_back(hw::DoomCommand{static_cast<hw::DoomOp>(c.op), f.ctxt,
                                   window, c.bytes, 0});
  }
  if (cmds.empty()) co_return bail(Errno::einval);

  co_await mck_.engine().delay(
      static_cast<Dur>(walked_pages) * cfg.ptw_per_page +
      static_cast<Dur>(cached_ranges) * cfg.pico_extent_cache_hit +
      static_cast<Dur>(transient_entries) * cfg.doom_pte_program +
      cfg.doom_submit_base + static_cast<Dur>(cmds.size()) * cfg.doom_cmd_build);

  // Ring-slot reservation under the driver's own submission spin-lock — the
  // §3.3 cross-kernel lock, literally shared with the Linux path. Bounded
  // backoff; if the ring stays full, give the lock back and take the Linux
  // ioctl (the proxy-side driver knows how to wait without starving the
  // other kernel).
  os::SharedSpinlock& lock = driver_.ring_lock();
  co_await lock.acquire();
  int attempt = 0;
  while (device.ring_free() < cmds.size() + 1) {
    if (attempt >= cfg.pico_ring_backoff_attempts) {
      lock.release();
      count_ring_full_fallback();
      unpin_all();
      unwind_ptes();
      cmd_arena_.recycle(std::move(cmds));
      co_return co_await driver_.ioctl(f, doom::kDoomSubmitBatch, &args);
    }
    Dur backoff = cfg.pico_ring_backoff_base * (Dur{1} << std::min(attempt, 20));
    if (cfg.pico_ring_backoff_cap > 0) backoff = std::min(backoff, cfg.pico_ring_backoff_cap);
    co_await mck_.engine().delay(backoff);
    ++attempt;
  }

  // Completion metadata in the *LWK* heap, owned by this rank's core.
  auto meta = kmalloc_meta(192, lwk_cpu_for(proc));
  if (!meta.ok()) {
    lock.release();
    co_return bail(Errno::enomem);
  }

  // Cross-kernel shared state: the same fence-sequence and submit counters
  // the Linux driver maintains, through extracted offsets.
  auto dev_bytes = driver_.linux_kernel().kheap().data(driver_.devdata_image());
  const std::uint64_t fence = dev_fence_seq_.read(dev_bytes.data()) + 1;
  dev_fence_seq_.write(dev_bytes.data(), fence);
  dev_cmds_submitted_.write(dev_bytes.data(),
                            dev_cmds_submitted_.read(dev_bytes.data()) + cmds.size());
  ctx_pt_used_.write(ctx_bytes.data(),
                     ctx_pt_used_.read(ctx_bytes.data()) + transient_entries);
  ctx_batches_submitted_.write(ctx_bytes.data(),
                               ctx_batches_submitted_.read(ctx_bytes.data()) + 1);

  for (const hw::DoomCommand& c : cmds) {
    Status s = device.push(c);
    assert(s.ok());
    (void)s;
  }
  Status s = device.push(hw::DoomCommand{hw::DoomOp::fence, f.ctxt, 0, 0, fence});
  assert(s.ok());
  (void)s;
  co_await mck_.engine().delay(device.config().doorbell_cost);
  device.doorbell();
  lock.release();

  // The fence's cleanup callback (§3.3): duplicated LWK TEXT that runs on a
  // Linux IRQ CPU — it tears down this batch's transient PTEs, drops the
  // image's pt_used through the extracted offset, and routes the metadata
  // kfree through the remote-free queue.
  auto* self = this;
  os::McKernel* mck = &mck_;
  os::LinuxKernel* lnx = &driver_.linux_kernel();
  const mem::PhysAddr meta_addr = *meta;
  const mem::PhysAddr ctxdata_addr = driver_.ctx_image(f);
  const int hw_ctxt = f.ctxt;
  std::vector<os::KernelCallback> chain;
  chain.push_back(binding_.lwk_callback(
      [self, mck, lnx, meta_addr, ctxdata_addr, hw_ctxt,
       transient_moved = std::move(transient), transient_entries] {
        for (const auto& [dva, len] : transient_moved)
          (void)self->driver_.device().unmap_range(hw_ctxt, dva, len);
        auto bytes = lnx->kheap().data(ctxdata_addr);
        self->ctx_pt_used_.write(bytes.data(),
                                 self->ctx_pt_used_.read(bytes.data()) - transient_entries);
        Status st = mck->kheap().kfree(meta_addr, lnx->current_irq_cpu());
        assert(st.ok());
        (void)st;
      }));
  if (args.on_fence) chain.push_back(binding_.lwk_callback(args.on_fence));
  driver_.register_completion(fence, std::move(chain));

  args.fence_seq = fence;
  const long submitted = static_cast<long>(cmds.size());
  cmd_arena_.recycle(std::move(cmds));
  unpin_all();
  co_return submitted;
}

}  // namespace pd::pico
