#include "src/hfi/driver.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/log.hpp"

namespace pd::hfi {

using namespace pd::time_literals;

HfiDriver::HfiDriver(os::LinuxKernel& linux_kernel, hw::HfiDevice& device,
                     const std::string& version)
    : linux_(linux_kernel),
      device_(device),
      layouts_(*DriverLayouts::for_version(version)),
      module_(layouts_.ship_module()) {
  // Per-engine state images: the fields the fast path will interrogate.
  const StructDef* engine_def = layouts_.structure("sdma_engine");
  const StructDef* state_def = layouts_.structure("sdma_state");
  assert(engine_def != nullptr && state_def != nullptr);
  for (int i = 0; i < device_.num_engines(); ++i) {
    auto addr = linux_.kheap().kmalloc(engine_def->byte_size, alloc_cpu());
    assert(addr.ok());
    StructImage eng = image(*addr, "sdma_engine");
    eng.write<std::uint32_t>("this_idx", static_cast<std::uint32_t>(i));
    eng.write<std::uint32_t>("descq_cnt", device_.config().sdma.ring_slots);
    // Embedded sdma_state: hardware is brought to s99_running at init.
    const FieldDef* state_field = engine_def->field("state");
    auto bytes = linux_.kheap().data(*addr);
    StructImage state(bytes.subspan(state_field->offset, state_def->byte_size), state_def);
    state.write<std::uint32_t>("current_state",
                               static_cast<std::uint32_t>(SdmaStates::s99_running));
    engine_images_.push_back(*addr);
    engine_locks_.push_back(std::make_unique<os::SharedSpinlock>(
        linux_.engine(), linux_.spinlock_abi(), linux_.config().pico_lock_acquire));
  }
  // Static partitioning of the RcvArray across the contexts a node can host.
  const std::uint32_t max_ctxts = 64;
  expected_entries_per_ctxt_ = device_.rcv_array().capacity() / max_ctxts;
  linux_.register_device(*this);
}

HfiDriver::~HfiDriver() = default;

int HfiDriver::alloc_cpu() const { return 0; }  // first Linux-owned CPU

StructImage HfiDriver::image(mem::PhysAddr addr, const char* struct_name) const {
  return StructImage(linux_.kheap().data(addr), layouts_.structure(struct_name));
}

mem::PhysAddr HfiDriver::sdma_engine_image(int engine_id) const {
  return engine_images_.at(static_cast<std::size_t>(engine_id));
}

mem::PhysAddr HfiDriver::filedata_image(const os::OpenFile& f) const {
  return fctx(f)->filedata;
}

mem::PhysAddr HfiDriver::ctxtdata_image(const os::OpenFile& f) const {
  return fctx(f)->ctxtdata;
}

mem::VirtAddr HfiDriver::completion_callback_text() const {
  return linux_.layout().image.start + 0x4'2000;  // somewhere in Linux TEXT
}

sim::Task<Result<long>> HfiDriver::open(os::OpenFile& f) {
  co_await linux_.engine().delay(linux_.config().driver_open_cost);
  if (f.ctxt < 0) co_return Errno::einval;
  if (device_.context_open(f.ctxt)) co_return Errno::ebusy;

  auto filedata = linux_.kheap().kmalloc(layouts_.structure("hfi1_filedata")->byte_size,
                                         alloc_cpu());
  auto ctxtdata = linux_.kheap().kmalloc(layouts_.structure("hfi1_ctxtdata")->byte_size,
                                         alloc_cpu());
  if (!filedata.ok() || !ctxtdata.ok()) co_return Errno::enomem;

  auto* ctx = new FileCtx;
  ctx->filedata = *filedata;
  ctx->ctxtdata = *ctxtdata;
  ctx->hw_ctxt = f.ctxt;
  f.driver_ctx = ctx;
  f.driver_ctx_dtor = [](void* p) { delete static_cast<FileCtx*>(p); };

  StructImage fd_img = image(*filedata, "hfi1_filedata");
  fd_img.write<std::uint32_t>("ctxt", static_cast<std::uint32_t>(f.ctxt));
  fd_img.write<std::uint16_t>("subctxt", 0);
  fd_img.write<std::uint32_t>("sdma_engine_idx",
                              static_cast<std::uint32_t>(device_.pick_engine()));

  StructImage cd_img = image(*ctxtdata, "hfi1_ctxtdata");
  cd_img.write<std::uint32_t>("ctxt", static_cast<std::uint32_t>(f.ctxt));
  cd_img.write<std::uint32_t>("expected_base",
                              static_cast<std::uint32_t>(f.ctxt) * expected_entries_per_ctxt_);
  cd_img.write<std::uint32_t>("expected_count", expected_entries_per_ctxt_);

  device_.open_context(f.ctxt);
  co_return 0L;
}

sim::Task<Result<long>> HfiDriver::writev(os::OpenFile& f, std::span<const os::IoVec> iov) {
  ++writev_calls_;
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr || iov.size() < 2) co_return Errno::einval;
  auto* hdr = reinterpret_cast<SdmaReqHeader*>(iov[0].base);
  if (hdr == nullptr) co_return Errno::efault;

  const os::Config& cfg = linux_.config();
  mem::AddressSpace& as = f.proc->as();

  // Pin user pages (get_user_pages) — pay per 4 KiB page.
  std::uint64_t total_bytes = 0;
  std::uint64_t total_pages = 0;
  std::vector<mem::PinnedPages> pins;
  for (std::size_t i = 1; i < iov.size(); ++i) {
    total_bytes += iov[i].len;
    total_pages += mem::page_ceil(iov[i].base + iov[i].len, mem::kPage4K) / mem::kPage4K -
                   mem::page_floor(iov[i].base, mem::kPage4K) / mem::kPage4K;
  }
  co_await linux_.engine().delay(static_cast<Dur>(total_pages) * cfg.gup_per_page);
  for (std::size_t i = 1; i < iov.size(); ++i) {
    auto pinned = as.get_user_pages(iov[i].base, iov[i].len);
    if (!pinned.ok()) {
      for (auto& p : pins) as.put_user_pages(p);
      co_return pinned.error();
    }
    pins.push_back(std::move(*pinned));
  }

  // Build descriptors: one per page, never beyond PAGE_SIZE (§3.4 — the
  // Linux driver does not coalesce across page boundaries and is blind to
  // large pages).
  std::vector<hw::SdmaDescriptor> descs;
  for (std::size_t i = 1; i < iov.size(); ++i) {
    std::uint64_t remaining = iov[i].len;
    std::uint64_t off_in_first = iov[i].base & (mem::kPage4K - 1);
    for (const mem::PhysAddr frame : pins[i - 1].frames) {
      if (remaining == 0) break;
      const std::uint64_t take =
          std::min<std::uint64_t>(remaining, mem::kPage4K - off_in_first);
      descs.push_back(hw::SdmaDescriptor{frame + off_in_first,
                                         static_cast<std::uint32_t>(take)});
      off_in_first = 0;
      remaining -= take;
    }
  }
  if (descs.empty()) {
    for (auto& p : pins) as.put_user_pages(p);
    co_return Errno::einval;
  }

  // Reserve the file's SDMA engine and submit; wait out ring backpressure.
  StructImage fd_img = image(ctx->filedata, "hfi1_filedata");
  const int engine_id = static_cast<int>(fd_img.read<std::uint32_t>("sdma_engine_idx"));
  co_await linux_.engine().delay(cfg.sdma_submit_base +
                                 static_cast<Dur>(descs.size()) * cfg.sdma_submit_per_desc);

  // Completion metadata lives in the Linux heap on this (native/proxy)
  // path; the IRQ-side kfree is local to Linux.
  auto meta = linux_.kheap().kmalloc(192, alloc_cpu());
  if (!meta.ok()) {
    for (auto& p : pins) as.put_user_pages(p);
    co_return Errno::enomem;
  }

  // Submission critical section: the per-engine spin-lock both kernels
  // share (the fast path takes the exact same lock).
  os::SharedSpinlock& lock = engine_lock(engine_id);
  co_await lock.acquire();
  hw::SdmaEngine& engine = device_.engine(engine_id);
  while (engine.ring_free() < descs.size())
    co_await linux_.engine().delay(500_ns);  // ring-full backoff

  StructImage eng_img = image(engine_images_[static_cast<std::size_t>(engine_id)],
                              "sdma_engine");
  eng_img.write<std::uint64_t>("descq_submitted",
                               eng_img.read<std::uint64_t>("descq_submitted") + descs.size());

  hw::SdmaRequest req;
  req.descriptors = std::move(descs);
  req.header = hdr->wire;
  req.header.payload_bytes = total_bytes;
  // The hardware IRQ fires on a Linux service CPU; the driver's cleanup
  // callback (unpin + kfree) lives in Linux TEXT, the user notification is
  // the completion-queue update PSM polls.
  auto user_done = hdr->on_complete;
  auto meta_addr = *meta;
  auto* self = this;
  mem::AddressSpace* asp = &as;
  std::vector<mem::PinnedPages> pins_moved = std::move(pins);
  req.on_complete = [self, asp, pins_moved, meta_addr, user_done]() {
    std::vector<os::KernelCallback> chain;
    chain.push_back(os::KernelCallback{
        self->completion_callback_text(), [self, asp, pins_moved, meta_addr] {
          for (const auto& p : pins_moved) asp->put_user_pages(p);
          (void)self->linux_.kheap().kfree(meta_addr, self->alloc_cpu());
        }});
    if (user_done)
      chain.push_back(os::KernelCallback{self->completion_callback_text(), user_done});
    self->linux_.raise_irq(std::move(chain));
  };

  ++sdma_requests_;
  Status s = engine.submit(std::move(req));
  assert(s.ok());
  (void)s;
  lock.release();
  co_return static_cast<long>(total_bytes);
}

sim::Task<Result<long>> HfiDriver::ioctl(os::OpenFile& f, unsigned long cmd, void* arg) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) co_return Errno::einval;
  const os::Config& cfg = linux_.config();

  switch (cmd) {
    case kTidUpdate: {
      auto* args = static_cast<TidUpdateArgs*>(arg);
      if (args == nullptr || args->length == 0) co_return Errno::einval;
      mem::AddressSpace& as = f.proc->as();

      const std::uint64_t pages =
          mem::page_ceil(args->vaddr + args->length, mem::kPage4K) / mem::kPage4K -
          mem::page_floor(args->vaddr, mem::kPage4K) / mem::kPage4K;
      co_await linux_.engine().delay(static_cast<Dur>(pages) * cfg.gup_per_page);
      auto pinned = as.get_user_pages(args->vaddr, args->length);
      if (!pinned.ok()) co_return pinned.error();

      // Quota check against the context's RcvArray share. With
      // `hfi_tid_quota_evict` the context reclaims its *own* LRU entries to
      // make room (registration-cache semantics); it can never touch a
      // neighbour context's share, and a request that would not fit even
      // into an empty share still fails outright.
      StructImage cd = image(ctx->ctxtdata, "hfi1_ctxtdata");
      StructImage fd = image(ctx->filedata, "hfi1_filedata");
      const std::uint64_t quota = cd.read<std::uint32_t>("expected_count");
      if (pages > quota) {
        as.put_user_pages(*pinned);
        co_return Errno::enospc;
      }
      while (fd.read<std::uint64_t>("tid_used") + pages > quota) {
        if (!cfg.hfi_tid_quota_evict || ctx->tid_order.empty()) {
          as.put_user_pages(*pinned);
          co_return Errno::enospc;
        }
        co_await linux_.engine().delay(cfg.tid_program_per_entry);
        auto freed = evict_lru_tid(f);
        if (!freed.ok()) {
          as.put_user_pages(*pinned);
          co_return Errno::enospc;
        }
      }

      // Linux path: one RcvArray entry per 4 KiB page (no contiguity or
      // large-page awareness — the same blindness as the SDMA path).
      co_await linux_.engine().delay(cfg.tid_program_base +
                                     static_cast<Dur>(pages) * cfg.tid_program_per_entry);
      for (const mem::PhysAddr frame : pinned->frames) {
        auto tid = device_.rcv_array().program(ctx->hw_ctxt, frame, mem::kPage4K);
        if (!tid.ok()) {
          // Roll back this call's entries; pins for them move back too.
          for (const std::uint32_t t : args->tids) {
            (void)device_.rcv_array().unprogram(ctx->hw_ctxt, t);
            ctx->tid_pins.erase(t);
            std::erase(ctx->tid_order, t);
          }
          as.put_user_pages(*pinned);
          args->tids.clear();
          co_return tid.error();
        }
        args->tids.push_back(*tid);
        // Ownership of this frame's pin transfers to the TID record; it is
        // released at TID_FREE (or close), not at ioctl return.
        mem::PinnedPages single;
        single.frames.push_back(frame);
        ctx->tid_pins[*tid] = std::move(single);
        ctx->tid_order.push_back(*tid);
        ++tid_programs_;
      }
      fd.write<std::uint64_t>("tid_used", fd.read<std::uint64_t>("tid_used") + pages);
      co_return static_cast<long>(args->tids.size());
    }

    case kTidFree: {
      auto* args = static_cast<TidFreeArgs*>(arg);
      if (args == nullptr) co_return Errno::einval;
      co_await linux_.engine().delay(cfg.tid_program_base +
                                     static_cast<Dur>(args->tids.size()) *
                                         cfg.tid_program_per_entry / 2);
      mem::AddressSpace& as = f.proc->as();
      StructImage fd = image(ctx->filedata, "hfi1_filedata");
      std::uint64_t released_pages = 0;
      for (const std::uint32_t tid : args->tids) {
        if (!device_.rcv_array().unprogram(ctx->hw_ctxt, tid).ok()) co_return Errno::einval;
        auto it = ctx->tid_pins.find(tid);
        if (it != ctx->tid_pins.end()) {
          released_pages += it->second.frames.size();
          as.put_user_pages(it->second);
          ctx->tid_pins.erase(it);
        }
        std::erase(ctx->tid_order, tid);
      }
      fd.write<std::uint64_t>("tid_used",
                              fd.read<std::uint64_t>("tid_used") - released_pages);
      co_return 0L;
    }

    case kTidInvalRead:
      co_await linux_.engine().delay(cfg.driver_poll_cost);
      co_return 0L;

    // Administrative commands: modeled as short driver work.
    case kCtxtInfo:
    case kUserInfo:
    case kPollType:
    case kAckEvent:
    case kSetPkey:
    case kGetVers:
      co_await linux_.engine().delay(from_us(1.0));
      co_return 0L;
    case kRecvCtrl:
    case kCtxtReset:
      co_await linux_.engine().delay(from_us(3.0));
      co_return 0L;

    default:
      co_return Errno::einval;
  }
}

sim::Task<Result<long>> HfiDriver::poll(os::OpenFile& f) {
  (void)f;
  co_await linux_.engine().delay(linux_.config().driver_poll_cost);
  co_return 1L;
}

sim::Task<Result<mem::PhysAddr>> HfiDriver::mmap(os::OpenFile& f, std::uint64_t len,
                                                 std::uint64_t offset) {
  (void)f;
  const auto& hw_cfg = device_.config();
  if (offset + len > hw_cfg.csr_size) co_return Errno::einval;
  co_await linux_.engine().delay(linux_.config().driver_mmap_cost);
  co_return hw_cfg.csr_base + offset;
}

sim::Task<Result<long>> HfiDriver::read(os::OpenFile& f, std::uint64_t len) {
  (void)f;
  co_await linux_.engine().delay(from_us(0.8));
  co_return static_cast<long>(len);
}

sim::Task<Result<long>> HfiDriver::lseek(os::OpenFile& f, long offset, int whence) {
  // The HFI driver uses lseek to select the event/status window that a
  // subsequent read() returns; the model charges the dispatch cost and
  // validates the whence constant.
  (void)f;
  if (whence < 0 || whence > 2 || offset < 0) co_return Errno::einval;
  co_await linux_.engine().delay(from_ns(400));
  co_return offset;
}

sim::Task<Result<long>> HfiDriver::close(os::OpenFile& f) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) co_return Errno::einval;
  co_await linux_.engine().delay(from_us(8.0));
  mem::AddressSpace& as = f.proc->as();
  for (auto& [tid, pins] : ctx->tid_pins) as.put_user_pages(pins);
  device_.close_context(ctx->hw_ctxt);
  (void)linux_.kheap().kfree(ctx->filedata, alloc_cpu());
  (void)linux_.kheap().kfree(ctx->ctxtdata, alloc_cpu());
  delete ctx;
  f.driver_ctx = nullptr;
  co_return 0L;
}

Status HfiDriver::account_tid_pin(os::OpenFile& f, std::uint32_t tid, mem::PinnedPages pins) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) return Errno::einval;
  ctx->tid_pins[tid] = std::move(pins);
  ctx->tid_order.push_back(tid);
  ++tid_programs_;
  return Status::success();
}

Result<mem::PinnedPages> HfiDriver::release_tid_pin(os::OpenFile& f, std::uint32_t tid) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) return Errno::einval;
  auto it = ctx->tid_pins.find(tid);
  if (it == ctx->tid_pins.end()) return Errno::enoent;
  mem::PinnedPages pins = std::move(it->second);
  ctx->tid_pins.erase(it);
  std::erase(ctx->tid_order, tid);
  return pins;
}

Result<std::uint64_t> HfiDriver::evict_lru_tid(os::OpenFile& f) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) return Errno::einval;
  if (ctx->tid_order.empty()) return Errno::enoent;
  const std::uint32_t tid = ctx->tid_order.front();
  ctx->tid_order.erase(ctx->tid_order.begin());
  (void)device_.rcv_array().unprogram(ctx->hw_ctxt, tid);
  std::uint64_t freed = 1;
  auto it = ctx->tid_pins.find(tid);
  if (it != ctx->tid_pins.end()) {
    if (!it->second.frames.empty()) {
      freed = it->second.frames.size();
      f.proc->as().put_user_pages(it->second);
    }
    ctx->tid_pins.erase(it);
  }
  StructImage fd = image(ctx->filedata, "hfi1_filedata");
  fd.write<std::uint64_t>("tid_used", fd.read<std::uint64_t>("tid_used") - freed);
  linux_.profiler().bump("hfi.tid.quota_evict");
  return freed;
}

}  // namespace pd::hfi
