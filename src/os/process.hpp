// A simulated OS process (one MPI rank): syscall surface + address space.
//
// The same Process type runs on either kernel; the syscall wrappers encode
// the paper's three execution paths per call:
//   * Linux process  — native trap, driver runs on the caller's core;
//   * McKernel       — device calls offloaded through IHK to a proxy on a
//                      Linux service CPU;
//   * McKernel + HFI — writev and TID ioctls take the registered PicoDriver
//                      fast path locally; everything else still offloads.
// Every call records its in-kernel time into the owning kernel's profiler
// (Figures 8/9 come straight from those counters).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/mem/address_space.hpp"
#include "src/os/mckernel.hpp"

namespace pd::os {

class Process {
 public:
  /// Linux-native process.
  Process(LinuxKernel& kernel, mem::PhysMap& phys, int node, int ctxt, std::uint64_t seed);
  /// McKernel process (its proxy lives in `kernel.ihk().linux_kernel()`).
  Process(McKernel& kernel, mem::PhysMap& phys, int node, int ctxt, std::uint64_t seed);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  bool on_lwk() const { return mck_ != nullptr; }
  Kernel& kernel() { return on_lwk() ? static_cast<Kernel&>(*mck_) : *linux_; }
  LinuxKernel& linux_kernel() { return on_lwk() ? mck_->ihk().linux_kernel() : *linux_; }
  McKernel* mckernel() { return mck_; }

  mem::AddressSpace& as() { return *as_; }
  int node() const { return node_; }
  int ctxt() const { return ctxt_; }
  Rng& rng() { return rng_; }

  /// Tenant identity every offload this process submits is tagged with.
  /// Defaults to job 0 (single tenant); a multi-job harness assigns each
  /// process its job before generating traffic.
  ikc::JobId job() const { return job_; }
  void set_job(ikc::JobId job) { job_ = job; }

  /// --- syscalls -----------------------------------------------------------
  sim::Task<Result<int>> open(const std::string& dev_name);
  sim::Task<Result<long>> writev(int fd, std::vector<IoVec> iov);
  /// Allocation-free variant: the caller owns the iovec storage and must
  /// keep it alive until the call returns (PSM's fixed header+payload pair).
  sim::Task<Result<long>> writev(int fd, std::span<const IoVec> iov);
  sim::Task<Result<long>> ioctl(int fd, unsigned long cmd, void* arg);
  sim::Task<Result<long>> poll_fd(int fd);
  sim::Task<Result<long>> read_fd(int fd, std::uint64_t len);
  sim::Task<Result<long>> lseek(int fd, long offset, int whence);
  sim::Task<Result<mem::VirtAddr>> mmap_dev(int fd, std::uint64_t len, std::uint64_t offset);
  sim::Task<Result<mem::VirtAddr>> mmap_anon(std::uint64_t len);
  sim::Task<Result<long>> munmap(mem::VirtAddr addr, std::uint64_t len);
  sim::Task<Result<long>> close_fd(int fd);
  sim::Task<> nanosleep(Dur d);

  /// Application compute (subject to the kernel's OS-noise model).
  sim::Task<> compute(Dur work);

  OpenFile* file(int fd);

 private:
  sim::Engine& engine() { return kernel().engine(); }
  const Config& cfg() const { return linux_ != nullptr ? linux_->config() : mck_->config(); }
  void account(const char* name, Time start);

  LinuxKernel* linux_ = nullptr;
  McKernel* mck_ = nullptr;
  std::unique_ptr<mem::AddressSpace> as_;
  int node_;
  int ctxt_;
  ikc::JobId job_ = 0;
  Rng rng_;
  std::map<int, OpenFile> files_;
  int next_fd_ = 3;
};

}  // namespace pd::os
