// Fast≡slow equivalence property for the pd-doom device class (ISSUE 9).
//
// The DoomPicoDriver changes *how* a batch reaches the ring (extent-sized
// PTEs from the LWK extent cache, no gup, the shared submission lock taken
// from McKernel) but must not change *what* the device executes: the same
// seeded batch script driven through a Linux-native process and through an
// LWK process on the fast path must produce identical per-batch return
// values and fence sequences, identical completion counts, and identical
// device-visible side effects (commands/fences retired, DMA bytes moved,
// final retire register, the shared cmds_submitted image counter, and the
// persistent page-table population).
//
// Timing and PTE-program counts are explicitly NOT compared: fewer, larger
// PTEs per batch is the fast path's entire §3.4 point — asserted separately
// as fast-strictly-fewer.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L doom` (also `property`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/doom/driver.hpp"
#include "src/pico/doom_picodriver.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd {
namespace {

using namespace pd::time_literals;

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0xD003D011ull;
}

constexpr int kBatches = 10;
constexpr std::uint64_t kBufSizes[] = {64_KiB, 256_KiB, 16_KiB, 128_KiB};
constexpr std::uint64_t kWindowOff = 192;  // deliberately page-unaligned
constexpr std::uint64_t kWindowLen = 32_KiB;

/// One command, abstract: buffer index + offset for transient sources, or
/// an offset into the persistent window. Offsets are 64-byte aligned but
/// deliberately NOT page aligned — the dva a command lands on must carry
/// the sub-page offset on both paths.
struct CmdSpec {
  bool premapped = false;
  std::uint32_t op = 0;
  int buf = 0;
  std::uint64_t off = 0;
  std::uint64_t bytes = 0;
};

using BatchSpec = std::vector<CmdSpec>;

std::vector<BatchSpec> make_script(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchSpec> script;
  for (int b = 0; b < kBatches; ++b) {
    BatchSpec batch;
    const int ncmds = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < ncmds; ++i) {
      CmdSpec c;
      c.op = rng.next_below(2) == 0 ? 0u : 1u;  // copy_rect or fill_rect
      if (rng.next_below(5) == 0) {
        c.premapped = true;
        c.off = rng.next_below(8_KiB) & ~std::uint64_t{63};
        c.bytes = 64 + rng.next_below(kWindowLen - c.off - 64);
      } else {
        c.buf = static_cast<int>(rng.next_below(4));
        const std::uint64_t size = kBufSizes[c.buf];
        c.off = rng.next_below(size / 2) & ~std::uint64_t{63};
        c.bytes = 64 + rng.next_below(std::min<std::uint64_t>(size - c.off - 64, 96_KiB));
      }
      batch.push_back(c);
    }
    script.push_back(std::move(batch));
  }
  return script;
}

/// Everything both paths must agree on.
struct RunOut {
  std::vector<long> returns;
  std::vector<std::uint64_t> fences;
  int completions = 0;
  std::uint64_t commands_retired = 0;
  std::uint64_t fences_retired = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t last_retired_seq = 0;
  std::uint64_t cmds_submitted_img = 0;  // shared doom_devdata field
  std::uint32_t pt_used_end = 0;         // persistent window only
  // Fast-path-only diagnostics (0 on the Linux run).
  std::uint64_t pte_programs_slow = 0;
  std::uint64_t extents_fast = 0;
};

struct Rig {
  sim::Engine engine;
  os::Config cfg;
  mem::PhysMap phys = mem::PhysMap::knl(1_GiB, 4_GiB, 2);
  std::unique_ptr<hw::DoomDevice> device;
  std::unique_ptr<os::LinuxKernel> linux_kernel;
  std::unique_ptr<os::Ihk> ihk;
  std::unique_ptr<os::McKernel> mck;
  std::unique_ptr<doom::DoomDriver> driver;
  std::unique_ptr<pico::DoomPicoDriver> pico;

  explicit Rig(bool fast) {
    device = std::make_unique<hw::DoomDevice>(engine, 0);
    linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
    driver = std::make_unique<doom::DoomDriver>(*linux_kernel, *device, "1.1-d2");
    if (fast) {
      ihk = std::make_unique<os::Ihk>(engine, cfg, *linux_kernel);
      mck = std::make_unique<os::McKernel>(engine, cfg, *ihk, /*unified_layout=*/true);
      auto p = pico::DoomPicoDriver::create(*mck, *driver);
      EXPECT_TRUE(p.ok());
      if (p.ok()) pico = std::move(*p);
    }
  }
};

RunOut run_script(const std::vector<BatchSpec>& script, bool fast) {
  Rig rig(fast);
  RunOut out;
  auto proc = fast ? std::make_unique<os::Process>(*rig.mck, rig.phys, 0, 0, 42u)
                   : std::make_unique<os::Process>(*rig.linux_kernel, rig.phys, 0, 0, 42u);
  sim::spawn(rig.engine,
             [](Rig& r, os::Process& p, const std::vector<BatchSpec>& batches,
                RunOut& o) -> sim::Task<> {
    auto fd = co_await p.open(doom::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomCreateCtx, nullptr)).ok());

    std::vector<mem::VirtAddr> bufs;
    for (const std::uint64_t size : kBufSizes) {
      auto buf = co_await p.mmap_anon(size);
      CO_ASSERT_TRUE(buf.ok());
      bufs.push_back(*buf);
    }
    doom::DoomMapBufferArgs window;
    window.va = bufs[3] + kWindowOff;
    window.len = kWindowLen;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomMapBuffer, &window)).ok());

    std::uint64_t last_fence = 0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      doom::DoomSubmitArgs args;
      for (const CmdSpec& c : batches[b]) {
        doom::DoomUserCmd u;
        u.op = c.op;
        u.bytes = c.bytes;
        if (c.premapped) {
          u.src_va = 0;
          u.dva = window.dva + c.off;
        } else {
          u.src_va = bufs[static_cast<std::size_t>(c.buf)] + c.off;
        }
        args.cmds.push_back(u);
      }
      args.on_fence = [&o] { ++o.completions; };
      auto n = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args);
      CO_ASSERT_TRUE(n.ok());
      o.returns.push_back(*n);
      o.fences.push_back(args.fence_seq);
      last_fence = args.fence_seq;
      if (b % 3 == 2) {
        doom::DoomWaitFenceArgs w;
        w.seq = last_fence;
        CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomWaitFence, &w)).ok());
      }
    }
    doom::DoomWaitFenceArgs w;
    w.seq = last_fence;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, doom::kDoomWaitFence, &w)).ok());
  }(rig, *proc, script, out));
  rig.engine.run();

  out.commands_retired = rig.device->commands_retired();
  out.fences_retired = rig.device->fences_retired();
  out.dma_bytes = rig.device->dma_bytes();
  out.last_retired_seq = rig.device->last_retired_seq();
  out.pt_used_end = rig.device->pt_entries_used(0);
  {
    auto bytes = rig.linux_kernel->kheap().data(rig.driver->devdata_image());
    doom::StructImage img(bytes, rig.driver->layouts().structure("doom_devdata"));
    out.cmds_submitted_img = img.read<std::uint64_t>("cmds_submitted");
  }
  out.pte_programs_slow = rig.driver->pte_programs();
  if (fast) {
    out.extents_fast = rig.pico->extents_programmed();
    EXPECT_EQ(rig.pico->fast_submits(), static_cast<std::uint64_t>(kBatches))
        << "every batch must ride the fast path";
    EXPECT_EQ(rig.pico->fallbacks(), 0u);
    EXPECT_EQ(rig.driver->submit_batches(), 0u);
  }
  return out;
}

TEST(DoomEquivalence, FastAndSlowPathsProduceIdenticalDeviceResults) {
  const std::uint64_t base = harness_seed();
  for (int round = 0; round < 2; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round);
    SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
    const auto script = make_script(seed);

    const RunOut slow = run_script(script, /*fast=*/false);
    const RunOut fast = run_script(script, /*fast=*/true);

    EXPECT_EQ(fast.returns, slow.returns);
    EXPECT_EQ(fast.fences, slow.fences);
    EXPECT_EQ(fast.completions, slow.completions);
    EXPECT_EQ(fast.completions, kBatches);
    EXPECT_EQ(fast.commands_retired, slow.commands_retired);
    EXPECT_EQ(fast.fences_retired, slow.fences_retired);
    EXPECT_EQ(fast.dma_bytes, slow.dma_bytes);
    EXPECT_EQ(fast.last_retired_seq, slow.last_retired_seq);
    EXPECT_EQ(fast.cmds_submitted_img, slow.cmds_submitted_img);
    EXPECT_EQ(fast.pt_used_end, slow.pt_used_end)
        << "only the persistent window may remain mapped on either path";
    // §3.4: extent-sized PTEs must beat per-page programming. The slow run's
    // count includes the persistent window, which both paths program
    // per-page — exclude it for a fair strict inequality.
    EXPECT_LT(fast.extents_fast, slow.pte_programs_slow - fast.pte_programs_slow)
        << "the fast path must program strictly fewer transient PTEs";
  }
}

}  // namespace
}  // namespace pd
