// Small statistics helpers used by the profilers and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pd {

/// Streaming accumulator: count / sum / min / max / mean / variance
/// (Welford). Cheap enough to keep one per syscall number per CPU.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double m2_ = 0.0;
  double mean_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with percentile queries; used for latency distributions
/// in the micro-benches. Unbounded by default (every sample retained, exact
/// percentiles). An explicit capacity turns the container into a uniform
/// reservoir (Vitter's algorithm R, deterministically seeded): count, mean
/// and max stay exact while percentiles are estimated over at most `cap`
/// retained samples — O(cap) memory no matter how long the run, which is
/// what per-job queueing needs at the 4096-job overload ladder.
class Samples {
 public:
  Samples() = default;
  explicit Samples(std::size_t cap) : cap_(cap) {}
  void add(double x);
  /// Pool another node's samples (cluster-wide percentile summaries).
  /// Count/mean/max merge exactly; the retained set is appended, or
  /// reservoir-inserted when this side is bounded.
  void merge(const Samples& other);
  std::size_t count() const { return seen_; }
  double mean() const { return seen_ ? sum_ / static_cast<double>(seen_) : 0.0; }
  /// Exact maximum over everything added — survives reservoir eviction.
  double max() const { return seen_ ? max_ : 0.0; }
  /// p in [0,100]; nearest-rank on the sorted retained set.
  double percentile(double p) const;

 private:
  std::vector<double> xs_;  // everything (cap_ == 0) or the reservoir
  std::size_t cap_ = 0;     // 0 = retain every sample
  std::size_t seen_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;  // SplitMix64 state
};

/// Fixed-width text table writer for bench output (paper-style rows).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style %.2f formatting helper used by the bench printers.
std::string format_double(double v, int decimals);

}  // namespace pd
