// Kernel models.
//
// `Kernel` is the shared skeleton: a name, a VA layout, a syscall profiler
// and the compute-time noise model. `LinuxKernel` adds what the paper's
// architecture actually leans on: the VFS device registry, the pool of
// service CPUs that field offloaded syscalls *and* device IRQs, vmap_area
// reservations (how McKernel TEXT becomes visible, §3.1), and the
// callback-invocation check that fails when a function's text is not
// mapped on the Linux side.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/mem/kheap.hpp"
#include "src/mem/va_layout.hpp"
#include "src/os/config.hpp"
#include "src/os/noise.hpp"
#include "src/os/profiler.hpp"
#include "src/os/vfs.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace pd::os {

/// A kernel function referenced across kernel boundaries: the simulated
/// text address locates it in a VA layout, `fn` is its behaviour.
struct KernelCallback {
  mem::VirtAddr text = 0;
  std::function<void()> fn;
};

class Kernel {
 public:
  Kernel(sim::Engine& engine, const Config& cfg, std::string name, mem::KernelLayout layout,
         NoiseProfile noise_profile, std::uint64_t noise_stream_seed);
  virtual ~Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const std::string& name() const { return name_; }
  const mem::KernelLayout& layout() const { return layout_; }
  sim::Engine& engine() { return engine_; }
  const Config& config() const { return cfg_; }
  SyscallProfiler& profiler() { return profiler_; }
  const SyscallProfiler& profiler() const { return profiler_; }

  /// Application compute of `work` on an app core of this kernel; OS noise
  /// (steady duty, daemon ticks, IRQ bursts, correlated stalls) inflates it
  /// per the kernel's noise profile, and the injected time is accounted in
  /// the profiler's "os.noise.*" counters (counters only — noise must not
  /// pollute the timed syscall rows that feed Figures 8/9).
  sim::Task<> compute(Dur work, Rng& rng);

  /// Deterministic inflation used by tests/benches to reason about noise.
  /// Anchored at the engine's current simulated time (the correlated-stall
  /// schedule is a function of absolute time).
  Dur noisy_duration(Dur work, Rng& rng) const;

  /// The kernel's noise injector (profile + correlated epoch schedule).
  const NoiseModel& noise() const { return noise_; }

 protected:
  sim::Engine& engine_;
  const Config& cfg_;

 private:
  std::string name_;
  mem::KernelLayout layout_;
  SyscallProfiler profiler_;
  NoiseModel noise_;
};

class LinuxKernel : public Kernel {
 public:
  /// `node` selects this instance's correlated-stall stream (one schedule
  /// per node, independent across nodes); single-node tests can omit it.
  LinuxKernel(sim::Engine& engine, const Config& cfg, int node = 0);

  /// --- VFS --------------------------------------------------------------
  void register_device(CharDevice& dev);
  CharDevice* device(const std::string& name);

  /// --- service CPUs -------------------------------------------------------
  /// The `linux_service_cpus` cores: offloaded syscalls and IRQ bottom
  /// halves all contend here (the paper's 4-CPUs-vs-64-ranks squeeze).
  sim::Resource& service_cpus() { return *service_cpus_; }

  /// Service CPUs currently owned (boot `linux_service_cpus`, moved by the
  /// elastic PartitionController). Always the prefix [0, count).
  int service_cpu_count() const { return service_cpu_count_; }
  /// Adopt `cpu` into the service pool at runtime (a core the LWK handed
  /// back): the Resource gains a unit, the Linux kheap adopts the core, and
  /// IRQ rotation covers it. `cpu` must extend the prefix (== count).
  Status adopt_service_cpu(int cpu);
  /// Yield `cpu` from the service pool to the LWK: the kheap re-homes its
  /// blocks and drains its remote-free queue, the Resource retires a unit
  /// (lazily if currently held). `cpu` must be the top of the prefix
  /// (== count-1); the last service CPU cannot leave.
  Status yield_service_cpu(int cpu);

  /// Raise a device IRQ: a service CPU runs the handler, then the chain of
  /// completion callbacks — each checked for text visibility.
  void raise_irq(std::vector<KernelCallback> callbacks);

  /// The service CPU executing the current IRQ's callbacks (IRQs rotate
  /// across the service pool). Completion-side kfree() passes this so the
  /// LWK heap learns the *real* source socket of a foreign free instead of
  /// a hard-coded representative CPU.
  int current_irq_cpu() const { return current_irq_cpu_; }

  /// --- cross-kernel text mapping (§3.1) -----------------------------------
  /// Reserve a vmap_area so another kernel's image becomes visible here.
  Status reserve_vmap_area(const mem::VaRange& range);

  /// Can code at `text` be called from this kernel?
  bool text_visible(mem::VirtAddr text) const;

  /// Invoke a callback with the §3.1 visibility check. EFAULT (and a
  /// counter bump) when the callback's text is not mapped on Linux.
  Status invoke(const KernelCallback& cb);

  std::uint64_t callback_faults() const { return callback_faults_; }
  std::uint64_t irqs_handled() const { return irqs_handled_; }

  /// The lock ABI identifier used for the §3.3 compatibility check.
  std::string spinlock_abi() const { return "ticket-spinlock-x86_64-v2"; }

  mem::KernelHeap& kheap() { return *kheap_; }

 private:
  sim::Task<> irq_task(std::vector<KernelCallback> callbacks);

  std::map<std::string, CharDevice*> devices_;
  std::unique_ptr<sim::Resource> service_cpus_;
  std::vector<mem::VaRange> vmap_reservations_;
  std::unique_ptr<mem::KernelHeap> kheap_;
  std::uint64_t callback_faults_ = 0;
  std::uint64_t irqs_handled_ = 0;
  int current_irq_cpu_ = 0;
  int next_irq_cpu_ = 0;
  int service_cpu_count_ = 0;
};

}  // namespace pd::os
