// Translation/extent cache for the LWK fast path (registration cache).
//
// The PicoDriver fast paths walk page tables instead of get_user_pages()
// (§3.4) — cheap, but still O(pages) per call. HPC middleware (PSM2's TID
// cache, libfabric memory-registration caches) amortizes exactly this:
// repeated sends/TID registrations of the same pinned buffer should pay the
// walk once. ExtentCache memoizes `physical_extents` results per
// (va, len, max_extent) key and validates entries against the address
// space's map generation, which is bumped on every munmap — so a stale
// entry can never hand out frames that were returned to the allocator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/address_space.hpp"

namespace pd::mem {

class ExtentCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;          // key never seen (cold)
    std::uint64_t invalidations = 0;   // key seen, but map generation moved
  };

  enum class Outcome { hit, miss, invalidated };

  explicit ExtentCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Resolve [va, va+len) against `as`. On a hit the cached runs are
  /// returned without touching the page table; on a miss (or when the
  /// address space unmapped anything since the entry was filled) the walk
  /// re-runs into the entry's storage, reusing its capacity. The returned
  /// span is valid until the next lookup() on this cache.
  Result<std::span<const PhysExtent>> lookup(const AddressSpace& as, VirtAddr va,
                                             std::uint64_t len, std::uint64_t max_extent,
                                             Outcome* outcome = nullptr);

  const Stats& stats() const { return stats_; }
  std::size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    VirtAddr va = 0;
    std::uint64_t len = 0;
    std::uint64_t max_extent = 0;
    std::uint64_t generation = 0;
    std::uint64_t last_used = 0;
    std::vector<PhysExtent> extents;
  };

  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;  // few entries; linear scan beats hashing
  Stats stats_;
};

}  // namespace pd::mem
