// IKC transport: the cross-kernel system-call delegation channel as an
// explicit subsystem (paper §2.1; MultiK's "the inter-kernel channel is an
// orchestrated component, not an ad-hoc call").
//
// Two transports live behind `Ihk::offload`:
//
//   direct — the legacy path: every offload is its own proxy wakeup on the
//            shared Linux service-CPU pool, with load-dependent wakeup,
//            per-waiter scheduler thrash and the proxy-run service
//            multiplier. This is the paper's measured McKernel behaviour
//            and stays the calibrated default.
//   ring   — per-LWK-CPU request rings in simulated shared memory
//            (RingBuffer slots guarded by the §3.3 cross-kernel spin-lock),
//            drained by dedicated Linux-side service loops pinned to the
//            `linux_service_cpus`. Loops dequeue in batches, amortizing the
//            schedule-in cost, and wake through a doorbell/poll hybrid.
//            Each channel carries two priority classes so fast-path control
//            calls (TID-registration ioctls) are not stuck behind bulk I/O.
//
// Ring mode v2 (§8.4) adds three mechanisms on top of the PR-4 transport:
//
//   reply rings — completions return through a per-channel shared-memory
//       reply ring instead of a per-request latch wakeup. The offloading
//       coroutine polls its reply slot (the LWK core is dedicated to the
//       blocked rank, so polling is free) and only parks after
//       `ikc_reply_poll_budget`; a parked channel costs at most one
//       completion IPI per drained batch instead of one per request.
//       `ikc_reply_mode` selects `latch` (the PR-4 shape) or `ring`.
//   adaptive batching — each service loop sizes its next drain from an
//       EWMA of the depths it observed at drain time, clamped to
//       [1, ikc_ring_depth], instead of the static `ikc_batch`.
//   NUMA pinning — channel ring memory is placed on the socket of the
//       owning LWK CPU (`PhysMap::alloc_near` when a PhysMap is supplied),
//       channels are sharded to service loops by that socket, and each
//       loop is pinned to the socket owning its channels' rings; draining
//       a remote-socket ring pays `ikc_remote_drain_cost` per visit.
//
// Multi-tenant QoS (§8.6): every request is tagged with the submitting
// job's `JobId`. Service loops drain weighted-fair across jobs: they claim
// ring *heads* in lexicographic (vtime, class, age) order — vtime advances
// 1/weight per claim, control beats bulk within a vtime tie, and equal
// ties serve the oldest head first — so N jobs sharing a loop split its
// capacity by weight while per-channel FIFO order is preserved; a single
// job degenerates to the PR-4 strict two-class drain exactly
// (`ikc_fair_drain` = false keeps that scheduler as the reference the
// property harness compares against). Admission control bounds each job's
// in-flight offloads to `ikc_job_credits × weight` credits: an exhausted
// job backs off and retries, then fails with EAGAIN (`ikc.job.eagain`)
// instead of queueing without bound — a flooding tenant throttles itself
// rather than monopolizing the rings.
//
// Robustness (ring mode): every request carries a ring-residency deadline;
// on expiry the submitter retries on a ring owned by a different service
// loop (bounded backoff), and after the retry budget falls back to the
// direct path. Consecutive timeouts mark a service loop suspect — further
// submissions avoid it except for periodic health probes, whose success
// clears the mark. The ladder is: retry elsewhere → avoid the stalled loop
// → degrade to direct; a fully stalled service side therefore slows
// offloads down instead of hanging them. The reply path has its own rungs:
// a full reply ring falls back to a per-request wakeup, a lost completion
// doorbell is recovered by the parked consumer's `ikc_reply_deadline`
// self-drain, and a completion whose consumer died is dropped with a
// counter instead of wedging the service loop.
//
// Elastic lifecycle (§8.7): the service-loop set is no longer fixed at
// construction. `retire_loop()` quiesces the highest-numbered active loop —
// it stops claiming, finishes any batch it already claimed (replies are
// delivered through the normal reply path), its channels are re-sharded
// onto the surviving loops, and the caller is resumed once the loop's
// coroutine has exited — and `attach_loop()` revives the next slot with a
// fresh service loop. The active set is always the prefix
// [0, active_loops()), so re-running the socket-aware sharding over that
// prefix reproduces exactly what a static transport of the same shape
// would compute. Every loop whose channel set changes across a re-shard
// has its suspect/probe/EWMA drain state reset: a verdict calibrated
// against the old channel set (or inherited from a retired loop's slot)
// must not outlive the shape that produced it. Orphaned queue depth is
// handed to the new owners with a doorbell pass; requests in the races a
// repartition cannot close are recovered by the ordinary deadline ladder.
//
// Observability: `ikc.ring.*` submit-path counters, `ikc.reply.*` return-
// path counters (post/poll_hit/park/wakeup/ring_full/self_drain/
// consumer_dead/...), `ikc.adaptive.*` drain-sizing counters,
// `ikc.numa.*` placement counters and `ikc.elastic.*` repartition counters
// are threaded through the Linux kernel's SyscallProfiler, and every
// request's queueing delay lands in the shared `Samples` the owning Ihk
// summarizes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ring_buffer.hpp"
#include "src/common/stats.hpp"
#include "src/common/status.hpp"
#include "src/mem/numa_topology.hpp"
#include "src/mem/phys.hpp"
#include "src/os/config.hpp"
#include "src/os/profiler.hpp"
#include "src/os/spinlock.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace pd::ikc {

/// The Linux-side work of one offloaded syscall (runs in proxy context).
using Service = std::function<sim::Task<Result<long>>()>;

/// Per-channel priority classes: `control` for fast-path-critical admin
/// calls (TID registration, open/close), `bulk` for data-path I/O.
enum class Priority { control = 0, bulk = 1 };

/// Tenant identity of an offload. Job 0 is the single-tenant default every
/// legacy caller gets; a multi-tenant node tags each process's offloads
/// with its job so the service loops can drain weighted-fair across jobs
/// and the admission-control path can bound each job's in-flight share.
using JobId = std::uint32_t;

/// Percentile summary of offload queueing delays (µs).
struct QueueingSummary {
  std::size_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double max_us = 0;
};

QueueingSummary summarize_queueing(const Samples& samples);

class IkcTransport {
 public:
  /// Queue-depth histogram buckets: depth ≤ 1, 2, 4, 8, 16, 32, > 32.
  static constexpr int kDepthBuckets = 7;
  using DepthHistogram = std::array<std::uint64_t, kDepthBuckets>;

  /// `service_cpus`: the shared Linux service-CPU pool (CPU time for both
  /// transports and for IRQ bottom halves). `profiler`: where the ikc.*
  /// counters land (the Linux kernel's). `queueing_us`: per-request
  /// queueing samples, owned by the Ihk that owns this transport. `phys`:
  /// when non-null, channel ring memory is really placed with
  /// `PhysMap::alloc_near` and the achieved domain drives NUMA pinning;
  /// null falls back to ideal owner-socket placement. Ring-mode service
  /// loops are spawned here and live until the engine destroys their
  /// frames. Throws std::invalid_argument when `cfg.validate()` fails —
  /// a misconfigured transport must not surface as a ladder of timeouts.
  IkcTransport(sim::Engine& engine, const os::Config& cfg, sim::Resource& service_cpus,
               os::SyscallProfiler& profiler, Samples& queueing_us, std::string lock_abi,
               mem::PhysMap* phys = nullptr);
  ~IkcTransport();
  IkcTransport(const IkcTransport&) = delete;
  IkcTransport& operator=(const IkcTransport&) = delete;

  /// Delegate one syscall. Ring mode enqueues on the hinted channel and
  /// follows the degradation ladder; direct mode is the legacy path. `job`
  /// tags the request with its tenant: the fair drain schedules across
  /// jobs by weight and the per-job credit gate may fail the call with
  /// EAGAIN (after bounded backoff) when the job's in-flight share of the
  /// transport is exhausted.
  sim::Task<Result<long>> offload(Service service, Priority prio, int channel_hint,
                                  JobId job = 0);

  int num_channels() const { return channels_n_; }
  int num_loops() const { return loops_n_; }
  int loop_of(int channel) const {
    return channel_loop_.at(static_cast<std::size_t>(channel));
  }

  /// --- elastic lifecycle (§8.7) -------------------------------------------
  /// Service loops currently draining: always the prefix [0, active_loops()).
  int active_loops() const { return active_loops_; }
  /// Loop slots provisioned (boot loops plus elastic_max_service_cpus
  /// headroom); attach_loop() cannot grow past this.
  int max_loops() const { return static_cast<int>(loops_.size()); }
  /// Quiesce and retire the highest-numbered active service loop: it stops
  /// claiming, its channels are re-sharded onto the surviving loops (home-
  /// socket affinity recomputed over the new prefix), orphaned queue depth
  /// is doorbelled to the new owners, and the call returns once the loop's
  /// coroutine has exited and any batch it had claimed is fully delivered.
  /// EINVAL when only one loop is active — offloads must keep a Linux side.
  sim::Task<Status> retire_loop();
  /// Re-activate the next loop slot with a fresh service loop (clean
  /// suspect/probe/EWMA state) and re-shard channels over the grown prefix.
  /// ENOSPC when every provisioned slot is already active.
  sim::Task<Status> attach_loop();

  /// --- NUMA placement introspection --------------------------------------
  /// Socket owning `channel`'s ring memory (after any alloc_near fallback).
  int channel_socket(int channel) const;
  /// Socket the service loop runs on: its pinned socket under
  /// `ikc_numa_pin`, its service CPU's socket otherwise.
  int loop_socket(int loop) const { return loops_.at(static_cast<std::size_t>(loop))->socket; }
  /// Physical ring region of `channel` (0 when no PhysMap was supplied).
  mem::PhysAddr channel_ring_phys(int channel) const;

  /// --- per-job QoS introspection ------------------------------------------
  /// Aggregated view of one job's interaction with the transport. Everything
  /// here is observable from outside (tests, the overload-ladder bench):
  /// how much work the job completed, how hard the credit gate pushed back,
  /// and the job's own queueing distribution.
  struct JobStats {
    std::uint64_t submitted = 0;   // offloads tagged with this job
    std::uint64_t completed = 0;   // offloads that returned a result
    std::uint64_t eagain = 0;      // failed at the credit gate (throttled)
    std::uint64_t credit_waits = 0;  // backoff rounds spent waiting for credit
    int inflight = 0;              // accepted, not yet returned
    /// Per-job queueing delays: a bounded reservoir, not a full sample
    /// vector — every sample already lands in the transport-wide `Samples`,
    /// and at the 4096-job overload ladder an unbounded second copy per job
    /// would double queueing-sample memory without bound. Count, mean and
    /// max stay exact; p50/p95 are reservoir estimates over `kQueueingCap`.
    static constexpr std::size_t kQueueingCap = 2048;
    Samples queueing_us{kQueueingCap};
  };
  /// Stats for `job`, or nullptr when the job never submitted.
  const JobStats* job_stats(JobId job) const;
  /// Every job id the transport has seen, ascending.
  std::vector<JobId> jobs_seen() const;
  /// The drain weight `job` resolves to (ikc_job_weights, default 1.0).
  double job_weight(JobId job) const;

  /// --- adaptive batching introspection ------------------------------------
  /// The drain limit the loop will apply to its next batch collection.
  int loop_batch_limit(int loop) const {
    return loops_.at(static_cast<std::size_t>(loop))->batch_limit;
  }
  double loop_depth_ewma(int loop) const {
    return loops_.at(static_cast<std::size_t>(loop))->depth_ewma;
  }

  /// --- fault injection / introspection (tests, failure injection) --------
  /// Halt or resume one Linux-side service loop ("service thread wedged").
  /// Stalling is a *fault*: the transport must detect it behaviourally via
  /// deadlines, never by reading this flag on the submit path.
  void inject_stall(int loop, bool stalled);
  bool stall_injected(int loop) const { return loops_.at(loop)->stall_injected; }
  /// Kill every consumer currently waiting on `channel` (the owning LWK
  /// process dies mid-offload): their offloads resolve to EINTR, queued
  /// entries become stale, and completions the service side still produces
  /// for them are dropped (`ikc.reply.consumer_dead`), never delivered.
  void inject_consumer_death(int channel);
  /// Drop completion doorbells aimed at `channel` while `lost` (a wedged
  /// LWK-side reply IRQ): parked consumers must recover via the
  /// `ikc_reply_deadline` self-drain instead of hanging.
  void inject_reply_doorbell_loss(int channel, bool lost);
  /// Has this loop accumulated enough consecutive timeouts to be avoided?
  bool loop_suspect(int loop) const;
  std::uint64_t loop_served(int loop) const { return loops_.at(loop)->served; }
  std::size_t channel_depth(int channel) const;
  std::size_t reply_ring_depth(int channel) const;
  /// Current reply-ring capacity (grows under ikc_reply_autosize).
  std::size_t reply_ring_capacity(int channel) const;
  const DepthHistogram& depth_histogram(int channel) const {
    return depth_hist_.at(channel);
  }

 private:
  struct Request {
    explicit Request(sim::Engine& engine) : done(engine), wake(engine) {}
    enum class State { queued, claimed, done, timed_out, abandoned };
    Service service;
    State state = State::queued;
    Result<long> result = Errno::eagain;
    Time enqueued_at = 0;
    int channel = -1;  // ring the request was accepted on (reply routing)
    JobId job = 0;           // tenant the fair drain schedules by
    sim::Latch done;         // latch reply mode: one-shot completion
    sim::Channel<int> wake;  // ring reply mode: doorbell / watchdog pokes
  };
  using RequestPtr = std::shared_ptr<Request>;

  struct Channel {
    Channel(sim::Engine& engine, std::string abi, Dur lock_cost, std::size_t depth,
            std::size_t reply_depth)
        : lock(engine, std::move(abi), lock_cost),
          rings{RingBuffer<RequestPtr>(depth), RingBuffer<RequestPtr>(depth)},
          reply(reply_depth) {}
    os::SharedSpinlock lock;          // the cross-kernel ring lock (§3.3)
    RingBuffer<RequestPtr> rings[2];  // [control, bulk]
    RingBuffer<RequestPtr> reply;     // completions awaiting the LWK core
    std::vector<RequestPtr> parked;   // consumers blocked on the reply doorbell
    std::vector<std::weak_ptr<Request>> inflight;  // for consumer-death injection
    bool reply_doorbell_lost = false;  // fault injection: completion IPIs dropped
    int reply_full_strikes = 0;        // ring-full events since the last grow
    int home_socket = 0;               // socket owning this channel's ring memory
    mem::PhysAddr ring_phys = 0;       // 0 → no real placement (no PhysMap)
  };

  struct Loop {
    explicit Loop(sim::Engine& engine) : doorbell(engine), unstall(engine), retired(engine) {}
    sim::Channel<int> doorbell;
    sim::Channel<int> unstall;
    sim::Channel<int> retired;    // service_loop signals its exit here
    bool sleeping = false;        // blocked on the doorbell
    bool stall_injected = false;
    bool retiring = false;        // quiesce requested: exit after this batch
    int consecutive_timeouts = 0; // submit-side stall detector
    std::uint64_t served = 0;
    int socket = 0;               // where this loop runs (pinned or service CPU)
    std::vector<int> channels;    // the channels this loop owns, ascending
    // Adaptive drain sizing: EWMA of the depth observed at each drain and
    // the clamped limit derived from it (§8.4).
    double depth_ewma = 0.0;
    int batch_limit = 1;
  };

  static bool settled(const Request& req) {
    return req.state == Request::State::done || req.state == Request::State::timed_out ||
           req.state == Request::State::abandoned;
  }

  sim::Task<Result<long>> direct_offload(Service service, JobId job);
  sim::Task<Result<long>> ring_offload(Service service, Priority prio, int channel_hint,
                                       JobId job);
  /// Credit gate: wait (bounded backoff) for the job's in-flight count to
  /// drop below its credit cap. Returns false when the retries are spent —
  /// the caller must fail the offload with EAGAIN instead of queueing.
  sim::Task<bool> admit(JobId job);
  sim::Task<> service_loop(int loop);
  /// Pop up to the loop's current drain limit of claimable requests from
  /// its channels, control class strictly first. Inside a class the claim
  /// order is weighted-fair across jobs (per-job virtual time, head-only so
  /// per-channel FIFO is preserved); with `ikc_fair_drain` off it is the
  /// PR-4 strict order (each channel drained fully, in channel order).
  /// Either way the ring-lock cost (plus the remote-socket surcharge) is
  /// paid once per non-empty (channel, class) ring visited.
  sim::Task<> collect_batch(int loop, std::vector<RequestPtr>& out);
  /// The PR-4 reference drain, kept verbatim for the fairness equivalence
  /// harness (ikc_fair_drain = false).
  sim::Task<> collect_batch_strict(int loop, std::vector<RequestPtr>& out,
                                   std::size_t batch_max);
  sim::Task<> collect_batch_fair(int loop, std::vector<RequestPtr>& out,
                                 std::size_t batch_max);
  /// Deliver one completed service result back to the submitter, by the
  /// configured reply mode; reply-ring touches are recorded in `touched`
  /// so the post-batch doorbell pass can wake parked channels once each.
  sim::Task<> deliver_reply(const RequestPtr& req, int channel, std::vector<int>& touched);
  /// Wait (reply-ring mode) until `req` settles: poll the reply slot for
  /// `ikc_reply_poll_budget`, then park on the doorbell with the
  /// self-drain watchdog armed.
  sim::Task<> await_reply(RequestPtr req, int channel);
  /// Pop every posted completion notification on `channel` (the owning LWK
  /// core draining its reply ring on wake-up or poll).
  void drain_reply_ring(int channel);

  RingBuffer<RequestPtr>& ring(int channel, Priority prio) {
    return channels_[static_cast<std::size_t>(channel)]->rings[static_cast<int>(prio)];
  }
  bool has_work(int loop) const;
  /// Channel to actually submit on: the hint unless its loop is suspect, in
  /// which case rotate to a healthy loop's channel (or probe the suspect
  /// one every `ikc_probe_interval`-th time). -1 → every loop suspect.
  int pick_channel(int channel);
  /// The next channel owned by a *different* service loop (retry target);
  /// falls back to channel+1 when every channel shares one loop.
  int next_foreign_channel(int channel) const;
  void note_depth(int channel);
  /// Observe `avail` requests pending at drain time and resize the loop's
  /// drain limit from the refreshed EWMA.
  void observe_depth(Loop& lp, std::size_t avail);
  /// Ring-memory placement (home sockets + PhysMap::alloc_near), fixed at
  /// construction: a channel's ring lines do not move when loops do.
  void place_rings();
  /// Socket→loop channel sharding + loop pinning (ikc_numa_pin) or the
  /// legacy round-robin shard over the active prefix [0, active_loops_);
  /// fills channel_loop_ and Loop::{socket,channels}. Re-run on every
  /// retire/attach — identical to a fresh transport of the same shape.
  void shard_channels();
  /// shard_channels + reset suspect/probe/EWMA drain state on every active
  /// loop whose channel set the re-shard changed (satellite: a re-shard
  /// must not inherit a stale verdict).
  void reshard_and_reset();
  void reset_loop_health(Loop& lp);
  /// Post-repartition doorbell pass: wake every sleeping active loop that
  /// now owns queued work (orphans of a retired loop, movers of a re-shard).
  sim::Task<> wake_loops_with_work();

  sim::Engine& engine_;
  const os::Config& cfg_;
  sim::Resource& service_cpus_;
  os::SyscallProfiler& prof_;
  Samples& queueing_us_;
  mem::PhysMap* phys_;
  mem::NumaTopology topo_;
  int channels_n_;
  int loops_n_;
  int active_loops_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<int> channel_loop_;
  std::vector<DepthHistogram> depth_hist_;
  /// Cached per-channel counter names so enqueue-path bumps never build
  /// strings ("ikc.ring.depth.ch<k>.le<n>").
  std::vector<std::unique_ptr<std::array<std::string, kDepthBuckets>>> depth_names_;
  std::uint64_t probe_tick_ = 0;

  /// Per-job scheduling state. `vtime` is the weighted-fair virtual finish
  /// time: claiming one request advances it by 1/weight, and a job waking
  /// from idle rejoins at the scheduler's current floor instead of burning
  /// a backlog of "unused" past share as a burst. Jobs clamped up to the
  /// floor tie; the tie is served oldest-head-first (see
  /// collect_batch_fair), which re-encodes the deficit the clamp erased.
  struct JobState {
    JobStats stats;
    double vtime = 0.0;
  };
  JobState& job(JobId job_id) { return jobs_[job_id]; }
  /// In-flight credit cap for `job` (0 = unlimited).
  int credit_cap(JobId job_id) const;
  std::map<JobId, JobState> jobs_;  // ordered so jobs_seen() is ascending
  double vtime_floor_ = 0.0;        // virtual now: idle jobs rejoin here
};

}  // namespace pd::ikc
