file(REMOVE_RECURSE
  "CMakeFiles/pd_os.dir/ihk.cpp.o"
  "CMakeFiles/pd_os.dir/ihk.cpp.o.d"
  "CMakeFiles/pd_os.dir/kernel.cpp.o"
  "CMakeFiles/pd_os.dir/kernel.cpp.o.d"
  "CMakeFiles/pd_os.dir/mckernel.cpp.o"
  "CMakeFiles/pd_os.dir/mckernel.cpp.o.d"
  "CMakeFiles/pd_os.dir/partition.cpp.o"
  "CMakeFiles/pd_os.dir/partition.cpp.o.d"
  "CMakeFiles/pd_os.dir/process.cpp.o"
  "CMakeFiles/pd_os.dir/process.cpp.o.d"
  "CMakeFiles/pd_os.dir/profiler.cpp.o"
  "CMakeFiles/pd_os.dir/profiler.cpp.o.d"
  "libpd_os.a"
  "libpd_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
