file(REMOVE_RECURSE
  "CMakeFiles/pd_psm.dir/endpoint.cpp.o"
  "CMakeFiles/pd_psm.dir/endpoint.cpp.o.d"
  "libpd_psm.a"
  "libpd_psm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
