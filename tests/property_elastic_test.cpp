// Elastic repartition equivalence property (ISSUE 8, §8.7).
//
// Live repartitioning changes *which* service CPUs drain the rings but must
// not change *what* the transport does: after any sequence of loop
// retire/attach operations, a seeded syscall stream must behave exactly as
// it would on a fresh static partition of the same final shape — identical
// per-request return values and errno streams, every service executed
// exactly once (nothing lost or double-executed across the re-shard), and
// the per-(channel, priority) FIFO contract intact. A repartition scripted
// *concurrently* with the stream must also lose nothing.
//
// Sharding and timing are explicitly NOT compared against the static run:
// surviving loops carry warmed EWMA/batch state that a fresh transport does
// not, and that is allowed — only the submitter-visible contract is pinned.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L elastic` (also `property`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ikc/transport.hpp"
#include "src/os/kernel.hpp"

namespace pd::ikc {
namespace {

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0x1CC0FFEEull;
}

constexpr int kRanks = 24;
constexpr int kOpsPerRank = 30;

struct Op {
  Priority prio = Priority::bulk;
  Dur work = 0;
  Dur gap = 0;
  long payload = 0;
  bool fail = false;
};

struct ExecutionRecord {
  long rank;
  int op_index;
  Priority prio;
};

struct RunResult {
  std::vector<std::vector<long>> results;
  std::vector<std::vector<Errno>> errors;
  std::vector<ExecutionRecord> executed;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded = 0;
};

/// One transport whose shape the test scripts: boot at `cfg.linux_service_cpus`
/// loops, then retire/attach on demand, then drive seeded phases.
struct Harness {
  explicit Harness(os::Config c) : cfg(std::move(c)), linux_kernel(engine, cfg) {
    transport = std::make_unique<IkcTransport>(engine, cfg, linux_kernel.service_cpus(),
                                               linux_kernel.profiler(), queueing,
                                               linux_kernel.spinlock_abi());
  }

  /// Apply one scripted repartition step to completion. `retire` shrinks the
  /// active set by one loop, otherwise attach grows it.
  Status reshape(bool retire) {
    Status out = Errno::eagain;
    // if/else, not a conditional expression: `r ? co_await a() : co_await b()`
    // is miscompiled by GCC's coroutine lowering (both arms run).
    sim::spawn(engine, [](Harness& h, bool r, Status& o) -> sim::Task<> {
      if (r)
        o = co_await h.transport->retire_loop();
      else
        o = co_await h.transport->attach_loop();
    }(*this, retire, out));
    engine.run();
    return out;
  }

  sim::Task<> drive_rank(const std::vector<Op>& script, int rank, RunResult& out) {
    for (int k = 0; k < static_cast<int>(script.size()); ++k) {
      const Op& op = script[static_cast<std::size_t>(k)];
      auto r = co_await transport->offload(
          [this, &op, &out, rank, k]() -> sim::Task<Result<long>> {
            co_await engine.delay(op.work);
            out.executed.push_back({rank, k, op.prio});
            if (op.fail) co_return Errno::eio;
            co_return op.payload;
          },
          op.prio, rank);
      out.results[static_cast<std::size_t>(rank)].push_back(r.ok() ? *r : -1);
      out.errors[static_cast<std::size_t>(rank)].push_back(r.error());
      co_await engine.delay(op.gap);
    }
  }

  RunResult run_phase(const std::vector<std::vector<Op>>& scripts) {
    RunResult out;
    out.results.resize(kRanks);
    out.errors.resize(kRanks);
    const std::uint64_t t0 = linux_kernel.profiler().counter("ikc.ring.timeout");
    const std::uint64_t d0 = linux_kernel.profiler().counter("ikc.ring.degraded");
    for (int r = 0; r < kRanks; ++r)
      sim::spawn(engine, drive_rank(scripts[static_cast<std::size_t>(r)], r, out));
    engine.run();
    out.timeouts = linux_kernel.profiler().counter("ikc.ring.timeout") - t0;
    out.degraded = linux_kernel.profiler().counter("ikc.ring.degraded") - d0;
    return out;
  }

  sim::Engine engine;
  os::Config cfg;
  os::LinuxKernel linux_kernel;
  Samples queueing;
  std::unique_ptr<IkcTransport> transport;
};

os::Config ring_cfg(int service_cpus, int elastic_max = 0) {
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  cfg.linux_service_cpus = service_cpus;
  cfg.elastic_max_service_cpus = elastic_max;
  return cfg;
}

std::vector<std::vector<Op>> make_scripts(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Op>> scripts(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    Rng stream = rng.fork();
    for (int k = 0; k < kOpsPerRank; ++k) {
      Op op;
      op.prio = stream.next_below(4) == 0 ? Priority::control : Priority::bulk;
      op.work = from_us(stream.uniform(0.5, 6.0));
      op.gap = from_us(stream.uniform(1.0, 40.0));
      op.payload = static_cast<long>(r) * 1000 + k;
      op.fail = stream.next_below(16) == 0;
      scripts[static_cast<std::size_t>(r)].push_back(op);
    }
  }
  return scripts;
}

/// The submitter-visible contract both runs must share: identical results
/// and errno streams, once-each execution, FIFO per (channel, priority).
void expect_equivalent(const RunResult& reference, const RunResult& elastic) {
  EXPECT_EQ(reference.timeouts, 0u);
  EXPECT_EQ(elastic.timeouts, 0u);
  EXPECT_EQ(reference.degraded, 0u);
  EXPECT_EQ(elastic.degraded, 0u);

  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(reference.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    ASSERT_EQ(elastic.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    for (int k = 0; k < kOpsPerRank; ++k) {
      EXPECT_EQ(reference.results[r][k], elastic.results[r][k])
          << "rank " << r << " op " << k << " diverged";
      EXPECT_EQ(reference.errors[r][k], elastic.errors[r][k])
          << "rank " << r << " op " << k << " errno diverged";
    }
  }

  ASSERT_EQ(elastic.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  std::vector<std::vector<int>> seen(kRanks, std::vector<int>(kOpsPerRank, 0));
  for (const auto& e : elastic.executed) ++seen[e.rank][e.op_index];
  for (int r = 0; r < kRanks; ++r)
    for (int k = 0; k < kOpsPerRank; ++k)
      EXPECT_EQ(seen[r][k], 1) << "rank " << r << " op " << k << " executed "
                               << seen[r][k] << " times after repartition";

  std::vector<int> last_control(kRanks, -1), last_bulk(kRanks, -1);
  for (const auto& e : elastic.executed) {
    auto& last = e.prio == Priority::control ? last_control : last_bulk;
    EXPECT_LT(last[e.rank], e.op_index)
        << "FIFO violated on channel " << e.rank << " after repartition";
    last[e.rank] = e.op_index;
  }
}

TEST(ElasticProperty, TrafficAfterShrinkEquivalentToFreshStaticPartition) {
  const std::uint64_t seed = harness_seed();
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto warmup = make_scripts(seed ^ 0x5A);
  const auto scripts = make_scripts(seed);

  // Elastic: boot 4 loops, warm them, retire down to 2, then the stream.
  Harness elastic(ring_cfg(4));
  elastic.run_phase(warmup);
  ASSERT_TRUE(elastic.reshape(/*retire=*/true).ok());
  ASSERT_TRUE(elastic.reshape(/*retire=*/true).ok());
  ASSERT_EQ(elastic.transport->active_loops(), 2);
  const RunResult after = elastic.run_phase(scripts);

  // Reference: a transport that was *born* with 2 loops.
  Harness fresh(ring_cfg(2));
  const RunResult reference = fresh.run_phase(scripts);

  expect_equivalent(reference, after);
  // The shrunk transport shards channels exactly like the fresh one: the
  // re-shard is a re-run of placement, not an ad-hoc patch.
  for (int c = 0; c < elastic.cfg.ikc_channels; ++c)
    EXPECT_EQ(elastic.transport->loop_of(c), fresh.transport->loop_of(c))
        << "channel " << c << " sharded differently after shrink";
}

TEST(ElasticProperty, TrafficAfterGrowEquivalentToFreshStaticPartition) {
  const std::uint64_t seed = harness_seed() ^ 0x6B;
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto warmup = make_scripts(seed ^ 0x5A);
  const auto scripts = make_scripts(seed);

  // Elastic: boot 2 loops with headroom for 4, warm, attach up to 4.
  Harness elastic(ring_cfg(2, /*elastic_max=*/4));
  elastic.run_phase(warmup);
  ASSERT_TRUE(elastic.reshape(/*retire=*/false).ok());
  ASSERT_TRUE(elastic.reshape(/*retire=*/false).ok());
  ASSERT_EQ(elastic.transport->active_loops(), 4);
  const RunResult after = elastic.run_phase(scripts);

  Harness fresh(ring_cfg(4));
  const RunResult reference = fresh.run_phase(scripts);

  expect_equivalent(reference, after);
  for (int c = 0; c < elastic.cfg.ikc_channels; ++c)
    EXPECT_EQ(elastic.transport->loop_of(c), fresh.transport->loop_of(c))
        << "channel " << c << " sharded differently after grow";
}

TEST(ElasticProperty, SeededRepartitionWalkStaysEquivalent) {
  // A seeded random walk over shapes (retire/attach within [1, max]) with a
  // short traffic burst at every step, then the full stream compared against
  // a fresh partition of whatever shape the walk ended on.
  const std::uint64_t seed = harness_seed() ^ 0xA7;
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  Harness elastic(ring_cfg(3, /*elastic_max=*/5));
  Rng walk(seed * 0x9E3779B97F4A7C15ull + 1);
  for (int step = 0; step < 6; ++step) {
    const int active = elastic.transport->active_loops();
    bool retire;
    if (active <= 1)
      retire = false;
    else if (active >= elastic.transport->max_loops())
      retire = true;
    else
      retire = walk.next_below(2) == 0;
    ASSERT_TRUE(elastic.reshape(retire).ok())
        << "step " << step << " active " << active;
    elastic.run_phase(make_scripts(seed + static_cast<std::uint64_t>(step)));
  }
  const int final_shape = elastic.transport->active_loops();
  const RunResult after = elastic.run_phase(scripts);

  Harness fresh(ring_cfg(final_shape, /*elastic_max=*/5));
  const RunResult reference = fresh.run_phase(scripts);
  expect_equivalent(reference, after);
}

TEST(ElasticProperty, RepartitionConcurrentWithTrafficLosesNothing) {
  // The shrink and the grow both land *while* the stream is in flight: no
  // offload may be lost, duplicated, or reordered within its channel, and
  // the run must stay timeout-free (drain-before-handover, not abandon).
  const std::uint64_t seed = harness_seed() ^ 0xC3;
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  Harness h(ring_cfg(3, /*elastic_max=*/4));
  RunResult out;
  out.results.resize(kRanks);
  out.errors.resize(kRanks);
  for (int r = 0; r < kRanks; ++r)
    sim::spawn(h.engine, h.drive_rank(scripts[static_cast<std::size_t>(r)], r, out));
  sim::spawn(h.engine, [](Harness& hh) -> sim::Task<> {
    co_await hh.engine.delay(from_us(40));
    const Status s1 = co_await hh.transport->retire_loop();
    EXPECT_TRUE(s1.ok());
    co_await hh.engine.delay(from_us(120));
    const Status s2 = co_await hh.transport->attach_loop();
    EXPECT_TRUE(s2.ok());
    co_await hh.engine.delay(from_us(120));
    const Status s3 = co_await hh.transport->attach_loop();
    EXPECT_TRUE(s3.ok());
  }(h));
  h.engine.run();

  EXPECT_EQ(h.linux_kernel.profiler().counter("ikc.ring.timeout"), 0u);
  EXPECT_EQ(h.transport->active_loops(), 4);
  EXPECT_EQ(h.linux_kernel.profiler().counter("ikc.elastic.loop_retired"), 1u);
  EXPECT_EQ(h.linux_kernel.profiler().counter("ikc.elastic.loop_attached"), 2u);

  ASSERT_EQ(out.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  std::vector<std::vector<int>> seen(kRanks, std::vector<int>(kOpsPerRank, 0));
  for (const auto& e : out.executed) ++seen[e.rank][e.op_index];
  for (int r = 0; r < kRanks; ++r)
    for (int k = 0; k < kOpsPerRank; ++k) {
      EXPECT_EQ(seen[r][k], 1) << "rank " << r << " op " << k << " executed "
                               << seen[r][k] << " times across live repartition";
      EXPECT_EQ(out.results[r][k],
                scripts[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)].fail
                    ? -1
                    : static_cast<long>(r) * 1000 + k);
    }
  std::vector<int> last_control(kRanks, -1), last_bulk(kRanks, -1);
  for (const auto& e : out.executed) {
    auto& last = e.prio == Priority::control ? last_control : last_bulk;
    EXPECT_LT(last[e.rank], e.op_index) << "FIFO violated on channel " << e.rank;
    last[e.rank] = e.op_index;
  }
}

TEST(ElasticProperty, RepartitionScheduleIsDeterministic) {
  // Two identical elastic runs (same seed, same reshape schedule) must agree
  // event for event — the elastic machinery adds no hidden nondeterminism.
  const std::uint64_t seed = harness_seed() ^ 0xE1;
  const auto scripts = make_scripts(seed);
  auto run_once = [&scripts]() {
    Harness h(ring_cfg(3, /*elastic_max=*/4));
    EXPECT_TRUE(h.reshape(/*retire=*/true).ok());
    EXPECT_TRUE(h.reshape(/*retire=*/false).ok());
    EXPECT_TRUE(h.reshape(/*retire=*/false).ok());
    return h.run_phase(scripts);
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.executed.size(), b.executed.size());
  for (std::size_t i = 0; i < a.executed.size(); ++i) {
    EXPECT_EQ(a.executed[i].rank, b.executed[i].rank) << "at " << i;
    EXPECT_EQ(a.executed[i].op_index, b.executed[i].op_index) << "at " << i;
  }
  EXPECT_EQ(a.results, b.results);
}

}  // namespace
}  // namespace pd::ikc
