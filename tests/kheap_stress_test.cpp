// Cross-kernel kheap stress: Linux-side frees hammering the remote-free
// queues while the owning LWK cores keep allocating (paper §3.3).
//
// The scenario under test is the SDMA completion path: the device IRQ runs
// on a Linux CPU and kfree()s LWK-owned completion metadata, while the
// owner cores allocate the next batch and drain their queues on the
// scheduler tick. The randomized interleaving below checks that the
// per-core magazines, remote queues, and the Stats ledger stay mutually
// consistent through tens of thousands of such races, and that every block
// keeps its bytes intact while live (blocks carry real host memory, so an
// aliasing or early-recycle bug shows up as a stomped pattern — and as an
// ASan report in PD_SANITIZE builds, which run this under the `sanitize`
// ctest label).
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "src/common/rng.hpp"
#include "src/mem/kheap.hpp"

namespace pd::mem {
namespace {

constexpr int kOwnerCpus[] = {8, 9, 10, 11};
constexpr int kLinuxCpus[] = {0, 1, 2};
constexpr int kOps = 40'000;

struct LiveBlock {
  PhysAddr addr = 0;
  std::uint64_t size = 0;
  int owner_cpu = -1;
};

std::uint8_t pattern_for(PhysAddr addr, std::uint64_t size) {
  return static_cast<std::uint8_t>((addr >> 6) ^ size ^ 0x5A);
}

void fill_block(KernelHeap& heap, const LiveBlock& b) {
  auto span = heap.data(b.addr);
  ASSERT_EQ(span.size(), b.size);
  const std::uint8_t p = pattern_for(b.addr, b.size);
  for (auto& byte : span) byte = p;
}

void check_block(KernelHeap& heap, const LiveBlock& b) {
  auto span = heap.data(b.addr);
  ASSERT_EQ(span.size(), b.size);
  const std::uint8_t p = pattern_for(b.addr, b.size);
  for (std::size_t i = 0; i < span.size(); ++i) {
    ASSERT_EQ(span[i], p) << "block " << std::hex << b.addr << " byte " << std::dec << i
                          << " stomped while live";
  }
}

class KheapCrossKernelStress : public testing::Test {
 protected:
  KernelHeap heap{{kOwnerCpus[0], kOwnerCpus[1], kOwnerCpus[2], kOwnerCpus[3]},
                  ForeignFreePolicy::remote_queue};
  Rng rng{0xD1CEB00Cull};
  std::vector<LiveBlock> tracked;            // live, not yet freed by anyone
  std::vector<LiveBlock> queued;             // foreign-freed, awaiting drain
  std::uint64_t queued_bytes = 0;
  std::uint64_t tracked_bytes = 0;
  std::uint64_t double_free_attempts = 0;

  int random_owner() { return kOwnerCpus[rng.next_below(std::size(kOwnerCpus))]; }
  int random_linux() { return kLinuxCpus[rng.next_below(std::size(kLinuxCpus))]; }

  std::uint64_t random_size() {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 50) return 192;                       // SDMA completion metadata
    if (dice < 85) return 1 + rng.next_below(4096);  // within the size classes
    return 4097 + rng.next_below(16ull * 1024);      // oversized → host-heap path
  }

  void do_alloc() {
    const int cpu = random_owner();
    const std::uint64_t size = random_size();
    auto addr = heap.kmalloc(size, cpu);
    ASSERT_TRUE(addr.ok());
    LiveBlock b{*addr, size, cpu};
    fill_block(heap, b);
    tracked.push_back(b);
    tracked_bytes += size;
  }

  void do_free(bool foreign) {
    if (tracked.empty()) return;
    const std::size_t pick = rng.next_below(tracked.size());
    LiveBlock b = tracked[pick];
    tracked[pick] = tracked.back();
    tracked.pop_back();
    tracked_bytes -= b.size;
    check_block(heap, b);  // bytes must be intact right up to the free
    if (foreign) {
      ASSERT_TRUE(heap.kfree(b.addr, random_linux()).ok());
      queued.push_back(b);
      queued_bytes += b.size;
    } else {
      ASSERT_TRUE(heap.kfree(b.addr, b.owner_cpu).ok());
    }
  }

  // A duplicate completion IRQ (or a confused owner) frees a block that is
  // already sitting on the remote-free queue. Must be rejected without
  // touching the queue, and the queued block must expose no writable span.
  void do_double_free() {
    if (queued.empty()) return;
    const LiveBlock& b = queued[rng.next_below(queued.size())];
    const int cpu = rng.next_below(2) == 0 ? random_linux() : b.owner_cpu;
    ASSERT_EQ(heap.kfree(b.addr, cpu).error(), Errno::einval);
    ASSERT_TRUE(heap.data(b.addr).empty());
    ++double_free_attempts;
  }

  void do_drain() {
    const int cpu = random_owner();
    std::size_t expected = 0;
    for (const LiveBlock& b : queued)
      if (b.owner_cpu == cpu) ++expected;
    EXPECT_EQ(heap.remote_queue_depth(cpu), expected);
    EXPECT_EQ(heap.drain_remote_frees(cpu), expected);
    EXPECT_EQ(heap.remote_queue_depth(cpu), 0u);
    for (std::size_t i = 0; i < queued.size();) {
      if (queued[i].owner_cpu == cpu) {
        queued_bytes -= queued[i].size;
        queued[i] = queued.back();
        queued.pop_back();
      } else {
        ++i;
      }
    }
  }

  void check_invariants() {
    const KernelHeap::Stats& s = heap.stats();
    // Every allocation is either a magazine pop or a host allocation.
    ASSERT_EQ(s.allocs, s.slab_reuses + s.host_allocs);
    // Queued-but-undrained blocks are still live: the owner has not
    // reclaimed them, and their bytes must not be reused yet.
    ASSERT_EQ(heap.live_blocks(), tracked.size() + queued.size());
    ASSERT_EQ(s.bytes_live, tracked_bytes + queued_bytes);
    // Magazines hold exactly the recycled-but-not-reused population.
    std::size_t magazines = 0;
    for (int cpu : kOwnerCpus) magazines += heap.magazine_depth(cpu);
    ASSERT_EQ(magazines, s.slab_recycles - s.slab_reuses);
    ASSERT_EQ(s.rejected_frees, 0u);
    // Every caught double free is ours; none slipped through as a real free.
    ASSERT_EQ(s.double_frees, double_free_attempts);
  }
};

TEST_F(KheapCrossKernelStress, RandomizedInterleavingKeepsLedgerConsistent) {
  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 35) {
      do_alloc();
    } else if (dice < 55) {
      do_free(/*foreign=*/true);  // Linux-side completion IRQ
    } else if (dice < 68) {
      do_free(/*foreign=*/false);  // owner-core free
    } else if (dice < 73) {
      do_double_free();  // duplicate completion IRQ
    } else if (dice < 86) {
      do_drain();  // scheduler tick on one owner core
    } else {
      check_invariants();
    }
    if (HasFatalFailure()) return;
  }

  // Tear down: owner cores free what is still tracked, every queue drains.
  while (!tracked.empty()) do_free(/*foreign=*/false);
  for (int cpu : kOwnerCpus) {
    heap.drain_remote_frees(cpu);
    EXPECT_EQ(heap.remote_queue_depth(cpu), 0u);
  }
  queued.clear();
  queued_bytes = 0;

  check_invariants();
  EXPECT_EQ(heap.live_blocks(), 0u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
  EXPECT_GT(heap.stats().remote_frees, 1000u) << "stress barely exercised the remote path";
  EXPECT_GT(heap.stats().slab_reuses, 1000u) << "stress barely exercised magazine reuse";
}

// The tightest race the design must survive: foreign free → owner drains →
// owner immediately reallocates the same class. The recycled block must
// come back zeroed, hold a fresh pattern, and the reuse must be a magazine
// pop (no host allocation) — the steady state the fast path depends on.
TEST_F(KheapCrossKernelStress, DrainThenAllocReusesBlockWithoutHostAlloc) {
  for (int round = 0; round < 5'000; ++round) {
    const int cpu = random_owner();
    auto addr = heap.kmalloc(192, cpu);
    ASSERT_TRUE(addr.ok());
    LiveBlock b{*addr, 192, cpu};
    fill_block(heap, b);
    check_block(heap, b);
    ASSERT_TRUE(heap.kfree(b.addr, random_linux()).ok());  // IRQ on Linux CPU
    ASSERT_EQ(heap.remote_queue_depth(cpu), 1u);
    ASSERT_EQ(heap.drain_remote_frees(cpu), 1u);

    auto again = heap.kmalloc(192, cpu);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(*again, b.addr) << "drain round " << round << ": magazine should hand the "
                              << "just-recycled block straight back";
    auto span = heap.data(*again);
    ASSERT_EQ(span.size(), 192u);
    for (std::size_t i = 0; i < span.size(); ++i)
      ASSERT_EQ(span[i], 0u) << "recycled block not scrubbed at byte " << i;
    ASSERT_TRUE(heap.kfree(*again, cpu).ok());
  }
  const KernelHeap::Stats& s = heap.stats();
  EXPECT_EQ(s.allocs, 10'000u);
  EXPECT_EQ(s.host_allocs, std::size(kOwnerCpus));  // one cold block per core at most
  EXPECT_EQ(s.slab_reuses, s.allocs - s.host_allocs);
  EXPECT_EQ(s.remote_frees, 5'000u);
  EXPECT_EQ(s.rejected_frees, 0u);
  EXPECT_EQ(heap.live_blocks(), 0u);
  EXPECT_EQ(s.bytes_live, 0u);
}

// Regression: a second kfree() of a block already parked on the remote-free
// queue used to succeed — the block was enqueued twice, remote_frees
// double-counted, and the eventual drain recycled the same address into two
// magazine slots. The state machine must catch it from any CPU.
TEST_F(KheapCrossKernelStress, FreeWhileQueuedIsACaughtDoubleFree) {
  auto addr = heap.kmalloc(192, kOwnerCpus[0]);
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(heap.kfree(*addr, kLinuxCpus[0]).ok());  // completion IRQ enqueues
  ASSERT_EQ(heap.stats().remote_frees, 1u);

  // Duplicate IRQ on another Linux CPU: rejected, not enqueued again.
  EXPECT_EQ(heap.kfree(*addr, kLinuxCpus[1]).error(), Errno::einval);
  // Owner-side free of the queued block is the same double free.
  EXPECT_EQ(heap.kfree(*addr, kOwnerCpus[0]).error(), Errno::einval);
  EXPECT_EQ(heap.stats().remote_frees, 1u) << "double free inflated remote_frees";
  EXPECT_EQ(heap.stats().double_frees, 2u);
  EXPECT_EQ(heap.remote_queue_depth(kOwnerCpus[0]), 1u);

  EXPECT_EQ(heap.drain_remote_frees(kOwnerCpus[0]), 1u);
  // Exactly one copy parked — a doubled enqueue would leave two.
  EXPECT_EQ(heap.magazine_depth(kOwnerCpus[0]), 1u);
  EXPECT_EQ(heap.live_blocks(), 0u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
  // Parked is still not live: freeing it yet again stays a double free.
  EXPECT_EQ(heap.kfree(*addr, kOwnerCpus[0]).error(), Errno::einval);
  EXPECT_EQ(heap.stats().double_frees, 3u);
}

// Regression: data() used to hand out a writable span for a block on the
// remote-free queue — conceptually freed memory the IRQ side could still
// scribble on while the owner raced to drain and reallocate it.
TEST_F(KheapCrossKernelStress, QueuedBlockExposesNoWritableSpan) {
  auto addr = heap.kmalloc(192, kOwnerCpus[1]);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(heap.data(*addr).size(), 192u);
  ASSERT_TRUE(heap.kfree(*addr, kLinuxCpus[0]).ok());
  EXPECT_TRUE(heap.data(*addr).empty()) << "queued block leaked a span";
  ASSERT_EQ(heap.drain_remote_frees(kOwnerCpus[1]), 1u);
  EXPECT_TRUE(heap.data(*addr).empty()) << "parked block leaked a span";
  // Reallocation of the class revives the same block with a fresh span.
  auto again = heap.kmalloc(192, kOwnerCpus[1]);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(*again, *addr);
  EXPECT_EQ(heap.data(*again).size(), 192u);
}

}  // namespace
}  // namespace pd::mem
