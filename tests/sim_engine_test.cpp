// Unit tests for the discrete-event engine: ordering, tie-breaking,
// time advancement, run_until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/time.hpp"
#include "src/sim/engine.hpp"

namespace pd::sim {
namespace {

using namespace pd::time_literals;

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(30_ns, [&] { order.push_back(3); });
  e.schedule_after(10_ns, [&] { order.push_back(1); });
  e.schedule_after(20_ns, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30_ns);
}

TEST(Engine, TiesBreakInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedSchedulingFromHandler) {
  Engine e;
  std::vector<Time> times;
  e.schedule_after(10_ns, [&] {
    times.push_back(e.now());
    e.schedule_after(5_ns, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10_ns);
  EXPECT_EQ(times[1], 15_ns);
}

TEST(Engine, ZeroDelayRunsAtSameTimeAfterQueued) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(1_ns, [&] {
    e.schedule_after(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  e.schedule_after(1_ns, [&] { order.push_back(3); });
  e.run();
  // The zero-delay event lands behind the already-queued same-time event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_after(10_ns, [&] { ++fired; });
  e.schedule_after(20_ns, [&] { ++fired; });
  e.run_until(15_ns);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesClockWhenQueueDrains) {
  Engine e;
  e.schedule_after(3_ns, [] {});
  e.run_until(100_ns);
  EXPECT_EQ(e.now(), 100_ns);
}

TEST(Engine, CountsEvents) {
  Engine e;
  for (int i = 0; i < 17; ++i) e.schedule_after(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 17u);
}

TEST(Engine, StepReturnsFalseWhenIdle) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_after(1_ns, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, DrainsMoveOnlyCallbacks) {
  // ISSUE-6 regression: the old scheduler moved callbacks out of
  // priority_queue::top() via const_cast and required copyability. The
  // event nodes must take (and run) move-only callables directly.
  Engine e;
  std::vector<int> order;
  auto small = std::make_unique<int>(1);
  e.schedule_after(2_ns, [&order, p = std::move(small)] { order.push_back(*p); });
  // A payload bigger than the inline buffer exercises the boxed path.
  struct Big {
    std::unique_ptr<int> p;
    char pad[200];
  };
  Big big{std::make_unique<int>(2), {}};
  e.schedule_after(1_ns, [&order, b = std::move(big)] { order.push_back(*b.p); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(e.stats().boxed_callbacks, 1u);
}

TEST(Engine, DestructorDropsUnrunPayloadsWithoutLeaking) {
  // run_until can leave events queued; their payloads (inline and boxed)
  // must be destroyed — not run — when the engine dies.
  auto ran = std::make_shared<int>(0);
  {
    Engine e;
    e.schedule_after(10_ns, [ran, p = std::make_unique<int>(1)] { *ran += *p; });
    struct Big {
      std::shared_ptr<int> ran;
      std::unique_ptr<int> p;
      char pad[200];
    };
    e.schedule_after(20_ns, [b = Big{ran, std::make_unique<int>(1), {}}] { *b.ran += *b.p; });
    e.schedule_after(1'000'000_us, [ran] { *ran += 100; });  // parked in overflow
    e.run_until(5_ns);
    EXPECT_EQ(*ran, 0);
  }
  EXPECT_EQ(ran.use_count(), 1) << "queued payloads must be destroyed with the engine";
  EXPECT_EQ(*ran, 0) << "dropped payloads must not run";
}

TEST(Engine, FarFutureEventsComeBackInOrder) {
  // Events far beyond the calendar horizon detour through the overflow
  // heap; they must still fire in (t, seq) order once the clock gets there.
  Engine e;
  std::vector<int> order;
  e.schedule_at(from_ms(5'000), [&] { order.push_back(3); });
  e.schedule_at(from_ms(50), [&] { order.push_back(2); });
  e.schedule_at(from_ms(5'000), [&] { order.push_back(4); });  // tie with 3
  e.schedule_after(10_ns, [&] { order.push_back(1); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_GT(e.stats().overflow_parked, 0u);
  EXPECT_EQ(e.now(), from_ms(5'000));
}

TEST(Engine, BackwardScheduleAfterRebaseIsAccepted) {
  // After the calendar re-anchors on a far-future event (a run_until that
  // merely peeks past its deadline), a new event with an earlier — but
  // still >= now — time must be accepted and ordered first: the rebase
  // must not strand the near end of the new year.
  Engine e;
  std::vector<int> order;
  e.schedule_at(from_ms(9'000), [&] { order.push_back(2); });
  e.run_until(1_ns);  // peeking rebases the calendar onto the far-future year
  EXPECT_EQ(e.now(), 0);
  e.schedule_at(5_ns, [&] { order.push_back(1); });  // far below the new base
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.now(), from_ms(9'000));
}

TEST(Engine, ShardedBasics) {
  Engine e;
  e.enable_sharding(4, 1, 10_ns);
  EXPECT_EQ(e.num_shards(), 4);
  EXPECT_TRUE(e.sharded());
  std::vector<std::pair<int, Time>> fired;
  {
    Engine::ShardScope scope(e, 2);
    EXPECT_EQ(e.active_shard(), 2);
    e.schedule_after(5_ns, [&] { fired.emplace_back(e.active_shard(), e.now()); });
    // Cross-shard: beyond the lookahead by contract.
    e.schedule_on(3, 25_ns, [&] { fired.emplace_back(e.active_shard(), e.now()); });
  }
  e.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<int, Time>{2, 5_ns}));
  EXPECT_EQ(fired[1], (std::pair<int, Time>{3, 25_ns}));
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.events_processed(), 2u);
}

}  // namespace
}  // namespace pd::sim
