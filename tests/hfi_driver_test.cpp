// Driver-level unit tests: file-operation edge cases, context lifecycle,
// and the version-independence property (the §3.2 payoff: behaviour and
// performance are identical across vendor releases with shuffled layouts,
// because the fast path binds offsets from debug info).
#include <gtest/gtest.h>

#include "src/apps/proxies.hpp"
#include "src/common/units.hpp"
#include "src/hfi/driver.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd::hfi {
namespace {

using namespace pd::time_literals;

struct DriverFixture {
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric{engine, 1};
  mem::PhysMap phys = mem::PhysMap::knl(256_MiB, 1ull << 30, 2);
  hw::HfiDevice device{engine, fabric, 0};
  os::LinuxKernel linux_kernel{engine, cfg};
  HfiDriver driver{linux_kernel, device, "10.8-0"};
};

TEST(HfiDriverOps, DuplicateContextOpenIsBusy) {
  DriverFixture f;
  os::Process a(f.linux_kernel, f.phys, 0, /*ctxt=*/5, 1);
  os::Process b(f.linux_kernel, f.phys, 0, /*ctxt=*/5, 2);  // same context
  sim::spawn(f.engine, [](os::Process& p1, os::Process& p2) -> sim::Task<> {
    auto fd1 = co_await p1.open(kDeviceName);
    CO_ASSERT_TRUE(fd1.ok());
    auto fd2 = co_await p2.open(kDeviceName);
    EXPECT_EQ(fd2.error(), Errno::ebusy);
  }(a, b));
  f.engine.run();
}

TEST(HfiDriverOps, CloseReleasesContextAndTids) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 3);
  sim::spawn(f.engine, [](DriverFixture& fx, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(64_KiB);
    CO_ASSERT_TRUE(buf.ok());
    TidUpdateArgs args;
    args.vaddr = *buf;
    args.length = 64_KiB;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, kTidUpdate, &args)).ok());
    EXPECT_GT(fx.device.rcv_array().in_use(), 0u);
    EXPECT_GT(p.as().pinned_frame_count(), 0u);
    // Close without TID_FREE: the driver must clean up (unprogram, unpin).
    CO_ASSERT_TRUE((co_await p.close_fd(*fd)).ok());
    EXPECT_EQ(fx.device.rcv_array().in_use(), 0u);
    EXPECT_EQ(p.as().pinned_frame_count(), 0u);
    EXPECT_FALSE(fx.device.context_open(0));
    // The context is reusable after close.
    auto fd2 = co_await p.open(kDeviceName);
    EXPECT_TRUE(fd2.ok());
  }(f, proc));
  f.engine.run();
}

/// Like DriverFixture, but with a caller-supplied Config and an RcvArray
/// small enough (256 entries / 64 contexts = 4 per context) that the
/// per-context TID quota is reachable with a handful of pages.
struct QuotaFixture {
  explicit QuotaFixture(os::Config c) : cfg(std::move(c)) {}
  static hw::HfiConfig small_rcv() {
    hw::HfiConfig hc;
    hc.rcv_array_entries = 256;
    return hc;
  }
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric{engine, 1};
  mem::PhysMap phys = mem::PhysMap::knl(256_MiB, 1ull << 30, 2);
  hw::HfiDevice device{engine, fabric, 0, small_rcv()};
  os::LinuxKernel linux_kernel{engine, cfg};
  HfiDriver driver{linux_kernel, device, "10.8-0"};
};

TEST(HfiDriverOps, TidQuotaEvictionRecyclesOwnShareOnly) {
  // Registration-cache semantics (hfi_tid_quota_evict): a tenant context
  // at its RcvArray quota makes room by unprogramming its *own* LRU entry.
  // A neighbour context's entries and pins must be completely untouched.
  os::Config cfg;
  cfg.hfi_tid_quota_evict = true;
  QuotaFixture f(cfg);
  os::Process tenant(f.linux_kernel, f.phys, 0, /*ctxt=*/0, 1);
  os::Process neighbour(f.linux_kernel, f.phys, 0, /*ctxt=*/1, 2);
  sim::spawn(f.engine, [](QuotaFixture& fx, os::Process& a, os::Process& b) -> sim::Task<> {
    auto fda = co_await a.open(kDeviceName);
    CO_ASSERT_TRUE(fda.ok());
    auto fdb = co_await b.open(kDeviceName);
    CO_ASSERT_TRUE(fdb.ok());

    auto bbuf = co_await b.mmap_anon(8_KiB);
    CO_ASSERT_TRUE(bbuf.ok());
    TidUpdateArgs bargs;
    bargs.vaddr = *bbuf;
    bargs.length = 8_KiB;
    CO_ASSERT_TRUE((co_await b.ioctl(*fdb, kTidUpdate, &bargs)).ok());
    CO_ASSERT_TRUE(bargs.tids.size() == 2u);

    auto abuf = co_await a.mmap_anon(16_KiB);  // exactly the 4-entry quota
    CO_ASSERT_TRUE(abuf.ok());
    TidUpdateArgs aargs;
    aargs.vaddr = *abuf;
    aargs.length = 16_KiB;
    CO_ASSERT_TRUE((co_await a.ioctl(*fda, kTidUpdate, &aargs)).ok());
    CO_ASSERT_TRUE(aargs.tids.size() == 4u);
    EXPECT_EQ(fx.device.rcv_array().in_use(), 6u);

    // One page over quota: the tenant's own oldest entry must make room.
    auto abuf2 = co_await a.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(abuf2.ok());
    TidUpdateArgs aargs2;
    aargs2.vaddr = *abuf2;
    aargs2.length = 4_KiB;
    CO_ASSERT_TRUE((co_await a.ioctl(*fda, kTidUpdate, &aargs2)).ok());

    EXPECT_EQ(fx.linux_kernel.profiler().counter("hfi.tid.quota_evict"), 1u);
    EXPECT_EQ(fx.device.rcv_array().in_use(), 6u) << "net share unchanged: -1 LRU, +1 new";
    EXPECT_EQ(fx.device.rcv_array().entry(aargs.tids[0]), nullptr)
        << "the tenant's oldest entry is the eviction victim";
    for (std::size_t i = 1; i < aargs.tids.size(); ++i) {
      const auto* e = fx.device.rcv_array().entry(aargs.tids[i]);
      CO_ASSERT_TRUE(e != nullptr);
      EXPECT_TRUE(e->valid && e->owner_ctxt == 0) << "younger own entry " << i << " survives";
    }
    for (const auto tid : bargs.tids) {
      const auto* e = fx.device.rcv_array().entry(tid);
      CO_ASSERT_TRUE(e != nullptr);
      EXPECT_TRUE(e->valid && e->owner_ctxt == 1)
          << "neighbour entry " << tid << " must never be an eviction candidate";
    }
    EXPECT_EQ(a.as().pinned_frame_count(), 4u) << "evicted page unpinned, new page pinned";
    EXPECT_EQ(b.as().pinned_frame_count(), 2u) << "neighbour pins untouched";
  }(f, tenant, neighbour));
  f.engine.run();
}

TEST(HfiDriverOps, TidQuotaWithoutEvictionStaysEnospc) {
  // Default policy (hfi_tid_quota_evict off): at quota the registration
  // fails with the transient ENOSPC PSM's TID backoff depends on — no
  // eviction, no leaked pins from the failed call.
  QuotaFixture f(os::Config{});
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 1);
  sim::spawn(f.engine, [](QuotaFixture& fx, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(16_KiB);
    CO_ASSERT_TRUE(buf.ok());
    TidUpdateArgs args;
    args.vaddr = *buf;
    args.length = 16_KiB;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, kTidUpdate, &args)).ok());
    auto buf2 = co_await p.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(buf2.ok());
    TidUpdateArgs args2;
    args2.vaddr = *buf2;
    args2.length = 4_KiB;
    auto r = co_await p.ioctl(*fd, kTidUpdate, &args2);
    EXPECT_EQ(r.error(), Errno::enospc);
    EXPECT_EQ(fx.linux_kernel.profiler().counter("hfi.tid.quota_evict"), 0u);
    EXPECT_EQ(fx.device.rcv_array().in_use(), 4u);
    EXPECT_EQ(p.as().pinned_frame_count(), 4u) << "the rejected call must unpin its pages";
  }(f, proc));
  f.engine.run();
}

TEST(HfiDriverOps, MmapBoundsChecked) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 4);
  sim::spawn(f.engine, [](DriverFixture& fx, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto ok = co_await p.mmap_dev(*fd, 64 * 1024, 0);
    EXPECT_TRUE(ok.ok());
    auto beyond = co_await p.mmap_dev(*fd, 64 * 1024, fx.device.config().csr_size);
    EXPECT_EQ(beyond.error(), Errno::einval);
  }(f, proc));
  f.engine.run();
}

TEST(HfiDriverOps, LseekValidatesArguments) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 5);
  sim::spawn(f.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto ok = co_await p.lseek(*fd, 4096, 0);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(*ok, 4096L);
    EXPECT_EQ((co_await p.lseek(*fd, -1, 0)).error(), Errno::einval);
    EXPECT_EQ((co_await p.lseek(*fd, 0, 7)).error(), Errno::einval);
  }(proc));
  f.engine.run();
}

TEST(HfiDriverOps, WritevNeedsHeaderAndData) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 6);
  sim::spawn(f.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    SdmaReqHeader hdr;
    std::vector<os::IoVec> only_header{
        os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr}};
    EXPECT_EQ((co_await p.writev(*fd, std::move(only_header))).error(), Errno::einval);
  }(proc));
  f.engine.run();
}

TEST(HfiDriverOps, UnknownIoctlRejected) {
  DriverFixture f;
  os::Process proc(f.linux_kernel, f.phys, 0, 0, 7);
  sim::spawn(f.engine, [](os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    EXPECT_EQ((co_await p.ioctl(*fd, 0x9999, nullptr)).error(), Errno::einval);
  }(proc));
  f.engine.run();
}

// --- the §3.2 payoff ---------------------------------------------------------

TEST(VersionIndependence, PerformanceIdenticalAcrossDriverReleases) {
  // Run the same workload against all three shipped driver releases. The
  // layouts shift (verified elsewhere) — but because the PicoDriver binds
  // offsets from debug info, the simulation must be bit-identical.
  auto run_version = [](const char* version) {
    mpirt::ClusterOptions copts;
    copts.nodes = 2;
    copts.mode = os::OsMode::mckernel_hfi;
    copts.driver_version = version;
    copts.mcdram_bytes = 256ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 4;
    mpirt::MpiWorld world(cluster, wopts);
    apps::UmtParams umt;
    umt.steps = 1;
    world.run([umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });
    return std::pair<Dur, std::uint64_t>(world.max_solve(),
                                         cluster.engine().events_processed());
  };
  const auto v108 = run_version("10.8-0");
  const auto v109 = run_version("10.9-5");
  const auto v110 = run_version("11.0-2");
  EXPECT_EQ(v108, v109) << "porting effort across releases must be zero";
  EXPECT_EQ(v109, v110);
  EXPECT_GT(v108.first, 0);
}

}  // namespace
}  // namespace pd::hfi
