// NUMA drain-batching equivalence property (paper §3.3 + SNC-4 placement).
//
// The NUMA-aware kheap changes *where* cold allocations land and *how* the
// remote-free queue is walked (one batch per source socket instead of FIFO
// per block). Neither may change what the allocator *does*: the same op
// sequence driven against a flat-placement heap and a numa_aware heap —
// sharing one multi-socket topology — must reclaim exactly the same blocks
// on every drain, keep byte-identical ledgers, and keep every block's
// pattern intact while live. Only the placement counters and the
// cross-socket event count may differ, and the NUMA heap must never see
// *more* cross-socket events than the flat one.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L property` (also labelled
// `numa`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

#include "src/common/rng.hpp"
#include "src/mem/kheap.hpp"
#include "src/mem/numa_topology.hpp"

namespace pd::mem {
namespace {

// blocked(16, 4): CPUs {0..3}→socket 0, {4..7}→1, {8..11}→2, {12..15}→3.
// Owners sit on sockets 1–3 (never 0); foreign frees come from the Linux
// service CPUs on socket 0 *and* from unowned CPUs on the owner sockets, so
// drains see both remote and same-socket sources.
constexpr int kTotalCpus = 16;
constexpr int kSockets = 4;
constexpr int kOwnerCpus[] = {4, 5, 8, 9, 12, 13};
constexpr int kForeignCpus[] = {0, 1, 2, 3, 6, 10, 14};
constexpr int kOps = 12'000;

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0x5C0CE75ull;
}

std::uint8_t pattern_for(std::size_t slot, std::uint64_t size) {
  return static_cast<std::uint8_t>(slot * 17 ^ size ^ 0xA7);
}

// One block tracked through both heaps. Addresses differ (placement is the
// point under test), so slots pair them up.
struct Slot {
  PhysAddr flat_addr = 0;
  PhysAddr numa_addr = 0;
  std::uint64_t size = 0;
  int owner_cpu = -1;
  std::size_t id = 0;  // stable pattern key across slot-vector shuffles
};

class DrainEquivalenceHarness {
 public:
  explicit DrainEquivalenceHarness(std::uint64_t seed)
      : seed_(seed),
        rng_(seed),
        topo_(NumaTopology::blocked(kTotalCpus, kSockets)),
        flat_(owners(), ForeignFreePolicy::remote_queue, topo_, PartitionBudget{},
              PlacementPolicy::flat),
        numa_(owners(), ForeignFreePolicy::remote_queue, topo_, PartitionBudget{},
              PlacementPolicy::numa_aware) {}

  void run(int ops) {
    for (int op = 0; op < ops && !testing::Test::HasFatalFailure(); ++op) {
      const std::uint64_t dice = rng_.next_below(100);
      if (dice < 38) {
        do_alloc();
      } else if (dice < 58) {
        do_free(/*foreign=*/true);
      } else if (dice < 70) {
        do_free(/*foreign=*/false);
      } else if (dice < 75) {
        do_double_free();
      } else if (dice < 88) {
        do_drain(owner());
      } else {
        check_ledgers();
      }
    }
    if (testing::Test::HasFatalFailure()) return;
    // Settle: free everything locally, drain every owner, final audit.
    while (!live_.empty()) do_free(/*foreign=*/false);
    for (int cpu : kOwnerCpus) do_drain(cpu);
    check_ledgers();
    finish();
  }

 private:
  static std::vector<int> owners() { return {std::begin(kOwnerCpus), std::end(kOwnerCpus)}; }
  int owner() { return kOwnerCpus[rng_.next_below(std::size(kOwnerCpus))]; }
  int foreign() { return kForeignCpus[rng_.next_below(std::size(kForeignCpus))]; }

  std::uint64_t random_size() {
    const std::uint64_t dice = rng_.next_below(100);
    if (dice < 60) return 192;  // SDMA completion metadata
    if (dice < 90) return 1 + rng_.next_below(4096);
    return 4097 + rng_.next_below(8ull * 1024);  // oversized → host path
  }

  void fill(KernelHeap& heap, PhysAddr addr, const Slot& s) {
    auto span = heap.data(addr);
    ASSERT_EQ(span.size(), s.size) << reproducer();
    for (auto& byte : span) byte = pattern_for(s.id, s.size);
  }

  void check_bytes(KernelHeap& heap, PhysAddr addr, const Slot& s) {
    auto span = heap.data(addr);
    ASSERT_EQ(span.size(), s.size) << reproducer();
    const std::uint8_t p = pattern_for(s.id, s.size);
    for (std::size_t i = 0; i < span.size(); ++i)
      ASSERT_EQ(span[i], p) << "slot " << s.id << " byte " << i << " stomped"
                            << reproducer();
  }

  void do_alloc() {
    Slot s;
    s.owner_cpu = owner();
    s.size = random_size();
    s.id = next_id_++;
    auto fa = flat_.kmalloc(s.size, s.owner_cpu);
    auto na = numa_.kmalloc(s.size, s.owner_cpu);
    ASSERT_TRUE(fa.ok()) << reproducer();
    ASSERT_TRUE(na.ok()) << reproducer();
    s.flat_addr = *fa;
    s.numa_addr = *na;
    fill(flat_, s.flat_addr, s);
    fill(numa_, s.numa_addr, s);
    live_.push_back(s);
  }

  void do_free(bool is_foreign) {
    if (live_.empty()) return;
    const std::size_t pick = rng_.next_below(live_.size());
    Slot s = live_[pick];
    live_[pick] = live_.back();
    live_.pop_back();
    check_bytes(flat_, s.flat_addr, s);  // integrity holds right up to the free
    check_bytes(numa_, s.numa_addr, s);
    const int cpu = is_foreign ? foreign() : s.owner_cpu;
    ASSERT_TRUE(flat_.kfree(s.flat_addr, cpu).ok()) << reproducer();
    ASSERT_TRUE(numa_.kfree(s.numa_addr, cpu).ok()) << reproducer();
    if (is_foreign) queued_.push_back(s);
  }

  // Both heaps must reject a free of a queued block identically.
  void do_double_free() {
    if (queued_.empty()) return;
    const Slot& s = queued_[rng_.next_below(queued_.size())];
    const int cpu = rng_.next_below(2) == 0 ? foreign() : s.owner_cpu;
    ASSERT_EQ(flat_.kfree(s.flat_addr, cpu).error(), Errno::einval) << reproducer();
    ASSERT_EQ(numa_.kfree(s.numa_addr, cpu).error(), Errno::einval) << reproducer();
    ASSERT_TRUE(flat_.data(s.flat_addr).empty()) << reproducer();
    ASSERT_TRUE(numa_.data(s.numa_addr).empty()) << reproducer();
  }

  void do_drain(int cpu) {
    ASSERT_EQ(flat_.remote_queue_depth(cpu), numa_.remote_queue_depth(cpu))
        << reproducer();
    const std::size_t flat_got = flat_.drain_remote_frees(cpu);
    const std::size_t numa_got = numa_.drain_remote_frees(cpu);
    // The batched walk must reclaim exactly what the FIFO walk reclaims.
    ASSERT_EQ(flat_got, numa_got) << reproducer();
    std::size_t expected = 0;
    for (std::size_t i = 0; i < queued_.size();) {
      if (queued_[i].owner_cpu == cpu) {
        ++expected;
        queued_[i] = queued_.back();
        queued_.pop_back();
      } else {
        ++i;
      }
    }
    ASSERT_EQ(flat_got, expected) << reproducer();
  }

  void check_ledgers() {
    const KernelHeap::Stats& f = flat_.stats();
    const KernelHeap::Stats& n = numa_.stats();
    ASSERT_EQ(f.allocs, n.allocs) << reproducer();
    ASSERT_EQ(f.local_frees, n.local_frees) << reproducer();
    ASSERT_EQ(f.remote_frees, n.remote_frees) << reproducer();
    ASSERT_EQ(f.double_frees, n.double_frees) << reproducer();
    ASSERT_EQ(f.bytes_live, n.bytes_live) << reproducer();
    // Placement must not perturb the magazine steady state: identical op
    // streams hit / refill per-core magazines identically in both heaps.
    ASSERT_EQ(f.host_allocs, n.host_allocs) << reproducer();
    ASSERT_EQ(f.slab_reuses, n.slab_reuses) << reproducer();
    ASSERT_EQ(f.slab_recycles, n.slab_recycles) << reproducer();
    ASSERT_EQ(flat_.live_blocks(), numa_.live_blocks()) << reproducer();
    ASSERT_EQ(flat_.live_blocks(), live_.size() + queued_.size()) << reproducer();
    // Batching can only shrink the cross-socket event count.
    ASSERT_LE(n.cross_socket_drains, f.cross_socket_drains) << reproducer();
  }

  void finish() {
    ASSERT_EQ(flat_.live_blocks(), 0u) << reproducer();
    ASSERT_EQ(numa_.stats().bytes_live, 0u) << reproducer();
    const KernelHeap::Stats& f = flat_.stats();
    const KernelHeap::Stats& n = numa_.stats();
    EXPECT_GT(f.remote_frees, 500u) << "remote path barely exercised" << reproducer();
    // Placement outcomes: every owner lives on socket 1–3, so the flat
    // heap (everything carved from socket 0) never places near, while the
    // numa heap with unbounded budgets always does.
    EXPECT_EQ(f.near_allocs, 0u) << reproducer();
    EXPECT_EQ(f.far_allocs, f.host_allocs) << reproducer();
    EXPECT_EQ(n.near_allocs, n.host_allocs) << reproducer();
    EXPECT_EQ(n.far_allocs, 0u) << reproducer();
    EXPECT_EQ(n.partition_exhausted, 0u) << reproducer();
    // The headline: per-source-socket batching strictly beats per-block
    // accounting once drains carry multi-block batches, which this op mix
    // guarantees at this scale.
    EXPECT_LT(n.cross_socket_drains, f.cross_socket_drains) << reproducer();
  }

  std::string reproducer() const {
    return "\n  reproduce with PD_PROPERTY_SEED=" + std::to_string(seed_);
  }

  std::uint64_t seed_;
  Rng rng_;
  NumaTopology topo_;
  KernelHeap flat_;
  KernelHeap numa_;
  std::vector<Slot> live_;
  std::vector<Slot> queued_;  // foreign-freed, awaiting the owner's drain
  std::size_t next_id_ = 0;
};

TEST(KheapNumaProperty, BatchedDrainIsEquivalentToFlatDrain) {
  const std::uint64_t seed = harness_seed();
  std::printf("kheap numa equivalence: PD_PROPERTY_SEED=%llu (%d ops)\n",
              static_cast<unsigned long long>(seed), kOps);
  DrainEquivalenceHarness h(seed);
  h.run(kOps);
}

// Breadth: extra fixed seeds keep running even when PD_PROPERTY_SEED pins
// the main harness to a reproducer.
TEST(KheapNumaProperty, FixedSeedsStayEquivalent) {
  for (std::uint64_t seed : {std::uint64_t{0xBA7C4ull}, std::uint64_t{7}}) {
    DrainEquivalenceHarness h(splitmix64(seed));
    h.run(4'000);
    if (testing::Test::HasFatalFailure()) return;
  }
}

// Deterministic worked example of the figure of merit: eight completion
// blocks freed from two remote sockets cost the flat drain eight
// cross-socket events (one cache-line pull per block) but the batched
// drain only two (one per source socket).
TEST(KheapNumaDrain, DrainCoalescesPerSourceSocket) {
  const NumaTopology topo = NumaTopology::blocked(kTotalCpus, kSockets);
  KernelHeap flat({4}, ForeignFreePolicy::remote_queue, topo, PartitionBudget{},
                  PlacementPolicy::flat);
  KernelHeap numa({4}, ForeignFreePolicy::remote_queue, topo, PartitionBudget{},
                  PlacementPolicy::numa_aware);
  for (KernelHeap* heap : {&flat, &numa}) {
    std::vector<PhysAddr> blocks;
    for (int i = 0; i < 8; ++i) {
      auto a = heap->kmalloc(192, 4);
      ASSERT_TRUE(a.ok());
      blocks.push_back(*a);
    }
    for (int i = 0; i < 8; ++i) {
      // Alternate source sockets 0 and 2 (CPUs 0 and 10); owner is socket 1.
      ASSERT_TRUE(heap->kfree(blocks[static_cast<std::size_t>(i)], i % 2 == 0 ? 0 : 10).ok());
    }
    EXPECT_EQ(heap->drain_remote_frees(4), 8u);
  }
  EXPECT_EQ(flat.stats().cross_socket_drains, 8u);
  EXPECT_EQ(numa.stats().cross_socket_drains, 2u);
}

// Same-socket foreign frees are not cross-socket traffic under either walk:
// CPU 6 shares socket 1 with the owner CPU 4.
TEST(KheapNumaDrain, SameSocketForeignFreeIsNotCrossSocket) {
  const NumaTopology topo = NumaTopology::blocked(kTotalCpus, kSockets);
  for (const PlacementPolicy placement :
       {PlacementPolicy::flat, PlacementPolicy::numa_aware}) {
    KernelHeap heap({4}, ForeignFreePolicy::remote_queue, topo, PartitionBudget{},
                    placement);
    auto a = heap.kmalloc(192, 4);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(heap.kfree(*a, 6).ok());
    EXPECT_EQ(heap.drain_remote_frees(4), 1u);
    EXPECT_EQ(heap.stats().cross_socket_drains, 0u);
  }
}

// Partition capacity model: a starved near budget falls back to the home
// socket's far partition — allocations keep succeeding, the exhaustion is
// counted, and frees return budget bytes.
TEST(KheapNumaPartitions, NearExhaustionFallsBackToFar) {
  const NumaTopology topo = NumaTopology::blocked(8, 2);
  // 8 KiB near budget: exactly one oversized 8 KiB block fits near.
  KernelHeap heap({4, 5, 6, 7}, ForeignFreePolicy::remote_queue, topo,
                  PartitionBudget{8 * 1024, 1ull << 30}, PlacementPolicy::numa_aware);
  std::vector<PhysAddr> addrs;
  for (int i = 0; i < 16; ++i) {
    auto a = heap.kmalloc(8 * 1024, 4);  // oversized → every alloc carves
    ASSERT_TRUE(a.ok()) << "far fallback must keep allocation " << i << " served";
    addrs.push_back(*a);
  }
  const KernelHeap::Stats& s = heap.stats();
  EXPECT_EQ(s.near_allocs, 1u);
  EXPECT_EQ(s.far_allocs, 15u);
  EXPECT_EQ(s.partition_exhausted, 15u);
  EXPECT_EQ(heap.near_used(1), 8u * 1024);
  EXPECT_EQ(heap.far_used(1), 15u * 8 * 1024);
  // Oversized blocks go back to the host on free: budgets drain to zero.
  for (PhysAddr a : addrs) ASSERT_TRUE(heap.kfree(a, 4).ok());
  EXPECT_EQ(heap.near_used(1), 0u);
  EXPECT_EQ(heap.far_used(1), 0u);
}

// When the home socket's partitions are both exhausted the carve spills to
// the other sockets' slices before failing with ENOMEM.
TEST(KheapNumaPartitions, ExhaustedHomeSpillsThenFails) {
  const NumaTopology topo = NumaTopology::blocked(8, 2);
  KernelHeap heap({4}, ForeignFreePolicy::remote_queue, topo,
                  PartitionBudget{8 * 1024, 8 * 1024}, PlacementPolicy::numa_aware);
  // Four 8 KiB slices exist (near/far × 2 sockets); the fifth carve fails.
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(heap.kmalloc(8 * 1024, 4).ok()) << "slice " << i;
  EXPECT_EQ(heap.kmalloc(8 * 1024, 4).error(), Errno::enomem);
  EXPECT_EQ(heap.stats().near_allocs, 1u);
  EXPECT_EQ(heap.stats().far_allocs, 3u);
}

}  // namespace
}  // namespace pd::mem
