#include "src/pico/hfi_picodriver.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/log.hpp"

namespace pd::pico {

using namespace pd::time_literals;

Result<std::unique_ptr<HfiPicoDriver>> HfiPicoDriver::create(os::McKernel& mck,
                                                             hfi::HfiDriver& driver) {
  // The structures and fields the fast path touches — nothing more. These
  // are the "less than 3K SLOC" worth of driver internals (§3).
  const std::vector<StructRequest> requests = {
      {"sdma_engine", {"this_idx", "descq_submitted", "state"}},
      {"sdma_state", {"current_state", "go_s99_running"}},
      {"hfi1_filedata", {"ctxt", "sdma_engine_idx", "tid_used"}},
      {"hfi1_ctxtdata", {"expected_base", "expected_count"}},
  };
  const os::SharedSpinlock* lock =
      driver.device().num_engines() > 0 ? &driver.engine_lock(0) : nullptr;
  auto binding = bind_checked(mck, driver.linux_kernel(), driver.module_binary(),
                              requests, lock);
  if (!binding.ok()) return binding.error();

  auto pico = std::unique_ptr<HfiPicoDriver>(
      new HfiPicoDriver(std::move(*binding), mck, driver));

  os::FastPathOps ops;
  HfiPicoDriver* raw = pico.get();
  ops.writev = [raw](os::OpenFile& f, std::span<const os::IoVec> iov) {
    return raw->fast_writev(f, iov);
  };
  ops.ioctl = [raw](os::OpenFile& f, unsigned long cmd, void* arg) {
    return raw->fast_ioctl(f, cmd, arg);
  };
  ops.ioctl_handles = [](unsigned long cmd) { return hfi::is_tid_cmd(cmd); };
  raw->install(driver, std::move(ops));
  return pico;
}

HfiPicoDriver::HfiPicoDriver(PicoBinding binding, os::McKernel& mck, hfi::HfiDriver& driver)
    : FastPathPort(std::move(binding), mck), driver_(driver) {
  const dwarf::StructLayout* eng = binding_.layout("sdma_engine");
  const dwarf::StructLayout* state = binding_.layout("sdma_state");
  const dwarf::StructLayout* fd = binding_.layout("hfi1_filedata");
  const dwarf::StructLayout* cd = binding_.layout("hfi1_ctxtdata");
  assert(eng && state && fd && cd);
  eng_this_idx_ = dwarf::FieldAccessor<std::uint32_t>(*eng->field("this_idx"));
  eng_descq_submitted_ = dwarf::FieldAccessor<std::uint64_t>(*eng->field("descq_submitted"));
  state_offset_in_engine_ = eng->field("state")->offset;
  state_current_ = dwarf::FieldAccessor<std::uint32_t>(*state->field("current_state"));
  fd_engine_idx_ = dwarf::FieldAccessor<std::uint32_t>(*fd->field("sdma_engine_idx"));
  fd_tid_used_ = dwarf::FieldAccessor<std::uint64_t>(*fd->field("tid_used"));
  cd_expected_count_ = dwarf::FieldAccessor<std::uint32_t>(*cd->field("expected_count"));
}

hfi::SdmaStates HfiPicoDriver::engine_state(int engine_id) const {
  // Unified direct map: the LWK dereferences the Linux kmalloc'd image.
  auto bytes = driver_.linux_kernel().kheap().data(driver_.sdma_engine_image(engine_id));
  assert(!bytes.empty());
  const std::uint32_t raw =
      state_current_.read(bytes.data() + state_offset_in_engine_);
  return static_cast<hfi::SdmaStates>(raw);
}

sim::Task<Result<long>> HfiPicoDriver::fast_writev(os::OpenFile& f,
                                                   std::span<const os::IoVec> iov) {
  ++fast_writevs_;
  const os::Config& cfg = mck_.config();
  if (f.driver_ctx == nullptr || iov.size() < 2) co_return Errno::einval;
  auto* hdr = reinterpret_cast<hfi::SdmaReqHeader*>(iov[0].base);
  if (hdr == nullptr) co_return Errno::efault;

  // Scheduler-tick housekeeping piggybacked on fast-path entry: reclaim
  // blocks the Linux IRQ side queued for our cores (straight back onto the
  // per-core slab magazines).
  piggyback_drain();

  os::Process& proc = *f.proc;
  mem::AddressSpace& as = proc.as();

  // Engine and per-file state via extracted offsets only.
  auto fd_bytes = driver_.linux_kernel().kheap().data(driver_.filedata_image(f));
  if (fd_bytes.empty()) co_return Errno::einval;
  const int engine_id = static_cast<int>(fd_engine_idx_.read(fd_bytes.data()));
  if (engine_state(engine_id) != hfi::SdmaStates::s99_running) {
    // Engine not running (reset in progress): fall back to the Linux path.
    count_fallback();
    co_return co_await driver_.writev(f, iov);
  }

  // Translation through the per-file extent cache: repeated sends of the
  // same pinned buffer skip the page-table walk; only cold or invalidated
  // ranges are re-walked. Descriptors build into an arena-pooled buffer.
  mem::ExtentCache& cache = extent_cache_for(f);
  std::vector<hw::SdmaDescriptor> descs = desc_arena_.take();
  // Every iov range looked up so far stays pinned in the cache until this
  // call finishes (including every error/fallback exit): an in-flight
  // rendezvous window must never be the victim of a concurrent send's
  // eviction while its extents are being wired into descriptors.
  std::size_t pinned_upto = 0;
  auto unpin_all = [&] {
    for (std::size_t i = 1; i <= pinned_upto; ++i)
      cache.unpin(iov[i].base, iov[i].len, cfg.pico_sdma_desc_bytes);
    pinned_upto = 0;
  };
  auto bail = [&](Errno err) {
    unpin_all();
    desc_arena_.recycle(std::move(descs));
    return err;
  };
  std::uint64_t total_bytes = 0;
  std::uint64_t walked_pages = 0;
  std::uint64_t cached_ranges = 0;
  for (std::size_t i = 1; i < iov.size(); ++i) {
    const mem::Vma* vma = as.find_vma(iov[i].base);
    if (vma == nullptr || !vma->pinned) co_return bail(Errno::efault);
    mem::ExtentCache::Outcome outcome;
    auto extents = cache.lookup(as, iov[i].base, iov[i].len, cfg.pico_sdma_desc_bytes, &outcome);
    if (!extents.ok()) co_return bail(extents.error());
    (void)cache.pin(iov[i].base, iov[i].len, cfg.pico_sdma_desc_bytes);
    pinned_upto = i;
    note_cache_outcome(outcome);
    if (outcome == mem::ExtentCache::Outcome::hit)
      ++cached_ranges;
    else
      walked_pages += mem::page_ceil(iov[i].len, mem::kPage4K) / mem::kPage4K;
    // The span is only valid until the next lookup — consume it right away.
    for (const auto& e : *extents)
      descs.push_back(hw::SdmaDescriptor{e.pa, static_cast<std::uint32_t>(e.len)});
    total_bytes += iov[i].len;
  }
  if (descs.empty()) co_return bail(Errno::einval);
  co_await mck_.engine().delay(static_cast<Dur>(walked_pages) * cfg.ptw_per_page +
                               static_cast<Dur>(cached_ranges) * cfg.pico_extent_cache_hit +
                               cfg.sdma_submit_base +
                               static_cast<Dur>(descs.size()) * cfg.sdma_submit_per_desc);

  // Submission critical section under the driver's own per-engine
  // spin-lock — the §3.3 cross-kernel lock, literally shared with the
  // Linux path (ABI compatibility was checked at bind time).
  os::SharedSpinlock& lock = driver_.engine_lock(engine_id);
  co_await lock.acquire();
  hw::SdmaEngine& engine = driver_.device().engine(engine_id);

  // Ring backpressure: bounded exponential backoff instead of an unbounded
  // poll loop under the shared lock. If the ring stays full past the last
  // attempt, give the lock back and take the Linux path — the proxy-side
  // driver already knows how to wait without starving the other kernel.
  int attempt = 0;
  while (engine.ring_free() < descs.size()) {
    if (attempt >= cfg.pico_ring_backoff_attempts) {
      lock.release();
      count_ring_full_fallback();
      unpin_all();
      desc_arena_.recycle(std::move(descs));
      co_return co_await driver_.writev(f, iov);
    }
    Dur backoff = cfg.pico_ring_backoff_base * (Dur{1} << std::min(attempt, 20));
    if (cfg.pico_ring_backoff_cap > 0) backoff = std::min(backoff, cfg.pico_ring_backoff_cap);
    co_await mck_.engine().delay(backoff);
    ++attempt;
  }

  // Completion metadata in the *LWK* heap, owned by this rank's core.
  auto meta = kmalloc_meta(192, lwk_cpu_for(proc));
  if (!meta.ok()) {
    lock.release();
    co_return bail(Errno::enomem);
  }

  // Cross-kernel shared state: bump the same descq_submitted counter the
  // Linux driver maintains, through the extracted offset.
  auto eng_bytes = driver_.linux_kernel().kheap().data(driver_.sdma_engine_image(engine_id));
  eng_descq_submitted_.write(eng_bytes.data(),
                             eng_descq_submitted_.read(eng_bytes.data()) + descs.size());

  hw::SdmaRequest req;
  req.descriptors = std::move(descs);
  req.header = hdr->wire;
  req.header.payload_bytes = total_bytes;
  // Arena hook: the engine returns the descriptor storage once consumed.
  req.recycle_descriptors = [this](std::vector<hw::SdmaDescriptor>&& buf) {
    desc_arena_.recycle(std::move(buf));
  };

  // The duplicated completion callback (§3.3): lives in McKernel TEXT,
  // executes on a Linux CPU, and its deallocation routine is McKernel's —
  // kfree from a foreign CPU goes to the remote-free queue.
  auto user_done = hdr->on_complete;
  os::LinuxKernel* lnx = &driver_.linux_kernel();
  os::KernelCallback cleanup = remote_free_cleanup(*meta);
  os::KernelCallback notify = binding_.lwk_callback(user_done);
  req.on_complete = [lnx, cleanup = std::move(cleanup), notify = std::move(notify)]() {
    lnx->raise_irq({cleanup, notify});
  };

  Status s = engine.submit(std::move(req));
  assert(s.ok());
  (void)s;
  lock.release();
  unpin_all();
  co_return static_cast<long>(total_bytes);
}

sim::Task<Result<long>> HfiPicoDriver::fast_ioctl(os::OpenFile& f, unsigned long cmd,
                                                  void* arg) {
  const os::Config& cfg = mck_.config();
  if (f.driver_ctx == nullptr) co_return Errno::einval;
  mem::AddressSpace& as = f.proc->as();

  switch (cmd) {
    case hfi::kTidUpdate: {
      ++fast_tid_updates_;
      auto* args = static_cast<hfi::TidUpdateArgs*>(arg);
      if (args == nullptr || args->length == 0) co_return Errno::einval;
      const mem::Vma* vma = as.find_vma(args->vaddr);
      if (vma == nullptr || !vma->pinned) co_return Errno::efault;

      // Contiguity-aware registration: one RcvArray entry per physically
      // contiguous extent (up to 2 MiB), instead of one per 4 KiB page.
      // Re-registrations of the same pinned window hit the extent cache
      // and skip the walk entirely (the TID-cache amortization).
      mem::ExtentCache::Outcome outcome;
      auto cached = extent_cache_for(f).lookup(as, args->vaddr, args->length,
                                               mem::kPage2M, &outcome);
      if (!cached.ok()) co_return cached.error();
      note_cache_outcome(outcome);
      // The cached span only lives until the next lookup, and this path
      // suspends below — copy the few extents out (registration is not the
      // per-send hot path; the walk, not this copy, is what the cache saves).
      const std::vector<mem::PhysExtent> extents(cached->begin(), cached->end());
      const Dur translate_cost =
          outcome == mem::ExtentCache::Outcome::hit
              ? cfg.pico_extent_cache_hit
              : static_cast<Dur>(mem::page_ceil(args->length, mem::kPage4K) / mem::kPage4K) *
                    cfg.ptw_per_page;
      co_await mck_.engine().delay(translate_cost);

      auto fd_bytes = driver_.linux_kernel().kheap().data(driver_.filedata_image(f));
      auto cd_bytes = driver_.linux_kernel().kheap().data(driver_.ctxtdata_image(f));
      const std::uint64_t quota = cd_expected_count_.read(cd_bytes.data());
      if (extents.size() > quota) co_return Errno::enospc;
      // Same per-tenant reclamation policy as the Linux path: at quota the
      // context recycles its own LRU registrations (shared FileCtx
      // bookkeeping, so fast- and slow-path entries age in one list) and
      // never reaches into a neighbour context's RcvArray share.
      while (fd_tid_used_.read(fd_bytes.data()) + extents.size() > quota) {
        if (!cfg.hfi_tid_quota_evict) co_return Errno::enospc;
        co_await mck_.engine().delay(cfg.tid_program_per_entry);
        auto freed = driver_.evict_lru_tid(f);
        if (!freed.ok()) co_return Errno::enospc;
        mck_.profiler().bump("pico.tid.quota_evict");
      }

      co_await mck_.engine().delay(cfg.tid_program_base +
                                   static_cast<Dur>(extents.size()) *
                                       cfg.tid_program_per_entry);
      for (const auto& e : extents) {
        auto tid = driver_.device().rcv_array().program(f.ctxt, e.pa, e.len);
        if (!tid.ok()) {
          for (const std::uint32_t t : args->tids) {
            (void)driver_.device().rcv_array().unprogram(f.ctxt, t);
            (void)driver_.release_tid_pin(f, t);
          }
          args->tids.clear();
          co_return tid.error();
        }
        args->tids.push_back(*tid);
        // LWK memory is already pinned; record an empty pin set so the
        // shared TID bookkeeping (and TID_FREE) stays symmetric.
        (void)driver_.account_tid_pin(f, *tid, mem::PinnedPages{});
      }
      fd_tid_used_.write(fd_bytes.data(),
                         fd_tid_used_.read(fd_bytes.data()) + extents.size());
      co_return static_cast<long>(args->tids.size());
    }

    case hfi::kTidFree: {
      ++fast_tid_frees_;
      auto* args = static_cast<hfi::TidFreeArgs*>(arg);
      if (args == nullptr) co_return Errno::einval;
      co_await mck_.engine().delay(cfg.tid_program_base / 2 +
                                   static_cast<Dur>(args->tids.size()) *
                                       cfg.tid_program_per_entry / 2);
      auto fd_bytes = driver_.linux_kernel().kheap().data(driver_.filedata_image(f));
      std::uint64_t released = 0;
      for (const std::uint32_t tid : args->tids) {
        if (!driver_.device().rcv_array().unprogram(f.ctxt, tid).ok())
          co_return Errno::einval;
        auto pins = driver_.release_tid_pin(f, tid);
        if (pins.ok() && !pins->frames.empty()) as.put_user_pages(*pins);
        ++released;
      }
      fd_tid_used_.write(fd_bytes.data(), fd_tid_used_.read(fd_bytes.data()) - released);
      co_return 0L;
    }

    case hfi::kTidInvalRead:
      co_await mck_.engine().delay(cfg.driver_poll_cost / 2);
      co_return 0L;

    default:
      // Not a fast-path command; McKernel should not have routed it here.
      count_fallback();
      co_return Errno::einval;
  }
}

}  // namespace pd::pico
