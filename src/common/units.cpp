#include "src/common/units.hpp"

#include <cstdio>

namespace pd {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= 1_MiB && bytes % 1_MiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluM", static_cast<unsigned long long>(bytes / 1_MiB));
  } else if (bytes >= 1_KiB && bytes % 1_KiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluK", static_cast<unsigned long long>(bytes / 1_KiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f MB/s", bytes_per_sec / 1e6);
  return buf;
}

}  // namespace pd
