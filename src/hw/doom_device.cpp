#include "src/hw/doom_device.hpp"

#include <algorithm>
#include <cassert>

namespace pd::hw {

DoomDevice::DoomDevice(sim::Engine& engine, int node_id, DoomConfig config)
    : engine_(engine),
      node_id_(node_id),
      config_(config),
      ring_slots_free_(config.ring_slots),
      work_signal_(engine) {
  sim::spawn(engine_, run());
}

Status DoomDevice::create_context(int ctx) {
  if (ctx < 0) return Errno::einval;
  if (page_tables_.count(ctx) > 0) return Errno::ebusy;
  page_tables_.emplace(ctx, PageTable{});
  return Status::success();
}

Status DoomDevice::destroy_context(int ctx) {
  if (page_tables_.erase(ctx) == 0) return Errno::enoent;
  return Status::success();
}

Status DoomDevice::map_pte(int ctx, std::uint64_t dva, mem::PhysAddr pa, std::uint64_t len) {
  auto it = page_tables_.find(ctx);
  if (it == page_tables_.end()) return Errno::enoent;
  if (len == 0 || len > config_.max_pte_bytes) return Errno::einval;
  PageTable& pt = it->second;
  if (pt.entries.size() >= config_.pt_entries_per_ctx) return Errno::enospc;
  auto pos = std::lower_bound(pt.entries.begin(), pt.entries.end(), dva,
                              [](const Pte& e, std::uint64_t v) { return e.dva < v; });
  if (pos != pt.entries.end() && pos->dva < dva + len) return Errno::eexist;
  if (pos != pt.entries.begin() && std::prev(pos)->dva + std::prev(pos)->len > dva)
    return Errno::eexist;
  pt.entries.insert(pos, Pte{dva, pa, len, false});
  return Status::success();
}

Result<std::uint32_t> DoomDevice::unmap_range(int ctx, std::uint64_t dva, std::uint64_t len) {
  auto it = page_tables_.find(ctx);
  if (it == page_tables_.end()) return Errno::enoent;
  PageTable& pt = it->second;
  std::uint32_t removed = 0;
  std::erase_if(pt.entries, [&](const Pte& e) {
    const bool covered = e.dva >= dva && e.dva + e.len <= dva + len;
    removed += covered ? 1 : 0;
    return covered;
  });
  return removed;
}

std::uint32_t DoomDevice::pt_entries_used(int ctx) const {
  auto it = page_tables_.find(ctx);
  return it == page_tables_.end() ? 0 : static_cast<std::uint32_t>(it->second.entries.size());
}

Status DoomDevice::push(const DoomCommand& cmd) {
  if (cmd.op != DoomOp::fence && cmd.bytes == 0) return Errno::einval;
  if (ring_slots_free_ == 0) return Errno::eagain;
  --ring_slots_free_;
  ring_.push_back(cmd);
  return Status::success();
}

void DoomDevice::doorbell() {
  ++doorbells_;
  work_signal_.send(1);
}

Status DoomDevice::poison_pte(int ctx, std::uint64_t dva) {
  auto it = page_tables_.find(ctx);
  if (it == page_tables_.end()) return Errno::enoent;
  for (auto& e : it->second.entries) {
    if (dva >= e.dva && dva < e.dva + e.len) {
      e.poisoned = true;
      return Status::success();
    }
  }
  return Errno::enoent;
}

void DoomDevice::inject_ring_stall(bool stalled) {
  const bool resuming = stalled_ && !stalled;
  stalled_ = stalled;
  // The consumer may be parked on the work signal with commands queued; a
  // clearing stall behaves like the hardware un-wedging itself.
  if (resuming && !ring_.empty()) work_signal_.send(1);
}

Status DoomDevice::resolve(int ctx, std::uint64_t dva, std::uint64_t bytes) {
  auto it = page_tables_.find(ctx);
  if (it == page_tables_.end()) return Errno::efault;
  std::uint64_t cursor = dva;
  const std::uint64_t end = dva + bytes;
  for (const Pte& e : it->second.entries) {
    if (cursor >= end) break;
    if (e.dva + e.len <= cursor) continue;
    if (e.dva > cursor) return Errno::efault;  // hole before the cursor
    if (e.poisoned) return Errno::efault;
    cursor = e.dva + e.len;
  }
  return cursor >= end ? Status::success() : Errno::efault;
}

sim::Task<> DoomDevice::run() {
  while (true) {
    (void)co_await work_signal_.recv();
    while (!ring_.empty()) {
      if (stalled_) break;  // wedged: resume via inject_ring_stall(false)
      const DoomCommand cmd = ring_.front();
      ring_.pop_front();

      co_await engine_.delay(config_.per_command_overhead);
      if (cmd.op == DoomOp::fence) {
        ++ring_slots_free_;
        ++commands_retired_;
        ++fences_retired_;
        last_retired_seq_ = std::max(last_retired_seq_, cmd.seq);
        if (lost_irq_budget_ > 0) {
          --lost_irq_budget_;
          ++irqs_lost_;  // seq advanced, callback swallowed
        } else if (completion_) {
          completion_(cmd.seq);
        }
        continue;
      }

      if (cmd.op == DoomOp::copy_rect) {
        // Source fetch through the context's DMA page table.
        Status ok = resolve(cmd.ctx, cmd.dva, cmd.bytes);
        if (!ok.ok()) {
          ++pte_faults_;
          faulted_ = true;  // parks sticky; software must reset
          ++ring_slots_free_;
          ++commands_retired_;
          continue;
        }
        co_await engine_.delay(transfer_time(cmd.bytes, config_.dma_read_bytes_per_sec));
        dma_bytes_ += cmd.bytes;
      }
      ++ring_slots_free_;
      ++commands_retired_;
    }
  }
}

}  // namespace pd::hw
