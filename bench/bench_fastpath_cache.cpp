// Micro-bench: the allocation-free fast path's host-side memory pipeline.
//
// Steady-state SDMA sends of the *same* pinned buffer pay, per call:
//   baseline   — a full page-table walk into a freshly allocated extent
//                vector, a freshly grown descriptor vector, and a
//                map-per-block kmalloc/kfree of the 192-byte completion
//                metadata (the pre-slab heap);
//   optimized  — an ExtentCache hit (no walk), descriptor build into an
//                arena-recycled vector, and a slab-magazine kmalloc/kfree.
//
// The bench measures both pipelines on a repeated-buffer workload and
// counts real heap allocations per call via a replaced operator new, then
// emits BENCH_fastpath.json. It fails (non-zero exit) if the optimized
// pipeline is less than 2x faster or still allocates in steady state —
// the acceptance bar for the fast-path cache work.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/extent_cache.hpp"
#include "src/mem/kheap.hpp"
#include "src/mem/phys.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Count every host heap allocation the pipelines make. Replacing the
// global allocation functions in the binary is the only way to see the
// vector/map/unique_ptr traffic without instrumenting each container.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pd;
using namespace pd::mem;

constexpr std::uint64_t kBufBytes = 256_KiB;
constexpr std::uint64_t kDescCap = 10240;  // HFI SDMA descriptor limit
constexpr int kLwkCpu = 60;
constexpr int kLinuxCpu = 0;

struct PipelineResult {
  double ops_per_sec = 0;
  double allocs_per_op = 0;   // steady state, after warmup
  std::uint64_t ops = 0;
};

struct Descriptor {  // stand-in for hw::SdmaDescriptor (pa, len)
  PhysAddr pa;
  std::uint32_t len;
};

/// One send's host-side work, baseline flavour: allocating walk, fresh
/// descriptor vector, map-per-block completion metadata.
std::uint64_t baseline_op(const AddressSpace& as, VirtAddr va, KernelHeap& heap) {
  auto extents = as.physical_extents(va, kBufBytes, kDescCap);
  if (!extents.ok()) std::abort();
  std::vector<Descriptor> descs;
  for (const auto& e : *extents)
    descs.push_back({e.pa, static_cast<std::uint32_t>(e.len)});
  auto meta = heap.kmalloc(192, kLwkCpu);
  if (!meta.ok()) std::abort();
  if (!heap.kfree(*meta, kLinuxCpu).ok()) std::abort();  // completion IRQ side
  (void)heap.drain_remote_frees(kLwkCpu);                // next scheduler tick
  return descs.size();
}

/// Same work, optimized flavour: extent-cache lookup, arena-recycled
/// descriptor vector, slab-magazine metadata.
std::uint64_t cached_op(const AddressSpace& as, VirtAddr va, ExtentCache& cache,
                        std::vector<Descriptor>& descs, KernelHeap& heap) {
  auto extents = cache.lookup(as, va, kBufBytes, kDescCap);
  if (!extents.ok()) std::abort();
  descs.clear();
  for (const auto& e : *extents)
    descs.push_back({e.pa, static_cast<std::uint32_t>(e.len)});
  auto meta = heap.kmalloc(192, kLwkCpu);
  if (!meta.ok()) std::abort();
  if (!heap.kfree(*meta, kLinuxCpu).ok()) std::abort();
  (void)heap.drain_remote_frees(kLwkCpu);
  return descs.size();
}

/// Mixed-lifetime workload (the thrash case PR 1's cache collapsed on): one
/// persistent MPI window re-sent every iteration while small transient
/// buffers churn through mmap → send → munmap around it. "Precise" is the
/// current design (unmap-interval log + size-aware eviction); "coarse"
/// emulates the PR-1 cache (log capacity 0 → every munmap invalidates the
/// whole space; pure LRU). The figure of merit is the persistent window's
/// hit rate — precise must keep it, coarse collapses it to ~0.
struct MixedResult {
  double window_hit_rate = 0;
  double ops_per_sec = 0;  // full iterations (1 window send + churn) per sec
  std::uint64_t window_hits = 0;
  std::uint64_t range_invalidations = 0;
  std::uint64_t generation_overflows = 0;
  std::uint64_t evictions = 0;
};

MixedResult run_mixed(bool precise, std::uint64_t iters) {
  constexpr int kTransientsPerIter = 10;
  constexpr std::uint64_t kTransientBytes = 8_KiB;

  PhysMap phys = PhysMap::knl(512ull << 20, 1ull << 30, 2);
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, 0x2000'0000ull, 43);
  as.set_unmap_log_capacity(precise ? AddressSpace::kDefaultUnmapLogCapacity : 0);
  ExtentCache cache(8, precise ? ExtentCache::EvictionPolicy::size_aware
                               : ExtentCache::EvictionPolicy::lru);

  auto win = as.mmap_anonymous(kBufBytes, kProtRead | kProtWrite);
  if (!win.ok()) std::abort();

  MixedResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    ExtentCache::Outcome outcome = ExtentCache::Outcome::miss;
    auto extents = cache.lookup(as, *win, kBufBytes, kDescCap, &outcome);
    if (!extents.ok()) std::abort();
    if (outcome == ExtentCache::Outcome::hit) ++r.window_hits;
    for (int t = 0; t < kTransientsPerIter; ++t) {
      auto tva = as.mmap_anonymous(kTransientBytes, kProtRead | kProtWrite);
      if (!tva.ok()) std::abort();
      auto te = cache.lookup(as, *tva, kTransientBytes, kDescCap);
      if (!te.ok()) std::abort();
      if (!as.munmap(*tva, kTransientBytes).ok()) std::abort();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  r.window_hit_rate = static_cast<double>(r.window_hits) / static_cast<double>(iters);
  r.ops_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.range_invalidations = cache.stats().range_invalidations;
  r.generation_overflows = cache.stats().generation_overflows;
  r.evictions = cache.stats().evictions;
  return r;
}

/// Cross-socket SDMA-completion-heavy workload: one LWK owner core per SNC
/// quadrant sends a burst every iteration, and every completion IRQ lands
/// on a quadrant-0 Linux service CPU — so three of the four owners' drains
/// pull remote-socket blocks each tick. "flat" is the placement-ignorant
/// heap (per-block cross-socket accounting, socket-0 arenas); "numa" places
/// each refill in the owner's near partition and drains one batch per
/// source socket. The figure of merit is cross-socket reclaim events per
/// iteration at an unchanged (zero) steady-state host-allocation rate.
struct NumaResult {
  double iters_per_sec = 0;
  double heap_allocs_per_iter = 0;       // steady state, after warmup
  double cross_drains_per_iter = 0;
  std::uint64_t blocks_reclaimed = 0;    // timed region
  std::uint64_t near_allocs = 0;         // whole run (cold path only)
  std::uint64_t far_allocs = 0;
};

NumaResult run_numa(bool numa_aware, std::uint64_t iters) {
  constexpr int kOwners[] = {8, 25, 42, 59};  // one per KNL quadrant
  constexpr int kIrqCpus[] = {0, 1, 2, 3};    // all quadrant 0
  constexpr int kBlocksPerOwner = 8;          // one completion burst
  constexpr std::uint64_t kWarmup = 32;

  const NumaTopology topo = NumaTopology::blocked(68, 4);
  KernelHeap heap({kOwners[0], kOwners[1], kOwners[2], kOwners[3]},
                  ForeignFreePolicy::remote_queue, topo, PartitionBudget{},
                  numa_aware ? PlacementPolicy::numa_aware : PlacementPolicy::flat);

  NumaResult r;
  PhysAddr blocks[4][kBlocksPerOwner];
  std::uint64_t allocs_at_t0 = 0, cross_at_t0 = 0, reclaimed = 0, reclaimed_at_t0 = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t it = 0; it < kWarmup + iters; ++it) {
    if (it == kWarmup) {
      allocs_at_t0 = g_heap_allocs.load(std::memory_order_relaxed);
      cross_at_t0 = heap.stats().cross_socket_drains;
      reclaimed_at_t0 = reclaimed;
      t0 = std::chrono::steady_clock::now();
    }
    for (int o = 0; o < 4; ++o)
      for (int b = 0; b < kBlocksPerOwner; ++b) {
        auto a = heap.kmalloc(192, kOwners[o]);
        if (!a.ok()) std::abort();
        blocks[o][b] = *a;
      }
    for (int o = 0; o < 4; ++o)
      for (int b = 0; b < kBlocksPerOwner; ++b)
        if (!heap.kfree(blocks[o][b], kIrqCpus[(o + b) % 4]).ok()) std::abort();
    for (int o = 0; o < 4; ++o) reclaimed += heap.drain_remote_frees(kOwners[o]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  r.iters_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.heap_allocs_per_iter =
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) - allocs_at_t0) /
      static_cast<double>(iters);
  r.cross_drains_per_iter =
      static_cast<double>(heap.stats().cross_socket_drains - cross_at_t0) /
      static_cast<double>(iters);
  r.blocks_reclaimed = reclaimed - reclaimed_at_t0;
  r.near_allocs = heap.stats().near_allocs;
  r.far_allocs = heap.stats().far_allocs;
  return r;
}

template <typename Op>
PipelineResult run_pipeline(std::uint64_t warmup, std::uint64_t iters, Op&& op) {
  PipelineResult r;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < warmup; ++i) sink += op();
  const std::uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) sink += op();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  r.ops = iters;
  r.ops_per_sec = static_cast<double>(iters) / (secs > 0 ? secs : 1e-9);
  r.allocs_per_op =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(iters);
  if (sink == 0) std::abort();  // keep the work observable
  return r;
}

}  // namespace

int main() {
  using pd::bench::quick_mode;
  pd::bench::print_banner(
      "Fast-path memory pipeline — extent cache + slab heap + descriptor arena",
      "repeated sends of a pinned buffer should pay the page-table walk once");

  const std::uint64_t iters = quick_mode() ? 20'000 : 200'000;
  const std::uint64_t warmup = 1'000;

  PhysMap phys = PhysMap::knl(512ull << 20, 1ull << 30, 2);
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, 0x2000'0000ull, 42);
  auto va = as.mmap_anonymous(kBufBytes, kProtRead | kProtWrite);
  if (!va.ok()) return 1;

  // Baseline: the pre-slab map-per-block heap (slab magazines disabled).
  KernelHeap old_heap({kLwkCpu}, ForeignFreePolicy::remote_queue,
                      0x0000'00F0'0000'0000ull, /*slab_enabled=*/false);
  PipelineResult base = run_pipeline(
      warmup, iters, [&] { return baseline_op(as, *va, old_heap); });

  // Optimized: extent cache + arena descriptor buffer + slab heap.
  KernelHeap slab_heap({kLwkCpu}, ForeignFreePolicy::remote_queue);
  ExtentCache cache;
  std::vector<Descriptor> arena;
  PipelineResult fast = run_pipeline(
      warmup, iters, [&] { return cached_op(as, *va, cache, arena, slab_heap); });

  // Sanity: the cached extents must match a fresh walk bit for bit.
  auto truth = as.physical_extents(*va, kBufBytes, kDescCap);
  auto cached = cache.lookup(as, *va, kBufBytes, kDescCap);
  if (!truth.ok() || !cached.ok() || truth->size() != cached->size()) return 1;
  for (std::size_t i = 0; i < truth->size(); ++i)
    if ((*truth)[i].pa != (*cached)[i].pa || (*truth)[i].len != (*cached)[i].len) return 1;

  // Mixed-lifetime workload: persistent window + transient churn.
  const std::uint64_t mixed_iters = quick_mode() ? 300 : 2'000;
  MixedResult coarse = run_mixed(/*precise=*/false, mixed_iters);
  MixedResult precise = run_mixed(/*precise=*/true, mixed_iters);

  // Cross-socket completion workload: flat vs NUMA-aware placement/drain.
  const std::uint64_t numa_iters = quick_mode() ? 2'000 : 20'000;
  NumaResult flat_numa = run_numa(/*numa_aware=*/false, numa_iters);
  NumaResult numa = run_numa(/*numa_aware=*/true, numa_iters);

  // IKC transport: the paper's 64-ranks-on-4-service-CPUs squeeze through
  // the legacy direct path vs the batched ring transport (simulated time).
  const int ikc_per_rank = quick_mode() ? 24 : 96;
  pd::os::Config ikc_cfg;
  ikc_cfg.ikc_mode = pd::os::IkcMode::direct;
  const auto ikc_legacy =
      pd::bench::run_offload_storm(ikc_cfg, 64, ikc_per_rank, pd::from_us(3), pd::from_us(20));
  // PR-4 ring shape: batched request rings, but every completion still pays
  // its own latch wakeup. This is the baseline the reply ring must beat.
  ikc_cfg.ikc_mode = pd::os::IkcMode::ring;
  ikc_cfg.ikc_reply_mode = pd::os::ReplyMode::latch;
  const auto ikc_ring =
      pd::bench::run_offload_storm(ikc_cfg, 64, ikc_per_rank, pd::from_us(3), pd::from_us(20));
  // §8.4: shared-memory reply rings + adaptive batching (the defaults).
  ikc_cfg.ikc_reply_mode = pd::os::ReplyMode::ring;
  const auto ikc_reply =
      pd::bench::run_offload_storm(ikc_cfg, 64, ikc_per_rank, pd::from_us(3), pd::from_us(20));
  const double wakeups_saved =
      ikc_ring.wakeups_per_offload - ikc_reply.wakeups_per_offload;

  const double speedup = fast.ops_per_sec / base.ops_per_sec;
  std::printf("  workload: %llu sends of the same pinned %llu KiB buffer\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(kBufBytes >> 10));
  std::printf("  baseline : %12.0f ops/s, %5.2f heap allocs/op\n", base.ops_per_sec,
              base.allocs_per_op);
  std::printf("  optimized: %12.0f ops/s, %5.2f heap allocs/op\n", fast.ops_per_sec,
              fast.allocs_per_op);
  std::printf("  speedup  : %.1fx  (cache: %llu hits / %llu misses; heap: %llu slab "
              "reuses, %llu host allocs)\n",
              speedup, static_cast<unsigned long long>(cache.stats().hits),
              static_cast<unsigned long long>(cache.stats().misses),
              static_cast<unsigned long long>(slab_heap.stats().slab_reuses),
              static_cast<unsigned long long>(slab_heap.stats().host_allocs));
  std::printf("  mixed-lifetime (persistent window + %llu iters of transient churn):\n",
              static_cast<unsigned long long>(mixed_iters));
  std::printf("    coarse (PR-1: whole-space invalidation, LRU): %5.1f%% window hits, "
              "%llu overflow invalidations, %llu evictions\n",
              100.0 * coarse.window_hit_rate,
              static_cast<unsigned long long>(coarse.generation_overflows),
              static_cast<unsigned long long>(coarse.evictions));
  std::printf("    precise (unmap log + size-aware eviction):    %5.1f%% window hits, "
              "%llu range invalidations, %llu evictions\n",
              100.0 * precise.window_hit_rate,
              static_cast<unsigned long long>(precise.range_invalidations),
              static_cast<unsigned long long>(precise.evictions));
  std::printf("  cross-socket completions (4 owners x 8 blocks/iter, IRQs on socket 0):\n");
  std::printf("    flat placement : %6.2f cross-socket drains/iter, %.3f heap allocs/iter, "
              "%llu near / %llu far\n",
              flat_numa.cross_drains_per_iter, flat_numa.heap_allocs_per_iter,
              static_cast<unsigned long long>(flat_numa.near_allocs),
              static_cast<unsigned long long>(flat_numa.far_allocs));
  std::printf("    numa-aware     : %6.2f cross-socket drains/iter, %.3f heap allocs/iter, "
              "%llu near / %llu far\n",
              numa.cross_drains_per_iter, numa.heap_allocs_per_iter,
              static_cast<unsigned long long>(numa.near_allocs),
              static_cast<unsigned long long>(numa.far_allocs));
  std::printf("  ikc batch (64 ranks / 4 service CPUs, simulated time):\n");
  std::printf("    legacy direct  : %8.1f offloads/ms, queue p95 %8.1f us\n",
              ikc_legacy.offloads_per_ms, ikc_legacy.queue.p95_us);
  std::printf("    ring batched   : %8.1f offloads/ms, queue p95 %8.1f us "
              "(degraded %llu, timeouts %llu)\n",
              ikc_ring.offloads_per_ms, ikc_ring.queue.p95_us,
              static_cast<unsigned long long>(ikc_ring.degraded),
              static_cast<unsigned long long>(ikc_ring.timeouts));
  std::printf("  ikc reply ring (same squeeze, wakeups per offload round trip):\n");
  std::printf("    latch replies  : %5.2f wakeups/op (%llu doorbells + %llu reply), "
              "queue p95 %8.1f us\n",
              ikc_ring.wakeups_per_offload,
              static_cast<unsigned long long>(ikc_ring.doorbells),
              static_cast<unsigned long long>(ikc_ring.reply_wakeups),
              ikc_ring.queue.p95_us);
  std::printf("    reply rings    : %5.2f wakeups/op (%llu doorbells + %llu reply), "
              "queue p95 %8.1f us (adaptive grow %llu / shrink %llu)\n",
              ikc_reply.wakeups_per_offload,
              static_cast<unsigned long long>(ikc_reply.doorbells),
              static_cast<unsigned long long>(ikc_reply.reply_wakeups),
              ikc_reply.queue.p95_us,
              static_cast<unsigned long long>(ikc_reply.adaptive_grow),
              static_cast<unsigned long long>(ikc_reply.adaptive_shrink));
  std::printf("    saved          : %5.2f wakeups per offload round trip\n", wakeups_saved);

  std::FILE* json = std::fopen("BENCH_fastpath.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "{\n"
               "  \"workload\": {\"buffer_bytes\": %llu, \"max_extent_bytes\": %llu, "
               "\"iterations\": %llu, \"quick_mode\": %s},\n"
               "  \"baseline\": {\"ops_per_sec\": %.0f, \"heap_allocs_per_op\": %.3f},\n"
               "  \"optimized\": {\"ops_per_sec\": %.0f, \"heap_allocs_per_op\": %.3f},\n"
               "  \"speedup\": %.2f,\n"
               "  \"extent_cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"range_invalidations\": %llu, \"generation_overflows\": %llu, "
               "\"evictions\": %llu},\n"
               "  \"slab_heap\": {\"slab_reuses\": %llu, \"slab_recycles\": %llu, "
               "\"host_allocs\": %llu},\n"
               "  \"mixed_lifetime\": {\n"
               "    \"iterations\": %llu, \"transients_per_iteration\": 10,\n"
               "    \"coarse\": {\"window_hit_rate\": %.4f, \"generation_overflows\": %llu, "
               "\"evictions\": %llu, \"iters_per_sec\": %.0f},\n"
               "    \"precise\": {\"window_hit_rate\": %.4f, \"range_invalidations\": %llu, "
               "\"evictions\": %llu, \"iters_per_sec\": %.0f}\n"
               "  },\n"
               "  \"numa_drain\": {\n"
               "    \"iterations\": %llu, \"owners\": 4, \"blocks_per_owner\": 8,\n"
               "    \"flat\": {\"cross_socket_drains_per_iter\": %.2f, "
               "\"heap_allocs_per_iter\": %.3f, \"near_allocs\": %llu, "
               "\"far_allocs\": %llu, \"iters_per_sec\": %.0f},\n"
               "    \"numa_aware\": {\"cross_socket_drains_per_iter\": %.2f, "
               "\"heap_allocs_per_iter\": %.3f, \"near_allocs\": %llu, "
               "\"far_allocs\": %llu, \"iters_per_sec\": %.0f}\n"
               "  },\n"
               "  \"ikc_batch\": {\n"
               "    \"ranks\": 64, \"service_cpus\": 4, \"offloads_per_rank\": %d,\n"
               "    \"legacy\": {\"offloads_per_ms\": %.1f, \"queue_p95_us\": %.1f},\n"
               "    \"ring\": {\"offloads_per_ms\": %.1f, \"queue_p95_us\": %.1f, "
               "\"degraded\": %llu, \"timeouts\": %llu}\n"
               "  },\n"
               "  \"reply_ring\": {\n"
               "    \"ranks\": 64, \"service_cpus\": 4, \"offloads_per_rank\": %d,\n"
               "    \"latch\": {\"wakeups_per_offload\": %.3f, \"doorbells\": %llu, "
               "\"reply_wakeups\": %llu, \"queue_p95_us\": %.1f},\n"
               "    \"ring\": {\"wakeups_per_offload\": %.3f, \"doorbells\": %llu, "
               "\"reply_wakeups\": %llu, \"queue_p95_us\": %.1f, "
               "\"adaptive_grow\": %llu, \"adaptive_shrink\": %llu, "
               "\"remote_drains\": %llu},\n"
               "    \"wakeups_saved_per_offload\": %.3f\n"
               "  }\n"
               "}\n",
               static_cast<unsigned long long>(kBufBytes),
               static_cast<unsigned long long>(kDescCap),
               static_cast<unsigned long long>(iters), quick_mode() ? "true" : "false",
               base.ops_per_sec, base.allocs_per_op, fast.ops_per_sec, fast.allocs_per_op,
               speedup, static_cast<unsigned long long>(cache.stats().hits),
               static_cast<unsigned long long>(cache.stats().misses),
               static_cast<unsigned long long>(cache.stats().range_invalidations),
               static_cast<unsigned long long>(cache.stats().generation_overflows),
               static_cast<unsigned long long>(cache.stats().evictions),
               static_cast<unsigned long long>(slab_heap.stats().slab_reuses),
               static_cast<unsigned long long>(slab_heap.stats().slab_recycles),
               static_cast<unsigned long long>(slab_heap.stats().host_allocs),
               static_cast<unsigned long long>(mixed_iters), coarse.window_hit_rate,
               static_cast<unsigned long long>(coarse.generation_overflows),
               static_cast<unsigned long long>(coarse.evictions), coarse.ops_per_sec,
               precise.window_hit_rate,
               static_cast<unsigned long long>(precise.range_invalidations),
               static_cast<unsigned long long>(precise.evictions), precise.ops_per_sec,
               static_cast<unsigned long long>(numa_iters),
               flat_numa.cross_drains_per_iter, flat_numa.heap_allocs_per_iter,
               static_cast<unsigned long long>(flat_numa.near_allocs),
               static_cast<unsigned long long>(flat_numa.far_allocs),
               flat_numa.iters_per_sec, numa.cross_drains_per_iter,
               numa.heap_allocs_per_iter,
               static_cast<unsigned long long>(numa.near_allocs),
               static_cast<unsigned long long>(numa.far_allocs), numa.iters_per_sec,
               ikc_per_rank, ikc_legacy.offloads_per_ms, ikc_legacy.queue.p95_us,
               ikc_ring.offloads_per_ms, ikc_ring.queue.p95_us,
               static_cast<unsigned long long>(ikc_ring.degraded),
               static_cast<unsigned long long>(ikc_ring.timeouts), ikc_per_rank,
               ikc_ring.wakeups_per_offload,
               static_cast<unsigned long long>(ikc_ring.doorbells),
               static_cast<unsigned long long>(ikc_ring.reply_wakeups),
               ikc_ring.queue.p95_us, ikc_reply.wakeups_per_offload,
               static_cast<unsigned long long>(ikc_reply.doorbells),
               static_cast<unsigned long long>(ikc_reply.reply_wakeups),
               ikc_reply.queue.p95_us,
               static_cast<unsigned long long>(ikc_reply.adaptive_grow),
               static_cast<unsigned long long>(ikc_reply.adaptive_shrink),
               static_cast<unsigned long long>(ikc_reply.remote_drains), wakeups_saved);
  std::fclose(json);
  std::printf("  wrote BENCH_fastpath.json\n");

  // Acceptance: >= 2x on the repeated-buffer workload, allocation-free in
  // steady state (every container reuses capacity, every block a magazine).
  if (speedup < 2.0) {
    std::printf("  FAIL: expected >= 2x speedup\n");
    return 1;
  }
  if (fast.allocs_per_op > 0.001) {
    std::printf("  FAIL: optimized pipeline still allocates\n");
    return 1;
  }
  // Mixed-lifetime acceptance: range-precise invalidation + size-aware
  // eviction must keep the persistent window hot through transient churn;
  // the PR-1 emulation must show the collapse this PR fixes.
  if (precise.window_hit_rate < 0.9) {
    std::printf("  FAIL: precise config lost the persistent window (%.1f%% hits)\n",
                100.0 * precise.window_hit_rate);
    return 1;
  }
  if (coarse.window_hit_rate > 0.1) {
    std::printf("  FAIL: coarse baseline unexpectedly kept the window (%.1f%% hits) — "
                "the comparison no longer demonstrates the fix\n",
                100.0 * coarse.window_hit_rate);
    return 1;
  }
  // NUMA acceptance: per-source-socket batching must cut cross-socket
  // reclaim events on the completion-heavy workload without reintroducing
  // host allocations into the steady-state free/drain cycle.
  if (numa.cross_drains_per_iter >= flat_numa.cross_drains_per_iter) {
    std::printf("  FAIL: numa-aware drain shows no cross-socket reduction "
                "(%.2f vs %.2f per iter)\n",
                numa.cross_drains_per_iter, flat_numa.cross_drains_per_iter);
    return 1;
  }
  if (numa.heap_allocs_per_iter > flat_numa.heap_allocs_per_iter + 0.001) {
    std::printf("  FAIL: numa-aware heap allocates more in steady state "
                "(%.3f vs %.3f per iter)\n",
                numa.heap_allocs_per_iter, flat_numa.heap_allocs_per_iter);
    return 1;
  }
  // IKC acceptance: batched ring service must beat per-offload proxy
  // wakeups on tail queueing under the paper's rank/CPU squeeze.
  if (ikc_ring.queue.p95_us >= ikc_legacy.queue.p95_us) {
    std::printf("  FAIL: ring transport p95 queueing %.1f us >= legacy %.1f us\n",
                ikc_ring.queue.p95_us, ikc_legacy.queue.p95_us);
    return 1;
  }
  // Reply-ring acceptance (§8.4): the shared-memory reply path must shed
  // (essentially) the whole per-request completion wakeup — one fewer
  // cross-kernel wakeup per offload round trip than the latch shape — with
  // tail queueing no worse.
  if (wakeups_saved < 0.9) {
    std::printf("  FAIL: reply ring saved only %.2f wakeups/offload vs latch "
                "(%.2f -> %.2f)\n",
                wakeups_saved, ikc_ring.wakeups_per_offload,
                ikc_reply.wakeups_per_offload);
    return 1;
  }
  if (ikc_reply.queue.p95_us > ikc_ring.queue.p95_us * 1.02) {
    std::printf("  FAIL: reply ring p95 queueing %.1f us worse than latch %.1f us\n",
                ikc_reply.queue.p95_us, ikc_ring.queue.p95_us);
    return 1;
  }
  return 0;
}
