// Tests for the MPI runtime specifics: hierarchical collectives (only node
// leaders touch the fabric), persistent requests, odd world sizes, solve
// brackets, and stats bookkeeping.
#include <gtest/gtest.h>

#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

namespace pd::mpirt {
namespace {

using namespace pd::time_literals;

ClusterOptions opts(int nodes, os::OsMode mode = os::OsMode::linux) {
  ClusterOptions o;
  o.nodes = nodes;
  o.mode = mode;
  o.mcdram_bytes = 256ull << 20;
  o.ddr_bytes = 1ull << 30;
  return o;
}

TEST(Hierarchical, BcastOnlyLeadersUseTheFabric) {
  Cluster cluster(opts(4));
  WorldOptions wopts;
  wopts.ranks_per_node = 8;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.bcast(0, 256_KiB);
    co_await rank.finalize();
  });
  // Expected-path traffic (the 256 KiB payload) may only originate from
  // node leaders: at most nodes-1 = 3 transfers worth of writev calls.
  std::uint64_t writevs = 0;
  for (int n = 0; n < 4; ++n) writevs += cluster.node(n).driver->writev_calls();
  // 256 KiB = 2 windows per hop, binomial tree over 4 nodes = 3 hops.
  EXPECT_EQ(writevs, 3u * 2u);
}

TEST(Hierarchical, AllreduceCompletesOddWorld) {
  Cluster cluster(opts(3));
  WorldOptions wopts;
  wopts.ranks_per_node = 3;  // 9 ranks — nothing is a power of two
  MpiWorld world(cluster, wopts);
  int done = 0;
  world.run([&](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    for (int i = 0; i < 3; ++i) co_await rank.allreduce(4096);
    co_await rank.barrier();
    co_await rank.finalize();
    ++done;
  });
  EXPECT_EQ(done, 9);
}

TEST(Hierarchical, BarrierActuallySynchronizes) {
  Cluster cluster(opts(2));
  WorldOptions wopts;
  wopts.ranks_per_node = 4;
  MpiWorld world(cluster, wopts);
  Time slow_done = 0;
  std::vector<Time> after;
  world.run([&](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    if (rank.id() == 0) {
      co_await rank.compute(from_ms(5.0));  // everyone must wait for rank 0
      slow_done = rank.world().cluster().engine().now();
    }
    co_await rank.barrier();
    after.push_back(rank.world().cluster().engine().now());
    co_await rank.finalize();
  });
  ASSERT_EQ(after.size(), 8u);
  for (Time t : after) EXPECT_GE(t, slow_done);
}

TEST(Persistent, StartWaitRoundtrips) {
  Cluster cluster(opts(2));
  WorldOptions wopts;
  wopts.ranks_per_node = 1;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    const int peer = 1 - rank.id();
    auto p = rank.id() == 0 ? rank.send_init(peer, 3, 64_KiB)
                            : rank.recv_init(peer, 3, 64_KiB);
    for (int round = 0; round < 5; ++round) {
      rank.start(p);
      co_await rank.wait(p);
    }
    co_await rank.finalize();
  });
  auto table = world.stats_table();
  const auto* start_row = table.row("Start");
  ASSERT_NE(start_row, nullptr);
  EXPECT_EQ(start_row->count, 2u * 5u);
  EXPECT_EQ(table.row("Wait")->count, 2u * 5u);
}

TEST(Persistent, StartallWaitallBatches) {
  Cluster cluster(opts(2));
  WorldOptions wopts;
  wopts.ranks_per_node = 2;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    const int peer = (rank.id() + 2) % 4;  // cross-node pair (involution)
    std::vector<Rank::MpiPersist> channels;
    for (int c = 0; c < 3; ++c) {
      channels.push_back(rank.id() < peer ? rank.send_init(peer, 10 + c, 32_KiB)
                                          : rank.recv_init(peer, 10 + c, 32_KiB));
    }
    for (int round = 0; round < 4; ++round) {
      rank.startall(channels);
      co_await rank.waitall_persist(channels);
    }
    co_await rank.finalize();
  });
  EXPECT_EQ(world.stats_table().row("Start")->count, 4u * 4u * 3u);
}

TEST(SolveBracket, ExcludesInitAndFinalize) {
  Cluster cluster(opts(1));
  WorldOptions wopts;
  wopts.ranks_per_node = 2;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    rank.solve_begin();
    co_await rank.compute(from_ms(3.0));
    rank.solve_end();
    co_await rank.finalize();
  });
  const double solve = to_ms(world.max_solve());
  const double total = to_ms(world.max_runtime());
  EXPECT_NEAR(solve, 3.0, 0.2);
  EXPECT_GT(total, solve) << "Init/Finalize excluded from the solve bracket";
}

TEST(SolveBracket, FallsBackToRuntimeWhenUnset) {
  Cluster cluster(opts(1));
  WorldOptions wopts;
  wopts.ranks_per_node = 1;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.compute(from_ms(1.0));
    co_await rank.finalize();
  });
  EXPECT_EQ(world.max_solve(), world.max_runtime());
}

TEST(Stats, SendRecvCountsSymmetric) {
  Cluster cluster(opts(2));
  WorldOptions wopts;
  wopts.ranks_per_node = 1;
  MpiWorld world(cluster, wopts);
  world.run([](Rank& rank) -> sim::Task<> {
    co_await rank.init();
    for (int i = 0; i < 7; ++i) {
      if (rank.id() == 0)
        co_await rank.send(1, i, 4096);
      else
        co_await rank.recv(0, i, 4096);
    }
    co_await rank.finalize();
  });
  auto table = world.stats_table();
  EXPECT_EQ(table.row("Send")->count, 7u);
  EXPECT_EQ(table.row("Recv")->count, 7u);
}

}  // namespace
}  // namespace pd::mpirt
