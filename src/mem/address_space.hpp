// Process/kernel address space: VMA bookkeeping + page-table backing with a
// per-kernel placement policy.
//
// The policy difference is the heart of paper §3.4:
//
//   * `BackingPolicy::linux_4k` — anonymous memory is backed page by page
//     with 4 KiB frames allocated independently (deliberately shuffled
//     placement so adjacent virtual pages are rarely physically adjacent,
//     as on a long-running Linux node). Pages are not pinned; drivers must
//     use get_user_pages() to pin them.
//
//   * `BackingPolicy::lwk_contig` — McKernel's policy: anonymous mappings
//     are backed by the largest available physically contiguous blocks,
//     using 2 MiB page-table leaves when alignment permits, and are pinned
//     at creation (unmapped only by explicit user request).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/mem/page_table.hpp"
#include "src/mem/phys.hpp"
#include "src/mem/types.hpp"

namespace pd::mem {

enum class BackingPolicy { linux_4k, lwk_contig };

/// One virtual memory area.
struct Vma {
  VirtAddr start = 0;
  VirtAddr end = 0;  // exclusive
  std::uint32_t prot = 0;
  bool pinned = false;
  bool device = false;  // device mapping (no physical frames owned)
};

/// A physically contiguous run backing part of a virtual range.
struct PhysExtent {
  PhysAddr pa = 0;
  std::uint64_t len = 0;
};

/// Result of get_user_pages(): pinned 4 KiB frames, one per page.
struct PinnedPages {
  std::vector<PhysAddr> frames;
};

/// One logged munmap, kept so translation caches can invalidate by range
/// overlap instead of dropping everything on any unmap.
struct UnmapInterval {
  VirtAddr start = 0;
  VirtAddr end = 0;              // exclusive, page aligned
  std::uint64_t generation = 0;  // map_generation() value after this munmap
};

/// What the unmap log can prove about a cached range since a generation.
enum class RangeVerdict {
  intact,          // no logged unmap since `generation` overlaps the range
  overlaps_unmap,  // an unmap overlapped it — cached translations are stale
  unknown,         // the log overflowed past `generation`; must assume stale
};

class AddressSpace {
 public:
  /// `mmap_base`: where anonymous mappings are placed (grows upward).
  AddressSpace(PhysMap& phys, BackingPolicy policy, MemKind preferred_kind,
               VirtAddr mmap_base, std::uint64_t rng_seed = 1);
  ~AddressSpace();
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  BackingPolicy policy() const { return policy_; }

  /// Anonymous mmap; returns the chosen virtual address.
  Result<VirtAddr> mmap_anonymous(std::uint64_t len, std::uint32_t prot);

  /// Map a device range (no frames allocated; pa supplied by the device).
  Result<VirtAddr> mmap_device(PhysAddr pa, std::uint64_t len, std::uint32_t prot);

  /// Unmap a previously mapped region. EINVAL unless [addr, addr+len)
  /// exactly matches a VMA. Pinned LWK memory is released here too — this
  /// is the "user requested operation" that is allowed to unpin.
  Status munmap(VirtAddr addr, std::uint64_t len);

  std::optional<Translation> translate(VirtAddr va) const { return pt_.translate(va); }

  /// Linux-style get_user_pages(): pin and return the 4 KiB frames backing
  /// [va, va+len). Fails with EFAULT if any page is unmapped.
  Result<PinnedPages> get_user_pages(VirtAddr va, std::uint64_t len);
  void put_user_pages(const PinnedPages& pages);

  /// LWK-style page-table walk: physically contiguous runs covering
  /// [va, va+len), each at most `max_extent` bytes (0 = unlimited).
  /// Requires the range to be mapped; EFAULT otherwise.
  Result<std::vector<PhysExtent>> physical_extents(VirtAddr va, std::uint64_t len,
                                                   std::uint64_t max_extent) const;

  /// Output-buffer variant of the walk: fills `out` (cleared first, capacity
  /// reused) instead of allocating a fresh vector — the allocation-free form
  /// the fast path and ExtentCache build on. On error `out` is unspecified.
  Status physical_extents(VirtAddr va, std::uint64_t len, std::uint64_t max_extent,
                          std::vector<PhysExtent>& out) const;

  /// Monotone counter bumped by every munmap(); cached translations (see
  /// ExtentCache) are valid only while the generation they were filled at
  /// still matches — or while the unmap log can prove their range untouched.
  std::uint64_t map_generation() const { return map_generation_; }

  /// Range-precise staleness check (the PSM2-TID-cache refinement): can a
  /// translation of [va, va+len) cached at `generation` still be trusted?
  /// Consults the bounded unmap-interval log; once the log has dropped
  /// intervals newer than `generation` the answer degrades to `unknown`
  /// (the whole-address-space generation fallback).
  RangeVerdict range_verdict_since(VirtAddr va, std::uint64_t len,
                                   std::uint64_t generation) const;

  /// Unmap intervals retained before falling back to the global generation.
  /// 0 degrades to PR-1 behaviour: every munmap invalidates everything.
  static constexpr std::size_t kDefaultUnmapLogCapacity = 32;
  void set_unmap_log_capacity(std::size_t n);
  std::size_t unmap_log_capacity() const { return unmap_log_capacity_; }
  std::size_t unmap_log_size() const { return unmap_log_.size(); }
  /// Generation at (and below) which log information has been dropped.
  std::uint64_t unmap_log_floor() const { return unmap_log_floor_; }

  const Vma* find_vma(VirtAddr va) const;
  std::size_t vma_count() const { return vmas_.size(); }
  std::uint64_t pinned_frame_count() const;
  bool is_pinned(PhysAddr frame) const;

  /// Fraction of currently mapped anonymous bytes backed by 2 MiB leaves.
  double large_page_fraction() const;

 private:
  struct Backing {
    PhysAddr pa;
    std::uint64_t len;      // allocation unit handed back to PhysMap
    std::uint64_t page;     // leaf size used in the page table
  };

  Result<VirtAddr> reserve_va(std::uint64_t len, std::uint64_t align);
  void release_backing(const Vma& vma);

  PhysMap& phys_;
  BackingPolicy policy_;
  MemKind preferred_kind_;
  PageTable pt_;
  VirtAddr mmap_cursor_;
  Rng rng_;
  std::uint64_t map_generation_ = 0;

  // Bounded log of recent unmaps, oldest first; overflow raises the floor.
  std::vector<UnmapInterval> unmap_log_;
  std::size_t unmap_log_capacity_ = kDefaultUnmapLogCapacity;
  std::uint64_t unmap_log_floor_ = 0;

  std::map<VirtAddr, Vma> vmas_;                         // keyed by start
  std::map<VirtAddr, std::vector<Backing>> backings_;    // keyed by VMA start
  std::unordered_map<PhysAddr, std::uint32_t> pin_counts_;  // per 4 KiB frame
};

}  // namespace pd::mem
