// Bench: pd-doom batched command submission — offload path vs LWK fast path.
//
// The paper's fast-path claim applied to the second device class: an LWK
// process submitting command batches to the pd-doom accelerator either
//   slow — offloads every ioctl to the Linux driver over IKC (proxy wakeup,
//          get_user_pages per buffer, one DMA PTE per 4 KiB page), or
//   fast — rides the DoomPicoDriver installed on the shared FastPathPort
//          (extent-cache translation, one PTE per contiguous extent, ring
//          reservation under the driver's own spin-lock, no kernel switch).
//
// Both runs drive the identical seeded batch script; everything compared is
// simulated time or a deterministic count, so the gate tolerances can be
// tight. Emits BENCH_doom_submit.json (the `doom_submit` suite in
// tools/check_bench.py) and exits non-zero if the fast path fails to beat
// the offload path on submit latency, falls back even once, or stops
// programming fewer PTEs than the per-page slow path.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/doom/driver.hpp"
#include "src/pico/doom_picodriver.hpp"

namespace {

using namespace pd;
using namespace pd::time_literals;

constexpr std::uint64_t kSeed = 0xD00B5EEDull;
constexpr std::uint64_t kBufSizes[] = {64_KiB, 256_KiB, 16_KiB, 128_KiB};
constexpr int kWaitEvery = 8;  // bound in-flight batches; ring is 256 slots

struct CmdSpec {
  std::uint32_t op = 0;
  int buf = 0;
  std::uint64_t off = 0;
  std::uint64_t bytes = 0;
};
using BatchSpec = std::vector<CmdSpec>;

/// Same shape as the equivalence property's script: 2-4 commands per batch,
/// 64-byte-aligned (never page-aligned) source offsets, sizes up to 96 KiB.
std::vector<BatchSpec> make_script(int batches) {
  Rng rng(kSeed);
  std::vector<BatchSpec> script;
  for (int b = 0; b < batches; ++b) {
    BatchSpec batch;
    const int ncmds = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < ncmds; ++i) {
      CmdSpec c;
      c.op = rng.next_below(2) == 0 ? 0u : 1u;
      c.buf = static_cast<int>(rng.next_below(4));
      const std::uint64_t size = kBufSizes[c.buf];
      c.off = rng.next_below(size / 2) & ~std::uint64_t{63};
      c.bytes = 64 + rng.next_below(std::min<std::uint64_t>(size - c.off - 64, 96_KiB));
      batch.push_back(c);
    }
    script.push_back(std::move(batch));
  }
  return script;
}

struct RunResult {
  std::vector<double> submit_us;  // simulated latency of each submit ioctl
  double sim_ms = 0;              // open -> final fence, simulated
  int completions = 0;
  std::uint64_t commands_retired = 0;
  std::uint64_t fences_retired = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t pte_programs = 0;        // slow path, one per 4 KiB page
  std::uint64_t extents_programmed = 0;  // fast path, one per extent
  std::uint64_t fast_submits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t ring_full_fallbacks = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct Rig {
  sim::Engine engine;
  os::Config cfg;
  mem::PhysMap phys = mem::PhysMap::knl(1_GiB, 4_GiB, 2);
  std::unique_ptr<hw::DoomDevice> device;
  std::unique_ptr<os::LinuxKernel> linux_kernel;
  std::unique_ptr<os::Ihk> ihk;
  std::unique_ptr<os::McKernel> mck;
  std::unique_ptr<doom::DoomDriver> driver;
  std::unique_ptr<pico::DoomPicoDriver> pico;

  explicit Rig(bool fast) {
    device = std::make_unique<hw::DoomDevice>(engine, 0);
    linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
    driver = std::make_unique<doom::DoomDriver>(*linux_kernel, *device, "1.1-d2");
    ihk = std::make_unique<os::Ihk>(engine, cfg, *linux_kernel);
    mck = std::make_unique<os::McKernel>(engine, cfg, *ihk, /*unified_layout=*/true);
    if (fast) {
      auto p = pico::DoomPicoDriver::create(*mck, *driver);
      if (!p.ok()) std::abort();
      pico = std::move(*p);
    }
  }
};

sim::Task<> drive(Rig& r, os::Process& p, const std::vector<BatchSpec>& script,
                  RunResult& out) {
  auto fd = co_await p.open(doom::kDeviceName);
  if (!fd.ok()) std::abort();
  if (!(co_await p.ioctl(*fd, doom::kDoomCreateCtx, nullptr)).ok()) std::abort();

  std::vector<mem::VirtAddr> bufs;
  for (const std::uint64_t size : kBufSizes) {
    auto buf = co_await p.mmap_anon(size);
    if (!buf.ok()) std::abort();
    bufs.push_back(*buf);
  }

  const Time t_start = r.engine.now();
  std::uint64_t last_fence = 0;
  for (std::size_t b = 0; b < script.size(); ++b) {
    doom::DoomSubmitArgs args;
    for (const CmdSpec& c : script[b]) {
      doom::DoomUserCmd u;
      u.op = c.op;
      u.src_va = bufs[static_cast<std::size_t>(c.buf)] + c.off;
      u.bytes = c.bytes;
      args.cmds.push_back(u);
    }
    args.on_fence = [&out] { ++out.completions; };
    const Time t0 = r.engine.now();
    auto n = co_await p.ioctl(*fd, doom::kDoomSubmitBatch, &args);
    const Time t1 = r.engine.now();
    if (!n.ok() || *n != static_cast<long>(script[b].size())) std::abort();
    out.submit_us.push_back(static_cast<double>(t1 - t0) / 1e6);
    last_fence = args.fence_seq;
    if (b % kWaitEvery == static_cast<std::size_t>(kWaitEvery - 1)) {
      doom::DoomWaitFenceArgs w;
      w.seq = last_fence;
      if (!(co_await p.ioctl(*fd, doom::kDoomWaitFence, &w)).ok()) std::abort();
    }
  }
  doom::DoomWaitFenceArgs w;
  w.seq = last_fence;
  if (!(co_await p.ioctl(*fd, doom::kDoomWaitFence, &w)).ok()) std::abort();
  out.sim_ms = static_cast<double>(r.engine.now() - t_start) / 1e9;
  if (!(co_await p.close_fd(*fd)).ok()) std::abort();
}

RunResult run_script(const std::vector<BatchSpec>& script, bool fast) {
  Rig rig(fast);
  RunResult out;
  os::Process proc(*rig.mck, rig.phys, 0, 0, 42u);
  sim::spawn(rig.engine, drive(rig, proc, script, out));
  rig.engine.run();

  out.commands_retired = rig.device->commands_retired();
  out.fences_retired = rig.device->fences_retired();
  out.dma_bytes = rig.device->dma_bytes();
  out.pte_programs = rig.driver->pte_programs();
  if (fast) {
    out.extents_programmed = rig.pico->extents_programmed();
    out.fast_submits = rig.pico->fast_submits();
    out.fallbacks = rig.pico->fallbacks();
    out.ring_full_fallbacks = rig.pico->ring_full_fallbacks();
    out.cache_hits = rig.pico->extent_cache_hits();
    out.cache_misses = rig.pico->extent_cache_misses();
  }
  return out;
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main() {
  using pd::bench::quick_mode;
  pd::bench::print_banner(
      "pd-doom batched submit — IKC offload vs DoomPicoDriver fast path",
      "LWK fast path submits without a kernel switch and programs "
      "extent-sized DMA PTEs instead of one per 4 KiB page");

  const int batches = quick_mode() ? 64 : 256;
  const auto script = make_script(batches);
  std::uint64_t total_cmds = 0;
  for (const auto& b : script) total_cmds += b.size();

  const RunResult slow = run_script(script, /*fast=*/false);
  const RunResult fast = run_script(script, /*fast=*/true);

  // Equivalence sanity (the property test owns the exhaustive version): the
  // device must not be able to tell the submit paths apart.
  if (slow.commands_retired != fast.commands_retired ||
      slow.fences_retired != fast.fences_retired ||
      slow.dma_bytes != fast.dma_bytes ||
      slow.completions != batches || fast.completions != batches) {
    std::printf("  FAIL: fast/slow device results diverge (cmds %llu/%llu, "
                "fences %llu/%llu, dma %llu/%llu)\n",
                static_cast<unsigned long long>(slow.commands_retired),
                static_cast<unsigned long long>(fast.commands_retired),
                static_cast<unsigned long long>(slow.fences_retired),
                static_cast<unsigned long long>(fast.fences_retired),
                static_cast<unsigned long long>(slow.dma_bytes),
                static_cast<unsigned long long>(fast.dma_bytes));
    return 1;
  }

  const double slow_p50 = pct(slow.submit_us, 0.50);
  const double slow_p95 = pct(slow.submit_us, 0.95);
  const double fast_p50 = pct(fast.submit_us, 0.50);
  const double fast_p95 = pct(fast.submit_us, 0.95);
  const double speedup_p50 = fast_p50 > 0 ? slow_p50 / fast_p50 : 0;
  const double speedup_p95 = fast_p95 > 0 ? slow_p95 / fast_p95 : 0;
  const double slow_ptes_per_batch =
      static_cast<double>(slow.pte_programs) / static_cast<double>(batches);
  const double fast_extents_per_batch =
      static_cast<double>(fast.extents_programmed) / static_cast<double>(batches);
  const double pte_reduction =
      fast.extents_programmed > 0
          ? static_cast<double>(slow.pte_programs) /
                static_cast<double>(fast.extents_programmed)
          : 0;

  std::printf("  workload: %d batches, %llu commands, buffers up to 256 KiB "
              "(simulated time throughout)\n",
              batches, static_cast<unsigned long long>(total_cmds));
  std::printf("  slow (IKC offload) : submit p50 %7.2f us, p95 %7.2f us, "
              "%6llu PTE programs (%5.1f/batch), %.2f ms total\n",
              slow_p50, slow_p95,
              static_cast<unsigned long long>(slow.pte_programs),
              slow_ptes_per_batch, slow.sim_ms);
  std::printf("  fast (PicoDriver)  : submit p50 %7.2f us, p95 %7.2f us, "
              "%6llu extent PTEs   (%5.1f/batch), %.2f ms total\n",
              fast_p50, fast_p95,
              static_cast<unsigned long long>(fast.extents_programmed),
              fast_extents_per_batch, fast.sim_ms);
  std::printf("  speedup: %.1fx p50, %.1fx p95; PTE reduction %.1fx; "
              "fallbacks %llu (+%llu ring-full); cache %llu hits / %llu misses\n",
              speedup_p50, speedup_p95, pte_reduction,
              static_cast<unsigned long long>(fast.fallbacks),
              static_cast<unsigned long long>(fast.ring_full_fallbacks),
              static_cast<unsigned long long>(fast.cache_hits),
              static_cast<unsigned long long>(fast.cache_misses));

  std::FILE* json = std::fopen("BENCH_doom_submit.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "{\n"
               "  \"workload\": {\"batches\": %d, \"commands\": %llu, "
               "\"wait_every\": %d, \"quick_mode\": %s},\n"
               "  \"doom_submit\": {\n"
               "    \"slow\": {\"submit_p50_us\": %.3f, \"submit_p95_us\": %.3f, "
               "\"sim_ms\": %.3f, \"pte_programs\": %llu, "
               "\"ptes_per_batch\": %.2f},\n"
               "    \"fast\": {\"submit_p50_us\": %.3f, \"submit_p95_us\": %.3f, "
               "\"sim_ms\": %.3f, \"extents_programmed\": %llu, "
               "\"extents_per_batch\": %.2f, \"fast_submits\": %llu, "
               "\"fallbacks\": %llu, \"ring_full_fallbacks\": %llu, "
               "\"cache_hits\": %llu, \"cache_misses\": %llu},\n"
               "    \"speedup_p50\": %.2f,\n"
               "    \"speedup_p95\": %.2f,\n"
               "    \"pte_reduction\": %.2f,\n"
               "    \"commands_retired\": %llu,\n"
               "    \"dma_bytes\": %llu\n"
               "  }\n"
               "}\n",
               batches, static_cast<unsigned long long>(total_cmds), kWaitEvery,
               quick_mode() ? "true" : "false",
               slow_p50, slow_p95, slow.sim_ms,
               static_cast<unsigned long long>(slow.pte_programs),
               slow_ptes_per_batch,
               fast_p50, fast_p95, fast.sim_ms,
               static_cast<unsigned long long>(fast.extents_programmed),
               fast_extents_per_batch,
               static_cast<unsigned long long>(fast.fast_submits),
               static_cast<unsigned long long>(fast.fallbacks),
               static_cast<unsigned long long>(fast.ring_full_fallbacks),
               static_cast<unsigned long long>(fast.cache_hits),
               static_cast<unsigned long long>(fast.cache_misses),
               speedup_p50, speedup_p95, pte_reduction,
               static_cast<unsigned long long>(fast.commands_retired),
               static_cast<unsigned long long>(fast.dma_bytes));
  std::fclose(json);
  std::printf("  wrote BENCH_doom_submit.json\n");

  // Acceptance: every batch rides the fast path, the fast path beats the
  // offload path on submit latency, and §3.4's point holds — strictly fewer
  // (extent-sized) PTE programs than the per-page slow path.
  if (fast.fast_submits != static_cast<std::uint64_t>(batches) ||
      fast.fallbacks != 0 || fast.ring_full_fallbacks != 0) {
    std::printf("  FAIL: fast path fell back (%llu submits, %llu fallbacks, "
                "%llu ring-full)\n",
                static_cast<unsigned long long>(fast.fast_submits),
                static_cast<unsigned long long>(fast.fallbacks),
                static_cast<unsigned long long>(fast.ring_full_fallbacks));
    return 1;
  }
  if (speedup_p50 < 1.5 || speedup_p95 < 1.5) {
    std::printf("  FAIL: expected >= 1.5x submit-latency speedup "
                "(got %.2fx p50 / %.2fx p95)\n", speedup_p50, speedup_p95);
    return 1;
  }
  if (fast.extents_programmed >= slow.pte_programs) {
    std::printf("  FAIL: extent PTEs (%llu) not fewer than per-page PTEs (%llu)\n",
                static_cast<unsigned long long>(fast.extents_programmed),
                static_cast<unsigned long long>(slow.pte_programs));
    return 1;
  }
  return 0;
}
