// End-to-end tests of the PSM endpoint + MPI runtime on small clusters, in
// all three OS configurations.
#include <gtest/gtest.h>

#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd {
namespace {

using namespace pd::time_literals;

mpirt::ClusterOptions small_opts(int nodes, os::OsMode mode) {
  mpirt::ClusterOptions opts;
  opts.nodes = nodes;
  opts.mode = mode;
  opts.mcdram_bytes = 256ull << 20;
  opts.ddr_bytes = 1ull << 30;
  return opts;
}

TEST(PsmEndpoint, PingPongAllProtocols) {
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    mpirt::Cluster cluster(small_opts(2, mode));
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 1;
    mpirt::MpiWorld world(cluster, wopts);
    ASSERT_EQ(world.size(), 2);

    world.run([](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      // One message per protocol: PIO (1 KiB), eager (32 KiB),
      // expected (512 KiB).
      for (std::uint64_t bytes : {std::uint64_t(1024), std::uint64_t(32768),
                                  std::uint64_t(512) * 1024}) {
        if (rank.id() == 0) {
          co_await rank.send(1, 7, bytes);
          co_await rank.recv(1, 8, bytes);
        } else {
          co_await rank.recv(0, 7, bytes);
          co_await rank.send(0, 8, bytes);
        }
      }
      co_await rank.finalize();
    });

    // Protocol selection happened as sized.
    auto& ep0 = world.rank(0).endpoint();
    EXPECT_EQ(ep0.pio_sends() > 0, true) << to_string(mode);
    EXPECT_EQ(ep0.eager_sends(), 1u) << to_string(mode);
    EXPECT_EQ(ep0.expected_sends(), 1u) << to_string(mode);
  }
}

TEST(PsmEndpoint, ExpectedProtocolDrivesTidIoctls) {
  mpirt::Cluster cluster(small_opts(2, os::OsMode::linux));
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 1;
  mpirt::MpiWorld world(cluster, wopts);
  world.run([](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    if (rank.id() == 0)
      co_await rank.send(1, 1, 1_MiB);
    else
      co_await rank.recv(0, 1, 1_MiB);
    co_await rank.finalize();
  });
  // 1 MiB / 128 KiB windows = 8 TID updates + 8 frees on the receiver node.
  EXPECT_EQ(cluster.node(1).driver->tid_entries_programmed(),
            8u * (128_KiB / 4096));
  // All TIDs freed again.
  EXPECT_EQ(cluster.node(1).device->rcv_array().in_use(), 0u);
  // 8 windows → 8 writevs on the sender.
  EXPECT_EQ(cluster.node(0).driver->writev_calls(), 8u);
}

TEST(PsmEndpoint, UnexpectedMessagesMatchLater) {
  mpirt::Cluster cluster(small_opts(2, os::OsMode::linux));
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 1;
  mpirt::MpiWorld world(cluster, wopts);
  world.run([](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    if (rank.id() == 0) {
      // Send eagerly before the receiver posts; then an expected-size one.
      co_await rank.send(1, 5, 4096);
      co_await rank.send(1, 6, 256_KiB);
    } else {
      co_await rank.compute(from_us(500));  // guarantee the race
      co_await rank.recv(0, 5, 4096);
      co_await rank.recv(0, 6, 256_KiB);
    }
    co_await rank.finalize();
  });
  SUCCEED();  // completion itself is the assertion (no deadlock, no loss)
}

TEST(MpiRuntime, CollectivesCompleteOnAllModes) {
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    mpirt::Cluster cluster(small_opts(2, mode));
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 4;
    mpirt::MpiWorld world(cluster, wopts);
    world.run([](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      co_await rank.barrier();
      co_await rank.allreduce(4096);
      co_await rank.bcast(0, 64_KiB);
      co_await rank.reduce(0, 4096);
      co_await rank.allgather(1024);
      co_await rank.scan(512);
      std::vector<int> everyone;
      for (int r = 0; r < 8; ++r) everyone.push_back(r);
      co_await rank.alltoallv(everyone, 8192);
      co_await rank.cart_create();
      co_await rank.comm_create();
      co_await rank.finalize();
    });
    auto table = world.stats_table();
    for (const char* call : {"Barrier", "Allreduce", "Bcast", "Reduce", "Allgather",
                             "Scan", "Alltoallv", "Cart_create", "Comm_create", "Init",
                             "Finalize"}) {
      const auto* row = table.row(call);
      ASSERT_NE(row, nullptr) << call << " on " << to_string(mode);
      EXPECT_GT(row->time_ms, 0.0) << call;
    }
  }
}

TEST(MpiRuntime, IntraNodeTrafficBypassesDevice) {
  mpirt::Cluster cluster(small_opts(1, os::OsMode::linux));
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 4;
  mpirt::MpiWorld world(cluster, wopts);
  world.run([](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    const int peer = rank.id() ^ 1;
    if (rank.id() < peer) {
      co_await rank.send(peer, 3, 256_KiB);
    } else {
      co_await rank.recv(peer, 3, 256_KiB);
    }
    co_await rank.finalize();
  });
  // Same-node messages ride shared memory: no writev, no SDMA.
  EXPECT_EQ(cluster.node(0).driver->writev_calls(), 0u);
  EXPECT_EQ(cluster.node(0).device->total_descriptors(), 0u);
}

TEST(MpiRuntime, WaitTimeExplodesUnderOffloadContention) {
  // The Table-1 effect in miniature: many ranks per node doing expected-
  // protocol exchanges; plain McKernel funnels every TID ioctl and writev
  // through 4 service CPUs.
  auto run_mode = [&](os::OsMode mode) {
    auto copts = small_opts(2, mode);
    // A fat test link isolates the syscall path from wire serialization.
    copts.fabric.link_bytes_per_sec = 100e9;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 32;
    mpirt::MpiWorld world(cluster, wopts);
    const int P = 64;
    world.run([P](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      const int peer = (rank.id() + P / 2) % P;  // cross-node pairing
      for (int iter = 0; iter < 2; ++iter) {
        auto r = rank.irecv(peer, 100 + iter, 1_MiB);
        auto s = rank.isend(peer, 100 + iter, 1_MiB);
        co_await rank.wait(std::move(s));
        co_await rank.wait(std::move(r));
      }
      co_await rank.finalize();
    });
    auto table = world.stats_table();
    const auto* wait_row = table.row("Wait");
    EXPECT_NE(wait_row, nullptr);
    struct Outcome {
      double wait_ms;
      double datapath_kernel_ms;  // writev kernel time (pure data path —
                                  // ioctl also carries Init admin calls)
    };
    auto prof = cluster.app_kernel_profile();
    return Outcome{wait_row != nullptr ? wait_row->time_ms : 0.0,
                   prof.total_us_of("writev") / 1000.0};
  };

  const auto linux_r = run_mode(os::OsMode::linux);
  const auto mck_r = run_mode(os::OsMode::mckernel);
  const auto hfi_r = run_mode(os::OsMode::mckernel_hfi);
  // The direct mechanism: data-path syscall time explodes under offload
  // and collapses below native Linux with the PicoDriver.
  EXPECT_GT(mck_r.datapath_kernel_ms, 5.0 * linux_r.datapath_kernel_ms);
  EXPECT_LT(hfi_r.datapath_kernel_ms, linux_r.datapath_kernel_ms);
  // And its application-visible echo in MPI_Wait.
  EXPECT_GT(mck_r.wait_ms, 1.1 * linux_r.wait_ms)
      << "offloading should inflate MPI_Wait under contention";
  EXPECT_LT(hfi_r.wait_ms, 0.75 * mck_r.wait_ms)
      << "PicoDriver should collapse the offload penalty";
  EXPECT_LT(hfi_r.wait_ms, linux_r.wait_ms)
      << "the fast path beats even native Linux (10 KiB descriptors, no gup)";
}

TEST(MpiRuntime, InitCostsMoreWithPico) {
  auto init_ms = [&](os::OsMode mode) {
    mpirt::Cluster cluster(small_opts(1, mode));
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 2;
    mpirt::MpiWorld world(cluster, wopts);
    world.run([](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      co_await rank.finalize();
    });
    return world.stats_table().row("Init")->time_ms;
  };
  const double linux_init = init_ms(os::OsMode::linux);
  const double mck_init = init_ms(os::OsMode::mckernel);
  const double hfi_init = init_ms(os::OsMode::mckernel_hfi);
  EXPECT_GT(mck_init, linux_init) << "offloaded device setup costs more";
  EXPECT_GT(hfi_init, mck_init) << "PicoDriver binding adds Init time (Table 1)";
}

TEST(MpiRuntime, RuntimeAndStatsAccounting) {
  mpirt::Cluster cluster(small_opts(1, os::OsMode::linux));
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 2;
  mpirt::MpiWorld world(cluster, wopts);
  world.run([](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.compute(from_ms(2.0));
    co_await rank.barrier();
    co_await rank.finalize();
  });
  EXPECT_GT(world.max_runtime(), from_ms(2.0));
  auto table = world.stats_table();
  EXPECT_GT(table.total_runtime_ms(), 2.0 * 2);  // two ranks
  EXPECT_GT(table.total_mpi_ms(), 0.0);
  EXPECT_LT(table.total_mpi_ms(), table.total_runtime_ms());
  // %MPI sums to 100 across rows.
  double pct = 0;
  for (const auto& row : table.rows()) pct += row.pct_mpi;
  EXPECT_NEAR(pct, 100.0, 1e-6);
}

}  // namespace
}  // namespace pd
