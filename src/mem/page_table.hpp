// Four-level radix page table (x86_64-shaped: 48-bit VA, 9 bits per level,
// 4 KiB leaves at level 1, 2 MiB leaves at level 2 and 1 GiB leaves at
// level 3 — the latter is what makes mapping a 64 TiB physical direct map
// practical).
//
// Both kernels' address spaces are backed by this structure. The PicoDriver
// fast path (paper §3.4) walks it directly to discover physically
// contiguous runs — including large pages — instead of collecting `struct
// page` references the way the Linux driver's get_user_pages() path does.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/status.hpp"
#include "src/mem/types.hpp"

namespace pd::mem {

/// Result of translating one virtual address.
struct Translation {
  PhysAddr pa = 0;           // physical address of the byte at `va`
  std::uint64_t page = 0;    // backing page size (4K / 2M / 1G)
  std::uint32_t prot = 0;    // Prot bits
};

class PageTable {
 public:
  PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  PageTable(PageTable&&) = default;
  PageTable& operator=(PageTable&&) = default;

  /// Map one page of `page_size` (kPage4K / kPage2M / kPage1G). Both
  /// addresses must be aligned to `page_size`. EEXIST if already mapped.
  Status map(VirtAddr va, PhysAddr pa, std::uint64_t page_size, std::uint32_t prot);

  /// Map a run of pages covering [va, va+len).
  Status map_range(VirtAddr va, PhysAddr pa, std::uint64_t len, std::uint64_t page_size,
                   std::uint32_t prot);

  /// Remove the page mapping containing `va` (any size). ENOENT if absent.
  Status unmap(VirtAddr va);

  /// Remove all mappings intersecting [va, va+len).
  void unmap_range(VirtAddr va, std::uint64_t len);

  /// Translate a virtual address.
  std::optional<Translation> translate(VirtAddr va) const;

  std::uint64_t mapped_pages() const { return mapped_pages_; }

 private:
  struct Node;
  struct Entry {
    bool present = false;
    bool leaf = false;  // terminal mapping at this level
    std::uint32_t prot = 0;
    PhysAddr pa = 0;
    std::unique_ptr<Node> child;
  };
  struct Node {
    std::array<Entry, 512> entries;
  };

  static int level_shift(int level) { return 12 + 9 * level; }  // level 0 = PTE
  static std::size_t index_at(VirtAddr va, int level) {
    return (va >> level_shift(level)) & 0x1FF;
  }

  std::unique_ptr<Node> root_;  // level 3 (PML4)
  std::uint64_t mapped_pages_ = 0;
};

}  // namespace pd::mem
