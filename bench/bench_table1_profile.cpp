// Table 1: communication profile of UMT2013, HACC and QBOX on 8 compute
// nodes — the top five MPI calls per OS configuration, with cumulative
// Time (summed over ranks), % of MPI time, and % of total runtime.
//
// Paper highlights reproduced here:
//   * MPI_Wait on plain McKernel is an order of magnitude above both
//     Linux and McKernel+HFI1 for UMT2013/HACC (bold in the paper);
//   * MPI_Init is *largest* on McKernel+HFI1 (italic in the paper): the
//     PicoDriver pays extra setup in exchange for fast-path wins later.
#include <map>

#include "bench/bench_common.hpp"
#include "src/apps/proxies.hpp"

namespace {

using namespace pd;
using namespace pd::apps;

RunOutcome run_profiled(os::OsMode mode, const char* app,
                        const std::function<sim::Task<>(mpirt::Rank&)>& body, int rpn,
                        std::uint64_t buf_bytes) {
  (void)app;
  mpirt::ClusterOptions copts;
  copts.nodes = 8;
  copts.mode = mode;
  copts.mcdram_bytes = 1ull << 30;
  copts.ddr_bytes = 2ull << 30;
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = rpn;
  wopts.buf_bytes = buf_bytes;
  return run_app(copts, wopts, body);
}

void print_profile(const char* app, const std::function<sim::Task<>(mpirt::Rank&)>& body,
                   int rpn, std::uint64_t buf_bytes) {
  std::printf("--- %s (8 nodes, %d ranks/node) ---\n", app, rpn);
  for (os::OsMode mode : bench::all_modes()) {
    const RunOutcome out = run_profiled(mode, app, body, rpn, buf_bytes);
    TextTable table({"Call (MPI_)", "Time ms", "% MPI", "% Rt"});
    for (const auto& row : out.mpi.rows(5)) {
      table.add_row({row.call, format_double(row.time_ms, 2),
                     format_double(row.pct_mpi, 2), format_double(row.pct_runtime, 2)});
    }
    std::printf("%s:\n%s\n", to_string(mode), table.to_string().c_str());
  }
}

}  // namespace

int main() {
  bench::print_banner(
      "Table 1 — communication profile on 8 compute nodes",
      "top-5 MPI calls; MPI_Wait explodes on McKernel, MPI_Init largest on +HFI1");

  UmtParams umt;
  print_profile("UMT2013", [umt](mpirt::Rank& r) { return umt_rank(r, umt); }, kUmtRpn,
                1ull << 20);
  HaccParams hacc;
  print_profile("HACC", [hacc](mpirt::Rank& r) { return hacc_rank(r, hacc); }, kHaccRpn,
                1ull << 20);
  QboxParams qbox;
  print_profile("QBOX", [qbox](mpirt::Rank& r) { return qbox_rank(r, qbox); }, kQboxRpn,
                4ull << 20);
  return 0;
}
