# Empty compiler generated dependencies file for dwarf_ext_test.
# This may be replaced when dependencies are built.
