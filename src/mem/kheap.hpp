// Kernel heap with per-core free lists and cross-kernel free handling
// (paper §3.3).
//
// McKernel's allocator keeps per-core free lists, so kfree() must know
// which CPU it runs on. An SDMA completion IRQ, however, executes on a
// *Linux* CPU while freeing LWK-allocated metadata. The original allocator
// would fail there; the PicoDriver extension detects the foreign CPU and
// routes the block to a remote-free queue that the owning core drains.
//
// Blocks carry real host bytes (`data()`): the simulated driver keeps its
// structure images in them, and the LWK reads those images through
// DWARF-extracted offsets — so the cross-kernel pointer story is exercised
// with actual memory, not just bookkeeping.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/types.hpp"

namespace pd::mem {

/// Policy for kfree() called on a CPU outside the owning kernel's set.
enum class ForeignFreePolicy {
  fail,          // original McKernel: allocator is per-core, call fails
  remote_queue,  // PicoDriver extension: enqueue for the owning core
};

class KernelHeap {
 public:
  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t local_frees = 0;
    std::uint64_t remote_frees = 0;    // routed through the remote queue
    std::uint64_t rejected_frees = 0;  // failed under ForeignFreePolicy::fail
    std::uint64_t bytes_live = 0;
  };

  /// `owned_cpus`: logical CPU ids this kernel's allocator may run on.
  /// `heap_base`: simulated physical base of the heap arena.
  KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy,
             PhysAddr heap_base = 0x0000'00F0'0000'0000ull);

  /// Allocate `size` bytes on behalf of `cpu` (must be an owned CPU).
  /// Returns the simulated physical address of the block.
  Result<PhysAddr> kmalloc(std::uint64_t size, int cpu);

  /// Free from any CPU. Foreign CPUs follow the configured policy.
  Status kfree(PhysAddr addr, int cpu);

  /// Drain this core's remote-free queue (the owning kernel calls this
  /// periodically, e.g. on its scheduler tick). Returns blocks reclaimed.
  std::size_t drain_remote_frees(int cpu);

  /// Host-memory view of a live block (nullptr when not allocated).
  std::span<std::uint8_t> data(PhysAddr addr);

  bool owns_cpu(int cpu) const;
  std::size_t remote_queue_depth(int cpu) const;
  const Stats& stats() const { return stats_; }
  std::size_t live_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::uint64_t size;
    int owner_cpu;  // core whose free list the block came from
    std::unique_ptr<std::uint8_t[]> bytes;
  };

  std::vector<int> owned_cpus_;
  ForeignFreePolicy policy_;
  PhysAddr next_addr_;
  std::map<PhysAddr, Block> blocks_;
  std::map<int, std::deque<PhysAddr>> remote_free_queues_;  // keyed by owner cpu
  Stats stats_;
};

}  // namespace pd::mem
