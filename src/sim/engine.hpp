// Discrete-event simulation engine.
//
// The whole cluster model runs single-threaded on one `Engine`: an event is
// a (time, sequence, callback) triple in a binary heap; ties break in
// insertion order so the simulation is deterministic. Simulated entities are
// written as C++20 coroutines (`Task<T>`, see task.hpp) that `co_await`
// delays and synchronization primitives; the engine resumes them from the
// event loop.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.hpp"

namespace pd::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Run `fn` at absolute simulated time `t` (>= now, asserted).
  void schedule_at(Time t, std::function<void()> fn);

  /// Run `fn` after `d` picoseconds of simulated time.
  void schedule_after(Dur d, std::function<void()> fn) { schedule_at(now_ + d, std::move(fn)); }

  /// Resume a suspended coroutine after `d` (used by awaitables).
  void schedule_resume(Dur d, std::coroutine_handle<> h);

  /// Awaitable: `co_await engine.delay(10_us);`
  struct DelayAwaiter {
    Engine& engine;
    Dur d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { engine.schedule_resume(d, h); }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(Dur d) { return DelayAwaiter{*this, d}; }

  /// Awaitable that reschedules the coroutine at the current time, behind
  /// everything already queued for `now()` — a cooperative yield.
  DelayAwaiter yield() { return DelayAwaiter{*this, 0}; }

  /// Process events until the queue drains. Returns the number processed.
  std::uint64_t run();

  /// Process events until the queue drains or `deadline` is passed.
  std::uint64_t run_until(Time deadline);

  /// Pop and execute a single event. False when the queue is empty.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Detached-task bookkeeping (see spawn in task.hpp). The engine records
  /// each detached frame so immortal service loops (device engines that
  /// `while (true)` forever) are destroyed with the engine rather than
  /// leaked when the simulation ends.
  void note_task_spawned(std::coroutine_handle<> h) { detached_.insert(h.address()); }
  void note_task_done(std::coroutine_handle<> h) { detached_.erase(h.address()); }
  std::int64_t live_tasks() const { return static_cast<std::int64_t>(detached_.size()); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::unordered_set<void*> detached_;  // frames of live detached tasks
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace pd::sim
