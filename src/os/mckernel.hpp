// McKernel: the lightweight co-kernel (paper §2.1) with the PicoDriver
// fast-path hook points.
//
// McKernel implements its own memory management and a handful of syscalls;
// everything else — including every device-file operation, unless a
// PicoDriver registered a fast path for it — is delegated to Linux through
// IHK. The fast-path registry is deliberately tiny: a device maps to a
// writev handler, an ioctl handler and a predicate saying *which* ioctl
// commands the LWK handles (three TID commands out of a dozen, §2.2.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>

#include "src/common/status.hpp"
#include "src/mem/kheap.hpp"
#include "src/os/ihk.hpp"
#include "src/os/kernel.hpp"

namespace pd::os {

/// Fast-path device operations a PicoDriver installs into the LWK.
struct FastPathOps {
  std::function<sim::Task<Result<long>>(OpenFile&, std::span<const IoVec>)> writev;
  std::function<sim::Task<Result<long>>(OpenFile&, unsigned long, void*)> ioctl;
  std::function<bool(unsigned long)> ioctl_handles;  // cmd → fast path?
};

class McKernel : public Kernel {
 public:
  /// `unified_layout`: boot with the PicoDriver VA layout (Figure 3 right)
  /// instead of the original one. Required before any PicoDriver can bind.
  McKernel(sim::Engine& engine, const Config& cfg, Ihk& ihk, bool unified_layout,
           int node = 0);

  Ihk& ihk() { return ihk_; }
  bool unified() const { return unified_; }

  /// --- PicoDriver fast-path registry -------------------------------------
  void register_fastpath(CharDevice& dev, FastPathOps ops);
  const FastPathOps* fastpath(const CharDevice& dev) const;
  bool has_fastpath(const CharDevice& dev) const { return fastpath(dev) != nullptr; }

  /// --- §3.3 pieces --------------------------------------------------------
  std::string spinlock_abi() const { return "ticket-spinlock-x86_64-v2"; }
  mem::KernelHeap& kheap() { return *kheap_; }

  /// Scheduler-tick housekeeping: drain remote-free queues for LWK cores,
  /// one per-source-socket batch at a time; cross-socket reclaim events
  /// land on the profiler as "lwk.kheap.cross_socket_drain".
  std::size_t drain_remote_frees();

  /// Publish kheap placement outcomes accumulated since `before` as
  /// profiler counters ("lwk.kheap.{near_alloc,far_alloc,
  /// partition_exhausted}"); call sites snapshot stats() around kmalloc.
  void note_kheap_placement(const mem::KernelHeap::Stats& before);

  /// CPU ids the LWK owns (app cores).
  const std::vector<int>& cpus() const { return cpus_; }

  /// --- elastic repartitioning (§8.7) --------------------------------------
  /// Adopt `cpu` at runtime (a Linux service core retired into the LWK):
  /// joins the scheduled set and the kheap's owned set. EINVAL when already
  /// owned.
  Status adopt_cpu(int cpu);
  /// Yield `cpu` back to Linux: the kheap drains its remote-free queue,
  /// donates its magazines and re-homes its blocks, then the core leaves
  /// the scheduled set. EINVAL when not owned, EBUSY when it is the last
  /// LWK core.
  Status yield_cpu(int cpu);

 private:
  Ihk& ihk_;
  bool unified_;
  std::vector<int> cpus_;
  std::unique_ptr<mem::KernelHeap> kheap_;
  std::map<const CharDevice*, FastPathOps> fastpaths_;
};

}  // namespace pd::os
