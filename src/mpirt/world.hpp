// A minimal MPI-like runtime over the PSM endpoints, with an intra-node
// shared-memory transport (as Intel MPI uses on OFP: only inter-node
// traffic touches the HFI driver and thus the syscall paths the paper is
// about).
//
// All collective algorithms are the textbook ones (dissemination barrier/
// allreduce, binomial bcast/reduce, pairwise alltoallv, chain scan); what
// matters for the reproduction is the *message pattern and sizes* they
// generate, which drive the protocol selection in PSM and from there the
// per-OS-mode syscall behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/mpirt/cluster.hpp"
#include "src/mpirt/stats.hpp"
#include "src/psm/endpoint.hpp"

namespace pd::mpirt {

struct WorldOptions {
  int ranks_per_node = 32;
  std::uint64_t buf_bytes = 4ull << 20;   // per-direction comm buffer
  std::uint64_t slot_bytes = 256ull << 10;  // rotation grain for small msgs
};

class MpiWorld;

/// One nonblocking-operation handle.
struct MpiReqState {
  bool shm = false;
  psm::PsmHandle psm;                  // remote transport
  bool complete = false;               // shm transport
  std::unique_ptr<sim::Latch> done;    // shm transport
};
using MpiReq = std::shared_ptr<MpiReqState>;

class Rank {
 public:
  Rank(MpiWorld& world, int id, std::unique_ptr<os::Process> proc,
       std::unique_ptr<psm::Endpoint> ep);
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }
  int node() const { return proc_->node(); }
  MpiWorld& world() { return world_; }
  os::Process& process() { return *proc_; }
  psm::Endpoint& endpoint() { return *ep_; }
  MpiStats& stats() { return stats_; }
  const MpiStats& stats() const { return stats_; }

  /// --- MPI surface (each call records into stats()) -----------------------
  sim::Task<> init();
  sim::Task<> finalize();

  MpiReq isend(int dst, int tag, std::uint64_t bytes);
  MpiReq irecv(int src, int tag, std::uint64_t bytes);
  sim::Task<> wait(MpiReq req);
  sim::Task<> waitall(std::vector<MpiReq> reqs);
  sim::Task<> send(int dst, int tag, std::uint64_t bytes);
  sim::Task<> recv(int src, int tag, std::uint64_t bytes);

  /// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start):
  /// UMT2013 uses these, and MPI_Start shows up in its Table-1 profile.
  /// The handle is re-armed by start(); wait() completes one round.
  struct Persistent {
    bool is_send = false;
    int peer = 0;
    int tag = 0;
    std::uint64_t bytes = 0;
    MpiReq active;  // the in-flight round, null when idle
  };
  using MpiPersist = std::shared_ptr<Persistent>;

  MpiPersist send_init(int dst, int tag, std::uint64_t bytes);
  MpiPersist recv_init(int src, int tag, std::uint64_t bytes);
  /// MPI_Start: arm one round. Recorded as "Start" (Table 1).
  void start(const MpiPersist& p);
  void startall(const std::vector<MpiPersist>& ps);
  sim::Task<> wait(const MpiPersist& p);
  sim::Task<> waitall_persist(const std::vector<MpiPersist>& ps);

  sim::Task<> barrier();
  sim::Task<> allreduce(std::uint64_t bytes);
  sim::Task<> reduce(int root, std::uint64_t bytes);
  sim::Task<> bcast(int root, std::uint64_t bytes);
  sim::Task<> allgather(std::uint64_t bytes_per_rank);
  /// Pairwise exchange among `members` (every world rank must still call
  /// this for tag bookkeeping; non-members return immediately).
  sim::Task<> alltoallv(const std::vector<int>& members, std::uint64_t bytes_per_pair);
  sim::Task<> scan(std::uint64_t bytes);
  sim::Task<> cart_create();
  sim::Task<> comm_create();

  /// Application compute (noise-modelled, not counted as MPI time).
  sim::Task<> compute(Dur work);

  /// Bracket the solve region (figure-of-merit window).
  void solve_begin();
  void solve_end();

 private:
  friend class MpiWorld;

  MpiReq post_send(int dst, int tag, std::uint64_t bytes);
  MpiReq post_recv(int src, int tag, std::uint64_t bytes);
  sim::Task<> await_req(MpiReq req);
  sim::Task<> sendrecv(int dst, int src, int tag, std::uint64_t bytes);

  sim::Task<> barrier_impl();
  sim::Task<> dissemination(std::uint64_t bytes_per_round);
  sim::Task<> allgather_impl(std::uint64_t bytes_per_rank);
  sim::Task<> bcast_impl(int root, std::uint64_t bytes);

  // Hierarchical collective building blocks (Intel-MPI style: shared
  // memory within the node, only node leaders on the fabric).
  int node_leader() const;
  int local_index() const;
  os::SyscallProfiler& kernel_profiler() { return proc_->kernel().profiler(); }
  sim::Task<> intra_reduce_to_leader(std::uint64_t bytes);
  sim::Task<> intra_release_from_leader(std::uint64_t bytes);
  sim::Task<> leader_dissemination(std::uint64_t bytes);

  mem::VirtAddr send_slot(std::uint64_t bytes);
  mem::VirtAddr recv_slot(std::uint64_t bytes);
  int coll_tag(int round) const;

  MpiWorld& world_;
  int id_;
  std::unique_ptr<os::Process> proc_;
  std::unique_ptr<psm::Endpoint> ep_;
  MpiStats stats_;

  mem::VirtAddr sendbuf_ = 0;
  mem::VirtAddr recvbuf_ = 0;
  std::uint64_t send_slot_idx_ = 0;
  std::uint64_t recv_slot_idx_ = 0;
  std::uint32_t coll_seq_ = 0;
  Time init_start_ = 0;
  Time solve_start_ = 0;
};

class MpiWorld {
 public:
  MpiWorld(Cluster& cluster, WorldOptions opts = {});

  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  Cluster& cluster() { return cluster_; }
  const WorldOptions& options() const { return opts_; }

  int node_of(int r) const { return r / opts_.ranks_per_node; }
  int ctxt_of(int r) const { return r % opts_.ranks_per_node; }

  /// Run the SPMD program: spawn `body` on every rank and drive the engine
  /// until the cluster is idle. Asserts every rank ran to completion.
  void run(const std::function<sim::Task<>(Rank&)>& body);

  /// Aggregated Table-1 style statistics over all ranks.
  MpiStatsTable stats_table() const;

  /// Longest per-rank runtime (the figure-of-merit for weak scaling).
  Dur max_runtime() const;
  /// Longest per-rank solve-region time (falls back to runtime when the
  /// program set no solve bracket).
  Dur max_solve() const;

 private:
  friend class Rank;

  // Intra-node shared-memory transport.
  struct ShmPosted {
    MpiReq req;
    int src;
    int tag;
  };
  struct ShmPending {
    int src;
    int tag;
    std::uint64_t bytes;
  };
  struct ShmInbox {
    std::vector<ShmPosted> posted;
    std::vector<ShmPending> unexpected;
  };

  void shm_send(int src, int dst, int tag, std::uint64_t bytes);
  void shm_post(int dst, MpiReq req, int src, int tag);
  static void shm_complete(MpiReq& req);

  Cluster& cluster_;
  WorldOptions opts_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<ShmInbox> inboxes_;
  // Atomic: rank bodies complete on their node's shard, possibly in parallel.
  std::atomic<int> completed_{0};
};

}  // namespace pd::mpirt
