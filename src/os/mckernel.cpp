#include "src/os/mckernel.hpp"

#include <algorithm>

namespace pd::os {

McKernel::McKernel(sim::Engine& engine, const Config& cfg, Ihk& ihk, bool unified_layout,
                   int node)
    : Kernel(engine, cfg, "mckernel",
             unified_layout ? mem::mckernel_unified_layout() : mem::mckernel_original_layout(),
             cfg.lwk_noise,
             cfg.noise_seed ^ (0x11CCull + static_cast<std::uint64_t>(node) *
                                               0x9E3779B97F4A7C15ull)),
      ihk_(ihk),
      unified_(unified_layout) {
  // IHK hands the LWK the app cores: [service_cpus, cores_per_node).
  for (int c = cfg.linux_service_cpus; c < cfg.cores_per_node; ++c) cpus_.push_back(c);
  // The node's SNC quadrants: every CPU — LWK app cores and the Linux
  // service CPUs that run completion IRQs — maps to a socket, so foreign
  // frees carry their true source socket into the remote queues.
  const mem::NumaTopology topo =
      mem::NumaTopology::blocked(cfg.cores_per_node, cfg.numa_per_kind);
  kheap_ = std::make_unique<mem::KernelHeap>(
      cpus_,
      // The remote-free queue only exists with the PicoDriver extension
      // (which requires the unified layout); the original allocator fails
      // on foreign CPUs.
      unified_ ? mem::ForeignFreePolicy::remote_queue : mem::ForeignFreePolicy::fail,
      topo, mem::PartitionBudget{cfg.kheap_near_bytes, cfg.kheap_far_bytes},
      // NUMA-aware placement rides with the PicoDriver extension too; the
      // original allocator stays placement-ignorant.
      unified_ ? mem::PlacementPolicy::numa_aware : mem::PlacementPolicy::flat,
      /*heap_base=*/0x0000'00F0'0000'0000ull);
}

Status McKernel::adopt_cpu(int cpu) {
  if (std::find(cpus_.begin(), cpus_.end(), cpu) != cpus_.end()) return Errno::einval;
  if (const Status s = kheap_->adopt_cpu(cpu); !s.ok()) return s;
  cpus_.push_back(cpu);
  std::sort(cpus_.begin(), cpus_.end());
  return Status::success();
}

Status McKernel::yield_cpu(int cpu) {
  auto it = std::find(cpus_.begin(), cpus_.end(), cpu);
  if (it == cpus_.end()) return Errno::einval;
  if (cpus_.size() <= 1) return Errno::ebusy;
  // release_cpu drains the core's remote-free queue and re-homes its blocks
  // onto a same-socket survivor before the core leaves the scheduled set.
  if (const Status s = kheap_->release_cpu(cpu); !s.ok()) return s;
  cpus_.erase(it);
  return Status::success();
}

void McKernel::register_fastpath(CharDevice& dev, FastPathOps ops) {
  fastpaths_[&dev] = std::move(ops);
}

const FastPathOps* McKernel::fastpath(const CharDevice& dev) const {
  auto it = fastpaths_.find(&dev);
  return it == fastpaths_.end() ? nullptr : &it->second;
}

std::size_t McKernel::drain_remote_frees() {
  const std::uint64_t cross_before = kheap_->stats().cross_socket_drains;
  std::size_t total = 0;
  for (int cpu : cpus_) total += kheap_->drain_remote_frees(cpu);
  const std::uint64_t cross = kheap_->stats().cross_socket_drains - cross_before;
  if (cross > 0) profiler().bump("lwk.kheap.cross_socket_drain", cross);
  return total;
}

void McKernel::note_kheap_placement(const mem::KernelHeap::Stats& before) {
  const mem::KernelHeap::Stats& now = kheap_->stats();
  if (now.near_allocs > before.near_allocs)
    profiler().bump("lwk.kheap.near_alloc", now.near_allocs - before.near_allocs);
  if (now.far_allocs > before.far_allocs)
    profiler().bump("lwk.kheap.far_alloc", now.far_allocs - before.far_allocs);
  if (now.partition_exhausted > before.partition_exhausted)
    profiler().bump("lwk.kheap.partition_exhausted",
                    now.partition_exhausted - before.partition_exhausted);
}

}  // namespace pd::os
