// Micro-benchmarks of the substrate (google-benchmark): the costs of the
// building blocks the simulation leans on — event engine throughput,
// coroutine task spawn, buddy allocation, page-table walks, DWARF
// parse+extract, kernel-heap remote free.
#include <benchmark/benchmark.h>

#include "src/common/units.hpp"
#include "src/dwarf/extract.hpp"
#include "src/hfi/layouts.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/kheap.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/task.hpp"

namespace {

using namespace pd;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) engine.schedule_after(i, [] {});
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_EngineScheduleRun);

void BM_CoroutineSpawnComplete(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 100; ++i) {
      sim::spawn(engine, [](sim::Engine& e) -> sim::Task<> {
        co_await e.delay(1);
        co_await e.delay(1);
      }(engine));
    }
    engine.run();
  }
}
BENCHMARK(BM_CoroutineSpawnComplete);

void BM_BuddyAllocFree(benchmark::State& state) {
  mem::BuddyAllocator buddy(0, 64_MiB);
  for (auto _ : state) {
    auto a = buddy.alloc(4096);
    benchmark::DoNotOptimize(a);
    if (a.ok()) buddy.free_bytes(*a, 4096);
  }
}
BENCHMARK(BM_BuddyAllocFree);

void BM_PageTableTranslate(benchmark::State& state) {
  mem::PageTable pt;
  for (int i = 0; i < 512; ++i)
    (void)pt.map(0x10000 + static_cast<mem::VirtAddr>(i) * 4096,
                 0x1000000 + static_cast<mem::PhysAddr>(i) * 4096, mem::kPage4K, 0);
  mem::VirtAddr va = 0x10000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.translate(va));
    va = 0x10000 + ((va + 4096) & (511ull * 4096));
  }
}
BENCHMARK(BM_PageTableTranslate);

void BM_PhysicalExtents1MiB(benchmark::State& state) {
  mem::PhysMap phys = mem::PhysMap::knl(256_MiB, 512_MiB, 1);
  mem::AddressSpace as(phys, mem::BackingPolicy::lwk_contig, mem::MemKind::mcdram,
                       0x20000000ull);
  auto va = as.mmap_anonymous(1_MiB, mem::kProtRead);
  for (auto _ : state) {
    auto extents = as.physical_extents(*va, 1_MiB, 10240);
    benchmark::DoNotOptimize(extents);
  }
}
BENCHMARK(BM_PhysicalExtents1MiB);

void BM_DwarfShipParseExtract(benchmark::State& state) {
  auto layouts = hfi::DriverLayouts::for_version("11.0-2");
  const dwarf::ModuleBinary module = layouts->ship_module();
  for (auto _ : state) {
    auto view = dwarf::DebugInfoView::parse(*module.section(".debug_abbrev"),
                                            *module.section(".debug_info"),
                                            *module.section(".debug_str"));
    auto layout = dwarf::extract_struct(*view, "sdma_state",
                                        {"current_state", "go_s99_running"});
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_DwarfShipParseExtract);

void BM_KernelHeapRemoteFreeDrain(benchmark::State& state) {
  mem::KernelHeap heap({60, 61, 62, 63}, mem::ForeignFreePolicy::remote_queue);
  for (auto _ : state) {
    auto a = heap.kmalloc(192, 60);
    (void)heap.kfree(*a, /*linux cpu=*/0);
    benchmark::DoNotOptimize(heap.drain_remote_frees(60));
  }
}
BENCHMARK(BM_KernelHeapRemoteFreeDrain);

}  // namespace

BENCHMARK_MAIN();
