file(REMOVE_RECURSE
  "CMakeFiles/dwarf_ext_test.dir/dwarf_ext_test.cpp.o"
  "CMakeFiles/dwarf_ext_test.dir/dwarf_ext_test.cpp.o.d"
  "dwarf_ext_test"
  "dwarf_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
