// Shared helpers for the paper-reproduction benches.
//
// Every bench binary prints the rows of one table/figure from the paper.
// Set PD_QUICK=1 to trim sweep points (CI-friendly); the default regenerates
// the full figure.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/os/config.hpp"
#include "src/os/ihk.hpp"

namespace pd::bench {

inline bool quick_mode() {
  const char* v = std::getenv("PD_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void print_banner(const char* figure, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

/// The paper's node-count axis (1..256); quick mode keeps a subset.
inline std::vector<int> node_axis(int max_nodes = 256, int min_nodes = 1) {
  std::vector<int> nodes;
  for (int n = min_nodes; n <= max_nodes; n *= 2) {
    if (quick_mode() && n != min_nodes && n != max_nodes && n != 8) continue;
    nodes.push_back(n);
  }
  return nodes;
}

inline const std::vector<pd::os::OsMode>& all_modes() {
  static const std::vector<pd::os::OsMode> modes = {
      pd::os::OsMode::linux, pd::os::OsMode::mckernel, pd::os::OsMode::mckernel_hfi};
  return modes;
}

/// --- offload storm harness -----------------------------------------------
/// The paper's squeeze in isolation: `ranks` LWK submitters hammering one
/// node's Ihk (no MPI, no device model), so the legacy and ring transports
/// can be compared on identical syscall streams. Every 4th offload is a
/// control-class call, the rest bulk; the channel hint is the rank id.

struct StormResult {
  std::uint64_t offloads = 0;
  double offloads_per_ms = 0;  // completed per simulated millisecond
  ikc::QueueingSummary queue;
  std::uint64_t degraded = 0;
  std::uint64_t timeouts = 0;
  double sim_ms = 0;
  // Wakeup accounting (§8.4): the return path's cost in cross-kernel
  // wakeups. `doorbells` are submit-side loop wakeups, `reply_wakeups`
  // completion-side consumer wakeups (one per request in latch mode; one
  // per drained batch per parked channel with reply rings).
  std::uint64_t doorbells = 0;
  std::uint64_t reply_wakeups = 0;
  // Direct-mode equivalents: one proxy wakeup per submit, one LWK wakeup
  // per reply (always zero in ring mode, and vice versa).
  std::uint64_t direct_proxy_wakeups = 0;
  std::uint64_t direct_reply_wakeups = 0;
  double wakeups_per_offload = 0;  // all wakeups / offloads, either transport
  std::uint64_t adaptive_grow = 0;
  std::uint64_t adaptive_shrink = 0;
  std::uint64_t remote_drains = 0;
};

namespace detail {
inline sim::Task<> storm_rank(sim::Engine& eng, os::Ihk& ihk, int rank, int per_rank,
                              Dur work, Dur gap) {
  for (int k = 0; k < per_rank; ++k) {
    const auto prio = (k % 4 == 0) ? ikc::Priority::control : ikc::Priority::bulk;
    auto r = co_await ihk.offload(
        [&eng, work]() -> sim::Task<Result<long>> {
          co_await eng.delay(work);
          co_return 0L;
        },
        prio, rank);
    (void)r;
    co_await eng.delay(gap);
  }
}
}  // namespace detail

inline StormResult run_offload_storm(const os::Config& cfg, int ranks, int per_rank,
                                     Dur work, Dur gap) {
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  for (int r = 0; r < ranks; ++r)
    sim::spawn(engine, detail::storm_rank(engine, ihk, r, per_rank, work, gap));
  engine.run();

  StormResult out;
  out.offloads = ihk.offload_count();
  out.queue = ihk.queueing_summary();
  out.degraded = linux_kernel.profiler().counter("ikc.ring.degraded");
  out.timeouts = linux_kernel.profiler().counter("ikc.ring.timeout");
  out.sim_ms = to_ms(engine.now());
  if (out.sim_ms > 0) out.offloads_per_ms = static_cast<double>(out.offloads) / out.sim_ms;
  out.doorbells = linux_kernel.profiler().counter("ikc.ring.doorbell");
  out.reply_wakeups = linux_kernel.profiler().counter("ikc.reply.wakeup");
  out.direct_proxy_wakeups = linux_kernel.profiler().counter("ikc.direct.proxy_wakeup");
  out.direct_reply_wakeups = linux_kernel.profiler().counter("ikc.direct.reply_wakeup");
  if (out.offloads > 0)
    out.wakeups_per_offload =
        static_cast<double>(out.doorbells + out.reply_wakeups +
                            out.direct_proxy_wakeups + out.direct_reply_wakeups) /
        static_cast<double>(out.offloads);
  out.adaptive_grow = linux_kernel.profiler().counter("ikc.adaptive.grow");
  out.adaptive_shrink = linux_kernel.profiler().counter("ikc.adaptive.shrink");
  out.remote_drains = linux_kernel.profiler().counter("ikc.numa.remote_drain");
  return out;
}

}  // namespace pd::bench
