file(REMOVE_RECURSE
  "libpd_mem.a"
)
