file(REMOVE_RECURSE
  "CMakeFiles/dwarf_test.dir/dwarf_test.cpp.o"
  "CMakeFiles/dwarf_test.dir/dwarf_test.cpp.o.d"
  "dwarf_test"
  "dwarf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
