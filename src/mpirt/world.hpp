// A minimal MPI-like runtime over the PSM endpoints, with an intra-node
// shared-memory transport (as Intel MPI uses on OFP: only inter-node
// traffic touches the HFI driver and thus the syscall paths the paper is
// about).
//
// Collectives are hierarchical (shared memory within the node, only node
// leaders on the fabric) and — like a real MPI — *algorithm-selected* by a
// size/rank-count crossover (`CollectiveTuning`): allreduce switches
// dissemination → recursive doubling → ring as payloads grow, bcast and
// reduce switch binomial tree → pipelined chain, and alltoall switches
// spread (post-everything) → pairwise rounds. What matters for the
// reproduction is the *message pattern and sizes* each algorithm generates,
// which drive the protocol selection in PSM and from there the per-OS-mode
// syscall behaviour — and, at scale, how often the whole communicator waits
// on one noisy straggler (the OS-noise amplification study). Every rank
// tags the algorithm that actually ran into its stats (I_MPI_STATS-style).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/mpirt/cluster.hpp"
#include "src/mpirt/stats.hpp"
#include "src/psm/endpoint.hpp"

namespace pd::mpirt {

/// Size/rank-count crossover knobs for collective algorithm selection
/// (I_MPI_ADJUST-style). Defaults keep the seed's tiny-payload behaviour
/// (dissemination / binomial) and switch algorithms where the textbook
/// cost models actually cross over. A `force_*` string pins the algorithm
/// for ablation sweeps; empty means auto.
struct CollectiveTuning {
  // Allreduce leader phase: below `allreduce_rd_bytes` stay with the
  // latency-optimal dissemination butterfly; from there recursive doubling
  // (fewer rounds at full payload); at `allreduce_ring_bytes` with at least
  // `allreduce_ring_min_leaders` leaders, the bandwidth-optimal ring
  // (reduce-scatter + allgather, 2(N-1) chunk steps).
  std::uint64_t allreduce_rd_bytes = 1024;
  std::uint64_t allreduce_ring_bytes = 256ull << 10;
  int allreduce_ring_min_leaders = 4;
  // Bcast leader phase: binomial tree below, pipelined chain at/above
  // `bcast_chain_bytes` when at least `bcast_chain_min_leaders` leaders
  // give the pipeline depth to hide the chain's O(N) latency.
  std::uint64_t bcast_chain_bytes = 1ull << 20;
  int bcast_chain_min_leaders = 8;
  // Reduce (flat): binomial below, pipelined chain at/above.
  std::uint64_t reduce_chain_bytes = 1ull << 20;
  int reduce_chain_min_ranks = 8;
  // Chain pipelining grain for bcast/reduce.
  std::uint64_t chain_segment_bytes = 64ull << 10;
  // Alltoall: per-pair payloads <= this use spread (post everything, then
  // drain); larger use pairwise sendrecv rounds that bound rendezvous
  // concurrency. 0 = follow the node's sdma_threshold (the seed behaviour).
  std::uint64_t alltoall_pairwise_bytes = 0;
  // Ablation pins: "dissemination" | "recursive_doubling" | "ring",
  // "binomial" | "chain", "spread" | "pairwise".
  std::string force_allreduce;
  std::string force_bcast;
  std::string force_reduce;
  std::string force_alltoall;
};

struct WorldOptions {
  int ranks_per_node = 32;
  std::uint64_t buf_bytes = 4ull << 20;   // per-direction comm buffer
  std::uint64_t slot_bytes = 256ull << 10;  // rotation grain for small msgs
  CollectiveTuning tuning;
};

class MpiWorld;

/// One nonblocking-operation handle.
struct MpiReqState {
  bool shm = false;
  psm::PsmHandle psm;                  // remote transport
  bool complete = false;               // shm transport
  std::unique_ptr<sim::Latch> done;    // shm transport
};
using MpiReq = std::shared_ptr<MpiReqState>;

class Rank {
 public:
  Rank(MpiWorld& world, int id, std::unique_ptr<os::Process> proc,
       std::unique_ptr<psm::Endpoint> ep);
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }
  int node() const { return proc_->node(); }
  MpiWorld& world() { return world_; }
  os::Process& process() { return *proc_; }
  psm::Endpoint& endpoint() { return *ep_; }
  MpiStats& stats() { return stats_; }
  const MpiStats& stats() const { return stats_; }

  /// --- MPI surface (each call records into stats()) -----------------------
  sim::Task<> init();
  sim::Task<> finalize();

  MpiReq isend(int dst, int tag, std::uint64_t bytes);
  MpiReq irecv(int src, int tag, std::uint64_t bytes);
  sim::Task<> wait(MpiReq req);
  sim::Task<> waitall(std::vector<MpiReq> reqs);
  sim::Task<> send(int dst, int tag, std::uint64_t bytes);
  sim::Task<> recv(int src, int tag, std::uint64_t bytes);

  /// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start):
  /// UMT2013 uses these, and MPI_Start shows up in its Table-1 profile.
  /// The handle is re-armed by start(); wait() completes one round.
  struct Persistent {
    bool is_send = false;
    int peer = 0;
    int tag = 0;
    std::uint64_t bytes = 0;
    MpiReq active;  // the in-flight round, null when idle
  };
  using MpiPersist = std::shared_ptr<Persistent>;

  MpiPersist send_init(int dst, int tag, std::uint64_t bytes);
  MpiPersist recv_init(int src, int tag, std::uint64_t bytes);
  /// MPI_Start: arm one round. Recorded as "Start" (Table 1).
  void start(const MpiPersist& p);
  void startall(const std::vector<MpiPersist>& ps);
  sim::Task<> wait(const MpiPersist& p);
  sim::Task<> waitall_persist(const std::vector<MpiPersist>& ps);

  sim::Task<> barrier();
  sim::Task<> allreduce(std::uint64_t bytes);
  sim::Task<> reduce(int root, std::uint64_t bytes);
  sim::Task<> bcast(int root, std::uint64_t bytes);
  sim::Task<> allgather(std::uint64_t bytes_per_rank);
  /// Full personalized exchange: every rank sends `bytes_per_pair` to every
  /// other rank (MPI_Alltoall; the FFT-transpose pattern).
  sim::Task<> alltoall(std::uint64_t bytes_per_pair);
  /// Exchange among `members` (every world rank must still call this for
  /// tag bookkeeping; non-members return immediately).
  sim::Task<> alltoallv(const std::vector<int>& members, std::uint64_t bytes_per_pair);
  sim::Task<> scan(std::uint64_t bytes);
  sim::Task<> cart_create();
  sim::Task<> comm_create();

  /// Application compute (noise-modelled, not counted as MPI time).
  sim::Task<> compute(Dur work);

  /// Bracket the solve region (figure-of-merit window).
  void solve_begin();
  void solve_end();

  /// --- point-to-point traffic accounting (rank-local, so shard-safe) ------
  /// Messages/bytes this rank posted, by direction. The collective property
  /// harness compares these totals against the textbook reference models.
  std::uint64_t sent_msgs() const { return sent_msgs_; }
  std::uint64_t sent_bytes() const { return sent_bytes_; }
  std::uint64_t recvd_msgs() const { return recvd_msgs_; }
  std::uint64_t recvd_bytes() const { return recvd_bytes_; }

 private:
  friend class MpiWorld;

  MpiReq post_send(int dst, int tag, std::uint64_t bytes);
  MpiReq post_recv(int src, int tag, std::uint64_t bytes);
  sim::Task<> await_req(MpiReq req);
  sim::Task<> sendrecv(int dst, int src, int tag, std::uint64_t bytes);

  sim::Task<> barrier_impl();
  sim::Task<> dissemination(std::uint64_t bytes_per_round);
  sim::Task<> allgather_impl(std::uint64_t bytes_per_rank);
  sim::Task<> bcast_impl(int root, std::uint64_t bytes);
  sim::Task<> alltoall_impl(const std::vector<int>& members,
                            std::uint64_t bytes_per_pair, const char* algo);

  // Hierarchical collective building blocks (Intel-MPI style: shared
  // memory within the node, only node leaders on the fabric).
  int node_leader() const;
  int local_index() const;
  int num_nodes() const;
  os::SyscallProfiler& kernel_profiler() { return proc_->kernel().profiler(); }
  sim::Task<> intra_reduce_to_leader(std::uint64_t bytes);
  sim::Task<> intra_release_from_leader(std::uint64_t bytes);
  sim::Task<> leader_dissemination(std::uint64_t bytes);
  sim::Task<> leader_recursive_doubling(std::uint64_t bytes);
  sim::Task<> leader_ring_allreduce(std::uint64_t bytes);
  sim::Task<> leader_chain_bcast(int root_node, std::uint64_t bytes);
  sim::Task<> chain_reduce(int root, std::uint64_t bytes);
  sim::Task<> binomial_reduce(int root, std::uint64_t bytes);

  mem::VirtAddr send_slot(std::uint64_t bytes);
  mem::VirtAddr recv_slot(std::uint64_t bytes);
  int coll_tag(int round) const;

  MpiWorld& world_;
  int id_;
  std::unique_ptr<os::Process> proc_;
  std::unique_ptr<psm::Endpoint> ep_;
  MpiStats stats_;

  mem::VirtAddr sendbuf_ = 0;
  mem::VirtAddr recvbuf_ = 0;
  std::uint64_t sent_msgs_ = 0;
  std::uint64_t sent_bytes_ = 0;
  std::uint64_t recvd_msgs_ = 0;
  std::uint64_t recvd_bytes_ = 0;
  std::uint64_t send_slot_idx_ = 0;
  std::uint64_t recv_slot_idx_ = 0;
  std::uint32_t coll_seq_ = 0;
  Time init_start_ = 0;
  Time solve_start_ = 0;
};

class MpiWorld {
 public:
  MpiWorld(Cluster& cluster, WorldOptions opts = {});

  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  Cluster& cluster() { return cluster_; }
  const WorldOptions& options() const { return opts_; }

  int node_of(int r) const { return r / opts_.ranks_per_node; }
  int ctxt_of(int r) const { return r % opts_.ranks_per_node; }

  /// Run the SPMD program: spawn `body` on every rank and drive the engine
  /// until the cluster is idle. Asserts every rank ran to completion.
  void run(const std::function<sim::Task<>(Rank&)>& body);

  /// Aggregated Table-1 style statistics over all ranks.
  MpiStatsTable stats_table() const;

  /// --- collective algorithm selection -------------------------------------
  /// The crossover decision (a pure function of payload and communicator
  /// shape, honoring the tuning's force_* pins) that the collectives run
  /// and tag into stats. Exposed so the property harness can assert the
  /// intended algorithm was picked.
  const char* allreduce_algo(std::uint64_t bytes) const;
  const char* bcast_algo(std::uint64_t bytes) const;
  const char* reduce_algo(std::uint64_t bytes) const;
  const char* alltoall_algo(std::uint64_t bytes_per_pair,
                            std::uint64_t sdma_threshold) const;

  /// Longest per-rank runtime (the figure-of-merit for weak scaling).
  Dur max_runtime() const;
  /// Longest per-rank solve-region time (falls back to runtime when the
  /// program set no solve bracket).
  Dur max_solve() const;

 private:
  friend class Rank;

  // Intra-node shared-memory transport.
  struct ShmPosted {
    MpiReq req;
    int src;
    int tag;
  };
  struct ShmPending {
    int src;
    int tag;
    std::uint64_t bytes;
  };
  struct ShmInbox {
    std::vector<ShmPosted> posted;
    std::vector<ShmPending> unexpected;
  };

  void shm_send(int src, int dst, int tag, std::uint64_t bytes);
  void shm_post(int dst, MpiReq req, int src, int tag);
  static void shm_complete(MpiReq& req);

  Cluster& cluster_;
  WorldOptions opts_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<ShmInbox> inboxes_;
  // Atomic: rank bodies complete on their node's shard, possibly in parallel.
  std::atomic<int> completed_{0};
};

}  // namespace pd::mpirt
