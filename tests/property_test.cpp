// Property-based tests: randomized operation sequences checked against
// reference models / invariants, parameterized over seeds and shapes
// (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/dwarf/leb128.hpp"
#include "src/hw/rcv_array.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/page_table.hpp"
#include "src/mem/phys.hpp"

namespace pd {
namespace {

// --- Buddy allocator: conservation, alignment, no overlap ------------------

class BuddyProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyProperty, RandomAllocFreeKeepsInvariants) {
  Rng rng(GetParam());
  mem::BuddyAllocator buddy(0x100000, 32_MiB);
  const std::uint64_t capacity = buddy.free_bytes_total();

  struct Live {
    mem::PhysAddr addr;
    std::uint64_t bytes;  // rounded block size
  };
  std::vector<Live> live;
  std::uint64_t live_bytes = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc = live.empty() || rng.next_double() < 0.55;
    if (do_alloc) {
      const std::uint64_t req = 1ull << (12 + rng.next_below(8));  // 4K..512K
      auto a = buddy.alloc(req);
      if (!a.ok()) continue;  // pool exhausted is fine
      const std::uint64_t block = 1ull << mem::BuddyAllocator::order_for(req);
      // Natural alignment.
      ASSERT_EQ((*a - 0x100000) % block, 0u);
      // No overlap with any live block.
      for (const auto& l : live) {
        const bool disjoint = *a + block <= l.addr || l.addr + l.bytes <= *a;
        ASSERT_TRUE(disjoint) << "overlapping allocation";
      }
      live.push_back({*a, block});
      live_bytes += block;
    } else {
      const std::size_t pick = rng.next_below(live.size());
      buddy.free_bytes(live[pick].addr, live[pick].bytes);
      live_bytes -= live[pick].bytes;
      live[pick] = live.back();
      live.pop_back();
    }
    // Conservation: free + live == capacity, always.
    ASSERT_EQ(buddy.free_bytes_total() + live_bytes, capacity);
  }
  for (const auto& l : live) buddy.free_bytes(l.addr, l.bytes);
  EXPECT_EQ(buddy.free_bytes_total(), capacity);
  // Full coalescing: the largest block must be allocatable again.
  EXPECT_TRUE(buddy.alloc(16_MiB).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyProperty, testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Page table vs reference map -------------------------------------------

class PageTableProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PageTableProperty, MatchesReferenceModel) {
  Rng rng(GetParam() * 7919);
  mem::PageTable pt;
  std::map<mem::VirtAddr, std::pair<mem::PhysAddr, std::uint64_t>> reference;  // va → (pa, size)

  auto covered = [&](mem::VirtAddr va) -> const std::pair<const mem::VirtAddr,
                                                          std::pair<mem::PhysAddr, std::uint64_t>>* {
    auto it = reference.upper_bound(va);
    if (it == reference.begin()) return nullptr;
    --it;
    return va < it->first + it->second.second ? &*it : nullptr;
  };

  for (int step = 0; step < 2000; ++step) {
    const bool large = rng.next_double() < 0.2;
    const std::uint64_t page = large ? mem::kPage2M : mem::kPage4K;
    const mem::VirtAddr va = mem::page_floor(rng.next_below(1ull << 32), page);
    const int op = static_cast<int>(rng.next_below(3));
    if (op < 2) {  // map
      const mem::PhysAddr pa = mem::page_floor(0x40000000ull + rng.next_below(1ull << 30), page);
      const Status s = pt.map(va, pa, page, mem::kProtRead);
      // Reference: mapping must succeed iff no byte of [va, va+page) is covered
      // and no existing page starts inside it.
      bool conflict = covered(va) != nullptr;
      if (!conflict) {
        auto it = reference.lower_bound(va);
        if (it != reference.end() && it->first < va + page) conflict = true;
      }
      ASSERT_EQ(s.ok(), !conflict) << std::hex << va;
      if (s.ok()) reference[va] = {pa, page};
    } else {  // unmap at a random known or unknown address
      const bool known = !reference.empty() && rng.next_double() < 0.7;
      mem::VirtAddr target = va;
      if (known) {
        auto it = reference.begin();
        std::advance(it, static_cast<long>(rng.next_below(reference.size())));
        target = it->first + rng.next_below(it->second.second);
      }
      const auto* ref = covered(target);
      const Status s = pt.unmap(target);
      ASSERT_EQ(s.ok(), ref != nullptr);
      if (ref != nullptr) reference.erase(ref->first);
    }
    ASSERT_EQ(pt.mapped_pages(), reference.size());
  }

  // Translation agrees everywhere we know about.
  for (const auto& [va, entry] : reference) {
    const std::uint64_t probe = rng.next_below(entry.second);
    auto t = pt.translate(va + probe);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, entry.first + probe);
    EXPECT_EQ(t->page, entry.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableProperty, testing::Values(1, 2, 3, 4, 5, 6));

// --- physical_extents: exact coverage under any policy/size/cap ------------

struct ExtentCase {
  mem::BackingPolicy policy;
  std::uint64_t bytes;
  std::uint64_t cap;
};

class ExtentsProperty : public testing::TestWithParam<ExtentCase> {};

TEST_P(ExtentsProperty, ExtentsExactlyTileTheRange) {
  const ExtentCase c = GetParam();
  mem::PhysMap phys = mem::PhysMap::knl(128_MiB, 256_MiB, 2);
  mem::AddressSpace as(phys, c.policy, mem::MemKind::mcdram, 0x10'0000'0000ull, 99);
  auto va = as.mmap_anonymous(c.bytes, mem::kProtRead);
  ASSERT_TRUE(va.ok());

  auto extents = as.physical_extents(*va, c.bytes, c.cap);
  ASSERT_TRUE(extents.ok());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < extents->size(); ++i) {
    const auto& e = (*extents)[i];
    ASSERT_GT(e.len, 0u);
    if (c.cap != 0) {
      ASSERT_LE(e.len, c.cap);
    }
    total += e.len;
    // Each extent's bytes must translate to exactly those physical bytes.
    const std::uint64_t off_in_range = total - e.len;
    auto t = as.translate(*va + off_in_range);
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->pa, e.pa);
  }
  EXPECT_EQ(total, c.bytes);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySizeCap, ExtentsProperty,
    testing::Values(ExtentCase{mem::BackingPolicy::lwk_contig, 64_KiB, 10240},
                    ExtentCase{mem::BackingPolicy::lwk_contig, 1_MiB, 10240},
                    ExtentCase{mem::BackingPolicy::lwk_contig, 3_MiB, 0},
                    ExtentCase{mem::BackingPolicy::lwk_contig, 5000, 4096},
                    ExtentCase{mem::BackingPolicy::linux_4k, 64_KiB, 10240},
                    ExtentCase{mem::BackingPolicy::linux_4k, 1_MiB, 10240},
                    ExtentCase{mem::BackingPolicy::linux_4k, 256_KiB, 0},
                    ExtentCase{mem::BackingPolicy::linux_4k, 12345, 8192}));

// --- LEB128 roundtrip fuzz ---------------------------------------------------

class LebProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LebProperty, RandomRoundtrips) {
  Rng rng(GetParam() * 31337);
  for (int i = 0; i < 5000; ++i) {
    // Bias toward interesting magnitudes.
    const int shift = static_cast<int>(rng.next_below(64));
    const std::uint64_t u = rng.next_u64() >> shift;
    std::vector<std::uint8_t> buf;
    dwarf::write_uleb128(buf, u);
    dwarf::ByteCursor cur(buf.data(), buf.size());
    auto r = cur.read_uleb128();
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, u);

    const std::int64_t s = static_cast<std::int64_t>(rng.next_u64()) >> shift;
    buf.clear();
    dwarf::write_sleb128(buf, s);
    dwarf::ByteCursor cur2(buf.data(), buf.size());
    auto r2 = cur2.read_sleb128();
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(*r2, s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LebProperty, testing::Values(1, 2, 3, 4));

// --- RcvArray vs reference ---------------------------------------------------

class RcvArrayProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RcvArrayProperty, MatchesReferenceAccounting) {
  Rng rng(GetParam() * 104729);
  hw::RcvArray arr(64);
  std::map<std::uint32_t, int> reference;  // tid → owner

  for (int step = 0; step < 3000; ++step) {
    const int ctxt = static_cast<int>(rng.next_below(4));
    if (rng.next_double() < 0.5) {
      auto tid = arr.program(ctxt, 0x1000, 4096);
      if (reference.size() == 64) {
        ASSERT_FALSE(tid.ok());
      } else {
        ASSERT_TRUE(tid.ok());
        ASSERT_EQ(reference.count(*tid), 0u);
        reference[*tid] = ctxt;
      }
    } else if (!reference.empty()) {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.next_below(reference.size())));
      const bool right_owner = rng.next_double() < 0.8;
      const int who = right_owner ? it->second : (it->second + 1) % 4;
      const Status s = arr.unprogram(who, it->first);
      ASSERT_EQ(s.ok(), who == it->second);
      if (s.ok()) reference.erase(it);
    }
    ASSERT_EQ(arr.in_use(), reference.size());
  }
  // unprogram_all per context drains exactly that context's entries.
  for (int ctxt = 0; ctxt < 4; ++ctxt) {
    std::size_t expected = 0;
    for (const auto& [tid, owner] : reference)
      if (owner == ctxt) ++expected;
    EXPECT_EQ(arr.unprogram_all(ctxt), expected);
  }
  EXPECT_EQ(arr.in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcvArrayProperty, testing::Values(7, 11, 13));

}  // namespace
}  // namespace pd
