file(REMOVE_RECURSE
  "CMakeFiles/split_driver_tour.dir/split_driver_tour.cpp.o"
  "CMakeFiles/split_driver_tour.dir/split_driver_tour.cpp.o.d"
  "split_driver_tour"
  "split_driver_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_driver_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
