#include "src/os/ihk.hpp"

#include <algorithm>

namespace pd::os {

sim::Task<Result<long>> Ihk::offload(std::function<sim::Task<Result<long>>()> service) {
  ++offload_count_;
  // IKC request: message write + IPI + proxy wakeup on the Linux side.
  co_await engine_.delay(cfg_.offload_oneway);

  // The proxy must get a service CPU; this is the contention point.
  const Time queued_at = engine_.now();
  co_await linux_.service_cpus().acquire();
  queueing_total_ += engine_.now() - queued_at;

  // Proxy thread schedule-in + request demultiplex, then the actual Linux
  // service. An idle, cache-hot proxy serves close to native speed; under
  // load every additional runnable proxy costs scheduling, cache/TLB
  // thrash and IPI traffic, so both the wakeup and the per-work surcharge
  // scale with the observed queue — the mechanism behind the paper's
  // multi-node collapse while single-stream offloading stays mild.
  const auto waiters = std::min<std::size_t>(
      linux_.service_cpus().queue_length(),
      static_cast<std::size_t>(cfg_.sched_thrash_cap_waiters));
  const double load = cfg_.sched_thrash_cap_waiters > 0
                          ? static_cast<double>(waiters) /
                                static_cast<double>(cfg_.sched_thrash_cap_waiters)
                          : 0.0;
  const Dur wakeup =
      cfg_.proxy_wakeup_hot +
      static_cast<Dur>(load * static_cast<double>(cfg_.proxy_wakeup_cold -
                                                  cfg_.proxy_wakeup_hot));
  const Dur thrash = static_cast<Dur>(waiters) * cfg_.sched_thrash_per_waiter;
  co_await engine_.delay(wakeup + cfg_.offload_dispatch + cfg_.proxy_min_service + thrash);
  const Time work_start = engine_.now();
  auto work = service();
  Result<long> result = co_await work;
  const Dur work_elapsed = engine_.now() - work_start;
  const double multiplier =
      1.0 + load * (cfg_.offload_service_multiplier - 1.0);
  if (multiplier > 1.0)
    co_await engine_.delay(
        static_cast<Dur>(static_cast<double>(work_elapsed) * (multiplier - 1.0)));
  linux_.service_cpus().release();

  // IKC reply back to the LWK core.
  co_await engine_.delay(cfg_.offload_oneway);
  co_return result;
}

}  // namespace pd::os
