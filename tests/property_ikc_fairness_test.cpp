// Weighted-fair drain equivalence + share properties (ISSUE 7).
//
// The fair drain changes *which ring head* a service loop claims next
// (per-job virtual time instead of class-then-channel sweeps) but must not
// change *what* the transport does:
//
//   (a) Degenerate-weights equivalence — the same seeded multi-tenant
//       stream driven through the strict PR-4 drain and through the fair
//       drain with every weight equal must produce identical per-rank
//       return values, identical errno streams, execute every service
//       exactly once, and preserve the per-(channel, priority) FIFO
//       contract. For a single tenant on one shared channel the claim
//       ORDER itself must be identical — there the fair drain's (vtime,
//       class, age) key collapses to class-then-FIFO, which is exactly
//       the strict order.
//   (b) Identical per-job completion sets — fair and strict drains may
//       interleave tenants differently, but the set of (job, rank, op)
//       completions and each job's completed count must match exactly.
//
// A third property pins the weighted share itself: two saturating tenants
// with weights 2:1 on one service loop must complete claims in ~2:1.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L qos` (also `property`, `ikc`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/common/rng.hpp"
#include "src/ikc/transport.hpp"
#include "src/os/kernel.hpp"

namespace pd::ikc {
namespace {

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0xFA137EA5ull;
}

constexpr int kJobs = 6;
constexpr int kRanksPerJob = 2;
constexpr int kOpsPerRank = 25;

struct Op {
  Priority prio = Priority::bulk;
  Dur work = 0;
  Dur gap = 0;
  long payload = 0;
  bool fail = false;
};

struct ExecutionRecord {
  int job;
  int rank;  // global rank id (also the channel hint)
  int op_index;
  Priority prio;
};

struct RunResult {
  // results[rank][op] — what the submitter got back.
  std::vector<std::vector<long>> results;
  std::vector<std::vector<Errno>> errors;
  std::vector<ExecutionRecord> executed;  // service-side, in execution order
  std::vector<std::uint64_t> completed_per_job;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded = 0;
};

sim::Task<> drive_rank(sim::Engine& engine, IkcTransport& transport,
                       const std::vector<Op>& script, int job, int rank, int channel,
                       RunResult& out) {
  for (int k = 0; k < static_cast<int>(script.size()); ++k) {
    const Op& op = script[static_cast<std::size_t>(k)];
    auto r = co_await transport.offload(
        [&engine, &op, &out, job, rank, k]() -> sim::Task<Result<long>> {
          co_await engine.delay(op.work);
          out.executed.push_back({job, rank, k, op.prio});
          if (op.fail) co_return Errno::eio;
          co_return op.payload;
        },
        op.prio, channel, static_cast<JobId>(job));
    out.results[static_cast<std::size_t>(rank)].push_back(r.ok() ? *r : -1);
    out.errors[static_cast<std::size_t>(rank)].push_back(r.error());
    co_await engine.delay(op.gap);
  }
}

constexpr int kRanks = kJobs * kRanksPerJob;

/// Drive the same scripted stream through one drain flavour.
/// `shared_channel` >= 0 funnels every rank onto that one ring;
/// `single_job` tags every rank with job 0 (the degenerate single-tenant
/// case — with multiple tenants the fair drain may legitimately serve a
/// lower-vtime tenant's bulk before another tenant's control, so exact
/// claim-order equivalence is only pinned for one tenant).
/// `atomic_collect` zeroes the lock hand-off and cross-socket drain costs
/// so batch collection takes no simulated time. With nonzero costs a
/// control request can *arrive mid-collection*: the fair drain's per-claim
/// re-scan claims it in the current batch (control beats queued bulk at
/// equal vtime), while the strict drain's control pass is already over, so
/// it waits a full batch. That race changes claim order only — FIFO and
/// completion sets stay identical (the equivalence test runs with the
/// default costs) — so the order property is pinned where it is exact.
RunResult run_stream(const std::vector<std::vector<Op>>& scripts, bool fair_drain,
                     int shared_channel = -1, bool single_job = false,
                     bool atomic_collect = false) {
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  cfg.ikc_fair_drain = fair_drain;
  if (atomic_collect) {
    cfg.ikc_lock_cost = 0;
    cfg.ikc_remote_drain_cost = 0;
  }
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  Samples queueing;
  IkcTransport transport(engine, cfg, linux_kernel.service_cpus(),
                         linux_kernel.profiler(), queueing, linux_kernel.spinlock_abi());

  RunResult out;
  out.results.resize(kRanks);
  out.errors.resize(kRanks);
  for (int rank = 0; rank < kRanks; ++rank) {
    const int job = single_job ? 0 : rank / kRanksPerJob;
    const int channel = shared_channel >= 0 ? shared_channel : rank;
    sim::spawn(engine, drive_rank(engine, transport,
                                  scripts[static_cast<std::size_t>(rank)], job, rank,
                                  channel, out));
  }
  engine.run();
  out.timeouts = linux_kernel.profiler().counter("ikc.ring.timeout");
  out.degraded = linux_kernel.profiler().counter("ikc.ring.degraded");
  out.completed_per_job.resize(kJobs, 0);
  for (int j = 0; j < kJobs; ++j)
    if (const auto* s = transport.job_stats(static_cast<JobId>(j)))
      out.completed_per_job[static_cast<std::size_t>(j)] = s->completed;
  return out;
}

std::vector<std::vector<Op>> make_scripts(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Op>> scripts(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    Rng stream = rng.fork();
    for (int k = 0; k < kOpsPerRank; ++k) {
      Op op;
      op.prio = stream.next_below(4) == 0 ? Priority::control : Priority::bulk;
      op.work = from_us(stream.uniform(0.5, 5.0));
      op.gap = from_us(stream.uniform(1.0, 30.0));
      op.payload = static_cast<long>(r) * 1000 + k;
      op.fail = stream.next_below(16) == 0;
      scripts[static_cast<std::size_t>(r)].push_back(op);
    }
  }
  return scripts;
}

void expect_semantic_equivalence(const RunResult& strict, const RunResult& fair) {
  // Happy path on both sides: a timeout would re-route through the direct
  // fallback and muddy every ordering claim below.
  EXPECT_EQ(strict.timeouts, 0u);
  EXPECT_EQ(fair.timeouts, 0u);
  EXPECT_EQ(strict.degraded, 0u);
  EXPECT_EQ(fair.degraded, 0u);

  // Identical return values and errno streams, op by op.
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(strict.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    ASSERT_EQ(fair.results[r].size(), static_cast<std::size_t>(kOpsPerRank));
    for (int k = 0; k < kOpsPerRank; ++k) {
      EXPECT_EQ(strict.results[r][k], fair.results[r][k])
          << "rank " << r << " op " << k << " diverged";
      EXPECT_EQ(strict.errors[r][k], fair.errors[r][k])
          << "rank " << r << " op " << k << " errno diverged";
    }
  }

  // Every scripted service ran exactly once under both drains.
  ASSERT_EQ(strict.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  ASSERT_EQ(fair.executed.size(), static_cast<std::size_t>(kRanks * kOpsPerRank));
  std::vector<std::vector<int>> seen(kRanks, std::vector<int>(kOpsPerRank, 0));
  for (const auto& e : fair.executed) ++seen[e.rank][e.op_index];
  for (int r = 0; r < kRanks; ++r)
    for (int k = 0; k < kOpsPerRank; ++k)
      EXPECT_EQ(seen[r][k], 1) << "rank " << r << " op " << k << " executed "
                               << seen[r][k] << " times under the fair drain";

  // FIFO within one (channel, priority): each rank submits on one channel
  // in increasing op order, so per (rank, class) the execution log must be
  // increasing under both drains.
  for (const RunResult* run : {&strict, &fair}) {
    std::vector<int> last_control(kRanks, -1), last_bulk(kRanks, -1);
    for (const auto& e : run->executed) {
      auto& last = e.prio == Priority::control ? last_control : last_bulk;
      EXPECT_LT(last[e.rank], e.op_index)
          << "FIFO violated for rank " << e.rank << " ("
          << (e.prio == Priority::control ? "control" : "bulk") << ")";
      last[e.rank] = e.op_index;
    }
  }
}

TEST(IkcFairnessProperty, EqualWeightsEquivalentToStrictDrain) {
  const std::uint64_t seed = harness_seed();
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  const RunResult strict = run_stream(scripts, /*fair_drain=*/false);
  const RunResult fair = run_stream(scripts, /*fair_drain=*/true);
  expect_semantic_equivalence(strict, fair);
}

TEST(IkcFairnessProperty, SingleTenantClaimOrderIsIdentical) {
  // One tenant funneled onto one ring: every head carries the same job, so
  // head-only claiming in (vtime, class, age) order collapses to
  // class-then-FIFO — byte-identical to the strict drain's claim order,
  // the degenerate case the scheduler comments pin. Compare the execution
  // logs entry by entry. Collection must be atomic (zero lock / remote
  // costs) for exact order equality: see run_stream's doc comment for the
  // mid-collection control-arrival race the fair drain wins by one batch.
  const std::uint64_t seed = harness_seed() ^ 0x51;
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  const RunResult strict =
      run_stream(scripts, /*fair_drain=*/false, /*shared_channel=*/0, /*single_job=*/true,
                 /*atomic_collect=*/true);
  const RunResult fair =
      run_stream(scripts, /*fair_drain=*/true, /*shared_channel=*/0, /*single_job=*/true,
                 /*atomic_collect=*/true);
  expect_semantic_equivalence(strict, fair);

  ASSERT_EQ(strict.executed.size(), fair.executed.size());
  for (std::size_t i = 0; i < strict.executed.size(); ++i) {
    const auto& s = strict.executed[i];
    const auto& f = fair.executed[i];
    EXPECT_TRUE(s.rank == f.rank && s.op_index == f.op_index && s.prio == f.prio)
        << "claim order diverged at position " << i << ": strict (rank " << s.rank
        << ", op " << s.op_index << ") vs fair (rank " << f.rank << ", op "
        << f.op_index << ")";
  }
}

TEST(IkcFairnessProperty, FairAndStrictCompleteIdenticalPerJobSets) {
  const std::uint64_t seed = harness_seed() ^ 0xB2;
  SCOPED_TRACE(::testing::Message() << "PD_PROPERTY_SEED=" << seed);
  const auto scripts = make_scripts(seed);

  const RunResult strict = run_stream(scripts, /*fair_drain=*/false);
  const RunResult fair = run_stream(scripts, /*fair_drain=*/true);

  std::set<std::tuple<int, int, int>> strict_set, fair_set;
  for (const auto& e : strict.executed) strict_set.insert({e.job, e.rank, e.op_index});
  for (const auto& e : fair.executed) fair_set.insert({e.job, e.rank, e.op_index});
  EXPECT_EQ(strict_set, fair_set);

  ASSERT_EQ(strict.completed_per_job.size(), fair.completed_per_job.size());
  for (int j = 0; j < kJobs; ++j)
    EXPECT_EQ(strict.completed_per_job[j], fair.completed_per_job[j])
        << "job " << j << " completed count diverged";
}

// --- weighted share under saturation ---------------------------------------

sim::Task<> saturating_rank(sim::Engine& eng, IkcTransport& transport, JobId job,
                            int channel, const bool& stop) {
  for (int k = 0; !stop; ++k) {
    const auto prio = (k % 4 == 0) ? Priority::control : Priority::bulk;
    auto r = co_await transport.offload(
        [&eng]() -> sim::Task<Result<long>> {
          co_await eng.delay(from_us(2));
          co_return 0L;
        },
        prio, channel, job);
    (void)r;
  }
}

sim::Task<> stop_after(sim::Engine& eng, Dur horizon, bool& stop) {
  co_await eng.delay(horizon);
  stop = true;
}

TEST(IkcFairnessProperty, WeightsSplitOneLoopsCapacityProportionally) {
  // Two tenants, both saturating (8 streams each) one service loop, with
  // drain weights 2:1: the completed-claim ratio must track the weights,
  // not the (equal) offered load. The batch limit must bind for the claim
  // *order* to matter at all — an adaptive batch large enough to claim
  // every queued head each round makes the split demand-bound — so pin a
  // small static batch and keep both tenants' backlogs deeper than it.
  os::Config cfg;
  cfg.ikc_mode = os::IkcMode::ring;
  cfg.linux_service_cpus = 1;  // one loop owns every channel
  cfg.ikc_channels = 2;
  cfg.ikc_job_weights = {2.0, 1.0};
  cfg.ikc_adaptive_batch = false;
  cfg.ikc_batch = 4;
  cfg.ikc_deadline = from_ms(100.0);  // saturation queueing is the point
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  Samples queueing;
  IkcTransport transport(engine, cfg, linux_kernel.service_cpus(),
                         linux_kernel.profiler(), queueing, linux_kernel.spinlock_abi());

  bool stop = false;
  for (int j = 0; j < 2; ++j)
    for (int s = 0; s < 4; ++s)
      sim::spawn(engine,
                 saturating_rank(engine, transport, static_cast<JobId>(j), j, stop));
  sim::spawn(engine, stop_after(engine, from_ms(4.0), stop));
  engine.run();

  const auto* heavy = transport.job_stats(0);
  const auto* light = transport.job_stats(1);
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  ASSERT_GT(light->completed, 50u) << "not saturated enough to measure shares";
  const double ratio = static_cast<double>(heavy->completed) /
                       static_cast<double>(light->completed);
  EXPECT_GT(ratio, 1.6) << "weight-2 tenant got " << heavy->completed
                        << " vs weight-1 tenant " << light->completed;
  EXPECT_LT(ratio, 2.4) << "weight-2 tenant got " << heavy->completed
                        << " vs weight-1 tenant " << light->completed;
}

}  // namespace
}  // namespace pd::ikc
