file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_umt_hacc.dir/bench_fig6_umt_hacc.cpp.o"
  "CMakeFiles/bench_fig6_umt_hacc.dir/bench_fig6_umt_hacc.cpp.o.d"
  "bench_fig6_umt_hacc"
  "bench_fig6_umt_hacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_umt_hacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
