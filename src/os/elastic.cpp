#include "src/os/elastic.hpp"

#include <algorithm>

#include "src/common/log.hpp"

namespace pd::os {

PartitionController::PartitionController(sim::Engine& engine, const Config& cfg, Ihk& ihk,
                                         McKernel& mck, IhkPartition* partition)
    : engine_(engine), cfg_(cfg), ihk_(ihk), mck_(mck), partition_(partition) {
  if (cfg_.elastic_enabled) start_monitor();
}

int PartitionController::max_service_cpus() const {
  return cfg_.elastic_max_service_cpus > 0 ? cfg_.elastic_max_service_cpus
                                           : cfg_.linux_service_cpus;
}

sim::Task<Status> PartitionController::shrink_one() {
  LinuxKernel& linux = ihk_.linux_kernel();
  if (linux.service_cpu_count() <= cfg_.elastic_min_service_cpus) co_return Errno::ebusy;
  const int cpu = linux.service_cpu_count() - 1;

  // Quiesce first: the loop stops claiming, its channels re-shard onto the
  // survivors, and every request it already owns drains to completion. Only
  // then is the core's memory and scheduling moved.
  const Dur t0 = engine_.now();
  if (const Status s = co_await ihk_.transport().retire_loop(); !s.ok()) co_return s;
  stats_.last_quiesce = engine_.now() - t0;

  if (const Status s = linux.yield_service_cpu(cpu); !s.ok()) {
    (void)co_await ihk_.transport().attach_loop();  // roll the loop back
    co_return s;
  }
  if (partition_ != nullptr) {
    if (const Status s = partition_->adopt_cpu(cpu); !s.ok()) {
      (void)linux.adopt_service_cpu(cpu);
      (void)co_await ihk_.transport().attach_loop();
      co_return s;
    }
  }
  if (const Status s = mck_.adopt_cpu(cpu); !s.ok()) {
    if (partition_ != nullptr) (void)partition_->yield_cpu(cpu);
    (void)linux.adopt_service_cpu(cpu);
    (void)co_await ihk_.transport().attach_loop();
    co_return s;
  }
  ++stats_.shrinks;
  PD_LOG(info) << "elastic: cpu " << cpu << " linux→lwk (service pool now "
               << linux.service_cpu_count() << ", quiesce " << stats_.last_quiesce << ")";
  co_return Status::success();
}

sim::Task<Status> PartitionController::grow_one() {
  LinuxKernel& linux = ihk_.linux_kernel();
  if (linux.service_cpu_count() >= max_service_cpus()) co_return Errno::ebusy;
  const int cpu = linux.service_cpu_count();

  // Reverse order of shrink: the LWK quiesces the core's heap state (the
  // kheap drains its remote-free queue and re-homes its blocks inside
  // yield_cpu) before Linux adopts it and a fresh service loop spins up.
  if (const Status s = mck_.yield_cpu(cpu); !s.ok()) co_return s;
  if (partition_ != nullptr) {
    if (const Status s = partition_->yield_cpu(cpu); !s.ok()) {
      (void)mck_.adopt_cpu(cpu);
      co_return s;
    }
  }
  if (const Status s = linux.adopt_service_cpu(cpu); !s.ok()) {
    if (partition_ != nullptr) (void)partition_->adopt_cpu(cpu);
    (void)mck_.adopt_cpu(cpu);
    co_return s;
  }
  if (const Status s = co_await ihk_.transport().attach_loop(); !s.ok()) {
    (void)linux.yield_service_cpu(cpu);
    if (partition_ != nullptr) (void)partition_->adopt_cpu(cpu);
    (void)mck_.adopt_cpu(cpu);
    co_return s;
  }
  ++stats_.grows;
  PD_LOG(info) << "elastic: cpu " << cpu << " lwk→linux (service pool now "
               << linux.service_cpu_count() << ")";
  co_return Status::success();
}

sim::Task<Status> PartitionController::shrink_service_cpus(int n) {
  if (n <= 0) co_return Errno::einval;
  for (int i = 0; i < n; ++i)
    if (const Status s = co_await shrink_one(); !s.ok()) co_return s;
  co_return Status::success();
}

sim::Task<Status> PartitionController::grow_service_cpus(int n) {
  if (n <= 0) co_return Errno::einval;
  for (int i = 0; i < n; ++i)
    if (const Status s = co_await grow_one(); !s.ok()) co_return s;
  co_return Status::success();
}

void PartitionController::start_monitor() {
  if (monitoring_) return;
  monitoring_ = true;
  sim::spawn(engine_, monitor());
}

sim::Task<> PartitionController::monitor() {
  while (monitoring_) {
    co_await engine_.delay(cfg_.elastic_check_interval);
    if (!monitoring_) break;
    ++stats_.monitor_checks;

    const ikc::QueueingSummary q = ihk_.queueing_summary();
    if (q.count == 0) continue;  // nothing offloaded yet — nothing to react to
    if (!ewma_seeded_) {
      stats_.p95_ewma_us = q.p95_us;
      ewma_seeded_ = true;
    } else {
      stats_.p95_ewma_us = cfg_.elastic_ewma_alpha * q.p95_us +
                           (1.0 - cfg_.elastic_ewma_alpha) * stats_.p95_ewma_us;
    }

    // Hysteresis: a single spike never repartitions — the same side of the
    // band must hold for `elastic_hysteresis_checks` consecutive samples.
    if (stats_.p95_ewma_us > cfg_.elastic_p95_grow_us) {
      ++grow_streak_;
      shrink_streak_ = 0;
    } else if (stats_.p95_ewma_us < cfg_.elastic_p95_shrink_us) {
      ++shrink_streak_;
      grow_streak_ = 0;
    } else {
      grow_streak_ = shrink_streak_ = 0;
    }

    const bool want_grow = grow_streak_ >= cfg_.elastic_hysteresis_checks;
    const bool want_shrink = shrink_streak_ >= cfg_.elastic_hysteresis_checks;
    if (!want_grow && !want_shrink) continue;
    if (engine_.now() < cooldown_until_) {
      ++stats_.flap_suppressed;
      continue;
    }
    // if/else, not `?:` — GCC evaluates both arms of a ternary whose arms
    // are co_await expressions, which here would shrink right after growing.
    Status s = Status::success();
    if (want_grow) {
      s = co_await grow_one();
    } else {
      s = co_await shrink_one();
    }
    grow_streak_ = shrink_streak_ = 0;
    if (s.ok()) cooldown_until_ = engine_.now() + cfg_.elastic_cooldown;
    // EBUSY at a bound is fine: the streak reset stops it from retrying
    // every check while the pressure persists at the rail.
  }
}

}  // namespace pd::os
