# Empty compiler generated dependencies file for dwarf-extract-struct.
# This may be replaced when dependencies are built.
