// OS-noise sensitivity study (the ROADMAP's noise item, ISSUE 10).
//
// The paper's §4.1 argument is that the LWK's advantage is not raw syscall
// speed but *insulation*: every Linux-side detour (daemon tick, IRQ burst,
// kernel-wide stall) is a straggler the whole communicator waits on, so the
// Linux-vs-LWK gap must grow with rank count — and vanish when the noise
// does. This bench measures exactly that surface:
//
//   noise profile (5 presets)  ×  node count  ×  {Linux, McKernel+HFI}
//
// on the two collective-structured mini-apps (src/apps/miniapps.hpp):
// Stencil27 (allreduce-dominated CG) and FftStep (alltoall-dominated
// transposes). For each (profile, app, mode, nodes) cell we report
//
//   slowdown = T(profile) / T(none)          — self-normalized per mode
//   gap      = linux_slowdown − lwk_slowdown — the amplification the paper
//                                              attributes to OS noise
//
// Acceptance (checked here and gated by tools/check_bench.py --suite noise):
//   * under every noisy profile the gap is nonnegative and grows
//     monotonically with rank count (per profile, averaged over both apps);
//   * the `none` profile produces exactly zero gap at every scale;
//   * the LWK side is noise-immune: its slowdown stays 1.0 under every
//     Linux-side profile (silent profiles never consume RNG, so the LWK
//     schedule is bit-identical across profiles).
//
// Emits BENCH_noise.json for tools/check_bench.py --suite noise.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/apps/miniapps.hpp"
#include "src/os/noise.hpp"

namespace {

using namespace pd;

constexpr int kRanksPerNode = 8;

std::vector<int> sweep_nodes() {
  if (bench::quick_mode()) return {2, 16};
  return {2, 4, 8, 16};
}

const std::vector<os::OsMode>& sweep_modes() {
  static const std::vector<os::OsMode> modes = {os::OsMode::linux,
                                                os::OsMode::mckernel_hfi};
  return modes;
}

struct AppSpec {
  const char* name;
  // Weak-scaled per-rank program for a world of `ranks` ranks.
  std::function<std::function<sim::Task<>(mpirt::Rank&)>(int ranks)> body_for;
};

std::vector<AppSpec> sweep_apps() {
  return {
      {"stencil",
       [](int) -> std::function<sim::Task<>(mpirt::Rank&)> {
         apps::StencilParams sp;
         return [sp](mpirt::Rank& r) { return apps::stencil_rank(r, sp); };
       }},
      {"fft",
       [](int ranks) -> std::function<sim::Task<>(mpirt::Rank&)> {
         // Weak scaling: keep the per-pair transpose payload constant so
         // the alltoall stays on one side of the spread/pairwise crossover
         // across the whole rank axis (the sweep measures noise response,
         // not an algorithm switch).
         apps::FftParams fp;
         fp.grid_bytes_per_rank =
             static_cast<std::uint64_t>(ranks) * (64ull << 10);
         return [fp](mpirt::Rank& r) { return apps::fft_rank(r, fp); };
       }},
  };
}

apps::RunOutcome run_cell(const AppSpec& app, os::OsMode mode, int nodes,
                          const os::NoiseProfile& profile,
                          std::uint64_t seed_salt) {
  mpirt::ClusterOptions copts;
  copts.nodes = nodes;
  copts.mode = mode;
  copts.mcdram_bytes = 1ull << 30;
  copts.ddr_bytes = 2ull << 30;
  copts.cfg.linux_noise = profile;      // the sweep axis
  copts.cfg.lwk_noise = os::NoiseProfile::none();
  copts.cfg.noise_seed ^= seed_salt * 0x9E3779B97F4A7C15ull;
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = kRanksPerNode;
  wopts.buf_bytes = 8ull << 20;
  return apps::run_app(copts, wopts, app.body_for(nodes * kRanksPerNode));
}

struct Cell {
  double linux_slowdown = 0;
  double lwk_slowdown = 0;
  double gap = 0;
};

const char* mode_key(os::OsMode m) {
  return m == os::OsMode::linux ? "linux" : "lwk";
}

}  // namespace

int main() {
  bench::print_banner(
      "OS-noise sensitivity: profile x ranks x kernel x collective mix",
      "LWK insulation: the Linux-vs-LWK slowdown gap grows with rank count "
      "under every noise shape, and is zero without noise");

  const auto nodes_axis = sweep_nodes();
  const auto apps_axis = sweep_apps();
  const auto& profiles = os::NoiseProfile::presets();

  // T(app, mode, nodes, profile) in seconds. The `none` column is the
  // self-normalization denominator for every profile.
  std::map<std::string, std::map<std::string, double>> runtimes;  // [app|mode|n][profile]
  // Algorithm mix from the largest Linux run of each app (informational:
  // proves the selector exercised the intended algorithms at this scale).
  std::map<std::string, std::uint64_t> algo_mix;

  // Noisy Linux cells are averaged over a few independent noise-seed
  // trials: the gap is a max-over-ranks statistic, and one draw of the
  // heavy-tailed profiles is too jagged to gate a monotonicity claim on.
  // Silent cells (profile `none`, and the LWK side — whose schedule never
  // consumes noise RNG) are seed-invariant, so one trial suffices.
  const int kTrials = bench::quick_mode() ? 1 : 3;
  for (const auto& app : apps_axis) {
    for (os::OsMode mode : sweep_modes()) {
      for (int n : nodes_axis) {
        for (const auto& prof : profiles) {
          if (std::getenv("PD_NOISE_TRACE") != nullptr)
            std::fprintf(stderr, "cell app=%s mode=%s nodes=%d profile=%s\n",
                         app.name, mode_key(mode), n, prof.name.c_str());
          const int trials =
              (mode == os::OsMode::linux && !prof.silent()) ? kTrials : 1;
          double sum = 0;
          for (int t = 0; t < trials; ++t) {
            auto out = run_cell(app, mode, n, prof,
                                static_cast<std::uint64_t>(t));
            sum += out.runtime_sec;
            if (t == 0 && mode == os::OsMode::linux &&
                n == nodes_axis.back() && prof.name == "calibrated") {
              for (const auto& [ak, c] : out.mpi.algo_counts())
                algo_mix[ak] += c;
            }
          }
          const std::string key = std::string(app.name) + "|" + mode_key(mode) +
                                  "|" + std::to_string(n);
          runtimes[key][prof.name] = sum / trials;
        }
      }
    }
  }

  // Per (profile, app, nodes): slowdowns and the gap.
  std::map<std::string, std::map<std::string, std::map<int, Cell>>> cells;
  for (const auto& prof : profiles) {
    for (const auto& app : apps_axis) {
      for (int n : nodes_axis) {
        const auto& lin = runtimes[std::string(app.name) + "|linux|" + std::to_string(n)];
        const auto& lwk = runtimes[std::string(app.name) + "|lwk|" + std::to_string(n)];
        Cell c;
        c.linux_slowdown = lin.at(prof.name) / lin.at("none");
        c.lwk_slowdown = lwk.at(prof.name) / lwk.at("none");
        c.gap = c.linux_slowdown - c.lwk_slowdown;
        cells[prof.name][app.name][n] = c;
      }
    }
  }

  // Print one table per profile.
  for (const auto& prof : profiles) {
    if (prof.name == "none") continue;
    std::printf("\nprofile %-12s (slowdown vs noise-free; gap = linux - lwk)\n",
                prof.name.c_str());
    std::printf("  %-8s %6s | %12s %12s %8s | %12s %12s %8s\n", "", "", "stencil",
                "", "", "fft", "", "");
    std::printf("  %-8s %6s | %12s %12s %8s | %12s %12s %8s\n", "nodes", "ranks",
                "linux", "lwk", "gap", "linux", "lwk", "gap");
    for (int n : nodes_axis) {
      const Cell& s = cells[prof.name]["stencil"][n];
      const Cell& f = cells[prof.name]["fft"][n];
      std::printf("  %-8d %6d | %12.4f %12.4f %8.4f | %12.4f %12.4f %8.4f\n", n,
                  n * kRanksPerNode, s.linux_slowdown, s.lwk_slowdown, s.gap,
                  f.linux_slowdown, f.lwk_slowdown, f.gap);
    }
  }

  // ---- acceptance ---------------------------------------------------------
  bool ok = true;

  // 1) zero noise => zero gap, bit-exact (same binary schedule, so the
  //    ratio is exactly 1.0 on both sides).
  double zero_max_abs_gap = 0;
  for (const auto& app : apps_axis)
    for (int n : nodes_axis)
      zero_max_abs_gap =
          std::max(zero_max_abs_gap, std::fabs(cells["none"][app.name][n].gap));
  if (zero_max_abs_gap != 0.0) {
    std::printf("  FAIL: zero-noise gap is %.3e, want exactly 0\n", zero_max_abs_gap);
    ok = false;
  }

  // 2) LWK immunity: slowdown pinned to 1.0 under every Linux-side profile.
  double lwk_max_abs_dev = 0;
  for (const auto& prof : profiles)
    for (const auto& app : apps_axis)
      for (int n : nodes_axis)
        lwk_max_abs_dev = std::max(
            lwk_max_abs_dev,
            std::fabs(cells[prof.name][app.name][n].lwk_slowdown - 1.0));
  if (lwk_max_abs_dev > 1e-12) {
    std::printf("  FAIL: LWK slowdown deviates by %.3e from 1.0\n", lwk_max_abs_dev);
    ok = false;
  }

  // 3) per noisy profile: mean gap (over both apps) is nonnegative and
  //    monotone nondecreasing along the rank axis.
  std::map<std::string, std::vector<double>> mean_gap;  // profile -> per-node
  for (const auto& prof : profiles) {
    if (prof.name == "none") continue;
    auto& v = mean_gap[prof.name];
    for (int n : nodes_axis) {
      double g = 0;
      for (const auto& app : apps_axis) g += cells[prof.name][app.name][n].gap;
      v.push_back(g / static_cast<double>(apps_axis.size()));
    }
    bool mono = v.front() >= 0;
    for (std::size_t i = 1; i < v.size(); ++i)
      if (v[i] < v[i - 1]) mono = false;
    if (!mono) {
      std::printf("  FAIL: %s gap not monotone in ranks:", prof.name.c_str());
      for (double g : v) std::printf(" %.4f", g);
      std::printf("\n");
      ok = false;
    }
  }

  // ---- JSON ---------------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_noise.json", "w");
  if (json == nullptr) return 1;
  std::fprintf(json,
               "{\n"
               "  \"workload\": {\"ranks_per_node\": %d, \"max_nodes\": %d, "
               "\"apps\": [\"stencil\", \"fft\"], \"quick_mode\": %s},\n"
               "  \"noise\": {\n",
               kRanksPerNode, nodes_axis.back(),
               bench::quick_mode() ? "true" : "false");
  std::fprintf(json, "    \"profiles\": {\n");
  bool first_prof = true;
  for (const auto& prof : profiles) {
    if (prof.name == "none") continue;
    const auto& v = mean_gap[prof.name];
    bool mono = v.front() >= 0;
    for (std::size_t i = 1; i < v.size(); ++i)
      if (v[i] < v[i - 1]) mono = false;
    // Slope of the mean gap per rank-count doubling (least useful at 2
    // points, but stable on the full axis).
    const double slope = (v.back() - v.front()) /
                         static_cast<double>(v.size() > 1 ? v.size() - 1 : 1);
    std::fprintf(json, "%s      \"%s\": {\n", first_prof ? "" : ",\n",
                 prof.name.c_str());
    first_prof = false;
    std::fprintf(json, "        \"mean_gap\": [");
    for (std::size_t i = 0; i < v.size(); ++i)
      std::fprintf(json, "%s%.6f", i ? ", " : "", v[i]);
    std::fprintf(json, "],\n");
    std::fprintf(json, "        \"gap_at_max_ranks\": %.6f,\n", v.back());
    std::fprintf(json, "        \"gap_slope_per_doubling\": %.6f,\n", slope);
    std::fprintf(json, "        \"monotone\": %.1f,\n", mono ? 1.0 : 0.0);
    for (const auto& app : apps_axis) {
      std::fprintf(json, "        \"%s\": {", app.name);
      bool first_n = true;
      for (int n : nodes_axis) {
        const Cell& c = cells[prof.name][app.name][n];
        std::fprintf(json,
                     "%s\"n%d\": {\"linux_slowdown\": %.6f, "
                     "\"lwk_slowdown\": %.6f, \"gap\": %.6f}",
                     first_n ? "" : ", ", n, c.linux_slowdown, c.lwk_slowdown,
                     c.gap);
        first_n = false;
      }
      std::fprintf(json, "}%s\n", app.name == std::string("fft") ? "" : ",");
    }
    std::fprintf(json, "      }");
  }
  std::fprintf(json, "\n    },\n");
  std::fprintf(json, "    \"zero\": {\"max_abs_gap\": %.9f},\n", zero_max_abs_gap);
  std::fprintf(json, "    \"lwk\": {\"max_abs_dev\": %.9f},\n", lwk_max_abs_dev);
  std::fprintf(json, "    \"algos\": {");
  bool first_a = true;
  for (const auto& [k, c] : algo_mix) {
    std::fprintf(json, "%s\"%s\": %llu", first_a ? "" : ", ", k.c_str(),
                 static_cast<unsigned long long>(c));
    first_a = false;
  }
  std::fprintf(json, "}\n  }\n}\n");
  std::fclose(json);
  std::printf("\n  wrote BENCH_noise.json\n");

  if (!ok) {
    std::printf("  FAIL: noise-amplification acceptance violated\n");
    return 1;
  }
  std::printf("  PASS: gap monotone under every profile, zero without noise, "
              "LWK immune\n");
  return 0;
}
