#include "src/ikc/transport.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pd::ikc {

namespace {

int depth_bucket(std::size_t depth) {
  if (depth <= 1) return 0;
  if (depth <= 2) return 1;
  if (depth <= 4) return 2;
  if (depth <= 8) return 3;
  if (depth <= 16) return 4;
  if (depth <= 32) return 5;
  return 6;
}

constexpr const char* kBucketLabels[IkcTransport::kDepthBuckets] = {
    "le1", "le2", "le4", "le8", "le16", "le32", "gt32"};

}  // namespace

QueueingSummary summarize_queueing(const Samples& samples) {
  QueueingSummary s;
  s.count = samples.count();
  if (s.count == 0) return s;
  s.mean_us = samples.mean();
  s.p50_us = samples.percentile(50);
  s.p95_us = samples.percentile(95);
  s.max_us = samples.percentile(100);
  return s;
}

IkcTransport::IkcTransport(sim::Engine& engine, const os::Config& cfg,
                           sim::Resource& service_cpus, os::SyscallProfiler& profiler,
                           Samples& queueing_us, std::string lock_abi)
    : engine_(engine),
      cfg_(cfg),
      service_cpus_(service_cpus),
      prof_(profiler),
      queueing_us_(queueing_us),
      channels_n_(cfg.ikc_channels > 0 ? cfg.ikc_channels : std::max(cfg.app_cores, 1)),
      loops_n_(std::max(cfg.linux_service_cpus, 1)) {
  assert(cfg.ikc_ring_depth > 0);
  channels_.reserve(static_cast<std::size_t>(channels_n_));
  depth_hist_.resize(static_cast<std::size_t>(channels_n_));
  depth_names_.resize(static_cast<std::size_t>(channels_n_));
  for (int c = 0; c < channels_n_; ++c)
    channels_.push_back(std::make_unique<Channel>(
        engine_, lock_abi, cfg.ikc_lock_cost,
        static_cast<std::size_t>(cfg.ikc_ring_depth)));
  for (int s = 0; s < loops_n_; ++s) loops_.push_back(std::make_unique<Loop>(engine_));
  // Dedicated service loops exist only in ring mode; the direct transport
  // keeps the legacy shape where each offload is its own proxy wakeup.
  if (cfg_.ikc_mode == os::IkcMode::ring)
    for (int s = 0; s < loops_n_; ++s) sim::spawn(engine_, service_loop(s));
}

sim::Task<Result<long>> IkcTransport::offload(Service service, Priority prio,
                                              int channel_hint) {
  if (cfg_.ikc_mode == os::IkcMode::ring)
    co_return co_await ring_offload(std::move(service), prio, channel_hint);
  co_return co_await direct_offload(std::move(service));
}

/// The legacy path, timing-identical to the pre-subsystem `Ihk::offload`:
/// IKC message, FIFO squeeze on the service-CPU pool, load-dependent proxy
/// wakeup, per-waiter scheduler thrash, and the proxy-run service
/// multiplier (the paper's multi-node collapse mechanism).
sim::Task<Result<long>> IkcTransport::direct_offload(Service service) {
  // IKC request: message write + IPI + proxy wakeup on the Linux side.
  co_await engine_.delay(cfg_.offload_oneway);

  // The proxy must get a service CPU; this is the contention point.
  const Time queued_at = engine_.now();
  co_await service_cpus_.acquire();
  queueing_us_.add(to_us(engine_.now() - queued_at));

  // Proxy thread schedule-in + request demultiplex, then the actual Linux
  // service. An idle, cache-hot proxy serves close to native speed; under
  // load every additional runnable proxy costs scheduling, cache/TLB
  // thrash and IPI traffic, so both the wakeup and the per-work surcharge
  // scale with the observed queue — the mechanism behind the paper's
  // multi-node collapse while single-stream offloading stays mild.
  const auto waiters = std::min<std::size_t>(
      service_cpus_.queue_length(),
      static_cast<std::size_t>(cfg_.sched_thrash_cap_waiters));
  const double load = cfg_.sched_thrash_cap_waiters > 0
                          ? static_cast<double>(waiters) /
                                static_cast<double>(cfg_.sched_thrash_cap_waiters)
                          : 0.0;
  const Dur wakeup =
      cfg_.proxy_wakeup_hot +
      static_cast<Dur>(load * static_cast<double>(cfg_.proxy_wakeup_cold -
                                                  cfg_.proxy_wakeup_hot));
  const Dur thrash = static_cast<Dur>(waiters) * cfg_.sched_thrash_per_waiter;
  co_await engine_.delay(wakeup + cfg_.offload_dispatch + cfg_.proxy_min_service + thrash);
  const Time work_start = engine_.now();
  auto work = service();
  Result<long> result = co_await work;
  const Dur work_elapsed = engine_.now() - work_start;
  const double multiplier =
      1.0 + load * (cfg_.offload_service_multiplier - 1.0);
  if (multiplier > 1.0)
    co_await engine_.delay(
        static_cast<Dur>(static_cast<double>(work_elapsed) * (multiplier - 1.0)));
  service_cpus_.release();

  // IKC reply back to the LWK core.
  co_await engine_.delay(cfg_.offload_oneway);
  co_return result;
}

bool IkcTransport::loop_suspect(int loop) const {
  return loops_.at(static_cast<std::size_t>(loop))->consecutive_timeouts >=
         cfg_.ikc_stall_threshold;
}

std::size_t IkcTransport::channel_depth(int channel) const {
  const Channel& ch = *channels_.at(static_cast<std::size_t>(channel));
  return ch.rings[0].size() + ch.rings[1].size();
}

int IkcTransport::pick_channel(int channel) {
  if (!loop_suspect(loop_of(channel))) return channel;
  // Health probe: every Nth submission aimed at a suspect loop goes through
  // anyway, so a recovered loop is re-discovered (its reply resets the
  // timeout count) instead of being shunned forever.
  if (cfg_.ikc_probe_interval > 0 &&
      ++probe_tick_ % static_cast<std::uint64_t>(cfg_.ikc_probe_interval) == 0) {
    prof_.bump("ikc.ring.probe");
    return channel;
  }
  for (int i = 1; i < channels_n_; ++i) {
    const int cand = (channel + i) % channels_n_;
    if (!loop_suspect(loop_of(cand))) {
      prof_.bump("ikc.ring.redirect");
      return cand;
    }
  }
  return -1;  // every service loop suspect → caller degrades
}

void IkcTransport::note_depth(int channel) {
  const std::size_t depth = channel_depth(channel);
  const int bucket = depth_bucket(depth);
  ++depth_hist_[static_cast<std::size_t>(channel)][static_cast<std::size_t>(bucket)];
  auto& names = depth_names_[static_cast<std::size_t>(channel)];
  if (names == nullptr) {
    names = std::make_unique<std::array<std::string, kDepthBuckets>>();
    for (int b = 0; b < kDepthBuckets; ++b)
      (*names)[static_cast<std::size_t>(b)] =
          "ikc.ring.depth.ch" + std::to_string(channel) + "." + kBucketLabels[b];
  }
  prof_.bump((*names)[static_cast<std::size_t>(bucket)]);
}

sim::Task<Result<long>> IkcTransport::ring_offload(Service service, Priority prio,
                                                   int channel_hint) {
  // Request write into the shared-memory ring region: the bytes cross the
  // kernel boundary exactly as the legacy IKC message did.
  co_await engine_.delay(cfg_.offload_oneway);

  int ch = ((channel_hint % channels_n_) + channels_n_) % channels_n_;
  for (int attempt = 0; attempt <= cfg_.ikc_max_retries; ++attempt) {
    if (attempt > 0) {
      prof_.bump("ikc.ring.retry");
      co_await engine_.delay(static_cast<Dur>(attempt) * cfg_.ikc_retry_backoff);
      // A different ring — channels are sharded channel % loops, so the
      // next channel belongs to the next service loop.
      ch = (ch + 1) % channels_n_;
    }
    ch = pick_channel(ch);
    if (ch < 0) break;  // every loop suspect: straight to the direct path
    const int loop = loop_of(ch);

    auto req = std::make_shared<Request>(engine_);
    req->service = service;
    Channel& channel = *channels_[static_cast<std::size_t>(ch)];
    co_await channel.lock.acquire();
    const bool pushed = ring(ch, prio).push(req);
    channel.lock.release();
    if (!pushed) {
      prof_.bump("ikc.ring.full");
      continue;  // consumes one attempt, lands on another loop's ring
    }
    req->enqueued_at = engine_.now();
    prof_.bump("ikc.ring.enqueue");
    note_depth(ch);

    // Doorbell/poll hybrid: ring the doorbell only when the loop is asleep;
    // a polling or busy loop will find the request on its own.
    Loop& lp = *loops_[static_cast<std::size_t>(loop)];
    if (lp.sleeping) {
      lp.sleeping = false;  // claim the wakeup: one doorbell per sleep
      prof_.bump("ikc.ring.doorbell");
      co_await engine_.delay(cfg_.ikc_doorbell_cost);
      lp.doorbell.send(1);
    }

    // Ring-residency watchdog. Fires only while still queued; a claimed or
    // completed request is past the window the deadline protects.
    engine_.schedule_after(cfg_.ikc_deadline, [req] {
      if (req->state == Request::State::queued) {
        req->state = Request::State::timed_out;
        req->done.trigger();
      }
    });

    co_await req->done.wait();
    if (req->state == Request::State::done) {
      // IKC reply back to the LWK core.
      co_await engine_.delay(cfg_.offload_oneway);
      co_return req->result;
    }
    // Timed out in the ring: the service loop never claimed it (the stale
    // entry is skipped when eventually popped). Count against the loop and
    // retry on a ring owned by another one.
    prof_.bump("ikc.ring.timeout");
    ++lp.consecutive_timeouts;
  }

  // Degradation floor: the legacy direct path still works even with every
  // service loop wedged — offloads get slower, never stuck.
  prof_.bump("ikc.ring.degraded");
  co_return co_await direct_offload(std::move(service));
}

bool IkcTransport::has_work(int loop) const {
  for (int ch = loop; ch < channels_n_; ch += loops_n_)
    if (channel_depth(ch) > 0) return true;
  return false;
}

sim::Task<> IkcTransport::collect_batch(int loop, std::vector<RequestPtr>& out) {
  const auto batch_max = static_cast<std::size_t>(std::max(cfg_.ikc_batch, 1));
  // Control class across all of this loop's channels first, then bulk —
  // a TID-registration ioctl never waits behind queued bulk writevs.
  for (int prio = 0; prio < 2 && out.size() < batch_max; ++prio) {
    for (int ch = loop; ch < channels_n_ && out.size() < batch_max; ch += loops_n_) {
      Channel& channel = *channels_[static_cast<std::size_t>(ch)];
      auto& ring = channel.rings[prio];
      if (ring.empty()) continue;
      co_await channel.lock.acquire();
      while (out.size() < batch_max) {
        auto req = ring.pop();
        if (!req.has_value()) break;
        if ((*req)->state != Request::State::queued) {
          prof_.bump("ikc.ring.stale_skip");  // timed out while queued here
          continue;
        }
        (*req)->state = Request::State::claimed;
        out.push_back(std::move(*req));
      }
      channel.lock.release();
    }
  }
}

sim::Task<> IkcTransport::service_loop(int loop) {
  Loop& lp = *loops_[static_cast<std::size_t>(loop)];
  bool woke_by_doorbell = false;
  std::vector<RequestPtr> batch;
  while (true) {
    while (lp.stall_injected) co_await lp.unstall.recv();
    batch.clear();
    co_await collect_batch(loop, batch);
    if (batch.empty()) {
      // Poll/doorbell hybrid: spin a few short polls while traffic is
      // likely, then park on the doorbell so an idle engine can drain.
      bool found = false;
      for (int spin = 0; spin < cfg_.ikc_poll_spins && !lp.stall_injected; ++spin) {
        co_await engine_.delay(cfg_.ikc_poll_interval);
        if (has_work(loop)) {
          prof_.bump("ikc.ring.poll_hit");
          found = true;
          break;
        }
      }
      if (!found && !lp.stall_injected) {
        lp.sleeping = true;
        co_await lp.doorbell.recv();
        lp.sleeping = false;  // idempotent: the submitter already cleared it
        woke_by_doorbell = true;
      }
      continue;
    }

    prof_.bump("ikc.ring.batch_drain");
    co_await service_cpus_.acquire();
    // One schedule-in per doorbell wakeup covers the whole batch — the
    // amortization the legacy path cannot have. The loop stays cache-hot,
    // so no cold-wakeup scaling, no per-waiter thrash, no proxy-run
    // multiplier; batch size bounds how long a unit is held so IRQ bottom
    // halves still get the pool at batch granularity.
    if (woke_by_doorbell) {
      co_await engine_.delay(cfg_.proxy_wakeup_hot);
      woke_by_doorbell = false;
    }
    for (auto& req : batch) {
      queueing_us_.add(to_us(engine_.now() - req->enqueued_at));
      co_await engine_.delay(cfg_.offload_dispatch + cfg_.proxy_min_service);
      Result<long> result = co_await req->service();
      req->result = result;
      req->state = Request::State::done;
      req->done.trigger();
      lp.consecutive_timeouts = 0;  // a served request proves liveness
      ++lp.served;
    }
    service_cpus_.release();
  }
}

void IkcTransport::inject_stall(int loop, bool stalled) {
  Loop& lp = *loops_.at(static_cast<std::size_t>(loop));
  if (lp.stall_injected == stalled) return;
  lp.stall_injected = stalled;
  if (!stalled) lp.unstall.send(1);
}

}  // namespace pd::ikc
