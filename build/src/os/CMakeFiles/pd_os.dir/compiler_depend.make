# Empty compiler generated dependencies file for pd_os.
# This may be replaced when dependencies are built.
