// Determinism and stress tests: identical seeds must give bit-identical
// simulations (the engine is the reproducibility foundation for every
// number in EXPERIMENTS.md), and randomized task graphs must neither
// deadlock nor leak.
#include <gtest/gtest.h>

#include "src/apps/proxies.hpp"
#include "src/common/units.hpp"

namespace pd {
namespace {

using namespace pd::time_literals;

/// Signature of one run: (simulated duration, events, per-call MPI stats).
struct RunSignature {
  double runtime_sec;
  std::uint64_t events;
  double wait_ms;
  double kernel_ioctl_us;
  std::uint64_t descriptors;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_once(os::OsMode mode) {
  mpirt::ClusterOptions copts;
  copts.nodes = 2;
  copts.mode = mode;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  mpirt::Cluster cluster(copts);
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 8;
  mpirt::MpiWorld world(cluster, wopts);
  apps::UmtParams umt;
  umt.steps = 1;
  world.run([umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });

  RunSignature sig;
  sig.runtime_sec = to_sec(world.max_solve());
  sig.events = cluster.engine().events_processed();
  const mpirt::MpiStatsTable table = world.stats_table();
  const auto* wait = table.row("Waitall");
  sig.wait_ms = wait != nullptr ? wait->time_ms : 0;
  sig.kernel_ioctl_us = cluster.app_kernel_profile().total_us_of("ioctl");
  sig.descriptors = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n)
    sig.descriptors += cluster.node(n).device->total_descriptors();
  return sig;
}

TEST(Determinism, IdenticalRunsAreBitIdentical) {
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    const RunSignature a = run_once(mode);
    const RunSignature b = run_once(mode);
    EXPECT_EQ(a, b) << "nondeterministic simulation under " << to_string(mode);
    EXPECT_GT(a.events, 0u);
  }
}

TEST(Determinism, ModesActuallyDiffer) {
  // Guard against the determinism test passing vacuously (e.g. everything
  // returning zeros): the three OS modes must produce distinct timings.
  const RunSignature l = run_once(os::OsMode::linux);
  const RunSignature m = run_once(os::OsMode::mckernel);
  const RunSignature h = run_once(os::OsMode::mckernel_hfi);
  EXPECT_NE(l.runtime_sec, m.runtime_sec);
  EXPECT_NE(m.runtime_sec, h.runtime_sec);
  EXPECT_GT(m.wait_ms, h.wait_ms);
}

TEST(Stress, RandomTaskGraphDrainsClean) {
  // A few thousand tasks with random delays, channels and resources;
  // everything must complete and the engine must drain.
  sim::Engine engine;
  Rng rng(2024);
  sim::Resource pool(engine, 3);
  sim::Channel<int> pipe(engine);
  int produced = 0, consumed = 0, workers_done = 0;

  constexpr int kProducers = 40;
  constexpr int kItemsPer = 25;
  for (int p = 0; p < kProducers; ++p) {
    sim::spawn(engine, [](sim::Engine& e, Rng& r, sim::Channel<int>& ch, int& n) -> sim::Task<> {
      for (int i = 0; i < kItemsPer; ++i) {
        co_await e.delay(static_cast<Dur>(r.next_below(50'000'000)));
        ch.send(1);
        ++n;
      }
    }(engine, rng, pipe, produced));
  }
  for (int c = 0; c < 10; ++c) {
    sim::spawn(engine, [](sim::Engine& e, sim::Resource& res, sim::Channel<int>& ch,
                          int& n, int& done) -> sim::Task<> {
      for (int i = 0; i < kProducers * kItemsPer / 10; ++i) {
        (void)co_await ch.recv();
        co_await res.acquire();
        co_await e.delay(10'000);
        res.release();
        ++n;
      }
      ++done;
    }(engine, pool, pipe, consumed, workers_done));
  }
  engine.run();
  EXPECT_EQ(produced, kProducers * kItemsPer);
  EXPECT_EQ(consumed, kProducers * kItemsPer);
  EXPECT_EQ(workers_done, 10);
  EXPECT_EQ(engine.live_tasks(), 0);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pipe.pending(), 0u);
}

TEST(Stress, DeepTaskChainsNoStackOverflow) {
  // Symmetric transfer must not build native stack: a 50k-deep chain of
  // awaited child tasks. ASan/TSan instrumentation defeats the tail call
  // that symmetric transfer compiles to, so keep the chain shallow there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr int kDepth = 1'000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  constexpr int kDepth = 1'000;
#else
  constexpr int kDepth = 50'000;
#endif
#else
  constexpr int kDepth = 50'000;
#endif
  sim::Engine engine;
  struct Chain {
    static sim::Task<int> step(sim::Engine& e, int depth) {
      if (depth == 0) {
        co_await e.delay(1);
        co_return 0;
      }
      const int below = co_await step(e, depth - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  sim::spawn(engine, [](sim::Engine& e, int& out) -> sim::Task<> {
    out = co_await Chain::step(e, kDepth);
  }(engine, result));
  engine.run();
  EXPECT_EQ(result, kDepth);
}

TEST(Stress, ManyNodesManyRanksSmoke) {
  // 16 nodes x 16 ranks, all three modes, one light step each; exercises
  // construction/teardown at a scale between the unit tests and benches.
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    mpirt::ClusterOptions copts;
    copts.nodes = 16;
    copts.mode = mode;
    copts.mcdram_bytes = 256ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 16;
    wopts.buf_bytes = 1ull << 20;
    mpirt::MpiWorld world(cluster, wopts);
    int done = 0;
    world.run([&](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      co_await rank.allreduce(4096);
      const int peer = (rank.id() + 16 * 8) % 256;
      if (peer != rank.id()) {
        auto r = rank.irecv(peer, 1, 96ull << 10);
        auto s = rank.isend(peer, 1, 96ull << 10);
        co_await rank.wait(std::move(s));
        co_await rank.wait(std::move(r));
      }
      co_await rank.barrier();
      co_await rank.finalize();
      ++done;
    });
    EXPECT_EQ(done, 256) << to_string(mode);
    // No TID leaks anywhere.
    for (int n = 0; n < 16; ++n)
      EXPECT_EQ(cluster.node(n).device->rcv_array().in_use(), 0u);
  }
}

}  // namespace
}  // namespace pd
