#include "src/hw/hfi_device.hpp"

#include <tuple>

#include "src/common/log.hpp"

namespace pd::hw {

HfiDevice::HfiDevice(sim::Engine& engine, Fabric& fabric, int node_id, HfiConfig config)
    : engine_(engine),
      fabric_(fabric),
      node_id_(node_id),
      config_(config),
      rcv_array_(config.rcv_array_entries) {
  engines_.reserve(static_cast<std::size_t>(config_.num_sdma_engines));
  for (int i = 0; i < config_.num_sdma_engines; ++i)
    engines_.push_back(std::make_unique<SdmaEngine>(engine_, fabric_, config_.sdma, i));
  fabric_.attach(node_id_, [this](const WireChunk& chunk) { on_chunk(chunk); });
}

Status HfiDevice::pio_send(const WireMessage& msg) {
  if (msg.payload_bytes > config_.pio_max_bytes) return Errno::einval;
  WireChunk chunk;
  chunk.msg = msg;
  chunk.chunk_bytes = msg.payload_bytes;
  chunk.last = true;
  fabric_.send(std::move(chunk));
  return Status::success();
}

int HfiDevice::pick_engine() {
  const int id = next_engine_;
  next_engine_ = (next_engine_ + 1) % num_engines();
  return id;
}

sim::Channel<RxEvent>& HfiDevice::open_context(int ctxt) {
  auto& slot = contexts_[ctxt];
  if (!slot) slot = std::make_unique<sim::Channel<RxEvent>>(engine_);
  return *slot;
}

void HfiDevice::close_context(int ctxt) {
  contexts_.erase(ctxt);
  rcv_array_.unprogram_all(ctxt);
}

void HfiDevice::on_chunk(const WireChunk& chunk) {
  const auto key = std::make_tuple(chunk.msg.src_node, chunk.msg.src_ctxt, chunk.msg.seq);
  std::uint64_t& seen = partial_[key];
  seen += chunk.chunk_bytes;
  // A message is complete when the marked-last chunk has arrived; chunks of
  // one request traverse one engine and one path, so `last` arrives last.
  if (!chunk.last) return;

  const std::uint64_t total = seen;
  partial_.erase(key);

  auto it = contexts_.find(chunk.msg.dst_ctxt);
  if (it == contexts_.end()) {
    ++dropped_;
    PD_LOG(warn) << "hfi" << node_id_ << ": chunk for closed context " << chunk.msg.dst_ctxt
                 << " kind=" << static_cast<int>(chunk.msg.kind) << " src=" << chunk.msg.src_node
                 << "/" << chunk.msg.src_ctxt << " msg_id=" << chunk.msg.msg_id
                 << " win=" << chunk.msg.window << " bytes=" << total;
    return;
  }
  ++rx_messages_;
  RxEvent ev;
  ev.kind = chunk.msg.kind;
  ev.match_bits = chunk.msg.match_bits;
  ev.bytes = total;
  ev.src_node = chunk.msg.src_node;
  ev.src_ctxt = chunk.msg.src_ctxt;
  ev.tid = chunk.msg.tid;
  ev.msg_id = chunk.msg.msg_id;
  ev.window = chunk.msg.window;
  ev.total_windows = chunk.msg.total_windows;
  ev.ctrl = chunk.msg.ctrl;
  it->second->send(ev);
}

std::uint64_t HfiDevice::total_descriptors() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->descriptors_issued();
  return n;
}

std::uint64_t HfiDevice::total_descriptor_bytes() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->descriptor_bytes();
  return n;
}

}  // namespace pd::hw
