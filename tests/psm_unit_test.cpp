// Endpoint-level PSM tests (below the MPI runtime): protocol thresholds,
// concurrent same-tag traffic, quota-pressure retry, window accounting,
// shutdown with in-flight lazy TID frees.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.hpp"
#include "src/psm/endpoint.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd::psm {
namespace {

using namespace pd::time_literals;

/// Two nodes, one process + endpoint each, direct PSM (no MPI layer).
struct PsmPair {
  sim::Engine engine;
  os::Config cfg;
  std::unique_ptr<hw::Fabric> fabric;
  struct Side {
    std::unique_ptr<mem::PhysMap> phys;
    std::unique_ptr<hw::HfiDevice> device;
    std::unique_ptr<os::LinuxKernel> linux_kernel;
    std::unique_ptr<hfi::HfiDriver> driver;
    std::unique_ptr<os::Process> proc;
    std::unique_ptr<Endpoint> ep;
    mem::VirtAddr buf = 0;
  };
  Side side[2];

  explicit PsmPair(std::function<void(os::Config&)> tweak = {}) {
    if (tweak) tweak(cfg);
    fabric = std::make_unique<hw::Fabric>(engine, 2);
    for (int i = 0; i < 2; ++i) {
      Side& s = side[i];
      s.phys = std::make_unique<mem::PhysMap>(mem::PhysMap::knl(256ull << 20, 1ull << 30, 2));
      s.device = std::make_unique<hw::HfiDevice>(engine, *fabric, i);
      s.linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
      s.driver = std::make_unique<hfi::HfiDriver>(*s.linux_kernel, *s.device, "10.8-0");
      s.proc = std::make_unique<os::Process>(*s.linux_kernel, *s.phys, i, 0,
                                             17u + static_cast<unsigned>(i));
      s.ep = std::make_unique<Endpoint>(*s.proc, *s.device, nullptr);
    }
  }

  /// init both endpoints and allocate a buffer per side.
  void start(std::uint64_t buf_bytes = 8ull << 20) {
    for (int i = 0; i < 2; ++i) {
      sim::spawn(engine, [](Side& s, std::uint64_t bytes) -> sim::Task<> {
        Status st = co_await s.ep->init();
        CO_ASSERT_TRUE(st.ok());
        auto va = co_await s.proc->mmap_anon(bytes);
        CO_ASSERT_TRUE(va.ok());
        s.buf = *va;
      }(side[i], buf_bytes));
    }
    engine.run();
    ASSERT_NE(side[0].buf, 0u);
    ASSERT_NE(side[1].buf, 0u);
  }

  void finish() {
    for (int i = 0; i < 2; ++i)
      sim::spawn(engine, [](Side& s) -> sim::Task<> {
        (void)co_await s.ep->finalize();
      }(side[i]));
    engine.run();
  }
};

TEST(PsmUnit, ThresholdsFollowConfig) {
  // Shrink the PIO and eager thresholds: a 4 KiB message must become an
  // expected-protocol rendezvous.
  PsmPair pair([](os::Config& cfg) {
    cfg.pio_threshold = 256;
    cfg.sdma_threshold = 1024;
    cfg.expected_window = 2048;
  });
  pair.start();
  auto& src = pair.side[0];
  auto& dst = pair.side[1];
  sim::spawn(pair.engine, [](PsmPair::Side& s, PsmPair::Side& d) -> sim::Task<> {
    auto r = d.ep->irecv(EndpointId{0, 0}, 7, 4096, d.buf);
    auto snd = s.ep->isend(EndpointId{1, 0}, 7, 4096, s.buf);
    co_await s.ep->wait(snd);
    co_await d.ep->wait(r);
  }(src, dst));
  pair.engine.run();
  EXPECT_EQ(src.ep->expected_sends(), 1u);
  EXPECT_EQ(src.ep->eager_sends(), 0u);
  EXPECT_EQ(src.ep->pio_sends(), 0u);
  // 4096 bytes / 2048-byte windows = 2 windows → 2 writevs.
  EXPECT_EQ(src.driver->writev_calls(), 2u);
  pair.finish();
}

TEST(PsmUnit, ManyConcurrentSameTagMessages) {
  PsmPair pair;
  pair.start();
  auto& src = pair.side[0];
  auto& dst = pair.side[1];
  constexpr int kMsgs = 16;
  int done = 0;
  sim::spawn(pair.engine, [](PsmPair::Side& s, PsmPair::Side& d, int& n) -> sim::Task<> {
    std::vector<PsmHandle> reqs;
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(d.ep->irecv(EndpointId{0, 0}, 5, 200ull << 10,
                                 d.buf + static_cast<std::uint64_t>(i) * (256ull << 10)));
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(s.ep->isend(EndpointId{1, 0}, 5, 200ull << 10,
                                 s.buf + static_cast<std::uint64_t>(i) * (256ull << 10)));
    for (auto& r : reqs) {
      // NOTE: not `co_await (cond ? a.wait() : b.wait())` — GCC 12
      // mismanages temporary lifetimes for co_await on conditional
      // expressions (frame use-after-free).
      if (r->kind == PsmRequest::Kind::send)
        co_await s.ep->wait(r);
      else
        co_await d.ep->wait(r);
      ++n;
    }
  }(src, dst, done));
  pair.engine.run();
  EXPECT_EQ(done, 2 * kMsgs);
  EXPECT_EQ(src.ep->expected_sends(), static_cast<std::uint64_t>(kMsgs));
  // All TIDs freed once the dust settles (lazy frees drained).
  EXPECT_EQ(dst.device->rcv_array().in_use(), 0u);
  pair.finish();
}

TEST(PsmUnit, TidQuotaPressureRetriesAndSucceeds) {
  // Tiny RcvArray: per-context quota far below one message's worth of
  // windows; grants must retry as lazy frees release entries.
  PsmPair pair;
  // Rebuild side-1 device with a small RcvArray before the driver binds.
  // (Simpler: run against the default and force pressure via many
  // concurrent messages instead — 32 concurrent 512 KiB messages need
  // 32*4*32 = 4096 entries > the per-ctxt quota of 512.)
  pair.start(64ull << 20);
  auto& src = pair.side[0];
  auto& dst = pair.side[1];
  constexpr int kMsgs = 32;
  sim::spawn(pair.engine, [](PsmPair::Side& s, PsmPair::Side& d) -> sim::Task<> {
    std::vector<PsmHandle> reqs;
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(d.ep->irecv(EndpointId{0, 0}, 6, 512ull << 10,
                                 d.buf + static_cast<std::uint64_t>(i) * (1ull << 20)));
    for (int i = 0; i < kMsgs; ++i)
      reqs.push_back(s.ep->isend(EndpointId{1, 0}, 6, 512ull << 10,
                                 s.buf + static_cast<std::uint64_t>(i) * (1ull << 20)));
    for (auto& r : reqs) {
      if (r->kind == PsmRequest::Kind::send)
        co_await s.ep->wait(r);
      else
        co_await d.ep->wait(r);
    }
  }(src, dst));
  pair.engine.run();
  // Everything completed despite transient ENOSPC, and no entries leaked.
  EXPECT_EQ(dst.device->rcv_array().in_use(), 0u);
  EXPECT_EQ(src.ep->expected_sends(), static_cast<std::uint64_t>(kMsgs));
  pair.finish();
}

TEST(PsmUnit, FinalizeStopsProgressLoop) {
  PsmPair pair;
  // The per-device SDMA engine loops are perpetual by design; everything
  // else (progress loops, per-message tasks) must be gone after finalize.
  const std::int64_t hardware_tasks = pair.engine.live_tasks();
  EXPECT_EQ(hardware_tasks, 2 * 16);  // 16 engines per HFI
  pair.start();
  EXPECT_GT(pair.engine.live_tasks(), hardware_tasks);
  pair.finish();
  EXPECT_EQ(pair.engine.live_tasks(), hardware_tasks)
      << "progress loops must exit at finalize (no leaked coroutines)";
}

TEST(PsmUnit, BidirectionalExpectedTrafficNoDeadlock) {
  PsmPair pair;
  pair.start();
  int done = 0;
  for (int i = 0; i < 2; ++i) {
    auto& me = pair.side[i];
    auto& peer = pair.side[1 - i];
    (void)peer;
    sim::spawn(pair.engine, [](PsmPair::Side& s, int other, int& n) -> sim::Task<> {
      auto r = s.ep->irecv(EndpointId{other, 0}, 9, 1ull << 20, s.buf);
      auto snd = s.ep->isend(EndpointId{other, 0}, 9, 1ull << 20, s.buf + (2ull << 20));
      co_await s.ep->wait(snd);
      co_await s.ep->wait(r);
      ++n;
    }(me, 1 - i, done));
  }
  pair.engine.run();
  EXPECT_EQ(done, 2);
  pair.finish();
}

}  // namespace
}  // namespace pd::psm
