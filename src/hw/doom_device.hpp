// The pd-doom command-queue accelerator model (second device class).
//
// Modeled in the image of the harddoom teaching device: a fixed-depth
// command ring fed through a doorbell register, per-context DMA page tables
// that resolve device virtual addresses ("dva") to host physical memory,
// and asynchronous completion interrupts with fence/sequence semantics. The
// device knows nothing about kernels or drivers: software pushes commands,
// rings the doorbell, and receives fence-retirement callbacks — which CPU
// fields the "IRQ" is the OS's business (exactly like SdmaEngine).
//
// Unlike the HFI's streaming SDMA engines, submission here is *batched*:
// a batch is N work commands followed by one fence carrying a monotonic
// sequence number; the completion callback fires when the fence retires.
// That shape is what makes the driver's submit path worth porting to the
// LWK (one doorbell per batch, §3.4-style extent descriptors) and is the
// second proof point for the PicoDriver recipe.
//
// Fault injection (driver/fast-path hardening rungs):
//   * inject_ring_stall(true)  — the consumer halts; the ring fills and
//     submitters see no slots free until the stall clears;
//   * inject_lost_irq(n)      — the next n fence retirements skip their
//     completion callback (the seq still advances, so software can detect
//     the loss by polling last_retired_seq());
//   * poison_pte(ctx, dva)    — the next resolution through that mapping
//     faults (bad-PTE rung; the device parks in an error state).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/common/status.hpp"
#include "src/common/time.hpp"
#include "src/mem/types.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace pd::hw {

enum class DoomOp : std::uint32_t {
  copy_rect = 0,  // DMA-read a source window and process it
  fill_rect = 1,  // process a window without a source fetch
  fence = 2,      // retire: publish seq, raise the completion IRQ
};

/// One ring slot. Work commands name a dva window in the submitting
/// context's page table; fences carry the batch's sequence number.
struct DoomCommand {
  DoomOp op = DoomOp::copy_rect;
  int ctx = -1;
  std::uint64_t dva = 0;
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;  // fence only
};

struct DoomConfig {
  std::uint32_t ring_slots = 256;
  std::uint32_t pt_entries_per_ctx = 4096;  // page-table capacity per context
  std::uint64_t max_pte_bytes = 2ull << 20; // largest run one PTE covers
  Dur per_command_overhead = 220'000;       // 220 ns fetch + decode + execute
  Dur doorbell_cost = 150'000;              // 150 ns MMIO write + queue kick
  double dma_read_bytes_per_sec = 30e9;     // source-window fetch bandwidth
};

/// Fired (in "IRQ context") when a fence retires.
using DoomCompletion = std::function<void(std::uint64_t seq)>;

class DoomDevice {
 public:
  DoomDevice(sim::Engine& engine, int node_id, DoomConfig config = {});

  int node_id() const { return node_id_; }
  const DoomConfig& config() const { return config_; }

  /// --- contexts & DMA page tables ---------------------------------------
  Status create_context(int ctx);
  Status destroy_context(int ctx);
  bool context_open(int ctx) const { return page_tables_.count(ctx) > 0; }

  /// Program one PTE: [dva, dva+len) resolves to host physical [pa, pa+len).
  /// ENOSPC at the per-context capacity, EINVAL for bad lengths/overlaps.
  Status map_pte(int ctx, std::uint64_t dva, mem::PhysAddr pa, std::uint64_t len);
  /// Drop the PTEs covering [dva, dva+len); returns entries removed.
  Result<std::uint32_t> unmap_range(int ctx, std::uint64_t dva, std::uint64_t len);
  std::uint32_t pt_entries_used(int ctx) const;

  /// --- command ring -------------------------------------------------------
  /// Slots currently free. Software reserves slots under its own lock; the
  /// device frees a slot when the command retires.
  std::size_t ring_free() const { return ring_slots_free_; }
  /// Push one command into the ring. EAGAIN when no slot is free. Pushes do
  /// not start execution — the doorbell does (batched submission).
  Status push(const DoomCommand& cmd);
  /// MMIO doorbell: the consumer starts/continues draining the ring.
  void doorbell();

  /// Register the fence-retirement handler (the driver's IRQ entry).
  void set_completion_handler(DoomCompletion handler) { completion_ = std::move(handler); }

  /// Highest fence sequence the hardware has retired — readable via MMIO,
  /// which is what lost-IRQ recovery polls.
  std::uint64_t last_retired_seq() const { return last_retired_seq_; }
  /// Sticky error flag (bad PTE); software clears it via reset_error().
  bool faulted() const { return faulted_; }
  void reset_error() { faulted_ = false; }

  /// --- fault injection ----------------------------------------------------
  void inject_ring_stall(bool stalled);
  void inject_lost_irq(std::uint32_t count) { lost_irq_budget_ += count; }
  Status poison_pte(int ctx, std::uint64_t dva);

  /// --- instrumentation ----------------------------------------------------
  std::uint64_t commands_retired() const { return commands_retired_; }
  std::uint64_t fences_retired() const { return fences_retired_; }
  std::uint64_t dma_bytes() const { return dma_bytes_; }
  std::uint64_t pte_faults() const { return pte_faults_; }
  std::uint64_t irqs_lost() const { return irqs_lost_; }
  std::uint64_t doorbells() const { return doorbells_; }

 private:
  struct Pte {
    std::uint64_t dva = 0;
    mem::PhysAddr pa = 0;
    std::uint64_t len = 0;
    bool poisoned = false;
  };
  struct PageTable {
    std::vector<Pte> entries;  // sorted by dva, non-overlapping
  };

  /// Walk the context's table for [dva, dva+bytes). EFAULT on a hole or a
  /// poisoned entry.
  Status resolve(int ctx, std::uint64_t dva, std::uint64_t bytes);

  sim::Task<> run();

  sim::Engine& engine_;
  int node_id_;
  DoomConfig config_;

  std::map<int, PageTable> page_tables_;
  std::deque<DoomCommand> ring_;
  std::size_t ring_slots_free_;
  sim::Channel<int> work_signal_;

  DoomCompletion completion_;
  std::uint64_t last_retired_seq_ = 0;
  bool stalled_ = false;
  bool faulted_ = false;
  std::uint32_t lost_irq_budget_ = 0;

  std::uint64_t commands_retired_ = 0;
  std::uint64_t fences_retired_ = 0;
  std::uint64_t dma_bytes_ = 0;
  std::uint64_t pte_faults_ = 0;
  std::uint64_t irqs_lost_ = 0;
  std::uint64_t doorbells_ = 0;
};

}  // namespace pd::hw
