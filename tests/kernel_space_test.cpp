// Tests for instantiated kernel address spaces: 1 GiB direct maps, image
// mapping, and the §3.1 unification property checked at the page-table
// level — the same kmalloc pointer dereferences to the same physical byte
// in both kernels.
#include <gtest/gtest.h>

#include "src/common/units.hpp"
#include "src/mem/kernel_space.hpp"

namespace pd::mem {
namespace {

constexpr std::uint64_t kPhysBytes = 112ull << 30;  // the OFP node (16+96 GB)
constexpr PhysAddr kLinuxImagePhys = 0x0000'0004'0000'0000ull;  // 16 GiB
constexpr PhysAddr kMckImagePhys = 0x0000'0008'0000'0000ull;    // 32 GiB

TEST(PageTable1G, MapAndTranslate) {
  PageTable pt;
  ASSERT_TRUE(pt.map(0, 0, kPage1G, kProtRead).ok());
  auto t = pt.translate(0x12345678);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, 0x12345678u);
  EXPECT_EQ(t->page, kPage1G);
  EXPECT_FALSE(pt.map(0x200000, 0, kPage2M, 0).ok()) << "covered by the 1G leaf";
  EXPECT_FALSE(pt.map(kPage1G / 2, 0, kPage1G, 0).ok()) << "alignment";
}

TEST(PageTable1G, SixtyFourTiBDirectMapIsCheap) {
  PageTable pt;
  ASSERT_TRUE(pt.map_range(0, 0, 64ull << 40, kPage1G, kProtRead).ok());
  EXPECT_EQ(pt.mapped_pages(), (64ull << 40) / kPage1G);
  auto t = pt.translate((37ull << 40) + 12345);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, (37ull << 40) + 12345);
}

TEST(KernelSpace, LinuxBuildTranslatesDirectMapAndImage) {
  auto linux_as = KernelAddressSpace::build(linux_layout(), kPhysBytes, kLinuxImagePhys);
  ASSERT_TRUE(linux_as.ok());
  // kmalloc pointer → physical.
  const PhysAddr pa = 0x0000'0012'3456'7000ull;
  auto t = linux_as->translate(linux_as->direct_va(pa) & ((1ull << 48) - 1));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, pa);
  // Kernel text resolves into the image physical range.
  auto text = linux_as->translate(linux_layout().image.start & ((1ull << 48) - 1));
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(text->pa, kLinuxImagePhys);
}

TEST(KernelSpace, UnifiedLayoutsDereferenceIdentically) {
  auto linux_as = KernelAddressSpace::build(linux_layout(), kPhysBytes, kLinuxImagePhys);
  auto mck_as =
      KernelAddressSpace::build(mckernel_unified_layout(), kPhysBytes, kMckImagePhys);
  ASSERT_TRUE(linux_as.ok() && mck_as.ok());

  // §3.1 requirement 2, at the page-table level: the same kmalloc'd
  // pointer value reaches the same physical byte through either kernel.
  for (PhysAddr pa : {PhysAddr{0x1000}, PhysAddr{0x7'1234'5000}, PhysAddr{0x19'8000'0040}}) {
    const VirtAddr kmalloc_ptr = linux_as->direct_va(pa);
    EXPECT_EQ(kmalloc_ptr, mck_as->direct_va(pa));
    const VirtAddr canon = kmalloc_ptr & ((1ull << 48) - 1);
    auto via_linux = linux_as->translate(canon);
    auto via_mck = mck_as->translate(canon);
    ASSERT_TRUE(via_linux.has_value());
    ASSERT_TRUE(via_mck.has_value());
    EXPECT_EQ(via_linux->pa, via_mck->pa);
  }
}

TEST(KernelSpace, OriginalLayoutPointersDiverge) {
  auto linux_as = KernelAddressSpace::build(linux_layout(), kPhysBytes, kLinuxImagePhys);
  auto orig =
      KernelAddressSpace::build(mckernel_original_layout(), kPhysBytes, kMckImagePhys);
  ASSERT_TRUE(linux_as.ok() && orig.ok());
  const PhysAddr pa = 0x2'0000'1000;
  // The same physical byte has *different* kernel-virtual names — the
  // §3.1 problem the unified layout removes.
  EXPECT_NE(linux_as->direct_va(pa), orig->direct_va(pa));
  // And a Linux kmalloc pointer does not even translate in the original
  // McKernel (its 256 GiB direct map is at a different VA base).
  const VirtAddr linux_ptr = linux_as->direct_va(pa) & ((1ull << 48) - 1);
  EXPECT_FALSE(orig->translate(linux_ptr).has_value());
}

TEST(KernelSpace, ImageAliasMakesForeignTextTranslatable) {
  auto linux_as = KernelAddressSpace::build(linux_layout(), kPhysBytes, kLinuxImagePhys);
  ASSERT_TRUE(linux_as.ok());
  const KernelLayout mck = mckernel_unified_layout();

  // Before the vmap_area alias: the LWK callback address faults in Linux.
  const VirtAddr cb_text = (mck.image.start + 0x2000) & ((1ull << 48) - 1);
  EXPECT_FALSE(linux_as->translate(cb_text).has_value());

  // After LWK boot establishes the alias (§3.1 requirement 3):
  ASSERT_TRUE(linux_as->alias_image(mck.image, kMckImagePhys).ok());
  auto t = linux_as->translate(cb_text);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, kMckImagePhys + 0x2000);
  EXPECT_TRUE(t->prot & kProtExec);
}

TEST(KernelSpace, RejectsMisalignedImageBase) {
  EXPECT_FALSE(
      KernelAddressSpace::build(linux_layout(), kPhysBytes, 0x1234).ok());
}

TEST(KernelSpace, DirectMapCappedAtLayoutWindow) {
  // Asking for more physical memory than the layout's direct-map window
  // maps only the window (the model's 256 GiB original-McKernel map).
  auto orig = KernelAddressSpace::build(mckernel_original_layout(), 1ull << 40,
                                        kMckImagePhys);
  ASSERT_TRUE(orig.ok());
  const KernelLayout layout = mckernel_original_layout();
  const VirtAddr inside = (layout.direct_map.start + (100ull << 30)) & ((1ull << 48) - 1);
  const VirtAddr beyond = (layout.direct_map.start + (300ull << 30)) & ((1ull << 48) - 1);
  EXPECT_TRUE(orig->translate(inside).has_value());
  EXPECT_FALSE(orig->translate(beyond).has_value());
}

}  // namespace
}  // namespace pd::mem
