// NoiseProfile / NoiseModel coverage (ISSUE 10) plus the zero-noise LWK
// regression: whatever noise shape the Linux side runs, the LWK's compute
// schedule must stay bit-identical — silent profiles may not consume RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/os/config.hpp"
#include "src/os/ihk.hpp"
#include "src/os/kernel.hpp"
#include "src/os/mckernel.hpp"
#include "src/os/noise.hpp"
#include "src/sim/engine.hpp"

namespace pd::os {
namespace {

using namespace pd::time_literals;

// ---------------------------------------------------------------------------
// Profile validation.
// ---------------------------------------------------------------------------

TEST(NoiseProfile, PresetsAreValidAndLookupWorks) {
  for (const auto& p : NoiseProfile::presets()) {
    std::string why;
    EXPECT_TRUE(p.validate(&why).ok()) << p.name << ": " << why;
    const NoiseProfile* found = NoiseProfile::preset(p.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, p.name);
  }
  EXPECT_EQ(NoiseProfile::preset("no_such_profile"), nullptr);
  EXPECT_TRUE(NoiseProfile::none().silent());
  EXPECT_FALSE(NoiseProfile::calibrated().silent());
}

TEST(NoiseProfile, ValidateRejectsDegenerateKnobs) {
  const auto einval = [](const NoiseProfile& p) {
    std::string why;
    const Status s = p.validate(&why);
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(why.empty());
    return !s.ok();
  };

  NoiseProfile p = NoiseProfile::calibrated();
  p.duty = -0.1;
  EXPECT_TRUE(einval(p));
  p.duty = 1.0;  // would steal everything: the inflation diverges
  EXPECT_TRUE(einval(p));

  p = NoiseProfile::calibrated();
  p.daemon_period = -1;
  EXPECT_TRUE(einval(p));

  p = NoiseProfile::irq_heavy();
  p.burst_alpha = 1.0;  // infinite-mean Pareto tail
  EXPECT_TRUE(einval(p));
  p = NoiseProfile::irq_heavy();
  p.burst_cap = p.burst_cost / 2;  // cap below the distribution's minimum
  EXPECT_TRUE(einval(p));

  p = NoiseProfile::correlated();
  p.stall_jitter = 1.5;
  EXPECT_TRUE(einval(p));
  p.stall_jitter = -0.1;
  EXPECT_TRUE(einval(p));
}

TEST(NoiseProfile, ConfigValidateCoversBothKernelProfiles) {
  Config cfg;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.linux_noise.duty = 2.0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.linux_noise.duty = 0.002;
  cfg.lwk_noise.burst_period = from_ms(1);
  cfg.lwk_noise.burst_cost = from_us(10);
  cfg.lwk_noise.burst_alpha = 0.5;
  EXPECT_FALSE(cfg.validate().ok());
}

// ---------------------------------------------------------------------------
// Silent profiles: bit-exact no-op, zero RNG consumption.
// ---------------------------------------------------------------------------

TEST(NoiseModel, SilentProfileNeverTouchesRng) {
  NoiseModel model(NoiseProfile::none(), /*stream_seed=*/0xABCDEF);
  Rng rng(42);
  Rng untouched(42);
  for (Dur work : {Dur(1), from_us(1), from_us(250), from_ms(10)}) {
    NoiseModel::Breakdown b;
    EXPECT_EQ(model.inflate(from_ms(3), work, rng, &b), work);
    EXPECT_EQ(b.total(), 0);
  }
  // The stream is untouched: the next draw equals a virgin stream's first.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(NoiseModel, CalibratedMatchesLegacyScalarModel) {
  // The calibrated preset is the seed's nohz_full model; its inflation must
  // reproduce the legacy formula bit-for-bit (single accumulate, truncate
  // once) with the identical RNG draw order, or every committed baseline
  // schedule shifts.
  const NoiseProfile p = NoiseProfile::calibrated();
  NoiseModel model(p, 7);
  Rng rng(2026);
  Rng ref_rng(2026);
  for (Dur work : {from_us(250), from_us(400), from_ms(5)}) {
    const Dur got = model.inflate(0, work, rng);

    double total = static_cast<double>(work) * (1.0 + p.duty);
    const double expected = static_cast<double>(work) /
                            static_cast<double>(p.daemon_period);
    auto ticks = static_cast<std::uint32_t>(expected);
    if (ref_rng.next_double() < expected - static_cast<double>(ticks)) ++ticks;
    for (std::uint32_t i = 0; i < ticks; ++i)
      total += ref_rng.exponential(static_cast<double>(p.daemon_cost));
    EXPECT_EQ(got, static_cast<Dur>(total)) << "work=" << work;
  }
}

// ---------------------------------------------------------------------------
// Heavy-tailed bursts.
// ---------------------------------------------------------------------------

TEST(NoiseModel, BurstsAreHeavyTailedButCapped) {
  const NoiseProfile p = NoiseProfile::irq_heavy();
  NoiseModel model(p, 11);
  Rng rng(1);
  const Dur work = from_ms(50);  // expect ~12 bursts per inflation
  Dur min_extra = 0, max_extra = 0;
  std::uint64_t bursts = 0;
  for (int i = 0; i < 200; ++i) {
    NoiseModel::Breakdown b;
    model.inflate(0, work, rng, &b);
    bursts += b.bursts;
    EXPECT_EQ(b.daemon_ticks, 0u);
    EXPECT_EQ(b.stall_epochs, 0u);
    if (b.bursts > 0) {
      // Every burst is at least the Pareto scale and at most the cap.
      EXPECT_GE(b.burst, static_cast<Dur>(b.bursts) * p.burst_cost);
      EXPECT_LE(b.burst, static_cast<Dur>(b.bursts) * p.burst_cap);
    }
    min_extra = (i == 0) ? b.burst : std::min(min_extra, b.burst);
    max_extra = std::max(max_extra, b.burst);
  }
  EXPECT_GT(bursts, 0u);
  // Heavy tail: the worst inflation dwarfs the best by a margin no
  // light-tailed (exponential) cost at the same mean would reach.
  EXPECT_GT(max_extra, 3 * std::max<Dur>(min_extra, p.burst_cost));
}

// ---------------------------------------------------------------------------
// Correlated stalls: one deterministic schedule per kernel.
// ---------------------------------------------------------------------------

TEST(NoiseModel, StallScheduleIsSharedWithinAKernel) {
  const NoiseProfile p = NoiseProfile::correlated();
  NoiseModel a(p, 123), b(p, 123), other(p, 456);
  std::uint64_t total = 0, diff = 0;
  for (int w = 0; w < 64; ++w) {
    const Time begin = static_cast<Time>(w) * from_ms(12);
    const Time end = begin + from_ms(8);
    // Two cores of the same kernel agree on every window...
    EXPECT_EQ(a.stall_epochs_in(begin, end), b.stall_epochs_in(begin, end));
    total += a.stall_epochs_in(begin, end);
    // ...while another kernel's schedule is independently jittered.
    if (a.stall_epochs_in(begin, end) != other.stall_epochs_in(begin, end))
      ++diff;
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(diff, 0u);
  // One epoch per 10 ms; the windows cover 2/3 of a 768 ms span, so the
  // in-window count brackets ~51.
  EXPECT_NEAR(static_cast<double>(total), 51.0, 20.0);
}

TEST(NoiseModel, StallsChargeEveryInflationInTheWindow) {
  const NoiseProfile p = NoiseProfile::correlated();
  NoiseModel model(p, 9);
  Rng rng(3);
  // A compute span covering many periods pays close to span/period epochs.
  NoiseModel::Breakdown b;
  const Dur got = model.inflate(0, from_ms(100), rng, &b);
  EXPECT_NEAR(static_cast<double>(b.stall_epochs), 10.0, 2.0);
  EXPECT_EQ(b.stall, static_cast<Dur>(b.stall_epochs) * p.stall_cost);
  EXPECT_EQ(got, from_ms(100) + b.stall);
  // Correlated stalls draw nothing from the per-core stream.
  Rng untouched(3);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

// ---------------------------------------------------------------------------
// The zero-noise LWK regression (ISSUE 10 satellite): every preset on the
// Linux side, and the LWK's own compute stays bit-exact.
// ---------------------------------------------------------------------------

TEST(NoiseRegression, LwkIsNoiseFreeUnderEveryLinuxProfile) {
  for (const auto& prof : NoiseProfile::presets()) {
    sim::Engine engine;
    Config cfg;
    cfg.linux_noise = prof;  // storm the Linux side
    ASSERT_TRUE(cfg.validate().ok());
    LinuxKernel linux_kernel(engine, cfg);
    Ihk ihk(engine, cfg, linux_kernel);
    McKernel mck(engine, cfg, ihk, /*unified_layout=*/false);

    Rng rng(17);
    Rng untouched(17);
    for (Dur work : {from_us(250), from_ms(1), from_ms(7)}) {
      EXPECT_EQ(mck.noisy_duration(work, rng), work) << prof.name;
    }
    // The LWK never consumed noise RNG, whatever Linux is configured with.
    EXPECT_EQ(rng.next_u64(), untouched.next_u64()) << prof.name;

    // The Linux side meanwhile *does* inflate under every noisy profile.
    Rng lrng(17);
    if (!prof.silent()) {
      Dur inflated = 0;
      for (int i = 0; i < 32; ++i)
        inflated += linux_kernel.noisy_duration(from_ms(1), lrng) - from_ms(1);
      EXPECT_GT(inflated, 0) << prof.name;
    } else {
      EXPECT_EQ(linux_kernel.noisy_duration(from_ms(1), lrng), from_ms(1));
    }
  }
}

}  // namespace
}  // namespace pd::os
