#include "src/pico/framework.hpp"

#include "src/common/log.hpp"

namespace pd::pico {

Result<PicoBinding> PicoBinding::bind(os::McKernel& mck, os::LinuxKernel& linux_kernel,
                                      const dwarf::ModuleBinary& module,
                                      const std::vector<StructRequest>& requests) {
  PicoBinding binding;
  binding.mck_ = &mck;
  binding.linux_ = &linux_kernel;

  // (1) Address-space unification (§3.1).
  binding.unification_ = mem::check_unification(linux_kernel.layout(), mck.layout());
  if (!binding.unification_.unified()) {
    for (const auto& v : binding.unification_.violations)
      PD_LOG(error) << "picodriver bind: " << v;
    return Errno::eperm;
  }
  // Map the LWK image into Linux (done at LWK boot in the paper; idempotent
  // here — a second PicoDriver reuses the existing reservation).
  if (!linux_kernel.text_visible(mck.layout().image.start)) {
    if (Status s = linux_kernel.reserve_vmap_area(mck.layout().image); !s.ok())
      return s.error();
  }

  // (2) Spin-lock compatibility (§3.3).
  if (mck.spinlock_abi() != linux_kernel.spinlock_abi()) return Errno::enosys;

  // (3) DWARF structure extraction from the shipped binary (§3.2).
  const auto* abbrev = module.section(".debug_abbrev");
  const auto* info = module.section(".debug_info");
  if (abbrev == nullptr || info == nullptr) return Errno::enoent;
  static const std::vector<std::uint8_t> kNoStr;
  const auto* str = module.section(".debug_str");
  auto view = dwarf::DebugInfoView::parse(*abbrev, *info, str != nullptr ? *str : kNoStr);
  if (!view.ok()) return view.error();
  binding.view_ = std::make_shared<dwarf::DebugInfoView>(std::move(*view));

  for (const auto& req : requests) {
    auto layout = dwarf::extract_struct(*binding.view_, req.name, req.fields);
    if (!layout.ok()) {
      PD_LOG(error) << "picodriver bind: extraction of '" << req.name << "' failed: "
                    << to_string(layout.error());
      return layout.error();
    }
    binding.layouts_.emplace(req.name, std::move(*layout));
  }

  binding.driver_version_ = module.version().value_or("unknown");
  PD_LOG(info) << "picodriver bound against " << binding.driver_version_ << " ("
               << binding.layouts_.size() << " structures)";
  return binding;
}

const dwarf::StructLayout* PicoBinding::layout(const std::string& struct_name) const {
  auto it = layouts_.find(struct_name);
  return it == layouts_.end() ? nullptr : &it->second;
}

Result<std::string> PicoBinding::generated_header(const std::string& struct_name) const {
  const dwarf::StructLayout* l = layout(struct_name);
  if (l == nullptr || !view_) return Errno::enoent;
  return dwarf::generate_header(*view_, *l);
}

os::KernelCallback PicoBinding::lwk_callback(std::function<void()> fn) const {
  return os::KernelCallback{mck_->layout().image.start + 0x2000, std::move(fn)};
}

}  // namespace pd::pico
