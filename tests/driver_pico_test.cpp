// Integration tests: HFI Linux driver + IHK offloading + HFI PicoDriver.
// Exercises the paper's §3 mechanisms end to end on a two-node mini
// cluster: DWARF-bound offsets vs driver layouts, fast-path vs native vs
// offloaded writev, descriptor sizes, TID registration, cross-kernel
// callbacks and remote frees.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.hpp"
#include "src/hfi/driver.hpp"
#include "src/pico/hfi_picodriver.hpp"

// ASSERT_* returns `void`, which is illegal inside a coroutine; this is the
// coroutine-safe equivalent (record failure, co_return).
#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd {
namespace {

using namespace pd::time_literals;

struct MiniNode {
  std::unique_ptr<mem::PhysMap> phys;
  std::unique_ptr<hw::HfiDevice> device;
  std::unique_ptr<os::LinuxKernel> linux_kernel;
  std::unique_ptr<os::Ihk> ihk;
  std::unique_ptr<os::McKernel> mck;
  std::unique_ptr<hfi::HfiDriver> driver;
  std::unique_ptr<pico::HfiPicoDriver> pico;
};

struct MiniCluster {
  sim::Engine engine;
  os::Config cfg;
  std::unique_ptr<hw::Fabric> fabric;
  std::vector<MiniNode> nodes;

  explicit MiniCluster(int n, os::OsMode mode, const std::string& version = "10.8-0")
      : MiniCluster(n, mode, os::Config{}, hw::HfiConfig{}, version) {}

  MiniCluster(int n, os::OsMode mode, os::Config base, hw::HfiConfig hw_cfg,
              const std::string& version = "10.8-0")
      : cfg(std::move(base)) {
    fabric = std::make_unique<hw::Fabric>(engine, n);
    for (int i = 0; i < n; ++i) {
      MiniNode node;
      node.phys = std::make_unique<mem::PhysMap>(mem::PhysMap::knl(1_GiB, 4_GiB, 2));
      node.device = std::make_unique<hw::HfiDevice>(engine, *fabric, i, hw_cfg);
      node.linux_kernel = std::make_unique<os::LinuxKernel>(engine, cfg);
      node.driver =
          std::make_unique<hfi::HfiDriver>(*node.linux_kernel, *node.device, version);
      if (mode != os::OsMode::linux) {
        node.ihk = std::make_unique<os::Ihk>(engine, cfg, *node.linux_kernel);
        node.mck = std::make_unique<os::McKernel>(engine, cfg, *node.ihk,
                                                  mode == os::OsMode::mckernel_hfi);
        if (mode == os::OsMode::mckernel_hfi) {
          auto p = pico::HfiPicoDriver::create(*node.mck, *node.driver);
          EXPECT_TRUE(p.ok());
          if (p.ok()) node.pico = std::move(*p);
        }
      }
      nodes.push_back(std::move(node));
    }
  }

  std::unique_ptr<os::Process> make_process(int node, int ctxt, os::OsMode mode) {
    auto& n = nodes[static_cast<std::size_t>(node)];
    if (mode == os::OsMode::linux)
      return std::make_unique<os::Process>(*n.linux_kernel, *n.phys, node, ctxt,
                                           1000u + static_cast<unsigned>(ctxt));
    return std::make_unique<os::Process>(*n.mck, *n.phys, node, ctxt,
                                         1000u + static_cast<unsigned>(ctxt));
  }
};

/// Drive one writev of `bytes` from node0/ctxt0 to node1/ctxt0 and run to
/// completion. Returns (result, completion_fired).
struct WritevOutcome {
  Result<long> result = Errno::eio;
  bool completed = false;
  Time finished = 0;
};

WritevOutcome do_writev(MiniCluster& c, os::Process& proc, std::uint64_t bytes) {
  WritevOutcome out;
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p, std::uint64_t len,
                          WritevOutcome& o) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(len);
    CO_ASSERT_TRUE(buf.ok());

    hfi::SdmaReqHeader hdr;
    hdr.wire.src_node = p.node();
    hdr.wire.dst_node = 1;
    hdr.wire.src_ctxt = p.ctxt();
    hdr.wire.dst_ctxt = 0;
    hdr.wire.kind = hw::WireKind::expected;
    hdr.wire.seq = 1;
    hdr.on_complete = [&o] { o.completed = true; };

    std::vector<os::IoVec> iov;
    iov.push_back(os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr});
    iov.push_back(os::IoVec{*buf, len});
    o.result = co_await p.writev(*fd, std::move(iov));
    o.finished = cl.engine.now();
  }(c, proc, bytes, out));
  c.nodes[1].device->open_context(0);
  c.engine.run();
  return out;
}

TEST(LayoutVersions, ExtractedOffsetsMatchDriverForEveryVersion) {
  for (const char* version : {"10.8-0", "10.9-5", "11.0-2"}) {
    MiniCluster c(1, os::OsMode::mckernel_hfi, version);
    auto& node = c.nodes[0];
    ASSERT_NE(node.pico, nullptr) << version;
    const auto& layouts = node.driver->layouts();
    for (const char* sname :
         {"sdma_state", "sdma_engine", "hfi1_filedata", "hfi1_ctxtdata"}) {
      const hfi::StructDef* truth = layouts.structure(sname);
      const dwarf::StructLayout* bound = node.pico->binding().layout(sname);
      ASSERT_NE(truth, nullptr);
      ASSERT_NE(bound, nullptr) << sname << " " << version;
      EXPECT_EQ(bound->byte_size, truth->byte_size) << sname << " " << version;
      for (const auto& f : bound->fields) {
        const hfi::FieldDef* tf = truth->field(f.name);
        ASSERT_NE(tf, nullptr);
        EXPECT_EQ(f.offset, tf->offset) << sname << "." << f.name << " @ " << version;
        EXPECT_EQ(f.size, tf->size) << sname << "." << f.name << " @ " << version;
      }
    }
    EXPECT_EQ(node.pico->binding().driver_version(), std::string("hfi1 ") + version);
  }
}

TEST(LayoutVersions, OffsetsActuallyDifferAcrossVersions) {
  auto l1 = hfi::DriverLayouts::for_version("10.8-0");
  auto l2 = hfi::DriverLayouts::for_version("11.0-2");
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_NE(l1->structure("sdma_state")->field("current_state")->offset,
            l2->structure("sdma_state")->field("current_state")->offset);
  EXPECT_FALSE(hfi::DriverLayouts::for_version("9.9-9").ok());
}

TEST(PicoBind, FailsOnOriginalVaLayout) {
  sim::Engine engine;
  os::Config cfg;
  hw::Fabric fabric(engine, 1);
  mem::PhysMap phys = mem::PhysMap::knl(1_GiB, 4_GiB, 2);
  hw::HfiDevice device(engine, fabric, 0);
  os::LinuxKernel linux_kernel(engine, cfg);
  hfi::HfiDriver driver(linux_kernel, device, "10.8-0");
  os::Ihk ihk(engine, cfg, linux_kernel);
  os::McKernel mck(engine, cfg, ihk, /*unified_layout=*/false);
  auto pico = pico::HfiPicoDriver::create(mck, driver);
  EXPECT_FALSE(pico.ok());
  EXPECT_EQ(pico.error(), Errno::eperm);
}

TEST(PicoBind, ReservesLwkTextInLinux) {
  MiniCluster c(1, os::OsMode::mckernel_hfi);
  auto& node = c.nodes[0];
  EXPECT_TRUE(node.linux_kernel->text_visible(node.mck->layout().image.start));
  EXPECT_TRUE(node.linux_kernel->text_visible(node.mck->layout().image.end - 1));
}

TEST(PicoBind, GeneratedHeaderAvailableAtRuntime) {
  MiniCluster c(1, os::OsMode::mckernel_hfi);
  auto header = c.nodes[0].pico->binding().generated_header("sdma_state");
  ASSERT_TRUE(header.ok());
  EXPECT_NE(header->find("whole_struct[64]"), std::string::npos);
  EXPECT_NE(header->find("enum sdma_states current_state;"), std::string::npos);
}

TEST(Callbacks, LwkTextInvisibleWithoutReservationFaults) {
  sim::Engine engine;
  os::Config cfg;
  os::LinuxKernel linux_kernel(engine, cfg);
  const mem::KernelLayout orig = mem::mckernel_original_layout();
  bool ran = false;
  // The original McKernel links its image at the same VA as Linux's, so a
  // "visible" check there would hit *Linux* code; use the LWK's private
  // valloc area, which Linux has definitely never mapped.
  os::KernelCallback cb{orig.valloc.start + 0x100, [&] { ran = true; }};
  EXPECT_EQ(linux_kernel.invoke(cb).error(), Errno::efault);
  EXPECT_FALSE(ran);
  EXPECT_EQ(linux_kernel.callback_faults(), 1u);
}

TEST(Writev, LinuxNativeUsesPageSizedDescriptors) {
  MiniCluster c(2, os::OsMode::linux);
  auto proc = c.make_process(0, 0, os::OsMode::linux);
  const auto out = do_writev(c, *proc, 256_KiB);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(*out.result, static_cast<long>(256_KiB));
  EXPECT_TRUE(out.completed);
  const auto& dev = *c.nodes[0].device;
  EXPECT_EQ(dev.total_descriptors(), 256_KiB / 4096);
  EXPECT_EQ(dev.total_descriptor_bytes(), 256_KiB);
  // Pins released by the completion IRQ path.
  EXPECT_EQ(proc->as().pinned_frame_count(), 0u);
  EXPECT_GE(c.nodes[0].linux_kernel->irqs_handled(), 1u);
  EXPECT_EQ(c.nodes[0].linux_kernel->callback_faults(), 0u);
}

TEST(Writev, PicoFastPathUses10KDescriptors) {
  MiniCluster c(2, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  const auto out = do_writev(c, *proc, 256_KiB);
  ASSERT_TRUE(out.result.ok());
  EXPECT_TRUE(out.completed);
  const auto& dev = *c.nodes[0].device;
  // ceil(262144 / 10240) = 26 descriptors when backing is contiguous.
  EXPECT_LE(dev.total_descriptors(), 27u);
  EXPECT_GE(dev.total_descriptors(), 26u);
  EXPECT_EQ(dev.total_descriptor_bytes(), 256_KiB);
  EXPECT_EQ(c.nodes[0].pico->fast_writevs(), 1u);
  EXPECT_EQ(c.nodes[0].linux_kernel->callback_faults(), 0u)
      << "LWK completion callback must be invocable from Linux";
  EXPECT_EQ(c.nodes[0].driver->writev_calls(), 0u) << "Linux path must not be used";
}

TEST(Writev, OffloadedMcKernelStillWorksAndIsSlower) {
  MiniCluster hfi_cluster(2, os::OsMode::mckernel_hfi);
  auto p1 = hfi_cluster.make_process(0, 0, os::OsMode::mckernel_hfi);
  const auto fast = do_writev(hfi_cluster, *p1, 64_KiB);

  MiniCluster off_cluster(2, os::OsMode::mckernel);
  auto p2 = off_cluster.make_process(0, 0, os::OsMode::mckernel);
  const auto slow = do_writev(off_cluster, *p2, 64_KiB);

  ASSERT_TRUE(fast.result.ok());
  ASSERT_TRUE(slow.result.ok());
  EXPECT_TRUE(slow.completed);
  // Offloaded syscall: driver ran via proxy; the writev syscall cost more.
  EXPECT_EQ(off_cluster.nodes[0].driver->writev_calls(), 1u);
  EXPECT_GT(off_cluster.nodes[0].ihk->offload_count(), 0u);
  const double fast_us =
      hfi_cluster.nodes[0].mck->profiler().total_us_of("writev");
  const double slow_us =
      off_cluster.nodes[0].mck->profiler().total_us_of("writev");
  EXPECT_GT(slow_us, fast_us * 3) << "offload should dominate fast path cost";
}

TEST(Writev, RemoteFreeFlowsThroughQueue) {
  MiniCluster c(2, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  auto& mck = *c.nodes[0].mck;
  const auto out = do_writev(c, *proc, 128_KiB);
  ASSERT_TRUE(out.result.ok());
  // Completion freed LWK metadata from a Linux CPU → remote queue.
  EXPECT_EQ(mck.kheap().stats().remote_frees, 1u);
  EXPECT_EQ(mck.kheap().stats().rejected_frees, 0u);
  // Next tick (or explicit drain) reclaims it.
  mck.drain_remote_frees();
  EXPECT_EQ(mck.kheap().stats().bytes_live, 0u);
}

TEST(Tid, LinuxProgramsPerPageEntries) {
  MiniCluster c(1, os::OsMode::linux);
  auto proc = c.make_process(0, 0, os::OsMode::linux);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(128_KiB);
    CO_ASSERT_TRUE(buf.ok());
    hfi::TidUpdateArgs args;
    args.vaddr = *buf;
    args.length = 128_KiB;
    auto r = co_await p.ioctl(*fd, hfi::kTidUpdate, &args);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_EQ(args.tids.size(), 128_KiB / 4096) << "one TID per 4 KiB page";
    EXPECT_EQ(cl.nodes[0].device->rcv_array().in_use(), args.tids.size());
    // And free them again.
    hfi::TidFreeArgs free_args;
    free_args.tids = args.tids;
    auto fr = co_await p.ioctl(*fd, hfi::kTidFree, &free_args);
    CO_ASSERT_TRUE(fr.ok());
    EXPECT_EQ(cl.nodes[0].device->rcv_array().in_use(), 0u);
    EXPECT_EQ(p.as().pinned_frame_count(), 0u);
  }(c, *proc));
  c.engine.run();
}

TEST(Tid, PicoProgramsPerExtentEntries) {
  MiniCluster c(1, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(2_MiB);
    CO_ASSERT_TRUE(buf.ok());
    hfi::TidUpdateArgs args;
    args.vaddr = *buf;
    args.length = 2_MiB;
    auto r = co_await p.ioctl(*fd, hfi::kTidUpdate, &args);
    CO_ASSERT_TRUE(r.ok());
    // Contiguous 2 MiB large-page backing → a single RcvArray entry
    // instead of 512.
    EXPECT_LE(args.tids.size(), 2u);
    EXPECT_EQ(cl.nodes[0].pico->fast_tid_updates(), 1u);
    hfi::TidFreeArgs free_args;
    free_args.tids = args.tids;
    CO_ASSERT_TRUE((co_await p.ioctl(*fd, hfi::kTidFree, &free_args)).ok());
    EXPECT_EQ(cl.nodes[0].device->rcv_array().in_use(), 0u);
  }(c, *proc));
  c.engine.run();
}

TEST(Tid, PicoQuotaEvictionRecyclesOwnShareOnly) {
  // Fast-path registrations share the per-context RcvArray quota and its
  // reclamation policy with the Linux path: at quota the tenant's own LRU
  // entry is recycled (pico.tid.quota_evict), a neighbour context's
  // entries are never candidates. 256 RcvArray entries / 64 contexts = a
  // 4-entry quota, reachable with single-page registrations.
  os::Config cfg;
  cfg.hfi_tid_quota_evict = true;
  hw::HfiConfig hc;
  hc.rcv_array_entries = 256;
  MiniCluster c(1, os::OsMode::mckernel_hfi, cfg, hc);
  auto tenant = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  auto neighbour = c.make_process(0, 1, os::OsMode::mckernel_hfi);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& a, os::Process& b) -> sim::Task<> {
    auto fda = co_await a.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fda.ok());
    auto fdb = co_await b.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fdb.ok());
    auto reg = [](os::Process& p, int fd) -> sim::Task<Result<std::uint32_t>> {
      auto buf = co_await p.mmap_anon(4_KiB);
      if (!buf.ok()) co_return buf.error();
      hfi::TidUpdateArgs args;
      args.vaddr = *buf;
      args.length = 4_KiB;
      auto r = co_await p.ioctl(fd, hfi::kTidUpdate, &args);
      if (!r.ok()) co_return r.error();
      if (args.tids.size() != 1) co_return Errno::eio;
      co_return args.tids[0];
    };
    auto btid = co_await reg(b, *fdb);
    CO_ASSERT_TRUE(btid.ok());
    std::vector<std::uint32_t> atids;
    for (int i = 0; i < 4; ++i) {  // fill the tenant's quota exactly
      auto t = co_await reg(a, *fda);
      CO_ASSERT_TRUE(t.ok());
      atids.push_back(*t);
    }
    EXPECT_EQ(cl.nodes[0].device->rcv_array().in_use(), 5u);

    auto extra = co_await reg(a, *fda);  // one entry over quota
    CO_ASSERT_TRUE(extra.ok());
    EXPECT_EQ(cl.nodes[0].mck->profiler().counter("pico.tid.quota_evict"), 1u);
    EXPECT_EQ(cl.nodes[0].device->rcv_array().in_use(), 5u)
        << "net share unchanged: own LRU out, new entry in";
    EXPECT_EQ(cl.nodes[0].device->rcv_array().entry(atids[0]), nullptr)
        << "the tenant's oldest registration is the victim";
    const auto* be = cl.nodes[0].device->rcv_array().entry(*btid);
    CO_ASSERT_TRUE(be != nullptr);
    EXPECT_EQ(be->owner_ctxt, 1) << "neighbour entry must never be evicted";
  }(c, *tenant, *neighbour));
  c.engine.run();
}

TEST(Tid, ExtentCacheFileQuotaEvictsOwnColdestCacheOnly) {
  // `pico_extent_quota_files` caps per-file extent caches per process: a
  // process opening file after file drops its *own* coldest cache at the
  // cap, while another process's cache survives (proved by its re-lookup
  // still hitting).
  os::Config cfg;
  cfg.pico_extent_quota_files = 2;
  MiniCluster c(1, os::OsMode::mckernel_hfi, cfg, hw::HfiConfig{});
  auto hungry = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  auto other = c.make_process(0, 1, os::OsMode::mckernel_hfi);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& a, os::Process& b) -> sim::Task<> {
    auto reg = [](os::Process& p, int fd, mem::VirtAddr va) -> sim::Task<Status> {
      hfi::TidUpdateArgs args;
      args.vaddr = va;
      args.length = 4_KiB;
      auto r = co_await p.ioctl(fd, hfi::kTidUpdate, &args);
      if (!r.ok()) co_return r.error();
      hfi::TidFreeArgs free_args;  // keep the RcvArray empty; only caches matter
      free_args.tids = args.tids;
      auto fr = co_await p.ioctl(fd, hfi::kTidFree, &free_args);
      co_return fr.ok() ? Status::success() : Status(fr.error());
    };
    // The other process warms its one cache first.
    auto fdb = co_await b.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fdb.ok());
    auto bbuf = co_await b.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(bbuf.ok());
    CO_ASSERT_TRUE((co_await reg(b, *fdb, *bbuf)).ok());

    // The hungry process churns through three files (fds): the third cache
    // creation is over its 2-cache quota and must drop its own coldest.
    auto abuf = co_await a.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(abuf.ok());
    for (int i = 0; i < 3; ++i) {
      auto fda = co_await a.open(hfi::kDeviceName);
      CO_ASSERT_TRUE(fda.ok());
      CO_ASSERT_TRUE((co_await reg(a, *fda, *abuf)).ok());
      CO_ASSERT_TRUE((co_await a.close_fd(*fda)).ok());
    }
    EXPECT_EQ(cl.nodes[0].pico->extent_cache_file_quota_evictions(), 1u);
    EXPECT_EQ(cl.nodes[0].mck->profiler().counter("pico.extent_cache.quota_file_evicted"),
              1u);

    // The other process's cache must have survived the neighbour's churn:
    // re-registering the same window is still a cache hit.
    const auto hits_before = cl.nodes[0].pico->extent_cache_hits();
    CO_ASSERT_TRUE((co_await reg(b, *fdb, *bbuf)).ok());
    EXPECT_EQ(cl.nodes[0].pico->extent_cache_hits(), hits_before + 1)
        << "neighbour's extent cache must never be a quota victim";
  }(c, *hungry, *other));
  c.engine.run();
}

/// Open one fabricated per-ctxt OpenFile straight through the Linux driver.
/// Process::open allows one HFI fd per process (its ctxt is fixed), but the
/// hardware supports many receive contexts — these tests need several live
/// fds for one process, exactly what a real multi-context rank holds.
sim::Task<Status> open_direct(hfi::HfiDriver& driver, os::OpenFile& f,
                              os::Process& p, int fd, int ctxt) {
  f.fd = fd;
  f.proc = &p;
  f.ctxt = ctxt;
  auto r = co_await driver.open(f);
  co_return r.ok() ? Status::success() : Status(r.error());
}

/// TID-register then free `va` through the pico fast path on `f`, touching
/// (or creating) the per-file extent cache.
sim::Task<Status> reg_direct(pico::HfiPicoDriver& pico, os::OpenFile& f,
                             mem::VirtAddr va) {
  hfi::TidUpdateArgs args;
  args.vaddr = va;
  args.length = 4_KiB;
  auto r = co_await pico.fast_ioctl(f, hfi::kTidUpdate, &args);
  if (!r.ok()) co_return r.error();
  hfi::TidFreeArgs free_args;
  free_args.tids = args.tids;
  auto fr = co_await pico.fast_ioctl(f, hfi::kTidFree, &free_args);
  co_return fr.ok() ? Status::success() : Status(fr.error());
}

TEST(Tid, QuotaFloodDuringSuspendedWritevSparesPinnedCache) {
  // Regression (ISSUE 8 satellite): a fast_writev suspends mid-flight (here
  // on a contended SDMA engine lock) while holding pins on its file's extent
  // cache; the same process then floods new fds past
  // `pico_extent_quota_files`. The quota victim scan must *skip* the pinned
  // cache (falling to the next-coldest owned victim, counted in
  // quota_skip_pinned) — evicting it would tear down extents the suspended
  // send is actively reading when it resumes.
  os::Config cfg;
  cfg.pico_extent_quota_files = 2;
  MiniCluster c(2, os::OsMode::mckernel_hfi, cfg, hw::HfiConfig{});
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  bool completed = false;
  Result<long> writev_result = Errno::eio;
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p, bool& done,
                          Result<long>& wr) -> sim::Task<> {
    auto& node = cl.nodes[0];
    os::OpenFile fa, fb, fc;
    CO_ASSERT_TRUE((co_await open_direct(*node.driver, fa, p, 100, 0)).ok());
    auto abuf = co_await p.mmap_anon(64_KiB);
    auto rbuf = co_await p.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(abuf.ok() && rbuf.ok());

    // Hold every SDMA engine lock so the writev parks *after* pinning.
    for (int e = 0; e < node.device->num_engines(); ++e)
      co_await node.driver->engine_lock(e).acquire();

    hfi::SdmaReqHeader hdr;
    hdr.wire.src_node = 0;
    hdr.wire.dst_node = 1;
    hdr.wire.src_ctxt = 0;
    hdr.wire.dst_ctxt = 0;
    hdr.wire.kind = hw::WireKind::expected;
    hdr.wire.seq = 1;
    hdr.on_complete = [&done] { done = true; };
    std::vector<os::IoVec> iov{os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
                               os::IoVec{*abuf, 64_KiB}};
    sim::spawn(cl.engine, [](pico::HfiPicoDriver& pd_, os::OpenFile& f,
                             std::vector<os::IoVec>& io, Result<long>& out) -> sim::Task<> {
      out = co_await pd_.fast_writev(f, io);
    }(*node.pico, fa, iov, wr));
    co_await cl.engine.delay(from_us(50));  // let it pin and hit the lock
    EXPECT_EQ(node.pico->fast_writevs(), 1u) << "the send must be in flight";

    // Flood: two more per-fd caches push the process past its 2-cache
    // quota while the suspended writev's pinned cache is the coldest entry.
    CO_ASSERT_TRUE((co_await open_direct(*node.driver, fb, p, 101, 1)).ok());
    CO_ASSERT_TRUE((co_await open_direct(*node.driver, fc, p, 102, 2)).ok());
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fb, *rbuf)).ok());
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fc, *rbuf)).ok());

    EXPECT_GE(node.pico->extent_cache_quota_skip_pinned(), 1u)
        << "the pinned cache must be passed over, not evicted";
    EXPECT_GE(node.mck->profiler().counter("pico.extent_cache.quota_skip_pinned"), 1u);

    for (int e = 0; e < node.device->num_engines(); ++e)
      node.driver->engine_lock(e).release();
  }(c, *proc, completed, writev_result));
  c.nodes[1].device->open_context(0);
  c.engine.run();

  // The suspended send finished on the fast path with its payload intact —
  // its extents were never torn down under it.
  ASSERT_TRUE(writev_result.ok()) << "writev must survive the quota flood";
  EXPECT_EQ(*writev_result, static_cast<long>(64_KiB));
  EXPECT_TRUE(completed);
  EXPECT_EQ(c.nodes[0].pico->fast_writevs(), 1u);
  EXPECT_EQ(c.nodes[0].pico->fallbacks(), 0u);
}

TEST(Tid, FileCacheRecencyKeepsEvictionOrderAfterTouches) {
  // Regression for the O(1) recency-list refresh (ISSUE 8 satellite): the
  // intrusive list must preserve the exact LRU eviction order the old
  // find+rotate scan produced — a touched cache survives the next quota
  // eviction, the untouched coldest one goes.
  os::Config cfg;
  cfg.pico_extent_quota_files = 2;
  MiniCluster c(1, os::OsMode::mckernel_hfi, cfg, hw::HfiConfig{});
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p) -> sim::Task<> {
    auto& node = cl.nodes[0];
    os::OpenFile fa, fb, fc;
    CO_ASSERT_TRUE((co_await open_direct(*node.driver, fa, p, 100, 0)).ok());
    CO_ASSERT_TRUE((co_await open_direct(*node.driver, fb, p, 101, 1)).ok());
    CO_ASSERT_TRUE((co_await open_direct(*node.driver, fc, p, 102, 2)).ok());
    auto buf = co_await p.mmap_anon(4_KiB);
    CO_ASSERT_TRUE(buf.ok());

    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fa, *buf)).ok());  // [A]
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fb, *buf)).ok());  // [A, B]
    // Touch A: it must move to the hot end — B is now the coldest.
    const auto hits0 = node.pico->extent_cache_hits();
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fa, *buf)).ok());  // [B, A]
    EXPECT_EQ(node.pico->extent_cache_hits(), hits0 + 1);

    // Over quota: the victim must be untouched B, not recently-touched A.
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fc, *buf)).ok());  // evict B → [A, C]
    EXPECT_EQ(node.pico->extent_cache_file_quota_evictions(), 1u);
    const auto hits1 = node.pico->extent_cache_hits();
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fa, *buf)).ok());  // A survived
    EXPECT_EQ(node.pico->extent_cache_hits(), hits1 + 1)
        << "the touched cache must have survived the eviction";

    // B was evicted: recreating it is a miss and evicts the now-coldest C.
    const auto misses0 = node.pico->extent_cache_misses();
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fb, *buf)).ok());  // evict C → [A, B]
    EXPECT_EQ(node.pico->extent_cache_misses(), misses0 + 1)
        << "the evicted cache must really be gone";
    EXPECT_EQ(node.pico->extent_cache_file_quota_evictions(), 2u);
    const auto hits2 = node.pico->extent_cache_hits();
    CO_ASSERT_TRUE((co_await reg_direct(*node.pico, fa, *buf)).ok());  // A still alive
    EXPECT_EQ(node.pico->extent_cache_hits(), hits2 + 1);
  }(c, *proc));
  c.engine.run();
}

TEST(Tid, AdminIoctlStillOffloadsUnderPico) {
  MiniCluster c(1, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    const std::uint64_t offloads_before = cl.nodes[0].ihk->offload_count();
    auto r = co_await p.ioctl(*fd, hfi::kCtxtInfo, nullptr);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_EQ(cl.nodes[0].ihk->offload_count(), offloads_before + 1)
        << "non-TID ioctl must take the offload path";
  }(c, *proc));
  c.engine.run();
}

TEST(Offload, ContentionQueuesOnServiceCpus) {
  MiniCluster c(1, os::OsMode::mckernel);
  std::vector<std::unique_ptr<os::Process>> procs;
  for (int i = 0; i < 32; ++i) procs.push_back(c.make_process(0, i, os::OsMode::mckernel));
  int opened = 0;
  for (auto& p : procs) {
    sim::spawn(c.engine, [](os::Process& proc, int& done) -> sim::Task<> {
      auto fd = co_await proc.open(hfi::kDeviceName);
      CO_ASSERT_TRUE(fd.ok());
      ++done;
    }(*p, opened));
  }
  c.engine.run();
  EXPECT_EQ(opened, 32);
  // 32 opens through 4 service CPUs: queueing must be visible.
  EXPECT_GT(c.nodes[0].ihk->queueing_summary().mean_us, 1.0);
}

TEST(Writev, RepeatedBufferHitsExtentCacheAndReusesSlab) {
  MiniCluster c(2, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  int completions = 0;
  sim::spawn(c.engine, [](os::Process& p, int& done) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(64_KiB);
    CO_ASSERT_TRUE(buf.ok());
    const auto send = [&](std::uint64_t seq) -> sim::Task<Result<long>> {
      hfi::SdmaReqHeader hdr;
      hdr.wire.src_node = p.node();
      hdr.wire.dst_node = 1;
      hdr.wire.src_ctxt = p.ctxt();
      hdr.wire.dst_ctxt = 0;
      hdr.wire.kind = hw::WireKind::eager;
      hdr.wire.seq = seq;
      hdr.on_complete = [&done] { ++done; };
      std::vector<os::IoVec> iov;
      iov.push_back(os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr});
      iov.push_back(os::IoVec{*buf, 64_KiB});
      co_return co_await p.writev(*fd, std::move(iov));
    };
    for (std::uint64_t i = 1; i <= 4; ++i) {
      CO_ASSERT_TRUE((co_await send(i)).ok());
      // Let the completion IRQ run so the metadata lands on the remote-free
      // queue before the next send's entry drain.
      co_await p.nanosleep(50_us);
    }
    // A munmap of a *disjoint* buffer moves the map generation, but the
    // unmap-interval log proves the cached send buffer untouched: send 5
    // must still hit instead of re-walking (range-precise invalidation).
    auto scratch = co_await p.mmap_anon(16_KiB);
    CO_ASSERT_TRUE(scratch.ok());
    CO_ASSERT_TRUE((co_await p.munmap(*scratch, 16_KiB)).ok());
    CO_ASSERT_TRUE((co_await send(5)).ok());
    co_await p.nanosleep(50_us);
    // With the log disabled (capacity 0) the same disjoint munmap degrades
    // to the conservative whole-space fallback: send 6 re-walks.
    p.as().set_unmap_log_capacity(0);
    auto scratch2 = co_await p.mmap_anon(16_KiB);
    CO_ASSERT_TRUE(scratch2.ok());
    CO_ASSERT_TRUE((co_await p.munmap(*scratch2, 16_KiB)).ok());
    CO_ASSERT_TRUE((co_await send(6)).ok());
  }(*proc, completions));
  c.nodes[1].device->open_context(0);
  c.engine.run();

  auto& node = c.nodes[0];
  EXPECT_EQ(node.pico->fast_writevs(), 6u);
  EXPECT_EQ(node.pico->fallbacks(), 0u);
  // Send 1 walks, sends 2-5 hit (5 despite the disjoint munmap), send 6
  // re-walks under the generation-overflow fallback.
  EXPECT_EQ(node.pico->extent_cache_misses(), 1u);
  EXPECT_EQ(node.pico->extent_cache_hits(), 4u);
  EXPECT_EQ(node.pico->extent_cache_range_invalidations(), 0u);
  EXPECT_EQ(node.pico->extent_cache_generation_overflows(), 1u);
  EXPECT_EQ(node.pico->extent_cache_invalidations(), 1u);
  const auto& prof = node.mck->profiler();
  EXPECT_EQ(prof.counter("pico.extent_cache.hit"), 4u);
  EXPECT_EQ(prof.counter("pico.extent_cache.miss"), 1u);
  EXPECT_EQ(prof.counter("pico.extent_cache.range_invalidated"), 0u);
  EXPECT_EQ(prof.counter("pico.extent_cache.generation_overflow"), 1u);
  // Every lookup lands in exactly one outcome counter (no evictions here).
  EXPECT_EQ(prof.sum_counters("pico.extent_cache."), 6u);
  // Sends 2-6 each reclaim the previous completion's 192-byte metadata
  // from the remote-free queue and pop it straight off the slab magazine.
  EXPECT_GE(node.mck->kheap().stats().slab_reuses, 4u);
  EXPECT_GE(prof.counter("lwk.kheap.slab_reuse"), 4u);
  EXPECT_EQ(completions, 6);
}

TEST(Tid, ReRegistrationHitsExtentCache) {
  MiniCluster c(1, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(2_MiB);
    CO_ASSERT_TRUE(buf.ok());
    for (int round = 0; round < 2; ++round) {
      hfi::TidUpdateArgs args;
      args.vaddr = *buf;
      args.length = 2_MiB;
      CO_ASSERT_TRUE((co_await p.ioctl(*fd, hfi::kTidUpdate, &args)).ok());
      hfi::TidFreeArgs free_args;
      free_args.tids = args.tids;
      CO_ASSERT_TRUE((co_await p.ioctl(*fd, hfi::kTidFree, &free_args)).ok());
    }
    EXPECT_EQ(cl.nodes[0].device->rcv_array().in_use(), 0u);
  }(c, *proc));
  c.engine.run();
  // TID_FREE does not unmap anything, so the second registration of the
  // same pinned window is the PSM2 TID-cache amortization: a pure hit.
  EXPECT_EQ(c.nodes[0].pico->fast_tid_updates(), 2u);
  EXPECT_EQ(c.nodes[0].pico->extent_cache_misses(), 1u);
  EXPECT_EQ(c.nodes[0].pico->extent_cache_hits(), 1u);
  EXPECT_EQ(c.nodes[0].mck->profiler().counter("pico.extent_cache.hit"), 1u);
}

TEST(Writev, RingFullFallsBackToLinuxAfterBoundedBackoff) {
  MiniCluster c(2, os::OsMode::mckernel_hfi);
  // Two short backoff attempts (300 ns total) cannot outwait a full ring
  // that drains one 10 KiB descriptor per ~473 ns.
  c.cfg.pico_ring_backoff_attempts = 2;
  c.cfg.pico_ring_backoff_base = 100_ns;
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  WritevOutcome out;
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p, WritevOutcome& o) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(128_KiB);
    CO_ASSERT_TRUE(buf.ok());

    // Stuff every engine's ring completely full right before the send.
    auto& dev = *cl.nodes[0].device;
    std::uint64_t seq = 1000;
    for (int e = 0; e < dev.num_engines(); ++e) {
      auto& engine = dev.engine(e);
      while (engine.ring_free() > 0) {
        hw::SdmaRequest filler;
        filler.descriptors.push_back(hw::SdmaDescriptor{0x1000, 10240});
        filler.header.src_node = 0;
        filler.header.dst_node = 1;
        filler.header.dst_ctxt = 0;
        filler.header.kind = hw::WireKind::eager;
        filler.header.seq = seq++;
        CO_ASSERT_TRUE(engine.submit(std::move(filler)).ok());
      }
    }

    hfi::SdmaReqHeader hdr;
    hdr.wire.src_node = p.node();
    hdr.wire.dst_node = 1;
    hdr.wire.src_ctxt = p.ctxt();
    hdr.wire.dst_ctxt = 0;
    hdr.wire.kind = hw::WireKind::expected;
    hdr.wire.seq = 1;
    hdr.on_complete = [&o] { o.completed = true; };
    std::vector<os::IoVec> iov;
    iov.push_back(os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr});
    iov.push_back(os::IoVec{*buf, 128_KiB});
    o.result = co_await p.writev(*fd, std::move(iov));
    o.finished = cl.engine.now();
  }(c, *proc, out));
  c.nodes[1].device->open_context(0);
  c.engine.run();

  ASSERT_TRUE(out.result.ok()) << "the send must still succeed via Linux";
  EXPECT_EQ(*out.result, static_cast<long>(128_KiB));
  EXPECT_TRUE(out.completed) << "the payload's completion must still fire";
  auto& node = c.nodes[0];
  EXPECT_EQ(node.pico->ring_full_fallbacks(), 1u);
  EXPECT_EQ(node.pico->fallbacks(), 1u);
  EXPECT_EQ(node.driver->writev_calls(), 1u) << "fallback must reuse the Linux path";
  EXPECT_EQ(node.mck->profiler().counter("pico.ring_full_fallback"), 1u);
  // The Linux path really carried the payload to the hardware: beyond the
  // ring-stuffing filler, the device saw the 128 KiB in 4 KiB descriptors.
  EXPECT_GE(node.device->total_descriptor_bytes(), 128_KiB);
}

TEST(Writev, RingFullBackoffOutwaitsDrainWithoutFallback) {
  // Companion regression: with the default (generous) backoff schedule the
  // engine drains faster than the bounded wait expires, so a full ring must
  // *not* force the Linux path — the fast path retries and submits.
  MiniCluster c(2, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  WritevOutcome out;
  sim::spawn(c.engine, [](MiniCluster& cl, os::Process& p, WritevOutcome& o) -> sim::Task<> {
    auto fd = co_await p.open(hfi::kDeviceName);
    CO_ASSERT_TRUE(fd.ok());
    auto buf = co_await p.mmap_anon(128_KiB);
    CO_ASSERT_TRUE(buf.ok());
    auto& dev = *cl.nodes[0].device;
    std::uint64_t seq = 1000;
    for (int e = 0; e < dev.num_engines(); ++e) {
      auto& engine = dev.engine(e);
      while (engine.ring_free() > 0) {
        hw::SdmaRequest filler;
        filler.descriptors.push_back(hw::SdmaDescriptor{0x1000, 10240});
        filler.header.src_node = 0;
        filler.header.dst_node = 1;
        filler.header.dst_ctxt = 0;
        filler.header.kind = hw::WireKind::eager;
        filler.header.seq = seq++;
        CO_ASSERT_TRUE(engine.submit(std::move(filler)).ok());
      }
    }
    hfi::SdmaReqHeader hdr;
    hdr.wire.src_node = p.node();
    hdr.wire.dst_node = 1;
    hdr.wire.src_ctxt = p.ctxt();
    hdr.wire.dst_ctxt = 0;
    hdr.wire.kind = hw::WireKind::expected;
    hdr.wire.seq = 1;
    hdr.on_complete = [&o] { o.completed = true; };
    std::vector<os::IoVec> iov;
    iov.push_back(os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr});
    iov.push_back(os::IoVec{*buf, 128_KiB});
    o.result = co_await p.writev(*fd, std::move(iov));
  }(c, *proc, out));
  c.nodes[1].device->open_context(0);
  c.engine.run();

  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(*out.result, static_cast<long>(128_KiB));
  EXPECT_TRUE(out.completed);
  auto& node = c.nodes[0];
  EXPECT_EQ(node.pico->ring_full_fallbacks(), 0u) << "backoff should outwait the drain";
  EXPECT_EQ(node.pico->fallbacks(), 0u);
  EXPECT_EQ(node.pico->fast_writevs(), 1u);
  EXPECT_EQ(node.driver->writev_calls(), 0u) << "Linux path must not be used";
  EXPECT_EQ(node.mck->profiler().counter("pico.ring_full_fallback"), 0u);
}

TEST(Writev, EngineNotRunningFallsBackToLinuxPath) {
  MiniCluster c(2, os::OsMode::mckernel_hfi);
  auto proc = c.make_process(0, 0, os::OsMode::mckernel_hfi);
  auto& node = c.nodes[0];
  // Force every engine's state away from s99_running via the driver's own
  // layout view (vendor reset in progress).
  const auto* eng_def = node.driver->layouts().structure("sdma_engine");
  const auto* state_def = node.driver->layouts().structure("sdma_state");
  for (int i = 0; i < node.device->num_engines(); ++i) {
    auto bytes = node.linux_kernel->kheap().data(node.driver->sdma_engine_image(i));
    hfi::StructImage state(
        bytes.subspan(eng_def->field("state")->offset, state_def->byte_size), state_def);
    state.write<std::uint32_t>("current_state",
                               static_cast<std::uint32_t>(hfi::SdmaStates::s50_hw_halt_wait));
  }
  const auto out = do_writev(c, *proc, 64_KiB);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(node.pico->fallbacks(), 1u);
  EXPECT_EQ(node.driver->writev_calls(), 1u) << "fallback must reuse the Linux path";
}

}  // namespace
}  // namespace pd
