// The pd-doom PicoDriver: an LWK fast path for batched command submission
// only — context/buffer management, waits, and resets stay on the offload
// path, exactly like the HFI's administrative ioctls.
//
// Built on the same FastPathPort base as the HFI port, so the bind flow,
// extent-cache policy, fallback accounting, and profiler namespace are
// shared, not copied. What differs is §3.4 applied to a command-queue
// device instead of a streaming DMA engine:
//   * no get_user_pages: source buffers translate through the per-file
//     ExtentCache (page-table walk memoized, pinned LWK memory);
//   * the DMA page table is programmed one PTE per physically contiguous
//     *extent* (up to the hardware's 2 MiB limit) instead of the Linux
//     driver's one PTE per 4 KiB page — far fewer MMIO programs per batch;
//   * ring-slot reservation happens under the driver's own submission
//     spin-lock (§3.3), with bounded backoff and fallback to the Linux
//     ioctl when the ring stays full;
//   * completion metadata lives in the McKernel heap; the fence's cleanup
//     callback is LWK TEXT that runs on a Linux IRQ CPU, tears down the
//     batch's transient PTEs, and routes the kfree through the remote-free
//     queue.
//
// Every driver structure it touches (doom_devdata and its embedded
// doom_ringstate, per-open doom_ctx) is read and written through
// DWARF-extracted offsets only; the fence-sequence counter and the dva
// allocator cursor are image fields shared with the Linux path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/doom/driver.hpp"
#include "src/pico/fast_path_port.hpp"

namespace pd::pico {

class DoomPicoDriver final : public FastPathPort {
 public:
  /// Bind against the doom driver's shipped module and install the batched-
  /// submit fast path. Same failure modes as the HFI port (VA layout, lock
  /// ABI, missing structures/fields in the module's debug info).
  static Result<std::unique_ptr<DoomPicoDriver>> create(os::McKernel& mck,
                                                        doom::DoomDriver& driver);

  doom::DoomDriver& driver() { return driver_; }

  /// --- fast path (installed via McKernel::register_fastpath) --------------
  sim::Task<Result<long>> fast_ioctl(os::OpenFile& f, unsigned long cmd, void* arg);

  /// --- doom-specific instrumentation --------------------------------------
  std::uint64_t fast_submits() const { return fast_submits_; }
  /// PTEs programmed by the fast path (one per extent — compare with the
  /// slow path's per-page DoomDriver::pte_programs()).
  std::uint64_t extents_programmed() const { return extents_programmed_; }

 private:
  DoomPicoDriver(PicoBinding binding, os::McKernel& mck, doom::DoomDriver& driver);

  sim::Task<Result<long>> fast_submit(os::OpenFile& f, doom::DoomSubmitArgs& args);

  /// Device run state through extracted offsets (doom_devdata.ring is the
  /// embedded doom_ringstate).
  doom::DoomRunState run_state() const;

  doom::DoomDriver& driver_;

  std::uint64_t ring_offset_in_devdata_ = 0;  // doom_devdata.ring
  dwarf::FieldAccessor<std::uint64_t> dev_fence_seq_;
  dwarf::FieldAccessor<std::uint64_t> dev_cmds_submitted_;
  dwarf::FieldAccessor<std::uint32_t> ring_run_state_;
  dwarf::FieldAccessor<std::uint64_t> ctx_pt_used_;
  dwarf::FieldAccessor<std::uint64_t> ctx_dva_next_;
  dwarf::FieldAccessor<std::uint64_t> ctx_batches_submitted_;

  BufferArena<hw::DoomCommand> cmd_arena_;

  std::uint64_t fast_submits_ = 0;
  std::uint64_t extents_programmed_ = 0;
};

}  // namespace pd::pico
