file(REMOVE_RECURSE
  "CMakeFiles/pd_apps.dir/proxies.cpp.o"
  "CMakeFiles/pd_apps.dir/proxies.cpp.o.d"
  "CMakeFiles/pd_apps.dir/runner.cpp.o"
  "CMakeFiles/pd_apps.dir/runner.cpp.o.d"
  "CMakeFiles/pd_apps.dir/topology.cpp.o"
  "CMakeFiles/pd_apps.dir/topology.cpp.o.d"
  "libpd_apps.a"
  "libpd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
