// Rank topology helpers for the mini-app proxies: near-cubic 3-D
// decompositions with x-major rank order, so x-neighbours tend to be
// intra-node (as with block rank placement on OFP).
#pragma once

#include <array>

namespace pd::apps {

/// Factor `p` into a near-cubic (px, py, pz), px * py * pz == p.
std::array<int, 3> cart_dims(int p);

/// Coordinates of `rank` in the x-major layout.
std::array<int, 3> cart_coords(const std::array<int, 3>& dims, int rank);

/// Neighbour rank along `dim` (0..2) in direction `dir` (+1/-1), or -1 at
/// a non-periodic boundary.
int cart_neighbor(const std::array<int, 3>& dims, int rank, int dim, int dir);

}  // namespace pd::apps
