// CPU → socket → memory-partition topology for NUMA-aware kernel state.
//
// KNL/OFP nodes are not flat: in SNC-4 each quadrant ("socket" here) owns
// a slice of the cores plus a near MCDRAM partition and a far DDR
// partition. The IHK reservation conventions (contiguous CPU blocks, low
// ids left to Linux — see os/partition) and the block rank placement the
// app topology assumes (apps/topology) both make contiguous-block
// CPU→socket assignment the right model, so that is the only mapping
// offered: socket = cpu / ceil(cpus/sockets).
//
// Consumers: the kernel heap places cold allocations and magazine refills
// in the owning CPU's partition and batches remote-free drains per source
// socket; PhysMap::alloc_near prefers a socket's home domain.
#pragma once

#include <vector>

namespace pd::mem {

class NumaTopology {
 public:
  /// Flat fallback: one socket covering every CPU (locality is a no-op).
  NumaTopology() : NumaTopology(1, 1) {}

  /// `total_cpus` cores split into `sockets` contiguous equal blocks
  /// (the SNC-4 quadrant layout; a ragged tail joins the last socket).
  static NumaTopology blocked(int total_cpus, int sockets);

  int sockets() const { return sockets_; }
  int total_cpus() const { return total_cpus_; }
  bool flat() const { return sockets_ == 1; }

  /// Socket owning `cpu`. CPUs outside [0, total_cpus) clamp to the edge
  /// sockets so foreign ids (e.g. hot-unplugged cores) stay well-defined.
  int socket_of(int cpu) const;

  /// CPU ids belonging to `socket`, ascending.
  std::vector<int> cpus_of(int socket) const;

 private:
  NumaTopology(int total_cpus, int sockets);

  int total_cpus_;
  int sockets_;
  int cpus_per_socket_;
};

}  // namespace pd::mem
