// IHK: resource partitioning and the inter-kernel communication (IKC)
// system-call delegation path (paper §2.1).
//
// An offloaded syscall travels: LWK core → IKC message → proxy-process
// wakeup on a Linux service CPU → Linux-side service (the real driver code)
// → IKC reply → LWK core resumes. The service CPUs are a shared FIFO pool,
// so with 32–64 ranks per node and only 4 service CPUs the queueing delay —
// not the raw IKC latency — dominates, which is exactly the effect the
// paper measures on UMT2013/HACC/QBOX.
//
// The mechanics live in the `src/ikc/` transport subsystem: `Config::
// ikc_mode` selects between the legacy direct path (the calibrated default)
// and the per-LWK-CPU ring transport with batched service loops. `Ihk`
// stays the stable facade the drivers and proxies call.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/stats.hpp"
#include "src/common/status.hpp"
#include "src/ikc/transport.hpp"
#include "src/os/kernel.hpp"

namespace pd::os {

class Ihk {
 public:
  /// `phys`, when supplied, lets the ring transport place per-channel ring
  /// memory with PhysMap::alloc_near (NUMA pinning follows the achieved
  /// domain); null keeps the ideal owner-socket placement.
  Ihk(sim::Engine& engine, const Config& cfg, LinuxKernel& linux_kernel,
      mem::PhysMap* phys = nullptr)
      : engine_(engine),
        cfg_(cfg),
        linux_(linux_kernel),
        transport_(engine, cfg, linux_kernel.service_cpus(), linux_kernel.profiler(),
                   queueing_us_, linux_kernel.spinlock_abi(), phys) {}

  /// Delegate one syscall to Linux. `service` runs on a Linux service CPU
  /// (the proxy process context) and typically invokes a CharDevice op.
  /// `prio` picks the ring priority class (control never waits behind bulk
  /// I/O), `channel_hint` the submitting LWK CPU's ring; both are ignored
  /// by the direct transport. `job` is the submitting tenant: the ring
  /// transport drains weighted-fair across jobs and may throttle a job
  /// that exhausted its in-flight credits with EAGAIN (see ikc/transport).
  sim::Task<Result<long>> offload(std::function<sim::Task<Result<long>>()> service,
                                  ikc::Priority prio = ikc::Priority::control,
                                  int channel_hint = 0, ikc::JobId job = 0) {
    ++offload_count_;
    return transport_.offload(std::move(service), prio, channel_hint, job);
  }

  LinuxKernel& linux_kernel() { return linux_; }
  ikc::IkcTransport& transport() { return transport_; }

  std::uint64_t offload_count() const { return offload_count_; }
  /// Distribution of the time offloads spent queued for service (µs):
  /// service-CPU queueing on the direct path, ring residency on the ring
  /// path. Replaces the old single `mean_queueing_us` aggregate.
  ikc::QueueingSummary queueing_summary() const {
    return ikc::summarize_queueing(queueing_us_);
  }
  const Samples& queueing_samples() const { return queueing_us_; }

 private:
  sim::Engine& engine_;
  const Config& cfg_;
  LinuxKernel& linux_;
  Samples queueing_us_;
  ikc::IkcTransport transport_;
  std::uint64_t offload_count_ = 0;
};

}  // namespace pd::os
