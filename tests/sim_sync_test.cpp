// Tests for Latch / Channel / Resource: wakeup ordering, FIFO fairness and
// the queueing behaviour the offload-contention model depends on.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/time.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace pd::sim {
namespace {

using namespace pd::time_literals;

TEST(Latch, WaitersResumeAfterTrigger) {
  Engine e;
  Latch latch(e);
  int resumed = 0;
  for (int i = 0; i < 3; ++i) {
    spawn(e, [](Latch& l, int& n) -> Task<> {
      co_await l.wait();
      ++n;
    }(latch, resumed));
  }
  e.schedule_after(5_ns, [&] { latch.trigger(); });
  e.run();
  EXPECT_EQ(resumed, 3);
}

TEST(Latch, WaitAfterTriggerIsImmediate) {
  Engine e;
  Latch latch(e);
  latch.trigger();
  Time when = -1;
  spawn(e, [](Engine& eng, Latch& l, Time& out) -> Task<> {
    co_await eng.delay(3_ns);
    co_await l.wait();
    out = eng.now();
  }(e, latch, when));
  e.run();
  EXPECT_EQ(when, 3_ns);
}

TEST(Latch, DoubleTriggerIsIdempotent) {
  Engine e;
  Latch latch(e);
  latch.trigger();
  latch.trigger();
  EXPECT_TRUE(latch.triggered());
}

TEST(Channel, SendThenRecv) {
  Engine e;
  Channel<int> ch(e);
  ch.send(7);
  int got = 0;
  spawn(e, [](Channel<int>& c, int& out) -> Task<> { out = co_await c.recv(); }(ch, got));
  e.run();
  EXPECT_EQ(got, 7);
}

TEST(Channel, RecvBlocksUntilSend) {
  Engine e;
  Channel<int> ch(e);
  Time when = -1;
  int got = 0;
  spawn(e, [](Engine& eng, Channel<int>& c, Time& t, int& out) -> Task<> {
    out = co_await c.recv();
    t = eng.now();
  }(e, ch, when, got));
  e.schedule_after(9_ns, [&] { ch.send(5); });
  e.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(when, 9_ns);
}

TEST(Channel, FifoAcrossMultipleReceivers) {
  Engine e;
  Channel<int> ch(e);
  std::vector<std::pair<int, int>> got;  // (receiver, item)
  for (int r = 0; r < 3; ++r) {
    spawn(e, [](Channel<int>& c, int rid, std::vector<std::pair<int, int>>& out) -> Task<> {
      const int item = co_await c.recv();
      out.emplace_back(rid, item);
    }(ch, r, got));
  }
  e.schedule_after(1_ns, [&] {
    ch.send(100);
    ch.send(200);
    ch.send(300);
  });
  e.run();
  ASSERT_EQ(got.size(), 3u);
  // Receivers arrived 0,1,2 and items are handed out in that order.
  EXPECT_EQ(got[0], std::make_pair(0, 100));
  EXPECT_EQ(got[1], std::make_pair(1, 200));
  EXPECT_EQ(got[2], std::make_pair(2, 300));
}

TEST(Channel, BuffersWhenNoReceiver) {
  Engine e;
  Channel<int> ch(e);
  for (int i = 0; i < 5; ++i) ch.send(i);
  EXPECT_EQ(ch.pending(), 5u);
  std::vector<int> got;
  spawn(e, [](Channel<int>& c, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 5; ++i) out.push_back(co_await c.recv());
  }(ch, got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, ImmediateWhenAvailable) {
  Engine e;
  Resource res(e, 2);
  Time when = -1;
  spawn(e, [](Engine& eng, Resource& r, Time& t) -> Task<> {
    co_await r.acquire();
    t = eng.now();
    r.release();
  }(e, res, when));
  e.run();
  EXPECT_EQ(when, 0);
}

TEST(Resource, ContentionSerializes) {
  // Four 10 ns jobs on one server: completions at 10, 20, 30, 40 ns.
  Engine e;
  Resource server(e, 1);
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) {
    spawn(e, [](Engine& eng, Resource& r, std::vector<Time>& out) -> Task<> {
      co_await r.acquire();
      co_await eng.delay(10_ns);
      r.release();
      out.push_back(eng.now());
    }(e, server, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 10_ns);
  EXPECT_EQ(done[1], 20_ns);
  EXPECT_EQ(done[2], 30_ns);
  EXPECT_EQ(done[3], 40_ns);
}

TEST(Resource, ParallelismMatchesCapacity) {
  // Four 10 ns jobs on two servers: pairs complete at 10 and 20 ns.
  Engine e;
  Resource servers(e, 2);
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) {
    spawn(e, [](Engine& eng, Resource& r, std::vector<Time>& out) -> Task<> {
      co_await r.acquire();
      co_await eng.delay(10_ns);
      r.release();
      out.push_back(eng.now());
    }(e, servers, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 10_ns);
  EXPECT_EQ(done[1], 10_ns);
  EXPECT_EQ(done[2], 20_ns);
  EXPECT_EQ(done[3], 20_ns);
}

TEST(Resource, FifoNoBarging) {
  Engine e;
  Resource res(e, 1);
  std::vector<int> order;
  // Occupy the resource, then queue waiters 0..2; a later small request
  // must not overtake them.
  spawn(e, [](Engine& eng, Resource& r, std::vector<int>& out) -> Task<> {
    co_await r.acquire();
    co_await eng.delay(50_ns);
    r.release();
    out.push_back(-1);
  }(e, res, order));
  for (int i = 0; i < 3; ++i) {
    spawn(e, [](Engine& eng, Resource& r, int id, std::vector<int>& out) -> Task<> {
      co_await eng.delay(static_cast<Dur>(id + 1));
      co_await r.acquire();
      out.push_back(id);
      r.release();
    }(e, res, i, order));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(Resource, HoldReleasesOnScopeExit) {
  Engine e;
  Resource res(e, 1);
  Time second_done = -1;
  spawn(e, [](Engine& eng, Resource& r) -> Task<> {
    co_await r.acquire();
    {
      Resource::Hold hold(r);
      co_await eng.delay(10_ns);
    }
    co_return;
  }(e, res));
  spawn(e, [](Engine& eng, Resource& r, Time& out) -> Task<> {
    co_await eng.delay(1_ns);
    co_await r.acquire();
    out = eng.now();
    r.release();
  }(e, res, second_done));
  e.run();
  EXPECT_EQ(second_done, 10_ns);
}

TEST(Resource, AcquireMultipleUnits) {
  Engine e;
  Resource res(e, 4);
  std::vector<int> order;
  spawn(e, [](Engine& eng, Resource& r, std::vector<int>& out) -> Task<> {
    co_await r.acquire(3);
    co_await eng.delay(10_ns);
    r.release(3);
    out.push_back(0);
  }(e, res, order));
  spawn(e, [](Engine& eng, Resource& r, std::vector<int>& out) -> Task<> {
    co_await eng.delay(1_ns);
    co_await r.acquire(2);  // only 1 free until t=10
    out.push_back(1);
    r.release(2);
  }(e, res, order));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace pd::sim
