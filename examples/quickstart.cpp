// Quickstart: boot a two-node simulated cluster in each OS configuration,
// run a 1 MB ping-pong through the full stack (MPI runtime → PSM →
// HFI driver / PicoDriver → SDMA engines → fabric), and print what the
// paper's Figure 4 is about: bandwidth and SDMA descriptor sizes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

using namespace pd;

int main() {
  constexpr std::uint64_t kBytes = 1_MiB;
  constexpr int kIters = 10;

  std::printf("PicoDriver quickstart: %s ping-pong on 2 nodes\n\n",
              format_bytes(kBytes).c_str());

  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    // 1. Describe the cluster: 2 nodes, chosen OS configuration.
    mpirt::ClusterOptions copts;
    copts.nodes = 2;
    copts.mode = mode;
    copts.mcdram_bytes = 512ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);

    // 2. One MPI rank per node.
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 1;
    wopts.buf_bytes = 4ull << 20;
    mpirt::MpiWorld world(cluster, wopts);

    // 3. The SPMD program: classic ping-pong, written as a coroutine.
    struct Shared {
      Time t0 = 0, t1 = 0;
    } shared;
    world.run([&](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      co_await rank.barrier();
      if (rank.id() == 0) shared.t0 = rank.world().cluster().engine().now();
      for (int i = 0; i < kIters; ++i) {
        if (rank.id() == 0) {
          co_await rank.send(1, /*tag=*/i, kBytes);
          co_await rank.recv(1, /*tag=*/1000 + i, kBytes);
        } else {
          co_await rank.recv(0, i, kBytes);
          co_await rank.send(0, 1000 + i, kBytes);
        }
      }
      if (rank.id() == 0) shared.t1 = rank.world().cluster().engine().now();
      co_await rank.finalize();
    });

    // 4. Read out the results.
    const double sec = to_sec(shared.t1 - shared.t0);
    const double mbps = static_cast<double>(kBytes) * kIters / (sec / 2.0) / 1e6;
    std::uint64_t descs = 0, bytes = 0;
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      descs += cluster.node(n).device->total_descriptors();
      bytes += cluster.node(n).device->total_descriptor_bytes();
    }
    std::printf("%-14s %8.1f MB/s   SDMA descriptors: %5llu (mean %5.0f bytes)\n",
                to_string(mode), mbps, static_cast<unsigned long long>(descs),
                descs ? static_cast<double>(bytes) / descs : 0.0);
  }

  std::printf(
      "\nExpected shape (paper Fig. 4): McKernel below Linux (offloaded\n"
      "writev/ioctl), McKernel+HFI1 above Linux (10 KiB descriptors from\n"
      "pinned, physically contiguous large-page memory).\n");
  return 0;
}
