# Empty compiler generated dependencies file for split_driver_tour.
# This may be replaced when dependencies are built.
