// Cluster assembly: N simulated nodes, each with its physical memory, HFI
// device, Linux kernel + HFI driver, and — per OS mode — IHK/McKernel and
// the HFI PicoDriver. This is the piece that boots one of the paper's
// three configurations (Linux / McKernel / McKernel+HFI1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/hfi/driver.hpp"
#include "src/hw/fabric.hpp"
#include "src/hw/hfi_device.hpp"
#include "src/os/config.hpp"
#include "src/pico/hfi_picodriver.hpp"

namespace pd::mpirt {

struct ClusterOptions {
  int nodes = 1;
  os::OsMode mode = os::OsMode::linux;
  os::Config cfg = {};
  hw::FabricConfig fabric = {};
  hw::HfiConfig hfi = {};
  std::string driver_version = "10.8-0";
  /// Simulated physical memory per node; defaults sized well below the
  /// real 16/96 GB so host-side bookkeeping stays cheap at 256 nodes.
  std::uint64_t mcdram_bytes = 2ull << 30;
  std::uint64_t ddr_bytes = 6ull << 30;
  /// > 0 shards the engine per node and drains the shards on this many
  /// host threads (1 = sequential rounds, same schedule). The lookahead is
  /// the fabric wire latency — the minimum cross-node delay. 0 (default)
  /// keeps the single global queue with its exact legacy event order.
  int host_workers = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  struct Node {
    std::unique_ptr<mem::PhysMap> phys;
    std::unique_ptr<hw::HfiDevice> device;
    std::unique_ptr<os::LinuxKernel> linux_kernel;
    std::unique_ptr<os::Ihk> ihk;          // null in Linux mode
    std::unique_ptr<os::McKernel> mck;     // null in Linux mode
    std::unique_ptr<hfi::HfiDriver> driver;
    std::unique_ptr<pico::HfiPicoDriver> pico;  // only in mckernel_hfi mode
  };

  sim::Engine& engine() { return engine_; }
  const ClusterOptions& options() const { return opts_; }
  os::OsMode mode() const { return opts_.mode; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  hw::Fabric& fabric() { return *fabric_; }

  /// Create a process (one MPI rank slot) on a node, on the kernel the
  /// cluster mode dictates.
  std::unique_ptr<os::Process> make_process(int node, int ctxt);

  /// The profiler that corresponds to the paper's "kernel time of the
  /// application's OS" (McKernel in multi-kernel modes, Linux otherwise),
  /// aggregated across nodes.
  os::SyscallProfiler app_kernel_profile() const;

 private:
  ClusterOptions opts_;
  sim::Engine engine_;
  std::unique_ptr<hw::Fabric> fabric_;
  std::vector<Node> nodes_;
};

}  // namespace pd::mpirt
