// Kernel heap with per-core slab free lists, NUMA-partitioned arenas, and
// cross-kernel free handling (paper §3.3).
//
// McKernel's allocator keeps per-core free lists, so kfree() must know
// which CPU it runs on. An SDMA completion IRQ, however, executes on a
// *Linux* CPU while freeing LWK-allocated metadata. The original allocator
// would fail there; the PicoDriver extension detects the foreign CPU and
// routes the block to a remote-free queue that the owning core drains.
//
// Steady-state fast-path allocations (the 192-byte completion metadata per
// SDMA send) are served from per-core size-class free lists: a block freed
// on its owner core — or drained from the remote queue — parks on the
// core's magazine for that size class, and the next kmalloc() of the class
// pops it back in O(1) with no host allocation. Only cold allocations and
// sizes above the largest class touch the host heap.
//
// Cold allocations are placement-aware: a NumaTopology maps each CPU to a
// socket, and each socket owns a near (MCDRAM-like) and a far (DDR-like)
// address partition with a byte budget. Under PlacementPolicy::numa_aware
// the cold path carves from the calling CPU's near partition, falling back
// to the same socket's far partition when the near budget is exhausted
// (then to any other socket's partitions before giving up). Under ::flat
// every cold allocation lands in socket 0's partitions regardless of
// caller — the placement-ignorant pre-NUMA behaviour, kept for before/
// after benching. The drain side batches the remote-free queue per source
// socket: one pass per socket, so a queue full of Linux-side completion
// frees costs one cross-socket reclaim event per source socket instead of
// one per block.
//
// Every block moves through an explicit free-path state machine,
// live → queued → parked: a block foreign-freed onto the remote queue is
// `queued` — a second kfree() (from any CPU) is a caught double free, and
// data() no longer exposes its bytes — and only the owner's drain parks it
// on a magazine (or returns it to the host).
//
// Blocks carry real host bytes (`data()`): the simulated driver keeps its
// structure images in them, and the LWK reads those images through
// DWARF-extracted offsets — so the cross-kernel pointer story is exercised
// with actual memory, not just bookkeeping.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.hpp"
#include "src/mem/numa_topology.hpp"
#include "src/mem/types.hpp"

namespace pd::mem {

/// Policy for kfree() called on a CPU outside the owning kernel's set.
enum class ForeignFreePolicy {
  fail,          // original McKernel: allocator is per-core, call fails
  remote_queue,  // PicoDriver extension: enqueue for the owning core
};

/// Where cold allocations land relative to the calling CPU's socket.
enum class PlacementPolicy {
  flat,        // everything carves from socket 0's partitions (pre-NUMA)
  numa_aware,  // carve from the caller's near partition, far on exhaustion
};

/// Per-socket arena byte budgets (the partition capacity model). The
/// defaults are effectively unbounded — tests and benches shrink them to
/// exercise the far-fallback path.
struct PartitionBudget {
  std::uint64_t near_bytes = ~0ull;  // MCDRAM-like partition, per socket
  std::uint64_t far_bytes = ~0ull;   // DDR-like partition, per socket
};

class KernelHeap {
 public:
  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t local_frees = 0;
    std::uint64_t remote_frees = 0;    // routed through the remote queue
    std::uint64_t rejected_frees = 0;  // failed under ForeignFreePolicy::fail
    std::uint64_t double_frees = 0;    // kfree of a block already queued/parked
    std::uint64_t bytes_live = 0;
    std::uint64_t slab_reuses = 0;     // kmalloc served from a per-core magazine
    std::uint64_t slab_recycles = 0;   // freed blocks parked on a magazine
    std::uint64_t host_allocs = 0;     // kmalloc that had to touch the host heap
    // --- placement outcomes (cold path only) -----------------------------
    std::uint64_t near_allocs = 0;          // carved from the caller's near partition
    std::uint64_t far_allocs = 0;           // DDR fallback or placement-ignorant/remote
    std::uint64_t partition_exhausted = 0;  // a near budget could not satisfy a carve
    // Cross-socket reclaim events during drain: per *block* under flat
    // placement (every remote entry is its own cache-line pull), per
    // *source-socket batch* under numa_aware (the drain coalesces).
    std::uint64_t cross_socket_drains = 0;
    // --- elastic ownership (adopt_cpu / release_cpu) ---------------------
    std::uint64_t cpu_adoptions = 0;   // cores added to the owned set
    std::uint64_t cpu_releases = 0;    // cores retired from the owned set
    std::uint64_t rehomed_blocks = 0;  // blocks re-owned by a release_cpu
  };

  /// Size classes served by the per-core magazines; anything larger falls
  /// back to a direct host allocation (and is returned to the host on free).
  static constexpr std::array<std::uint64_t, 8> kSizeClasses = {64,  128,  192,  256,
                                                                512, 1024, 2048, 4096};

  /// `owned_cpus`: logical CPU ids this kernel's allocator may run on.
  /// `heap_base`: simulated physical base of the heap arenas.
  /// `slab_enabled`: turn the per-core magazines off to model the original
  /// map-per-block allocator (used by the before/after bench).
  /// The flat-topology constructor keeps the pre-NUMA behaviour: one
  /// socket, unbounded partitions, placement-ignorant.
  KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy,
             PhysAddr heap_base = 0x0000'00F0'0000'0000ull, bool slab_enabled = true);

  /// NUMA-aware form: `topo` maps every CPU on the node (owned and
  /// foreign) to a socket, `budget` bounds each socket's partitions.
  KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy, NumaTopology topo,
             PartitionBudget budget, PlacementPolicy placement,
             PhysAddr heap_base = 0x0000'00F0'0000'0000ull, bool slab_enabled = true);

  /// Allocate `size` bytes on behalf of `cpu` (must be an owned CPU).
  /// Returns the simulated physical address of the block.
  Result<PhysAddr> kmalloc(std::uint64_t size, int cpu);

  /// Free from any CPU. Foreign CPUs follow the configured policy. A block
  /// already queued for (or reclaimed by) a drain is a double free: EINVAL.
  Status kfree(PhysAddr addr, int cpu);

  /// Drain this core's remote-free queue (the owning kernel calls this
  /// periodically, e.g. on its scheduler tick). The queue is recycled in
  /// one batch per source socket and every block lands back on its owner's
  /// magazine. Returns blocks reclaimed.
  std::size_t drain_remote_frees(int cpu);

  /// --- elastic CPU ownership (§8.7) ---------------------------------------
  /// Add `cpu` to the owned set at runtime (a core handed to this kernel).
  /// It starts with empty magazines and an empty remote-free queue. EINVAL
  /// when already owned or negative.
  Status adopt_cpu(int cpu);
  /// Retire `cpu` from the owned set: its remote-free queue is drained, its
  /// parked magazine blocks are donated to a surviving core (same socket
  /// preferred), and every block it still owns — live or queued — is
  /// re-homed there so later foreign frees land on a queue somebody drains.
  /// `drained_out`, when non-null, receives the remote-free blocks
  /// reclaimed. EINVAL when not owned, EBUSY when it is the last owned CPU.
  Status release_cpu(int cpu, std::size_t* drained_out = nullptr);

  /// Host-memory view of a live block. Empty when not allocated — and once
  /// the block is parked on the remote-free queue: conceptually freed
  /// memory must not be scribbled on from IRQ context while it awaits the
  /// owner's drain.
  std::span<std::uint8_t> data(PhysAddr addr);

  bool owns_cpu(int cpu) const;
  std::size_t remote_queue_depth(int cpu) const;
  const Stats& stats() const { return stats_; }
  std::size_t live_blocks() const { return live_blocks_; }
  /// Blocks parked on `cpu`'s magazines across all size classes.
  std::size_t magazine_depth(int cpu) const;

  const NumaTopology& topology() const { return topo_; }
  PlacementPolicy placement() const { return placement_; }
  /// Bytes carved so far from a socket's near / far partition.
  std::uint64_t near_used(int socket) const;
  std::uint64_t far_used(int socket) const;

 private:
  /// Free-path state machine. `parked` blocks sit on a magazine (owner may
  /// hand them out again); `queued` blocks await the owner's drain.
  enum class BlockState { parked, live, queued };

  struct Block {
    std::uint64_t size = 0;     // requested size (what data() exposes)
    std::uint64_t capacity = 0; // size-class bytes actually backing it
    int owner_cpu = -1;         // core whose magazine the block belongs to
    int arena_socket = -1;      // partition the address was carved from
    bool arena_near = false;    // near (MCDRAM-like) vs far partition
    BlockState state = BlockState::parked;
    std::unique_ptr<std::uint8_t[]> bytes;
  };

  struct RemoteFree {
    PhysAddr addr;
    int source_socket;  // socket of the CPU that called kfree
  };

  /// One partition's bump allocator over its address slice.
  struct Arena {
    PhysAddr next = 0;
    PhysAddr end = 0;
    std::uint64_t used = 0;
  };

  /// Index into kSizeClasses, or kSizeClasses.size() when oversized.
  static std::size_t class_for(std::uint64_t size);
  void park_on_magazine(PhysAddr addr, Block& block);
  /// Carve `capacity` address bytes for a cold allocation by `cpu`.
  Result<PhysAddr> carve(std::uint64_t capacity, int cpu, int* socket_out, bool* near_out);
  bool carve_from(Arena& arena, std::uint64_t budget, std::uint64_t capacity, PhysAddr* out);

  std::vector<int> owned_cpus_;
  ForeignFreePolicy policy_;
  NumaTopology topo_;
  PartitionBudget budget_;
  PlacementPolicy placement_;
  PhysAddr heap_base_;
  bool slab_enabled_;
  std::size_t live_blocks_ = 0;
  std::vector<Arena> near_arenas_;  // one per socket
  std::vector<Arena> far_arenas_;
  std::unordered_map<PhysAddr, Block> blocks_;
  // Per owned CPU: one free-list magazine per size class.
  std::unordered_map<int, std::array<std::vector<PhysAddr>, kSizeClasses.size()>> magazines_;
  std::map<int, std::deque<RemoteFree>> remote_free_queues_;  // keyed by owner cpu
  Stats stats_;
};

}  // namespace pd::mem
