// Kernel virtual-address-space layouts (paper §3.1, Figure 3).
//
// Three layouts are modeled: Linux x86_64, the original McKernel layout,
// and the PicoDriver-modified McKernel layout. `check_unification` encodes
// the three requirements from §3.1 that make cross-kernel pointer
// dereferencing legal:
//   1. kernel images (TEXT/DATA/BSS) must not overlap;
//   2. the physical direct mappings must coincide (same VA → same PA), so
//      kmalloc'd Linux pointers are valid in McKernel and vice versa;
//   3. McKernel's image must live where Linux can map it (inside the Linux
//      module space, reserved via vmap_area), so Linux can call McKernel
//      callbacks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mem/types.hpp"

namespace pd::mem {

/// A named virtual range [start, end).
struct VaRange {
  std::string name;
  VirtAddr start = 0;
  VirtAddr end = 0;

  std::uint64_t size() const { return end - start; }
  bool contains(VirtAddr a) const { return a >= start && a < end; }
  bool contains_range(const VaRange& other) const {
    return other.start >= start && other.end <= end;
  }
  bool overlaps(const VaRange& other) const {
    return start < other.end && other.start < end;
  }
};

/// One kernel's virtual address-space layout.
struct KernelLayout {
  std::string kernel_name;
  VaRange user;        // user space
  VaRange direct_map;  // direct mapping of all physical memory
  VaRange valloc;      // vmalloc()/ioremap() dynamic range
  VaRange image;       // kernel TEXT/DATA/BSS
  VaRange module_space;  // Linux only (empty for LWKs)

  /// VA of a physical address through the direct map.
  VirtAddr direct_map_va(PhysAddr pa) const { return direct_map.start + pa; }
  /// Inverse of direct_map_va; only valid for addresses inside direct_map.
  PhysAddr direct_map_pa(VirtAddr va) const { return va - direct_map.start; }
};

/// Linux x86_64 layout (Figure 3, left; 48-bit addressing).
KernelLayout linux_layout();

/// Original McKernel layout (Figure 3, middle): image at the same VA as
/// Linux's, own 256 GiB direct map at a different base.
KernelLayout mckernel_original_layout();

/// PicoDriver McKernel layout (Figure 3, right): image moved to the top of
/// the Linux module space, direct map aliased onto Linux's.
KernelLayout mckernel_unified_layout();

/// Outcome of checking the §3.1 requirements for a (Linux, LWK) pair.
struct UnificationReport {
  bool images_disjoint = false;       // requirement 1
  bool direct_maps_coincide = false;  // requirement 2
  bool lwk_image_mappable = false;    // requirement 3
  std::vector<std::string> violations;

  bool unified() const {
    return images_disjoint && direct_maps_coincide && lwk_image_mappable;
  }
};

UnificationReport check_unification(const KernelLayout& linux_side, const KernelLayout& lwk);

}  // namespace pd::mem
