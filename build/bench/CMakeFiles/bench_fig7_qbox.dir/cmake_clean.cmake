file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_qbox.dir/bench_fig7_qbox.cpp.o"
  "CMakeFiles/bench_fig7_qbox.dir/bench_fig7_qbox.cpp.o.d"
  "bench_fig7_qbox"
  "bench_fig7_qbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
