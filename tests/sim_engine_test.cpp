// Unit tests for the discrete-event engine: ordering, tie-breaking,
// time advancement, run_until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/time.hpp"
#include "src/sim/engine.hpp"

namespace pd::sim {
namespace {

using namespace pd::time_literals;

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.idle());
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(30_ns, [&] { order.push_back(3); });
  e.schedule_after(10_ns, [&] { order.push_back(1); });
  e.schedule_after(20_ns, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30_ns);
}

TEST(Engine, TiesBreakInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedSchedulingFromHandler) {
  Engine e;
  std::vector<Time> times;
  e.schedule_after(10_ns, [&] {
    times.push_back(e.now());
    e.schedule_after(5_ns, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 10_ns);
  EXPECT_EQ(times[1], 15_ns);
}

TEST(Engine, ZeroDelayRunsAtSameTimeAfterQueued) {
  Engine e;
  std::vector<int> order;
  e.schedule_after(1_ns, [&] {
    e.schedule_after(0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  e.schedule_after(1_ns, [&] { order.push_back(3); });
  e.run();
  // The zero-delay event lands behind the already-queued same-time event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_after(10_ns, [&] { ++fired; });
  e.schedule_after(20_ns, [&] { ++fired; });
  e.run_until(15_ns);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesClockWhenQueueDrains) {
  Engine e;
  e.schedule_after(3_ns, [] {});
  e.run_until(100_ns);
  EXPECT_EQ(e.now(), 100_ns);
}

TEST(Engine, CountsEvents) {
  Engine e;
  for (int i = 0; i < 17; ++i) e.schedule_after(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 17u);
}

TEST(Engine, StepReturnsFalseWhenIdle) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.schedule_after(1_ns, [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

}  // namespace
}  // namespace pd::sim
