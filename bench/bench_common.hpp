// Shared helpers for the paper-reproduction benches.
//
// Every bench binary prints the rows of one table/figure from the paper.
// Set PD_QUICK=1 to trim sweep points (CI-friendly); the default regenerates
// the full figure.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/stats.hpp"
#include "src/os/config.hpp"
#include "src/os/ihk.hpp"

namespace pd::bench {

inline bool quick_mode() {
  const char* v = std::getenv("PD_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void print_banner(const char* figure, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

/// The paper's node-count axis (1..256); quick mode keeps a subset.
inline std::vector<int> node_axis(int max_nodes = 256, int min_nodes = 1) {
  std::vector<int> nodes;
  for (int n = min_nodes; n <= max_nodes; n *= 2) {
    if (quick_mode() && n != min_nodes && n != max_nodes && n != 8) continue;
    nodes.push_back(n);
  }
  return nodes;
}

inline const std::vector<pd::os::OsMode>& all_modes() {
  static const std::vector<pd::os::OsMode> modes = {
      pd::os::OsMode::linux, pd::os::OsMode::mckernel, pd::os::OsMode::mckernel_hfi};
  return modes;
}

/// --- offload storm harness -----------------------------------------------
/// The paper's squeeze in isolation: `ranks` LWK submitters hammering one
/// node's Ihk (no MPI, no device model), so the legacy and ring transports
/// can be compared on identical syscall streams. Every 4th offload is a
/// control-class call, the rest bulk; the channel hint is the rank id.

struct StormResult {
  std::uint64_t offloads = 0;
  double offloads_per_ms = 0;  // completed per simulated millisecond
  ikc::QueueingSummary queue;
  std::uint64_t degraded = 0;
  std::uint64_t timeouts = 0;
  double sim_ms = 0;
  // Wakeup accounting (§8.4): the return path's cost in cross-kernel
  // wakeups. `doorbells` are submit-side loop wakeups, `reply_wakeups`
  // completion-side consumer wakeups (one per request in latch mode; one
  // per drained batch per parked channel with reply rings).
  std::uint64_t doorbells = 0;
  std::uint64_t reply_wakeups = 0;
  // Direct-mode equivalents: one proxy wakeup per submit, one LWK wakeup
  // per reply (always zero in ring mode, and vice versa).
  std::uint64_t direct_proxy_wakeups = 0;
  std::uint64_t direct_reply_wakeups = 0;
  double wakeups_per_offload = 0;  // all wakeups / offloads, either transport
  std::uint64_t adaptive_grow = 0;
  std::uint64_t adaptive_shrink = 0;
  std::uint64_t remote_drains = 0;
};

namespace detail {
inline sim::Task<> storm_rank(sim::Engine& eng, os::Ihk& ihk, int rank, int per_rank,
                              Dur work, Dur gap) {
  for (int k = 0; k < per_rank; ++k) {
    const auto prio = (k % 4 == 0) ? ikc::Priority::control : ikc::Priority::bulk;
    auto r = co_await ihk.offload(
        [&eng, work]() -> sim::Task<Result<long>> {
          co_await eng.delay(work);
          co_return 0L;
        },
        prio, rank);
    (void)r;
    co_await eng.delay(gap);
  }
}
}  // namespace detail

inline StormResult run_offload_storm(const os::Config& cfg, int ranks, int per_rank,
                                     Dur work, Dur gap) {
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  for (int r = 0; r < ranks; ++r)
    sim::spawn(engine, detail::storm_rank(engine, ihk, r, per_rank, work, gap));
  engine.run();

  StormResult out;
  out.offloads = ihk.offload_count();
  out.queue = ihk.queueing_summary();
  out.degraded = linux_kernel.profiler().counter("ikc.ring.degraded");
  out.timeouts = linux_kernel.profiler().counter("ikc.ring.timeout");
  out.sim_ms = to_ms(engine.now());
  if (out.sim_ms > 0) out.offloads_per_ms = static_cast<double>(out.offloads) / out.sim_ms;
  out.doorbells = linux_kernel.profiler().counter("ikc.ring.doorbell");
  out.reply_wakeups = linux_kernel.profiler().counter("ikc.reply.wakeup");
  out.direct_proxy_wakeups = linux_kernel.profiler().counter("ikc.direct.proxy_wakeup");
  out.direct_reply_wakeups = linux_kernel.profiler().counter("ikc.direct.reply_wakeup");
  if (out.offloads > 0)
    out.wakeups_per_offload =
        static_cast<double>(out.doorbells + out.reply_wakeups +
                            out.direct_proxy_wakeups + out.direct_reply_wakeups) /
        static_cast<double>(out.offloads);
  out.adaptive_grow = linux_kernel.profiler().counter("ikc.adaptive.grow");
  out.adaptive_shrink = linux_kernel.profiler().counter("ikc.adaptive.shrink");
  out.remote_drains = linux_kernel.profiler().counter("ikc.numa.remote_drain");
  return out;
}

/// --- multi-tenant fairness harness ----------------------------------------
/// The overload ladder's unit of work: one tenant (job) generating a
/// saturating offload stream until a simulated-time horizon. Unlike the
/// storm above, submitters run open-ended so per-job completed counts over
/// the horizon measure the *service share* each tenant actually received —
/// the quantity Jain's index is defined over.

struct JobSpec {
  int submitters = 1;  // concurrent offload streams (≈ in-flight credit demand)
  Dur work = from_us(3);
  Dur gap = from_us(2);
};

struct JobOutcome {
  ikc::JobId job = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t eagain = 0;
  std::uint64_t credit_waits = 0;
  ikc::QueueingSummary queue;
};

struct FairnessResult {
  std::vector<JobOutcome> jobs;
  double jain = 0;       // Jain's index over per-job completed counts
  double window_ms = 0;  // measurement window the counts cover
  std::uint64_t completed_total = 0;
};

/// Jain's fairness index: (Σx)² / (n·Σx²) — 1.0 when all tenants got the
/// same share, → 1/n as one tenant monopolizes. All-zero shares are
/// universal starvation, not fairness: a rung in which no tenant completed
/// anything scores 0.0 so it can never pass the check_bench jain gates.
inline double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0, sumsq = 0;
  for (const double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq <= 0) return 0.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sumsq);
}

namespace detail {
// Channel hint = job id: each tenant submits from its own LWK CPUs, so its
// requests land in "its" rings (mod the ring count when jobs outnumber
// rings). Intra-ring order is FIFO by design; fairness is the drain
// scheduler's choice of *which* ring head to claim next.
inline sim::Task<> fair_rank(sim::Engine& eng, os::Ihk& ihk, ikc::JobId job, Dur work,
                             Dur gap, const bool& stop) {
  for (int k = 0; !stop; ++k) {
    const auto prio = (k % 4 == 0) ? ikc::Priority::control : ikc::Priority::bulk;
    auto r = co_await ihk.offload(
        [&eng, work]() -> sim::Task<Result<long>> {
          co_await eng.delay(work);
          co_return 0L;
        },
        prio, static_cast<int>(job), job);
    (void)r;
    if (gap > from_us(0)) co_await eng.delay(gap);
  }
}

struct JobCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t eagain = 0;
  std::uint64_t credit_waits = 0;
};

inline void snapshot_jobs(os::Ihk& ihk, std::size_t jobs, std::vector<JobCounters>& snap) {
  snap.assign(jobs, JobCounters{});
  for (std::size_t j = 0; j < jobs; ++j)
    if (const auto* s = ihk.transport().job_stats(static_cast<ikc::JobId>(j)))
      snap[j] = {s->submitted, s->completed, s->eagain, s->credit_waits};
}

// Fairness is judged on the service shares inside the measurement window
// [warmup, horizon): the warmup snapshot discards the uncongested startup
// transient (while queues are still shallow, throughput follows offered
// load — a 4-stream tenant legitimately gets 4x until backlog builds), and
// stopping the count at the horizon excludes the backlog drain that follows
// (a heavy tenant exits with more queued requests than a light one).
inline sim::Task<> stop_and_snapshot(sim::Engine& eng, os::Ihk& ihk, Dur warmup,
                                     Dur horizon, bool& stop, std::size_t jobs,
                                     std::vector<JobCounters>& warm,
                                     std::vector<JobCounters>& done) {
  co_await eng.delay(warmup);
  snapshot_jobs(ihk, jobs, warm);
  co_await eng.delay(horizon - warmup);
  stop = true;
  snapshot_jobs(ihk, jobs, done);
}
}  // namespace detail

/// Run one overload-ladder rung: `specs[j]` describes tenant j. Per-job
/// weights/credits come from `cfg` (ikc_job_weights / ikc_job_credits).
inline FairnessResult run_fairness_storm(const os::Config& cfg,
                                         const std::vector<JobSpec>& specs, Dur horizon) {
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  os::Ihk ihk(engine, cfg, linux_kernel);
  bool stop = false;
  std::vector<detail::JobCounters> warm, done;
  for (std::size_t j = 0; j < specs.size(); ++j)
    for (int s = 0; s < specs[j].submitters; ++s)
      sim::spawn(engine, detail::fair_rank(engine, ihk, static_cast<ikc::JobId>(j),
                                           specs[j].work, specs[j].gap, stop));
  sim::spawn(engine, detail::stop_and_snapshot(engine, ihk, horizon / 4, horizon, stop,
                                               specs.size(), warm, done));
  engine.run();

  FairnessResult out;
  // Not engine.now(): pending one-shot timers (the ring-residency watchdog)
  // keep the engine alive well past the horizon, and the per-job counts are
  // window deltas anyway.
  out.window_ms = to_ms(horizon - horizon / 4);
  std::vector<double> shares;
  for (std::size_t j = 0; j < specs.size(); ++j) {
    JobOutcome o;
    o.job = static_cast<ikc::JobId>(j);
    if (j < done.size()) {
      o.submitted = done[j].submitted - warm[j].submitted;
      o.completed = done[j].completed - warm[j].completed;
      o.eagain = done[j].eagain - warm[j].eagain;
      o.credit_waits = done[j].credit_waits - warm[j].credit_waits;
    }
    // Queueing percentiles stay whole-run: the drained tail's waits are
    // real waits, and percentile estimates want every sample they can get.
    if (const auto* s = ihk.transport().job_stats(o.job))
      o.queue = ikc::summarize_queueing(s->queueing_us);
    out.completed_total += o.completed;
    shares.push_back(static_cast<double>(o.completed));
    out.jobs.push_back(o);
  }
  out.jain = jain_index(shares);
  return out;
}

/// --- elastic repartition storm (§8.7) --------------------------------------
/// A sustained offload storm across a scripted shrink → steady → grow
/// schedule: boot shape, retire down to `shrink_to` loops mid-flood, run a
/// steady window, attach back up to the boot shape. Round-trip latency is
/// collected per window so the bench reports tail latency *during* each
/// transition (the handover cost) and *after* it (the new steady state),
/// plus the time-to-quiesce each transition paid. All simulated time —
/// deterministic, gateable.

struct ElasticStormResult {
  double pre_p95_us = 0;            // boot-shape steady state
  double shrink_during_p95_us = 0;  // window containing the retires
  double shrink_after_p95_us = 0;   // shrunken steady state
  double grow_during_p95_us = 0;    // window containing the attaches
  double grow_after_p95_us = 0;     // restored steady state
  double quiesce_us = 0;            // drain + handover time of the retires
  double attach_us = 0;             // time to bring the loops back
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;  // submitted - completed - failed: must be 0
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t degraded = 0;
  std::uint64_t stale_skips = 0;
  std::uint64_t dead_skips = 0;
  std::uint64_t retired = 0;
  std::uint64_t attached = 0;
};

namespace detail {

inline sim::Task<> elastic_submitter(sim::Engine& engine, ikc::IkcTransport& transport,
                                     int channel, Dur work, Dur gap, const bool& halt,
                                     const int& phase, std::array<Samples, 5>& windows,
                                     ElasticStormResult& out) {
  while (!halt) {
    const Time t0 = engine.now();
    ++out.submitted;
    auto r = co_await transport.offload(
        [&engine, work]() -> sim::Task<Result<long>> {
          co_await engine.delay(work);
          co_return 1;
        },
        ikc::Priority::bulk, channel);
    if (r.ok()) {
      ++out.completed;
      windows[static_cast<std::size_t>(phase)].add(to_us(engine.now() - t0));
    } else {
      ++out.failed;
    }
    co_await engine.delay(gap);
  }
}

inline sim::Task<> elastic_schedule(sim::Engine& engine, ikc::IkcTransport& transport,
                                    int shrink_by, Dur window, int& phase, bool& halt,
                                    ElasticStormResult& out) {
  co_await engine.delay(window);  // phase 0: boot-shape steady state
  phase = 1;
  Time t0 = engine.now();
  for (int i = 0; i < shrink_by; ++i) {
    const Status s = co_await transport.retire_loop();
    if (!s.ok()) break;
  }
  out.quiesce_us = to_us(engine.now() - t0);
  co_await engine.delay(window);  // phase 1 window includes the quiesce
  phase = 2;
  co_await engine.delay(window);  // shrunken steady state
  phase = 3;
  t0 = engine.now();
  for (int i = 0; i < shrink_by; ++i) {
    const Status s = co_await transport.attach_loop();
    if (!s.ok()) break;
  }
  out.attach_us = to_us(engine.now() - t0);
  co_await engine.delay(window);
  phase = 4;
  co_await engine.delay(window);  // restored steady state
  halt = true;
}

}  // namespace detail

inline ElasticStormResult run_elastic_storm(const os::Config& cfg, int streams, Dur work,
                                            Dur gap, Dur window, int shrink_by) {
  sim::Engine engine;
  os::LinuxKernel linux_kernel(engine, cfg);
  Samples queueing;
  ikc::IkcTransport transport(engine, cfg, linux_kernel.service_cpus(),
                              linux_kernel.profiler(), queueing,
                              linux_kernel.spinlock_abi());
  ElasticStormResult out;
  std::array<Samples, 5> windows;
  int phase = 0;
  bool halt = false;
  for (int s = 0; s < streams; ++s)
    sim::spawn(engine,
               detail::elastic_submitter(engine, transport, s % cfg.ikc_channels, work,
                                         gap, halt, phase, windows, out));
  sim::spawn(engine, detail::elastic_schedule(engine, transport, shrink_by, window, phase,
                                              halt, out));
  engine.run();

  out.pre_p95_us = windows[0].percentile(95);
  out.shrink_during_p95_us = windows[1].percentile(95);
  out.shrink_after_p95_us = windows[2].percentile(95);
  out.grow_during_p95_us = windows[3].percentile(95);
  out.grow_after_p95_us = windows[4].percentile(95);
  out.lost = out.submitted - out.completed - out.failed;
  const auto& prof = linux_kernel.profiler();
  out.timeouts = prof.counter("ikc.ring.timeout");
  out.degraded = prof.counter("ikc.ring.degraded");
  out.stale_skips = prof.counter("ikc.ring.stale_skip");
  out.dead_skips = prof.counter("ikc.ring.dead_skip");
  out.retired = prof.counter("ikc.elastic.loop_retired");
  out.attached = prof.counter("ikc.elastic.loop_attached");
  return out;
}

}  // namespace pd::bench
