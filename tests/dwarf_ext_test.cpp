// Tests for the DWARF extensions: .debug_str / DW_FORM_strp, const and
// volatile qualifiers, multi-dimensional arrays, and the DIE-tree dump.
#include <gtest/gtest.h>

#include "src/dwarf/constants.hpp"
#include "src/dwarf/extract.hpp"
#include "src/dwarf/reader.hpp"
#include "src/dwarf/writer.hpp"

namespace pd::dwarf {
namespace {

InfoBuilder rich_builder() {
  InfoBuilder b;
  const TypeRef u8 = b.add_base_type("unsigned char", 1, DW_ATE_unsigned_char);
  const TypeRef u32 = b.add_base_type("unsigned int", 4, DW_ATE_unsigned);
  const TypeRef cu32 = b.add_const(u32);
  const TypeRef vu32 = b.add_volatile(u32);
  const TypeRef cvp = b.add_pointer(b.add_const(u8));
  const TypeRef grid = b.add_array_md(u8, {4, 8});
  b.add_struct("csr_block", 96,
               {{"magic", cu32, 0},
                {"doorbell", vu32, 4},
                {"fw_name", cvp, 8},
                {"grid", grid, 16},
                {"plain", u32, 48}});
  return b;
}

TEST(Strp, RoundtripThroughStringTable) {
  const DebugInfo dbg = rich_builder().build("producer-x", "mod.ko", StringForm::strp);
  EXPECT_FALSE(dbg.str.empty()) << "strp must emit a .debug_str section";
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info, dbg.str);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->compile_unit().name(), "mod.ko");
  const Die* s = view->find_named(DW_TAG_structure_type, "csr_block");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->children.size(), 5u);
}

TEST(Strp, DeduplicatesStrings) {
  InfoBuilder b;
  const TypeRef u32 = b.add_base_type("unsigned int", 4, DW_ATE_unsigned);
  // The same member name in two structs should be stored once.
  b.add_struct("a", 8, {{"same_name", u32, 0}});
  b.add_struct("b", 8, {{"same_name", u32, 0}});
  const DebugInfo dbg = b.build("p", "m", StringForm::strp);
  const std::string blob(dbg.str.begin(), dbg.str.end());
  std::size_t count = 0;
  for (std::size_t pos = blob.find("same_name"); pos != std::string::npos;
       pos = blob.find("same_name", pos + 1))
    ++count;
  EXPECT_EQ(count, 1u);
}

TEST(Strp, MissingStringTableRejected) {
  const DebugInfo dbg = rich_builder().build("p", "m", StringForm::strp);
  EXPECT_FALSE(DebugInfoView::parse(dbg.abbrev, dbg.info).ok())
      << "strp form without .debug_str must fail, not fabricate names";
}

TEST(Strp, ExtractionIdenticalToInlineStrings) {
  const DebugInfo inl = rich_builder().build("p", "m", StringForm::inline_string);
  const DebugInfo strp = rich_builder().build("p", "m", StringForm::strp);
  auto v1 = DebugInfoView::parse(inl.abbrev, inl.info);
  auto v2 = DebugInfoView::parse(strp.abbrev, strp.info, strp.str);
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto l1 = extract_struct(*v1, "csr_block", {"magic", "doorbell", "grid"});
  auto l2 = extract_struct(*v2, "csr_block", {"magic", "doorbell", "grid"});
  ASSERT_TRUE(l1.ok() && l2.ok());
  ASSERT_EQ(l1->fields.size(), l2->fields.size());
  for (std::size_t i = 0; i < l1->fields.size(); ++i) {
    EXPECT_EQ(l1->fields[i].offset, l2->fields[i].offset);
    EXPECT_EQ(l1->fields[i].size, l2->fields[i].size);
    EXPECT_EQ(l1->fields[i].type_decl, l2->fields[i].type_decl);
  }
  // strp form should be smaller for string-heavy info (shared names).
  EXPECT_LE(strp.info.size(), inl.info.size());
}

TEST(Qualifiers, SizesSeeThroughConstVolatile) {
  const DebugInfo dbg = rich_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "csr_block", {"magic", "doorbell"});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->field("magic")->size, 4u);
  EXPECT_EQ(layout->field("doorbell")->size, 4u);
}

TEST(Qualifiers, DeclarationsCarryQualifiers) {
  const DebugInfo dbg = rich_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout =
      extract_struct(*view, "csr_block", {"magic", "doorbell", "fw_name"});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->field("magic")->type_decl, "const unsigned int magic");
  EXPECT_EQ(layout->field("doorbell")->type_decl, "volatile unsigned int doorbell");
  EXPECT_EQ(layout->field("fw_name")->type_decl, "const unsigned char *fw_name");
}

TEST(MultiDimArray, SizeAndDeclaration) {
  const DebugInfo dbg = rich_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "csr_block", {"grid"});
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->field("grid")->size, 32u);  // 4 * 8 * 1 byte
  EXPECT_EQ(layout->field("grid")->type_decl, "unsigned char grid[4][8]");
}

TEST(Dump, RendersTreeWithTagsAndNames) {
  const DebugInfo dbg = rich_builder().build("dump-producer", "dump.ko");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  const std::string text = view->dump();
  EXPECT_NE(text.find("DW_TAG_compile_unit"), std::string::npos);
  EXPECT_NE(text.find("DW_TAG_structure_type"), std::string::npos);
  EXPECT_NE(text.find("DW_TAG_const_type"), std::string::npos);
  EXPECT_NE(text.find("DW_TAG_volatile_type"), std::string::npos);
  EXPECT_NE(text.find("\"csr_block\""), std::string::npos);
  EXPECT_NE(text.find("DW_AT_data_member_location=16"), std::string::npos);
  // Children are indented under the CU.
  EXPECT_NE(text.find("\n  <0x"), std::string::npos);
}

InfoBuilder bitfield_builder() {
  InfoBuilder b;
  const TypeRef u32 = b.add_base_type("unsigned int", 4, DW_ATE_unsigned);
  std::vector<InfoBuilder::Member> members;
  members.push_back({"seq", u32, 0, 0, 0});
  members.push_back({"link_state", u32, 8, 5, 3});   // bits [3,8) of unit @8
  members.push_back({"armed", u32, 8, 1, 8});        // bit 8 of the same unit
  b.add_struct("ctrl_word", 16, std::move(members));
  return b;
}

TEST(Bitfields, ExtractedWidthAndOffset) {
  const DebugInfo dbg = bitfield_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "ctrl_word", {"seq", "link_state", "armed"});
  ASSERT_TRUE(layout.ok());
  EXPECT_FALSE(layout->field("seq")->is_bitfield());
  const FieldLayout* ls = layout->field("link_state");
  ASSERT_TRUE(ls->is_bitfield());
  EXPECT_EQ(ls->bit_size, 5u);
  EXPECT_EQ(ls->bit_offset, 3u);
  EXPECT_EQ(ls->offset, 8u);
}

TEST(Bitfields, GeneratedHeaderUsesAnonymousPadBits) {
  const DebugInfo dbg = bitfield_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto header = extract_struct_header(*view, "ctrl_word", {"link_state"});
  ASSERT_TRUE(header.ok());
  EXPECT_NE(header->find("unsigned int : 3;"), std::string::npos) << *header;
  EXPECT_NE(header->find("unsigned int link_state : 5;"), std::string::npos) << *header;
}

TEST(Bitfields, AccessorReadsAndWritesInPlace) {
  const DebugInfo dbg = bitfield_builder().build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  auto layout = extract_struct(*view, "ctrl_word", {"link_state", "armed"});
  ASSERT_TRUE(layout.ok());

  alignas(4) std::uint8_t image[16] = {};
  BitfieldAccessor<std::uint32_t> ls(*layout->field("link_state"));
  BitfieldAccessor<std::uint32_t> armed(*layout->field("armed"));
  ls.write(image, 0b10110);
  armed.write(image, 1);
  EXPECT_EQ(ls.read(image), 0b10110u);
  EXPECT_EQ(armed.read(image), 1u);
  // Cross-check against manual bit layout: unit at byte 8.
  std::uint32_t unit;
  __builtin_memcpy(&unit, image + 8, 4);
  EXPECT_EQ(unit, (0b10110u << 3) | (1u << 8));
  // Overwrite one field without disturbing the other.
  ls.write(image, 0);
  EXPECT_EQ(armed.read(image), 1u);
  EXPECT_EQ(ls.read(image), 0u);
}

TEST(Bitfields, OverflowingBitRangeRejected) {
  InfoBuilder b;
  const TypeRef u32 = b.add_base_type("unsigned int", 4, DW_ATE_unsigned);
  std::vector<InfoBuilder::Member> members;
  members.push_back({"bad", u32, 0, 8, 30});  // bits [30,38) overflow the unit
  b.add_struct("broken", 8, std::move(members));
  const DebugInfo dbg = b.build("p", "m");
  auto view = DebugInfoView::parse(dbg.abbrev, dbg.info);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(extract_struct(*view, "broken", {"bad"}).error(), Errno::einval);
}

TEST(Dump, TagNamesCoverKnownTags) {
  EXPECT_STREQ(tag_name(DW_TAG_member), "DW_TAG_member");
  EXPECT_STREQ(tag_name(DW_TAG_volatile_type), "DW_TAG_volatile_type");
  EXPECT_STREQ(tag_name(0xDEAD), "DW_TAG_<unknown>");
}

}  // namespace
}  // namespace pd::dwarf
