file(REMOVE_RECURSE
  "CMakeFiles/mem_phys_test.dir/mem_phys_test.cpp.o"
  "CMakeFiles/mem_phys_test.dir/mem_phys_test.cpp.o.d"
  "mem_phys_test"
  "mem_phys_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_phys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
