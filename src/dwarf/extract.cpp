#include "src/dwarf/extract.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/dwarf/constants.hpp"

namespace pd::dwarf {

namespace {

/// sizeof() a type DIE; 0 when unknown (malformed info).
std::uint64_t type_size(const DebugInfoView& view, const Die* type) {
  if (type == nullptr) return 0;
  switch (type->tag) {
    case DW_TAG_base_type:
    case DW_TAG_enumeration_type:
    case DW_TAG_structure_type:
    case DW_TAG_union_type:
      return type->unsigned_attr(DW_AT_byte_size).value_or(0);
    case DW_TAG_pointer_type:
      return type->unsigned_attr(DW_AT_byte_size).value_or(kAddressSize);
    case DW_TAG_typedef:
    case DW_TAG_const_type:
    case DW_TAG_volatile_type:
      return type_size(view, view.type_of(*type));
    case DW_TAG_array_type: {
      // Multi-dimensional arrays carry one subrange per dimension.
      std::uint64_t total = type_size(view, view.type_of(*type));
      for (const auto& child : type->children) {
        if (child->tag == DW_TAG_subrange_type)
          total *= child->unsigned_attr(DW_AT_count).value_or(0);
      }
      return total;
    }
    default:
      return 0;
  }
}

/// Build the C declaration "type name" for a field, handling the pointer
/// and array declarator syntax. Returns empty string when the type graph is
/// not printable (treated as malformed).
std::string format_decl(const DebugInfoView& view, const Die* type, const std::string& varname) {
  if (type == nullptr) return "";
  switch (type->tag) {
    case DW_TAG_base_type:
    case DW_TAG_typedef: {
      auto n = type->name();
      if (!n) return "";
      return *n + " " + varname;
    }
    case DW_TAG_enumeration_type: {
      auto n = type->name();
      const std::string tag = n ? "enum " + *n : "int /* anonymous enum */";
      return tag + " " + varname;
    }
    case DW_TAG_structure_type: {
      auto n = type->name();
      if (!n) return "";
      return "struct " + *n + " " + varname;
    }
    case DW_TAG_union_type: {
      auto n = type->name();
      if (!n) return "";
      return "union " + *n + " " + varname;
    }
    case DW_TAG_pointer_type: {
      const Die* pointee = view.type_of(*type);
      if (pointee == nullptr) return "void *" + varname;
      return format_decl(view, pointee, "*" + varname);
    }
    case DW_TAG_array_type: {
      const Die* elem = view.type_of(*type);
      std::string decl = varname;
      for (const auto& child : type->children) {
        if (child->tag == DW_TAG_subrange_type)
          decl += "[" + std::to_string(child->unsigned_attr(DW_AT_count).value_or(0)) + "]";
      }
      return format_decl(view, elem, decl);
    }
    case DW_TAG_const_type: {
      const Die* inner = view.type_of(*type);
      const std::string d = format_decl(view, inner, varname);
      return d.empty() ? d : "const " + d;
    }
    case DW_TAG_volatile_type: {
      const Die* inner = view.type_of(*type);
      const std::string d = format_decl(view, inner, varname);
      return d.empty() ? d : "volatile " + d;
    }
    default:
      return "";
  }
}

/// Collect auxiliary declarations (enums, opaque structs/unions) that the
/// extracted field types reference so the generated header is standalone.
void collect_aux_decls(const DebugInfoView& view, const Die* type,
                       std::set<std::string>& emitted, std::ostringstream& out) {
  if (type == nullptr) return;
  switch (type->tag) {
    case DW_TAG_enumeration_type: {
      auto n = type->name();
      if (!n || emitted.count("enum " + *n)) return;
      emitted.insert("enum " + *n);
      out << "enum " << *n << " {\n";
      for (const auto& child : type->children) {
        if (child->tag != DW_TAG_enumerator) continue;
        auto en = child->name();
        auto ev = child->signed_attr(DW_AT_const_value);
        if (en && ev) out << "\t" << *en << " = " << *ev << ",\n";
      }
      out << "};\n\n";
      return;
    }
    case DW_TAG_structure_type:
    case DW_TAG_union_type: {
      auto n = type->name();
      if (!n) return;
      const char* kw = type->tag == DW_TAG_structure_type ? "struct" : "union";
      const std::string key = std::string(kw) + " " + *n;
      if (emitted.count(key)) return;
      emitted.insert(key);
      out << kw << " " << *n << ";\n\n";
      return;
    }
    case DW_TAG_pointer_type:
    case DW_TAG_array_type:
    case DW_TAG_typedef:
    case DW_TAG_const_type:
    case DW_TAG_volatile_type:
      collect_aux_decls(view, view.type_of(*type), emitted, out);
      return;
    default:
      return;
  }
}

const Die* find_member(const Die& struct_die, const std::string& field) {
  for (const auto& child : struct_die.children) {
    if (child->tag != DW_TAG_member) continue;
    auto n = child->name();
    if (n && *n == field) return child.get();
  }
  return nullptr;
}

}  // namespace

const FieldLayout* StructLayout::field(const std::string& name) const {
  auto it = std::find_if(fields.begin(), fields.end(),
                         [&](const FieldLayout& f) { return f.name == name; });
  return it == fields.end() ? nullptr : &*it;
}

Result<StructLayout> extract_struct(const DebugInfoView& view, const std::string& struct_name,
                                    const std::vector<std::string>& fields) {
  const Die* struct_die = view.find_named(DW_TAG_structure_type, struct_name);
  // Skip forward declarations: a declaration-only DIE has no byte size.
  if (struct_die != nullptr && !struct_die->unsigned_attr(DW_AT_byte_size)) {
    for (const Die* candidate : view.all_with_tag(DW_TAG_structure_type)) {
      auto n = candidate->name();
      if (n && *n == struct_name && candidate->unsigned_attr(DW_AT_byte_size)) {
        struct_die = candidate;
        break;
      }
    }
  }
  if (struct_die == nullptr) return Errno::enoent;
  auto byte_size = struct_die->unsigned_attr(DW_AT_byte_size);
  if (!byte_size) return Errno::enoent;

  StructLayout layout;
  layout.struct_name = struct_name;
  layout.byte_size = *byte_size;

  for (const std::string& field : fields) {
    const Die* member = find_member(*struct_die, field);
    if (member == nullptr) return Errno::enoent;
    auto offset = member->unsigned_attr(DW_AT_data_member_location);
    if (!offset) return Errno::einval;
    const Die* type = view.type_of(*member);
    const std::uint64_t size = type_size(view, type);
    std::string decl = format_decl(view, type, field);
    if (size == 0 || decl.empty()) return Errno::einval;
    if (*offset + size > layout.byte_size) return Errno::einval;
    FieldLayout fl{field, *offset, size, std::move(decl), 0, 0};
    if (auto bits = member->unsigned_attr(DW_AT_bit_size)) {
      fl.bit_size = static_cast<std::uint32_t>(*bits);
      fl.bit_offset = static_cast<std::uint32_t>(
          member->unsigned_attr(DW_AT_bit_offset).value_or(0));
      if (fl.bit_offset + fl.bit_size > size * 8) return Errno::einval;
    }
    layout.fields.push_back(std::move(fl));
  }
  return layout;
}

std::string generate_header(const DebugInfoView& view, const StructLayout& layout) {
  std::ostringstream out;
  out << "/* Generated by dwarf-extract-struct; do not edit.\n"
      << " * Source struct: " << layout.struct_name << " (" << layout.byte_size
      << " bytes). Field offsets extracted from module debug info.\n"
      << " */\n";

  // Auxiliary declarations so field types resolve.
  std::set<std::string> emitted;
  std::ostringstream aux;
  const Die* struct_die = view.find_named(DW_TAG_structure_type, layout.struct_name);
  if (struct_die != nullptr) {
    for (const auto& f : layout.fields) {
      const Die* member = find_member(*struct_die, f.name);
      if (member != nullptr) collect_aux_decls(view, view.type_of(*member), emitted, aux);
    }
  }
  out << aux.str();

  out << "struct " << layout.struct_name << " {\n";
  out << "\tunion {\n";
  out << "\t\tchar whole_struct[" << layout.byte_size << "];\n";
  int pad_index = 0;
  for (const auto& f : layout.fields) {
    out << "\t\tstruct {\n";
    if (f.offset > 0)
      out << "\t\t\tchar padding" << pad_index << "[" << f.offset << "];\n";
    ++pad_index;
    if (f.is_bitfield()) {
      // A leading anonymous bitfield positions the member at the right
      // bit within the storage unit.
      const std::string unit =
          f.type_decl.substr(0, f.type_decl.rfind(' '));  // strip the name
      if (f.bit_offset > 0) out << "\t\t\t" << unit << " : " << f.bit_offset << ";\n";
      out << "\t\t\t" << f.type_decl << " : " << f.bit_size << ";\n";
    } else {
      out << "\t\t\t" << f.type_decl << ";\n";
    }
    out << "\t\t};\n";
  }
  out << "\t};\n";
  out << "};\n";
  return out.str();
}

Result<std::string> extract_struct_header(const DebugInfoView& view,
                                          const std::string& struct_name,
                                          const std::vector<std::string>& fields) {
  auto layout = extract_struct(view, struct_name, fields);
  if (!layout) return layout.error();
  return generate_header(view, *layout);
}

}  // namespace pd::dwarf
