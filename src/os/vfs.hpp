// Character-device / VFS vocabulary.
//
// The Linux kernel model exposes device files through `CharDevice`, whose
// operations mirror the file_operations the real HFI1 driver registers
// (open, writev, ioctl, poll, mmap, read, close — paper §2.2.2). Operations
// are coroutines: they consume simulated CPU time via engine delays and may
// block on hardware state (ring backpressure).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/common/status.hpp"
#include "src/mem/types.hpp"
#include "src/sim/task.hpp"

namespace pd::os {

class Process;
class CharDevice;

/// One user I/O vector (as passed to writev).
struct IoVec {
  mem::VirtAddr base = 0;
  std::uint64_t len = 0;
};

/// Per-open state (the struct file of the model).
struct OpenFile {
  int fd = -1;
  Process* proc = nullptr;
  CharDevice* dev = nullptr;
  void* driver_ctx = nullptr;  // driver-private (freed by driver close())
  // Teardown fallback set alongside driver_ctx: frees the context when the
  // file dies with close() never called (a process torn down mid-run).
  void (*driver_ctx_dtor)(void*) = nullptr;
  int ctxt = -1;  // hardware receive context bound at open()

  OpenFile() = default;
  OpenFile(const OpenFile&) = delete;
  OpenFile& operator=(const OpenFile&) = delete;
  ~OpenFile() {
    if (driver_ctx != nullptr && driver_ctx_dtor != nullptr) driver_ctx_dtor(driver_ctx);
  }
};

/// Device-file operations. All methods execute "in kernel mode" on the
/// calling CPU's timeline; callers account syscall entry/exit around them.
class CharDevice {
 public:
  virtual ~CharDevice() = default;

  virtual std::string dev_name() const = 0;

  virtual sim::Task<Result<long>> open(OpenFile& f) = 0;
  virtual sim::Task<Result<long>> writev(OpenFile& f, std::span<const IoVec> iov) = 0;
  virtual sim::Task<Result<long>> ioctl(OpenFile& f, unsigned long cmd, void* arg) = 0;
  virtual sim::Task<Result<long>> poll(OpenFile& f) = 0;
  /// Returns the device-physical address to map (the caller installs it in
  /// the process address space).
  virtual sim::Task<Result<mem::PhysAddr>> mmap(OpenFile& f, std::uint64_t len,
                                                std::uint64_t offset) = 0;
  virtual sim::Task<Result<long>> read(OpenFile& f, std::uint64_t len) = 0;
  virtual sim::Task<Result<long>> lseek(OpenFile& f, long offset, int whence) = 0;
  virtual sim::Task<Result<long>> close(OpenFile& f) = 0;
};

}  // namespace pd::os
