# Empty compiler generated dependencies file for pd_apps.
# This may be replaced when dependencies are built.
