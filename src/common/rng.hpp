// Deterministic random-number generation.
//
// Every stochastic element of the simulation (OS-noise arrival, workload
// jitter) draws from an explicitly seeded xoshiro256** stream so that runs
// are bit-reproducible. Seeds are derived per entity with SplitMix64, which
// decorrelates streams created from sequential ids.
#pragma once

#include <cmath>
#include <cstdint>

namespace pd {

/// SplitMix64: used to expand one user seed into well-distributed
/// per-entity seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Small state, excellent statistical
/// quality, and trivially copyable — convenient for snapshotting.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for the bounds used (all << 2^32).
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    // Inverse transform; next_double() < 1 so the argument stays positive.
    return -mean * std::log(1.0 - next_double());
  }

  /// Derive an independent child stream (for per-entity RNGs).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pd
