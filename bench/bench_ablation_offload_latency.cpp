// Ablation: IKC one-way latency sensitivity of the offloaded data path.
// Sweeps the IKC message latency and reports 1 MB ping-pong bandwidth on
// plain McKernel — separating the *latency* component of offloading from
// the *contention* component (see bench_ablation_offload_cpus for that) —
// plus the storm harness's p95 queueing under both transports, showing the
// ring's batching advantage is orthogonal to the raw message latency.
#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

int main() {
  using namespace pd;
  using namespace pd::time_literals;
  bench::print_banner("Ablation — IKC one-way latency vs offloaded bandwidth",
                      "single-rank ping-pong: latency alone costs ~10-15%, not 5x");

  TextTable table({"IKC one-way us", "McKernel MB/s", "Legacy p95 us", "Ring p95 us"});
  for (double us : {0.2, 0.5, 0.8, 1.6, 3.2, 6.4}) {
    mpirt::ClusterOptions copts;
    copts.nodes = 2;
    copts.mode = os::OsMode::mckernel;
    copts.cfg.offload_oneway = from_us(us);
    copts.mcdram_bytes = 512ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 1;
    wopts.buf_bytes = 4ull << 20;
    mpirt::MpiWorld world(cluster, wopts);

    constexpr std::uint64_t kBytes = 1_MiB;
    const int iters = 20;
    struct Shared {
      Time t0 = 0, t1 = 0;
    } shared;
    world.run([&](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      co_await rank.barrier();
      if (rank.id() == 0) shared.t0 = rank.world().cluster().engine().now();
      for (int i = 0; i < iters; ++i) {
        if (rank.id() == 0) {
          co_await rank.send(1, 10 + i, kBytes);
          co_await rank.recv(1, 1000 + i, kBytes);
        } else {
          co_await rank.recv(0, 10 + i, kBytes);
          co_await rank.send(0, 1000 + i, kBytes);
        }
      }
      if (rank.id() == 0) shared.t1 = rank.world().cluster().engine().now();
      co_await rank.finalize();
    });
    const double sec = to_sec(shared.t1 - shared.t0);

    // Queueing under contention at the same one-way latency, both transports.
    os::Config scfg;
    scfg.offload_oneway = from_us(us);
    const int per_rank = bench::quick_mode() ? 12 : 32;
    scfg.ikc_mode = os::IkcMode::direct;
    const auto legacy = bench::run_offload_storm(scfg, 32, per_rank, from_us(3), from_us(20));
    scfg.ikc_mode = os::IkcMode::ring;
    const auto ring = bench::run_offload_storm(scfg, 32, per_rank, from_us(3), from_us(20));

    table.add_row({format_double(us, 1),
                   format_double(static_cast<double>(kBytes) * iters / (sec / 2.0) / 1e6, 1),
                   format_double(legacy.queue.p95_us, 1),
                   format_double(ring.queue.p95_us, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
