// /proc/pd/jobs — read-only introspection of per-job IKC statistics.
//
// A procfs-style text file on the simulated VFS: open() snapshots the
// transport's per-job stats (submitted/completed/eagain/inflight and the
// queueing p50/p95) into the open file, read() consumes the rendered text
// through the normal CharDevice read path, close() drops the snapshot.
// Snapshot-at-open gives procfs semantics: a reader paging through the file
// sees one consistent table even while jobs keep completing underneath it.
//
// The model's read() moves byte *counts*, not payloads, so tests assert
// against snapshot() — the rendered text backing those counts.
#pragma once

#include <string>

#include "src/ikc/transport.hpp"
#include "src/os/kernel.hpp"

namespace pd::os {

class ProcJobsFile final : public CharDevice {
 public:
  /// `transport` is the node's IKC transport whose per-job stats the file
  /// renders. Registers itself on `linux_kernel`'s VFS.
  ProcJobsFile(LinuxKernel& linux_kernel, ikc::IkcTransport& transport);

  std::string dev_name() const override { return "/proc/pd/jobs"; }

  sim::Task<Result<long>> open(OpenFile& f) override;
  sim::Task<Result<long>> writev(OpenFile& f, std::span<const IoVec> iov) override;
  sim::Task<Result<long>> ioctl(OpenFile& f, unsigned long cmd, void* arg) override;
  sim::Task<Result<long>> poll(OpenFile& f) override;
  sim::Task<Result<mem::PhysAddr>> mmap(OpenFile& f, std::uint64_t len,
                                        std::uint64_t offset) override;
  sim::Task<Result<long>> read(OpenFile& f, std::uint64_t len) override;
  sim::Task<Result<long>> lseek(OpenFile& f, long offset, int whence) override;
  sim::Task<Result<long>> close(OpenFile& f) override;

  /// The text snapshot rendered at open() (nullptr before open / after
  /// close). What read()'s byte counts walk through.
  static const std::string* snapshot(const OpenFile& f);

  /// Render the table once, without a file (what open() stores).
  std::string render() const;

 private:
  struct FileCtx {
    std::string text;
    std::size_t off = 0;
  };

  LinuxKernel& linux_;
  ikc::IkcTransport& transport_;
};

}  // namespace pd::os
