// pd-doom driver structure layouts, versioned like vendor releases.
//
// Second proof point for §3.2: a *different* driver's internal structures
// (`doom_devdata` with an embedded `doom_ringstate`, per-open `doom_ctx`)
// live as raw byte images in the Linux kernel heap, the driver reads them
// through this compiled-in table, and the PicoDriver side learns the same
// offsets exclusively from the DWARF info inside the module binary that
// `ship_module()` produces. The versions deliberately shuffle fields so the
// extraction — not the header — is what keeps the fast path correct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.hpp"
#include "src/dwarf/layout_table.hpp"
#include "src/dwarf/module_binary.hpp"

namespace pd::doom {

using dwarf::FieldDef;
using dwarf::StructDef;
using dwarf::StructImage;

/// Device run state the driver stores in doom_ringstate::run_state.
enum class DoomRunState : std::uint32_t {
  halted = 0,
  running = 1,
  error = 2,  // bad PTE parked the device; reset required
};

class DoomLayouts {
 public:
  /// Known versions: "0.9-d6", "1.1-d2", "2.0-d1". Unknown versions fail.
  static Result<DoomLayouts> for_version(const std::string& version);

  const std::string& version() const { return version_; }
  const StructDef* structure(const std::string& name) const;

  /// The shipped module binary: .text stub, version string, and DWARF debug
  /// info describing every structure above.
  dwarf::ModuleBinary ship_module() const;

 private:
  std::string version_;
  std::vector<StructDef> structs_;
};

}  // namespace pd::doom
