// Tests for AddressSpace: the Linux-vs-LWK backing policies, pinning,
// get_user_pages, physical-extent discovery (the §3.4 mechanism), and the
// translation/extent cache layered on top of it.
#include <gtest/gtest.h>

#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/extent_cache.hpp"

namespace pd::mem {
namespace {

PhysMap small_map() { return PhysMap::knl(64_MiB, 256_MiB, 1); }

constexpr VirtAddr kMmapBase = 0x0000'2000'0000ull;

TEST(AddressSpaceLinux, MmapBacksEveryPage) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  for (std::uint64_t off = 0; off < 64_KiB; off += kPage4K)
    EXPECT_TRUE(as.translate(*va + off).has_value());
}

TEST(AddressSpaceLinux, PagesAreScattered) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(1_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  // Count adjacent virtual pages that are also physically adjacent; the
  // shuffled backing should make this rare (Linux host after uptime).
  int contiguous = 0, total = 0;
  for (std::uint64_t off = kPage4K; off < 1_MiB; off += kPage4K) {
    const auto prev = as.translate(*va + off - kPage4K);
    const auto cur = as.translate(*va + off);
    ASSERT_TRUE(prev && cur);
    ++total;
    if (prev->pa + kPage4K == cur->pa) ++contiguous;
  }
  EXPECT_LT(contiguous, total / 4) << "Linux policy should scatter frames";
}

TEST(AddressSpaceLinux, NotPinnedUntilGetUserPages) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.pinned_frame_count(), 0u);
  auto pages = as.get_user_pages(*va, 16_KiB);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->frames.size(), 4u);
  EXPECT_EQ(as.pinned_frame_count(), 4u);
  as.put_user_pages(*pages);
  EXPECT_EQ(as.pinned_frame_count(), 0u);
}

TEST(AddressSpaceLinux, GetUserPagesUnmappedFaults) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(8_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  // Walk past the end of the VMA.
  auto pages = as.get_user_pages(*va, 16_KiB);
  EXPECT_EQ(pages.error(), Errno::efault);
  EXPECT_EQ(as.pinned_frame_count(), 0u) << "partial pins must be released";
}

TEST(AddressSpaceLwk, LargePagesUsedForBigMappings) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(8_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  auto t = as.translate(*va);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->page, kPage2M);
  EXPECT_GT(as.large_page_fraction(), 0.9);
}

TEST(AddressSpaceLwk, MappingsArePinnedAtCreation) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(2_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.pinned_frame_count(), 2_MiB / kPage4K);
  auto t = as.translate(*va);
  EXPECT_TRUE(as.is_pinned(t->pa));
  // munmap is the user-requested operation that releases the pin.
  ASSERT_TRUE(as.munmap(*va, 2_MiB).ok());
  EXPECT_EQ(as.pinned_frame_count(), 0u);
}

TEST(AddressSpaceLwk, PhysicallyContiguousBacking) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(4_MiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  auto extents = as.physical_extents(*va, 4_MiB, 0);
  ASSERT_TRUE(extents.ok());
  // A fresh buddy pool should back 4 MiB with very few contiguous runs.
  EXPECT_LE(extents->size(), 2u);
}

TEST(PhysicalExtents, RespectsMaxExtent) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  const std::uint64_t kMax = 10240;  // the HFI 10 KiB SDMA descriptor cap
  auto extents = as.physical_extents(*va, 64_KiB, kMax);
  ASSERT_TRUE(extents.ok());
  std::uint64_t total = 0;
  for (const auto& e : *extents) {
    EXPECT_LE(e.len, kMax);
    total += e.len;
  }
  EXPECT_EQ(total, 64_KiB);
  // Contiguous backing → ceil(65536/10240) = 7 descriptors, vs 16 at 4 KiB.
  EXPECT_EQ(extents->size(), 7u);
}

TEST(PhysicalExtents, LinuxScatterYieldsPageGrainExtents) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  auto extents = as.physical_extents(*va, 64_KiB, 10240);
  ASSERT_TRUE(extents.ok());
  // Mostly single-page extents.
  EXPECT_GE(extents->size(), 12u);
}

TEST(PhysicalExtents, UnmappedRangeFaults) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  EXPECT_EQ(as.physical_extents(0xDEAD000, 4096, 0).error(), Errno::efault);
}

TEST(AddressSpace, MunmapExactVmaOnly) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.munmap(*va + kPage4K, 4_KiB).error(), Errno::einval);
  EXPECT_TRUE(as.munmap(*va, 16_KiB).ok());
  EXPECT_FALSE(as.translate(*va).has_value());
  EXPECT_EQ(as.vma_count(), 0u);
}

TEST(AddressSpace, MunmapReturnsMemoryToPhysMap) {
  PhysMap phys = small_map();
  const std::uint64_t before = phys.free_bytes(MemKind::ddr) + phys.free_bytes(MemKind::mcdram);
  {
    AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
    auto va = as.mmap_anonymous(8_MiB, kProtRead);
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(as.munmap(*va, 8_MiB).ok());
  }
  const std::uint64_t after = phys.free_bytes(MemKind::ddr) + phys.free_bytes(MemKind::mcdram);
  EXPECT_EQ(before, after);
}

TEST(AddressSpace, DeviceMappingDoesNotConsumePhys) {
  PhysMap phys = small_map();
  const std::uint64_t before = phys.free_bytes(MemKind::mcdram) + phys.free_bytes(MemKind::ddr);
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_device(0xF000'0000ull, 64_KiB, kProtRead | kProtWrite);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(phys.free_bytes(MemKind::mcdram) + phys.free_bytes(MemKind::ddr), before);
  auto t = as.translate(*va + 0x10);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->pa, 0xF000'0010ull);
}

TEST(AddressSpace, MapGenerationBumpsOnSuccessfulMunmapOnly) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  const std::uint64_t g0 = as.map_generation();
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(as.map_generation(), g0) << "mmap must not invalidate cached runs";
  EXPECT_FALSE(as.munmap(*va + kPage4K, 4_KiB).ok());
  EXPECT_EQ(as.map_generation(), g0) << "failed munmap must not invalidate";
  ASSERT_TRUE(as.munmap(*va, 64_KiB).ok());
  EXPECT_EQ(as.map_generation(), g0 + 1);
}

TEST(PhysicalExtents, OutBufferOverloadMatchesAllocatingOverload) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  auto ref = as.physical_extents(*va, 64_KiB, 10240);
  ASSERT_TRUE(ref.ok());
  std::vector<PhysExtent> out;
  ASSERT_TRUE(as.physical_extents(*va, 64_KiB, 10240, out).ok());
  ASSERT_EQ(out.size(), ref->size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].pa, (*ref)[i].pa);
    EXPECT_EQ(out[i].len, (*ref)[i].len);
  }
  // A second fill clears, not appends.
  ASSERT_TRUE(as.physical_extents(*va, 64_KiB, 10240, out).ok());
  EXPECT_EQ(out.size(), ref->size());
}

TEST(ExtentCache, RepeatLookupHitsWithoutRewalking) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  ExtentCache cache;
  ExtentCache::Outcome outcome;
  auto first = cache.lookup(as, *va, 64_KiB, 10240, &outcome);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::miss);
  EXPECT_EQ(first->size(), 7u);  // ceil(65536/10240), contiguous backing
  auto second = cache.lookup(as, *va, 64_KiB, 10240, &outcome);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::hit);
  EXPECT_EQ(second->size(), 7u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().invalidations(), 0u);
  EXPECT_EQ(cache.entries(), 1u);
  // A different max_extent is a different key, not a hit.
  ASSERT_TRUE(cache.lookup(as, *va, 64_KiB, kPage2M, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::miss);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ExtentCache, NonOverlappingMunmapNoLongerInvalidates) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto buf = as.mmap_anonymous(64_KiB, kProtRead);
  auto scratch = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(buf.ok() && scratch.ok());
  ExtentCache cache;
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *buf, 64_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::miss);
  // Unmapping a disjoint range moves the generation, but the unmap-interval
  // log proves the cached range untouched: still a hit, no re-walk.
  ASSERT_TRUE(as.munmap(*scratch, 16_KiB).ok());
  auto again = cache.lookup(as, *buf, 64_KiB, 10240, &outcome);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::hit);
  EXPECT_EQ(cache.stats().invalidations(), 0u);
  EXPECT_EQ(again->size(), 7u);
}

TEST(ExtentCache, OverlappingMunmapRangeInvalidates) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto buf = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(buf.ok());
  ExtentCache cache;
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *buf, 64_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::miss);
  // Unmapping the cached buffer itself must be caught by the overlap check.
  ASSERT_TRUE(as.munmap(*buf, 64_KiB).ok());
  auto stale = cache.lookup(as, *buf, 64_KiB, 10240, &outcome);
  EXPECT_FALSE(stale.ok()) << "re-walk of an unmapped range must fault, not hit";
  EXPECT_EQ(stale.error(), Errno::efault);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ExtentCache, UnmapLogOverflowFallsBackToGeneration) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  as.set_unmap_log_capacity(4);
  auto buf = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(buf.ok());
  ExtentCache cache;
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *buf, 64_KiB, 10240, &outcome).ok());
  // Churn more disjoint unmaps than the log retains: the entry's fill
  // generation falls below the log floor and nothing can be proven.
  for (int i = 0; i < 6; ++i) {
    auto scratch = as.mmap_anonymous(16_KiB, kProtRead);
    ASSERT_TRUE(scratch.ok());
    ASSERT_TRUE(as.munmap(*scratch, 16_KiB).ok());
  }
  EXPECT_EQ(as.unmap_log_size(), 4u);
  EXPECT_GT(as.unmap_log_floor(), 0u);
  auto again = cache.lookup(as, *buf, 64_KiB, 10240, &outcome);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::generation_overflow);
  EXPECT_EQ(cache.stats().generation_overflows, 1u);
  EXPECT_EQ(again->size(), 7u) << "conservative re-walk must produce fresh extents";
  // The re-walk refreshed the generation: stable again.
  ASSERT_TRUE(cache.lookup(as, *buf, 64_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::hit);
}

TEST(ExtentCache, ZeroLogCapacityDegradesToWholeSpaceInvalidation) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  as.set_unmap_log_capacity(0);  // PR-1 behaviour: any munmap kills everything
  auto buf = as.mmap_anonymous(64_KiB, kProtRead);
  auto scratch = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(buf.ok() && scratch.ok());
  ExtentCache cache;
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *buf, 64_KiB, 10240, &outcome).ok());
  ASSERT_TRUE(as.munmap(*scratch, 16_KiB).ok());
  ASSERT_TRUE(cache.lookup(as, *buf, 64_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::generation_overflow);
}

TEST(AddressSpace, RangeVerdictSinceTracksOverlapAndOverflow) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  as.set_unmap_log_capacity(2);
  auto a = as.mmap_anonymous(16_KiB, kProtRead);
  auto b = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::uint64_t g0 = as.map_generation();
  EXPECT_EQ(as.range_verdict_since(*a, 16_KiB, g0), RangeVerdict::intact);
  ASSERT_TRUE(as.munmap(*b, 16_KiB).ok());
  EXPECT_EQ(as.range_verdict_since(*a, 16_KiB, g0), RangeVerdict::intact);
  // Overlap is detected even for a one-byte query inside the unmapped VMA,
  // and for an unaligned query whose edge page was unmapped.
  EXPECT_EQ(as.range_verdict_since(*b + 100, 1, g0), RangeVerdict::overlaps_unmap);
  EXPECT_EQ(as.range_verdict_since(*b - 1 + kPage4K, 2, g0), RangeVerdict::overlaps_unmap);
  // The current generation is always intact by definition.
  EXPECT_EQ(as.range_verdict_since(*b, 16_KiB, as.map_generation()), RangeVerdict::intact);
  // Overflow the two-entry log; g0 drops below the floor.
  for (int i = 0; i < 3; ++i) {
    auto scratch = as.mmap_anonymous(4_KiB, kProtRead);
    ASSERT_TRUE(scratch.ok());
    ASSERT_TRUE(as.munmap(*scratch, 4_KiB).ok());
  }
  EXPECT_EQ(as.range_verdict_since(*a, 16_KiB, g0), RangeVerdict::unknown);
}

TEST(ExtentCache, ReMmapAfterMunmapRewalksNotStale) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  ExtentCache cache;
  ASSERT_TRUE(cache.lookup(as, *va, 64_KiB, 10240).ok());
  ASSERT_TRUE(as.munmap(*va, 64_KiB).ok());
  auto va2 = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va2.ok());
  ExtentCache::Outcome outcome;
  auto fresh = cache.lookup(as, *va2, 64_KiB, 10240, &outcome);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(outcome, ExtentCache::Outcome::hit);
  // The re-walked extents must match what the page table says *now*.
  auto truth = as.physical_extents(*va2, 64_KiB, 10240);
  ASSERT_TRUE(truth.ok());
  ASSERT_EQ(fresh->size(), truth->size());
  for (std::size_t i = 0; i < truth->size(); ++i)
    EXPECT_EQ((*fresh)[i].pa, (*truth)[i].pa);
}

TEST(ExtentCache, LruEvictionOrderAtCapacity) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto a = as.mmap_anonymous(16_KiB, kProtRead);
  auto b = as.mmap_anonymous(16_KiB, kProtRead);
  auto c = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ExtentCache cache(/*capacity=*/2, ExtentCache::EvictionPolicy::lru);
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *a, 16_KiB, 10240).ok());
  ASSERT_TRUE(cache.lookup(as, *b, 16_KiB, 10240).ok());
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  ASSERT_TRUE(cache.lookup(as, *a, 16_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::hit);
  ASSERT_TRUE(cache.lookup(as, *c, 16_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::evicted_small) << "capacity miss evicts";
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  ASSERT_TRUE(cache.lookup(as, *a, 16_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::hit) << "recently-used entry survives";
  ASSERT_TRUE(cache.lookup(as, *b, 16_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::evicted_small) << "LRU entry was evicted";
}

TEST(ExtentCache, SizeAwareEvictionKeepsLargeHotWindow) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto window = as.mmap_anonymous(2_MiB, kProtRead);  // persistent PSM window
  ASSERT_TRUE(window.ok());
  ExtentCache cache(/*capacity=*/4, ExtentCache::EvictionPolicy::size_aware);
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *window, 2_MiB, 10240).ok());
  for (int i = 0; i < 2; ++i) {  // accumulate hits on the window
    ASSERT_TRUE(cache.lookup(as, *window, 2_MiB, 10240, &outcome).ok());
    EXPECT_EQ(outcome, ExtentCache::Outcome::hit);
  }
  // A burst of one-shot small buffers overflows the capacity. Under pure
  // LRU the window (oldest) would be the first victim; size-aware scoring
  // makes the burst evict its own kind instead.
  for (int i = 0; i < 8; ++i) {
    auto small = as.mmap_anonymous(8_KiB, kProtRead);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(cache.lookup(as, *small, 8_KiB, 10240, &outcome).ok());
    EXPECT_NE(outcome, ExtentCache::Outcome::hit);
  }
  EXPECT_EQ(cache.stats().evictions, 5u);
  ASSERT_TRUE(cache.lookup(as, *window, 2_MiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::hit)
      << "the large hot window must survive the small-buffer burst";
}

TEST(ExtentCache, ZeroCapacityDegradesToPassThrough) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  auto va = as.mmap_anonymous(64_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  ExtentCache cache(/*capacity=*/0);
  ExtentCache::Outcome outcome;
  for (int i = 0; i < 3; ++i) {
    auto r = cache.lookup(as, *va, 64_KiB, 10240, &outcome);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(outcome, ExtentCache::Outcome::miss) << "every lookup is a fresh walk";
    EXPECT_EQ(r->size(), 7u);
  }
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Errors pass through too.
  EXPECT_EQ(cache.lookup(as, 0xDEAD000, 4096, 0).error(), Errno::efault);
}

TEST(ExtentCache, FaultingRangeIsNotCached) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::lwk_contig, MemKind::mcdram, kMmapBase);
  ExtentCache cache;
  EXPECT_EQ(cache.lookup(as, 0xDEAD000, 4096, 0).error(), Errno::efault);
  EXPECT_EQ(cache.lookup(as, 0xDEAD000, 4096, 0).error(), Errno::efault);
  EXPECT_EQ(cache.stats().hits, 0u) << "a failed walk must never turn into a hit";
  // A valid range still works after the failures.
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  ExtentCache::Outcome outcome;
  ASSERT_TRUE(cache.lookup(as, *va, 16_KiB, 10240, &outcome).ok());
  EXPECT_EQ(outcome, ExtentCache::Outcome::miss);
}

TEST(AddressSpace, FindVma) {
  PhysMap phys = small_map();
  AddressSpace as(phys, BackingPolicy::linux_4k, MemKind::ddr, kMmapBase);
  auto va = as.mmap_anonymous(16_KiB, kProtRead);
  ASSERT_TRUE(va.ok());
  const Vma* vma = as.find_vma(*va + 100);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->start, *va);
  EXPECT_EQ(as.find_vma(*va + 64_KiB), nullptr);
}

}  // namespace
}  // namespace pd::mem
