#include "src/os/mckernel.hpp"

namespace pd::os {

McKernel::McKernel(sim::Engine& engine, const Config& cfg, Ihk& ihk, bool unified_layout)
    : Kernel(engine, cfg, "mckernel",
             unified_layout ? mem::mckernel_unified_layout() : mem::mckernel_original_layout(),
             cfg.lwk_noise_duty, /*daemon_period=*/0, /*daemon_cost=*/0),
      ihk_(ihk),
      unified_(unified_layout) {
  // IHK hands the LWK the app cores: [service_cpus, cores_per_node).
  for (int c = cfg.linux_service_cpus; c < cfg.cores_per_node; ++c) cpus_.push_back(c);
  kheap_ = std::make_unique<mem::KernelHeap>(
      cpus_,
      // The remote-free queue only exists with the PicoDriver extension
      // (which requires the unified layout); the original allocator fails
      // on foreign CPUs.
      unified_ ? mem::ForeignFreePolicy::remote_queue : mem::ForeignFreePolicy::fail,
      /*heap_base=*/0x0000'00F0'0000'0000ull);
}

void McKernel::register_fastpath(CharDevice& dev, FastPathOps ops) {
  fastpaths_[&dev] = std::move(ops);
}

const FastPathOps* McKernel::fastpath(const CharDevice& dev) const {
  auto it = fastpaths_.find(&dev);
  return it == fastpaths_.end() ? nullptr : &it->second;
}

std::size_t McKernel::drain_remote_frees() {
  std::size_t total = 0;
  for (int cpu : cpus_) total += kheap_->drain_remote_frees(cpu);
  return total;
}

}  // namespace pd::os
