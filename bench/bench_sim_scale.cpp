// Paper-scale DES engine benchmark (ISSUE 6): calendar-queue scheduler,
// allocation-free event path, sharded per-node queues.
//
// Three sections:
//   engine_loop — raw scheduler throughput: 64 self-rescheduling event
//                 chains with occasional far-future spikes. Steady-state
//                 host heap allocations are counted with a replaced global
//                 operator new; the acceptance bar is <= 0.01 allocs/event
//                 (the old heap-of-std::function engine paid ~2).
//   pingpong    — the Figure-4 IMB ping-pong point at 4 MB on the full
//                 stack, reporting simulated bandwidth (deterministic,
//                 gated) and host events/sec (informational).
//   sweep       — UMT weak scaling to >= 256 simulated nodes in three
//                 drain modes: legacy single queue (host_workers=0),
//                 sharded sequential rounds (=1) and sharded parallel
//                 (=4). Sharded seq/par must be bit-identical (runtime and
//                 event count). Legacy runs a slightly different network
//                 arbitration (send-order ingress reservation vs the
//                 sharded arrival-order grant — see Fabric::send), so its
//                 simulated runtime only has to land in a sanity band of
//                 the sharded result; both are individually deterministic.
//
// Emits BENCH_sim_scale.json for tools/check_bench.py --suite sim_scale.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/apps/proxies.hpp"
#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// Count every host heap allocation. Replacing the global allocation
// functions is the only way to see container/coroutine-frame traffic
// without instrumenting each call site.
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace pd;
using namespace pd::time_literals;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// --------------------------------------------------------------------------
// Section 1: raw engine loop.
// --------------------------------------------------------------------------

struct LoopResult {
  std::uint64_t events = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  double steady_allocs_per_event = 0;  // replaced-operator-new truth
  std::uint64_t pool_chunks = 0;
  std::uint64_t calendar_rebuilds = 0;
  std::uint64_t overflow_parked = 0;
};

/// One self-rescheduling chain. Captured by value into the event node's
/// inline buffer: 32 bytes, trivially copyable — the steady state recycles
/// pooled nodes and never touches the host heap.
struct Chain {
  sim::Engine* e;
  std::uint64_t* remaining;
  std::uint64_t rng;
  std::uint64_t fired;
  void operator()() {
    if (*remaining == 0) return;
    --*remaining;
    ++fired;
    rng = mix(rng);
    // Mostly near-term churn; every 8192th hop is a multi-second spike that
    // detours through the overflow heap.
    const Dur d = (fired % 8192 == 0)
                      ? from_ms(2'000) + static_cast<Dur>(rng % 1000)
                      : static_cast<Dur>(rng % static_cast<std::uint64_t>(50_ns));
    e->schedule_after(d, *this);
  }
};

LoopResult run_engine_loop(std::uint64_t events) {
  constexpr int kChains = 64;
  sim::Engine engine;

  // Warmup populates the node pool and settles the calendar geometry.
  std::uint64_t warm = events / 10;
  for (int c = 0; c < kChains; ++c)
    engine.schedule_after(static_cast<Dur>(c), Chain{&engine, &warm, mix(c + 1), 0});
  engine.run();

  std::uint64_t budget = events;
  for (int c = 0; c < kChains; ++c)
    engine.schedule_after(static_cast<Dur>(c), Chain{&engine, &budget, mix(c + 101), 0});
  const std::uint64_t events0 = engine.events_processed();
  const std::uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  LoopResult r;
  r.wall_sec = seconds_since(t0);
  r.events = engine.events_processed() - events0;
  const std::uint64_t allocs = g_heap_allocs.load(std::memory_order_relaxed) - allocs0;
  r.events_per_sec = r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec : 0;
  r.steady_allocs_per_event =
      r.events > 0 ? static_cast<double>(allocs) / static_cast<double>(r.events) : 0;
  r.pool_chunks = engine.stats().pool_chunks;
  r.calendar_rebuilds = engine.stats().calendar_rebuilds;
  r.overflow_parked = engine.stats().overflow_parked;
  return r;
}

// --------------------------------------------------------------------------
// Section 2: IMB ping-pong on the full stack (Figure-4 4 MB point).
// --------------------------------------------------------------------------

struct PingPongResult {
  double mb_per_sec = 0;  // simulated — deterministic
  std::uint64_t events = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
};

PingPongResult run_pingpong(std::uint64_t bytes, int iters) {
  mpirt::ClusterOptions copts;
  copts.nodes = 2;
  copts.mode = os::OsMode::mckernel_hfi;
  copts.mcdram_bytes = 512ull << 20;
  copts.ddr_bytes = 1ull << 30;
  mpirt::Cluster cluster(copts);
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 1;
  wopts.buf_bytes = 8ull << 20;
  mpirt::MpiWorld world(cluster, wopts);

  struct Shared {
    Time t0 = 0, t1 = 0;
  } shared;
  const auto w0 = std::chrono::steady_clock::now();
  world.run([&](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.barrier();
    if (rank.id() == 0) shared.t0 = rank.world().cluster().engine().now();
    for (int i = 0; i < iters; ++i) {
      const int tag = 10 + i;
      if (rank.id() == 0) {
        co_await rank.send(1, tag, bytes);
        co_await rank.recv(1, tag + 1000, bytes);
      } else {
        co_await rank.recv(0, tag, bytes);
        co_await rank.send(0, tag + 1000, bytes);
      }
    }
    if (rank.id() == 0) shared.t1 = rank.world().cluster().engine().now();
    co_await rank.finalize();
  });

  PingPongResult r;
  r.wall_sec = seconds_since(w0);
  r.events = cluster.engine().events_processed();
  r.events_per_sec = r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec : 0;
  const double sec = to_sec(shared.t1 - shared.t0);
  r.mb_per_sec = sec > 0 ? static_cast<double>(bytes) * iters / (sec / 2.0) / 1e6 : 0;
  return r;
}

// --------------------------------------------------------------------------
// Section 3: UMT weak scaling to >= 256 simulated nodes.
// --------------------------------------------------------------------------

struct PointRun {
  double runtime_sec = 0;  // simulated solve time — deterministic
  std::uint64_t events = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  double allocs_per_event = 0;  // engine-attributed (pool/box/rebuild/frames)
  std::uint64_t rounds = 0;
  std::uint64_t cross_shard_events = 0;
};

PointRun run_umt_point(int nodes, int workers, int rpn) {
  mpirt::ClusterOptions copts;
  copts.nodes = nodes;
  copts.mode = os::OsMode::mckernel_hfi;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  copts.host_workers = workers;
  mpirt::Cluster cluster(copts);
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = rpn;
  wopts.buf_bytes = 1ull << 20;
  mpirt::MpiWorld world(cluster, wopts);
  apps::UmtParams umt;
  umt.steps = 1;

  const auto frames0 = sim::detail::frame_pool_counters();
  const auto t0 = std::chrono::steady_clock::now();
  world.run([umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });

  PointRun p;
  p.wall_sec = seconds_since(t0);
  p.runtime_sec = to_sec(world.max_solve());
  p.events = cluster.engine().events_processed();
  p.events_per_sec = p.wall_sec > 0 ? static_cast<double>(p.events) / p.wall_sec : 0;
  const sim::Engine::Stats stats = cluster.engine().stats();
  const auto frames1 = sim::detail::frame_pool_counters();
  const std::uint64_t engine_allocs = stats.pool_chunks + stats.boxed_callbacks +
                                      stats.calendar_rebuilds +
                                      (frames1.host_allocs - frames0.host_allocs);
  p.allocs_per_event =
      p.events > 0 ? static_cast<double>(engine_allocs) / static_cast<double>(p.events) : 0;
  p.rounds = stats.rounds;
  p.cross_shard_events = stats.cross_shard_events;
  return p;
}

struct SweepRow {
  int nodes = 0;
  PointRun legacy;       // host_workers = 0: single global queue
  PointRun sharded_seq;  // host_workers = 1: per-node shards, one thread
  PointRun sharded_par;  // host_workers = 4: per-node shards, 4 threads
};

}  // namespace

int main() {
  using pd::bench::quick_mode;
  pd::bench::print_banner(
      "Sim-scale — calendar-queue DES engine at paper scale",
      "O(1) scheduling, allocation-free events, sharded >= 256-node runs");

  // Section 1 — raw engine loop.
  const std::uint64_t loop_events = quick_mode() ? 200'000 : 1'000'000;
  const LoopResult loop = run_engine_loop(loop_events);
  std::printf("  engine loop: %llu events in %.3f s — %.0f events/s, "
              "%.4f host allocs/event (steady state)\n",
              static_cast<unsigned long long>(loop.events), loop.wall_sec,
              loop.events_per_sec, loop.steady_allocs_per_event);
  std::printf("               %llu pool chunks, %llu calendar rebuilds, "
              "%llu overflow parks\n",
              static_cast<unsigned long long>(loop.pool_chunks),
              static_cast<unsigned long long>(loop.calendar_rebuilds),
              static_cast<unsigned long long>(loop.overflow_parked));

  // Section 2 — ping-pong.
  const std::uint64_t pp_bytes = 4ull << 20;
  const int pp_iters = quick_mode() ? 5 : 20;
  const PingPongResult pp = run_pingpong(pp_bytes, pp_iters);
  std::printf("  ping-pong 4MB (mckernel_hfi): %.1f MB/s simulated, "
              "%llu events, %.0f events/s host\n",
              pp.mb_per_sec, static_cast<unsigned long long>(pp.events),
              pp.events_per_sec);

  // Section 3 — UMT sweep. Quick mode keeps the small point and the
  // paper-scale 256-node point (the gate requires >= 256 nodes).
  const int rpn = 8;
  const int workers = 4;
  std::vector<int> node_counts;
  for (int n : {16, 64, 256})
    if (!quick_mode() || n != 64) node_counts.push_back(n);

  std::vector<SweepRow> sweep;
  pd::TextTable table({"Nodes", "Ranks", "Sim s", "Legacy ev/s", "Seq ev/s", "Par ev/s",
                       "Par/Seq", "Rounds", "X-shard"});
  for (int n : node_counts) {
    SweepRow row;
    row.nodes = n;
    row.legacy = run_umt_point(n, 0, rpn);
    row.sharded_seq = run_umt_point(n, 1, rpn);
    row.sharded_par = run_umt_point(n, workers, rpn);
    const double speedup = row.sharded_par.wall_sec > 0
                               ? row.sharded_seq.wall_sec / row.sharded_par.wall_sec
                               : 0;
    table.add_row({std::to_string(n), std::to_string(n * rpn),
                   pd::format_double(row.sharded_seq.runtime_sec, 4),
                   pd::format_double(row.legacy.events_per_sec, 0),
                   pd::format_double(row.sharded_seq.events_per_sec, 0),
                   pd::format_double(row.sharded_par.events_per_sec, 0),
                   pd::format_double(speedup, 2),
                   std::to_string(row.sharded_par.rounds),
                   std::to_string(row.sharded_par.cross_shard_events)});
    sweep.push_back(row);
  }
  std::printf("%s\n", table.to_string().c_str());
  const SweepRow& top = sweep.back();

  std::FILE* json = std::fopen("BENCH_sim_scale.json", "w");
  if (json == nullptr) return 1;
  auto point_json = [json](const char* key, const PointRun& p, const char* trail) {
    std::fprintf(json,
                 "      \"%s\": {\"events\": %llu, \"wall_sec\": %.3f, "
                 "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f, "
                 "\"rounds\": %llu, \"cross_shard_events\": %llu}%s\n",
                 key, static_cast<unsigned long long>(p.events), p.wall_sec,
                 p.events_per_sec, p.allocs_per_event,
                 static_cast<unsigned long long>(p.rounds),
                 static_cast<unsigned long long>(p.cross_shard_events), trail);
  };
  std::fprintf(json,
               "{\n"
               "  \"workload\": {\"quick_mode\": %s, \"max_nodes\": %d, "
               "\"ranks_per_node\": %d, \"umt_steps\": 1, \"workers\": %d},\n"
               "  \"engine_loop\": {\"events\": %llu, \"wall_sec\": %.3f, "
               "\"events_per_sec\": %.0f, \"steady_allocs_per_event\": %.4f, "
               "\"pool_chunks\": %llu, \"calendar_rebuilds\": %llu, "
               "\"overflow_parked\": %llu},\n"
               "  \"pingpong\": {\"bytes\": %llu, \"iters\": %d, \"mb_per_sec\": %.1f, "
               "\"events\": %llu, \"events_per_sec\": %.0f},\n"
               "  \"sweep\": {\n",
               quick_mode() ? "true" : "false", top.nodes, rpn, workers,
               static_cast<unsigned long long>(loop.events), loop.wall_sec,
               loop.events_per_sec, loop.steady_allocs_per_event,
               static_cast<unsigned long long>(loop.pool_chunks),
               static_cast<unsigned long long>(loop.calendar_rebuilds),
               static_cast<unsigned long long>(loop.overflow_parked),
               static_cast<unsigned long long>(pp_bytes), pp_iters, pp.mb_per_sec,
               static_cast<unsigned long long>(pp.events), pp.events_per_sec);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    const double speedup = row.sharded_par.wall_sec > 0
                               ? row.sharded_seq.wall_sec / row.sharded_par.wall_sec
                               : 0;
    std::fprintf(json,
                 "    \"n%d\": {\n"
                 "      \"nodes\": %d, \"ranks\": %d, \"sim_runtime_sec\": %.6f, "
                 "\"legacy_sim_runtime_sec\": %.6f,\n",
                 row.nodes, row.nodes, row.nodes * rpn, row.sharded_seq.runtime_sec,
                 row.legacy.runtime_sec);
    point_json("legacy", row.legacy, ",");
    point_json("sharded_seq", row.sharded_seq, ",");
    point_json("sharded_par", row.sharded_par, ",");
    std::fprintf(json, "      \"par_speedup\": %.3f\n    }%s\n", speedup,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::printf("  wrote BENCH_sim_scale.json\n");

  // Acceptance 1: the event path must be allocation-free in steady state.
  if (loop.steady_allocs_per_event > 0.01) {
    std::printf("  FAIL: engine loop allocates %.4f/event (bar: 0.01)\n",
                loop.steady_allocs_per_event);
    return 1;
  }
  // Acceptance 2: determinism across drain modes, every sweep point.
  for (const SweepRow& row : sweep) {
    if (row.sharded_seq.runtime_sec != row.sharded_par.runtime_sec ||
        row.sharded_seq.events != row.sharded_par.events) {
      std::printf("  FAIL: %d-node sharded run diverges across worker counts "
                  "(%.9f s / %llu ev vs %.9f s / %llu ev)\n",
                  row.nodes, row.sharded_seq.runtime_sec,
                  static_cast<unsigned long long>(row.sharded_seq.events),
                  row.sharded_par.runtime_sec,
                  static_cast<unsigned long long>(row.sharded_par.events));
      return 1;
    }
    // Arrival-order vs send-order ingress arbitration: the two models may
    // disagree under incast races, but never wildly — a ratio outside the
    // band means a shard lost or double-counted traffic.
    const double ratio = row.legacy.runtime_sec > 0
                             ? row.sharded_seq.runtime_sec / row.legacy.runtime_sec
                             : 0;
    if (ratio < 0.7 || ratio > 1.3) {
      std::printf("  FAIL: %d-node sharded simulated runtime %.9f s vs legacy %.9f s "
                  "(ratio %.3f outside [0.7, 1.3])\n",
                  row.nodes, row.sharded_seq.runtime_sec, row.legacy.runtime_sec, ratio);
      return 1;
    }
    if (row.sharded_par.cross_shard_events == 0) {
      std::printf("  FAIL: %d-node sharded run exchanged no cross-shard events\n",
                  row.nodes);
      return 1;
    }
  }
  // Acceptance 3: the paper-scale point keeps the engine off the host heap.
  if (top.sharded_par.allocs_per_event > 0.01) {
    std::printf("  FAIL: %d-node run pays %.4f engine allocs/event (bar: 0.01)\n",
                top.nodes, top.sharded_par.allocs_per_event);
    return 1;
  }
  if (pp.mb_per_sec <= 0) {
    std::printf("  FAIL: ping-pong produced no bandwidth\n");
    return 1;
  }
  return 0;
}
