#include "src/doom/driver.hpp"

#include <algorithm>
#include <cassert>

#include "src/common/log.hpp"

namespace pd::doom {

using namespace pd::time_literals;

namespace {
// dva 0 means "unmapped" in the uapi; start the allocator one page in.
constexpr std::uint64_t kDvaBase = mem::kPage4K;
}  // namespace

DoomDriver::DoomDriver(os::LinuxKernel& linux_kernel, hw::DoomDevice& device,
                       const std::string& version)
    : linux_(linux_kernel),
      device_(device),
      layouts_(*DoomLayouts::for_version(version)),
      module_(layouts_.ship_module()) {
  const StructDef* dev_def = layouts_.structure("doom_devdata");
  assert(dev_def != nullptr);
  auto addr = linux_.kheap().kmalloc(dev_def->byte_size, alloc_cpu());
  assert(addr.ok());
  devdata_ = *addr;
  StructImage dev = image(devdata_, "doom_devdata");
  dev.write<std::uint32_t>("dev_idx", 0);
  dev.write<std::uint32_t>("ring_slots", device_.config().ring_slots);
  dev.write<std::uint64_t>("cmds_submitted", 0);
  dev.write<std::uint64_t>("fence_seq", 0);
  StructImage ring = ring_image();
  ring.write<std::uint32_t>("run_state", static_cast<std::uint32_t>(DoomRunState::running));
  ring.write<std::uint32_t>("error_flags", 0);

  ring_lock_ = std::make_unique<os::SharedSpinlock>(linux_.engine(), linux_.spinlock_abi(),
                                                    linux_.config().pico_lock_acquire);
  device_.set_completion_handler([this](std::uint64_t seq) { on_fence_retired(seq); });
  linux_.register_device(*this);
}

DoomDriver::~DoomDriver() = default;

StructImage DoomDriver::image(mem::PhysAddr addr, const char* struct_name) const {
  return StructImage(linux_.kheap().data(addr), layouts_.structure(struct_name));
}

StructImage DoomDriver::ring_image() const {
  const StructDef* dev_def = layouts_.structure("doom_devdata");
  const StructDef* ring_def = layouts_.structure("doom_ringstate");
  const FieldDef* ring_field = dev_def->field("ring");
  auto bytes = linux_.kheap().data(devdata_);
  return StructImage(bytes.subspan(ring_field->offset, ring_def->byte_size), ring_def);
}

mem::PhysAddr DoomDriver::ctx_image(const os::OpenFile& f) const { return fctx(f)->ctxdata; }

mem::VirtAddr DoomDriver::completion_callback_text() const {
  return linux_.layout().image.start + 0x5'3000;  // somewhere in Linux TEXT
}

std::uint64_t DoomDriver::alloc_dva(StructImage& ctx_img, std::uint64_t bytes) {
  const std::uint64_t cur = ctx_img.read<std::uint64_t>("dva_next");
  ctx_img.write<std::uint64_t>("dva_next", cur + mem::page_ceil(bytes, mem::kPage4K));
  return cur;
}

void DoomDriver::note_device_fault() {
  if (!device_.faulted()) return;
  StructImage ring = ring_image();
  if (ring.read<std::uint32_t>("run_state") ==
      static_cast<std::uint32_t>(DoomRunState::error))
    return;
  ring.write<std::uint32_t>("run_state", static_cast<std::uint32_t>(DoomRunState::error));
  ring.write<std::uint32_t>("error_flags", 1);
  linux_.profiler().bump("doom.device.fault");
}

sim::Task<Result<long>> DoomDriver::open(os::OpenFile& f) {
  co_await linux_.engine().delay(linux_.config().driver_open_cost);
  if (f.ctxt < 0) co_return Errno::einval;
  if (device_.context_open(f.ctxt)) co_return Errno::ebusy;

  auto ctxdata = linux_.kheap().kmalloc(layouts_.structure("doom_ctx")->byte_size, alloc_cpu());
  if (!ctxdata.ok()) co_return Errno::enomem;

  auto* ctx = new FileCtx;
  ctx->ctxdata = *ctxdata;
  f.driver_ctx = ctx;
  f.driver_ctx_dtor = [](void* p) { delete static_cast<FileCtx*>(p); };

  StructImage img = image(*ctxdata, "doom_ctx");
  img.write<std::uint32_t>("ctx_id", static_cast<std::uint32_t>(f.ctxt));
  img.write<std::uint32_t>("pt_capacity", device_.config().pt_entries_per_ctx);
  img.write<std::uint64_t>("pt_used", 0);
  img.write<std::uint64_t>("batches_submitted", 0);
  img.write<std::uint64_t>("dva_next", kDvaBase);
  co_return 0L;
}

sim::Task<Result<long>> DoomDriver::writev(os::OpenFile& f, std::span<const os::IoVec> iov) {
  // Submission is an ioctl surface on this device; there is no write path.
  (void)f;
  (void)iov;
  co_return Errno::einval;
}

sim::Task<Result<long>> DoomDriver::submit_batch(os::OpenFile& f, DoomSubmitArgs& args) {
  ++submit_batches_;
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) co_return Errno::einval;
  if (ctx->hw_ctxt < 0) co_return Errno::enodev;
  if (args.cmds.empty()) co_return Errno::einval;
  const os::Config& cfg = linux_.config();
  mem::AddressSpace& as = f.proc->as();

  note_device_fault();
  if (ring_image().read<std::uint32_t>("run_state") !=
      static_cast<std::uint32_t>(DoomRunState::running))
    co_return Errno::eio;

  // Pin every source buffer with get_user_pages — pay per 4 KiB page, like
  // the Linux driver (no page-table walk shortcut, no contiguity).
  std::uint64_t total_pages = 0;
  for (const DoomUserCmd& c : args.cmds) {
    if (c.bytes == 0) co_return Errno::einval;
    if (c.src_va == 0 && c.dva == 0) co_return Errno::einval;
    if (c.src_va != 0)
      total_pages += mem::page_ceil(c.src_va + c.bytes, mem::kPage4K) / mem::kPage4K -
                     mem::page_floor(c.src_va, mem::kPage4K) / mem::kPage4K;
  }
  co_await linux_.engine().delay(static_cast<Dur>(total_pages) * cfg.gup_per_page);

  StructImage ctx_img = image(ctx->ctxdata, "doom_ctx");
  std::vector<hw::DoomCommand> cmds;
  std::vector<mem::PinnedPages> pins;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> transient;  // dva window, len
  auto unwind = [&](Errno err) {
    for (auto& p : pins) as.put_user_pages(p);
    for (const auto& [dva, len] : transient)
      (void)device_.unmap_range(ctx->hw_ctxt, dva, len);
    return err;
  };

  std::uint64_t transient_entries = 0;
  for (const DoomUserCmd& c : args.cmds) {
    if (c.src_va == 0) {
      // Pre-mapped window (kDoomMapBuffer): reference it directly.
      cmds.push_back(hw::DoomCommand{static_cast<hw::DoomOp>(c.op), ctx->hw_ctxt,
                                     c.dva, c.bytes, 0});
      continue;
    }
    auto pinned = as.get_user_pages(c.src_va, c.bytes);
    if (!pinned.ok()) co_return unwind(pinned.error());
    const std::uint64_t off = c.src_va & (mem::kPage4K - 1);
    const std::uint64_t window = alloc_dva(ctx_img, off + c.bytes);
    // One PTE per 4 KiB frame — the Linux driver's page-at-a-time blindness.
    co_await linux_.engine().delay(static_cast<Dur>(pinned->frames.size()) *
                                   cfg.doom_pte_program);
    std::uint64_t cursor = window;
    for (const mem::PhysAddr frame : pinned->frames) {
      Status s = device_.map_pte(ctx->hw_ctxt, cursor, frame, mem::kPage4K);
      if (!s.ok()) {
        transient.emplace_back(window, cursor - window);
        pins.push_back(std::move(*pinned));
        co_return unwind(s.error() == Errno::enospc ? Errno::enospc : Errno::efault);
      }
      cursor += mem::kPage4K;
      ++pte_programs_;
      ++transient_entries;
    }
    transient.emplace_back(window, cursor - window);
    pins.push_back(std::move(*pinned));
    cmds.push_back(hw::DoomCommand{static_cast<hw::DoomOp>(c.op), ctx->hw_ctxt,
                                   window + off, c.bytes, 0});
  }
  ctx_img.write<std::uint64_t>("pt_used",
                               ctx_img.read<std::uint64_t>("pt_used") + transient_entries);
  ctx_img.write<std::uint64_t>("batches_submitted",
                               ctx_img.read<std::uint64_t>("batches_submitted") + 1);

  co_await linux_.engine().delay(cfg.doom_submit_base +
                                 static_cast<Dur>(cmds.size()) * cfg.doom_cmd_build);

  // Completion metadata in the Linux heap on this (native/proxy) path.
  auto meta = linux_.kheap().kmalloc(192, alloc_cpu());
  if (!meta.ok()) co_return unwind(Errno::enomem);

  // Ring reservation under the shared submission lock: N commands + fence.
  os::SharedSpinlock& lock = ring_lock();
  co_await lock.acquire();
  while (device_.ring_free() < cmds.size() + 1)
    co_await linux_.engine().delay(500_ns);  // ring-full backoff

  StructImage dev = image(devdata_, "doom_devdata");
  const std::uint64_t fence = dev.read<std::uint64_t>("fence_seq") + 1;
  dev.write<std::uint64_t>("fence_seq", fence);
  dev.write<std::uint64_t>("cmds_submitted",
                           dev.read<std::uint64_t>("cmds_submitted") + cmds.size());

  for (const hw::DoomCommand& c : cmds) {
    Status s = device_.push(c);
    assert(s.ok());
    (void)s;
  }
  Status s = device_.push(hw::DoomCommand{hw::DoomOp::fence, ctx->hw_ctxt, 0, 0, fence});
  assert(s.ok());
  (void)s;
  co_await linux_.engine().delay(device_.config().doorbell_cost);
  device_.doorbell();
  lock.release();

  // The fence's completion chain: driver cleanup (unpin, tear down the
  // batch's transient PTEs, kfree the metadata — all Linux-side), then the
  // user notification.
  auto* self = this;
  mem::AddressSpace* asp = &as;
  const mem::PhysAddr meta_addr = *meta;
  const mem::PhysAddr ctxdata_addr = ctx->ctxdata;
  const int hw_ctxt = ctx->hw_ctxt;
  std::vector<os::KernelCallback> chain;
  chain.push_back(os::KernelCallback{
      completion_callback_text(),
      [self, asp, pins_moved = std::move(pins), transient_moved = std::move(transient),
       transient_entries, ctxdata_addr, hw_ctxt, meta_addr] {
        for (const auto& p : pins_moved) asp->put_user_pages(p);
        for (const auto& [dva, len] : transient_moved)
          (void)self->device_.unmap_range(hw_ctxt, dva, len);
        StructImage img = self->image(ctxdata_addr, "doom_ctx");
        img.write<std::uint64_t>("pt_used",
                                 img.read<std::uint64_t>("pt_used") - transient_entries);
        (void)self->linux_.kheap().kfree(meta_addr, self->alloc_cpu());
      }});
  if (args.on_fence)
    chain.push_back(os::KernelCallback{completion_callback_text(), args.on_fence});
  register_completion(fence, std::move(chain));

  args.fence_seq = fence;
  co_return static_cast<long>(cmds.size());
}

sim::Task<Result<long>> DoomDriver::wait_fence(os::OpenFile& f, std::uint64_t seq) {
  (void)f;
  if (seq == 0) co_return Errno::einval;
  const os::Config& cfg = linux_.config();
  {
    StructImage dev = image(devdata_, "doom_devdata");
    if (seq > dev.read<std::uint64_t>("fence_seq")) co_return Errno::einval;
  }
  Dur since_check = 0;
  while (completed_upto_ < seq) {
    co_await linux_.engine().delay(cfg.doom_fence_poll);
    since_check += cfg.doom_fence_poll;
    note_device_fault();
    if (completed_upto_ >= seq) break;
    if (since_check >= cfg.doom_fence_irq_timeout) {
      since_check = 0;
      // The IRQ may have been lost: the retire register is the truth.
      if (device_.last_retired_seq() >= seq) (void)recover_completions();
    }
  }
  co_return 0L;
}

void DoomDriver::register_completion(std::uint64_t seq,
                                     std::vector<os::KernelCallback> callbacks) {
  pending_.emplace(seq, std::move(callbacks));
}

void DoomDriver::on_fence_retired(std::uint64_t seq) { (void)dispatch_upto(seq, false); }

std::uint64_t DoomDriver::recover_completions() {
  const std::uint64_t n = dispatch_upto(device_.last_retired_seq(), true);
  irqs_recovered_ += n;
  return n;
}

std::uint64_t DoomDriver::dispatch_upto(std::uint64_t seq, bool recovered) {
  std::uint64_t dispatched = 0;
  while (!pending_.empty() && pending_.begin()->first <= seq) {
    auto it = pending_.begin();
    completed_upto_ = std::max(completed_upto_, it->first);
    std::vector<os::KernelCallback> chain = std::move(it->second);
    pending_.erase(it);
    // Recovery still routes through raise_irq: the poll noticed, the bottom
    // half does the work (so text-visibility checks apply either way).
    linux_.raise_irq(std::move(chain));
    ++fences_dispatched_;
    ++dispatched;
    if (recovered) linux_.profiler().bump("doom.irq.recovered");
  }
  return dispatched;
}

sim::Task<Result<long>> DoomDriver::ioctl(os::OpenFile& f, unsigned long cmd, void* arg) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) co_return Errno::einval;
  const os::Config& cfg = linux_.config();

  switch (cmd) {
    case kDoomCreateCtx: {
      if (ctx->hw_ctxt >= 0) co_return Errno::ebusy;
      co_await linux_.engine().delay(from_us(5.0));
      Status s = device_.create_context(f.ctxt);
      if (!s.ok()) co_return s.error();
      ctx->hw_ctxt = f.ctxt;
      co_return 0L;
    }

    case kDoomMapBuffer: {
      auto* args = static_cast<DoomMapBufferArgs*>(arg);
      if (args == nullptr || args->len == 0) co_return Errno::einval;
      if (ctx->hw_ctxt < 0) co_return Errno::enodev;
      mem::AddressSpace& as = f.proc->as();
      const std::uint64_t pages =
          mem::page_ceil(args->va + args->len, mem::kPage4K) / mem::kPage4K -
          mem::page_floor(args->va, mem::kPage4K) / mem::kPage4K;
      co_await linux_.engine().delay(static_cast<Dur>(pages) * cfg.gup_per_page +
                                     static_cast<Dur>(pages) * cfg.doom_pte_program);
      auto pinned = as.get_user_pages(args->va, args->len);
      if (!pinned.ok()) co_return pinned.error();

      StructImage ctx_img = image(ctx->ctxdata, "doom_ctx");
      const std::uint64_t off = args->va & (mem::kPage4K - 1);
      const std::uint64_t window = alloc_dva(ctx_img, off + args->len);
      std::uint64_t cursor = window;
      for (const mem::PhysAddr frame : pinned->frames) {
        Status s = device_.map_pte(ctx->hw_ctxt, cursor, frame, mem::kPage4K);
        if (!s.ok()) {
          (void)device_.unmap_range(ctx->hw_ctxt, window, cursor - window);
          as.put_user_pages(*pinned);
          co_return s.error();
        }
        cursor += mem::kPage4K;
        ++pte_programs_;
      }
      ctx_img.write<std::uint64_t>("pt_used",
                                   ctx_img.read<std::uint64_t>("pt_used") + pages);
      ctx->persistent_pins.push_back(std::move(*pinned));
      args->dva = window + off;
      co_return static_cast<long>(pages);
    }

    case kDoomSubmitBatch: {
      auto* args = static_cast<DoomSubmitArgs*>(arg);
      if (args == nullptr) co_return Errno::einval;
      co_return co_await submit_batch(f, *args);
    }

    case kDoomWaitFence: {
      auto* args = static_cast<DoomWaitFenceArgs*>(arg);
      if (args == nullptr) co_return Errno::einval;
      co_return co_await wait_fence(f, args->seq);
    }

    case kDoomResetError: {
      co_await linux_.engine().delay(from_us(3.0));
      device_.reset_error();
      StructImage ring = ring_image();
      ring.write<std::uint32_t>("run_state",
                                static_cast<std::uint32_t>(DoomRunState::running));
      ring.write<std::uint32_t>("error_flags", 0);
      co_return 0L;
    }

    case kDoomInfo:
      co_await linux_.engine().delay(from_us(1.0));
      co_return 0L;

    default:
      co_return Errno::einval;
  }
}

sim::Task<Result<long>> DoomDriver::poll(os::OpenFile& f) {
  (void)f;
  co_await linux_.engine().delay(linux_.config().driver_poll_cost);
  co_return 1L;
}

sim::Task<Result<mem::PhysAddr>> DoomDriver::mmap(os::OpenFile& f, std::uint64_t len,
                                                  std::uint64_t offset) {
  (void)f;
  (void)len;
  (void)offset;
  co_return Errno::einval;  // no BAR surface in the model
}

sim::Task<Result<long>> DoomDriver::read(os::OpenFile& f, std::uint64_t len) {
  (void)f;
  (void)len;
  co_return Errno::einval;
}

sim::Task<Result<long>> DoomDriver::lseek(os::OpenFile& f, long offset, int whence) {
  (void)f;
  (void)offset;
  (void)whence;
  co_return Errno::einval;
}

sim::Task<Result<long>> DoomDriver::close(os::OpenFile& f) {
  FileCtx* ctx = fctx(f);
  if (ctx == nullptr) co_return Errno::einval;
  co_await linux_.engine().delay(from_us(8.0));
  mem::AddressSpace& as = f.proc->as();
  for (auto& p : ctx->persistent_pins) as.put_user_pages(p);
  if (ctx->hw_ctxt >= 0) (void)device_.destroy_context(ctx->hw_ctxt);
  (void)linux_.kheap().kfree(ctx->ctxdata, alloc_cpu());
  delete ctx;
  f.driver_ctx = nullptr;
  co_return 0L;
}

}  // namespace pd::doom
