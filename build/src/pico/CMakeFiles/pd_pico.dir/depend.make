# Empty dependencies file for pd_pico.
# This may be replaced when dependencies are built.
