// Scheduler equivalence properties (ISSUE 6).
//
// 1. Wheel ≡ heap: the calendar-queue engine must execute a randomized,
//    self-expanding schedule (nested events, same-time ties, far-future
//    overflow spikes) in exactly the order a reference binary heap with the
//    (t, seq) contract executes it.
// 2. Parallel ≡ sequential: a sharded engine drained by N worker threads
//    must produce the same per-shard event logs, clocks and event count as
//    the same program drained by sequential rounds (workers=1).
// 3. The same property at cluster level: a multi-node UMT proxy run under
//    `host_workers` 1 and 4 must produce bit-identical signatures.
//
// Determinism: fixed default seed, overridable with PD_PROPERTY_SEED; a
// failure prints the seed. Run with `ctest -L property`.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <string>
#include <vector>

#include "src/apps/proxies.hpp"
#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/task.hpp"

namespace pd {
namespace {

using namespace pd::time_literals;

std::uint64_t harness_seed() {
  if (const char* env = std::getenv("PD_PROPERTY_SEED"); env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return 0x51D0C0DEull;
}

std::string repro(std::uint64_t seed) {
  return "\n  reproduce with PD_PROPERTY_SEED=" + std::to_string(seed);
}

// --------------------------------------------------------------------------
// Property 1: wheel ≡ heap.
// --------------------------------------------------------------------------

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic event-tree shape shared by both schedulers: event `id`
/// fires `children(id)` follow-ups with delays spanning six decades (ties
/// at zero up to multi-second spikes that must overflow any calendar year).
Dur child_delay(std::uint64_t seed, std::uint32_t id, int k) {
  const std::uint64_t h = mix(seed ^ (static_cast<std::uint64_t>(id) << 8) ^
                              static_cast<std::uint64_t>(k));
  switch (h % 10) {
    case 0: return 0;  // same-time tie: insertion order must decide
    case 1:
    case 2:
    case 3:
    case 4: return static_cast<Dur>(mix(h) % static_cast<std::uint64_t>(50_ns));
    case 5:
    case 6:
    case 7: return static_cast<Dur>(mix(h) % static_cast<std::uint64_t>(2_us));
    case 8: return static_cast<Dur>(mix(h) % static_cast<std::uint64_t>(from_ms(1)));
    default: return static_cast<Dur>(mix(h) % static_cast<std::uint64_t>(from_ms(2'500)));
  }
}

constexpr std::uint32_t kTreeIds = 2048;  // ids below this fan out (binary tree)

int child_count(std::uint64_t seed, std::uint32_t id) {
  if (id >= kTreeIds) return 0;
  return 1 + static_cast<int>(mix(seed ^ id) % 2);  // 1 or 2 children
}

struct Fired {
  Time t;
  std::uint32_t id;
  bool operator==(const Fired&) const = default;
};

void fire_engine(sim::Engine& e, std::vector<Fired>& log, std::uint64_t seed, std::uint32_t id) {
  log.push_back({e.now(), id});
  const int kids = child_count(seed, id);
  for (int k = 0; k < kids; ++k) {
    const std::uint32_t cid = id * 2 + 1 + static_cast<std::uint32_t>(k) + kTreeIds;
    e.schedule_after(child_delay(seed, id, k),
                     [&e, &log, seed, cid] { fire_engine(e, log, seed, cid); });
  }
}

std::vector<Fired> run_reference(std::uint64_t seed, int roots) {
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::uint32_t id;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> q;
  std::uint64_t seq = 0;
  Time now = 0;
  for (int r = 0; r < roots; ++r)
    q.push({child_delay(seed, static_cast<std::uint32_t>(r), 7), seq++,
            static_cast<std::uint32_t>(r)});
  std::vector<Fired> log;
  while (!q.empty()) {
    Ev ev = q.top();
    q.pop();
    now = ev.t;
    log.push_back({now, ev.id});
    const int kids = child_count(seed, ev.id);
    for (int k = 0; k < kids; ++k) {
      const std::uint32_t cid = ev.id * 2 + 1 + static_cast<std::uint32_t>(k) + kTreeIds;
      q.push({now + child_delay(seed, ev.id, k), seq++, cid});
    }
  }
  return log;
}

void check_wheel_vs_heap(std::uint64_t seed) {
  constexpr int kRoots = 64;
  sim::Engine engine;
  std::vector<Fired> wheel_log;
  for (int r = 0; r < kRoots; ++r) {
    const auto id = static_cast<std::uint32_t>(r);
    engine.schedule_at(child_delay(seed, id, 7),
                       [&engine, &wheel_log, seed, id] { fire_engine(engine, wheel_log, seed, id); });
  }
  engine.run();
  const std::vector<Fired> heap_log = run_reference(seed, kRoots);

  ASSERT_EQ(wheel_log.size(), heap_log.size()) << repro(seed);
  for (std::size_t i = 0; i < heap_log.size(); ++i) {
    ASSERT_EQ(wheel_log[i].t, heap_log[i].t) << "at event " << i << repro(seed);
    ASSERT_EQ(wheel_log[i].id, heap_log[i].id) << "at event " << i << repro(seed);
  }
  EXPECT_EQ(engine.events_processed(), heap_log.size()) << repro(seed);
  // The multi-second spikes must actually have exercised the overflow heap.
  EXPECT_GT(engine.stats().overflow_parked, 0u) << repro(seed);
  // Every callback here fits the SBO: nothing may touch the heap box path.
  EXPECT_EQ(engine.stats().boxed_callbacks, 0u) << repro(seed);
}

TEST(PropertySim, WheelMatchesReferenceHeap) {
  const std::uint64_t seed = harness_seed();
  std::printf("wheel/heap equivalence: PD_PROPERTY_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  check_wheel_vs_heap(seed);
}

TEST(PropertySim, WheelMatchesReferenceHeapBreadth) {
  // Extra fixed seeds keep running even when PD_PROPERTY_SEED pins the main
  // property to one value.
  for (std::uint64_t seed : {0xA5A5ull, 2026ull, 0xDEC0DEull}) check_wheel_vs_heap(seed);
}

// --------------------------------------------------------------------------
// Property 2: sharded parallel ≡ sequential (engine level).
// --------------------------------------------------------------------------

struct ShardLog {
  std::vector<Fired> fired;  // one per shard: never shared across workers
};

sim::Task<> shard_driver(sim::Engine& e, std::vector<ShardLog>& logs, int shard, int shards,
                         std::uint64_t seed) {
  Rng rng(seed + static_cast<std::uint64_t>(shard) * 7919);
  const Dur lookahead = e.lookahead();
  for (std::uint32_t step = 0; step < 200; ++step) {
    co_await e.delay(static_cast<Dur>(rng.next_below(static_cast<std::uint64_t>(5_us))));
    logs[static_cast<std::size_t>(shard)].fired.push_back(
        {e.now(), step});
    if (rng.next_below(3) == 0) {
      // Cross-shard message, respecting the lookahead contract.
      const int dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(shards)));
      const Time t = e.now() + lookahead +
                     static_cast<Dur>(rng.next_below(static_cast<std::uint64_t>(10_us)));
      const std::uint32_t tag = 0x8000'0000u | (static_cast<std::uint32_t>(shard) << 16) | step;
      std::vector<ShardLog>* lg = &logs;
      sim::Engine* eng = &e;
      const auto dsts = static_cast<std::size_t>(dst);
      e.schedule_on(dst, t, [lg, eng, dsts, tag] {
        (*lg)[dsts].fired.push_back({eng->now(), tag});
      });
    }
  }
}

std::vector<ShardLog> run_sharded(std::uint64_t seed, int workers) {
  constexpr int kShards = 8;
  sim::Engine engine;
  engine.enable_sharding(kShards, workers, 10_us);
  std::vector<ShardLog> logs(kShards);
  for (int s = 0; s < kShards; ++s) {
    sim::Engine::ShardScope scope(engine, s);
    sim::spawn(engine, shard_driver(engine, logs, s, kShards, seed));
  }
  engine.run();
  EXPECT_EQ(engine.live_tasks(), 0);
  return logs;
}

void check_parallel_vs_sequential(std::uint64_t seed) {
  const std::vector<ShardLog> seq = run_sharded(seed, 1);
  const std::vector<ShardLog> par = run_sharded(seed, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t s = 0; s < seq.size(); ++s) {
    ASSERT_EQ(seq[s].fired.size(), par[s].fired.size()) << "shard " << s << repro(seed);
    for (std::size_t i = 0; i < seq[s].fired.size(); ++i) {
      ASSERT_EQ(seq[s].fired[i].t, par[s].fired[i].t)
          << "shard " << s << " event " << i << repro(seed);
      ASSERT_EQ(seq[s].fired[i].id, par[s].fired[i].id)
          << "shard " << s << " event " << i << repro(seed);
    }
  }
}

TEST(PropertySim, ShardedParallelMatchesSequential) {
  const std::uint64_t seed = harness_seed();
  std::printf("sharded par/seq equivalence: PD_PROPERTY_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  check_parallel_vs_sequential(seed);
}

// --------------------------------------------------------------------------
// Property 3: parallel ≡ sequential at cluster level (full stack).
// --------------------------------------------------------------------------

struct ClusterSig {
  double runtime_sec;
  std::uint64_t events;
  double wait_ms;
  std::uint64_t descriptors;
  bool operator==(const ClusterSig&) const = default;
};

ClusterSig run_cluster(int workers) {
  mpirt::ClusterOptions copts;
  copts.nodes = 4;
  copts.mode = os::OsMode::mckernel_hfi;
  copts.mcdram_bytes = 256ull << 20;
  copts.ddr_bytes = 1ull << 30;
  copts.host_workers = workers;
  mpirt::Cluster cluster(copts);
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 8;
  mpirt::MpiWorld world(cluster, wopts);
  apps::UmtParams umt;
  umt.steps = 1;
  world.run([umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });

  ClusterSig sig;
  sig.runtime_sec = to_sec(world.max_solve());
  sig.events = cluster.engine().events_processed();
  const mpirt::MpiStatsTable table = world.stats_table();
  const auto* wait = table.row("Waitall");
  sig.wait_ms = wait != nullptr ? wait->time_ms : 0;
  sig.descriptors = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n)
    sig.descriptors += cluster.node(n).device->total_descriptors();
  return sig;
}

TEST(PropertySim, ClusterParallelMatchesSequential) {
  const ClusterSig seq = run_cluster(1);
  const ClusterSig par = run_cluster(4);
  EXPECT_EQ(seq, par) << "sharded cluster run diverges across worker counts";
  EXPECT_GT(seq.events, 0u);
}

}  // namespace
}  // namespace pd
