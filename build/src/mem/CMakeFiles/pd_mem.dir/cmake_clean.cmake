file(REMOVE_RECURSE
  "CMakeFiles/pd_mem.dir/address_space.cpp.o"
  "CMakeFiles/pd_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/pd_mem.dir/kernel_space.cpp.o"
  "CMakeFiles/pd_mem.dir/kernel_space.cpp.o.d"
  "CMakeFiles/pd_mem.dir/kheap.cpp.o"
  "CMakeFiles/pd_mem.dir/kheap.cpp.o.d"
  "CMakeFiles/pd_mem.dir/page_table.cpp.o"
  "CMakeFiles/pd_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/pd_mem.dir/phys.cpp.o"
  "CMakeFiles/pd_mem.dir/phys.cpp.o.d"
  "CMakeFiles/pd_mem.dir/va_layout.cpp.o"
  "CMakeFiles/pd_mem.dir/va_layout.cpp.o.d"
  "libpd_mem.a"
  "libpd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
