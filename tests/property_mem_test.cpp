// Property tests over the memory subsystem composites: random
// mmap/munmap/gup sequences must conserve physical memory, keep pin
// counts balanced, and keep translations consistent, under both backing
// policies; the kernel heap must match a reference model.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/kheap.hpp"

namespace pd::mem {
namespace {

struct AsCase {
  BackingPolicy policy;
  std::uint64_t seed;
};

class AddressSpaceProperty : public testing::TestWithParam<AsCase> {};

TEST_P(AddressSpaceProperty, RandomMmapChurnConservesEverything) {
  const AsCase c = GetParam();
  PhysMap phys = PhysMap::knl(128_MiB, 256_MiB, 2);
  const std::uint64_t initial =
      phys.free_bytes(MemKind::mcdram) + phys.free_bytes(MemKind::ddr);
  Rng rng(c.seed);

  {
    AddressSpace as(phys, c.policy, MemKind::mcdram, 0x30'0000'0000ull, c.seed ^ 0xF00D);
    struct Region {
      VirtAddr va;
      std::uint64_t len;
    };
    std::vector<Region> live;
    std::vector<std::pair<Region, PinnedPages>> pinned;

    for (int step = 0; step < 600; ++step) {
      const int op = static_cast<int>(rng.next_below(10));
      if (op < 4) {  // mmap
        const std::uint64_t len = (1 + rng.next_below(512)) * kPage4K;
        auto va = as.mmap_anonymous(len, kProtRead | kProtWrite);
        if (va.ok()) live.push_back({*va, len});
      } else if (op < 7 && !live.empty()) {  // munmap a random region
        const std::size_t pick = rng.next_below(live.size());
        // Skip regions with outstanding explicit pins (driver semantics:
        // unmap while DMA-pinned is the app's bug; the model test avoids it).
        bool has_pin = false;
        for (const auto& [region, pages] : pinned)
          if (region.va == live[pick].va) has_pin = true;
        if (!has_pin) {
          ASSERT_TRUE(as.munmap(live[pick].va, live[pick].len).ok());
          live[pick] = live.back();
          live.pop_back();
        }
      } else if (op < 9 && !live.empty()) {  // gup a sub-range
        const std::size_t pick = rng.next_below(live.size());
        const Region r = live[pick];
        const std::uint64_t off = rng.next_below(r.len / kPage4K) * kPage4K;
        const std::uint64_t len = std::min<std::uint64_t>(r.len - off, 8 * kPage4K);
        auto pages = as.get_user_pages(r.va + off, len);
        ASSERT_TRUE(pages.ok());
        pinned.emplace_back(r, std::move(*pages));
      } else if (!pinned.empty()) {  // release a pin set
        const std::size_t pick = rng.next_below(pinned.size());
        as.put_user_pages(pinned[pick].second);
        pinned[pick] = std::move(pinned.back());
        pinned.pop_back();
      }

      // Invariants after every step.
      for (const auto& r : live) {
        auto t = as.translate(r.va + rng.next_below(r.len));
        ASSERT_TRUE(t.has_value()) << "live region must stay mapped";
      }
    }
    for (auto& [region, pages] : pinned) as.put_user_pages(pages);
    // Destructor releases everything still mapped.
  }
  EXPECT_EQ(phys.free_bytes(MemKind::mcdram) + phys.free_bytes(MemKind::ddr), initial)
      << "physical memory leaked or double-freed";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AddressSpaceProperty,
    testing::Values(AsCase{BackingPolicy::linux_4k, 11}, AsCase{BackingPolicy::linux_4k, 22},
                    AsCase{BackingPolicy::lwk_contig, 33},
                    AsCase{BackingPolicy::lwk_contig, 44}));

class KheapProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(KheapProperty, MatchesReferenceUnderRandomTraffic) {
  Rng rng(GetParam() * 7);
  KernelHeap heap({8, 9, 10, 11}, ForeignFreePolicy::remote_queue);
  std::map<PhysAddr, std::uint64_t> reference;  // addr → size
  std::uint64_t parked = 0;                     // on remote queues

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.next_below(10));
    if (op < 5) {  // alloc on a random owned cpu
      const std::uint64_t size = 16 + rng.next_below(512);
      auto a = heap.kmalloc(size, 8 + static_cast<int>(rng.next_below(4)));
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(reference.count(*a), 0u);
      reference[*a] = size;
      // Memory must be zeroed and writable.
      auto bytes = heap.data(*a);
      ASSERT_EQ(bytes.size(), size);
      ASSERT_EQ(bytes[0], 0);
      bytes[0] = 0xAB;
    } else if (op < 8 && !reference.empty()) {  // local free
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.next_below(reference.size())));
      ASSERT_TRUE(heap.kfree(it->first, 9).ok());
      reference.erase(it);
    } else if (!reference.empty()) {  // foreign (IRQ-side) free
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.next_below(reference.size())));
      ASSERT_TRUE(heap.kfree(it->first, /*linux cpu=*/0).ok());
      reference.erase(it);
      ++parked;
      if (rng.next_double() < 0.3) {  // occasional scheduler-tick drain
        for (int cpu : {8, 9, 10, 11}) heap.drain_remote_frees(cpu);
        parked = 0;
      }
    }
    ASSERT_EQ(heap.live_blocks(), reference.size() + parked);
  }
  for (int cpu : {8, 9, 10, 11}) heap.drain_remote_frees(cpu);
  EXPECT_EQ(heap.live_blocks(), reference.size());
  EXPECT_EQ(heap.stats().rejected_frees, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KheapProperty, testing::Values(3, 7, 31));

}  // namespace
}  // namespace pd::mem
