#include "src/os/noise.hpp"

#include <algorithm>
#include <cmath>

namespace pd::os {

Status NoiseProfile::validate(std::string* why) const {
  const auto fail = [&](const char* reason) -> Status {
    if (why != nullptr) *why = reason;
    return Errno::einval;
  };
  if (duty < 0.0 || duty >= 1.0)
    return fail("noise duty must be in [0, 1): it is the stolen fraction");
  if (daemon_period < 0 || daemon_cost < 0)
    return fail("daemon tick period/cost must be >= 0");
  if (burst_period < 0 || burst_cost < 0 || burst_cap < 0)
    return fail("burst period/cost/cap must be >= 0");
  if (burst_period > 0 && burst_cost > 0) {
    if (burst_alpha <= 1.0)
      return fail("burst_alpha must be > 1: a Pareto tail at alpha <= 1 has "
                  "infinite mean and the sweep would never converge");
    if (burst_cap > 0 && burst_cap < burst_cost)
      return fail("burst_cap must be 0 (uncapped) or >= burst_cost (the "
                  "Pareto scale is the minimum burst)");
  }
  if (stall_period < 0 || stall_cost < 0)
    return fail("stall period/cost must be >= 0");
  if (stall_period > 0 && stall_cost > 0 &&
      (stall_jitter < 0.0 || stall_jitter > 1.0))
    return fail("stall_jitter must be in [0, 1] (fraction of the period)");
  return Status::success();
}

NoiseProfile NoiseProfile::none() {
  NoiseProfile p;
  p.name = "none";
  return p;
}

NoiseProfile NoiseProfile::calibrated() {
  // The seed's nohz_full Linux model: 0.2% steady steal plus rare short
  // daemon ticks (50 ms mean gap, 10 us mean cost).
  NoiseProfile p;
  p.name = "calibrated";
  p.duty = 0.002;
  p.daemon_period = from_ms(50);
  p.daemon_cost = from_us(10);
  return p;
}

NoiseProfile NoiseProfile::daemon_storm() {
  // An untuned kernel: frequent housekeeping ticks (kworkers, ksoftirqd,
  // timer cascade) — each small, but at 1 ms mean gap some rank in a large
  // communicator is essentially always paying one.
  NoiseProfile p;
  p.name = "daemon_storm";
  p.duty = 0.002;
  p.daemon_period = from_ms(1);
  p.daemon_cost = from_us(40);
  return p;
}

NoiseProfile NoiseProfile::irq_heavy() {
  // Heavy-tailed interrupt bursts: most are ~30 us, but the Pareto tail
  // (alpha 1.6) produces rare multi-hundred-us events — the stragglers
  // that dominate max-over-ranks at scale. Capped at 2 ms so one sample
  // cannot swallow a whole sweep point.
  NoiseProfile p;
  p.name = "irq_heavy";
  p.burst_period = from_ms(4);
  p.burst_cost = from_us(30);
  p.burst_alpha = 1.6;
  p.burst_cap = from_ms(2);
  return p;
}

NoiseProfile NoiseProfile::correlated() {
  // Kernel-wide stall epochs (global TLB shootdowns, lock convoys): every
  // core of the kernel pays 150 us together roughly every 10 ms. Per-kernel
  // schedules are independent (seeded per node), so at cluster scale the
  // *nodes* straggle against each other. The epochs are deliberately rare
  // relative to a collective's compute chunks: "some node stalled this
  // iteration" then keeps growing with node count through paper scale
  // instead of saturating at a handful of nodes.
  NoiseProfile p;
  p.name = "correlated";
  p.stall_period = from_ms(10);
  p.stall_cost = from_us(150);
  p.stall_jitter = 0.5;
  return p;
}

const std::vector<NoiseProfile>& NoiseProfile::presets() {
  static const std::vector<NoiseProfile> all = {
      none(), calibrated(), daemon_storm(), irq_heavy(), correlated()};
  return all;
}

const NoiseProfile* NoiseProfile::preset(const std::string& name) {
  for (const auto& p : presets())
    if (p.name == name) return &p;
  return nullptr;
}

NoiseModel::NoiseModel(NoiseProfile profile, std::uint64_t stream_seed)
    : profile_(std::move(profile)) {
  // One SplitMix64 step decorrelates sequential node ids into well-spread
  // epoch streams.
  std::uint64_t sm = stream_seed;
  epoch_seed_ = splitmix64(sm);
}

std::uint64_t NoiseModel::stall_epochs_in(Time begin, Time end) const {
  if (profile_.stall_period <= 0 || profile_.stall_cost <= 0 || end <= begin)
    return 0;
  const auto period = static_cast<std::uint64_t>(profile_.stall_period);
  // Epoch k fires at k*period + jitter(k), jitter in [0, stall_jitter *
  // period) — a pure function of (epoch_seed_, k), so every core of this
  // kernel sees the same schedule without sharing mutable state.
  const auto jitter_of = [&](std::uint64_t k) -> std::uint64_t {
    if (profile_.stall_jitter <= 0.0) return 0;
    std::uint64_t sm = epoch_seed_ ^ (k * 0x9E3779B97F4A7C15ull);
    const double u =
        static_cast<double>(splitmix64(sm) >> 11) * 0x1.0p-53;  // [0, 1)
    return static_cast<std::uint64_t>(u * profile_.stall_jitter *
                                      static_cast<double>(period));
  };
  const auto b = static_cast<std::uint64_t>(begin);
  const auto e = static_cast<std::uint64_t>(end);
  // Epochs whose base k*period could land in [begin, end) after jitter:
  // jitter < period, so k ranges over [begin/period - 1, end/period].
  const std::uint64_t k_lo = b / period == 0 ? 0 : b / period - 1;
  const std::uint64_t k_hi = e / period;
  std::uint64_t count = 0;
  for (std::uint64_t k = k_lo; k <= k_hi; ++k) {
    const std::uint64_t t = k * period + jitter_of(k);
    if (t >= b && t < e) ++count;
  }
  return count;
}

Dur NoiseModel::inflate(Time now, Dur work, Rng& rng, Breakdown* out) const {
  if (out != nullptr) *out = Breakdown{};
  // Silent profiles must be a bit-exact no-op: no inflation *and* no RNG
  // draws, so an LWK schedule is identical whatever the Linux side does.
  if (profile_.silent() || work <= 0) return work;

  Breakdown b;
  // The independent components accumulate in one double and truncate once,
  // exactly as the seed's scalar model did — the calibrated default must be
  // bit-identical to the seed's schedules. Breakdown components truncate
  // per-source; only the returned total is schedule-bearing.
  double total = static_cast<double>(work) * (1.0 + profile_.duty);
  b.steady = static_cast<Dur>(static_cast<double>(work) * profile_.duty);

  if (profile_.daemon_period > 0 && profile_.daemon_cost > 0) {
    // Poisson-ish tick arrivals across the compute span: expected count
    // work/period, each tick exponentially distributed around its mean.
    const double expected = static_cast<double>(work) /
                            static_cast<double>(profile_.daemon_period);
    auto ticks = static_cast<std::uint32_t>(expected);
    if (rng.next_double() < expected - static_cast<double>(ticks)) ++ticks;
    b.daemon_ticks = ticks;
    double t = 0;
    for (std::uint32_t i = 0; i < ticks; ++i)
      t += rng.exponential(static_cast<double>(profile_.daemon_cost));
    b.daemon = static_cast<Dur>(t);
    total += t;
  }

  if (profile_.burst_period > 0 && profile_.burst_cost > 0) {
    const double expected = static_cast<double>(work) /
                            static_cast<double>(profile_.burst_period);
    auto bursts = static_cast<std::uint32_t>(expected);
    if (rng.next_double() < expected - static_cast<double>(bursts)) ++bursts;
    b.bursts = bursts;
    double t = 0;
    for (std::uint32_t i = 0; i < bursts; ++i) {
      // Pareto(scale = burst_cost, shape = alpha) via inverse transform;
      // next_double() < 1 keeps the base positive.
      const double u = rng.next_double();
      double len = static_cast<double>(profile_.burst_cost) *
                   std::pow(1.0 - u, -1.0 / profile_.burst_alpha);
      if (profile_.burst_cap > 0)
        len = std::min(len, static_cast<double>(profile_.burst_cap));
      t += len;
    }
    b.burst = static_cast<Dur>(t);
    total += t;
  }

  // Correlated epochs are counted over the span as already inflated by the
  // independent components: a long stall-free estimate would undercount
  // epochs the straggling core actually sits through.
  const Dur independent = static_cast<Dur>(total);
  if (profile_.stall_period > 0 && profile_.stall_cost > 0) {
    const std::uint64_t epochs = stall_epochs_in(now, now + independent);
    b.stall_epochs = static_cast<std::uint32_t>(epochs);
    b.stall = static_cast<Dur>(epochs) * profile_.stall_cost;
  }

  if (out != nullptr) *out = b;
  return independent + b.stall;
}

}  // namespace pd::os
