file(REMOVE_RECURSE
  "libpd_os.a"
)
