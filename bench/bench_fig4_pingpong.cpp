// Figure 4: MPI ping-pong bandwidth, Linux vs McKernel vs McKernel+HFI1.
//
// Paper result: McKernel reaches only ~90 % of Linux at large sizes
// (offloaded writev/ioctl in the data path); McKernel with the HFI
// PicoDriver outperforms Linux by up to ~15 % at 4 MB (10 KiB SDMA
// descriptors from physically contiguous large-page memory vs the Linux
// driver's 4 KiB PAGE_SIZE descriptors). Also verifies the §4.3
// instrumentation claim: mean descriptor size 4 KiB (Linux) vs ~10 KiB
// (PicoDriver).
#include <map>

#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mpirt/world.hpp"

namespace {

using namespace pd;
using namespace pd::time_literals;

struct PingPongResult {
  double mb_per_sec = 0;
  double avg_desc_bytes = 0;
};

PingPongResult ping_pong(os::OsMode mode, std::uint64_t bytes) {
  mpirt::ClusterOptions copts;
  copts.nodes = 2;
  copts.mode = mode;
  copts.mcdram_bytes = 512ull << 20;
  copts.ddr_bytes = 1ull << 30;
  mpirt::Cluster cluster(copts);
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 1;
  wopts.buf_bytes = 8ull << 20;  // fits the 4 MB point
  mpirt::MpiWorld world(cluster, wopts);

  const int iters = bytes >= 1_MiB ? 20 : 50;
  struct Shared {
    Time t0 = 0, t1 = 0;
  } shared;

  world.run([&](mpirt::Rank& rank) -> sim::Task<> {
    co_await rank.init();
    co_await rank.barrier();
    // Warmup exchange.
    if (rank.id() == 0) {
      co_await rank.send(1, 1, bytes);
      co_await rank.recv(1, 2, bytes);
    } else {
      co_await rank.recv(0, 1, bytes);
      co_await rank.send(0, 2, bytes);
    }
    co_await rank.barrier();
    if (rank.id() == 0) shared.t0 = rank.world().cluster().engine().now();
    for (int i = 0; i < iters; ++i) {
      const int tag = 10 + i;
      if (rank.id() == 0) {
        co_await rank.send(1, tag, bytes);
        co_await rank.recv(1, tag + 1000, bytes);
      } else {
        co_await rank.recv(0, tag, bytes);
        co_await rank.send(0, tag + 1000, bytes);
      }
    }
    if (rank.id() == 0) shared.t1 = rank.world().cluster().engine().now();
    co_await rank.finalize();
  });

  PingPongResult result;
  const double sec = to_sec(shared.t1 - shared.t0);
  // IMB PingPong convention: one-way time = round-trip / 2.
  result.mb_per_sec = sec > 0 ? static_cast<double>(bytes) * iters / (sec / 2.0) / 1e6 : 0;
  std::uint64_t descs = 0, desc_bytes = 0;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    descs += cluster.node(n).device->total_descriptors();
    desc_bytes += cluster.node(n).device->total_descriptor_bytes();
  }
  result.avg_desc_bytes = descs > 0 ? static_cast<double>(desc_bytes) / descs : 0;
  return result;
}

}  // namespace

int main() {
  bench::print_banner(
      "Figure 4 — MPI ping-pong bandwidth (MB/s)",
      "McKernel ~90% of Linux at large sizes; McKernel+HFI1 up to +15% at 4MB");

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1024; s <= 4_MiB; s *= 2) {
    if (bench::quick_mode() && s != 4096 && s != 65536 && s != 1_MiB && s != 4_MiB)
      continue;
    sizes.push_back(s);
  }

  TextTable table({"Size", "Linux MB/s", "McKernel MB/s", "McK+HFI1 MB/s", "McK/Linux",
                   "HFI/Linux"});
  std::map<os::OsMode, PingPongResult> last;
  for (const auto bytes : sizes) {
    std::map<os::OsMode, PingPongResult> res;
    for (os::OsMode mode : bench::all_modes()) res[mode] = ping_pong(mode, bytes);
    table.add_row({format_bytes(bytes),
                   format_double(res[os::OsMode::linux].mb_per_sec, 1),
                   format_double(res[os::OsMode::mckernel].mb_per_sec, 1),
                   format_double(res[os::OsMode::mckernel_hfi].mb_per_sec, 1),
                   format_double(res[os::OsMode::mckernel].mb_per_sec /
                                     res[os::OsMode::linux].mb_per_sec,
                                 3),
                   format_double(res[os::OsMode::mckernel_hfi].mb_per_sec /
                                     res[os::OsMode::linux].mb_per_sec,
                                 3)});
    last = res;
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("SDMA descriptor-size instrumentation at %s (paper §4.3):\n",
              format_bytes(sizes.back()).c_str());
  std::printf("  Linux        : %.0f bytes/descriptor (PAGE_SIZE-limited)\n",
              last[os::OsMode::linux].avg_desc_bytes);
  std::printf("  McKernel     : %.0f bytes/descriptor (same Linux driver via proxy)\n",
              last[os::OsMode::mckernel].avg_desc_bytes);
  std::printf("  McKernel+HFI1: %.0f bytes/descriptor (10 KiB max exploited)\n",
              last[os::OsMode::mckernel_hfi].avg_desc_bytes);
  return 0;
}
