#include "src/psm/endpoint.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <span>

#include "src/common/log.hpp"
#include "src/hfi/uapi.hpp"

namespace pd::psm {

using namespace pd::time_literals;

namespace {
constexpr std::uint64_t kPoisonTag = ~std::uint64_t{0};

PsmHandle make_request(sim::Engine& engine, PsmRequest::Kind kind) {
  auto h = std::make_shared<PsmRequest>();
  h->kind = kind;
  h->done = std::make_unique<sim::Latch>(engine);
  return h;
}
}  // namespace

Endpoint::Endpoint(os::Process& proc, hw::HfiDevice& local_dev, pico::HfiPicoDriver* pico)
    : proc_(proc),
      dev_(local_dev),
      pico_(pico),
      engine_(proc.kernel().engine()),
      cfg_(proc.kernel().config()) {
  stopped_ = std::make_unique<sim::Latch>(engine_);
}

Endpoint::~Endpoint() = default;

std::uint64_t Endpoint::window_bytes() const { return cfg_.expected_window; }

hw::WireMessage Endpoint::base_msg(EndpointId dst) const {
  hw::WireMessage msg;
  msg.src_node = proc_.node();
  msg.src_ctxt = proc_.ctxt();
  msg.dst_node = dst.node;
  msg.dst_ctxt = dst.ctxt;
  return msg;
}

sim::Task<Status> Endpoint::init() {
  auto fd = co_await proc_.open(hfi::kDeviceName);
  if (!fd.ok()) co_return fd.error();
  fd_ = *fd;

  // Admin handshake the real PSM performs: version read, context info,
  // user info, recv control, pkey, poll setup, and the BAR mappings (PIO
  // buffers, RcvArray doorbells, status page).
  (void)co_await proc_.lseek(fd_, 0, /*SEEK_SET=*/0);
  (void)co_await proc_.read_fd(fd_, 4096);
  (void)co_await proc_.ioctl(fd_, hfi::kGetVers, nullptr);
  (void)co_await proc_.ioctl(fd_, hfi::kCtxtInfo, nullptr);
  (void)co_await proc_.ioctl(fd_, hfi::kUserInfo, nullptr);
  (void)co_await proc_.ioctl(fd_, hfi::kRecvCtrl, nullptr);
  (void)co_await proc_.ioctl(fd_, hfi::kSetPkey, nullptr);
  (void)co_await proc_.ioctl(fd_, hfi::kPollType, nullptr);
  auto csr = co_await proc_.mmap_dev(fd_, 64 * 1024, 0);
  if (!csr.ok()) co_return csr.error();
  auto doorbells = co_await proc_.mmap_dev(fd_, 16 * 1024, 1 << 20);
  if (!doorbells.ok()) co_return doorbells.error();
  auto status_page = co_await proc_.mmap_dev(fd_, 4 * 1024, 2 << 20);
  if (!status_page.ok()) co_return status_page.error();

  // PicoDriver-side kernel mapping setup (the extra MPI_Init cost).
  if (pico_ != nullptr) co_await pico_->rank_init();

  rx_ = &dev_.open_context(proc_.ctxt());
  running_ = true;
  sim::spawn(engine_, progress_loop());
  co_return Status::success();
}

sim::Task<Status> Endpoint::finalize() {
  if (running_) {
    running_ = false;
    hw::RxEvent poison;
    poison.kind = hw::WireKind::ctrl;
    poison.match_bits = kPoisonTag;
    rx_->send(poison);
    co_await stopped_->wait();
  }
  if (fd_ >= 0) {
    (void)co_await proc_.close_fd(fd_);
    fd_ = -1;
  }
  co_return Status::success();
}

PsmHandle Endpoint::isend(EndpointId dst, std::uint64_t tag, std::uint64_t bytes,
                          mem::VirtAddr buf) {
  PsmHandle h = make_request(engine_, PsmRequest::Kind::send);
  h->tag = tag;
  h->bytes = bytes;
  h->buf = buf;
  h->peer = dst;
  h->msg_id = next_msg_id_++;
  sim::spawn(engine_, run_send(h));
  return h;
}

PsmHandle Endpoint::irecv(EndpointId src, std::uint64_t tag, std::uint64_t bytes,
                          mem::VirtAddr buf) {
  PsmHandle h = make_request(engine_, PsmRequest::Kind::recv);
  h->tag = tag;
  h->bytes = bytes;
  h->buf = buf;
  h->peer = src;

  // Check the unexpected queue first (message may have raced the post).
  auto it = std::find_if(unexpected_.begin(), unexpected_.end(), [&](const hw::RxEvent& ev) {
    return ev.match_bits == tag && ev.src_node == src.node && ev.src_ctxt == src.ctxt;
  });
  if (it != unexpected_.end()) {
    hw::RxEvent ev = *it;
    unexpected_.erase(it);
    if (ev.kind == hw::WireKind::ctrl && ev.ctrl == hw::kCtrlRts) {
      sim::spawn(engine_, handle_rts(ev, h));
    } else {
      deliver_eager(h, ev);
    }
    return h;
  }
  posted_recvs_.push_back(h);
  return h;
}

sim::Task<> Endpoint::wait(PsmHandle h) {
  if (!h->complete) {
    // The real MPI progress path visits the kernel while waiting; one
    // nanosleep per wait keeps the Figure-8/9 profile honest without
    // busy-spinning the event queue.
    co_await proc_.nanosleep(cfg_.psm_wait_sleep);
    if (!h->complete) co_await h->done->wait();
  }
}

void Endpoint::complete(PsmHandle& h) {
  h->complete = true;
  h->done->trigger();
}

void Endpoint::deliver_eager(PsmHandle recv, const hw::RxEvent& ev) {
  // Copy-out from the eager ring on the receiving CPU.
  sim::spawn(engine_, [](Endpoint* self, PsmHandle h, std::uint64_t bytes) -> sim::Task<> {
    co_await self->engine_.delay(self->cfg_.psm_matching_cost +
                                 transfer_time(bytes, self->cfg_.memcpy_bytes_per_sec));
    self->complete(h);
  }(this, std::move(recv), ev.bytes));
}

PsmHandle Endpoint::match_posted(const hw::RxEvent& ev) {
  auto it = std::find_if(posted_recvs_.begin(), posted_recvs_.end(), [&](const PsmHandle& h) {
    return h->tag == ev.match_bits && h->peer.node == ev.src_node &&
           h->peer.ctxt == ev.src_ctxt;
  });
  if (it == posted_recvs_.end()) return nullptr;
  PsmHandle h = *it;
  posted_recvs_.erase(it);
  return h;
}

sim::Task<> Endpoint::run_send(PsmHandle h) {
  if (h->bytes <= cfg_.pio_threshold) {
    // PIO: user-space copy into send buffers, no kernel involvement.
    ++pio_sends_;
    co_await engine_.delay(cfg_.pio_send_overhead +
                           transfer_time(h->bytes, cfg_.memcpy_bytes_per_sec));
    hw::WireMessage msg = base_msg(h->peer);
    msg.kind = hw::WireKind::eager;
    msg.match_bits = h->tag;
    msg.payload_bytes = h->bytes;
    msg.msg_id = h->msg_id;
    msg.seq = (h->msg_id << 8) | 0xFF;
    Status s = dev_.pio_send(msg);
    assert(s.ok());
    (void)s;
    complete(h);
    co_return;
  }

  if (h->bytes <= cfg_.sdma_threshold) {
    // Eager SDMA: one writev(); local completion via the IRQ path.
    ++eager_sends_;
    hfi::SdmaReqHeader hdr;
    hdr.wire = base_msg(h->peer);
    hdr.wire.kind = hw::WireKind::eager;
    hdr.wire.match_bits = h->tag;
    hdr.wire.msg_id = h->msg_id;
    hdr.wire.seq = (h->msg_id << 8) | 0xFE;
    Endpoint* self = this;
    PsmHandle hc = h;
    hdr.on_complete = [self, hc]() mutable { self->complete(hc); };
    // Fixed header+payload pair in the coroutine frame — no per-send
    // iovec allocation (the span overload borrows the storage).
    const std::array<os::IoVec, 2> iov{
        os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
        os::IoVec{h->buf, h->bytes}};
    auto r = co_await proc_.writev(fd_, std::span<const os::IoVec>(iov));
    if (!r.ok()) {
      PD_LOG(error) << "psm: eager writev failed: " << to_string(r.error());
      complete(h);
    }
    co_return;
  }

  // Expected (rendezvous): RTS now; windows go out as CTS grants arrive.
  ++expected_sends_;
  h->windows_total = static_cast<std::uint32_t>(
      (h->bytes + window_bytes() - 1) / window_bytes());
  active_sends_[h->msg_id] = h;
  co_await engine_.delay(cfg_.pio_send_overhead);
  hw::WireMessage rts = base_msg(h->peer);
  rts.kind = hw::WireKind::ctrl;
  rts.ctrl = hw::kCtrlRts;
  rts.match_bits = h->tag;
  rts.payload_bytes = 64;  // control packets are header-sized on the wire
  rts.msg_id = h->msg_id;
  rts.total_windows = h->windows_total;
  rts.seq = (h->msg_id << 8) | 0xFD;
  Status s = dev_.pio_send(rts);
  assert(s.ok());
  (void)s;
}

sim::Task<> Endpoint::send_window(PsmHandle h, std::uint32_t window, std::uint32_t tid) {
  const std::uint64_t offset = static_cast<std::uint64_t>(window) * window_bytes();
  const std::uint64_t len = std::min(window_bytes(), h->bytes - offset);

  hfi::SdmaReqHeader hdr;
  hdr.wire = base_msg(h->peer);
  hdr.wire.kind = hw::WireKind::expected;
  hdr.wire.match_bits = h->tag;
  hdr.wire.msg_id = h->msg_id;
  hdr.wire.window = window;
  hdr.wire.total_windows = h->windows_total;
  hdr.wire.tid = tid;
  hdr.wire.seq = (h->msg_id << 8) | window;
  Endpoint* self = this;
  PsmHandle hc = h;
  hdr.on_complete = [self, hc]() mutable {
    if (++hc->windows_completed == hc->windows_total) {
      self->active_sends_.erase(hc->msg_id);
      self->complete(hc);
    }
  };
  const std::array<os::IoVec, 2> iov{os::IoVec{reinterpret_cast<mem::VirtAddr>(&hdr), sizeof hdr},
                                     os::IoVec{h->buf + offset, len}};
  auto r = co_await proc_.writev(fd_, std::span<const os::IoVec>(iov));
  if (!r.ok()) {
    PD_LOG(error) << "psm: expected writev failed: " << to_string(r.error());
    active_sends_.erase(h->msg_id);
    complete(h);
  }
}

sim::Task<> Endpoint::handle_rts(hw::RxEvent ev, PsmHandle recv) {
  recv->msg_id = ev.msg_id;
  recv->windows_total = ev.total_windows;
  active_recvs_[RecvKey{ev.src_node, ev.src_ctxt, ev.msg_id}] = recv;
  const std::uint32_t first_batch = std::min<std::uint32_t>(
      recv->windows_total, static_cast<std::uint32_t>(cfg_.expected_concurrency));
  for (std::uint32_t w = 0; w < first_batch; ++w) co_await grant_window(recv, ev, w);
}

sim::Task<> Endpoint::grant_window(PsmHandle recv, const hw::RxEvent& rts,
                                   std::uint32_t window) {
  // Reserve the window number *before* the first suspension: grants can be
  // initiated concurrently from handle_rts and from data arrivals, and the
  // TID ioctl below may suspend for a long time (offloaded path).
  ++recv->windows_granted;
  const std::uint64_t offset = static_cast<std::uint64_t>(window) * window_bytes();
  const std::uint64_t len = std::min(window_bytes(), recv->bytes - offset);

  // Register the window's buffer with the driver (the ioctl PSM issues for
  // direct data placement).
  hfi::TidUpdateArgs args;
  args.vaddr = recv->buf + offset;
  args.length = len;
  auto r = co_await proc_.ioctl(fd_, hfi::kTidUpdate, &args);
  if (!r.ok() && r.error() == Errno::enospc) {
    // RcvArray share transiently full (lazy TID frees still draining).
    // Retry on a detached task: blocking here would stall the progress
    // loop — which is exactly what processes the arrivals whose frees
    // release entries (a livelock the real tidcache also avoids).
    sim::spawn(engine_,
               [](Endpoint* self, PsmHandle rv, hw::RxEvent rts_copy,
                  std::uint32_t w, std::uint64_t vaddr, std::uint64_t length) -> sim::Task<> {
                 hfi::TidUpdateArgs retry;
                 retry.vaddr = vaddr;
                 retry.length = length;
                 Result<long> rr = Errno::enospc;
                 for (int attempt = 0; attempt < 20000; ++attempt) {
                   co_await self->engine_.delay(5'000'000);  // 5 µs backoff
                   retry.tids.clear();
                   rr = co_await self->proc_.ioctl(self->fd_, hfi::kTidUpdate, &retry);
                   if (rr.ok() || rr.error() != Errno::enospc) break;
                 }
                 if (!rr.ok()) {
                   PD_LOG(error) << "psm: TID_UPDATE failed: " << to_string(rr.error());
                   co_return;
                 }
                 co_await self->finish_grant(std::move(rv), rts_copy, w,
                                             std::move(retry.tids));
               }(this, std::move(recv), rts, window, args.vaddr, args.length));
    co_return;
  }
  if (!r.ok()) {
    PD_LOG(error) << "psm: TID_UPDATE failed: " << to_string(r.error());
    co_return;
  }
  co_await finish_grant(std::move(recv), rts, window, std::move(args.tids));
}

sim::Task<> Endpoint::finish_grant(PsmHandle recv, const hw::RxEvent& rts,
                                   std::uint32_t window, std::vector<std::uint32_t> tids) {
  recv->window_tids[window] = tids;

  // CTS back to the sender (PIO control packet).
  co_await engine_.delay(cfg_.pio_send_overhead);
  hw::WireMessage cts = base_msg(EndpointId{rts.src_node, rts.src_ctxt});
  cts.kind = hw::WireKind::ctrl;
  cts.ctrl = hw::kCtrlCts;
  cts.match_bits = recv->tag;
  cts.msg_id = rts.msg_id;
  cts.window = window;
  cts.tid = tids.empty() ? 0 : tids.front();
  cts.seq = (rts.msg_id << 8) | (0x80u + window);
  Status s = dev_.pio_send(cts);
  assert(s.ok());
  (void)s;
}

sim::Task<> Endpoint::handle_expected_data(hw::RxEvent ev) {
  const RecvKey key{ev.src_node, ev.src_ctxt, ev.msg_id};
  auto it = active_recvs_.find(key);
  if (it == active_recvs_.end()) {
    PD_LOG(warn) << "psm: expected data for unknown rendezvous src=" << ev.src_node << "/"
              << ev.src_ctxt << " msg=" << ev.msg_id << " win=" << ev.window << "/"
              << ev.total_windows << " tag=" << ev.match_bits << " bytes=" << ev.bytes
              << " me=" << proc_.node() << "/" << proc_.ctxt();
    co_return;
  }
  PsmHandle recv = it->second;

  // Direct data placement — no copy. Free the window's TIDs *lazily*, off
  // the window critical path (PSM2's TID cache defers deregistration the
  // same way); the ioctl still runs and still shows up in the kernel
  // profile, it just doesn't gate the next window grant.
  auto tids = recv->window_tids.find(ev.window);
  if (tids != recv->window_tids.end()) {
    sim::spawn(engine_, [](Endpoint* self, std::vector<std::uint32_t> list) -> sim::Task<> {
      hfi::TidFreeArgs free_args;
      free_args.tids = std::move(list);
      (void)co_await self->proc_.ioctl(self->fd_, hfi::kTidFree, &free_args);
    }(this, std::move(tids->second)));
    recv->window_tids.erase(tids);
  }
  ++recv->windows_received;

  // Keep the pipeline full: grant the next ungranted window, if any.
  if (recv->windows_granted < recv->windows_total) {
    hw::RxEvent rts_like = ev;  // addressing fields are what grant needs
    co_await grant_window(recv, rts_like, recv->windows_granted);
  }

  if (recv->windows_received == recv->windows_total) {
    active_recvs_.erase(key);
    complete(recv);
  }
}

sim::Task<> Endpoint::progress_loop() {
  while (true) {
    hw::RxEvent ev = co_await rx_->recv();
    if (!running_ && ev.match_bits == kPoisonTag) break;
    co_await engine_.delay(cfg_.psm_progress_poll);

    switch (ev.kind) {
      case hw::WireKind::ctrl:
        if (ev.ctrl == hw::kCtrlRts) {
          co_await engine_.delay(cfg_.psm_matching_cost);
          if (PsmHandle recv = match_posted(ev); recv != nullptr) {
            co_await handle_rts(ev, recv);
          } else {
            unexpected_.push_back(ev);
          }
        } else if (ev.ctrl == hw::kCtrlCts) {
          auto it = active_sends_.find(ev.msg_id);
          if (it != active_sends_.end()) {
            // Serialized through the (single-threaded) progress path, as
            // in the real library.
            co_await send_window(it->second, ev.window, ev.tid);
          }
        }
        break;
      case hw::WireKind::eager: {
        co_await engine_.delay(cfg_.psm_matching_cost);
        if (PsmHandle recv = match_posted(ev); recv != nullptr) {
          co_await engine_.delay(transfer_time(ev.bytes, cfg_.memcpy_bytes_per_sec));
          complete(recv);
        } else {
          unexpected_.push_back(ev);
        }
        break;
      }
      case hw::WireKind::expected:
        co_await handle_expected_data(ev);
        break;
    }
  }
  stopped_->trigger();
}

}  // namespace pd::psm
