file(REMOVE_RECURSE
  "CMakeFiles/sweep_cluster.dir/sweep_cluster.cpp.o"
  "CMakeFiles/sweep_cluster.dir/sweep_cluster.cpp.o.d"
  "sweep_cluster"
  "sweep_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
