// Ablation: what the LWK's large-page / contiguous-physical-memory policy
// is worth (§3.4). Run the PicoDriver fast path against an LWK address
// space forced to the Linux-style scattered-4KiB backing: physical
// contiguity disappears, and with it the big descriptors.
//
// (The model keeps the LWK pinning guarantee in both cases, so the
// difference isolated here is purely contiguity/descriptor size.)
#include "bench/bench_common.hpp"
#include "src/common/units.hpp"
#include "src/mem/address_space.hpp"
#include "src/mem/phys.hpp"

int main() {
  using namespace pd;
  using namespace pd::mem;
  bench::print_banner("Ablation — LWK backing policy vs SDMA descriptor shape",
                      "contiguous large-page backing is what enables 10 KiB descriptors");

  TextTable table({"Backing policy", "2MiB-leaf fraction (8MiB map)",
                   "Extents for 1MiB @10KiB cap", "Mean extent bytes"});
  for (BackingPolicy policy : {BackingPolicy::lwk_contig, BackingPolicy::linux_4k}) {
    PhysMap phys = PhysMap::knl(512ull << 20, 1ull << 30, 2);
    AddressSpace as(phys, policy, MemKind::mcdram, 0x2000'0000ull, 42);
    // A large mapping shows the page-size policy; a 1 MiB sub-range of it
    // feeds the extent walk (the SDMA descriptor build).
    auto va = as.mmap_anonymous(8_MiB, kProtRead | kProtWrite);
    if (!va.ok()) return 1;
    auto extents = as.physical_extents(*va, 1_MiB, 10240);
    if (!extents.ok()) return 1;
    std::uint64_t total = 0;
    for (const auto& e : *extents) total += e.len;
    table.add_row({policy == BackingPolicy::lwk_contig ? "LWK contiguous (McKernel)"
                                                       : "scattered 4KiB (Linux-like)",
                   format_double(as.large_page_fraction(), 2),
                   std::to_string(extents->size()),
                   format_double(static_cast<double>(total) / extents->size(), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("ceil(1MiB/10KiB) = 103 extents is the contiguous optimum;\n"
              "scattered backing degenerates to one extent per 4 KiB page (256).\n");
  return 0;
}
