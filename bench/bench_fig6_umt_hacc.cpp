// Figure 6: UMT2013 (a) and HACC (b) weak scaling, relative to Linux.
//
// Paper result: both run at par with Linux on one node, but multi-node
// plain McKernel collapses — UMT2013 to below 20 % of Linux beyond 4
// nodes, HACC to ~71 % on average — because every sweep/exchange message
// pays offloaded writev/ioctl through 4 contended service CPUs. With the
// HFI PicoDriver both beat Linux by up to ~20 %.
#include "bench/app_figure.hpp"

int main() {
  using namespace pd;
  using namespace pd::apps;

  bench::print_banner("Figure 6a — UMT2013 weak scaling (32 ranks/node)",
                      "McKernel < 20% of Linux beyond 4 nodes; McKernel+HFI1 up to +20%");
  UmtParams umt;
  bench::AppFigureSpec umt_spec{
      "UMT2013", kUmtRpn, 1ull << 20,
      [umt](mpirt::Rank& r) { return umt_rank(r, umt); }};
  bench::print_app_figure(umt_spec, bench::node_axis(256));

  bench::print_banner("Figure 6b — HACC weak scaling (32 ranks/node)",
                      "McKernel ~71% of Linux on average; McKernel+HFI1 wins");
  HaccParams hacc;
  bench::AppFigureSpec hacc_spec{
      "HACC", kHaccRpn, 2ull << 20,
      [hacc](mpirt::Rank& r) { return hacc_rank(r, hacc); }};
  bench::print_app_figure(hacc_spec, bench::node_axis(128));
  return 0;
}
