#include "src/os/kernel.hpp"

#include <cassert>

#include "src/common/log.hpp"

namespace pd::os {

Kernel::Kernel(sim::Engine& engine, const Config& cfg, std::string name,
               mem::KernelLayout layout, NoiseProfile noise_profile,
               std::uint64_t noise_stream_seed)
    : engine_(engine),
      cfg_(cfg),
      name_(std::move(name)),
      layout_(std::move(layout)),
      noise_(std::move(noise_profile), noise_stream_seed) {}

Dur Kernel::noisy_duration(Dur work, Rng& rng) const {
  return noise_.inflate(engine_.now(), work, rng);
}

sim::Task<> Kernel::compute(Dur work, Rng& rng) {
  NoiseModel::Breakdown b;
  const Dur total = noise_.inflate(engine_.now(), work, rng, &b);
  // Counters only (bump, never record): the timed rows are the Figure 8/9
  // syscall profiles and must not absorb scheduler noise.
  if (b.total() > 0) {
    profiler_.bump("os.noise.time_ns", static_cast<std::uint64_t>(b.total()));
    if (b.steady > 0)
      profiler_.bump("os.noise.steady_ns", static_cast<std::uint64_t>(b.steady));
    if (b.daemon_ticks > 0) {
      profiler_.bump("os.noise.daemon_ticks", b.daemon_ticks);
      profiler_.bump("os.noise.daemon_ns", static_cast<std::uint64_t>(b.daemon));
    }
    if (b.bursts > 0) {
      profiler_.bump("os.noise.bursts", b.bursts);
      profiler_.bump("os.noise.burst_ns", static_cast<std::uint64_t>(b.burst));
    }
    if (b.stall_epochs > 0) {
      profiler_.bump("os.noise.stall_epochs", b.stall_epochs);
      profiler_.bump("os.noise.stall_ns", static_cast<std::uint64_t>(b.stall));
    }
  }
  co_await engine_.delay(total);
}

LinuxKernel::LinuxKernel(sim::Engine& engine, const Config& cfg, int node)
    : Kernel(engine, cfg, "linux", mem::linux_layout(), cfg.linux_noise,
             cfg.noise_seed ^ (0x11AAull + static_cast<std::uint64_t>(node) *
                                               0x9E3779B97F4A7C15ull)) {
  service_cpus_ = std::make_unique<sim::Resource>(
      engine, static_cast<std::size_t>(cfg.linux_service_cpus));
  // Linux owns the service CPUs (ids 0 .. linux_service_cpus-1). Like the
  // LWK heap, the Linux kheap is NUMA-aware: the topology spans the whole
  // node so service-loop allocations land on the serving CPU's socket and
  // cross-kernel frees carry their true source socket.
  std::vector<int> cpus;
  for (int i = 0; i < cfg.linux_service_cpus; ++i) cpus.push_back(i);
  const mem::NumaTopology topo =
      mem::NumaTopology::blocked(cfg.cores_per_node, cfg.numa_per_kind);
  kheap_ = std::make_unique<mem::KernelHeap>(
      std::move(cpus), mem::ForeignFreePolicy::remote_queue, topo,
      mem::PartitionBudget{cfg.kheap_near_bytes, cfg.kheap_far_bytes},
      mem::PlacementPolicy::numa_aware,
      /*heap_base=*/0x0000'00F8'0000'0000ull);
  service_cpu_count_ = cfg.linux_service_cpus;
}

Status LinuxKernel::adopt_service_cpu(int cpu) {
  // The service set stays the prefix [0, count): the transport's loop l
  // runs on service CPU l, so cores join and leave at the top only.
  if (cpu != service_cpu_count_) return Errno::einval;
  if (const Status s = kheap_->adopt_cpu(cpu); !s.ok()) return s;
  service_cpus_->grow(1);
  ++service_cpu_count_;
  return Status::success();
}

Status LinuxKernel::yield_service_cpu(int cpu) {
  if (service_cpu_count_ <= 1) return Errno::ebusy;
  if (cpu != service_cpu_count_ - 1) return Errno::einval;
  if (const Status s = kheap_->release_cpu(cpu); !s.ok()) return s;
  service_cpus_->shrink(1);
  --service_cpu_count_;
  // IRQ rotation must stay inside the shrunk pool.
  next_irq_cpu_ %= service_cpu_count_;
  if (current_irq_cpu_ >= service_cpu_count_) current_irq_cpu_ = 0;
  return Status::success();
}

void LinuxKernel::register_device(CharDevice& dev) { devices_[dev.dev_name()] = &dev; }

CharDevice* LinuxKernel::device(const std::string& name) {
  auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : it->second;
}

Status LinuxKernel::reserve_vmap_area(const mem::VaRange& range) {
  // vmap_area reservations must fall inside the module space and must not
  // collide with existing reservations.
  if (!layout().module_space.contains_range(range)) return Errno::einval;
  for (const auto& r : vmap_reservations_)
    if (r.overlaps(range)) return Errno::eexist;
  vmap_reservations_.push_back(range);
  return Status::success();
}

bool LinuxKernel::text_visible(mem::VirtAddr text) const {
  if (layout().image.contains(text)) return true;
  for (const auto& r : vmap_reservations_)
    if (r.contains(text)) return true;
  return false;
}

Status LinuxKernel::invoke(const KernelCallback& cb) {
  if (!text_visible(cb.text)) {
    ++callback_faults_;
    PD_LOG(error) << "linux: callback text 0x" << std::hex << cb.text
                  << " not mapped — would fault";
    return Errno::efault;
  }
  if (cb.fn) cb.fn();
  return Status::success();
}

void LinuxKernel::raise_irq(std::vector<KernelCallback> callbacks) {
  sim::spawn(engine_, irq_task(std::move(callbacks)));
}

sim::Task<> LinuxKernel::irq_task(std::vector<KernelCallback> callbacks) {
  // Device interrupts are serviced by the Linux service CPUs (McKernel
  // never fields them, paper §3.3).
  co_await service_cpus_->acquire();
  co_await engine_.delay(config().irq_handler);
  ++irqs_handled_;
  // Rotate IRQ affinity across the pool, like irqbalance would; set
  // immediately before the callbacks with no suspension in between, so
  // current_irq_cpu() is stable for the whole callback chain even with
  // several IRQ tasks interleaving.
  current_irq_cpu_ = next_irq_cpu_;
  next_irq_cpu_ = (next_irq_cpu_ + 1) % service_cpu_count_;
  for (const auto& cb : callbacks) (void)invoke(cb);
  service_cpus_->release();
}

}  // namespace pd::os
