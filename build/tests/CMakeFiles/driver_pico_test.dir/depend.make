# Empty dependencies file for driver_pico_test.
# This may be replaced when dependencies are built.
