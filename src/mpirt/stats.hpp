// MPI-call profiling à la Intel MPI's I_MPI_STATS (used for Table 1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/time.hpp"

namespace pd::mpirt {

/// Per-rank accumulator of time spent inside each MPI call.
class MpiStats {
 public:
  void record(const std::string& call, Dur elapsed) {
    auto& e = calls_[call];
    e.total += elapsed;
    ++e.count;
  }

  /// Tag which algorithm a collective ran ("Allreduce" → "ring", ...), à la
  /// I_MPI_ADJUST: the noise sweep and the crossover property tests both
  /// need to know what actually executed, not what the knobs suggest.
  void record_algo(const std::string& call, const std::string& algo) {
    ++algos_[call + "/" + algo];
  }
  const std::map<std::string, std::uint64_t>& algos() const { return algos_; }

  void set_runtime(Dur runtime) { runtime_ = runtime; }
  Dur runtime() const { return runtime_; }

  /// Solve-region bracket (the figure-of-merit window: excludes Init/
  /// Finalize, as the mini-apps' own FOMs do).
  void set_solve(Dur solve) { solve_ = solve; }
  Dur solve() const { return solve_ > 0 ? solve_ : runtime_; }

  Dur total_mpi_time() const {
    Dur t = 0;
    for (const auto& [name, e] : calls_) t += e.total;
    return t;
  }

  struct Entry {
    Dur total = 0;
    std::uint64_t count = 0;
  };
  const std::map<std::string, Entry>& calls() const { return calls_; }

 private:
  std::map<std::string, Entry> calls_;
  std::map<std::string, std::uint64_t> algos_;
  Dur runtime_ = 0;
  Dur solve_ = 0;
};

/// Cluster-wide aggregation: Time summed over ranks (the paper's Table 1
/// convention), %MPI of total MPI time, %Rt of total runtime.
struct MpiStatsRow {
  std::string call;        // e.g. "Wait" (MPI_ prefix implied)
  double time_ms = 0;      // cumulative over all ranks
  double pct_mpi = 0;
  double pct_runtime = 0;
  std::uint64_t count = 0;
};

class MpiStatsTable {
 public:
  void add_rank(const MpiStats& stats);

  /// Rows sorted by descending cumulative time; `top` = 0 for all.
  std::vector<MpiStatsRow> rows(std::size_t top = 0) const;
  const MpiStatsRow* row(const std::string& call) const;

  double total_mpi_ms() const { return to_ms(total_mpi_); }
  double total_runtime_ms() const { return to_ms(total_runtime_); }

  /// Cluster-wide "call/algo" → invocation counts (summed over ranks).
  const std::map<std::string, std::uint64_t>& algo_counts() const {
    return algo_counts_;
  }
  std::uint64_t algo_count(const std::string& call, const std::string& algo) const {
    auto it = algo_counts_.find(call + "/" + algo);
    return it == algo_counts_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, MpiStats::Entry> merged_;
  std::map<std::string, std::uint64_t> algo_counts_;
  Dur total_mpi_ = 0;
  Dur total_runtime_ = 0;
  mutable std::vector<MpiStatsRow> cache_;
};

}  // namespace pd::mpirt
