#include "src/common/log.hpp"

#include <cstdio>
#include <mutex>

namespace pd::log_detail {

LogLevel& global_level() {
  static LogLevel level = LogLevel::warn;
  return level;
}

void emit(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  const char* tag = "?";
  switch (level) {
    case LogLevel::trace: tag = "T"; break;
    case LogLevel::debug: tag = "D"; break;
    case LogLevel::info: tag = "I"; break;
    case LogLevel::warn: tag = "W"; break;
    case LogLevel::error: tag = "E"; break;
    case LogLevel::off: return;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace pd::log_detail
