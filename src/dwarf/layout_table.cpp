#include "src/dwarf/layout_table.hpp"

#include <algorithm>

namespace pd::dwarf {

const FieldDef* StructDef::field(const std::string& fname) const {
  auto it = std::find_if(fields.begin(), fields.end(),
                         [&](const FieldDef& f) { return f.name == fname; });
  return it == fields.end() ? nullptr : &*it;
}

void apply_shifts(std::vector<StructDef>& structs, const std::vector<VersionShift>& shifts) {
  for (const auto& shift : shifts) {
    for (auto& s : structs) {
      if (s.name != shift.struct_name) continue;
      s.byte_size += shift.delta;
      for (auto& f : s.fields)
        if (f.offset >= shift.from_offset) f.offset += shift.delta;
    }
  }
  // Embedded-struct fields inherit the (possibly grown) size of their type.
  for (auto& s : structs) {
    for (auto& f : s.fields) {
      if (f.type_name.rfind("struct ", 0) != 0) continue;
      const std::string inner = f.type_name.substr(7);
      for (const auto& t : structs)
        if (t.name == inner) f.size = t.byte_size;
    }
  }
}

}  // namespace pd::dwarf
