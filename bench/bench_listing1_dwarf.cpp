// Listing 1 + §3.2: regenerate the dwarf-extract-struct output for the
// HFI sdma_state structure from the shipped module binary — for every
// driver release the repository models — and report the porting effort
// (extraction wall time: "on the order of hours" in the paper becomes
// milliseconds when the tool drives it).
#include <chrono>

#include "bench/bench_common.hpp"
#include "src/dwarf/extract.hpp"
#include "src/hfi/layouts.hpp"

int main() {
  using namespace pd;
  bench::print_banner("Listing 1 — DWARF-extracted sdma_state header",
                      "padded-union header generated from module debug info only");

  for (const char* version : {"10.8-0", "10.9-5", "11.0-2"}) {
    auto layouts = hfi::DriverLayouts::for_version(version);
    if (!layouts.ok()) continue;
    const auto t0 = std::chrono::steady_clock::now();
    const dwarf::ModuleBinary module = layouts->ship_module();
    static const std::vector<std::uint8_t> kNoStr;
    const auto* str = module.section(".debug_str");
    auto view = dwarf::DebugInfoView::parse(*module.section(".debug_abbrev"),
                                            *module.section(".debug_info"),
                                            str != nullptr ? *str : kNoStr);
    if (!view.ok()) {
      std::printf("parse failed for %s\n", version);
      return 1;
    }
    auto header = dwarf::extract_struct_header(
        *view, "sdma_state", {"current_state", "go_s99_running", "previous_state"});
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!header.ok()) {
      std::printf("extraction failed for %s\n", version);
      return 1;
    }
    std::printf("--- driver %s (extracted in %.3f ms) ---\n%s\n", version, ms,
                header->c_str());
  }
  std::printf(
      "Porting effort across vendor releases: re-run the extraction, done\n"
      "(paper: \"with the DWARF based header generation the porting effort\n"
      "has been on the order of hours\").\n");
  return 0;
}
