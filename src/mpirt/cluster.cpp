#include "src/mpirt/cluster.hpp"

#include <cassert>

namespace pd::mpirt {

Cluster::Cluster(ClusterOptions opts) : opts_(std::move(opts)) {
  if (opts_.host_workers > 0 && opts_.nodes > 1)
    engine_.enable_sharding(opts_.nodes, opts_.host_workers, opts_.fabric.wire_latency);
  fabric_ = std::make_unique<hw::Fabric>(engine_, opts_.nodes, opts_.fabric);
  nodes_.reserve(static_cast<std::size_t>(opts_.nodes));
  for (int i = 0; i < opts_.nodes; ++i) {
    // Everything a node spawns (SDMA engines, IKC service loops, watchdog
    // timers) lives on that node's shard.
    sim::Engine::ShardScope shard(engine_, i);
    Node node;
    node.phys = std::make_unique<mem::PhysMap>(
        mem::PhysMap::knl(opts_.mcdram_bytes, opts_.ddr_bytes, opts_.cfg.numa_per_kind));
    node.device = std::make_unique<hw::HfiDevice>(engine_, *fabric_, i, opts_.hfi);
    // Each node's kernels get their own correlated-stall noise stream: the
    // `correlated` profile makes nodes straggle against each other, not
    // stall the whole cluster in lockstep.
    node.linux_kernel = std::make_unique<os::LinuxKernel>(engine_, opts_.cfg, i);
    node.driver = std::make_unique<hfi::HfiDriver>(*node.linux_kernel, *node.device,
                                                   opts_.driver_version);
    if (opts_.mode != os::OsMode::linux) {
      node.ihk = std::make_unique<os::Ihk>(engine_, opts_.cfg, *node.linux_kernel,
                                           node.phys.get());
      node.mck = std::make_unique<os::McKernel>(
          engine_, opts_.cfg, *node.ihk, opts_.mode == os::OsMode::mckernel_hfi, i);
      if (opts_.mode == os::OsMode::mckernel_hfi) {
        auto pico = pico::HfiPicoDriver::create(*node.mck, *node.driver);
        assert(pico.ok() && "PicoDriver bind must succeed with the unified layout");
        node.pico = std::move(*pico);
      }
    }
    nodes_.push_back(std::move(node));
  }
}

std::unique_ptr<os::Process> Cluster::make_process(int node_id, int ctxt) {
  Node& n = node(node_id);
  const std::uint64_t seed =
      0xC0FFEEull + static_cast<std::uint64_t>(node_id) * 1000003ull +
      static_cast<std::uint64_t>(ctxt);
  if (opts_.mode == os::OsMode::linux)
    return std::make_unique<os::Process>(*n.linux_kernel, *n.phys, node_id, ctxt, seed);
  return std::make_unique<os::Process>(*n.mck, *n.phys, node_id, ctxt, seed);
}

os::SyscallProfiler Cluster::app_kernel_profile() const {
  os::SyscallProfiler total;
  for (const auto& n : nodes_) {
    if (n.mck)
      total.merge(n.mck->profiler());
    else
      total.merge(n.linux_kernel->profiler());
  }
  return total;
}

}  // namespace pd::mpirt
