// FastPathPort: the device-independent half of every PicoDriver.
//
// The first PicoDriver (HFI) accreted a set of mechanisms that have nothing
// to do with SDMA: the bind-and-ABI-check entry flow, registration of
// fast-path ops with the LWK, per-open-file extent caches with a per-process
// quota and pin-aware LRU eviction, the remote-free drain piggybacked on
// fast-path entry, slab-magazine completion metadata, the duplicated-text
// cleanup callback that frees LWK memory from a Linux IRQ, and the
// "pico.*" profiler counter namespace. The second device class (pd-doom)
// needs every one of them, so they live here and both drivers inherit:
//
//   HfiPicoDriver  : public FastPathPort  — fast writev + TID ioctls
//   DoomPicoDriver : public FastPathPort  — fast batched submit ioctl
//
// The contract: a port owns a PicoBinding, installs os::FastPathOps for
// exactly the commands it accelerates, falls back to the Linux driver when
// the device is unhealthy or the ring stays full (counted through
// count_fallback / count_ring_full_fallback so every device reports
// fallbacks the same way), and translates user buffers through
// extent_cache_for() so all devices share the cache policy and its
// "pico.extent_cache.*" counters.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <utility>
#include <vector>

#include "src/mem/extent_cache.hpp"
#include "src/pico/framework.hpp"

namespace pd::pico {

/// Pooled vectors with capacity kept warm: the steady-state fast path
/// builds descriptors/commands into a recycled buffer instead of
/// allocating. Each derived driver owns one arena per payload type.
template <typename T>
class BufferArena {
 public:
  std::vector<T> take() {
    if (pool_.empty()) return {};
    std::vector<T> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();
    return buf;
  }
  void recycle(std::vector<T>&& buf) {
    if (pool_.size() < kPooledBuffers) pool_.push_back(std::move(buf));
  }

 private:
  static constexpr std::size_t kPooledBuffers = 64;
  std::vector<std::vector<T>> pool_;
};

class FastPathPort {
 public:
  virtual ~FastPathPort();

  FastPathPort(const FastPathPort&) = delete;
  FastPathPort& operator=(const FastPathPort&) = delete;

  const PicoBinding& binding() const { return binding_; }

  /// Per-rank initialization cost (kernel-level mapping setup); PSM calls
  /// this from its init path — the extra MPI_Init time in Table 1.
  sim::Task<> rank_init();

  /// --- shared instrumentation (same names on every device) ---------------
  std::uint64_t fallbacks() const { return fallbacks_; }
  std::uint64_t ring_full_fallbacks() const { return ring_full_fallbacks_; }
  std::uint64_t remote_frees_drained() const { return drained_total_; }
  std::uint64_t extent_cache_hits() const { return cache_hits_; }
  std::uint64_t extent_cache_misses() const { return cache_misses_; }
  std::uint64_t extent_cache_range_invalidations() const { return cache_range_invalidations_; }
  std::uint64_t extent_cache_generation_overflows() const { return cache_generation_overflows_; }
  std::uint64_t extent_cache_small_evictions() const { return cache_small_evictions_; }
  /// Whole file caches dropped to keep a process inside
  /// `Config::pico_extent_quota_files` (own-LRU only; see extent_cache_for).
  std::uint64_t extent_cache_file_quota_evictions() const {
    return cache_file_quota_evictions_;
  }
  /// Quota-eviction candidates passed over because an in-flight fast path
  /// held pinned entries in them (the eviction falls to the next-coldest
  /// owned cache; all-pinned overflows the quota until a pin drops).
  std::uint64_t extent_cache_quota_skip_pinned() const {
    return cache_quota_skip_pinned_;
  }
  /// All re-walks of a known key, whatever proved it stale.
  std::uint64_t extent_cache_invalidations() const {
    return cache_range_invalidations_ + cache_generation_overflows_;
  }

 protected:
  FastPathPort(PicoBinding binding, os::McKernel& mck);

  /// The shared entry flow: PicoBinding::bind against the shipped module,
  /// then the §3.3 lock-ABI check against the driver's submission lock
  /// (pass nullptr when the device has no shared lock). Forwards bind
  /// errors; ENOSYS on ABI mismatch.
  static Result<PicoBinding> bind_checked(os::McKernel& mck, os::LinuxKernel& linux_kernel,
                                          const dwarf::ModuleBinary& module,
                                          const std::vector<StructRequest>& requests,
                                          const os::SharedSpinlock* submission_lock);

  /// Install this port's ops as the device's LWK fast path.
  void install(os::CharDevice& dev, os::FastPathOps ops);

  /// Scheduler-tick housekeeping piggybacked on fast-path entry: reclaim
  /// blocks the Linux IRQ side queued for our cores.
  void piggyback_drain() { drained_total_ += mck_.drain_remote_frees(); }

  int lwk_cpu_for(const os::Process& proc) const;

  /// Per-open-file translation cache (keyed by process identity + fd so a
  /// recycled OpenFile slot can never alias a previous file's entries).
  mem::ExtentCache& extent_cache_for(const os::OpenFile& f);
  /// Record a lookup outcome in the local counters and the LWK profiler.
  void note_cache_outcome(mem::ExtentCache::Outcome outcome);

  /// Fallback accounting: every fallback to the Linux path, and the
  /// ring-stayed-full subset (which also lands on the profiler).
  void count_fallback() { ++fallbacks_; }
  void count_ring_full_fallback();

  /// Completion metadata off the LWK heap's per-core slab magazines, with
  /// the placement/reuse profiler notes every device reports identically.
  Result<mem::PhysAddr> kmalloc_meta(std::size_t bytes, int cpu);
  /// The duplicated cleanup callback (§3.3): LWK TEXT, runs on a Linux IRQ
  /// CPU, frees the metadata through the remote-free queue.
  os::KernelCallback remote_free_cleanup(mem::PhysAddr meta_addr);

  PicoBinding binding_;
  os::McKernel& mck_;

 private:
  /// Per-file cache plus its position in the recency list, so a touch is
  /// an O(1) splice instead of an O(n) find+rotate.
  using FileKey = std::pair<const void*, int>;
  struct FileCacheNode {
    mem::ExtentCache cache;
    std::list<FileKey>::iterator order_pos;
  };
  std::map<FileKey, FileCacheNode> file_caches_;
  // Touch order (front = coldest) for the per-process file-cache quota.
  std::list<FileKey> file_cache_order_;

  std::uint64_t fallbacks_ = 0;
  std::uint64_t ring_full_fallbacks_ = 0;
  std::uint64_t drained_total_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_range_invalidations_ = 0;
  std::uint64_t cache_generation_overflows_ = 0;
  std::uint64_t cache_small_evictions_ = 0;
  std::uint64_t cache_file_quota_evictions_ = 0;
  std::uint64_t cache_quota_skip_pinned_ = 0;
};

}  // namespace pd::pico
