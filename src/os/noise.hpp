// OS-noise profiles (the paper's §4.1 "nohz_full Linux vs noise-free LWK"
// argument, generalized).
//
// The seed modelled Linux-side noise as one steady duty factor plus a
// single Poisson daemon process. That is enough to show *that* Linux cores
// jitter, but not *how* the jitter shape interacts with collectives at
// scale — which is the paper's actual claim: every Linux-side detour is a
// straggler the whole communicator waits on, so the McKernel advantage
// grows with rank count. `NoiseProfile` makes the shape explicit:
//
//   * steady duty        — uniform background steal (timekeeping, RCU);
//   * periodic daemon    — Poisson tick arrivals, exponential tick cost
//     ticks                 (kworkers, ksoftirqd; the seed's model);
//   * heavy-tailed IRQ   — Poisson burst arrivals whose cost is Pareto
//     bursts                distributed (alpha > 1), optionally capped —
//                           the rare-but-huge events that dominate the
//                           max over N ranks;
//   * correlated stalls  — kernel-wide epochs (one jittered schedule per
//                           kernel instance, seeded) at which *every* core
//                           of that kernel stalls together: cross-core
//                           lock convoys, global TLB shootdowns.
//
// A `NoiseModel` (one per kernel) owns the correlated epoch schedule; the
// independent components draw from the calling process's own RNG stream so
// runs stay bit-reproducible. A silent profile never touches the RNG — the
// LWK's schedule is bit-identical whether the Linux side is noise-free or
// storming, which is what the zero-noise regression pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/status.hpp"
#include "src/common/time.hpp"

namespace pd::os {

struct NoiseProfile {
  /// Profile id, tagged into bench rows and profiler counter namespaces.
  std::string name = "calibrated";

  // --- steady background steal --------------------------------------------
  double duty = 0.0;  // fraction of compute stolen uniformly

  // --- periodic daemon ticks ----------------------------------------------
  Dur daemon_period = 0;  // mean gap between ticks (0 = off)
  Dur daemon_cost = 0;    // mean tick length (exponential)

  // --- heavy-tailed interrupt bursts --------------------------------------
  Dur burst_period = 0;      // mean gap between bursts (0 = off)
  Dur burst_cost = 0;        // Pareto scale: the minimum burst length
  double burst_alpha = 2.5;  // Pareto tail index; must be > 1 (finite mean)
  Dur burst_cap = 0;         // hard cap per burst (0 = uncapped)

  // --- correlated cross-core stalls ---------------------------------------
  Dur stall_period = 0;       // epoch spacing (0 = off)
  Dur stall_cost = 0;         // stall length every core pays per epoch
  double stall_jitter = 0.5;  // epoch offset jitter, fraction of the period

  /// True when the profile injects nothing (and must not consume RNG).
  bool silent() const {
    return duty == 0.0 && (daemon_period <= 0 || daemon_cost <= 0) &&
           (burst_period <= 0 || burst_cost <= 0) &&
           (stall_period <= 0 || stall_cost <= 0);
  }

  /// EINVAL with `why` on degenerate knobs (negative durations, a Pareto
  /// tail with infinite mean, jitter outside [0, 1]).
  Status validate(std::string* why = nullptr) const;

  /// --- presets (the bench_noise_sweep axis) -------------------------------
  static NoiseProfile none();          // injects nothing
  static NoiseProfile calibrated();    // the seed's nohz_full Linux model
  static NoiseProfile daemon_storm();  // untuned-kernel tick storm
  static NoiseProfile irq_heavy();     // heavy-tailed interrupt bursts
  static NoiseProfile correlated();    // kernel-wide stall epochs
  /// All presets above, `none` first.
  static const std::vector<NoiseProfile>& presets();
  /// Preset by name, nullptr when unknown.
  static const NoiseProfile* preset(const std::string& name);
};

/// Per-kernel noise injector. The independent components (duty, daemon
/// ticks, bursts) are sampled from the calling process's RNG; the
/// correlated stall epochs come from the model's own deterministic
/// schedule, derived from (profile, stream seed) — every core asking about
/// the same simulated window sees the same epochs.
class NoiseModel {
 public:
  /// What one inflation injected, by source (simulated time, plus event
  /// counts) — the caller folds this into its profiler counters.
  struct Breakdown {
    Dur steady = 0;
    Dur daemon = 0;
    Dur burst = 0;
    Dur stall = 0;
    std::uint32_t daemon_ticks = 0;
    std::uint32_t bursts = 0;
    std::uint32_t stall_epochs = 0;
    Dur total() const { return steady + daemon + burst + stall; }
  };

  NoiseModel(NoiseProfile profile, std::uint64_t stream_seed);

  const NoiseProfile& profile() const { return profile_; }

  /// Inflate `work` starting at simulated time `now`. Silent profiles
  /// return `work` exactly and never touch `rng`.
  Dur inflate(Time now, Dur work, Rng& rng, Breakdown* out = nullptr) const;

  /// The deterministic correlated-stall epoch count inside [begin, end):
  /// exposed so tests can pin that two cores agree on the schedule.
  std::uint64_t stall_epochs_in(Time begin, Time end) const;

 private:
  NoiseProfile profile_;
  std::uint64_t epoch_seed_;
};

}  // namespace pd::os
