// Simulated-time representation shared by every subsystem.
//
// The discrete-event engine needs a time base fine enough that transferring
// a single byte over a 100 Gb/s link is representable: picoseconds. A signed
// 64-bit picosecond counter covers ~106 days of simulated time, far beyond
// any scenario in this repository.
#pragma once

#include <cstdint>

namespace pd {

/// Absolute simulated time (picoseconds since simulation start).
using Time = std::int64_t;

/// A span of simulated time (picoseconds).
using Dur = std::int64_t;

namespace time_literals {

constexpr Dur operator""_ps(unsigned long long v) { return static_cast<Dur>(v); }
constexpr Dur operator""_ns(unsigned long long v) { return static_cast<Dur>(v) * 1'000; }
constexpr Dur operator""_us(unsigned long long v) { return static_cast<Dur>(v) * 1'000'000; }
constexpr Dur operator""_ms(unsigned long long v) { return static_cast<Dur>(v) * 1'000'000'000; }
constexpr Dur operator""_s(unsigned long long v) { return static_cast<Dur>(v) * 1'000'000'000'000; }

}  // namespace time_literals

/// Build a duration from fractional nanoseconds (cost constants are most
/// naturally written in ns).
constexpr Dur from_ns(double ns) { return static_cast<Dur>(ns * 1e3); }
constexpr Dur from_us(double us) { return static_cast<Dur>(us * 1e6); }
constexpr Dur from_ms(double ms) { return static_cast<Dur>(ms * 1e9); }

constexpr double to_ns(Dur d) { return static_cast<double>(d) / 1e3; }
constexpr double to_us(Dur d) { return static_cast<double>(d) / 1e6; }
constexpr double to_ms(Dur d) { return static_cast<double>(d) / 1e9; }
constexpr double to_sec(Dur d) { return static_cast<double>(d) / 1e12; }

/// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole picosecond
/// so back-to-back transfers never collapse to zero duration.
constexpr Dur transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0.0) return 0;
  const double ps = static_cast<double>(bytes) * 1e12 / bytes_per_sec;
  const Dur whole = static_cast<Dur>(ps);
  // Round up, but tolerate floating-point dust so exact divisions (used in
  // tests and calibration math) stay exact.
  const double frac = ps - static_cast<double>(whole);
  return whole + (frac > 1e-6 ? 1 : 0);
}

}  // namespace pd
