#include "src/mem/kheap.hpp"

#include <algorithm>
#include <cstring>

namespace pd::mem {

KernelHeap::KernelHeap(std::vector<int> owned_cpus, ForeignFreePolicy policy, PhysAddr heap_base)
    : owned_cpus_(std::move(owned_cpus)), policy_(policy), next_addr_(heap_base) {}

bool KernelHeap::owns_cpu(int cpu) const {
  return std::find(owned_cpus_.begin(), owned_cpus_.end(), cpu) != owned_cpus_.end();
}

Result<PhysAddr> KernelHeap::kmalloc(std::uint64_t size, int cpu) {
  if (size == 0) return Errno::einval;
  if (!owns_cpu(cpu)) return Errno::eperm;
  Block block;
  block.size = size;
  block.owner_cpu = cpu;
  block.bytes = std::make_unique<std::uint8_t[]>(size);
  std::memset(block.bytes.get(), 0, size);

  const PhysAddr addr = next_addr_;
  next_addr_ = page_ceil(next_addr_ + size, 64);  // 64-byte (cacheline) spacing
  blocks_.emplace(addr, std::move(block));
  ++stats_.allocs;
  stats_.bytes_live += size;
  return addr;
}

Status KernelHeap::kfree(PhysAddr addr, int cpu) {
  auto it = blocks_.find(addr);
  if (it == blocks_.end()) return Errno::einval;

  if (owns_cpu(cpu)) {
    stats_.bytes_live -= it->second.size;
    ++stats_.local_frees;
    blocks_.erase(it);
    return Status::success();
  }

  if (policy_ == ForeignFreePolicy::fail) {
    // Original McKernel: the per-core free list for `cpu` does not exist.
    ++stats_.rejected_frees;
    return Errno::eperm;
  }

  // PicoDriver extension: park the block on the owner core's remote queue.
  remote_free_queues_[it->second.owner_cpu].push_back(addr);
  ++stats_.remote_frees;
  return Status::success();
}

std::size_t KernelHeap::drain_remote_frees(int cpu) {
  auto qit = remote_free_queues_.find(cpu);
  if (qit == remote_free_queues_.end()) return 0;
  std::size_t drained = 0;
  while (!qit->second.empty()) {
    const PhysAddr addr = qit->second.front();
    qit->second.pop_front();
    auto it = blocks_.find(addr);
    if (it != blocks_.end()) {
      stats_.bytes_live -= it->second.size;
      blocks_.erase(it);
      ++drained;
    }
  }
  return drained;
}

std::span<std::uint8_t> KernelHeap::data(PhysAddr addr) {
  auto it = blocks_.find(addr);
  if (it == blocks_.end()) return {};
  return {it->second.bytes.get(), it->second.size};
}

std::size_t KernelHeap::remote_queue_depth(int cpu) const {
  auto it = remote_free_queues_.find(cpu);
  return it == remote_free_queues_.end() ? 0 : it->second.size();
}

}  // namespace pd::mem
