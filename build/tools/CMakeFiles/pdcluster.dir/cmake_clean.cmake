file(REMOVE_RECURSE
  "CMakeFiles/pdcluster.dir/pdcluster.cpp.o"
  "CMakeFiles/pdcluster.dir/pdcluster.cpp.o.d"
  "pdcluster"
  "pdcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
