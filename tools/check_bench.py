#!/usr/bin/env python3
"""Bench regression gate for the fast-path cache + offload-storm harness.

Reruns ``bench_fastpath_cache`` (which embeds the offload-storm harness that
produces the ``ikc_batch`` and ``reply_ring`` rows) in a scratch directory and
compares the fresh BENCH_fastpath.json against the committed baseline.  Any
gated metric that regresses by more than ``--tolerance`` (default 15%) fails
the run.

Only host-speed-independent metrics are gated: simulated-time results
(queueing p95s, offloads per simulated ms, wakeup accounting) are
deterministic, and ratios of host-timed runs (speedup, hit rates,
allocations per op) are robust to how fast the runner happens to be.  Raw
``ops_per_sec`` / ``iters_per_sec`` numbers are reported but never gated —
they measure the CI machine, not the code.

Usage:
  python3 tools/check_bench.py --bench build/bench/bench_fastpath_cache \
      --baseline BENCH_fastpath.json [--tolerance 0.15] [--quick]

Exit status: 0 if the bench binary passed its own acceptance checks and no
gated metric regressed; 1 otherwise.  Stdlib only — no third-party imports.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

# Each gate: (dotted JSON path, direction, absolute epsilon).
#
# direction "higher" — a drop below baseline*(1-tol) fails;
# direction "lower"  — a rise above baseline*(1+tol) fails.
# The epsilon widens the band for near-zero baselines (15% of 0.000 is 0).
GATES = [
    # Fast-path cache squeeze (ratios of host-timed loops — speed-independent).
    ("speedup", "higher", 0.0),
    ("baseline.heap_allocs_per_op", "lower", 0.5),
    ("optimized.heap_allocs_per_op", "lower", 0.01),
    # Range-precise invalidation keeps the persistent window hot.
    ("mixed_lifetime.precise.window_hit_rate", "higher", 0.01),
    # NUMA-aware drain batching bounds cross-socket traffic.
    ("numa_drain.numa_aware.cross_socket_drains_per_iter", "lower", 0.5),
    # Offload storm, simulated time: ring transport vs the legacy closed form.
    ("ikc_batch.ring.offloads_per_ms", "higher", 0.0),
    ("ikc_batch.ring.queue_p95_us", "lower", 1.0),
    ("ikc_batch.ring.degraded", "lower", 0.5),
    ("ikc_batch.ring.timeouts", "lower", 0.5),
    # Reply rings: the return path must keep saving ~1 wakeup per round trip
    # without giving back queueing latency.
    ("reply_ring.latch.wakeups_per_offload", "lower", 0.05),
    ("reply_ring.ring.wakeups_per_offload", "lower", 0.05),
    ("reply_ring.ring.queue_p95_us", "lower", 1.0),
    ("reply_ring.wakeups_saved_per_offload", "higher", 0.05),
]

# Reported for context but never gated (host-speed dependent).
INFORMATIONAL = [
    "baseline.ops_per_sec",
    "optimized.ops_per_sec",
    "mixed_lifetime.precise.iters_per_sec",
    "numa_drain.numa_aware.iters_per_sec",
]


def lookup(doc: dict, dotted: str):
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def check(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    failures = []
    print(f"{'metric':56s} {'baseline':>12s} {'current':>12s}  verdict")
    print("-" * 96)
    for path, direction, eps in GATES:
        base = lookup(baseline, path)
        cur = lookup(fresh, path)
        if base is None:
            # Metric absent from the committed baseline (older schema): the
            # fresh value becomes the de-facto baseline next time the JSON is
            # committed, so just report it.
            print(f"{path:56s} {'(new)':>12s} {cur!s:>12s}  SKIP (no baseline)")
            continue
        if cur is None:
            failures.append(f"{path}: missing from fresh bench output")
            print(f"{path:56s} {base!s:>12s} {'(gone)':>12s}  FAIL (missing)")
            continue
        base_f, cur_f = float(base), float(cur)
        if direction == "higher":
            limit = base_f * (1.0 - tolerance) - eps
            ok = cur_f >= limit
            bound = f">= {limit:.3f}"
        else:
            limit = base_f * (1.0 + tolerance) + eps
            ok = cur_f <= limit
            bound = f"<= {limit:.3f}"
        verdict = "ok" if ok else f"FAIL ({bound})"
        print(f"{path:56s} {base_f:12.3f} {cur_f:12.3f}  {verdict}")
        if not ok:
            failures.append(
                f"{path}: {cur_f:.3f} vs baseline {base_f:.3f} (allowed {bound})")
    print("-" * 96)
    for path in INFORMATIONAL:
        base = lookup(baseline, path)
        cur = lookup(fresh, path)
        print(f"{path:56s} {base!s:>12s} {cur!s:>12s}  (informational)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", required=True,
                    help="path to the bench_fastpath_cache binary")
    ap.add_argument("--baseline", default="BENCH_fastpath.json",
                    help="committed baseline JSON (default: BENCH_fastpath.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative regression (default: 0.15 = 15%%)")
    ap.add_argument("--outdir", default="bench-out",
                    help="scratch directory the bench runs in (default: bench-out)")
    ap.add_argument("--quick", action="store_true",
                    help="set PD_QUICK=1 (smaller sweep; simulated metrics then "
                         "use different workload sizes, so only compare against "
                         "a quick-mode baseline)")
    args = ap.parse_args()

    bench = os.path.abspath(args.bench)
    if not os.path.exists(bench):
        print(f"error: bench binary not found: {bench}", file=sys.stderr)
        return 1
    with open(args.baseline) as f:
        baseline = json.load(f)

    # Run in a scratch dir so the bench's BENCH_fastpath.json output cannot
    # clobber the committed baseline we are comparing against.
    os.makedirs(args.outdir, exist_ok=True)
    env = dict(os.environ)
    if args.quick:
        env["PD_QUICK"] = "1"
    print(f"running {bench} (cwd={args.outdir})...")
    proc = subprocess.run([bench], cwd=args.outdir, env=env)
    if proc.returncode != 0:
        print(f"error: bench binary failed its own acceptance checks "
              f"(exit {proc.returncode})", file=sys.stderr)
        return 1

    fresh_path = os.path.join(args.outdir, "BENCH_fastpath.json")
    with open(fresh_path) as f:
        fresh = json.load(f)

    if bool(lookup(fresh, "workload.quick_mode")) != bool(
            lookup(baseline, "workload.quick_mode")):
        print("warning: quick_mode differs between baseline and fresh run; "
              "simulated metrics use different workload sizes and the gate "
              "may misfire", file=sys.stderr)

    failures = check(baseline, fresh, args.tolerance)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(f"\nOK: all gated metrics within {args.tolerance:.0%} of baseline "
          f"({args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
