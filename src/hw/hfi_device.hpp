// The Host Fabric Interface device model: PIO send path, 16 SDMA engines,
// the RcvArray, and per-context receive queues with chunk reassembly.
//
// The device knows nothing about kernels or drivers: it takes descriptor
// lists and raises completion callbacks. Which CPU fields the "IRQ" — and
// what that costs — is decided by whoever registered the callback (the
// Linux driver model routes it through the node's IRQ controller).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/status.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/sync.hpp"
#include "src/hw/fabric.hpp"
#include "src/hw/rcv_array.hpp"
#include "src/hw/sdma.hpp"

namespace pd::hw {

/// What a receive context sees when a message has fully arrived.
struct RxEvent {
  WireKind kind = WireKind::ctrl;
  std::uint64_t match_bits = 0;
  std::uint64_t bytes = 0;
  int src_node = 0;
  int src_ctxt = 0;
  std::uint32_t tid = 0;
  // Rendezvous fields copied from the wire header (see wire.hpp).
  std::uint64_t msg_id = 0;
  std::uint32_t window = 0;
  std::uint32_t total_windows = 0;
  std::uint8_t ctrl = kCtrlNone;
};

struct HfiConfig {
  int num_sdma_engines = 16;
  SdmaConfig sdma = {};
  std::uint32_t rcv_array_entries = 32768;
  std::uint64_t pio_max_bytes = 8192;  // largest single PIO packet
  mem::PhysAddr csr_base = 0x0000'00E0'0000'0000ull;  // device BAR (mmap target)
  std::uint64_t csr_size = 16ull << 20;
};

class HfiDevice {
 public:
  HfiDevice(sim::Engine& engine, Fabric& fabric, int node_id, HfiConfig config = {});

  int node_id() const { return node_id_; }
  const HfiConfig& config() const { return config_; }

  /// --- send side -------------------------------------------------------
  /// Programmed I/O: the caller has already paid the CPU store cost; the
  /// device forwards one chunk. EINVAL above pio_max_bytes.
  Status pio_send(const WireMessage& msg);

  int num_engines() const { return static_cast<int>(engines_.size()); }
  SdmaEngine& engine(int id) { return *engines_.at(static_cast<std::size_t>(id)); }
  /// Round-robin engine selection (the driver's reserve step).
  int pick_engine();

  /// --- expected receive -------------------------------------------------
  RcvArray& rcv_array() { return rcv_array_; }
  const RcvArray& rcv_array() const { return rcv_array_; }

  /// --- receive contexts --------------------------------------------------
  /// A context must be opened before traffic addressed to it arrives.
  sim::Channel<RxEvent>& open_context(int ctxt);
  void close_context(int ctxt);
  bool context_open(int ctxt) const { return contexts_.count(ctxt) > 0; }

  /// Aggregate descriptor-size instrumentation across all engines
  /// (verifies the 4 KiB vs 10 KiB request-size claim).
  std::uint64_t total_descriptors() const;
  std::uint64_t total_descriptor_bytes() const;
  std::uint64_t rx_messages() const { return rx_messages_; }
  std::uint64_t dropped_messages() const { return dropped_; }

 private:
  void on_chunk(const WireChunk& chunk);

  sim::Engine& engine_;
  Fabric& fabric_;
  int node_id_;
  HfiConfig config_;
  std::vector<std::unique_ptr<SdmaEngine>> engines_;
  RcvArray rcv_array_;
  int next_engine_ = 0;

  std::map<int, std::unique_ptr<sim::Channel<RxEvent>>> contexts_;
  // Reassembly state: (src_node, src_ctxt, seq) -> bytes seen so far.
  std::map<std::tuple<int, int, std::uint64_t>, std::uint64_t> partial_;
  std::uint64_t rx_messages_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pd::hw
