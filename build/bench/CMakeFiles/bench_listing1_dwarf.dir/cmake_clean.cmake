file(REMOVE_RECURSE
  "CMakeFiles/bench_listing1_dwarf.dir/bench_listing1_dwarf.cpp.o"
  "CMakeFiles/bench_listing1_dwarf.dir/bench_listing1_dwarf.cpp.o.d"
  "bench_listing1_dwarf"
  "bench_listing1_dwarf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing1_dwarf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
