file(REMOVE_RECURSE
  "libpd_hw.a"
)
