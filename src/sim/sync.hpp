// Synchronization primitives for simulated processes.
//
//   Latch    — one-shot broadcast event (completion notification).
//   Channel  — unbounded FIFO with awaitable receive (IKC message queues).
//   Resource — counted FIFO semaphore (models exclusive/limited hardware
//              or CPU service capacity; the Linux-CPU offload contention in
//              the paper is a Resource with `linux_cpus` units).
//
// All primitives schedule resumptions through the engine queue instead of
// resuming inline, so a trigger/release never reenters the caller and
// event ordering stays strictly time/sequence based.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "src/sim/engine.hpp"

namespace pd::sim {

/// One-shot broadcast: waiters before trigger() suspend, waiters after
/// proceed immediately. Reusable objects should use Channel instead.
class Latch {
 public:
  explicit Latch(Engine& engine) : engine_(&engine) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) engine_->schedule_resume(0, h);
    waiters_.clear();
  }

  struct Awaiter {
    Latch& latch;
    bool await_ready() const noexcept { return latch.triggered_; }
    void await_suspend(std::coroutine_handle<> h) { latch.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

 private:
  Engine* engine_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel. send() never blocks; recv() suspends until an
/// item arrives. Items are handed to waiters in FIFO order.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T item) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(item);
      engine_->schedule_resume(0, w.h);
      return;
    }
    items_.push_back(std::move(item));
  }

  std::size_t pending() const { return items_.size(); }
  std::size_t waiting_receivers() const { return waiters_.size(); }

  struct Awaiter {
    Channel& ch;
    std::optional<T> slot;

    bool await_ready() {
      if (ch.items_.empty()) return false;
      slot = std::move(ch.items_.front());
      ch.items_.pop_front();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch.waiters_.push_back(Waiter{h, &slot});
    }
    T await_resume() {
      assert(slot.has_value());
      return std::move(*slot);
    }
  };
  Awaiter recv() { return Awaiter{*this, std::nullopt}; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };

  Engine* engine_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

/// Counted FIFO semaphore. acquire(n) suspends until n units are free and
/// grants strictly in arrival order (no barging), which makes queueing
/// delay under contention reproducible. Capacity is elastic: grow() adds
/// units immediately, shrink() retires them — taking free units first and
/// absorbing the remainder as debt out of future release() calls, so a
/// unit currently held is never yanked from under its holder.
class Resource {
 public:
  Resource(Engine& engine, std::size_t capacity) : engine_(&engine), free_(capacity), capacity_(capacity) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return free_; }
  std::size_t queue_length() const { return waiters_.size(); }
  /// Units shrink() could not take from the free pool: retired lazily as
  /// their current holders release them.
  std::size_t shrink_debt() const { return debt_; }

  /// Add `n` units at runtime (a CPU handed to this pool). Queued waiters
  /// are granted immediately, in arrival order.
  void grow(std::size_t n) {
    capacity_ += n;
    free_ += n;
    grant();
  }

  /// Retire `n` units at runtime (a CPU leaving this pool). Units are taken
  /// from the free pool when possible; units currently held become debt and
  /// are retired by the next release() calls instead of re-entering the
  /// pool. Returns false (untouched) when `n` exceeds the capacity.
  bool shrink(std::size_t n) {
    if (n > capacity_) return false;
    capacity_ -= n;
    const std::size_t from_free = std::min(free_, n);
    free_ -= from_free;
    debt_ += n - from_free;
    return true;
  }

  struct Awaiter {
    Resource& res;
    std::size_t n;
    bool await_ready() {
      // FIFO: even if units are free, queued waiters go first.
      if (res.waiters_.empty() && res.free_ >= n) {
        res.free_ -= n;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      res.waiters_.push_back(Waiter{h, n});
    }
    void await_resume() const noexcept {}
  };
  Awaiter acquire(std::size_t n = 1) {
    assert(n <= capacity_);
    return Awaiter{*this, n};
  }

  void release(std::size_t n = 1) {
    // Shrink debt eats released units before they re-enter the pool: the
    // holder of a retired unit finishes its work, then the unit vanishes.
    const std::size_t absorbed = std::min(debt_, n);
    debt_ -= absorbed;
    n -= absorbed;
    if (n == 0) return;
    free_ += n;
    assert(free_ <= capacity_);
    grant();
  }

  /// RAII unit holder for the common acquire-1/release-1 pattern.
  class Hold {
   public:
    explicit Hold(Resource& res) : res_(&res) {}
    Hold(Hold&& o) noexcept : res_(std::exchange(o.res_, nullptr)) {}
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;
    Hold& operator=(Hold&&) = delete;
    ~Hold() {
      if (res_ != nullptr) res_->release(1);
    }

   private:
    Resource* res_;
  };

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::size_t n;
  };

  void grant() {
    while (!waiters_.empty() && waiters_.front().n <= free_) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      free_ -= w.n;
      engine_->schedule_resume(0, w.h);
    }
  }

  Engine* engine_;
  std::size_t free_;
  std::size_t capacity_;
  std::size_t debt_ = 0;  // held units shrink() is still owed
  std::deque<Waiter> waiters_;
};

}  // namespace pd::sim
