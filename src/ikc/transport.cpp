#include "src/ikc/transport.hpp"

#include <cstdlib>
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace pd::ikc {

namespace {

int depth_bucket(std::size_t depth) {
  if (depth <= 1) return 0;
  if (depth <= 2) return 1;
  if (depth <= 4) return 2;
  if (depth <= 8) return 3;
  if (depth <= 16) return 4;
  if (depth <= 32) return 5;
  return 6;
}

constexpr const char* kBucketLabels[IkcTransport::kDepthBuckets] = {
    "le1", "le2", "le4", "le8", "le16", "le32", "gt32"};

/// Why a parked consumer's wake channel was poked.
constexpr int kWakeDoorbell = 0;
constexpr int kWakeSelfDrain = 1;
constexpr int kWakeDeadline = 2;
constexpr int kWakeDeath = 3;

}  // namespace

QueueingSummary summarize_queueing(const Samples& samples) {
  QueueingSummary s;
  s.count = samples.count();
  if (s.count == 0) return s;
  s.mean_us = samples.mean();
  s.p50_us = samples.percentile(50);
  s.p95_us = samples.percentile(95);
  // Exact max, not percentile(100): per-job samples are a bounded reservoir
  // and the true maximum must survive eviction.
  s.max_us = samples.max();
  return s;
}

IkcTransport::IkcTransport(sim::Engine& engine, const os::Config& cfg,
                           sim::Resource& service_cpus, os::SyscallProfiler& profiler,
                           Samples& queueing_us, std::string lock_abi, mem::PhysMap* phys)
    : engine_(engine),
      cfg_(cfg),
      service_cpus_(service_cpus),
      prof_(profiler),
      queueing_us_(queueing_us),
      phys_(phys),
      topo_(mem::NumaTopology::blocked(std::max(cfg.cores_per_node, 1),
                                       std::max(cfg.numa_per_kind, 1))),
      channels_n_(cfg.ikc_channels > 0 ? cfg.ikc_channels : std::max(cfg.app_cores, 1)),
      loops_n_(std::max(cfg.linux_service_cpus, 1)) {
  std::string why;
  if (const Status valid = cfg.validate(&why); !valid.ok())
    throw std::invalid_argument("ikc: invalid Config: " + why);
  active_loops_ = loops_n_;
  channels_.reserve(static_cast<std::size_t>(channels_n_));
  depth_hist_.resize(static_cast<std::size_t>(channels_n_));
  depth_names_.resize(static_cast<std::size_t>(channels_n_));
  for (int c = 0; c < channels_n_; ++c)
    channels_.push_back(std::make_unique<Channel>(
        engine_, lock_abi, cfg.ikc_lock_cost, static_cast<std::size_t>(cfg.ikc_ring_depth),
        static_cast<std::size_t>(std::max(cfg.ikc_reply_depth, 1))));
  // Provision loop slots for the elastic ceiling too: attach_loop() revives
  // a slot, it never invents one. Only the boot prefix is spawned.
  const int slots = std::max(loops_n_, cfg.elastic_max_service_cpus);
  for (int s = 0; s < slots; ++s) {
    loops_.push_back(std::make_unique<Loop>(engine_));
    loops_.back()->batch_limit = std::max(cfg.ikc_batch, 1);
  }
  place_rings();
  shard_channels();
  // Dedicated service loops exist only in ring mode; the direct transport
  // keeps the legacy shape where each offload is its own proxy wakeup.
  if (cfg_.ikc_mode == os::IkcMode::ring)
    for (int s = 0; s < active_loops_; ++s) sim::spawn(engine_, service_loop(s));
}

IkcTransport::~IkcTransport() {
  if (phys_ == nullptr) return;
  for (auto& ch : channels_)
    if (ch->ring_phys != 0) phys_->free(ch->ring_phys, cfg_.ikc_ring_region_bytes);
}

void IkcTransport::place_rings() {
  const int sockets = std::max(topo_.sockets(), 1);
  // Ring memory homes: the owning LWK CPU's socket, made real through
  // PhysMap::alloc_near when a map is supplied. alloc_near may fall back
  // to another domain under pressure — the *achieved* domain is what the
  // pinning below must follow, not the wish. Placement happens once: a
  // repartition moves loops, never a channel's ring lines.
  for (int c = 0; c < channels_n_; ++c) {
    Channel& ch = *channels_[static_cast<std::size_t>(c)];
    const int owner_cpu = cfg_.linux_service_cpus + c;
    ch.home_socket = topo_.socket_of(owner_cpu);
    if (phys_ != nullptr && cfg_.ikc_mode == os::IkcMode::ring) {
      auto region = phys_->alloc_near(cfg_.ikc_ring_region_bytes,
                                      static_cast<std::size_t>(ch.home_socket));
      if (region.ok()) {
        ch.ring_phys = *region;
        if (auto dom = phys_->domain_of(*region); dom.has_value())
          ch.home_socket = static_cast<int>(*dom % static_cast<std::size_t>(sockets));
      } else {
        prof_.bump("ikc.numa.ring_alloc_failed");
      }
    }
  }
}

void IkcTransport::shard_channels() {
  const int n = active_loops_;
  channel_loop_.assign(static_cast<std::size_t>(channels_n_), 0);
  for (auto& lp : loops_) lp->channels.clear();
  const int sockets = std::max(topo_.sockets(), 1);
  // Where a loop runs without pinning: its service CPU (the low ids the
  // IHK reservation leaves to Linux — all in quadrant 0 under SNC-4).
  for (int l = 0; l < n; ++l)
    loops_[static_cast<std::size_t>(l)]->socket = topo_.socket_of(l);
  if (cfg_.ikc_mode == os::IkcMode::ring && cfg_.ikc_numa_pin && !topo_.flat()) {
    // Pin loops across the quadrants, then shard each channel to a loop
    // pinned on its ring's socket (least-loaded first); a channel whose
    // socket no loop covers joins the globally least-loaded loop and is
    // drained remotely. Everything is computed over the *active* prefix,
    // so a repartitioned transport shards exactly like a fresh static one
    // with `n` service CPUs.
    for (int l = 0; l < n; ++l) {
      loops_[static_cast<std::size_t>(l)]->socket = (l * sockets) / n;
      prof_.bump("ikc.numa.pinned_loop");
    }
    for (int c = 0; c < channels_n_; ++c) {
      const int home = channels_[static_cast<std::size_t>(c)]->home_socket;
      int best = -1;
      for (int l = 0; l < n; ++l) {
        if (loops_[static_cast<std::size_t>(l)]->socket != home) continue;
        if (best < 0 || loops_[static_cast<std::size_t>(l)]->channels.size() <
                            loops_[static_cast<std::size_t>(best)]->channels.size())
          best = l;
      }
      if (best < 0) {
        for (int l = 0; l < n; ++l)
          if (best < 0 || loops_[static_cast<std::size_t>(l)]->channels.size() <
                              loops_[static_cast<std::size_t>(best)]->channels.size())
            best = l;
        prof_.bump("ikc.numa.far_channel");
      } else {
        prof_.bump("ikc.numa.matched_channel");
      }
      channel_loop_[static_cast<std::size_t>(c)] = best;
      loops_[static_cast<std::size_t>(best)]->channels.push_back(c);
    }
  } else {
    for (int c = 0; c < channels_n_; ++c) {
      channel_loop_[static_cast<std::size_t>(c)] = c % n;
      loops_[static_cast<std::size_t>(c % n)]->channels.push_back(c);
    }
  }
}

void IkcTransport::reset_loop_health(Loop& lp) {
  lp.consecutive_timeouts = 0;
  lp.depth_ewma = 0.0;
  lp.batch_limit = std::max(cfg_.ikc_batch, 1);
  prof_.bump("ikc.elastic.health_reset");
}

void IkcTransport::reshard_and_reset() {
  std::vector<std::vector<int>> before;
  before.reserve(loops_.size());
  for (const auto& lp : loops_) before.push_back(lp->channels);
  shard_channels();
  prof_.bump("ikc.elastic.reshard");
  // A suspect verdict, a probe countdown or a depth EWMA was calibrated
  // against a loop's old channel set; once the set changes the state is
  // about a shape that no longer exists, so it must not carry over.
  for (int l = 0; l < active_loops_; ++l)
    if (loops_[static_cast<std::size_t>(l)]->channels != before[static_cast<std::size_t>(l)])
      reset_loop_health(*loops_[static_cast<std::size_t>(l)]);
}

sim::Task<> IkcTransport::wake_loops_with_work() {
  for (int l = 0; l < active_loops_; ++l) {
    Loop& lp = *loops_[static_cast<std::size_t>(l)];
    if (!lp.sleeping || !has_work(l)) continue;
    lp.sleeping = false;
    prof_.bump("ikc.ring.doorbell");
    co_await engine_.delay(cfg_.ikc_doorbell_cost);
    lp.doorbell.send(1);
  }
}

sim::Task<Status> IkcTransport::retire_loop() {
  if (active_loops_ <= 1) co_return Errno::einval;
  const int l = active_loops_ - 1;
  Loop& lp = *loops_[static_cast<std::size_t>(l)];
  --active_loops_;
  if (cfg_.ikc_mode != os::IkcMode::ring) {
    // No loops run in direct mode; the retire is pure bookkeeping.
    co_return Status::success();
  }
  prof_.bump("ikc.elastic.loop_retired");
  lp.retiring = true;
  // Hand the loop's channels to the survivors immediately: new submissions
  // route past the retiring loop from this instant, and the backlog its
  // rings held is now the new owners' to drain.
  reshard_and_reset();
  reset_loop_health(lp);  // a retired slot must not report a stale verdict
  // Kick the loop out of whatever wait it is parked in so it can observe
  // `retiring`: the doorbell when it sleeps, the unstall channel when a
  // stall injection holds it.
  if (lp.sleeping) {
    lp.sleeping = false;
    co_await engine_.delay(cfg_.ikc_doorbell_cost);
    lp.doorbell.send(1);
  }
  if (lp.stall_injected) lp.unstall.send(1);
  // Quiesce: the loop finishes any batch it already claimed (replies are
  // delivered through the normal reply path) and exits.
  co_await lp.retired.recv();
  // The orphaned queue depth now belongs to loops that may be asleep.
  co_await wake_loops_with_work();
  co_return Status::success();
}

sim::Task<Status> IkcTransport::attach_loop() {
  if (active_loops_ >= max_loops()) co_return Errno::enospc;
  const int l = active_loops_;
  // A fresh Loop, not a recycled one: clean doorbell/unstall channels and
  // clean suspect/probe/EWMA state, exactly like a boot-time loop.
  loops_[static_cast<std::size_t>(l)] = std::make_unique<Loop>(engine_);
  loops_[static_cast<std::size_t>(l)]->batch_limit = std::max(cfg_.ikc_batch, 1);
  ++active_loops_;
  if (cfg_.ikc_mode != os::IkcMode::ring) co_return Status::success();
  prof_.bump("ikc.elastic.loop_attached");
  reshard_and_reset();
  sim::spawn(engine_, service_loop(l));
  // Loops that lost channels already know their remaining work; the new
  // loop collects on entry. The pass covers survivors that *gained* a
  // channel mid-sleep.
  co_await wake_loops_with_work();
  co_return Status::success();
}

int IkcTransport::channel_socket(int channel) const {
  return channels_.at(static_cast<std::size_t>(channel))->home_socket;
}

mem::PhysAddr IkcTransport::channel_ring_phys(int channel) const {
  return channels_.at(static_cast<std::size_t>(channel))->ring_phys;
}

std::size_t IkcTransport::reply_ring_depth(int channel) const {
  return channels_.at(static_cast<std::size_t>(channel))->reply.size();
}

std::size_t IkcTransport::reply_ring_capacity(int channel) const {
  return channels_.at(static_cast<std::size_t>(channel))->reply.capacity();
}

const IkcTransport::JobStats* IkcTransport::job_stats(JobId job) const {
  auto it = jobs_.find(job);
  return it == jobs_.end() ? nullptr : &it->second.stats;
}

std::vector<JobId> IkcTransport::jobs_seen() const {
  std::vector<JobId> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, state] : jobs_) ids.push_back(id);
  return ids;
}

double IkcTransport::job_weight(JobId job) const {
  if (static_cast<std::size_t>(job) < cfg_.ikc_job_weights.size())
    return cfg_.ikc_job_weights[static_cast<std::size_t>(job)];
  return 1.0;
}

int IkcTransport::credit_cap(JobId job_id) const {
  if (cfg_.ikc_job_credits <= 0) return 0;  // unlimited
  const double scaled = static_cast<double>(cfg_.ikc_job_credits) * job_weight(job_id);
  return std::max(1, static_cast<int>(scaled));
}

sim::Task<bool> IkcTransport::admit(JobId job_id) {
  const int cap = credit_cap(job_id);
  if (cap == 0) co_return true;
  JobState& js = job(job_id);
  for (int attempt = 0; js.stats.inflight >= cap; ++attempt) {
    if (attempt >= cfg_.ikc_credit_retries) {
      // Credits spent and the backoff budget too: the job is saturating
      // its share, so push the failure back to the submitter instead of
      // letting its queue depth grow without bound.
      ++js.stats.eagain;
      prof_.bump("ikc.job.eagain");
      co_return false;
    }
    ++js.stats.credit_waits;
    prof_.bump("ikc.job.credit_wait");
    co_await engine_.delay(static_cast<Dur>(attempt + 1) * cfg_.ikc_credit_backoff);
  }
  co_return true;
}

sim::Task<Result<long>> IkcTransport::offload(Service service, Priority prio,
                                              int channel_hint, JobId job_id) {
  JobState& js = job(job_id);
  ++js.stats.submitted;
  if (!co_await admit(job_id)) co_return Errno::eagain;
  ++js.stats.inflight;
  Result<long> r = Errno::eagain;
  if (cfg_.ikc_mode == os::IkcMode::ring)
    r = co_await ring_offload(std::move(service), prio, channel_hint, job_id);
  else
    r = co_await direct_offload(std::move(service), job_id);
  --js.stats.inflight;
  if (r.ok()) ++js.stats.completed;
  co_return r;
}

/// The legacy path, timing-identical to the pre-subsystem `Ihk::offload`:
/// IKC message, FIFO squeeze on the service-CPU pool, load-dependent proxy
/// wakeup, per-waiter scheduler thrash, and the proxy-run service
/// multiplier (the paper's multi-node collapse mechanism).
sim::Task<Result<long>> IkcTransport::direct_offload(Service service, JobId job_id) {
  // IKC request: message write + IPI + proxy wakeup on the Linux side.
  co_await engine_.delay(cfg_.offload_oneway);

  // The proxy must get a service CPU; this is the contention point.
  const Time queued_at = engine_.now();
  co_await service_cpus_.acquire();
  const double queued_us = to_us(engine_.now() - queued_at);
  queueing_us_.add(queued_us);
  job(job_id).stats.queueing_us.add(queued_us);

  // Proxy thread schedule-in + request demultiplex, then the actual Linux
  // service. An idle, cache-hot proxy serves close to native speed; under
  // load every additional runnable proxy costs scheduling, cache/TLB
  // thrash and IPI traffic, so both the wakeup and the per-work surcharge
  // scale with the observed queue — the mechanism behind the paper's
  // multi-node collapse while single-stream offloading stays mild.
  const auto waiters = std::min<std::size_t>(
      service_cpus_.queue_length(),
      static_cast<std::size_t>(cfg_.sched_thrash_cap_waiters));
  const double load = cfg_.sched_thrash_cap_waiters > 0
                          ? static_cast<double>(waiters) /
                                static_cast<double>(cfg_.sched_thrash_cap_waiters)
                          : 0.0;
  const Dur wakeup =
      cfg_.proxy_wakeup_hot +
      static_cast<Dur>(load * static_cast<double>(cfg_.proxy_wakeup_cold -
                                                  cfg_.proxy_wakeup_hot));
  const Dur thrash = static_cast<Dur>(waiters) * cfg_.sched_thrash_per_waiter;
  // Wakeup accounting, mirroring the ring path's ikc.ring.doorbell /
  // ikc.reply.wakeup counters so Fig. 8/9 can show the per-offload wakeup
  // split between transports: the direct path pays one proxy wakeup on
  // submit and one LWK-side wakeup for the reply IPI — every time.
  prof_.bump("ikc.direct.proxy_wakeup");
  co_await engine_.delay(wakeup + cfg_.offload_dispatch + cfg_.proxy_min_service + thrash);
  const Time work_start = engine_.now();
  auto work = service();
  Result<long> result = co_await work;
  const Dur work_elapsed = engine_.now() - work_start;
  const double multiplier =
      1.0 + load * (cfg_.offload_service_multiplier - 1.0);
  if (multiplier > 1.0)
    co_await engine_.delay(
        static_cast<Dur>(static_cast<double>(work_elapsed) * (multiplier - 1.0)));
  service_cpus_.release();

  // IKC reply back to the LWK core.
  prof_.bump("ikc.direct.reply_wakeup");
  co_await engine_.delay(cfg_.offload_oneway);
  co_return result;
}

bool IkcTransport::loop_suspect(int loop) const {
  return loops_.at(static_cast<std::size_t>(loop))->consecutive_timeouts >=
         cfg_.ikc_stall_threshold;
}

std::size_t IkcTransport::channel_depth(int channel) const {
  const Channel& ch = *channels_.at(static_cast<std::size_t>(channel));
  return ch.rings[0].size() + ch.rings[1].size();
}

int IkcTransport::pick_channel(int channel) {
  if (!loop_suspect(loop_of(channel))) return channel;
  // Health probe: every Nth submission aimed at a suspect loop goes through
  // anyway, so a recovered loop is re-discovered (its reply resets the
  // timeout count) instead of being shunned forever.
  if (cfg_.ikc_probe_interval > 0 &&
      ++probe_tick_ % static_cast<std::uint64_t>(cfg_.ikc_probe_interval) == 0) {
    prof_.bump("ikc.ring.probe");
    return channel;
  }
  for (int i = 1; i < channels_n_; ++i) {
    const int cand = (channel + i) % channels_n_;
    if (!loop_suspect(loop_of(cand))) {
      prof_.bump("ikc.ring.redirect");
      return cand;
    }
  }
  return -1;  // every service loop suspect → caller degrades
}

int IkcTransport::next_foreign_channel(int channel) const {
  // Retry target: a ring owned by a *different* service loop. Under NUMA
  // pinning the sharding is no longer round-robin, so walk until the owner
  // changes; with a single loop (or one channel) this degrades to +1.
  const int owner = loop_of(channel);
  for (int i = 1; i < channels_n_; ++i) {
    const int cand = (channel + i) % channels_n_;
    if (loop_of(cand) != owner) return cand;
  }
  return (channel + 1) % channels_n_;
}

void IkcTransport::note_depth(int channel) {
  const std::size_t depth = channel_depth(channel);
  const int bucket = depth_bucket(depth);
  ++depth_hist_[static_cast<std::size_t>(channel)][static_cast<std::size_t>(bucket)];
  auto& names = depth_names_[static_cast<std::size_t>(channel)];
  if (names == nullptr) {
    names = std::make_unique<std::array<std::string, kDepthBuckets>>();
    for (int b = 0; b < kDepthBuckets; ++b)
      (*names)[static_cast<std::size_t>(b)] =
          "ikc.ring.depth.ch" + std::to_string(channel) + "." + kBucketLabels[b];
  }
  prof_.bump((*names)[static_cast<std::size_t>(bucket)]);
}

void IkcTransport::observe_depth(Loop& lp, std::size_t avail) {
  if (!cfg_.ikc_adaptive_batch) return;
  const double alpha = cfg_.ikc_adaptive_alpha;
  lp.depth_ewma = alpha * static_cast<double>(avail) + (1.0 - alpha) * lp.depth_ewma;
  const int clamped = static_cast<int>(std::min(
      std::ceil(lp.depth_ewma * cfg_.ikc_adaptive_headroom),
      static_cast<double>(cfg_.ikc_ring_depth)));
  const int target = std::max(1, clamped);
  if (target > lp.batch_limit)
    prof_.bump("ikc.adaptive.grow");
  else if (target < lp.batch_limit)
    prof_.bump("ikc.adaptive.shrink");
  else
    prof_.bump("ikc.adaptive.hold");
  lp.batch_limit = target;
}

sim::Task<Result<long>> IkcTransport::ring_offload(Service service, Priority prio,
                                                   int channel_hint, JobId job_id) {
  // Request write into the shared-memory ring region: the bytes cross the
  // kernel boundary exactly as the legacy IKC message did.
  co_await engine_.delay(cfg_.offload_oneway);

  int ch = ((channel_hint % channels_n_) + channels_n_) % channels_n_;
  for (int attempt = 0; attempt <= cfg_.ikc_max_retries; ++attempt) {
    if (attempt > 0) {
      prof_.bump("ikc.ring.retry");
      co_await engine_.delay(static_cast<Dur>(attempt) * cfg_.ikc_retry_backoff);
      // A ring owned by another service loop (the sharding may be
      // socket-aware, so "next channel" is not necessarily it).
      ch = next_foreign_channel(ch);
    }
    ch = pick_channel(ch);
    if (ch < 0) break;  // every loop suspect: straight to the direct path

    auto req = std::make_shared<Request>(engine_);
    req->service = service;
    req->channel = ch;
    req->job = job_id;
    Channel& channel = *channels_[static_cast<std::size_t>(ch)];
    co_await channel.lock.acquire();
    const bool pushed = ring(ch, prio).push(req);
    channel.lock.release();
    if (!pushed) {
      prof_.bump("ikc.ring.full");
      continue;  // consumes one attempt, lands on another loop's ring
    }
    req->enqueued_at = engine_.now();
    std::erase_if(channel.inflight, [](const auto& w) { return w.expired(); });
    channel.inflight.push_back(req);
    prof_.bump("ikc.ring.enqueue");
    note_depth(ch);

    // Doorbell/poll hybrid: ring the doorbell only when the loop is asleep;
    // a polling or busy loop will find the request on its own. The owner is
    // resolved *after* the push: the lock hand-off awaits, and a
    // repartition in that window may have re-sharded this channel onto a
    // different loop — the doorbell must reach whoever drains it now.
    Loop& lp = *loops_[static_cast<std::size_t>(loop_of(ch))];
    if (lp.sleeping) {
      lp.sleeping = false;  // claim the wakeup: one doorbell per sleep
      prof_.bump("ikc.ring.doorbell");
      co_await engine_.delay(cfg_.ikc_doorbell_cost);
      lp.doorbell.send(1);
    }

    // Ring-residency watchdog. Fires only while still queued; a claimed or
    // completed request is past the window the deadline protects.
    engine_.schedule_after(cfg_.ikc_deadline, [req] {
      if (req->state == Request::State::queued) {
        req->state = Request::State::timed_out;
        req->done.trigger();
        req->wake.send(kWakeDeadline);
      }
    });

    if (cfg_.ikc_reply_mode == os::ReplyMode::ring)
      co_await await_reply(req, ch);
    else
      co_await req->done.wait();
    if (req->state == Request::State::abandoned) {
      // The consumer was killed mid-offload (fault injection); the service
      // side drops our completion, we report the interruption.
      co_return Errno::eintr;
    }
    if (req->state == Request::State::done) {
      // IKC reply payload back to the LWK core.
      co_await engine_.delay(cfg_.offload_oneway);
      co_return req->result;
    }
    // Timed out in the ring: the service loop never claimed it (the stale
    // entry is skipped when eventually popped). Count against the loop that
    // owns the channel *now* — `lp` may be a retired slot (or a recycled
    // Loop object) if a repartition happened while we waited — and retry on
    // a ring owned by another one.
    prof_.bump("ikc.ring.timeout");
    ++loops_[static_cast<std::size_t>(loop_of(ch))]->consecutive_timeouts;
  }

  // Degradation floor: the legacy direct path still works even with every
  // service loop wedged — offloads get slower, never stuck.
  prof_.bump("ikc.ring.degraded");
  co_return co_await direct_offload(std::move(service), job_id);
}

void IkcTransport::drain_reply_ring(int channel) {
  // The owning LWK core empties its reply ring: each entry's completion
  // was already written into the request slot when posted, so popping is
  // slot reclamation — the service side only sees a full ring while the
  // consumer is parked behind a lost doorbell (or dead).
  auto& ring = channels_[static_cast<std::size_t>(channel)]->reply;
  while (ring.pop().has_value()) {
  }
}

sim::Task<> IkcTransport::await_reply(RequestPtr req, int channel) {
  Channel& ch = *channels_[static_cast<std::size_t>(channel)];
  // Poll phase: the LWK core is dedicated to the blocked rank, so spinning
  // on the reply slot is free — a completion lands as a shared-memory
  // write and costs the return path zero wakeups.
  const Time poll_until = engine_.now() + cfg_.ikc_reply_poll_budget;
  while (true) {
    drain_reply_ring(channel);
    if (settled(*req)) {
      if (req->state == Request::State::done) prof_.bump("ikc.reply.poll_hit");
      co_return;
    }
    if (engine_.now() >= poll_until) break;
    co_await engine_.delay(cfg_.ikc_reply_poll_interval);
  }
  // Park phase: one completion IPI per drained batch wakes every parked
  // consumer of the channel; the self-drain watchdog bounds how long a
  // lost doorbell can delay us (degrade, never hang).
  while (!settled(*req)) {
    ch.parked.push_back(req);
    prof_.bump("ikc.reply.park");
    // Unconditional: the case the watchdog exists for is a completion that
    // already landed (state == done) whose doorbell was lost — a settled()
    // guard would skip exactly that. A wake nobody is waiting for just
    // sits in the request's queue and dies with it.
    engine_.schedule_after(cfg_.ikc_reply_deadline,
                           [req] { req->wake.send(kWakeSelfDrain); });
    const int why = co_await req->wake.recv();
    std::erase(ch.parked, req);
    drain_reply_ring(channel);
    if (why == kWakeSelfDrain && req->state == Request::State::done)
      prof_.bump("ikc.reply.self_drain");
  }
}

sim::Task<> IkcTransport::deliver_reply(const RequestPtr& req, int channel,
                                        std::vector<int>& touched) {
  if (req->state == Request::State::abandoned) {
    // Completion for a dead consumer: drop it. The slot shared_ptr dies
    // with the batch; the service loop must not wedge on it.
    prof_.bump("ikc.reply.consumer_dead");
    co_return;
  }
  if (cfg_.ikc_reply_mode == os::ReplyMode::latch) {
    // PR-4 shape: every completion is its own cross-kernel wakeup.
    co_await engine_.delay(cfg_.ikc_reply_wakeup_cost);
    prof_.bump("ikc.reply.wakeup");
    req->state = Request::State::done;
    req->done.trigger();
    co_return;
  }
  // Reply ring: write the completion into the request slot (visible to the
  // polling consumer immediately) and post a notification entry; parked
  // consumers are woken once per channel after the whole batch.
  co_await engine_.delay(cfg_.ikc_reply_post_cost);
  Channel& ch = *channels_[static_cast<std::size_t>(channel)];
  req->state = Request::State::done;
  prof_.bump("ikc.reply.post");
  if (!ch.reply.push(req)) {
    // Reply ring full (consumer parked or slow): fall back to a
    // per-request wakeup so the completion is never lost.
    prof_.bump("ikc.reply.ring_full");
    // Autosize: a ring that keeps filling is undersized for this channel's
    // completion burst, so double it (up to the cap) after a few strikes —
    // the `ring_full` counter driving the resize the way depth feedback
    // drives adaptive batching.
    if (cfg_.ikc_reply_autosize &&
        ++ch.reply_full_strikes >= cfg_.ikc_reply_autosize_threshold &&
        ch.reply.capacity() < static_cast<std::size_t>(cfg_.ikc_reply_max_depth)) {
      ch.reply.grow(std::min(ch.reply.capacity() * 2,
                             static_cast<std::size_t>(cfg_.ikc_reply_max_depth)));
      ch.reply_full_strikes = 0;
      prof_.bump("ikc.reply.autosize_grow");
    }
    co_await engine_.delay(cfg_.ikc_reply_wakeup_cost);
    if (ch.reply_doorbell_lost) {
      prof_.bump("ikc.reply.doorbell_lost");  // consumer recovers by self-drain
    } else {
      prof_.bump("ikc.reply.wakeup");
      std::erase(ch.parked, req);
      req->wake.send(kWakeDoorbell);
    }
    co_return;
  }
  if (std::find(touched.begin(), touched.end(), channel) == touched.end())
    touched.push_back(channel);
}

bool IkcTransport::has_work(int loop) const {
  for (int ch : loops_[static_cast<std::size_t>(loop)]->channels)
    if (channel_depth(ch) > 0) return true;
  return false;
}

sim::Task<> IkcTransport::collect_batch(int loop, std::vector<RequestPtr>& out) {
  Loop& lp = *loops_[static_cast<std::size_t>(loop)];
  // Observed depth feeds the adaptive drain limit *before* this drain, so
  // a deepening backlog widens the very next batch.
  std::size_t avail = 0;
  for (int ch : lp.channels) avail += channel_depth(ch);
  if (avail > 0) observe_depth(lp, avail);
  const auto batch_max = static_cast<std::size_t>(
      cfg_.ikc_adaptive_batch ? lp.batch_limit : std::max(cfg_.ikc_batch, 1));
  if (cfg_.ikc_fair_drain)
    co_await collect_batch_fair(loop, out, batch_max);
  else
    co_await collect_batch_strict(loop, out, batch_max);
}

sim::Task<> IkcTransport::collect_batch_strict(int loop, std::vector<RequestPtr>& out,
                                               std::size_t batch_max) {
  Loop& lp = *loops_[static_cast<std::size_t>(loop)];
  // Iterate a snapshot: a repartition during one of the awaits below
  // re-shards `lp.channels` in place, and the live vector must not be
  // walked across its own reassignment. Claims stay safe either way —
  // head pops happen under the ring lock with a state re-check, so a
  // channel that changed owners mid-collect can lose requests to its new
  // loop but never double-execute one.
  const std::vector<int> chans = lp.channels;
  // Control class across all of this loop's channels first, then bulk —
  // a TID-registration ioctl never waits behind queued bulk writevs.
  for (int prio = 0; prio < 2 && out.size() < batch_max; ++prio) {
    for (int ch : chans) {
      if (out.size() >= batch_max) break;
      Channel& channel = *channels_[static_cast<std::size_t>(ch)];
      auto& ring = channel.rings[prio];
      if (ring.empty()) continue;
      if (channel.home_socket == lp.socket) {
        prof_.bump("ikc.numa.local_drain");
      } else {
        // Pulling another quadrant's ring lines across the mesh.
        prof_.bump("ikc.numa.remote_drain");
        co_await engine_.delay(cfg_.ikc_remote_drain_cost);
      }
      co_await channel.lock.acquire();
      while (out.size() < batch_max) {
        auto req = ring.pop();
        if (!req.has_value()) break;
        if ((*req)->state != Request::State::queued) {
          prof_.bump((*req)->state == Request::State::abandoned
                         ? "ikc.ring.dead_skip"    // consumer killed while queued
                         : "ikc.ring.stale_skip");  // timed out while queued here
          continue;
        }
        (*req)->state = Request::State::claimed;
        out.push_back(std::move(*req));
      }
      channel.lock.release();
    }
  }
}

sim::Task<> IkcTransport::collect_batch_fair(int loop, std::vector<RequestPtr>& out,
                                             std::size_t batch_max) {
  Loop& lp = *loops_[static_cast<std::size_t>(loop)];
  // Weighted-fair claim: repeatedly pick, among the *heads* of this loop's
  // rings, the request whose job has the smallest virtual time, and pop
  // exactly that head. Head-only claiming keeps per-channel-per-class FIFO
  // intact; vtime (advanced 1/weight per claim) is what splits a loop's
  // drain capacity across *jobs* by weight when the batch limit binds —
  // per job, not per queued request, so a tenant keeping 4 requests in
  // flight gets the same share as one keeping 1.
  // The claim order is lexicographic (vtime, class, age):
  //   * vtime first — class priority is scoped to a tenant's own share. A
  //     global control-first pass would let an offload-heavy tenant (whose
  //     rings nearly always show a control head) ride the control lane
  //     past its vtime budget while an at-floor neighbour's bulk waits.
  //   * class next — within a vtime tie (the common state: every job that
  //     sat out an epoch is clamped up to the floor), control beats bulk,
  //     so a TID-registration ioctl still never waits behind bulk writevs
  //     of tenants at the same virtual time.
  //   * oldest head last — the head's queueing time is exactly the deficit
  //     the floor clamp erased, so a tenant the scan passed over surfaces
  //     at the front of the tie instead of losing to whoever owns the
  //     lowest channel index forever (at hundreds of channels per loop, an
  //     index tie-break turns into persistent low-channel favoritism).
  // A single-job workload ties everywhere, so it claims control-first then
  // FIFO, visits the same rings, and pays the same costs as the strict
  // drain — the degenerate case the equivalence property pins. One benign
  // asymmetry: the per-claim re-scan sees a control request that arrives
  // *during* this batch's lock/remote-cost awaits and claims it now, where
  // the strict drain's control pass is already over and parks it for a
  // batch — FIFO and completion sets are unchanged, control latency wins.
  //
  // Cost model: the lock hand-off and the remote-socket surcharge are paid
  // on the first touch of each (channel, class) ring per batch — the same
  // once-per-visited-ring accounting as the strict drain.
  // Snapshot for the same reason as the strict drain: the touch awaits can
  // interleave with a repartition's re-shard of `lp.channels`.
  const std::vector<int> chans = lp.channels;
  auto touched = std::vector<std::array<bool, 2>>(chans.size(), {false, false});
  auto touch = [&](std::size_t idx, int prio) -> sim::Task<> {
    if (touched[idx][static_cast<std::size_t>(prio)]) co_return;
    touched[idx][static_cast<std::size_t>(prio)] = true;
    Channel& channel = *channels_[static_cast<std::size_t>(chans[idx])];
    if (channel.home_socket == lp.socket) {
      prof_.bump("ikc.numa.local_drain");
    } else {
      prof_.bump("ikc.numa.remote_drain");
      co_await engine_.delay(cfg_.ikc_remote_drain_cost);
    }
    co_await channel.lock.acquire();
    channel.lock.release();
  };
  while (out.size() < batch_max) {
    int best_idx = -1;
    int best_prio = 0;
    double best_vt = 0.0;
    Time best_age = 0;
    for (int prio = 0; prio < 2; ++prio) {
      for (std::size_t idx = 0; idx < chans.size(); ++idx) {
        auto& ring = channels_[static_cast<std::size_t>(chans[idx])]->rings[prio];
        // Scrub settled heads so a timed-out or abandoned entry neither
        // blocks the ring nor votes with its (dead) job's vtime. The first
        // touch of a ring awaits (lock hand-off, remote surcharge), so the
        // head must be re-checked after it before popping.
        while (!ring.empty() && (*ring.front()).state != Request::State::queued) {
          co_await touch(idx, prio);
          if (ring.empty() || (*ring.front()).state == Request::State::queued) break;
          auto req = ring.pop();
          prof_.bump((*req)->state == Request::State::abandoned ? "ikc.ring.dead_skip"
                                                                : "ikc.ring.stale_skip");
        }
        if (ring.empty()) continue;
        const Request& head = *ring.front();
        const double vt = std::max(job(head.job).vtime, vtime_floor_);
        // Lexicographic (vt, prio, age); control is scanned first, so an
        // equal-vt bulk head never displaces a control best.
        if (best_idx < 0 || vt < best_vt ||
            (vt == best_vt && prio == best_prio && head.enqueued_at < best_age)) {
          best_idx = static_cast<int>(idx);
          best_prio = prio;
          best_vt = vt;
          best_age = head.enqueued_at;
        }
      }
    }
    if (best_idx < 0) break;  // every ring empty
    co_await touch(static_cast<std::size_t>(best_idx), best_prio);
    auto& ring =
        channels_[static_cast<std::size_t>(chans[static_cast<std::size_t>(best_idx)])]
            ->rings[best_prio];
    auto req = ring.pop();
    // The touch's awaits advance simulated time: the head the scan chose may
    // have hit its ring-residency deadline (submitter already retrying on
    // another ring) or been abandoned by consumer death in that window, and
    // a concurrent drain may even have emptied the ring. Claiming blindly
    // would overwrite the settled state and execute the service twice, so
    // re-check before claiming — mirroring collect_batch_strict.
    if (!req.has_value()) continue;
    if ((*req)->state != Request::State::queued) {
      prof_.bump((*req)->state == Request::State::abandoned ? "ikc.ring.dead_skip"
                                                            : "ikc.ring.stale_skip");
      continue;
    }
    JobState& js = job((*req)->job);
    // An idle job rejoins at the floor instead of replaying its unused
    // past share as a burst (standard WFQ re-arrival rule).
    vtime_floor_ = std::max(js.vtime, vtime_floor_);
    js.vtime = vtime_floor_ + 1.0 / job_weight((*req)->job);
    (*req)->state = Request::State::claimed;
    out.push_back(std::move(*req));
  }
}

sim::Task<> IkcTransport::service_loop(int loop) {
  Loop& lp = *loops_[static_cast<std::size_t>(loop)];
  bool woke_by_doorbell = false;
  std::vector<RequestPtr> batch;
  std::vector<int> touched;  // channels this batch posted replies to
  while (true) {
    while (lp.stall_injected && !lp.retiring) co_await lp.unstall.recv();
    if (lp.retiring) break;
    batch.clear();
    touched.clear();
    co_await collect_batch(loop, batch);
    if (batch.empty()) {
      // Retirement observes an empty collect: the re-shard already took the
      // channels, so nothing is queued here and nothing was claimed — the
      // loop is quiescent and may exit.
      if (lp.retiring) break;
      // Poll/doorbell hybrid: spin a few short polls while traffic is
      // likely, then park on the doorbell so an idle engine can drain.
      bool found = false;
      for (int spin = 0;
           spin < cfg_.ikc_poll_spins && !lp.stall_injected && !lp.retiring; ++spin) {
        co_await engine_.delay(cfg_.ikc_poll_interval);
        if (has_work(loop)) {
          prof_.bump("ikc.ring.poll_hit");
          found = true;
          break;
        }
      }
      if (!found && !lp.stall_injected && !lp.retiring) {
        lp.sleeping = true;
        co_await lp.doorbell.recv();
        lp.sleeping = false;  // idempotent: the submitter already cleared it
        woke_by_doorbell = true;
      }
      continue;
    }

    prof_.bump("ikc.ring.batch_drain");
    co_await service_cpus_.acquire();
    // One schedule-in per doorbell wakeup covers the whole batch — the
    // amortization the legacy path cannot have. The loop stays cache-hot,
    // so no cold-wakeup scaling, no per-waiter thrash, no proxy-run
    // multiplier; batch size bounds how long a unit is held so IRQ bottom
    // halves still get the pool at batch granularity.
    if (woke_by_doorbell) {
      co_await engine_.delay(cfg_.proxy_wakeup_hot);
      woke_by_doorbell = false;
    }
    for (auto& req : batch) {
      const double queued_us = to_us(engine_.now() - req->enqueued_at);
      queueing_us_.add(queued_us);
      job(req->job).stats.queueing_us.add(queued_us);
      co_await engine_.delay(cfg_.offload_dispatch + cfg_.proxy_min_service);
      Result<long> result = co_await req->service();
      req->result = result;
      co_await deliver_reply(req, req->channel, touched);
      lp.consecutive_timeouts = 0;  // a served request proves liveness
      ++lp.served;
    }
    // Completion doorbell pass: channels whose consumers parked get one
    // wakeup covering every reply this batch posted there — the ≥1-fewer-
    // wakeups-per-round-trip the reply ring exists for.
    for (int chn : touched) {
      Channel& channel = *channels_[static_cast<std::size_t>(chn)];
      if (channel.parked.empty()) continue;
      co_await engine_.delay(cfg_.ikc_reply_wakeup_cost);
      if (channel.reply_doorbell_lost) {
        prof_.bump("ikc.reply.doorbell_lost");  // sent, then dropped by the fault
        continue;
      }
      prof_.bump("ikc.reply.wakeup");
      for (auto& waiter : channel.parked) waiter->wake.send(kWakeDoorbell);
      channel.parked.clear();
    }
    service_cpus_.release();
  }
  // Quiesced: every claimed request is delivered, the channels are gone.
  // The retire_loop() caller is parked on this signal.
  lp.retired.send(1);
}

void IkcTransport::inject_stall(int loop, bool stalled) {
  Loop& lp = *loops_.at(static_cast<std::size_t>(loop));
  if (lp.stall_injected == stalled) return;
  lp.stall_injected = stalled;
  if (!stalled) lp.unstall.send(1);
}

void IkcTransport::inject_consumer_death(int channel) {
  // The LWK process owning this channel dies: every in-flight offload it
  // had resolves to EINTR on the (dead) submitter side, queued entries
  // turn stale, and completions still in the service pipeline are dropped
  // at delivery (`ikc.reply.consumer_dead`).
  Channel& ch = *channels_.at(static_cast<std::size_t>(channel));
  for (auto& weak : ch.inflight) {
    if (auto req = weak.lock(); req != nullptr && !settled(*req)) {
      req->state = Request::State::abandoned;
      req->done.trigger();
      req->wake.send(kWakeDeath);
    }
  }
  ch.inflight.clear();
  ch.parked.clear();
}

void IkcTransport::inject_reply_doorbell_loss(int channel, bool lost) {
  channels_.at(static_cast<std::size_t>(channel))->reply_doorbell_lost = lost;
}

}  // namespace pd::ikc
