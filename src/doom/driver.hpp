// The simulated pd-doom Linux driver (second device class).
//
// Like the HFI driver, this is one "unmodified driver" object serving
// native Linux syscalls, offloaded McKernel syscalls, and coexisting with a
// PicoDriver fast path. Its submit path deliberately mirrors the harddoom
// driver's Linux behaviour: every source buffer is pinned with
// get_user_pages() and the DMA page table is programmed one 4 KiB entry per
// page — blind to physical contiguity, exactly the §3.4 shortcoming the
// LWK fast path removes (extent-sized PTEs, no gup).
//
// Driver state (`doom_devdata` with its embedded `doom_ringstate`, per-open
// `doom_ctx`) lives as raw structure images in the Linux kernel heap,
// accessed through the version-dependent layout table; the shipped module
// binary (DWARF inside) is what the PicoDriver binds against. The fence
// sequence counter, the device-VA allocator cursor, and the submitted-
// command counter are all fields of those images, so fast and slow path
// share them through memory, never through an API.
//
// Completion plumbing is shared across paths: any submitter registers the
// fence's callback chain with register_completion(); the device's fence
// IRQ dispatches every chain retired so far. A fence whose IRQ was lost
// (fault injection) is recovered by the wait-fence poll loop, which checks
// the device's retire register and dispatches the missing chains inline
// ("doom.irq.recovered").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/doom/layouts.hpp"
#include "src/doom/uapi.hpp"
#include "src/hw/doom_device.hpp"
#include "src/mem/address_space.hpp"
#include "src/os/kernel.hpp"
#include "src/os/process.hpp"
#include "src/os/spinlock.hpp"

namespace pd::doom {

class DoomDriver final : public os::CharDevice {
 public:
  DoomDriver(os::LinuxKernel& linux_kernel, hw::DoomDevice& device, const std::string& version);
  ~DoomDriver() override;

  std::string dev_name() const override { return kDeviceName; }

  sim::Task<Result<long>> open(os::OpenFile& f) override;
  sim::Task<Result<long>> writev(os::OpenFile& f, std::span<const os::IoVec> iov) override;
  sim::Task<Result<long>> ioctl(os::OpenFile& f, unsigned long cmd, void* arg) override;
  sim::Task<Result<long>> poll(os::OpenFile& f) override;
  sim::Task<Result<mem::PhysAddr>> mmap(os::OpenFile& f, std::uint64_t len,
                                        std::uint64_t offset) override;
  sim::Task<Result<long>> read(os::OpenFile& f, std::uint64_t len) override;
  sim::Task<Result<long>> lseek(os::OpenFile& f, long offset, int whence) override;
  sim::Task<Result<long>> close(os::OpenFile& f) override;

  /// --- what the PicoDriver needs ----------------------------------------
  os::LinuxKernel& linux_kernel() { return linux_; }
  hw::DoomDevice& device() { return device_; }
  const DoomLayouts& layouts() const { return layouts_; }
  const dwarf::ModuleBinary& module_binary() const { return module_; }

  /// The command-ring submission spin-lock both kernels take (§3.3).
  os::SharedSpinlock& ring_lock() { return *ring_lock_; }

  /// Kernel-heap addresses of internal structure images.
  mem::PhysAddr devdata_image() const { return devdata_; }
  mem::PhysAddr ctx_image(const os::OpenFile& f) const;

  /// Register the callback chain for a fence: dispatched (raise_irq) when
  /// the device retires it, or inline by lost-IRQ recovery. Used by both
  /// the slow path and the LWK fast path.
  void register_completion(std::uint64_t seq, std::vector<os::KernelCallback> callbacks);

  /// Highest fence whose completion chain has been dispatched.
  std::uint64_t completed_upto() const { return completed_upto_; }

  /// Lost-IRQ recovery: compare the device's retire register against the
  /// pending fences and dispatch anything the hardware finished but never
  /// reported. Returns the number of fences recovered.
  std::uint64_t recover_completions();

  /// --- instrumentation ----------------------------------------------------
  std::uint64_t submit_batches() const { return submit_batches_; }
  std::uint64_t pte_programs() const { return pte_programs_; }
  std::uint64_t fences_dispatched() const { return fences_dispatched_; }
  std::uint64_t irqs_recovered() const { return irqs_recovered_; }

  /// Simulated text address of the driver's completion callback (inside
  /// the Linux image — always visible to Linux).
  mem::VirtAddr completion_callback_text() const;

 private:
  struct FileCtx {
    mem::PhysAddr ctxdata = 0;
    int hw_ctxt = -1;  // < 0 until kDoomCreateCtx
    // Persistent (kDoomMapBuffer) pins, released at close.
    std::vector<mem::PinnedPages> persistent_pins;
  };

  FileCtx* fctx(const os::OpenFile& f) const { return static_cast<FileCtx*>(f.driver_ctx); }
  StructImage image(mem::PhysAddr addr, const char* struct_name) const;
  StructImage ring_image() const;  // embedded doom_ringstate view
  int alloc_cpu() const { return 0; }

  /// Reserve `bytes` of device VA from the ctx image's dva_next cursor
  /// (shared with the fast path through the image field).
  std::uint64_t alloc_dva(StructImage& ctx_img, std::uint64_t bytes);

  /// Mirror a device fault into the doom_ringstate image (run_state=error);
  /// submitters check the image, not the device object.
  void note_device_fault();

  sim::Task<Result<long>> submit_batch(os::OpenFile& f, DoomSubmitArgs& args);
  sim::Task<Result<long>> wait_fence(os::OpenFile& f, std::uint64_t seq);

  void on_fence_retired(std::uint64_t seq);
  std::uint64_t dispatch_upto(std::uint64_t seq, bool recovered);

  os::LinuxKernel& linux_;
  hw::DoomDevice& device_;
  DoomLayouts layouts_;
  dwarf::ModuleBinary module_;

  mem::PhysAddr devdata_ = 0;
  std::unique_ptr<os::SharedSpinlock> ring_lock_;

  std::map<std::uint64_t, std::vector<os::KernelCallback>> pending_;
  std::uint64_t completed_upto_ = 0;

  std::uint64_t submit_batches_ = 0;
  std::uint64_t pte_programs_ = 0;
  std::uint64_t fences_dispatched_ = 0;
  std::uint64_t irqs_recovered_ = 0;
};

}  // namespace pd::doom
