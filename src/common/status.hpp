// Error propagation used across the kernel / driver models.
//
// Device drivers speak errno, so the simulated syscall and file-operation
// layers do too. Result<T> is a minimal expected-like type: either a value
// or an Errno. Keeping it header-only and trivial keeps the hot simulation
// paths allocation-free.
#pragma once

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace pd {

/// Subset of POSIX errno values the simulated drivers and kernels return.
enum class Errno : int {
  ok = 0,
  eperm = 1,
  enoent = 2,
  eintr = 4,
  eio = 5,
  ebadf = 9,
  eagain = 11,
  enomem = 12,
  efault = 14,
  ebusy = 16,
  eexist = 17,
  enodev = 19,
  einval = 22,
  enospc = 28,
  espipe = 29,
  enosys = 38,
  eoverflow = 75,
  eopnotsupp = 95,
};

constexpr std::string_view to_string(Errno e) {
  switch (e) {
    case Errno::ok: return "OK";
    case Errno::eperm: return "EPERM";
    case Errno::enoent: return "ENOENT";
    case Errno::eintr: return "EINTR";
    case Errno::eio: return "EIO";
    case Errno::ebadf: return "EBADF";
    case Errno::eagain: return "EAGAIN";
    case Errno::enomem: return "ENOMEM";
    case Errno::efault: return "EFAULT";
    case Errno::ebusy: return "EBUSY";
    case Errno::eexist: return "EEXIST";
    case Errno::enodev: return "ENODEV";
    case Errno::einval: return "EINVAL";
    case Errno::enospc: return "ENOSPC";
    case Errno::espipe: return "ESPIPE";
    case Errno::enosys: return "ENOSYS";
    case Errno::eoverflow: return "EOVERFLOW";
    case Errno::eopnotsupp: return "EOPNOTSUPP";
  }
  return "E?";
}

/// Value-or-errno. `Result<void>` is spelled `Status` below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errno err) : v_(err) { assert(err != Errno::ok); }  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  Errno error() const { return ok() ? Errno::ok : std::get<Errno>(v_); }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const { return ok() ? std::get<T>(v_) : std::move(fallback); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Errno> v_;
};

/// Success/failure with no payload.
class [[nodiscard]] Status {
 public:
  Status() : err_(Errno::ok) {}
  Status(Errno err) : err_(err) {}  // NOLINT(google-explicit-constructor)

  static Status success() { return Status(); }

  bool ok() const { return err_ == Errno::ok; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

  friend bool operator==(const Status& a, const Status& b) = default;

 private:
  Errno err_;
};

}  // namespace pd
