file(REMOVE_RECURSE
  "CMakeFiles/driver_pico_test.dir/driver_pico_test.cpp.o"
  "CMakeFiles/driver_pico_test.dir/driver_pico_test.cpp.o.d"
  "driver_pico_test"
  "driver_pico_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_pico_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
