// IHK: resource partitioning and the inter-kernel communication (IKC)
// system-call delegation path (paper §2.1).
//
// An offloaded syscall travels: LWK core → IKC message → proxy-process
// wakeup on a Linux service CPU → Linux-side service (the real driver code)
// → IKC reply → LWK core resumes. The service CPUs are a shared FIFO pool,
// so with 32–64 ranks per node and only 4 service CPUs the queueing delay —
// not the raw IKC latency — dominates, which is exactly the effect the
// paper measures on UMT2013/HACC/QBOX.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/status.hpp"
#include "src/os/kernel.hpp"

namespace pd::os {

class Ihk {
 public:
  Ihk(sim::Engine& engine, const Config& cfg, LinuxKernel& linux_kernel)
      : engine_(engine), cfg_(cfg), linux_(linux_kernel) {}

  /// Delegate one syscall to Linux. `service` runs on a Linux service CPU
  /// (the proxy process context) and typically invokes a CharDevice op.
  sim::Task<Result<long>> offload(std::function<sim::Task<Result<long>>()> service);

  LinuxKernel& linux_kernel() { return linux_; }

  std::uint64_t offload_count() const { return offload_count_; }
  /// Mean time an offload spent queued for a service CPU (µs).
  double mean_queueing_us() const {
    return offload_count_ == 0
               ? 0.0
               : to_us(queueing_total_) / static_cast<double>(offload_count_);
  }

 private:
  sim::Engine& engine_;
  const Config& cfg_;
  LinuxKernel& linux_;
  std::uint64_t offload_count_ = 0;
  Dur queueing_total_ = 0;
};

}  // namespace pd::os
