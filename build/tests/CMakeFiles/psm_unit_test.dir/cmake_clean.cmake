file(REMOVE_RECURSE
  "CMakeFiles/psm_unit_test.dir/psm_unit_test.cpp.o"
  "CMakeFiles/psm_unit_test.dir/psm_unit_test.cpp.o.d"
  "psm_unit_test"
  "psm_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
