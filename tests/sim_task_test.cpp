// Tests for the coroutine Task type: lazy start, structured co_await,
// value return, exception propagation, detached spawn lifetime.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/common/time.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/task.hpp"

namespace pd::sim {
namespace {

using namespace pd::time_literals;

Task<int> answer() { co_return 42; }

Task<int> delayed_answer(Engine& e, Dur d, int v) {
  co_await e.delay(d);
  co_return v;
}

TEST(Task, AwaitReturnsValue) {
  Engine e;
  int got = 0;
  spawn(e, [](Engine&, int& out) -> Task<> { out = co_await answer(); }(e, got));
  e.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(Task, DelayAdvancesSimTime) {
  Engine e;
  Time finished = -1;
  spawn(e, [](Engine& eng, Time& out) -> Task<> {
    co_await eng.delay(7_us);
    out = eng.now();
  }(e, finished));
  e.run();
  EXPECT_EQ(finished, 7_us);
}

TEST(Task, NestedAwaitsCompose) {
  Engine e;
  int got = 0;
  spawn(e, [](Engine& eng, int& out) -> Task<> {
    const int a = co_await delayed_answer(eng, 1_us, 10);
    const int b = co_await delayed_answer(eng, 2_us, 32);
    out = a + b;
  }(e, got));
  e.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(e.now(), 3_us);
}

TEST(Task, LazyUntilAwaited) {
  Engine e;
  bool ran = false;
  {
    Task<> t = [](bool& flag) -> Task<> {
      flag = true;
      co_return;
    }(ran);
    EXPECT_FALSE(ran);
    // Dropping the task without awaiting destroys the frame without running.
  }
  EXPECT_FALSE(ran);
}

TEST(Task, SpawnRunsEagerlyUntilFirstSuspend) {
  Engine e;
  std::vector<int> order;
  spawn(e, [](Engine& eng, std::vector<int>& log) -> Task<> {
    log.push_back(1);
    co_await eng.delay(1_ns);
    log.push_back(3);
  }(e, order));
  order.push_back(2);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Engine e;
  bool caught = false;
  spawn(e, [](bool& flag) -> Task<> {
    auto thrower = []() -> Task<int> {
      throw std::runtime_error("boom");
      co_return 0;  // unreachable; keeps this a coroutine
    };
    try {
      (void)co_await thrower();
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Task, ManyConcurrentSpawnsAllComplete) {
  Engine e;
  int done = 0;
  constexpr int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    spawn(e, [](Engine& eng, int delay_ns, int& counter) -> Task<> {
      co_await eng.delay(delay_ns * 1_ns);
      ++counter;
    }(e, i % 37, done));
  }
  EXPECT_EQ(e.live_tasks(), kTasks);
  e.run();
  EXPECT_EQ(done, kTasks);
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(Task, VoidTaskAwaitable) {
  Engine e;
  int stage = 0;
  spawn(e, [](Engine& eng, int& s) -> Task<> {
    auto inner = [](Engine& en, int& st) -> Task<> {
      st = 1;
      co_await en.delay(1_ns);
      st = 2;
    };
    co_await inner(eng, s);
    EXPECT_EQ(s, 2);
    s = 3;
  }(e, stage));
  e.run();
  EXPECT_EQ(stage, 3);
}

}  // namespace
}  // namespace pd::sim
