// Paper-shape regression tests: miniature versions of the headline
// comparisons from EXPERIMENTS.md, pinned as orderings (not magnitudes) so
// calibration drift that would silently flip a conclusion fails CI.
#include <gtest/gtest.h>

#include "src/apps/proxies.hpp"
#include "src/common/units.hpp"

namespace pd {
namespace {

using namespace pd::time_literals;

struct ModeTimes {
  double linux_s = 0;
  double mck_s = 0;
  double hfi_s = 0;
};

template <typename Body>
ModeTimes run_modes(int nodes, int rpn, std::uint64_t buf_bytes, const Body& body) {
  ModeTimes t;
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    mpirt::ClusterOptions copts;
    copts.nodes = nodes;
    copts.mode = mode;
    copts.mcdram_bytes = 512ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = rpn;
    wopts.buf_bytes = buf_bytes;
    const auto out = apps::run_app(copts, wopts, body);
    if (mode == os::OsMode::linux)
      t.linux_s = out.runtime_sec;
    else if (mode == os::OsMode::mckernel)
      t.mck_s = out.runtime_sec;
    else
      t.hfi_s = out.runtime_sec;
  }
  return t;
}

TEST(PaperShapes, Fig6aUmtOrderingAtFourNodes) {
  apps::UmtParams umt;
  umt.steps = 1;
  const auto t = run_modes(4, apps::kUmtRpn, 1ull << 20,
                           [umt](mpirt::Rank& r) { return apps::umt_rank(r, umt); });
  // Plain McKernel collapses; the PicoDriver beats Linux.
  EXPECT_GT(t.mck_s, 1.5 * t.linux_s) << "UMT multi-node collapse missing";
  EXPECT_LT(t.hfi_s, t.linux_s) << "PicoDriver must beat Linux on UMT";
}

TEST(PaperShapes, Fig6bHaccOrderingAtFourNodes) {
  apps::HaccParams hacc;
  hacc.steps = 2;
  const auto t = run_modes(4, apps::kHaccRpn, 2ull << 20,
                           [hacc](mpirt::Rank& r) { return apps::hacc_rank(r, hacc); });
  EXPECT_GT(t.mck_s, 1.1 * t.linux_s) << "HACC degradation missing";
  EXPECT_LT(t.mck_s, 3.0 * t.linux_s) << "HACC must degrade, not collapse like UMT";
  EXPECT_LE(t.hfi_s, 1.02 * t.linux_s) << "PicoDriver HACC at or above Linux";
}

TEST(PaperShapes, Fig5LammpsParityAtFourNodes) {
  apps::LammpsParams lammps;
  lammps.steps = 3;
  const auto t = run_modes(4, apps::kLammpsRpn, 512ull << 10,
                           [lammps](mpirt::Rank& r) { return apps::lammps_rank(r, lammps); });
  // PIO-path app: every mode within a few percent.
  EXPECT_NEAR(t.mck_s / t.linux_s, 1.0, 0.06);
  EXPECT_NEAR(t.hfi_s / t.linux_s, 1.0, 0.06);
}

TEST(PaperShapes, Fig7QboxOrderingAtFourNodes) {
  apps::QboxParams qbox;
  qbox.scf_iterations = 2;
  const auto t = run_modes(4, apps::kQboxRpn, 4ull << 20,
                           [qbox](mpirt::Rank& r) { return apps::qbox_rank(r, qbox); });
  // McKernel mildly behind, PicoDriver ahead of both.
  EXPECT_GT(t.mck_s, t.linux_s);
  EXPECT_LT(t.mck_s, 1.6 * t.linux_s) << "QBOX must not collapse like UMT";
  EXPECT_LT(t.hfi_s, t.linux_s);
}

TEST(PaperShapes, Fig4DescriptorSizesExact) {
  // The §4.3 instrumentation claim, pinned exactly.
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    mpirt::ClusterOptions copts;
    copts.nodes = 2;
    copts.mode = mode;
    copts.mcdram_bytes = 512ull << 20;
    copts.ddr_bytes = 1ull << 30;
    mpirt::Cluster cluster(copts);
    mpirt::WorldOptions wopts;
    wopts.ranks_per_node = 1;
    mpirt::MpiWorld world(cluster, wopts);
    world.run([](mpirt::Rank& rank) -> sim::Task<> {
      co_await rank.init();
      if (rank.id() == 0)
        co_await rank.send(1, 1, 1_MiB);
      else
        co_await rank.recv(0, 1, 1_MiB);
      co_await rank.finalize();
    });
    std::uint64_t descs = 0, bytes = 0;
    for (int n = 0; n < 2; ++n) {
      descs += cluster.node(n).device->total_descriptors();
      bytes += cluster.node(n).device->total_descriptor_bytes();
    }
    ASSERT_GT(descs, 0u);
    const double mean = static_cast<double>(bytes) / static_cast<double>(descs);
    if (mode == os::OsMode::mckernel_hfi) {
      EXPECT_GT(mean, 10000.0) << "PicoDriver must exploit ~10 KiB descriptors";
    } else {
      EXPECT_DOUBLE_EQ(mean, 4096.0) << "Linux driver is PAGE_SIZE-limited";
    }
  }
}

}  // namespace
}  // namespace pd
