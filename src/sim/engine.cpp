#include "src/sim/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <mutex>
#include <thread>

namespace pd::sim {

// ---------------------------------------------------------------------------
// Coroutine-frame pool.
//
// Process-global (a Task may outlive its Engine) with thread-local caches so
// sharded drains never contend on the hot path. A 16-byte header in front of
// each frame records its size class; class 0 means "too big, plain heap".
// ---------------------------------------------------------------------------

namespace detail {
namespace {

constexpr std::size_t kFrameHeader = 16;  // keeps the frame max_align_t-aligned
constexpr std::size_t kClassStride = 64;
constexpr std::size_t kNumClasses = 64;  // pool frames up to 4 KiB

struct FreeFrame {
  FreeFrame* next;
};

struct GlobalFramePool {
  std::mutex mu;
  std::array<FreeFrame*, kNumClasses> lists{};
};

GlobalFramePool& global_pool() {
  static GlobalFramePool pool;
  return pool;
}

std::atomic<std::uint64_t> g_frame_host_allocs{0};
std::atomic<std::uint64_t> g_frame_pool_hits{0};

// No destructor: frames cached at process exit are reclaimed by the OS.
// Worker threads flush explicitly via frame_cache_flush().
thread_local std::array<FreeFrame*, kNumClasses> t_frame_cache{};

void write_class(unsigned char* base, std::uint64_t cls) {
  std::memcpy(base, &cls, sizeof(cls));
}

}  // namespace

void* frame_alloc(std::size_t bytes) {
  const std::size_t total = bytes + kFrameHeader;
  const std::size_t cls = (total + kClassStride - 1) / kClassStride;
  if (cls <= kNumClasses) {
    FreeFrame*& head = t_frame_cache[cls - 1];
    if (head == nullptr) {
      // Batch refill: steal the whole global list for this class.
      GlobalFramePool& g = global_pool();
      std::lock_guard<std::mutex> lock(g.mu);
      head = g.lists[cls - 1];
      g.lists[cls - 1] = nullptr;
    }
    if (head != nullptr) {
      FreeFrame* f = head;
      head = f->next;
      g_frame_pool_hits.fetch_add(1, std::memory_order_relaxed);
      auto* base = reinterpret_cast<unsigned char*>(f);
      write_class(base, cls);
      return base + kFrameHeader;
    }
    g_frame_host_allocs.fetch_add(1, std::memory_order_relaxed);
    auto* base = static_cast<unsigned char*>(::operator new(cls * kClassStride));
    write_class(base, cls);
    return base + kFrameHeader;
  }
  g_frame_host_allocs.fetch_add(1, std::memory_order_relaxed);
  auto* base = static_cast<unsigned char*>(::operator new(total));
  write_class(base, 0);
  return base + kFrameHeader;
}

void frame_free(void* p) noexcept {
  auto* base = static_cast<unsigned char*>(p) - kFrameHeader;
  std::uint64_t cls;
  std::memcpy(&cls, base, sizeof(cls));
  if (cls == 0) {
    ::operator delete(base);
    return;
  }
  auto* f = reinterpret_cast<FreeFrame*>(base);
  f->next = t_frame_cache[cls - 1];
  t_frame_cache[cls - 1] = f;
}

void frame_cache_flush() noexcept {
  GlobalFramePool& g = global_pool();
  std::lock_guard<std::mutex> lock(g.mu);
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    FreeFrame* f = t_frame_cache[c];
    t_frame_cache[c] = nullptr;
    while (f != nullptr) {
      FreeFrame* next = f->next;
      f->next = g.lists[c];
      g.lists[c] = f;
      f = next;
    }
  }
}

FramePoolCounters frame_pool_counters() noexcept {
  return {g_frame_host_allocs.load(std::memory_order_relaxed),
          g_frame_pool_hits.load(std::memory_order_relaxed)};
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------------

thread_local Engine::ExecCtx Engine::tls_ctx_{};

namespace {
constexpr std::size_t kChunkNodes = 256;
constexpr std::size_t kInitBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
}  // namespace

Engine::Engine() {
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->buckets.resize(kInitBuckets);
}

Engine::~Engine() {
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    // Destroy pending payloads without running them (a drained simulation
    // has none; run_until can leave some behind).
    for (std::size_t i = sh.cur; i < sh.buckets.size(); ++i)
      for (EventNode* n = sh.buckets[i].head; n != nullptr; n = n->next)
        if (n->drop != nullptr) n->drop(*n);
    for (EventNode* n : sh.overflow)
      if (n->drop != nullptr) n->drop(*n);
    for (auto& box : sh.outbox)
      for (EventNode* n : box)
        if (n->drop != nullptr) n->drop(*n);
    // Detached service coroutines (device engines etc.) loop forever and
    // are still suspended when the simulation ends; reclaim their frames.
    // Nothing resumes during teardown, so destroying in set order is safe —
    // detached frames are top-level and never own one another.
    for (void* addr : sh.detached) std::coroutine_handle<>::from_address(addr).destroy();
  }
}

void Engine::enable_sharding(int shards, int workers, Dur lookahead) {
  assert(shards >= 1);
  assert(!running_);
  assert(shards_.size() == 1 && shards_[0]->next_seq == 0 && shards_[0]->detached.empty() &&
         "sharding must be configured before anything is scheduled or spawned");
  if (shards <= 1) return;
  assert(lookahead > 0 && "sharded mode needs a positive conservative lookahead");
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->id = s;
    sh->buckets.resize(kInitBuckets);
    sh->outbox.resize(static_cast<std::size_t>(shards));
    shards_.push_back(std::move(sh));
  }
  workers_ = std::min(std::max(1, workers), shards);
  lookahead_ = lookahead;
}

void Engine::schedule_resume(Dur d, std::coroutine_handle<> h) {
  assert(d >= 0);
  Shard& sh = ctx_shard();
  EventNode* n = acquire(sh);
  void* addr = h.address();
  std::memcpy(n->buf, &addr, sizeof(addr));
  n->invoke = [](EventNode& e) {
    void* a;
    std::memcpy(&a, e.buf, sizeof(a));
    std::coroutine_handle<>::from_address(a).resume();
  };
  // drop stays null: an unresumed coroutine is reclaimed by its owner
  // (Task destructor or the detached-frame sweep), not by the event queue.
  push(sh, n, sh.now + d);
}

void Engine::grow_pool(Shard& sh) {
  auto chunk = std::make_unique<EventNode[]>(kChunkNodes);
  for (std::size_t i = kChunkNodes; i-- > 0;) {
    chunk[i].next = sh.free_list;
    sh.free_list = &chunk[i];
  }
  sh.chunks.push_back(std::move(chunk));
  ++sh.stats.pool_chunks;
}

void Engine::bucket_insert(Bucket& b, EventNode* n) {
  n->next = nullptr;
  if (b.head == nullptr) {
    b.head = b.tail = n;
    return;
  }
  if (!later(*b.tail, *n)) {
    // Fast path: events overwhelmingly arrive in (t, seq) order.
    b.tail->next = n;
    b.tail = n;
    return;
  }
  if (later(*b.head, *n)) {
    n->next = b.head;
    b.head = n;
    return;
  }
  EventNode* p = b.head;
  while (p->next != nullptr && !later(*p->next, *n)) p = p->next;
  n->next = p->next;
  p->next = n;  // tail unchanged: n landed strictly before the old tail
}

Engine::EventNode* Engine::bucket_pop(Bucket& b) {
  EventNode* n = b.head;
  b.head = n->next;
  if (b.head == nullptr) b.tail = nullptr;
  n->next = nullptr;
  return n;
}

void Engine::insert(Shard& sh, EventNode* n) {
  const Time horizon = sh.base + static_cast<Time>(sh.buckets.size()) * sh.width;
  if (n->t >= horizon) {
    sh.overflow.push_back(n);
    std::push_heap(sh.overflow.begin(), sh.overflow.end(), heap_later);
    ++sh.stats.overflow_parked;
    return;
  }
  if (n->t < sh.base) {
    // The calendar was re-anchored past this time (a rebase to a far-future
    // overflow event while the near term was empty); park the event and
    // rebuild, which re-anchors the year at the earliest pending time.
    sh.overflow.push_back(n);
    std::push_heap(sh.overflow.begin(), sh.overflow.end(), heap_later);
    rebuild(sh, sh.buckets.size());
    return;
  }
  const auto idx = static_cast<std::size_t>((n->t - sh.base) / sh.width);
  bucket_insert(sh.buckets[idx], n);
  if (idx < sh.cur) sh.cur = idx;
  ++sh.cal_size;
  if (sh.cal_size > 2 * sh.buckets.size() && sh.buckets.size() < kMaxBuckets)
    rebuild(sh, sh.buckets.size() * 2);
}

Time Engine::next_time(Shard& sh) {
  if (sh.cal_size == 0) {
    if (sh.overflow.empty()) return kNever;
    rebase(sh);
  }
  std::size_t i = sh.cur;
  while (sh.buckets[i].head == nullptr) ++i;  // cal_size > 0 bounds the scan
  sh.cur = i;
  return sh.buckets[i].head->t;
}

Engine::EventNode* Engine::pop_min(Shard& sh) {
  if (next_time(sh) == kNever) return nullptr;
  EventNode* n = bucket_pop(sh.buckets[sh.cur]);
  --sh.cal_size;
  ++sh.pops_since_resize;
  if (sh.pops_since_resize >= sh.buckets.size() / 2 && sh.buckets.size() > kInitBuckets &&
      sh.cal_size + sh.overflow.size() < sh.buckets.size() / 8)
    rebuild(sh, std::max(kInitBuckets, sh.buckets.size() / 2));
  return n;
}

void Engine::rebase(Shard& sh) {
  // Calendar year drained; re-anchor it at the earliest overflow event and
  // migrate everything that now falls inside the horizon.
  EventNode* top = sh.overflow.front();
  sh.base = top->t - (top->t % sh.width);
  sh.cur = 0;
  const Time horizon = sh.base + static_cast<Time>(sh.buckets.size()) * sh.width;
  while (!sh.overflow.empty() && sh.overflow.front()->t < horizon) {
    std::pop_heap(sh.overflow.begin(), sh.overflow.end(), heap_later);
    EventNode* n = sh.overflow.back();
    sh.overflow.pop_back();
    const auto idx = static_cast<std::size_t>((n->t - sh.base) / sh.width);
    bucket_insert(sh.buckets[idx], n);
    ++sh.cal_size;
  }
}

void Engine::rebuild(Shard& sh, std::size_t nbuckets) {
  ++sh.stats.calendar_rebuilds;
  sh.pops_since_resize = 0;

  std::vector<EventNode*> all;
  all.reserve(sh.cal_size + sh.overflow.size());
  for (std::size_t i = sh.cur; i < sh.buckets.size(); ++i)
    for (EventNode* n = sh.buckets[i].head; n != nullptr;) {
      EventNode* next = n->next;
      all.push_back(n);
      n = next;
    }
  all.insert(all.end(), sh.overflow.begin(), sh.overflow.end());
  sh.overflow.clear();

  // Re-derive the bucket width from the observed event spacing: twice the
  // mean gap between adjacent distinct times in a small sorted sample, so
  // a bucket holds a handful of events on average.
  if (all.size() >= 2) {
    std::array<Time, 64> sample;
    const std::size_t take = std::min(all.size(), sample.size());
    for (std::size_t i = 0; i < take; ++i) sample[i] = all[i * all.size() / take]->t;
    std::sort(sample.begin(), sample.begin() + static_cast<std::ptrdiff_t>(take));
    Dur gap_sum = 0;
    int gaps = 0;
    for (std::size_t i = 1; i < take; ++i)
      if (sample[i] > sample[i - 1]) {
        gap_sum += sample[i] - sample[i - 1];
        ++gaps;
      }
    if (gaps > 0) sh.width = std::max<Dur>(1, 2 * gap_sum / gaps);
  }

  sh.buckets.assign(nbuckets, Bucket{});
  sh.cal_size = 0;
  sh.cur = 0;
  Time lo = sh.now;
  for (EventNode* n : all) lo = std::min(lo, n->t);
  sh.base = lo - (lo % sh.width);
  const Time horizon = sh.base + static_cast<Time>(nbuckets) * sh.width;
  for (EventNode* n : all) {
    if (n->t >= horizon) {
      sh.overflow.push_back(n);
      std::push_heap(sh.overflow.begin(), sh.overflow.end(), heap_later);
    } else {
      bucket_insert(sh.buckets[static_cast<std::size_t>((n->t - sh.base) / sh.width)], n);
      ++sh.cal_size;
    }
  }
}

void Engine::dispatch(Shard& sh, EventNode* n) {
  sh.now = n->t;
  ++sh.processed;
  n->invoke(*n);
  release(sh, n);
}

bool Engine::step() {
  assert(!sharded() && "step() drives the single-queue engine only");
  Shard& sh = *shards_[0];
  EventNode* n = pop_min(sh);
  if (n == nullptr) return false;
  const ExecCtx saved = tls_ctx_;
  tls_ctx_ = {this, &sh};
  dispatch(sh, n);
  tls_ctx_ = saved;
  return true;
}

std::uint64_t Engine::run_single(Time deadline) {
  Shard& sh = *shards_[0];
  const ExecCtx saved = tls_ctx_;
  tls_ctx_ = {this, &sh};
  running_ = true;
  std::uint64_t n = 0;
  while (true) {
    const Time t = next_time(sh);
    if (t == kNever || t > deadline) break;
    dispatch(sh, pop_min(sh));
    ++n;
  }
  running_ = false;
  tls_ctx_ = saved;
  if (deadline != kNever && sh.now < deadline && sh.cal_size == 0 && sh.overflow.empty())
    sh.now = deadline;
  return n;
}

std::uint64_t Engine::drain_shard(Shard& sh, Time bound) {
  const ExecCtx saved = tls_ctx_;
  tls_ctx_ = {this, &sh};
  std::uint64_t n = 0;
  while (true) {
    const Time t = next_time(sh);
    if (t >= bound) break;  // kNever exits too
    dispatch(sh, pop_min(sh));
    ++n;
  }
  tls_ctx_ = saved;
  return n;
}

void Engine::merge_outboxes() {
  // Deterministic merge order: destination-major, then source shard, then
  // emission order within a box. Destination assigns the sequence numbers,
  // so this order IS the tie-break order — identical no matter how many
  // workers drained the round.
  const int s_count = num_shards();
  for (int d = 0; d < s_count; ++d) {
    Shard& dst = *shards_[static_cast<std::size_t>(d)];
    for (int s = 0; s < s_count; ++s) {
      Shard& src = *shards_[static_cast<std::size_t>(s)];
      auto& box = src.outbox[static_cast<std::size_t>(d)];
      for (EventNode* n : box) {
        EventNode* m = acquire(dst);
        m->invoke = n->invoke;
        m->drop = n->drop;
        m->relocate = n->relocate;
        if (n->relocate != nullptr)
          n->relocate(*n, *m);
        else
          std::memcpy(m->buf, n->buf, EventNode::kInlineBytes);
        assert(n->t >= dst.now);
        push(dst, m, n->t);
        release(src, n);
      }
      box.clear();
    }
  }
}

Time Engine::global_next_time() {
  Time t = kNever;
  for (auto& shp : shards_) t = std::min(t, next_time(*shp));
  return t;
}

std::uint64_t Engine::run_rounds(Time deadline) {
  std::uint64_t before = 0;
  for (auto& shp : shards_) before += shp->processed;
  running_ = true;
  if (workers_ <= 1) {
    while (true) {
      const Time t0 = global_next_time();
      if (t0 == kNever || t0 > deadline) break;
      const Time bound =
          deadline == kNever ? t0 + lookahead_ : std::min(t0 + lookahead_, deadline + 1);
      for (auto& shp : shards_) drain_shard(*shp, bound);
      merge_outboxes();
      for (auto& shp : shards_) ++shp->stats.rounds;
    }
  } else {
    run_rounds_parallel(deadline);
  }
  running_ = false;
  if (deadline != kNever && idle())
    for (auto& shp : shards_) shp->now = std::max(shp->now, deadline);
  std::uint64_t after = 0;
  for (auto& shp : shards_) after += shp->processed;
  return after - before;
}

void Engine::run_rounds_parallel(Time deadline) {
  const int s_count = num_shards();
  const int w_count = workers_;
  std::barrier<> gate(w_count + 1);
  std::atomic<bool> stop{false};
  Time bound = 0;  // written by the coordinator, published by the barrier

  std::vector<std::thread> crew;
  crew.reserve(static_cast<std::size_t>(w_count));
  for (int w = 0; w < w_count; ++w) {
    crew.emplace_back([this, &gate, &stop, &bound, w, s_count, w_count] {
      while (true) {
        gate.arrive_and_wait();  // round published (bound valid, or stop set)
        if (stop.load(std::memory_order_relaxed)) break;
        // Fixed shard->worker striping: shard s always drains on worker
        // s % w_count, so per-shard state never migrates mid-run.
        for (int s = w; s < s_count; s += w_count)
          drain_shard(*shards_[static_cast<std::size_t>(s)], bound);
        gate.arrive_and_wait();  // round drained
      }
      detail::frame_cache_flush();  // donate cached coroutine frames back
    });
  }

  while (true) {
    const Time t0 = global_next_time();
    if (t0 == kNever || t0 > deadline) {
      stop.store(true, std::memory_order_relaxed);
      gate.arrive_and_wait();
      break;
    }
    bound = deadline == kNever ? t0 + lookahead_ : std::min(t0 + lookahead_, deadline + 1);
    gate.arrive_and_wait();  // release the crew into the round
    gate.arrive_and_wait();  // every shard drained
    merge_outboxes();
    for (auto& shp : shards_) ++shp->stats.rounds;
  }
  for (auto& th : crew) th.join();
}

std::uint64_t Engine::run() { return sharded() ? run_rounds(kNever) : run_single(kNever); }

std::uint64_t Engine::run_until(Time deadline) {
  return sharded() ? run_rounds(deadline) : run_single(deadline);
}

bool Engine::idle() const {
  for (auto& shp : shards_) {
    if (shp->cal_size != 0 || !shp->overflow.empty()) return false;
    for (auto& box : shp->outbox)
      if (!box.empty()) return false;
  }
  return true;
}

std::uint64_t Engine::events_processed() const {
  std::uint64_t n = 0;
  for (auto& shp : shards_) n += shp->processed;
  return n;
}

Engine::Stats Engine::stats() const {
  Stats total;
  for (auto& shp : shards_) {
    total.pool_chunks += shp->stats.pool_chunks;
    total.boxed_callbacks += shp->stats.boxed_callbacks;
    total.calendar_rebuilds += shp->stats.calendar_rebuilds;
    total.overflow_parked += shp->stats.overflow_parked;
    total.cross_shard_events += shp->stats.cross_shard_events;
    total.rounds = std::max(total.rounds, shp->stats.rounds);
  }
  return total;
}

void Engine::note_task_done(std::coroutine_handle<> h) {
  Shard& sh = ctx_shard();
  if (sh.detached.erase(h.address()) > 0) return;
  // A detached frame finishing off its spawn shard would be a cross-shard
  // resume — forbidden while rounds are running (the scan below would race).
  assert(!running_ || !sharded());
  for (auto& shp : shards_)
    if (shp->detached.erase(h.address()) > 0) return;
}

std::int64_t Engine::live_tasks() const {
  std::int64_t n = 0;
  for (auto& shp : shards_) n += static_cast<std::int64_t>(shp->detached.size());
  return n;
}

}  // namespace pd::sim
