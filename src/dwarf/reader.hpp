// DWARF debug-info reader.
//
// Parses a `.debug_abbrev` + `.debug_info` pair into a DIE tree. The reader
// is form-driven (it interprets whatever attribute/form pairs the abbrev
// table declares, within the supported form subset), so it does not assume
// the stream came from this library's writer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.hpp"

namespace pd::dwarf {

using AttrValue = std::variant<std::uint64_t, std::int64_t, std::string, bool>;

/// One debugging-information entry.
struct Die {
  std::uint64_t tag = 0;
  std::uint64_t offset = 0;  // offset within .debug_info (ref4 target)
  std::vector<std::pair<std::uint64_t, AttrValue>> attrs;
  std::vector<std::unique_ptr<Die>> children;

  const AttrValue* find_attr(std::uint64_t attr) const;
  std::optional<std::string> name() const;
  std::optional<std::uint64_t> unsigned_attr(std::uint64_t attr) const;
  std::optional<std::int64_t> signed_attr(std::uint64_t attr) const;
};

/// Parsed compile unit with an offset index for DW_AT_type resolution.
class DebugInfoView {
 public:
  /// Parse; returns EINVAL on malformed input. `str` is the .debug_str
  /// section, required only when the abbrev table uses DW_FORM_strp.
  static Result<DebugInfoView> parse(const std::vector<std::uint8_t>& abbrev,
                                     const std::vector<std::uint8_t>& info,
                                     const std::vector<std::uint8_t>& str = {});

  const Die& compile_unit() const { return *cu_; }

  /// Resolve a ref4 offset to its DIE (nullptr if absent).
  const Die* at_offset(std::uint64_t offset) const;

  /// Follow this DIE's DW_AT_type reference (nullptr if it has none).
  const Die* type_of(const Die& die) const;

  /// Depth-first search for the first DIE with the given tag and DW_AT_name.
  const Die* find_named(std::uint64_t tag, const std::string& name) const;

  /// All DIEs with the given tag (depth-first order).
  std::vector<const Die*> all_with_tag(std::uint64_t tag) const;

  /// dwarfdump-style rendering of the DIE tree (debugging / the CLI tool).
  std::string dump() const;

 private:
  DebugInfoView() = default;

  std::unique_ptr<Die> cu_;
  std::map<std::uint64_t, const Die*> by_offset_;
};

}  // namespace pd::dwarf
