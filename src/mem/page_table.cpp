#include "src/mem/page_table.hpp"

#include <algorithm>
#include <cassert>

namespace pd::mem {

PageTable::PageTable() : root_(std::make_unique<Node>()) {}

Status PageTable::map(VirtAddr va, PhysAddr pa, std::uint64_t page_size, std::uint32_t prot) {
  if (page_size != kPage4K && page_size != kPage2M && page_size != kPage1G)
    return Errno::einval;
  if (!page_aligned(va, page_size) || !page_aligned(pa, page_size)) return Errno::einval;

  const int leaf_level = page_size == kPage4K ? 0 : (page_size == kPage2M ? 1 : 2);
  Node* node = root_.get();
  for (int level = 3; level > leaf_level; --level) {
    Entry& e = node->entries[index_at(va, level)];
    if (e.present && e.leaf) return Errno::eexist;  // covered by a larger page
    if (!e.child) {
      e.present = true;
      e.child = std::make_unique<Node>();
    }
    node = e.child.get();
  }
  Entry& e = node->entries[index_at(va, leaf_level)];
  if (e.present) {
    // A child table can linger after all of its leaves were unmapped; an
    // empty table must not block a large-page mapping (kernels either
    // free empty tables eagerly or fold them here, as we do).
    const bool empty_table = !e.leaf && e.child != nullptr &&
                             std::all_of(e.child->entries.begin(), e.child->entries.end(),
                                         [](const Entry& c) { return !c.present; });
    if (!empty_table) return Errno::eexist;
    e.child.reset();
  }
  e.present = true;
  e.leaf = true;
  e.pa = pa;
  e.prot = prot;
  ++mapped_pages_;
  return Status::success();
}

Status PageTable::map_range(VirtAddr va, PhysAddr pa, std::uint64_t len, std::uint64_t page_size,
                            std::uint32_t prot) {
  if (!page_aligned(len, page_size)) return Errno::einval;
  for (std::uint64_t off = 0; off < len; off += page_size) {
    if (Status s = map(va + off, pa + off, page_size, prot); !s.ok()) {
      // Roll back what was mapped so a failed range leaves no residue.
      for (std::uint64_t undo = 0; undo < off; undo += page_size) (void)unmap(va + undo);
      return s;
    }
  }
  return Status::success();
}

Status PageTable::unmap(VirtAddr va) {
  Node* node = root_.get();
  for (int level = 3; level >= 0; --level) {
    Entry& e = node->entries[index_at(va, level)];
    if (!e.present) return Errno::enoent;
    if (e.leaf) {
      e.present = false;
      e.leaf = false;
      e.pa = 0;
      e.prot = 0;
      --mapped_pages_;
      return Status::success();
    }
    node = e.child.get();
  }
  return Errno::enoent;
}

void PageTable::unmap_range(VirtAddr va, std::uint64_t len) {
  const VirtAddr start = page_floor(va, kPage4K);
  const VirtAddr end = page_ceil(va + len, kPage4K);
  VirtAddr cur = start;
  while (cur < end) {
    auto t = translate(cur);
    if (t) {
      const VirtAddr page_start = page_floor(cur, t->page);
      (void)unmap(page_start);
      cur = page_start + t->page;
    } else {
      cur += kPage4K;
    }
  }
}

std::optional<Translation> PageTable::translate(VirtAddr va) const {
  const Node* node = root_.get();
  for (int level = 3; level >= 0; --level) {
    const Entry& e = node->entries[index_at(va, level)];
    if (!e.present) return std::nullopt;
    if (e.leaf) {
      const std::uint64_t page =
          level == 0 ? kPage4K : (level == 1 ? kPage2M : kPage1G);
      assert(level <= 2);
      Translation t;
      t.page = page;
      t.pa = e.pa + (va & (page - 1));
      t.prot = e.prot;
      return t;
    }
    node = e.child.get();
  }
  return std::nullopt;
}

}  // namespace pd::mem
