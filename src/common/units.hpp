// Byte-size constants and human-readable formatting.
#pragma once

#include <cstdint>
#include <string>

namespace pd {

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// "4 KiB"-style rendering, exact power-of-two sizes only get the suffix;
/// everything else falls back to plain bytes.
std::string format_bytes(std::uint64_t bytes);

/// "9234.5 MB/s" given bytes and a duration in seconds.
std::string format_bandwidth(double bytes_per_sec);

}  // namespace pd
