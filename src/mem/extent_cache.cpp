#include "src/mem/extent_cache.hpp"

#include <algorithm>

namespace pd::mem {

ExtentCache::Entry* ExtentCache::select_victim() {
  // Pinned entries are in-flight (a send is mid-way through a rendezvous
  // window): never victims, whatever their score.
  Entry* best = nullptr;
  // Size-aware retention value: an entry is worth keeping in proportion to
  // how often it hits and how many resident bytes each hit saves walking,
  // decayed by how long it has sat unused. Large persistent windows keep a
  // high score through bursts of small one-shot buffers; the burst evicts
  // its own kind instead.
  auto score = [this](const Entry& e) {
    const double value = static_cast<double>(1 + e.hit_count) * static_cast<double>(e.len);
    const double age = static_cast<double>(tick_ - e.last_used) + 1.0;
    return value / age;
  };
  for (Entry& e : entries_) {
    if (e.pin_count > 0) continue;
    if (best == nullptr) {
      best = &e;
      continue;
    }
    const bool worse = policy_ == EvictionPolicy::lru ? e.last_used < best->last_used
                                                      : score(e) < score(*best);
    if (worse) best = &e;
  }
  return best;
}

ExtentCache::Entry* ExtentCache::find_entry(VirtAddr va, std::uint64_t len,
                                            std::uint64_t max_extent) {
  for (Entry& e : entries_)
    if (e.va == va && e.len == len && e.max_extent == max_extent) return &e;
  return nullptr;
}

bool ExtentCache::pin(VirtAddr va, std::uint64_t len, std::uint64_t max_extent) {
  Entry* e = find_entry(va, len, max_extent);
  if (e == nullptr) return false;
  ++e->pin_count;
  return true;
}

void ExtentCache::unpin(VirtAddr va, std::uint64_t len, std::uint64_t max_extent) {
  Entry* e = find_entry(va, len, max_extent);
  if (e == nullptr || e->pin_count == 0) return;
  --e->pin_count;
  if (e->pin_count == 0) shrink_to_capacity();
}

std::size_t ExtentCache::pinned_entries() const {
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (e.pin_count > 0) ++n;
  return n;
}

void ExtentCache::shrink_to_capacity() {
  // A pin-forced overflow ends here: drop the lowest-value unpinned
  // entries until the cache is back at its configured size.
  while (entries_.size() > capacity_) {
    Entry* victim = select_victim();
    if (victim == nullptr) return;  // still all pinned
    ++stats_.evictions;
    if (victim != &entries_.back()) *victim = std::move(entries_.back());
    entries_.pop_back();
  }
}

Result<std::span<const PhysExtent>> ExtentCache::lookup(const AddressSpace& as, VirtAddr va,
                                                        std::uint64_t len,
                                                        std::uint64_t max_extent,
                                                        Outcome* outcome) {
  ++tick_;

  if (capacity_ == 0) {
    // Pass-through: walk into the scratch entry's storage, retain nothing.
    Status walked = as.physical_extents(va, len, max_extent, scratch_.extents);
    if (!walked.ok()) return walked.error();
    ++stats_.misses;
    if (outcome != nullptr) *outcome = Outcome::miss;
    return std::span<const PhysExtent>(scratch_.extents);
  }

  Entry* entry = nullptr;
  for (Entry& e : entries_)
    if (e.va == va && e.len == len && e.max_extent == max_extent) {
      entry = &e;
      break;
    }

  Outcome miss_kind = Outcome::miss;
  if (entry != nullptr) {
    bool fresh = entry->generation == as.map_generation();
    if (!fresh) {
      // Range-precise check: only an unmap overlapping this entry's pages
      // proves it stale. When the log can clear it, refresh the generation
      // so the next lookup takes the cheap equality path again.
      switch (as.range_verdict_since(entry->va, entry->len, entry->generation)) {
        case RangeVerdict::intact:
          entry->generation = as.map_generation();
          fresh = true;
          break;
        case RangeVerdict::overlaps_unmap:
          miss_kind = Outcome::range_invalidated;
          break;
        case RangeVerdict::unknown:
          miss_kind = Outcome::generation_overflow;
          break;
      }
    }
    if (fresh) {
      ++stats_.hits;
      ++entry->hit_count;
      entry->last_used = tick_;
      if (outcome != nullptr) *outcome = Outcome::hit;
      return std::span<const PhysExtent>(entry->extents);
    }
  }

  if (entry == nullptr) {
    if (entries_.size() < capacity_) {
      entry = &entries_.emplace_back();
    } else if (Entry* victim = select_victim(); victim != nullptr) {
      // Evict the lowest-retention-value slot; its vector capacity is reused.
      entry = victim;
      ++stats_.evictions;
      miss_kind = Outcome::evicted_small;
    } else {
      // Every resident entry is pinned by an in-flight send: overflow
      // capacity rather than kill a window; unpin() shrinks back.
      entry = &entries_.emplace_back();
    }
    entry->va = va;
    entry->len = len;
    entry->max_extent = max_extent;
    entry->hit_count = 0;
  }

  Status walked = as.physical_extents(va, len, max_extent, entry->extents);
  if (!walked.ok()) {
    // Keep the slot but poison the key so a later success does not alias.
    // Any pin dies with the key: the holder's unpin will no-op, and a
    // stranded pin must not block eviction of a now-meaningless slot.
    entry->va = 0;
    entry->len = 0;
    entry->hit_count = 0;
    entry->pin_count = 0;
    return walked.error();
  }
  entry->generation = as.map_generation();
  entry->last_used = tick_;
  switch (miss_kind) {
    case Outcome::miss:
    case Outcome::evicted_small:
      ++stats_.misses;
      break;
    case Outcome::range_invalidated:
      ++stats_.range_invalidations;
      break;
    case Outcome::generation_overflow:
      ++stats_.generation_overflows;
      break;
    case Outcome::hit:
      break;  // unreachable
  }
  if (outcome != nullptr) *outcome = miss_kind;
  return std::span<const PhysExtent>(entry->extents);
}

}  // namespace pd::mem
