file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_syscalls.dir/bench_fig8_9_syscalls.cpp.o"
  "CMakeFiles/bench_fig8_9_syscalls.dir/bench_fig8_9_syscalls.cpp.o.d"
  "bench_fig8_9_syscalls"
  "bench_fig8_9_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
