// dwarf-extract-struct — the paper's §3.2 tool.
//
// Walks the DWARF debug info of a kernel-module binary, finds the
// requested structure and fields, and emits a standalone padded-union
// header (Listing 1 style) on stdout or to a file.
//
// Usage:
//   dwarf-extract-struct <module.ko> <struct> <field> [<field>...] [-o out.h]
//   dwarf-extract-struct --ship-demo <version> <out.ko>
//
// The second form writes the simulated HFI1 module binary for one of the
// modeled driver releases (10.8-0, 10.9-5, 11.0-2) so the first form has
// something real to chew on:
//
//   dwarf-extract-struct --ship-demo 10.9-5 hfi1.ko
//   dwarf-extract-struct hfi1.ko sdma_state current_state go_s99_running
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/dwarf/extract.hpp"
#include "src/dwarf/module_binary.hpp"
#include "src/hfi/layouts.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dwarf-extract-struct <module.ko> <struct> <field> [<field>...] "
               "[-o out.h]\n"
               "       dwarf-extract-struct --ship-demo <version> <out.ko>\n"
               "       dwarf-extract-struct --dump <module.ko>\n");
  return 2;
}

int dump_module(const std::string& path) {
  auto module = pd::dwarf::ModuleBinary::load(path);
  if (!module.ok()) {
    std::fprintf(stderr, "cannot load module binary %s\n", path.c_str());
    return 1;
  }
  const auto* abbrev = module->section(".debug_abbrev");
  const auto* info = module->section(".debug_info");
  const auto* str = module->section(".debug_str");
  if (abbrev == nullptr || info == nullptr) {
    std::fprintf(stderr, "%s has no debug info sections\n", path.c_str());
    return 1;
  }
  static const std::vector<std::uint8_t> kEmpty;
  auto view = pd::dwarf::DebugInfoView::parse(*abbrev, *info, str != nullptr ? *str : kEmpty);
  if (!view.ok()) {
    std::fprintf(stderr, "malformed debug info in %s\n", path.c_str());
    return 1;
  }
  std::fputs(view->dump().c_str(), stdout);
  return 0;
}

int ship_demo(const std::string& version, const std::string& path) {
  auto layouts = pd::hfi::DriverLayouts::for_version(version);
  if (!layouts.ok()) {
    std::fprintf(stderr, "unknown driver version '%s' (try 10.8-0, 10.9-5, 11.0-2)\n",
                 version.c_str());
    return 1;
  }
  const pd::dwarf::ModuleBinary module = layouts->ship_module();
  if (!module.save(path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%s)\n", path.c_str(), module.version()->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() >= 3 && args[0] == "--ship-demo") return ship_demo(args[1], args[2]);
  if (args.size() == 2 && args[0] == "--dump") return dump_module(args[1]);
  if (args.size() < 3) return usage();

  std::string out_path;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "-o") {
      out_path = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i), args.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  if (args.size() < 3) return usage();

  const std::string& module_path = args[0];
  const std::string& struct_name = args[1];
  const std::vector<std::string> fields(args.begin() + 2, args.end());

  auto module = pd::dwarf::ModuleBinary::load(module_path);
  if (!module.ok()) {
    std::fprintf(stderr, "cannot load module binary %s\n", module_path.c_str());
    return 1;
  }
  const auto* abbrev = module->section(".debug_abbrev");
  const auto* info = module->section(".debug_info");
  if (abbrev == nullptr || info == nullptr) {
    std::fprintf(stderr, "%s has no debug info sections\n", module_path.c_str());
    return 1;
  }
  static const std::vector<std::uint8_t> kNoStr;
  const auto* str = module->section(".debug_str");
  auto view = pd::dwarf::DebugInfoView::parse(*abbrev, *info, str != nullptr ? *str : kNoStr);
  if (!view.ok()) {
    std::fprintf(stderr, "malformed debug info in %s\n", module_path.c_str());
    return 1;
  }
  auto header = pd::dwarf::extract_struct_header(*view, struct_name, fields);
  if (!header.ok()) {
    std::fprintf(stderr, "extraction failed: struct '%s' or a requested field not found\n",
                 struct_name.c_str());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(header->c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    out << *header;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
