file(REMOVE_RECURSE
  "CMakeFiles/ib_regmr_extension.dir/ib_regmr_extension.cpp.o"
  "CMakeFiles/ib_regmr_extension.dir/ib_regmr_extension.cpp.o.d"
  "ib_regmr_extension"
  "ib_regmr_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_regmr_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
