// Unit tests for the OS layer: noise model, syscall profiler, IRQ
// routing, IHK offload queueing/costs, and Process memory syscalls.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/common/units.hpp"
#include "src/os/ihk.hpp"
#include "src/os/proc_jobs.hpp"
#include "src/os/process.hpp"
#include "src/sim/task.hpp"

#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    const bool co_assert_ok_ = static_cast<bool>(cond); \
    EXPECT_TRUE(co_assert_ok_) << #cond;              \
    if (!co_assert_ok_) co_return;                    \
  } while (0)

namespace pd::os {
namespace {

using namespace pd::time_literals;

TEST(Noise, LwkComputeIsExact) {
  sim::Engine engine;
  Config cfg;
  Ihk* ihk = nullptr;  // not needed for noise
  (void)ihk;
  LinuxKernel linux_kernel(engine, cfg);
  Ihk real_ihk(engine, cfg, linux_kernel);
  McKernel mck(engine, cfg, real_ihk, true);
  Rng rng(1);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(mck.noisy_duration(from_ms(1.0), rng), from_ms(1.0))
        << "LWK compute must be noise-free";
}

TEST(Noise, LinuxComputeInflatedAndJittery) {
  sim::Engine engine;
  Config cfg;
  LinuxKernel linux_kernel(engine, cfg);
  Rng rng(2);
  const Dur work = from_ms(50.0);
  double total = 0;
  Dur min_d = work * 10, max_d = 0;
  constexpr int kSamples = 200;
  for (int i = 0; i < kSamples; ++i) {
    const Dur d = linux_kernel.noisy_duration(work, rng);
    EXPECT_GE(d, work) << "noise only adds time";
    total += static_cast<double>(d);
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
  }
  const double mean_inflation = total / kSamples / static_cast<double>(work) - 1.0;
  // Steady duty + expected daemon spikes: 0.2% + (50ms/50ms)*10us/50ms = ~0.22%.
  EXPECT_GT(mean_inflation, 0.001);
  EXPECT_LT(mean_inflation, 0.01);
  EXPECT_GT(max_d, min_d) << "daemon spikes must produce jitter";
}

TEST(Profiler, RowsSortedAndShares) {
  SyscallProfiler prof;
  prof.record("writev", from_us(30));
  prof.record("writev", from_us(30));
  prof.record("ioctl", from_us(100));
  prof.record("open", from_us(10));
  auto rows = prof.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "ioctl");
  EXPECT_EQ(rows[1].name, "writev");
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_NEAR(prof.share_of("ioctl"), 100.0 / 170.0, 1e-9);
  EXPECT_EQ(prof.count_of("nanosleep"), 0u);

  SyscallProfiler other;
  other.record("ioctl", from_us(100));
  prof.merge(other);
  EXPECT_NEAR(prof.share_of("ioctl"), 200.0 / 270.0, 1e-9);
  prof.clear();
  EXPECT_EQ(prof.total_kernel_time(), 0);
}

TEST(Irq, HandledOnServiceCpuWithCost) {
  sim::Engine engine;
  Config cfg;
  LinuxKernel linux_kernel(engine, cfg);
  Time handled_at = -1;
  linux_kernel.raise_irq({KernelCallback{linux_kernel.layout().image.start + 8,
                                         [&] { handled_at = engine.now(); }}});
  engine.run();
  EXPECT_EQ(handled_at, cfg.irq_handler);
  EXPECT_EQ(linux_kernel.irqs_handled(), 1u);
}

TEST(Irq, QueuesBehindBusyServiceCpus) {
  sim::Engine engine;
  Config cfg;
  cfg.linux_service_cpus = 1;
  LinuxKernel linux_kernel(engine, cfg);
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i)
    linux_kernel.raise_irq({KernelCallback{linux_kernel.layout().image.start,
                                           [&] { done.push_back(engine.now()); }}});
  engine.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], cfg.irq_handler);
  EXPECT_EQ(done[1], 2 * cfg.irq_handler);
  EXPECT_EQ(done[2], 3 * cfg.irq_handler);
}

TEST(VmapArea, RejectsOutsideModuleSpaceAndOverlap) {
  sim::Engine engine;
  Config cfg;
  LinuxKernel linux_kernel(engine, cfg);
  const auto module_space = linux_kernel.layout().module_space;
  mem::VaRange inside{"x", module_space.start + 0x1000, module_space.start + 0x2000};
  EXPECT_TRUE(linux_kernel.reserve_vmap_area(inside).ok());
  EXPECT_EQ(linux_kernel.reserve_vmap_area(inside).error(), Errno::eexist);
  mem::VaRange outside{"y", 0xFFFF'0000'0000'0000ull, 0xFFFF'0000'0001'0000ull};
  EXPECT_EQ(linux_kernel.reserve_vmap_area(outside).error(), Errno::einval);
  EXPECT_TRUE(linux_kernel.text_visible(module_space.start + 0x1800));
  EXPECT_FALSE(linux_kernel.text_visible(module_space.start + 0x3000));
}

TEST(Ihk, UncontendedOffloadIsNearNative) {
  // An idle proxy serves at native work speed with the hot wakeup only —
  // the reason single-stream offloading costs ~10 % in Fig. 4, not 5x.
  sim::Engine engine;
  Config cfg;
  cfg.offload_service_multiplier = 4.0;
  LinuxKernel linux_kernel(engine, cfg);
  Ihk ihk(engine, cfg, linux_kernel);

  Time finished = -1;
  const Dur work = from_us(10);
  sim::spawn(engine, [](sim::Engine& eng, Ihk& i, Dur w, Time& out) -> sim::Task<> {
    auto r = co_await i.offload([&eng, w]() -> sim::Task<Result<long>> {
      co_await eng.delay(w);
      co_return 7L;
    });
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(*r, 7L);
    out = eng.now();
  }(engine, ihk, work, finished));
  engine.run();

  const Dur expected = 2 * cfg.offload_oneway + cfg.proxy_wakeup_hot +
                       cfg.offload_dispatch + cfg.proxy_min_service + work;
  EXPECT_EQ(finished, expected);
  EXPECT_EQ(ihk.offload_count(), 1u);
  EXPECT_DOUBLE_EQ(ihk.queueing_summary().mean_us, 0.0);
}

TEST(Ihk, ContendedOffloadDegradesService) {
  // With a saturated queue the per-call cost must exceed the uncontended
  // cost by far more than pure queueing would explain (thrash + cold
  // wakeups + slower proxy-run work).
  sim::Engine engine;
  Config cfg;
  cfg.linux_service_cpus = 1;
  LinuxKernel linux_kernel(engine, cfg);
  Ihk ihk(engine, cfg, linux_kernel);

  const Dur work = from_us(5);
  constexpr int kCalls = 30;
  Time last = 0;
  int done = 0;
  for (int i = 0; i < kCalls; ++i) {
    sim::spawn(engine, [](sim::Engine& eng, Ihk& ih, Dur w, Time& out, int& n) -> sim::Task<> {
      auto r = co_await ih.offload([&eng, w]() -> sim::Task<Result<long>> {
        co_await eng.delay(w);
        co_return 0L;
      });
      EXPECT_TRUE(r.ok());
      out = eng.now();
      ++n;
    }(engine, ihk, work, last, done));
  }
  engine.run();
  EXPECT_EQ(done, kCalls);
  // Pure FIFO without degradation would take ~ kCalls * (uncontended
  // service); the load-dependent model must be well beyond that.
  const Dur uncontended = cfg.proxy_wakeup_hot + cfg.offload_dispatch +
                          cfg.proxy_min_service + work;
  EXPECT_GT(last, kCalls * uncontended * 2);
}

TEST(Ihk, ContentionProducesQueueingAndThrash) {
  sim::Engine engine;
  Config cfg;
  cfg.linux_service_cpus = 1;
  LinuxKernel linux_kernel(engine, cfg);
  Ihk ihk(engine, cfg, linux_kernel);

  int done = 0;
  for (int i = 0; i < 8; ++i) {
    sim::spawn(engine, [](sim::Engine& eng, Ihk& ih, int& n) -> sim::Task<> {
      auto r = co_await ih.offload([&eng]() -> sim::Task<Result<long>> {
        co_await eng.delay(from_us(5));
        co_return 0L;
      });
      EXPECT_TRUE(r.ok());
      ++n;
    }(engine, ihk, done));
  }
  engine.run();
  EXPECT_EQ(done, 8);
  const auto q = ihk.queueing_summary();
  EXPECT_EQ(q.count, 8u);
  EXPECT_GT(q.mean_us, 5.0) << "serialized behind one CPU";
  EXPECT_GE(q.p95_us, q.p50_us);
  EXPECT_GE(q.max_us, q.p95_us);
}

// --- Process syscall surface ----------------------------------------------

struct ProcFixture {
  sim::Engine engine;
  Config cfg;
  mem::PhysMap phys = mem::PhysMap::knl(256_MiB, 1ull << 30, 2);
  LinuxKernel linux_kernel{engine, cfg};
  Ihk ihk{engine, cfg, linux_kernel};
  McKernel mck{engine, cfg, ihk, true};
};

TEST(Process, MmapMunmapAccountedInKernelProfile) {
  ProcFixture f;
  Process proc(f.mck, f.phys, 0, 0, 3);
  sim::spawn(f.engine, [](Process& p) -> sim::Task<> {
    auto va = co_await p.mmap_anon(2_MiB);
    CO_ASSERT_TRUE(va.ok());
    auto r = co_await p.munmap(*va, 2_MiB);
    CO_ASSERT_TRUE(r.ok());
  }(proc));
  f.engine.run();
  EXPECT_EQ(f.mck.profiler().count_of("mmap"), 1u);
  EXPECT_EQ(f.mck.profiler().count_of("munmap"), 1u);
  // LWK munmap is per-page more expensive than mmap (the §4.3 observation).
  EXPECT_GT(f.mck.profiler().total_us_of("munmap"), f.mck.profiler().total_us_of("mmap"));
}

TEST(Process, LwkMunmapCostlierThanLinux) {
  ProcFixture f;
  Process lwk(f.mck, f.phys, 0, 0, 3);
  Process lnx(f.linux_kernel, f.phys, 0, 1, 4);
  auto churn = [](Process& p) -> sim::Task<> {
    auto va = co_await p.mmap_anon(4_MiB);
    CO_ASSERT_TRUE(va.ok());
    (void)co_await p.munmap(*va, 4_MiB);
  };
  sim::spawn(f.engine, churn(lwk));
  sim::spawn(f.engine, churn(lnx));
  f.engine.run();
  EXPECT_GT(f.mck.profiler().total_us_of("munmap"),
            f.linux_kernel.profiler().total_us_of("munmap"));
}

TEST(Process, BadFdReturnsEbadf) {
  ProcFixture f;
  Process proc(f.linux_kernel, f.phys, 0, 0, 5);
  sim::spawn(f.engine, [](Process& p) -> sim::Task<> {
    auto w = co_await p.writev(42, std::vector<os::IoVec>{});
    EXPECT_EQ(w.error(), Errno::ebadf);
    auto i = co_await p.ioctl(42, 1, nullptr);
    EXPECT_EQ(i.error(), Errno::ebadf);
    auto c = co_await p.close_fd(42);
    EXPECT_EQ(c.error(), Errno::ebadf);
  }(proc));
  f.engine.run();
}

TEST(Process, OpenUnknownDeviceFails) {
  ProcFixture f;
  Process proc(f.linux_kernel, f.phys, 0, 0, 6);
  sim::spawn(f.engine, [](Process& p) -> sim::Task<> {
    auto fd = co_await p.open("/dev/nonexistent");
    EXPECT_EQ(fd.error(), Errno::enoent);
  }(proc));
  f.engine.run();
}

TEST(Process, NanosleepRecordsKernelTime) {
  ProcFixture f;
  Process proc(f.mck, f.phys, 0, 0, 7);
  sim::spawn(f.engine, [](Process& p) -> sim::Task<> {
    co_await p.nanosleep(from_us(5));
  }(proc));
  f.engine.run();
  EXPECT_EQ(f.mck.profiler().count_of("nanosleep"), 1u);
  EXPECT_GE(f.mck.profiler().total_us_of("nanosleep"), 5.0);
}

TEST(Process, LwkBackingIsPinnedContiguous) {
  ProcFixture f;
  Process proc(f.mck, f.phys, 0, 0, 8);
  sim::spawn(f.engine, [](Process& p) -> sim::Task<> {
    auto va = co_await p.mmap_anon(4_MiB);
    CO_ASSERT_TRUE(va.ok());
    const mem::Vma* vma = p.as().find_vma(*va);
    EXPECT_NE(vma, nullptr);
    EXPECT_TRUE(vma->pinned);
    EXPECT_GT(p.as().large_page_fraction(), 0.9);
  }(proc));
  f.engine.run();
}

TEST(ConfigValidate, DefaultsAreValidInBothTransports) {
  Config cfg;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.ikc_mode = IkcMode::ring;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(ConfigValidate, RingModeWithoutServiceCpusIsEinval) {
  Config cfg;
  cfg.ikc_mode = IkcMode::ring;
  cfg.linux_service_cpus = 0;
  std::string why;
  const Status s = cfg.validate(&why);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), Errno::einval);
  EXPECT_NE(why.find("linux_service_cpus"), std::string::npos) << why;
  // Direct mode has no service loops to starve; the same knob is fine there.
  cfg.ikc_mode = IkcMode::direct;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(ConfigValidate, RejectsDegenerateRingAndAdaptiveKnobs) {
  Config cfg;
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_ring_depth = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = Config{};
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_batch = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg = Config{};
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_reply_depth = 0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.ikc_reply_mode = ReplyMode::latch;  // knob only matters for reply rings
  EXPECT_TRUE(cfg.validate().ok());
  cfg = Config{};
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_adaptive_alpha = 0.0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.ikc_adaptive_batch = false;  // static batching ignores the EWMA knobs
  EXPECT_TRUE(cfg.validate().ok());
  cfg = Config{};
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_adaptive_headroom = 0.5;
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(ConfigValidate, RejectsDegenerateQosKnobs) {
  Config cfg;
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_job_weights = {1.0, 0.0};  // a zero-weight job would never drain
  EXPECT_FALSE(cfg.validate().ok());
  cfg.ikc_job_weights = {1.0, -2.0};
  EXPECT_FALSE(cfg.validate().ok());
  cfg.ikc_job_weights = {2.0, 1.0};
  EXPECT_TRUE(cfg.validate().ok());

  cfg = Config{};
  cfg.ikc_mode = IkcMode::ring;
  cfg.ikc_job_credits = -1;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.ikc_job_credits = 2;
  cfg.ikc_credit_retries = -1;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.ikc_credit_retries = 0;  // 0 retries is a valid hard-fail policy
  EXPECT_TRUE(cfg.validate().ok());
  cfg.ikc_credit_backoff = from_us(-1);
  EXPECT_FALSE(cfg.validate().ok());

  cfg = Config{};
  cfg.pico_extent_quota_files = -1;  // checked in every transport mode
  EXPECT_FALSE(cfg.validate().ok());
  cfg.pico_extent_quota_files = 0;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(ConfigValidate, TransportConstructionThrowsOnInvalidConfig) {
  sim::Engine engine;
  Config cfg;
  cfg.ikc_mode = IkcMode::ring;
  cfg.linux_service_cpus = 0;
  // LinuxKernel itself still boots (Linux runs with zero reserved service
  // CPUs in linux mode); the *transport* is what must refuse the config.
  LinuxKernel linux_kernel{engine, Config{}};
  Samples queueing;
  EXPECT_THROW(ikc::IkcTransport(engine, cfg, linux_kernel.service_cpus(),
                                 linux_kernel.profiler(), queueing,
                                 linux_kernel.spinlock_abi()),
               std::invalid_argument);
  try {
    ikc::IkcTransport t(engine, cfg, linux_kernel.service_cpus(), linux_kernel.profiler(),
                        queueing, linux_kernel.spinlock_abi());
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("linux_service_cpus"), std::string::npos)
        << e.what();
  }
}

// --- /proc/pd/jobs introspection (ISSUE 9 satellite) ----------------------

TEST(ProcJobs, SnapshotReadsThroughVfsAndRewindRerenders) {
  ProcFixture f;
  ProcJobsFile jobs(f.linux_kernel, f.ihk.transport());
  // Two LWK tenants generate job-tagged offload traffic (the open/close of
  // the proc file itself rides the offload path).
  Process pa(f.mck, f.phys, 0, 0, 11);
  Process pb(f.mck, f.phys, 0, 1, 12);
  pa.set_job(1);
  pb.set_job(2);
  // A native Linux reader pages through the table without offload noise.
  Process reader(f.linux_kernel, f.phys, 0, 2, 13);
  sim::spawn(f.engine,
             [](ProcJobsFile& file, Process& a, Process& b, Process& rd) -> sim::Task<> {
    for (Process* p : {&a, &b}) {
      auto fd = co_await p->open("/proc/pd/jobs");
      CO_ASSERT_TRUE(fd.ok());
      CO_ASSERT_TRUE((co_await p->close_fd(*fd)).ok());
    }

    auto fd = co_await rd.open("/proc/pd/jobs");
    CO_ASSERT_TRUE(fd.ok());
    const std::string* snap = ProcJobsFile::snapshot(*rd.file(*fd));
    CO_ASSERT_TRUE(snap != nullptr);
    EXPECT_NE(snap->find("job weight submitted"), std::string::npos);
    EXPECT_NE(snap->find("\n1 1.00 "), std::string::npos) << *snap;
    EXPECT_NE(snap->find("\n2 1.00 "), std::string::npos) << *snap;

    // The read syscall consumes the snapshot in chunks and hits EOF at
    // exactly its size — the seq_file contract on the simulated VFS.
    std::uint64_t total = 0;
    for (;;) {
      auto n = co_await rd.read_fd(*fd, 64);
      CO_ASSERT_TRUE(n.ok());
      if (*n == 0) break;
      EXPECT_LE(*n, 64L);
      total += static_cast<std::uint64_t>(*n);
    }
    EXPECT_EQ(total, snap->size());

    // Rewind-to-start re-renders (procfs re-read); any other seek is ESPIPE.
    auto bad = co_await rd.lseek(*fd, 8, 0);
    EXPECT_EQ(bad.error(), Errno::espipe);
    CO_ASSERT_TRUE((co_await rd.lseek(*fd, 0, 0)).ok());
    auto again = co_await rd.read_fd(*fd, 4096);
    CO_ASSERT_TRUE(again.ok());
    EXPECT_GT(*again, 0L) << "rewind must restart the stream";

    // Read-only surface.
    auto w = co_await rd.writev(*fd, std::vector<IoVec>{});
    EXPECT_EQ(w.error(), Errno::einval);
    CO_ASSERT_TRUE((co_await rd.close_fd(*fd)).ok());
  }(jobs, pa, pb, reader));
  f.engine.run();
}

TEST(ProcJobs, RenderTracksCompletedOffloads) {
  ProcFixture f;
  ProcJobsFile jobs(f.linux_kernel, f.ihk.transport());
  Process pa(f.mck, f.phys, 0, 0, 21);
  pa.set_job(7);
  sim::spawn(f.engine, [](Process& p) -> sim::Task<> {
    for (int i = 0; i < 3; ++i) {
      auto fd = co_await p.open("/proc/pd/jobs");
      CO_ASSERT_TRUE(fd.ok());
      CO_ASSERT_TRUE((co_await p.close_fd(*fd)).ok());
    }
  }(pa));
  f.engine.run();
  const ikc::IkcTransport::JobStats* st = f.ihk.transport().job_stats(7);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->submitted, 6u);  // 3 opens + 3 closes
  EXPECT_EQ(st->completed, 6u);
  const std::string text = jobs.render();
  EXPECT_NE(text.find("\n7 1.00 6 6 "), std::string::npos) << text;
}

}  // namespace
}  // namespace pd::os
