#include "src/dwarf/writer.hpp"

#include <cassert>
#include <map>

#include "src/dwarf/constants.hpp"
#include "src/dwarf/leb128.hpp"

namespace pd::dwarf {

namespace {

// Fixed abbreviation codes; one per DIE shape the builder emits.
enum AbbrevCode : std::uint64_t {
  kCompileUnit = 1,
  kBaseType = 2,
  kPointerType = 3,
  kPointerVoid = 4,  // pointer with no DW_AT_type (void *)
  kEnumType = 5,
  kEnumerator = 6,
  kArrayType = 7,
  kSubrange = 8,
  kTypedef = 9,
  kStructType = 10,
  kStructDecl = 11,  // forward declaration: DW_AT_declaration
  kUnionType = 12,
  kMember = 13,
  kEnumTypeAnon = 14,  // enum without a name
  kConstType = 15,
  kVolatileType = 16,
  kMemberBitfield = 17,
};

struct AttrSpec {
  std::uint64_t attr;
  std::uint64_t form;
};

void write_abbrev_entry(std::vector<std::uint8_t>& out, std::uint64_t code, std::uint64_t tag,
                        bool children, std::initializer_list<AttrSpec> attrs) {
  write_uleb128(out, code);
  write_uleb128(out, tag);
  out.push_back(children ? 1 : 0);
  for (const auto& a : attrs) {
    write_uleb128(out, a.attr);
    write_uleb128(out, a.form);
  }
  write_uleb128(out, 0);
  write_uleb128(out, 0);
}

std::vector<std::uint8_t> build_abbrev_table(std::uint64_t str_form) {
  std::vector<std::uint8_t> out;
  write_abbrev_entry(out, kCompileUnit, DW_TAG_compile_unit, /*children=*/true,
                     {{DW_AT_producer, str_form}, {DW_AT_name, str_form}});
  write_abbrev_entry(out, kBaseType, DW_TAG_base_type, false,
                     {{DW_AT_name, str_form},
                      {DW_AT_byte_size, DW_FORM_udata},
                      {DW_AT_encoding, DW_FORM_data1}});
  write_abbrev_entry(out, kPointerType, DW_TAG_pointer_type, false,
                     {{DW_AT_byte_size, DW_FORM_udata}, {DW_AT_type, DW_FORM_ref4}});
  write_abbrev_entry(out, kPointerVoid, DW_TAG_pointer_type, false,
                     {{DW_AT_byte_size, DW_FORM_udata}});
  write_abbrev_entry(out, kEnumType, DW_TAG_enumeration_type, true,
                     {{DW_AT_name, str_form}, {DW_AT_byte_size, DW_FORM_udata}});
  write_abbrev_entry(out, kEnumTypeAnon, DW_TAG_enumeration_type, true,
                     {{DW_AT_byte_size, DW_FORM_udata}});
  write_abbrev_entry(out, kEnumerator, DW_TAG_enumerator, false,
                     {{DW_AT_name, str_form}, {DW_AT_const_value, DW_FORM_sdata}});
  write_abbrev_entry(out, kArrayType, DW_TAG_array_type, true, {{DW_AT_type, DW_FORM_ref4}});
  write_abbrev_entry(out, kSubrange, DW_TAG_subrange_type, false,
                     {{DW_AT_count, DW_FORM_udata}});
  write_abbrev_entry(out, kTypedef, DW_TAG_typedef, false,
                     {{DW_AT_name, str_form}, {DW_AT_type, DW_FORM_ref4}});
  write_abbrev_entry(out, kStructType, DW_TAG_structure_type, true,
                     {{DW_AT_name, str_form}, {DW_AT_byte_size, DW_FORM_udata}});
  write_abbrev_entry(out, kStructDecl, DW_TAG_structure_type, false,
                     {{DW_AT_name, str_form}, {DW_AT_declaration, DW_FORM_flag_present}});
  write_abbrev_entry(out, kUnionType, DW_TAG_union_type, true,
                     {{DW_AT_name, str_form}, {DW_AT_byte_size, DW_FORM_udata}});
  write_abbrev_entry(out, kMember, DW_TAG_member, false,
                     {{DW_AT_name, str_form},
                      {DW_AT_type, DW_FORM_ref4},
                      {DW_AT_data_member_location, DW_FORM_udata}});
  write_abbrev_entry(out, kMemberBitfield, DW_TAG_member, false,
                     {{DW_AT_name, str_form},
                      {DW_AT_type, DW_FORM_ref4},
                      {DW_AT_data_member_location, DW_FORM_udata},
                      {DW_AT_bit_size, DW_FORM_udata},
                      {DW_AT_bit_offset, DW_FORM_udata}});
  write_abbrev_entry(out, kConstType, DW_TAG_const_type, false,
                     {{DW_AT_type, DW_FORM_ref4}});
  write_abbrev_entry(out, kVolatileType, DW_TAG_volatile_type, false,
                     {{DW_AT_type, DW_FORM_ref4}});
  write_uleb128(out, 0);  // table terminator
  return out;
}

void write_u32_at(std::vector<std::uint8_t>& out, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Deduplicating .debug_str builder.
class StrTab {
 public:
  std::uint32_t intern(const std::string& s) {
    auto it = offsets_.find(s);
    if (it != offsets_.end()) return it->second;
    const auto off = static_cast<std::uint32_t>(bytes_.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    bytes_.push_back(0);
    offsets_.emplace(s, off);
    return off;
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::map<std::string, std::uint32_t> offsets_;
};

}  // namespace

TypeRef InfoBuilder::push(Node n) {
  nodes_.push_back(std::move(n));
  return TypeRef{static_cast<std::uint32_t>(nodes_.size())};
}

TypeRef InfoBuilder::add_base_type(std::string name, std::uint64_t byte_size,
                                   std::uint8_t encoding) {
  Node n{};
  n.kind = Kind::base;
  n.name = std::move(name);
  n.byte_size = byte_size;
  n.encoding = encoding;
  return push(std::move(n));
}

TypeRef InfoBuilder::add_pointer(TypeRef pointee) {
  Node n{};
  n.kind = Kind::pointer;
  n.byte_size = 8;
  n.referent = pointee;
  return push(std::move(n));
}

TypeRef InfoBuilder::add_enum(std::string name, std::uint64_t byte_size,
                              std::vector<Enumerator> values) {
  Node n{};
  n.kind = Kind::enumeration;
  n.name = std::move(name);
  n.byte_size = byte_size;
  n.enumerators = std::move(values);
  return push(std::move(n));
}

TypeRef InfoBuilder::add_array(TypeRef element, std::uint64_t count) {
  return add_array_md(element, {count});
}

TypeRef InfoBuilder::add_array_md(TypeRef element, std::vector<std::uint64_t> counts) {
  assert(element.valid() && !counts.empty());
  Node n{};
  n.kind = Kind::array;
  n.referent = element;
  n.counts = std::move(counts);
  return push(std::move(n));
}

TypeRef InfoBuilder::add_typedef(std::string name, TypeRef target) {
  assert(target.valid());
  Node n{};
  n.kind = Kind::type_def;
  n.name = std::move(name);
  n.referent = target;
  return push(std::move(n));
}

TypeRef InfoBuilder::add_const(TypeRef target) {
  assert(target.valid());
  Node n{};
  n.kind = Kind::const_qual;
  n.referent = target;
  return push(std::move(n));
}

TypeRef InfoBuilder::add_volatile(TypeRef target) {
  assert(target.valid());
  Node n{};
  n.kind = Kind::volatile_qual;
  n.referent = target;
  return push(std::move(n));
}

TypeRef InfoBuilder::forward_struct(std::string name) {
  Node n{};
  n.kind = Kind::structure;
  n.name = std::move(name);
  n.defined = false;
  return push(std::move(n));
}

void InfoBuilder::define_struct(TypeRef ref, std::uint64_t byte_size, std::vector<Member> members) {
  Node& n = node(ref);
  assert(n.kind == Kind::structure && !n.defined);
  n.defined = true;
  n.byte_size = byte_size;
  n.members = std::move(members);
}

TypeRef InfoBuilder::add_struct(std::string name, std::uint64_t byte_size,
                                std::vector<Member> members) {
  TypeRef ref = forward_struct(std::move(name));
  define_struct(ref, byte_size, std::move(members));
  return ref;
}

TypeRef InfoBuilder::add_union(std::string name, std::uint64_t byte_size,
                               std::vector<Member> members) {
  Node n{};
  n.kind = Kind::union_type;
  n.name = std::move(name);
  n.byte_size = byte_size;
  n.members = std::move(members);
  return push(std::move(n));
}

DebugInfo InfoBuilder::build(const std::string& producer, const std::string& cu_name,
                             StringForm strings) const {
  const bool use_strp = strings == StringForm::strp;
  DebugInfo out;
  out.abbrev = build_abbrev_table(use_strp ? DW_FORM_strp : DW_FORM_string);

  std::vector<std::uint8_t>& info = out.info;
  StrTab strtab;

  auto write_string = [&](const std::string& s) {
    if (use_strp) {
      const std::uint32_t off = strtab.intern(s);
      for (int i = 0; i < 4; ++i) info.push_back(static_cast<std::uint8_t>(off >> (8 * i)));
    } else {
      info.insert(info.end(), s.begin(), s.end());
      info.push_back(0);
    }
  };

  // Compile-unit header (DWARF4, 32-bit format): unit_length is patched at
  // the end. Offsets recorded for ref4 are from the start of .debug_info,
  // i.e. the start of this header — the convention the reader shares.
  const std::size_t length_pos = info.size();
  for (int i = 0; i < 4; ++i) info.push_back(0);  // unit_length placeholder
  info.push_back(kDwarfVersion & 0xFF);
  info.push_back(kDwarfVersion >> 8);
  for (int i = 0; i < 4; ++i) info.push_back(0);  // debug_abbrev_offset = 0
  info.push_back(kAddressSize);

  // CU DIE.
  write_uleb128(info, kCompileUnit);
  write_string(producer);
  write_string(cu_name);

  // Emission with forward-reference fixups: a DW_AT_type ref4 to a node not
  // yet emitted records (position, node index) and is patched afterwards.
  std::vector<std::uint32_t> node_offset(nodes_.size(), 0);
  std::vector<std::pair<std::size_t, std::uint32_t>> fixups;  // (byte pos, node idx)

  auto write_type_ref = [&](TypeRef ref) {
    assert(ref.valid());
    const std::uint32_t idx = ref.id - 1;
    const std::size_t pos = info.size();
    for (int i = 0; i < 4; ++i) info.push_back(0);
    if (node_offset[idx] != 0) {
      write_u32_at(info, pos, node_offset[idx]);
    } else {
      fixups.emplace_back(pos, idx);
    }
  };

  for (std::uint32_t idx = 0; idx < nodes_.size(); ++idx) {
    const Node& n = nodes_[idx];
    node_offset[idx] = static_cast<std::uint32_t>(info.size());
    switch (n.kind) {
      case Kind::base:
        write_uleb128(info, kBaseType);
        write_string(n.name);
        write_uleb128(info, n.byte_size);
        info.push_back(n.encoding);
        break;
      case Kind::pointer:
        if (n.referent.valid()) {
          write_uleb128(info, kPointerType);
          write_uleb128(info, n.byte_size);
          write_type_ref(n.referent);
        } else {
          write_uleb128(info, kPointerVoid);
          write_uleb128(info, n.byte_size);
        }
        break;
      case Kind::enumeration:
        if (n.name.empty()) {
          write_uleb128(info, kEnumTypeAnon);
        } else {
          write_uleb128(info, kEnumType);
          write_string(n.name);
        }
        write_uleb128(info, n.byte_size);
        for (const auto& e : n.enumerators) {
          write_uleb128(info, kEnumerator);
          write_string(e.name);
          write_sleb128(info, e.value);
        }
        write_uleb128(info, 0);  // end of children
        break;
      case Kind::array:
        write_uleb128(info, kArrayType);
        write_type_ref(n.referent);
        for (const std::uint64_t count : n.counts) {
          write_uleb128(info, kSubrange);
          write_uleb128(info, count);
        }
        write_uleb128(info, 0);
        break;
      case Kind::type_def:
        write_uleb128(info, kTypedef);
        write_string(n.name);
        write_type_ref(n.referent);
        break;
      case Kind::const_qual:
        write_uleb128(info, kConstType);
        write_type_ref(n.referent);
        break;
      case Kind::volatile_qual:
        write_uleb128(info, kVolatileType);
        write_type_ref(n.referent);
        break;
      case Kind::structure:
        if (!n.defined) {
          write_uleb128(info, kStructDecl);
          write_string(n.name);
          break;
        }
        [[fallthrough]];
      case Kind::union_type:
        write_uleb128(info, n.kind == Kind::structure ? kStructType : kUnionType);
        write_string(n.name);
        write_uleb128(info, n.byte_size);
        for (const auto& m : n.members) {
          write_uleb128(info, m.bit_size > 0 ? kMemberBitfield : kMember);
          write_string(m.name);
          write_type_ref(m.type);
          write_uleb128(info, m.offset);
          if (m.bit_size > 0) {
            write_uleb128(info, m.bit_size);
            write_uleb128(info, m.bit_offset);
          }
        }
        write_uleb128(info, 0);
        break;
    }
  }

  write_uleb128(info, 0);  // end of CU children

  for (const auto& [pos, idx] : fixups) {
    assert(node_offset[idx] != 0 && "pointer to a type that was never emitted");
    write_u32_at(info, pos, node_offset[idx]);
  }

  // unit_length excludes the length field itself.
  write_u32_at(info, length_pos, static_cast<std::uint32_t>(info.size() - length_pos - 4));
  out.str = strtab.take();
  return out;
}

}  // namespace pd::dwarf
