file(REMOVE_RECURSE
  "CMakeFiles/mem_layout_kheap_test.dir/mem_layout_kheap_test.cpp.o"
  "CMakeFiles/mem_layout_kheap_test.dir/mem_layout_kheap_test.cpp.o.d"
  "mem_layout_kheap_test"
  "mem_layout_kheap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_layout_kheap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
