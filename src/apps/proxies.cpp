#include "src/apps/proxies.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "src/apps/topology.hpp"

namespace pd::apps {

namespace {

/// Base for per-step point-to-point tags: tags must be unique per
/// (step, direction) so a fast neighbour's next-step traffic cannot match
/// this step's receives.
constexpr int kP2pBase = 1000;

int dir_index(int dim, int dir) { return dim * 2 + (dir > 0 ? 1 : 0); }

int step_tag(int step, int dim, int dir) {
  return kP2pBase + step * 8 + dir_index(dim, dir);
}

/// Neighbour in the near-cubic decomposition of the whole world. The
/// factorization is memoized (per thread — ranks run on sharded engine
/// workers): this is called once per message.
int rank_neighbor(mpirt::Rank& rank, int dim, int dir) {
  thread_local int cached_p = -1;
  thread_local std::array<int, 3> cached_dims;
  const int p = rank.world().size();
  if (p != cached_p) {
    cached_dims = cart_dims(p);
    cached_p = p;
  }
  return cart_neighbor(cached_dims, rank.id(), dim, dir);
}

/// Ranks sharing this rank's on-node slot across a group of nodes (a
/// "column" communicator: purely inter-node). Capped at 32 members — QBOX
/// process grids partition columns into subgrids of bounded size.
std::vector<int> column_members(mpirt::Rank& rank) {
  const int rpn = rank.world().options().ranks_per_node;
  const int size = rank.world().size();
  const int nodes = size / rpn;
  const int span = std::min(nodes, 32);
  const int my_node = rank.id() / rpn;
  const int group_base = (my_node / span) * span;
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(span));
  for (int n = group_base; n < group_base + span && n < nodes; ++n)
    members.push_back(n * rpn + rank.id() % rpn);
  return members;
}

/// Same on-node slot on the partner node (XOR pairing — an involution, so
/// both sides agree on who talks to whom). Returns the rank itself when
/// the partner node does not exist (odd node count tail).
int cross_node_peer(mpirt::Rank& rank) {
  const int rpn = rank.world().options().ranks_per_node;
  const int nodes = rank.world().size() / rpn;
  const int peer_node = (rank.id() / rpn) ^ 1;
  if (peer_node >= nodes) return rank.id();
  return peer_node * rpn + rank.id() % rpn;
}

}  // namespace

sim::Task<> lammps_rank(mpirt::Rank& rank, LammpsParams params) {
  co_await rank.init();
  // Domain decomposition.
  co_await rank.cart_create();

  rank.solve_begin();
  for (int step = 0; step < params.steps; ++step) {
    // Force computation.
    co_await rank.compute(params.compute_per_step);

    // 6-direction ghost-atom exchange: post everything, then drain.
    std::vector<mpirt::MpiReq> reqs;
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb = rank_neighbor(rank, dim, dir);
        if (nb < 0) continue;
        reqs.push_back(rank.irecv(nb, step_tag(step, dim, -dir), params.halo_bytes));
      }
    }
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb = rank_neighbor(rank, dim, dir);
        if (nb < 0) continue;
        reqs.push_back(rank.isend(nb, step_tag(step, dim, dir), params.halo_bytes));
      }
    }
    co_await rank.waitall(std::move(reqs));

    // Thermo output: global reduction every few steps.
    if (step % params.thermo_every == 0) co_await rank.allreduce(64);
  }
  rank.solve_end();
  co_await rank.finalize();
}

sim::Task<> nekbone_rank(mpirt::Rank& rank, NekboneParams params) {
  co_await rank.init();
  rank.solve_begin();
  for (int iter = 0; iter < params.cg_iterations; ++iter) {
    // Local spectral-element work (ax).
    co_await rank.compute(params.compute_per_iter);

    // Face exchange with up to 6 neighbours (small, eager path).
    std::vector<mpirt::MpiReq> reqs;
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb = rank_neighbor(rank, dim, dir);
        if (nb < 0) continue;
        reqs.push_back(rank.irecv(nb, step_tag(iter, dim, -dir), params.halo_bytes));
      }
    }
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb = rank_neighbor(rank, dim, dir);
        if (nb < 0) continue;
        reqs.push_back(rank.isend(nb, step_tag(iter, dim, dir), params.halo_bytes));
      }
    }
    co_await rank.waitall(std::move(reqs));

    // Two dot products per CG iteration: tiny latency-bound allreduces.
    co_await rank.allreduce(8);
    co_await rank.allreduce(8);
  }
  rank.solve_end();
  co_await rank.finalize();
}

sim::Task<> umt_rank(mpirt::Rank& rank, UmtParams params) {
  co_await rank.init();
  rank.solve_begin();
  for (int step = 0; step < params.steps; ++step) {
    // Directional sweeps. Each sweep pipelines `angle_groups` blocks down
    // the wavefront: receive a group's upstream faces, compute it, send it
    // downstream and immediately move to the next group. Every group hop
    // is an expected-protocol message — writev + TID ioctls — which is
    // what floods the offload path on plain McKernel (Fig. 6a, Fig. 8).
    for (int sweep = 0; sweep < params.sweeps_per_step; ++sweep) {
      const int dir = (sweep % 2) == 0 ? +1 : -1;
      const int tag_base =
          kP2pBase + ((step * params.sweeps_per_step) + sweep) * 8;

      // Persistent channels per face, re-armed via MPI_Start every angle
      // group (UMT2013's actual pattern — hence MPI_Start in its Table-1
      // profile). Fixed tags are safe: traffic per (src,dst) pair is
      // ordered, and the channels line up one to one.
      std::vector<mpirt::Rank::MpiPersist> up, down;
      for (int dim = 0; dim < 3; ++dim) {
        const int up_nb = rank_neighbor(rank, dim, -dir);
        if (up_nb >= 0)
          up.push_back(rank.recv_init(up_nb, tag_base + dim, params.angle_bytes));
        const int down_nb = rank_neighbor(rank, dim, dir);
        if (down_nb >= 0)
          down.push_back(rank.send_init(down_nb, tag_base + dim, params.angle_bytes));
      }

      for (int g = 0; g < params.angle_groups; ++g) {
        rank.startall(up);
        co_await rank.waitall_persist(up);

        co_await rank.compute(params.compute_per_group);

        // One round of downstream sends in flight: drain the previous
        // group's sends before re-arming.
        if (g > 0) co_await rank.waitall_persist(down);
        rank.startall(down);
      }
      co_await rank.waitall_persist(down);
    }

    // Source iteration convergence check + step synchronization (UMT is
    // Barrier-heavy in Table 1).
    co_await rank.allreduce(16);
    co_await rank.barrier();
  }
  rank.solve_end();
  co_await rank.finalize();
}

sim::Task<> hacc_rank(mpirt::Rank& rank, HaccParams params) {
  co_await rank.init();
  // Domain decomposition / grid communicators: Cart_create dominates the
  // HACC Linux profile (Table 1).
  for (int i = 0; i < params.cart_creates; ++i) co_await rank.cart_create();

  rank.solve_begin();
  for (int step = 0; step < params.steps; ++step) {
    // Long-range force (P3M) — compute heavy.
    co_await rank.compute(params.compute_per_step);

    // Particle / grid overload exchange with the 6 spatial neighbours:
    // large expected-protocol messages.
    std::vector<mpirt::MpiReq> reqs;
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb = rank_neighbor(rank, dim, dir);
        if (nb < 0) continue;
        reqs.push_back(rank.irecv(nb, step_tag(step, dim, -dir), params.exchange_bytes));
      }
    }
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, +1}) {
        const int nb = rank_neighbor(rank, dim, dir);
        if (nb < 0) continue;
        reqs.push_back(rank.isend(nb, step_tag(step, dim, dir), params.exchange_bytes));
      }
    }
    co_await rank.waitall(std::move(reqs));

    // Global energy check.
    co_await rank.allreduce(32);
  }
  rank.solve_end();
  co_await rank.finalize();
}

sim::Task<> qbox_rank(mpirt::Rank& rank, QboxParams params) {
  co_await rank.init();
  co_await rank.comm_create();  // column/row communicators

  rank.solve_begin();
  for (int iter = 0; iter < params.scf_iterations; ++iter) {
    // Scratch arrays for the FFT stage — the mmap/munmap churn that makes
    // munmap dominate the McKernel+HFI kernel profile (Fig. 9).
    auto scratch = co_await rank.process().mmap_anon(params.scratch_bytes);

    // Wavefunction broadcast from the root.
    co_await rank.bcast(0, params.bcast_bytes);

    co_await rank.compute(params.compute_per_iter);

    // Column alltoallv (ranks with the same on-node slot across nodes —
    // all inter-node traffic).
    co_await rank.alltoallv(column_members(rank), params.alltoallv_bytes);

    // Pair exchange with the same slot on the next node.
    const int peer = cross_node_peer(rank);
    if (peer != rank.id()) {
      if (rank.id() < peer) {
        co_await rank.send(peer, step_tag(iter, 0, +1), params.pair_bytes);
        co_await rank.recv(peer, step_tag(iter, 0, -1), params.pair_bytes);
      } else {
        co_await rank.recv(peer, step_tag(iter, 0, +1), params.pair_bytes);
        co_await rank.send(peer, step_tag(iter, 0, -1), params.pair_bytes);
      }
    }

    // Partial-sum scan across rows.
    co_await rank.scan(16);

    if (scratch.ok())
      (void)co_await rank.process().munmap(*scratch, params.scratch_bytes);
  }
  rank.solve_end();
  co_await rank.finalize();
}

}  // namespace pd::apps
