# Empty dependencies file for pd_dwarf.
# This may be replaced when dependencies are built.
