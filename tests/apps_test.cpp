// Smoke + shape tests for the mini-app proxies and topology helpers.
#include <gtest/gtest.h>

#include "src/apps/proxies.hpp"
#include "src/apps/topology.hpp"

namespace pd::apps {
namespace {

TEST(Topology, DimsMultiplyToP) {
  for (int p : {1, 2, 4, 7, 8, 12, 16, 64, 128, 256, 2048}) {
    const auto d = cart_dims(p);
    EXPECT_EQ(d[0] * d[1] * d[2], p) << p;
    EXPECT_LE(d[0], d[2]) << "near-cubic ordering for p=" << p;
  }
}

TEST(Topology, NeighborsAreSymmetric) {
  const auto dims = cart_dims(64);
  for (int r = 0; r < 64; ++r) {
    for (int dim = 0; dim < 3; ++dim) {
      for (int dir : {-1, 1}) {
        const int nb = cart_neighbor(dims, r, dim, dir);
        if (nb < 0) continue;
        EXPECT_EQ(cart_neighbor(dims, nb, dim, -dir), r);
      }
    }
  }
}

TEST(Topology, BoundariesAreOpen) {
  const auto dims = cart_dims(8);  // 2x2x2
  EXPECT_EQ(cart_neighbor(dims, 0, 0, -1), -1);
  EXPECT_EQ(cart_neighbor(dims, 0, 0, +1), 1);
  EXPECT_EQ(cart_neighbor(dims, 7, 2, +1), -1);
}

mpirt::ClusterOptions smoke_opts(os::OsMode mode) {
  mpirt::ClusterOptions opts;
  opts.nodes = 2;
  opts.mode = mode;
  opts.mcdram_bytes = 256ull << 20;
  opts.ddr_bytes = 1ull << 30;
  return opts;
}

mpirt::WorldOptions smoke_world() {
  mpirt::WorldOptions wopts;
  wopts.ranks_per_node = 4;
  return wopts;
}

TEST(AppProxies, LammpsRunsAndExchangesHalos) {
  LammpsParams params;
  params.steps = 2;
  auto out = run_app(smoke_opts(os::OsMode::linux), smoke_world(),
                     [params](mpirt::Rank& r) { return lammps_rank(r, params); });
  EXPECT_GT(out.runtime_sec, 0);
  EXPECT_NE(out.mpi.row("Waitall"), nullptr);
  EXPECT_NE(out.mpi.row("Allreduce"), nullptr);
  EXPECT_NE(out.mpi.row("Cart_create"), nullptr);
}

TEST(AppProxies, NekboneIsAllreduceHeavy) {
  NekboneParams params;
  params.cg_iterations = 4;
  auto out = run_app(smoke_opts(os::OsMode::linux), smoke_world(),
                     [params](mpirt::Rank& r) { return nekbone_rank(r, params); });
  const auto* ar = out.mpi.row("Allreduce");
  ASSERT_NE(ar, nullptr);
  EXPECT_EQ(ar->count, 8u * 8u);  // 8 ranks x 2 per iteration x 4 iterations
}

TEST(AppProxies, UmtDrivesExpectedProtocol) {
  UmtParams params;
  params.steps = 1;
  auto out = run_app(smoke_opts(os::OsMode::linux), smoke_world(),
                     [params](mpirt::Rank& r) { return umt_rank(r, params); });
  // Large sweep faces take the expected path → TID ioctls + SDMA writevs.
  EXPECT_GT(out.kernel.count_of("ioctl"), 0u);
  EXPECT_GT(out.kernel.count_of("writev"), 0u);
  EXPECT_NE(out.mpi.row("Barrier"), nullptr);
  EXPECT_NE(out.mpi.row("Waitall"), nullptr);
}

TEST(AppProxies, HaccCallsCartCreate) {
  HaccParams params;
  params.steps = 1;
  params.cart_creates = 2;
  auto out = run_app(smoke_opts(os::OsMode::linux), smoke_world(),
                     [params](mpirt::Rank& r) { return hacc_rank(r, params); });
  const auto* cart = out.mpi.row("Cart_create");
  ASSERT_NE(cart, nullptr);
  EXPECT_EQ(cart->count, 8u * 2u);
}

TEST(AppProxies, QboxChurnsMmapAndUsesCollectives) {
  QboxParams params;
  params.scf_iterations = 2;
  auto out = run_app(smoke_opts(os::OsMode::linux), smoke_world(),
                     [params](mpirt::Rank& r) { return qbox_rank(r, params); });
  EXPECT_NE(out.mpi.row("Bcast"), nullptr);
  EXPECT_NE(out.mpi.row("Alltoallv"), nullptr);
  EXPECT_NE(out.mpi.row("Scan"), nullptr);
  // Scratch churn: at least 2 munmaps per rank (scratch) plus finalize.
  EXPECT_GE(out.kernel.count_of("munmap"), 8u * 2u);
}

TEST(AppProxies, AllAppsCompleteOnAllModes) {
  for (os::OsMode mode :
       {os::OsMode::linux, os::OsMode::mckernel, os::OsMode::mckernel_hfi}) {
    UmtParams umt;
    umt.steps = 1;
    auto out = run_app(smoke_opts(mode), smoke_world(),
                       [umt](mpirt::Rank& r) { return umt_rank(r, umt); });
    EXPECT_GT(out.runtime_sec, 0) << to_string(mode);
    if (mode == os::OsMode::mckernel) {
      EXPECT_GT(out.offloads, 0u);
    }
    if (mode == os::OsMode::mckernel_hfi) {
      EXPECT_LT(out.offload_queue.p95_us, 1000.0);
    }
  }
}

}  // namespace
}  // namespace pd::apps
