// Elastic CPU repartitioning (§8.7) unit coverage: the Resource
// grow/shrink/debt mechanics, kheap CPU adoption/release with block
// re-homing, the elastic config validation rules, the live
// IhkPartition::adopt/yield ops, and the PartitionController — scripted
// shrink/grow handovers and the EWMA/hysteresis monitor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/mem/kheap.hpp"
#include "src/os/elastic.hpp"
#include "src/os/ihk.hpp"
#include "src/os/kernel.hpp"
#include "src/os/mckernel.hpp"
#include "src/os/partition.hpp"
#include "src/sim/sync.hpp"

namespace pd::os {
namespace {

TEST(ElasticResource, GrowAddsUnitsShrinkTakesFreeThenDebt) {
  sim::Engine engine;
  sim::Resource res(engine, 2);
  res.grow(1);
  EXPECT_EQ(res.capacity(), 3u);
  EXPECT_EQ(res.available(), 3u);

  // Shrink with free units: taken immediately, no debt.
  EXPECT_TRUE(res.shrink(2));
  EXPECT_EQ(res.capacity(), 1u);
  EXPECT_EQ(res.available(), 1u);
  EXPECT_EQ(res.shrink_debt(), 0u);

  // A holder occupies the last unit; shrinking now must go through debt —
  // the unit retires when its holder releases, not before.
  sim::spawn(engine, [](sim::Engine& e, sim::Resource& r) -> sim::Task<> {
    co_await r.acquire();
    co_await e.delay(from_us(10));
    r.release();
  }(engine, res));
  engine.run_until(from_us(1));
  EXPECT_EQ(res.available(), 0u);
  EXPECT_TRUE(res.shrink(1));
  EXPECT_EQ(res.capacity(), 0u);
  EXPECT_EQ(res.shrink_debt(), 1u);
  engine.run();
  // The release was absorbed by the debt: the unit never re-entered the pool.
  EXPECT_EQ(res.shrink_debt(), 0u);
  EXPECT_EQ(res.available(), 0u);

  // Shrinking more than the capacity is refused untouched.
  EXPECT_FALSE(res.shrink(5));
  EXPECT_EQ(res.capacity(), 0u);
}

TEST(ElasticKheap, AdoptAddsCoreReleaseRehomesItsBlocks) {
  // 8 CPUs across 2 sockets (0-3 on socket 0, 4-7 on socket 1); the heap
  // owns {0, 1} and will adopt 2, all on socket 0.
  const mem::NumaTopology topo = mem::NumaTopology::blocked(8, 2);
  mem::KernelHeap heap({0, 1}, mem::ForeignFreePolicy::remote_queue, topo,
                       mem::PartitionBudget{}, mem::PlacementPolicy::numa_aware);

  EXPECT_FALSE(heap.owns_cpu(2));
  ASSERT_TRUE(heap.adopt_cpu(2).ok());
  EXPECT_TRUE(heap.owns_cpu(2));
  EXPECT_EQ(heap.adopt_cpu(2).error(), Errno::einval);  // already owned
  EXPECT_EQ(heap.stats().cpu_adoptions, 1u);

  // The adopted core allocates; one block stays live, one is foreign-freed
  // onto its remote queue by a socket-1 CPU.
  auto live = heap.kmalloc(192, 2);
  auto queued = heap.kmalloc(192, 2);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(heap.kfree(*queued, 5).ok());
  EXPECT_EQ(heap.remote_queue_depth(2), 1u);

  // Release: the queue is drained, the live block re-homes to a same-socket
  // survivor, and the core leaves the owned set.
  std::size_t drained = 0;
  ASSERT_TRUE(heap.release_cpu(2, &drained).ok());
  EXPECT_EQ(drained, 1u);
  EXPECT_FALSE(heap.owns_cpu(2));
  EXPECT_EQ(heap.stats().cpu_releases, 1u);
  EXPECT_GE(heap.stats().rehomed_blocks, 1u);

  // The re-homed block is still live and freeable — a later foreign free
  // lands on a queue somebody actually drains.
  EXPECT_FALSE(heap.data(*live).empty());
  ASSERT_TRUE(heap.kfree(*live, 5).ok());
  std::size_t reclaimed = 0;
  for (int cpu : {0, 1}) reclaimed += heap.drain_remote_frees(cpu);
  EXPECT_EQ(reclaimed, 1u);

  EXPECT_EQ(heap.release_cpu(2).error(), Errno::einval);  // no longer owned
}

TEST(ElasticKheap, LastCpuCannotBeReleased) {
  mem::KernelHeap heap({3}, mem::ForeignFreePolicy::remote_queue);
  EXPECT_EQ(heap.release_cpu(3).error(), Errno::ebusy);
  EXPECT_TRUE(heap.owns_cpu(3));
}

TEST(ElasticConfig, ValidationRules) {
  Config cfg;
  cfg.elastic_min_service_cpus = 0;
  EXPECT_FALSE(cfg.validate().ok());

  cfg = Config{};
  cfg.elastic_max_service_cpus = 2;
  cfg.elastic_min_service_cpus = 3;
  EXPECT_FALSE(cfg.validate().ok());

  cfg = Config{};
  cfg.elastic_max_service_cpus = cfg.cores_per_node;  // LWK would lose every core
  EXPECT_FALSE(cfg.validate().ok());

  cfg = Config{};
  cfg.elastic_enabled = true;
  EXPECT_TRUE(cfg.validate().ok()) << "enabled defaults must be valid";
  cfg.elastic_ewma_alpha = 0.0;
  EXPECT_FALSE(cfg.validate().ok());
  cfg.elastic_ewma_alpha = 1.5;
  EXPECT_FALSE(cfg.validate().ok());

  cfg = Config{};
  cfg.elastic_enabled = true;
  cfg.elastic_p95_grow_us = 10.0;
  cfg.elastic_p95_shrink_us = 10.0;  // overlapping band would flap
  EXPECT_FALSE(cfg.validate().ok());

  cfg = Config{};
  cfg.elastic_enabled = true;
  cfg.elastic_hysteresis_checks = 0;
  EXPECT_FALSE(cfg.validate().ok());

  // The boot-shape rule only binds when the monitor is on: a direct-mode
  // config with no service CPUs (and elastic off) must stay valid.
  cfg = Config{};
  cfg.linux_service_cpus = 0;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.elastic_enabled = true;
  EXPECT_FALSE(cfg.validate().ok());
}

TEST(ElasticPartition, AdoptYieldMoveNamedCpusWhileBooted) {
  HostInventory host(8, 1ull << 30);
  auto part = IhkPartition::create(host, 4, 1ull << 20);  // reserves 4..7
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(part->boot().ok());

  // The offline ops refuse while booted; the live ops do not.
  EXPECT_EQ(part->shrink_cpus(1).error(), Errno::ebusy);
  ASSERT_TRUE(part->yield_cpu(4).ok());
  EXPECT_TRUE(host.cpu_online(4));
  EXPECT_EQ(part->cpus().size(), 3u);
  EXPECT_EQ(part->yield_cpu(4).error(), Errno::einval);  // no longer held

  ASSERT_TRUE(part->adopt_cpu(3).ok());
  EXPECT_FALSE(host.cpu_online(3));
  EXPECT_EQ(part->adopt_cpu(3).error(), Errno::ebusy);  // already reserved
  EXPECT_EQ(part->cpus().front(), 3);
}

/// One simulated node wired for repartitioning: Linux + IHK + LWK over a
/// booted partition, and the controller that moves cores between them.
struct Node {
  explicit Node(Config c) : cfg(std::move(c)) {
    linux_kernel = std::make_unique<LinuxKernel>(engine, cfg);
    ihk = std::make_unique<Ihk>(engine, cfg, *linux_kernel);
    mck = std::make_unique<McKernel>(engine, cfg, *ihk, /*unified_layout=*/true);
    host = std::make_unique<HostInventory>(cfg.cores_per_node, 1ull << 34);
    auto p = IhkPartition::create(*host, cfg.cores_per_node - cfg.linux_service_cpus,
                                  1ull << 30);
    EXPECT_TRUE(p.ok());
    partition = std::make_unique<IhkPartition>(std::move(*p));
    EXPECT_TRUE(partition->boot().ok());
    ctl = std::make_unique<PartitionController>(engine, cfg, *ihk, *mck, partition.get());
  }

  /// Run one scripted repartition to completion (shrink when `shrink`).
  Status repartition(bool shrink, int n = 1) {
    Status out = Errno::eagain;
    sim::spawn(engine, [](Node& node, bool s, int count, Status& o) -> sim::Task<> {
      if (s)
        o = co_await node.ctl->shrink_service_cpus(count);
      else
        o = co_await node.ctl->grow_service_cpus(count);
    }(*this, shrink, n, out));
    engine.run();
    return out;
  }

  void flood(int ops, Dur work) {
    for (int i = 0; i < ops; ++i)
      sim::spawn(engine, [](Node& node, int ch, Dur w) -> sim::Task<> {
        auto r = co_await node.ihk->offload(
            [&node, w]() -> sim::Task<Result<long>> {
              co_await node.engine.delay(w);
              co_return 1;
            },
            ikc::Priority::bulk, ch);
        EXPECT_TRUE(r.ok());
      }(*this, i % 8, work));
  }

  sim::Engine engine;
  Config cfg;
  std::unique_ptr<LinuxKernel> linux_kernel;
  std::unique_ptr<Ihk> ihk;
  std::unique_ptr<McKernel> mck;
  std::unique_ptr<HostInventory> host;
  std::unique_ptr<IhkPartition> partition;
  std::unique_ptr<PartitionController> ctl;
};

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

Config elastic_ring_cfg() {
  Config cfg;
  cfg.ikc_mode = IkcMode::ring;
  return cfg;
}

TEST(PartitionControllerTest, ShrinkHandsServiceCpuToLwk) {
  auto cfg = elastic_ring_cfg();
  cfg.linux_service_cpus = 3;
  Node node(cfg);
  ASSERT_FALSE(contains(node.mck->cpus(), 2));

  ASSERT_TRUE(node.repartition(/*shrink=*/true).ok());

  // Every layer agrees cpu 2 moved: service pool, transport, both kheaps,
  // the LWK scheduler set and the IHK reservation.
  EXPECT_EQ(node.linux_kernel->service_cpu_count(), 2);
  EXPECT_EQ(node.ihk->transport().active_loops(), 2);
  EXPECT_FALSE(node.linux_kernel->kheap().owns_cpu(2));
  EXPECT_TRUE(node.mck->kheap().owns_cpu(2));
  EXPECT_TRUE(contains(node.mck->cpus(), 2));
  EXPECT_TRUE(contains(node.partition->cpus(), 2));
  EXPECT_FALSE(node.host->cpu_online(2));
  EXPECT_EQ(node.ctl->stats().shrinks, 1u);

  // Offloads still complete on the shrunk pool.
  node.flood(16, from_us(2));
  node.engine.run();
}

TEST(PartitionControllerTest, GrowPullsLwkCoreIntoServicePool) {
  auto cfg = elastic_ring_cfg();
  cfg.linux_service_cpus = 3;
  Node node(cfg);
  ASSERT_TRUE(node.repartition(/*shrink=*/true).ok());
  ASSERT_TRUE(node.repartition(/*shrink=*/false).ok());

  EXPECT_EQ(node.linux_kernel->service_cpu_count(), 3);
  EXPECT_EQ(node.ihk->transport().active_loops(), 3);
  EXPECT_TRUE(node.linux_kernel->kheap().owns_cpu(2));
  EXPECT_FALSE(node.mck->kheap().owns_cpu(2));
  EXPECT_FALSE(contains(node.mck->cpus(), 2));
  EXPECT_FALSE(contains(node.partition->cpus(), 2));
  EXPECT_EQ(node.ctl->stats().grows, 1u);

  node.flood(16, from_us(2));
  node.engine.run();
}

TEST(PartitionControllerTest, FloorAndCeilingAreEnforced) {
  auto cfg = elastic_ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.elastic_min_service_cpus = 2;
  Node node(cfg);
  EXPECT_EQ(node.repartition(/*shrink=*/true).error(), Errno::ebusy);
  // elastic_max_service_cpus defaults to 0 = the boot shape: no headroom.
  EXPECT_EQ(node.repartition(/*shrink=*/false).error(), Errno::ebusy);
  EXPECT_EQ(node.linux_kernel->service_cpu_count(), 2);
  EXPECT_EQ(node.ctl->stats().shrinks + node.ctl->stats().grows, 0u);
}

TEST(PartitionControllerTest, GrowBeyondBootShapeTakesLwkAppCore) {
  auto cfg = elastic_ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.elastic_max_service_cpus = 3;  // one slot of headroom past boot
  Node node(cfg);
  ASSERT_TRUE(contains(node.mck->cpus(), 2));  // boot: cpu 2 is an app core

  ASSERT_TRUE(node.repartition(/*shrink=*/false).ok());
  EXPECT_EQ(node.linux_kernel->service_cpu_count(), 3);
  EXPECT_EQ(node.ihk->transport().active_loops(), 3);
  EXPECT_FALSE(contains(node.mck->cpus(), 2));
  EXPECT_TRUE(node.host->cpu_online(2))
      << "the yielded core is back online under Linux for service use";
  // At the ceiling now.
  EXPECT_EQ(node.repartition(/*shrink=*/false).error(), Errno::ebusy);
}

TEST(PartitionControllerTest, MonitorGrowsPoolUnderSustainedQueueing) {
  auto cfg = elastic_ring_cfg();
  cfg.linux_service_cpus = 2;
  cfg.elastic_max_service_cpus = 4;
  cfg.elastic_enabled = true;
  cfg.elastic_check_interval = from_us(200);
  cfg.elastic_ewma_alpha = 1.0;
  cfg.elastic_p95_grow_us = 5.0;  // the flood's queueing is far above this
  cfg.elastic_p95_shrink_us = 0.01;
  cfg.elastic_hysteresis_checks = 2;
  cfg.elastic_cooldown = 0;
  Node node(cfg);

  node.flood(300, from_us(20));
  node.engine.run_until(from_ms(20));
  node.ctl->stop_monitor();
  node.engine.run();

  EXPECT_GE(node.ctl->stats().monitor_checks, 2u);
  EXPECT_GE(node.ctl->stats().grows, 1u);
  EXPECT_GT(node.linux_kernel->service_cpu_count(), 2);
  EXPECT_GT(node.ctl->stats().p95_ewma_us, cfg.elastic_p95_grow_us);
}

TEST(PartitionControllerTest, MonitorShrinksIdlePoolAndCooldownSuppressesFlap) {
  auto cfg = elastic_ring_cfg();
  cfg.linux_service_cpus = 3;
  cfg.elastic_enabled = true;
  cfg.elastic_check_interval = from_us(200);
  cfg.elastic_ewma_alpha = 1.0;
  cfg.elastic_p95_grow_us = 1e9;  // unreachable
  cfg.elastic_p95_shrink_us = 1e8;  // everything is "idle"
  cfg.elastic_hysteresis_checks = 3;
  cfg.elastic_cooldown = from_ms(100);  // longer than the whole run
  Node node(cfg);

  // A little traffic so the queueing summary has samples to judge.
  node.flood(8, from_us(2));
  node.engine.run_until(from_ms(10));
  node.ctl->stop_monitor();
  node.engine.run();

  // Exactly one shrink fits in the window: the cooldown swallowed every
  // later breach instead of letting the pool collapse check by check.
  EXPECT_EQ(node.ctl->stats().shrinks, 1u);
  EXPECT_GE(node.ctl->stats().flap_suppressed, 1u);
  EXPECT_EQ(node.linux_kernel->service_cpu_count(), 2);
  EXPECT_GE(node.linux_kernel->service_cpu_count(), cfg.elastic_min_service_cpus);
}

}  // namespace
}  // namespace pd::os
