#include "src/hw/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace pd::hw {

Fabric::Fabric(sim::Engine& engine, int num_nodes, FabricConfig config)
    : engine_(engine), config_(config) {
  ports_.resize(static_cast<std::size_t>(num_nodes));
}

void Fabric::attach(int node, ChunkSink sink) {
  ports_.at(static_cast<std::size_t>(node)).sink = std::move(sink);
}

Dur Fabric::serialize_time(std::uint64_t bytes) const {
  return config_.per_chunk_overhead + transfer_time(bytes, config_.link_bytes_per_sec);
}

void Fabric::send(WireChunk chunk, std::function<void()> on_egress) {
  chunks_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(chunk.chunk_bytes, std::memory_order_relaxed);

  Port& src = ports_.at(static_cast<std::size_t>(chunk.msg.src_node));
  const Dur ser = chunk.serialize_cost > 0 ? chunk.serialize_cost
                                           : serialize_time(chunk.chunk_bytes);

  // Source port: FIFO serialization at link rate.
  const Time now = engine_.now();
  const Time egress_start = std::max(now, src.egress_free_at);
  const Time egress_done = egress_start + ser;
  src.egress_free_at = egress_done;
  if (on_egress)
    engine_.schedule_at(egress_done, std::move(on_egress));

  // Cut-through switch: the head of the transfer reaches the destination
  // port wire_latency after it left the source, and the destination drains
  // at the same rate — so an uncontended transfer is delivered at
  // egress_done + wire_latency, while incast still serializes on the
  // ingress busy window.
  const Time head_arrival = egress_start + config_.wire_latency;

  if (engine_.sharded()) {
    // Sharded: the destination port belongs to the destination shard, so
    // the ingress reservation must happen there. The hop lands at head
    // arrival, which is >= now + wire_latency = now + lookahead, honouring
    // the cross-shard contract. Ingress windows are granted in arrival
    // order (deterministic, but can differ from the unsharded send-order
    // reservation when transfers race for one port).
    const int dst_node = chunk.msg.dst_node;
    engine_.schedule_on(
        dst_node, head_arrival, [this, dst_node, ser, chunk = std::move(chunk)]() mutable {
          Port& dst = ports_[static_cast<std::size_t>(dst_node)];
          const Time ingress_start = std::max(engine_.now(), dst.ingress_free_at);
          const Time ingress_done = ingress_start + ser;
          dst.ingress_free_at = ingress_done;
          Port* dst_port = &dst;
          engine_.schedule_at(ingress_done, [dst_port, chunk = std::move(chunk)] {
            assert(dst_port->sink && "destination NIC not attached");
            dst_port->sink(chunk);
          });
        });
    return;
  }

  Port& dst = ports_.at(static_cast<std::size_t>(chunk.msg.dst_node));
  const Time ingress_start = std::max(head_arrival, dst.ingress_free_at);
  const Time ingress_done = ingress_start + ser;
  dst.ingress_free_at = ingress_done;

  Port* dst_port = &dst;
  engine_.schedule_at(ingress_done,
                      [dst_port, chunk = std::move(chunk)] {
                        assert(dst_port->sink && "destination NIC not attached");
                        dst_port->sink(chunk);
                      });
}

}  // namespace pd::hw
