file(REMOVE_RECURSE
  "CMakeFiles/pd_pico.dir/framework.cpp.o"
  "CMakeFiles/pd_pico.dir/framework.cpp.o.d"
  "CMakeFiles/pd_pico.dir/hfi_picodriver.cpp.o"
  "CMakeFiles/pd_pico.dir/hfi_picodriver.cpp.o.d"
  "libpd_pico.a"
  "libpd_pico.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_pico.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
